file(REMOVE_RECURSE
  "libmdts_dist.a"
)
