file(REMOVE_RECURSE
  "CMakeFiles/mdts_dist.dir/dmt_system.cc.o"
  "CMakeFiles/mdts_dist.dir/dmt_system.cc.o.d"
  "libmdts_dist.a"
  "libmdts_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
