# Empty dependencies file for mdts_dist.
# This may be replaced when dependencies are built.
