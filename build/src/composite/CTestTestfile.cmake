# CMake generated Testfile for 
# Source directory: /root/repo/src/composite
# Build directory: /root/repo/build/src/composite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
