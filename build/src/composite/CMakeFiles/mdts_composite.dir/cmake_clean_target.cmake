file(REMOVE_RECURSE
  "libmdts_composite.a"
)
