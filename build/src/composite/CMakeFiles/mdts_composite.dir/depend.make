# Empty dependencies file for mdts_composite.
# This may be replaced when dependencies are built.
