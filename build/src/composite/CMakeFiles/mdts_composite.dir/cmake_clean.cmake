file(REMOVE_RECURSE
  "CMakeFiles/mdts_composite.dir/mtk_plus.cc.o"
  "CMakeFiles/mdts_composite.dir/mtk_plus.cc.o.d"
  "CMakeFiles/mdts_composite.dir/naive_union.cc.o"
  "CMakeFiles/mdts_composite.dir/naive_union.cc.o.d"
  "libmdts_composite.a"
  "libmdts_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
