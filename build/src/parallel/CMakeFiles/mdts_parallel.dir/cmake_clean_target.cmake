file(REMOVE_RECURSE
  "libmdts_parallel.a"
)
