# Empty compiler generated dependencies file for mdts_parallel.
# This may be replaced when dependencies are built.
