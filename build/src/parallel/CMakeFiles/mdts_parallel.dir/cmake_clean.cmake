file(REMOVE_RECURSE
  "CMakeFiles/mdts_parallel.dir/parallel_compare.cc.o"
  "CMakeFiles/mdts_parallel.dir/parallel_compare.cc.o.d"
  "libmdts_parallel.a"
  "libmdts_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
