file(REMOVE_RECURSE
  "libmdts_classify.a"
)
