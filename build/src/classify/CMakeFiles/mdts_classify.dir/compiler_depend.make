# Empty compiler generated dependencies file for mdts_classify.
# This may be replaced when dependencies are built.
