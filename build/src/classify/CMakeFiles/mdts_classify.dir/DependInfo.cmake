
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/classes.cc" "src/classify/CMakeFiles/mdts_classify.dir/classes.cc.o" "gcc" "src/classify/CMakeFiles/mdts_classify.dir/classes.cc.o.d"
  "/root/repo/src/classify/dependency_graph.cc" "src/classify/CMakeFiles/mdts_classify.dir/dependency_graph.cc.o" "gcc" "src/classify/CMakeFiles/mdts_classify.dir/dependency_graph.cc.o.d"
  "/root/repo/src/classify/hierarchy.cc" "src/classify/CMakeFiles/mdts_classify.dir/hierarchy.cc.o" "gcc" "src/classify/CMakeFiles/mdts_classify.dir/hierarchy.cc.o.d"
  "/root/repo/src/classify/two_pl.cc" "src/classify/CMakeFiles/mdts_classify.dir/two_pl.cc.o" "gcc" "src/classify/CMakeFiles/mdts_classify.dir/two_pl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
