file(REMOVE_RECURSE
  "CMakeFiles/mdts_classify.dir/classes.cc.o"
  "CMakeFiles/mdts_classify.dir/classes.cc.o.d"
  "CMakeFiles/mdts_classify.dir/dependency_graph.cc.o"
  "CMakeFiles/mdts_classify.dir/dependency_graph.cc.o.d"
  "CMakeFiles/mdts_classify.dir/hierarchy.cc.o"
  "CMakeFiles/mdts_classify.dir/hierarchy.cc.o.d"
  "CMakeFiles/mdts_classify.dir/two_pl.cc.o"
  "CMakeFiles/mdts_classify.dir/two_pl.cc.o.d"
  "libmdts_classify.a"
  "libmdts_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
