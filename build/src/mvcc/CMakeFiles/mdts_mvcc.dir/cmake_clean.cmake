file(REMOVE_RECURSE
  "CMakeFiles/mdts_mvcc.dir/mv_scheduler.cc.o"
  "CMakeFiles/mdts_mvcc.dir/mv_scheduler.cc.o.d"
  "libmdts_mvcc.a"
  "libmdts_mvcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_mvcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
