# Empty dependencies file for mdts_mvcc.
# This may be replaced when dependencies are built.
