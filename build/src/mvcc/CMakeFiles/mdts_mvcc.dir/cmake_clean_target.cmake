file(REMOVE_RECURSE
  "libmdts_mvcc.a"
)
