file(REMOVE_RECURSE
  "libmdts_workload.a"
)
