# Empty dependencies file for mdts_workload.
# This may be replaced when dependencies are built.
