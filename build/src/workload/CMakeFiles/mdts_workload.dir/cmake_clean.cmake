file(REMOVE_RECURSE
  "CMakeFiles/mdts_workload.dir/enumerate.cc.o"
  "CMakeFiles/mdts_workload.dir/enumerate.cc.o.d"
  "CMakeFiles/mdts_workload.dir/generator.cc.o"
  "CMakeFiles/mdts_workload.dir/generator.cc.o.d"
  "CMakeFiles/mdts_workload.dir/trace.cc.o"
  "CMakeFiles/mdts_workload.dir/trace.cc.o.d"
  "libmdts_workload.a"
  "libmdts_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
