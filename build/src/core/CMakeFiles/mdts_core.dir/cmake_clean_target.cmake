file(REMOVE_RECURSE
  "libmdts_core.a"
)
