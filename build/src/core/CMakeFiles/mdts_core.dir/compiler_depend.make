# Empty compiler generated dependencies file for mdts_core.
# This may be replaced when dependencies are built.
