
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/mdts_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/mdts_core.dir/explain.cc.o.d"
  "/root/repo/src/core/log.cc" "src/core/CMakeFiles/mdts_core.dir/log.cc.o" "gcc" "src/core/CMakeFiles/mdts_core.dir/log.cc.o.d"
  "/root/repo/src/core/mtk_scheduler.cc" "src/core/CMakeFiles/mdts_core.dir/mtk_scheduler.cc.o" "gcc" "src/core/CMakeFiles/mdts_core.dir/mtk_scheduler.cc.o.d"
  "/root/repo/src/core/recognizer.cc" "src/core/CMakeFiles/mdts_core.dir/recognizer.cc.o" "gcc" "src/core/CMakeFiles/mdts_core.dir/recognizer.cc.o.d"
  "/root/repo/src/core/timestamp_vector.cc" "src/core/CMakeFiles/mdts_core.dir/timestamp_vector.cc.o" "gcc" "src/core/CMakeFiles/mdts_core.dir/timestamp_vector.cc.o.d"
  "/root/repo/src/core/vector_table.cc" "src/core/CMakeFiles/mdts_core.dir/vector_table.cc.o" "gcc" "src/core/CMakeFiles/mdts_core.dir/vector_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
