file(REMOVE_RECURSE
  "CMakeFiles/mdts_core.dir/explain.cc.o"
  "CMakeFiles/mdts_core.dir/explain.cc.o.d"
  "CMakeFiles/mdts_core.dir/log.cc.o"
  "CMakeFiles/mdts_core.dir/log.cc.o.d"
  "CMakeFiles/mdts_core.dir/mtk_scheduler.cc.o"
  "CMakeFiles/mdts_core.dir/mtk_scheduler.cc.o.d"
  "CMakeFiles/mdts_core.dir/recognizer.cc.o"
  "CMakeFiles/mdts_core.dir/recognizer.cc.o.d"
  "CMakeFiles/mdts_core.dir/timestamp_vector.cc.o"
  "CMakeFiles/mdts_core.dir/timestamp_vector.cc.o.d"
  "CMakeFiles/mdts_core.dir/vector_table.cc.o"
  "CMakeFiles/mdts_core.dir/vector_table.cc.o.d"
  "libmdts_core.a"
  "libmdts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
