# Empty compiler generated dependencies file for mdts_sched.
# This may be replaced when dependencies are built.
