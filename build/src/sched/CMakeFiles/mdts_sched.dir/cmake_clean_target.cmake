file(REMOVE_RECURSE
  "libmdts_sched.a"
)
