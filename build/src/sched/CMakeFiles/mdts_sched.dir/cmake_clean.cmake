file(REMOVE_RECURSE
  "CMakeFiles/mdts_sched.dir/adaptive.cc.o"
  "CMakeFiles/mdts_sched.dir/adaptive.cc.o.d"
  "CMakeFiles/mdts_sched.dir/interval_scheduler.cc.o"
  "CMakeFiles/mdts_sched.dir/interval_scheduler.cc.o.d"
  "CMakeFiles/mdts_sched.dir/occ_scheduler.cc.o"
  "CMakeFiles/mdts_sched.dir/occ_scheduler.cc.o.d"
  "CMakeFiles/mdts_sched.dir/to1_scheduler.cc.o"
  "CMakeFiles/mdts_sched.dir/to1_scheduler.cc.o.d"
  "CMakeFiles/mdts_sched.dir/two_pl_scheduler.cc.o"
  "CMakeFiles/mdts_sched.dir/two_pl_scheduler.cc.o.d"
  "libmdts_sched.a"
  "libmdts_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
