
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/adaptive.cc" "src/sched/CMakeFiles/mdts_sched.dir/adaptive.cc.o" "gcc" "src/sched/CMakeFiles/mdts_sched.dir/adaptive.cc.o.d"
  "/root/repo/src/sched/interval_scheduler.cc" "src/sched/CMakeFiles/mdts_sched.dir/interval_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/mdts_sched.dir/interval_scheduler.cc.o.d"
  "/root/repo/src/sched/occ_scheduler.cc" "src/sched/CMakeFiles/mdts_sched.dir/occ_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/mdts_sched.dir/occ_scheduler.cc.o.d"
  "/root/repo/src/sched/to1_scheduler.cc" "src/sched/CMakeFiles/mdts_sched.dir/to1_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/mdts_sched.dir/to1_scheduler.cc.o.d"
  "/root/repo/src/sched/two_pl_scheduler.cc" "src/sched/CMakeFiles/mdts_sched.dir/two_pl_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/mdts_sched.dir/two_pl_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
