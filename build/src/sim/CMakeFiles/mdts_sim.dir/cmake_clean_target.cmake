file(REMOVE_RECURSE
  "libmdts_sim.a"
)
