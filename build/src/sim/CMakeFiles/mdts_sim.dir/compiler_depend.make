# Empty compiler generated dependencies file for mdts_sim.
# This may be replaced when dependencies are built.
