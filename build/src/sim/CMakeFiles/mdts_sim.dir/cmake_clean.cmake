file(REMOVE_RECURSE
  "CMakeFiles/mdts_sim.dir/simulator.cc.o"
  "CMakeFiles/mdts_sim.dir/simulator.cc.o.d"
  "libmdts_sim.a"
  "libmdts_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
