file(REMOVE_RECURSE
  "CMakeFiles/mdts_common.dir/rng.cc.o"
  "CMakeFiles/mdts_common.dir/rng.cc.o.d"
  "CMakeFiles/mdts_common.dir/status.cc.o"
  "CMakeFiles/mdts_common.dir/status.cc.o.d"
  "CMakeFiles/mdts_common.dir/table_printer.cc.o"
  "CMakeFiles/mdts_common.dir/table_printer.cc.o.d"
  "libmdts_common.a"
  "libmdts_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
