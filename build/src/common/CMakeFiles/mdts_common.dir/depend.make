# Empty dependencies file for mdts_common.
# This may be replaced when dependencies are built.
