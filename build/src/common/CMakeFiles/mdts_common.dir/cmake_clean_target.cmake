file(REMOVE_RECURSE
  "libmdts_common.a"
)
