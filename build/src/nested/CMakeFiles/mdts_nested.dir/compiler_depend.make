# Empty compiler generated dependencies file for mdts_nested.
# This may be replaced when dependencies are built.
