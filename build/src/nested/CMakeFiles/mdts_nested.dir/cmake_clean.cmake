file(REMOVE_RECURSE
  "CMakeFiles/mdts_nested.dir/nested_scheduler.cc.o"
  "CMakeFiles/mdts_nested.dir/nested_scheduler.cc.o.d"
  "CMakeFiles/mdts_nested.dir/partition.cc.o"
  "CMakeFiles/mdts_nested.dir/partition.cc.o.d"
  "libmdts_nested.a"
  "libmdts_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
