file(REMOVE_RECURSE
  "libmdts_nested.a"
)
