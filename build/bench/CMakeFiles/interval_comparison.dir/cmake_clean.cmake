file(REMOVE_RECURSE
  "CMakeFiles/interval_comparison.dir/interval_comparison.cc.o"
  "CMakeFiles/interval_comparison.dir/interval_comparison.cc.o.d"
  "interval_comparison"
  "interval_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
