# Empty dependencies file for interval_comparison.
# This may be replaced when dependencies are built.
