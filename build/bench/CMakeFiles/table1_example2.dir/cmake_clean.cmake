file(REMOVE_RECURSE
  "CMakeFiles/table1_example2.dir/table1_example2.cc.o"
  "CMakeFiles/table1_example2.dir/table1_example2.cc.o.d"
  "table1_example2"
  "table1_example2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_example2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
