# Empty dependencies file for table1_example2.
# This may be replaced when dependencies are built.
