# Empty compiler generated dependencies file for vector_size_guidelines.
# This may be replaced when dependencies are built.
