file(REMOVE_RECURSE
  "CMakeFiles/vector_size_guidelines.dir/vector_size_guidelines.cc.o"
  "CMakeFiles/vector_size_guidelines.dir/vector_size_guidelines.cc.o.d"
  "vector_size_guidelines"
  "vector_size_guidelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_size_guidelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
