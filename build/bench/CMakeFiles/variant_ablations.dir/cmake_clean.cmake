file(REMOVE_RECURSE
  "CMakeFiles/variant_ablations.dir/variant_ablations.cc.o"
  "CMakeFiles/variant_ablations.dir/variant_ablations.cc.o.d"
  "variant_ablations"
  "variant_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
