# Empty dependencies file for variant_ablations.
# This may be replaced when dependencies are built.
