file(REMOVE_RECURSE
  "CMakeFiles/composite_equivalence.dir/composite_equivalence.cc.o"
  "CMakeFiles/composite_equivalence.dir/composite_equivalence.cc.o.d"
  "composite_equivalence"
  "composite_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
