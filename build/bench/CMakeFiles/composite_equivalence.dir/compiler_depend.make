# Empty compiler generated dependencies file for composite_equivalence.
# This may be replaced when dependencies are built.
