# Empty compiler generated dependencies file for concurrency_degree.
# This may be replaced when dependencies are built.
