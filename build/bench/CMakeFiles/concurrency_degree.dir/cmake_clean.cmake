file(REMOVE_RECURSE
  "CMakeFiles/concurrency_degree.dir/concurrency_degree.cc.o"
  "CMakeFiles/concurrency_degree.dir/concurrency_degree.cc.o.d"
  "concurrency_degree"
  "concurrency_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
