# Empty dependencies file for rollback_schemes.
# This may be replaced when dependencies are built.
