file(REMOVE_RECURSE
  "CMakeFiles/rollback_schemes.dir/rollback_schemes.cc.o"
  "CMakeFiles/rollback_schemes.dir/rollback_schemes.cc.o.d"
  "rollback_schemes"
  "rollback_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
