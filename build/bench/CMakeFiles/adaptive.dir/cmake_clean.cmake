file(REMOVE_RECURSE
  "CMakeFiles/adaptive.dir/adaptive.cc.o"
  "CMakeFiles/adaptive.dir/adaptive.cc.o.d"
  "adaptive"
  "adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
