file(REMOVE_RECURSE
  "CMakeFiles/fig6_7_parallel_compare.dir/fig6_7_parallel_compare.cc.o"
  "CMakeFiles/fig6_7_parallel_compare.dir/fig6_7_parallel_compare.cc.o.d"
  "fig6_7_parallel_compare"
  "fig6_7_parallel_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_7_parallel_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
