# Empty dependencies file for fig6_7_parallel_compare.
# This may be replaced when dependencies are built.
