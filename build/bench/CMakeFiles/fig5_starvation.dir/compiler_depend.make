# Empty compiler generated dependencies file for fig5_starvation.
# This may be replaced when dependencies are built.
