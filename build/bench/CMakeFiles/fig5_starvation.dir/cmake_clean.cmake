file(REMOVE_RECURSE
  "CMakeFiles/fig5_starvation.dir/fig5_starvation.cc.o"
  "CMakeFiles/fig5_starvation.dir/fig5_starvation.cc.o.d"
  "fig5_starvation"
  "fig5_starvation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
