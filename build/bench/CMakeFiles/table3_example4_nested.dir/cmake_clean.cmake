file(REMOVE_RECURSE
  "CMakeFiles/table3_example4_nested.dir/table3_example4_nested.cc.o"
  "CMakeFiles/table3_example4_nested.dir/table3_example4_nested.cc.o.d"
  "table3_example4_nested"
  "table3_example4_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_example4_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
