# Empty dependencies file for table3_example4_nested.
# This may be replaced when dependencies are built.
