# Empty dependencies file for multiversion.
# This may be replaced when dependencies are built.
