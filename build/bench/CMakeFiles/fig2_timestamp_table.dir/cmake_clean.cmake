file(REMOVE_RECURSE
  "CMakeFiles/fig2_timestamp_table.dir/fig2_timestamp_table.cc.o"
  "CMakeFiles/fig2_timestamp_table.dir/fig2_timestamp_table.cc.o.d"
  "fig2_timestamp_table"
  "fig2_timestamp_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_timestamp_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
