# Empty compiler generated dependencies file for fig2_timestamp_table.
# This may be replaced when dependencies are built.
