file(REMOVE_RECURSE
  "CMakeFiles/table2_optimized_encoding.dir/table2_optimized_encoding.cc.o"
  "CMakeFiles/table2_optimized_encoding.dir/table2_optimized_encoding.cc.o.d"
  "table2_optimized_encoding"
  "table2_optimized_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_optimized_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
