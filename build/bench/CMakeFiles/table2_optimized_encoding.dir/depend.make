# Empty dependencies file for table2_optimized_encoding.
# This may be replaced when dependencies are built.
