file(REMOVE_RECURSE
  "CMakeFiles/complexity.dir/complexity.cc.o"
  "CMakeFiles/complexity.dir/complexity.cc.o.d"
  "complexity"
  "complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
