# Empty compiler generated dependencies file for complexity.
# This may be replaced when dependencies are built.
