file(REMOVE_RECURSE
  "CMakeFiles/distributed_dmt.dir/distributed_dmt.cc.o"
  "CMakeFiles/distributed_dmt.dir/distributed_dmt.cc.o.d"
  "distributed_dmt"
  "distributed_dmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_dmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
