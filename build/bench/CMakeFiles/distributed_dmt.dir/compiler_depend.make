# Empty compiler generated dependencies file for distributed_dmt.
# This may be replaced when dependencies are built.
