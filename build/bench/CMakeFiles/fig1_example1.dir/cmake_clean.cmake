file(REMOVE_RECURSE
  "CMakeFiles/fig1_example1.dir/fig1_example1.cc.o"
  "CMakeFiles/fig1_example1.dir/fig1_example1.cc.o.d"
  "fig1_example1"
  "fig1_example1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_example1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
