
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_example1.cc" "bench/CMakeFiles/fig1_example1.dir/fig1_example1.cc.o" "gcc" "bench/CMakeFiles/fig1_example1.dir/fig1_example1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classify/CMakeFiles/mdts_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mdts_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
