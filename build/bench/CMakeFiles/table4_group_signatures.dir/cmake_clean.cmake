file(REMOVE_RECURSE
  "CMakeFiles/table4_group_signatures.dir/table4_group_signatures.cc.o"
  "CMakeFiles/table4_group_signatures.dir/table4_group_signatures.cc.o.d"
  "table4_group_signatures"
  "table4_group_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_group_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
