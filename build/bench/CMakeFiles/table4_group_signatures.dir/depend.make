# Empty dependencies file for table4_group_signatures.
# This may be replaced when dependencies are built.
