file(REMOVE_RECURSE
  "CMakeFiles/starvation_rates.dir/starvation_rates.cc.o"
  "CMakeFiles/starvation_rates.dir/starvation_rates.cc.o.d"
  "starvation_rates"
  "starvation_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starvation_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
