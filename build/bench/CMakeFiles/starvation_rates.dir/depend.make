# Empty dependencies file for starvation_rates.
# This may be replaced when dependencies are built.
