# Empty dependencies file for fig8_10_composite_tables.
# This may be replaced when dependencies are built.
