file(REMOVE_RECURSE
  "CMakeFiles/fig8_10_composite_tables.dir/fig8_10_composite_tables.cc.o"
  "CMakeFiles/fig8_10_composite_tables.dir/fig8_10_composite_tables.cc.o.d"
  "fig8_10_composite_tables"
  "fig8_10_composite_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_10_composite_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
