file(REMOVE_RECURSE
  "CMakeFiles/mdts_cli.dir/mdts_cli.cc.o"
  "CMakeFiles/mdts_cli.dir/mdts_cli.cc.o.d"
  "mdts_cli"
  "mdts_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdts_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
