
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/mdts_cli.cc" "examples/CMakeFiles/mdts_cli.dir/mdts_cli.cc.o" "gcc" "examples/CMakeFiles/mdts_cli.dir/mdts_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/composite/CMakeFiles/mdts_composite.dir/DependInfo.cmake"
  "/root/repo/build/src/mvcc/CMakeFiles/mdts_mvcc.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mdts_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
