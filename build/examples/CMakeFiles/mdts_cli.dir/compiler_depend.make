# Empty compiler generated dependencies file for mdts_cli.
# This may be replaced when dependencies are built.
