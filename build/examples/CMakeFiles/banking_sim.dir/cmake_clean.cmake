file(REMOVE_RECURSE
  "CMakeFiles/banking_sim.dir/banking_sim.cc.o"
  "CMakeFiles/banking_sim.dir/banking_sim.cc.o.d"
  "banking_sim"
  "banking_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
