# Empty compiler generated dependencies file for banking_sim.
# This may be replaced when dependencies are built.
