# Empty dependencies file for classifier_tour.
# This may be replaced when dependencies are built.
