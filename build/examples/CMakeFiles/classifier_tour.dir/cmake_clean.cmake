file(REMOVE_RECURSE
  "CMakeFiles/classifier_tour.dir/classifier_tour.cc.o"
  "CMakeFiles/classifier_tour.dir/classifier_tour.cc.o.d"
  "classifier_tour"
  "classifier_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
