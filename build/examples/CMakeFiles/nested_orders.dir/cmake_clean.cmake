file(REMOVE_RECURSE
  "CMakeFiles/nested_orders.dir/nested_orders.cc.o"
  "CMakeFiles/nested_orders.dir/nested_orders.cc.o.d"
  "nested_orders"
  "nested_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
