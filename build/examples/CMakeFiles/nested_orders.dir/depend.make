# Empty dependencies file for nested_orders.
# This may be replaced when dependencies are built.
