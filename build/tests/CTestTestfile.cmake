# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/timestamp_vector_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/mtk_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/classify_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/theorems_test[1]_include.cmake")
include("/root/repo/build/tests/composite_test[1]_include.cmake")
include("/root/repo/build/tests/nested_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/mvcc_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
