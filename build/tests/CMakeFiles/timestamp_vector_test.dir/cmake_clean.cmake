file(REMOVE_RECURSE
  "CMakeFiles/timestamp_vector_test.dir/timestamp_vector_test.cc.o"
  "CMakeFiles/timestamp_vector_test.dir/timestamp_vector_test.cc.o.d"
  "timestamp_vector_test"
  "timestamp_vector_test.pdb"
  "timestamp_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamp_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
