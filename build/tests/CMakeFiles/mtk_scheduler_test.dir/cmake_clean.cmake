file(REMOVE_RECURSE
  "CMakeFiles/mtk_scheduler_test.dir/mtk_scheduler_test.cc.o"
  "CMakeFiles/mtk_scheduler_test.dir/mtk_scheduler_test.cc.o.d"
  "mtk_scheduler_test"
  "mtk_scheduler_test.pdb"
  "mtk_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtk_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
