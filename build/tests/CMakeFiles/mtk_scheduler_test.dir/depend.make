# Empty dependencies file for mtk_scheduler_test.
# This may be replaced when dependencies are built.
