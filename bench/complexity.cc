// Section III-D-3 / Theorem 4 microbenchmarks (google-benchmark): the
// MT(k) recognizer runs in O(nqk) time - linear in the number of
// transactions n, the operations per transaction q, and the vector size k
// - and the simulated parallel comparator replaces the O(k) comparison
// with O(log k) phases.

#include <benchmark/benchmark.h>

#include "core/recognizer.h"
#include "parallel/parallel_compare.h"
#include "workload/generator.h"

namespace mdts {
namespace {

Log MakeLog(uint32_t n, uint32_t q, uint64_t seed) {
  WorkloadOptions w;
  w.num_txns = n;
  w.num_items = std::max<uint32_t>(8, n / 2);
  w.min_ops = q;
  w.max_ops = q;
  w.read_fraction = 0.5;
  w.seed = seed;
  return GenerateLog(w);
}

// O(n): scheduling time vs number of transactions (q = 3, k = 5 fixed).
void BM_RecognizerVsTransactions(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Log log = MakeLog(n, 3, 99);
  MtkOptions options;
  options.k = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RecognizeLog(log, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_RecognizerVsTransactions)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// O(q): scheduling time vs operations per transaction (n = 64, k = 5).
void BM_RecognizerVsOpsPerTxn(benchmark::State& state) {
  const uint32_t q = static_cast<uint32_t>(state.range(0));
  Log log = MakeLog(64, q, 7);
  MtkOptions options;
  options.k = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RecognizeLog(log, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_RecognizerVsOpsPerTxn)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// O(k): scheduling time vs vector size (n = 64, q = 3).
void BM_RecognizerVsVectorSize(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Log log = MakeLog(64, 3, 13);
  MtkOptions options;
  options.k = k;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RecognizeLog(log, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_RecognizerVsVectorSize)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(
    256);

// Sequential Definition-6 comparison: O(k) per compare.
void BM_SequentialCompare(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  TimestampVector a(k), b(k);
  for (size_t i = 0; i < k; ++i) {
    a.Set(i, 1);
    b.Set(i, 1);
  }
  b.Set(k - 1, 2);  // Worst case: decided at the last element.
  for (auto _ : state) {
    benchmark::DoNotOptimize(Compare(a, b));
  }
}
BENCHMARK(BM_SequentialCompare)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384);

// Simulated parallel comparison: wall time here is the simulation cost;
// the reported "phases" counter (via label) is the paper's O(log k) depth.
void BM_ParallelComparePhases(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  TimestampVector a(k), b(k);
  for (size_t i = 0; i < k; ++i) {
    a.Set(i, 1);
    b.Set(i, 1);
  }
  b.Set(k - 1, 2);
  size_t phases = 0;
  for (auto _ : state) {
    auto r = ParallelCompare(a, b);
    phases = r.phases;
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("phases=" + std::to_string(phases));
}
BENCHMARK(BM_ParallelComparePhases)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384);

// The composite MT(k+) schedules in O(k) per operation (Section IV).
void BM_RecognizerUnionVsVectorSize(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Log log = MakeLog(64, 3, 17);
  for (auto _ : state) {
    // Recognize through the recognizer of the largest subprotocol only is
    // O(nqk); the shared-prefix composite costs the same order.
    MtkOptions options;
    options.k = k;
    benchmark::DoNotOptimize(RecognizeLog(log, options));
  }
}
BENCHMARK(BM_RecognizerUnionVsVectorSize)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace mdts

BENCHMARK_MAIN();
