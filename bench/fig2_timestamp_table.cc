// Regenerates paper Fig. 2: the timestamp table of MT(k) - rows are the
// transactions' timestamp vectors, and RT(x)/WT(x) locate the most recent
// read/write timestamp per item. We run a small workload through MT(3) and
// dump the live table plus the per-item index columns.

#include <cstdio>
#include <string>

#include "common/table_printer.h"
#include "core/log.h"
#include "core/mtk_scheduler.h"

namespace mdts {
namespace {

int Run() {
  std::printf("=== Fig. 2: the timestamp table of MT(k), k = 3 ===\n\n");
  const Log log =
      *Log::Parse("R1[x] R2[y] W1[y] R3[z] W3[x] R4[w] W2[w] R4[z]");
  std::printf("Workload: %s\n\n", log.ToString().c_str());

  MtkOptions options;
  options.k = 3;
  MtkScheduler s(options);
  for (const Op& op : log.ops()) {
    std::printf("  %-6s -> %s\n", OpName(op).c_str(),
                OpDecisionName(s.Process(op)));
  }

  std::printf("\nTimestamp table (rows = vectors, columns = elements):\n");
  std::printf("%s\n", s.DumpTable(4).c_str());

  std::printf("Per-item most recent read/write timestamps:\n");
  TablePrinter items({"item", "RT(x)", "TS(RT(x))", "WT(x)", "TS(WT(x))"});
  for (ItemId x = 0; x < log.num_items(); ++x) {
    const TxnId r = s.Rt(x);
    const TxnId w = s.Wt(x);
    items.AddRow({ItemName(x), "T" + std::to_string(r),
                  s.Ts(r).ToString(), "T" + std::to_string(w),
                  s.Ts(w).ToString()});
  }
  std::printf("%s\n", items.ToString().c_str());

  std::printf("Storage note (Section III-D-6): after compaction only each\n"
              "item's most recent reader and writer entries remain.\n");
  s.CompactItemHistories();
  std::printf("Compaction ran; table unchanged:\n%s", s.DumpTable(4).c_str());
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
