// Regenerates paper Fig. 4: the hierarchy of serializable-log classes for
// the two-step transaction model (q = 2): 2PL, TO(1), TO(3) (= TO(k) for
// all k >= 3 by Theorem 3), SSR, DSR, SR.
//
// Method: exhaustively enumerate every two-step log with 3 transactions
// over 2 items (T_i = R_i[a] W_i[b], all item choices, all interleavings:
// 2^6 * 90 = 5760 logs), classify each against every class, and report the
// population and one witness log per membership combination (= Fig. 4
// region). Then verify the structural claims the paper derives from the
// figure, including the composite-log membership arguments for L7 = L2.L6
// and L9 = L4.L7.

#include <cstdio>
#include <map>
#include <string>

#include "classify/classes.h"
#include "classify/hierarchy.h"
#include "common/table_printer.h"
#include "core/log.h"
#include "core/recognizer.h"
#include "workload/enumerate.h"

namespace mdts {
namespace {

struct RegionInfo {
  size_t count = 0;
  std::string witness;
  ClassMembership membership;
};

int failures = 0;

void Check(bool condition, const char* what) {
  std::printf("  [%s] %s\n", condition ? "ok" : "REPRODUCTION FAILURE",
              what);
  if (!condition) ++failures;
}

int Run() {
  std::printf("=== Fig. 4: classes of serializable logs, two-step model ===\n\n");
  std::printf("Universe: all two-step logs, 3 transactions over 2 items\n\n");

  std::map<std::string, RegionInfo> regions;
  size_t total = 0;

  // Membership census.
  ForEachTwoStepLog(3, 2, [&](const Log& log) {
    ++total;
    auto m = ClassifyLog(log);
    if (!m.ok()) {
      std::printf("classification error: %s\n", m.status().ToString().c_str());
      ++failures;
      return false;
    }
    const std::string sig = MembershipSignature(*m);
    RegionInfo& info = regions[sig];
    if (info.count == 0) {
      info.witness = log.ToString();
      info.membership = *m;
    }
    ++info.count;
    return true;
  });

  TablePrinter table({"region", "membership signature", "logs", "witness"});
  for (const auto& [sig, info] : regions) {
    table.AddRow({std::to_string(Fig4Region(info.membership)), sig,
                  std::to_string(info.count), info.witness});
  }
  std::printf("%zu logs enumerated, %zu distinct membership regions:\n%s\n",
              total, regions.size(), table.ToString().c_str());

  // Structural claims of Fig. 4 and Section III-C.
  std::printf("Hierarchy claims:\n");
  bool containments_ok = true;
  bool to3_eq_to45 = true;
  bool to3_not_to1 = false, to1_not_to3 = false;
  bool dsr_not_to3 = false, dsr_not_2pl = false, ssr_minus_dsr = false;
  bool nonserializable_exists = false;
  for (const auto& [sig, info] : regions) {
    const ClassMembership& m = info.membership;
    if ((m.two_pl || m.to1 || m.to3) && !m.dsr) containments_ok = false;
    if (m.dsr && !m.sr) containments_ok = false;
    if (m.ssr && !m.sr) containments_ok = false;
    if (m.to3 && !m.to1) to3_not_to1 = true;
    if (m.to1 && !m.to3) to1_not_to3 = true;
    if (m.dsr && !m.to3) dsr_not_to3 = true;
    if (m.dsr && !m.two_pl) dsr_not_2pl = true;
    if (m.ssr && !m.dsr) ssr_minus_dsr = true;
    if (!m.sr) nonserializable_exists = true;
  }
  // Theorem 3 on the whole universe: TO(3) = TO(4) = TO(5).
  ForEachTwoStepLog(3, 2, [&](const Log& log) {
    const bool to3 = IsToK(log, 3);
    if (IsToK(log, 4) != to3 || IsToK(log, 5) != to3) to3_eq_to45 = false;
    return to3_eq_to45;
  });

  Check(containments_ok, "2PL, TO(k) inside DSR; DSR, SSR inside SR");
  Check(to3_eq_to45, "TO(3) = TO(4) = TO(5) over the universe (Theorem 3)");
  Check(to3_not_to1, "TO(3) - TO(1) nonempty (regions right of TO(1))");
  Check(to1_not_to3, "TO(1) - TO(3) nonempty (TO classes incomparable)");
  Check(dsr_not_to3, "DSR - TO(3) nonempty (TO(k) proper in DSR)");
  Check(dsr_not_2pl, "DSR - 2PL nonempty (2PL proper in DSR)");
  Check(ssr_minus_dsr, "SSR - DSR nonempty (Fig. 4's SSR bulge)");
  Check(nonserializable_exists, "logs outside SR exist");

  // Composite-log membership arguments (Section III-C's proofs):
  //   L2 in TO(3) n SSR n 2PL - TO(1),  L6 in TO(3) n SSR n TO(1) - 2PL,
  //   L4 in DSR n SSR - TO(3).
  std::printf("\nComposite-log arguments (L7 = L2.L6, L9 = L4.L7):\n");
  Log l2, l4, l6;
  bool have2 = false, have4 = false, have6 = false;
  ForEachTwoStepLog(3, 2, [&](const Log& log) {
    auto m = ClassifyLog(log);
    if (!m.ok()) return false;
    if (!have2 && m->to3 && m->ssr && m->two_pl && !m->to1) {
      l2 = log;
      have2 = true;
    }
    if (!have6 && m->to3 && m->ssr && m->to1 && !m->two_pl) {
      l6 = log;
      have6 = true;
    }
    if (!have4 && m->dsr && m->ssr && !m->to3) {
      l4 = log;
      have4 = true;
    }
    return !(have2 && have4 && have6);
  });
  Check(have2, "found L2 in TO(3) n SSR n 2PL - TO(1)");
  Check(have6, "found L6 in TO(3) n SSR n TO(1) - 2PL");
  Check(have4, "found L4 in DSR n SSR - TO(3)");
  if (have2 && have4 && have6) {
    std::printf("  L2 = %s\n  L6 = %s\n  L4 = %s\n", l2.ToString().c_str(),
                l6.ToString().c_str(), l4.ToString().c_str());
    const Log l7 = l2.Concat(l6);
    auto m7 = IsSsr(l7);
    Check(m7.ok() && *m7 && IsToK(l7, 3) && !IsToK(l7, 1) && !IsTwoPl(l7),
          "L7 = L2.L6 in TO(3) n SSR - TO(1) - 2PL (region 7)");
    const Log l9 = l4.Concat(l7);
    // 9 transactions: use the conflict-based sufficient SSR test.
    Check(IsDsr(l9) && IsSsrConflict(l9) && !IsToK(l9, 3) && !IsTwoPl(l9) &&
              !IsToK(l9, 1),
          "L9 = L4.L7 in DSR n SSR - TO(3) - 2PL - TO(1) (region 9)");
  }

  std::printf("\n%s\n", failures == 0
                            ? "Fig. 4 fully reproduced."
                            : "Fig. 4 reproduction had FAILURES (see above).");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
