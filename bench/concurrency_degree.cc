// Section III-C experiment: the degree of concurrency - the fraction of
// (serializable) logs a scheduler accepts - as the vector size k grows.
// Reproduces the paper's central claims quantitatively:
//   * MT(k) accepts more logs than TO(1)-style scheduling,
//   * TO(k) is NOT monotone in k, but TO(k+) (the composite MT(k+)) is,
//   * k = 2q-1 saturates MT(k) (Theorem 3),
//   * everything stays inside DSR.

#include <cstdio>
#include <string>

#include "classify/classes.h"
#include "common/table_printer.h"
#include "composite/naive_union.h"
#include "core/recognizer.h"
#include "workload/generator.h"

namespace mdts {
namespace {

struct Counts {
  int dsr = 0;
  int to[8] = {0};       // TO(1..7).
  int to_plus[8] = {0};  // TO(1+..7+).
  int total = 0;
};

Counts Sweep(uint32_t num_items, uint32_t q, double read_fraction,
             int rounds) {
  Counts c;
  for (int i = 0; i < rounds; ++i) {
    WorkloadOptions w;
    w.num_txns = 6;
    w.num_items = num_items;
    w.min_ops = q;
    w.max_ops = q;
    w.read_fraction = read_fraction;
    w.seed = 10'000 + static_cast<uint64_t>(i) * 37 + num_items;
    Log log = GenerateLog(w);
    ++c.total;
    if (IsDsr(log)) ++c.dsr;
    for (size_t k = 1; k <= 7; ++k) {
      if (IsToK(log, k)) ++c.to[k];
      if (IsToKPlus(log, k)) ++c.to_plus[k];
    }
  }
  return c;
}

int failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "REPRODUCTION FAILURE", what);
  if (!ok) ++failures;
}

int Run() {
  std::printf("=== Degree of concurrency vs vector size ===\n\n");
  const int rounds = 1500;

  for (uint32_t q : {2u, 3u}) {
    const size_t kstar = 2 * q - 1;
    std::printf("--- q = %u operations per transaction (2q-1 = %zu), "
                "6 txns, 5 items, 50%% reads, %d random logs ---\n",
                q, kstar, rounds);
    Counts c = Sweep(5, q, 0.5, rounds);

    TablePrinter table({"class", "accepted", "of DSR logs (%)"});
    auto pct = [&](int n) {
      return c.dsr == 0 ? std::string("-")
                        : FormatDouble(100.0 * n / c.dsr, 1);
    };
    table.AddRow({"DSR (upper bound)", std::to_string(c.dsr), "100.0"});
    for (size_t k = 1; k <= kstar + 2 && k <= 7; ++k) {
      table.AddRow({"TO(" + std::to_string(k) + ")", std::to_string(c.to[k]),
                    pct(c.to[k])});
    }
    for (size_t k = 1; k <= kstar + 2 && k <= 7; ++k) {
      table.AddRow({"TO(" + std::to_string(k) + "+)",
                    std::to_string(c.to_plus[k]), pct(c.to_plus[k])});
    }
    std::printf("%s\n", table.ToString().c_str());

    bool monotone = true;
    for (size_t k = 2; k <= 7; ++k) {
      if (c.to_plus[k] < c.to_plus[k - 1]) monotone = false;
    }
    Check(monotone, "TO(k+) acceptance is monotone in k (inclusivity)");
    bool saturated = true;
    for (size_t k = kstar; k < 7; ++k) {
      if (c.to[k + 1] != c.to[kstar] && k + 1 > kstar) saturated = false;
    }
    Check(saturated, "TO(k) saturates at k = 2q-1 (Theorem 3)");
    bool inside_dsr = true;
    for (size_t k = 1; k <= 7; ++k) {
      if (c.to[k] > c.dsr || c.to_plus[k] > c.dsr) inside_dsr = false;
    }
    Check(inside_dsr, "every TO class stays inside DSR");
    Check(c.to_plus[kstar] >= c.to[1],
          "MT((2q-1)+) accepts at least as many logs as one-dimensional "
          "timestamps");
    std::printf("\n");
  }

  std::printf("--- contention sweep (q = 2, k* = 3, %d logs each) ---\n",
              rounds);
  TablePrinter table({"items", "DSR", "TO(1)", "TO(3)", "TO(3+)",
                      "TO(3+)/TO(1) gain"});
  for (uint32_t items : {3u, 5u, 8u, 16u, 32u}) {
    Counts c = Sweep(items, 2, 0.5, rounds);
    const double gain =
        c.to[1] > 0 ? static_cast<double>(c.to_plus[3]) / c.to[1] : 0.0;
    table.AddRow({std::to_string(items), std::to_string(c.dsr),
                  std::to_string(c.to[1]), std::to_string(c.to[3]),
                  std::to_string(c.to_plus[3]), FormatDouble(gain, 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Expected shape: the multidimensional advantage is largest\n"
              "under contention (few items) and fades as conflicts vanish.\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
