// Regenerates paper Table IV (Section V-A, Example 6): two groups defined
// by read/write-set signatures
//     G1 = { T : read_set = {x,z}, write_set = {y,z} }
//     G2 = { T : read_set = {y,w}, write_set = {x,w} }
// We generate transactions matching both signatures, auto-partition them
// with PartitionByReadWriteSignature, run MT(2,2), and demonstrate the
// inter-group antisymmetry the paper highlights.

#include <cstdio>
#include <string>

#include "common/table_printer.h"
#include "core/log.h"
#include "nested/nested_scheduler.h"
#include "nested/partition.h"

namespace mdts {
namespace {

int failures = 0;

void Expect(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "REPRODUCTION FAILURE", what);
  if (!ok) ++failures;
}

int Run() {
  std::printf("=== Table IV: groups by read/write-set signature ===\n\n");
  std::printf("         x     y     z     w\n");
  std::printf("  G1     R     W     R,W\n");
  std::printf("  G2     W     R           R,W\n\n");

  // T1, T3 follow G1's signature; T2, T4 follow G2's. The G1 transactions
  // run before the G2 transactions on the shared items x and y, so every
  // inter-group dependency points G1 -> G2 (groups make the data flow
  // one-directional - the antisymmetry the paper emphasizes).
  const Log log = *Log::Parse(
      "R1[x] R1[z] W1[y] W1[z] "
      "R3[x] R3[z] W3[y] W3[z] "
      "R2[y] R2[w] W2[x] W2[w] "
      "R4[y] R4[w] W4[x] W4[w]");

  auto partition = PartitionByReadWriteSignature(log);
  TablePrinter table({"txn", "read set", "write set", "group"});
  for (TxnId t = 1; t <= log.num_txns(); ++t) {
    std::string reads, writes;
    for (ItemId x : log.ReadSet(t)) reads += ItemName(x) + " ";
    for (ItemId x : log.WriteSet(t)) writes += ItemName(x) + " ";
    table.AddRow({"T" + std::to_string(t), reads, writes,
                  "G" + std::to_string(partition[t - 1])});
  }
  std::printf("%s\n", table.ToString().c_str());
  Expect(partition[0] == partition[2] && partition[1] == partition[3] &&
             partition[0] != partition[1],
         "signatures induce exactly the two groups of Table IV");

  NestedMtScheduler s({2, 2});
  Expect(RegisterPartition(&s, partition).ok(), "partition registered");

  std::printf("\nRunning the interleaved log through MT(2,2):\n");
  bool all_accepted = true;
  for (const Op& op : log.ops()) {
    const OpDecision d = s.Process(op);
    if (d != OpDecision::kAccept) all_accepted = false;
    std::printf("  %-6s -> %s\n", OpName(op).c_str(), OpDecisionName(d));
  }
  Expect(all_accepted, "serial-per-group interleaving accepted");
  std::printf("\n%s\n", s.DumpTables(4).c_str());

  // Antisymmetry: G1 accessed x before G2 wrote it (R1[x] < W2[x]), fixing
  // G1 -> G2; a later G2-member output feeding a G1 member is refused.
  std::printf("Antisymmetry: T3 (G1) now tries to read w, last written by "
              "T4 (G2),\nwhich would imply G2 -> G1:\n");
  const OpDecision d = s.Process(Op{3, OpType::kRead, 3});
  std::printf("  R3[w] -> %s\n", OpDecisionName(d));
  Expect(d == OpDecision::kReject,
         "reverse inter-group dependency rejected (antisymmetric, as the "
         "paper notes this can also be a semantic requirement)");

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
