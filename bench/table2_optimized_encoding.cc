// Regenerates paper Table II (Section III-D-5, Example 3): a frequently
// accessed item x drives the middle of the log R1[x] W2[x] W3[x], and the
// normal encoding rules build a total order that also drags in the
// bystander T4 = <1,4>. The optimized right-end encoding avoids this.
// A quantitative ablation then measures acceptance on Zipf-hot workloads
// with and without optimized encoding.

#include <cstdio>
#include <string>

#include "common/table_printer.h"
#include "core/log.h"
#include "core/mtk_scheduler.h"
#include "core/recognizer.h"
#include "workload/generator.h"

namespace mdts {
namespace {

int failures = 0;

void Expect(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "REPRODUCTION FAILURE", what);
  if (!ok) ++failures;
}

// Prefix that manufactures the bystander TS(4) = <1,4> of Table II (two
// undefined-pair encodings consume ucount values (1,2) and (3,4)).
constexpr char kPrefix[] = "R6[4] R7[5] W7[4] R4[6] R8[7] W4[7]";

void ReplayTable2() {
  std::printf("--- Table II replay (k = 2, normal encoding) ---\n");
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  const Log prefix = *Log::Parse(kPrefix);
  for (const Op& op : prefix.ops()) s.Process(op);
  Expect(s.Ts(4).ToString() == "<1,4>", "precondition TS(4) = <1,4>");

  TablePrinter table({"dependency", "TS(0)", "TS(1)", "TS(2)", "TS(3)",
                      "TS(4)"});
  auto row = [&](const char* label) {
    table.AddRow({label, s.Ts(0).ToString(), s.Ts(1).ToString(),
                  s.Ts(2).ToString(), s.Ts(3).ToString(),
                  s.Ts(4).ToString()});
  };
  row("vectors just before the middle");
  s.Process(Op{1, OpType::kRead, 0});
  row("T0 -> T1 (R1[x])");
  s.Process(Op{2, OpType::kWrite, 0});
  row("T1 -> T2 (W2[x])");
  s.Process(Op{3, OpType::kWrite, 0});
  row("T2 -> T3 (W3[x])");
  std::printf("%s", table.ToString().c_str());

  Expect(s.Ts(1).ToString() == "<1,*>" && s.Ts(2).ToString() == "<2,*>" &&
             s.Ts(3).ToString() == "<3,*>" && s.Ts(4).ToString() == "<1,4>",
         "resulting vectors match Table II");
  Expect(VectorLess(s.Ts(4), s.Ts(2)) && VectorLess(s.Ts(4), s.Ts(3)),
         "hot item created a total order: T4 ordered against T2 and T3 "
         "although they never conflicted");
  std::printf("\n");
}

void ShowOptimizedVariant() {
  std::printf("--- Section III-D-5 optimized encoding (k = 4) ---\n");
  std::printf("Worked example: encode T1 -> T2 when TS(1) = <1,3,*,*> and\n"
              "TS(2) is fully undefined, via a hot item:\n");
  MtkOptions options;
  options.k = 4;
  options.optimized_encoding = true;
  options.hot_item_threshold = 3;
  MtkScheduler s(options);
  const Log setup = *Log::Parse("R5[4] R6[5] W5[5] R1[6] W1[4]");
  for (const Op& op : setup.ops()) s.Process(op);
  Expect(s.Ts(1).ToString() == "<1,3,*,*>", "setup TS(1) = <1,3,*,*>");
  const Log hot_ops = *Log::Parse("R9[7] R9[7] R1[7] W2[7]");
  for (const Op& op : hot_ops.ops()) s.Process(op);
  std::printf("  TS(1) = %s   TS(2) = %s\n", s.Ts(1).ToString().c_str(),
              s.Ts(2).ToString().c_str());
  Expect(s.Ts(1).ToString() == "<1,3,1,*>" &&
             s.Ts(2).ToString() == "<1,3,2,*>",
         "prefix copied, dependency encoded at the right end "
         "(paper's <1,3,1,*> / <1,3,2,*>)");
  std::printf("\n");
}

void Ablation() {
  std::printf("--- Ablation: acceptance rate on Zipf-hot workloads ---\n");
  TablePrinter table({"zipf theta", "k", "accepted (normal)",
                      "accepted (optimized)", "logs"});
  for (double theta : {0.0, 0.9, 1.4}) {
    for (size_t k : {4u, 6u}) {
      int normal = 0, optimized = 0;
      const int rounds = 400;
      for (int i = 0; i < rounds; ++i) {
        WorkloadOptions w;
        w.num_txns = 8;
        w.num_items = 8;
        w.min_ops = 2;
        w.max_ops = 3;
        w.zipf_theta = theta;
        w.read_fraction = 0.6;
        w.distinct_items_per_txn = false;
        w.seed = 1000 + i;
        Log log = GenerateLog(w);

        MtkOptions base;
        base.k = k;
        if (RecognizeLog(log, base).accepted) ++normal;
        MtkOptions opt = base;
        opt.optimized_encoding = true;
        opt.hot_item_threshold = 4;
        if (RecognizeLog(log, opt).accepted) ++optimized;
      }
      table.AddRow({FormatDouble(theta, 1), std::to_string(k),
                    std::to_string(normal), std::to_string(optimized),
                    std::to_string(rounds)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Interpretation: on random whole-log acceptance the two encodings\n"
      "are statistically indistinguishable - the optimized rules keep\n"
      "bystanders unordered (the structural effect shown exactly above)\n"
      "but also assign more elements per dependency, and the two effects\n"
      "offset. The paper's example-level claim is reproduced exactly; its\n"
      "'higher concurrency in the future' holds for the bystander pattern\n"
      "of Example 3, not as a blanket acceptance-rate win.\n");
}

int Run() {
  std::printf("=== Table II + Section III-D-5: optimized encoding ===\n\n");
  ReplayTable2();
  ShowOptimizedVariant();
  Ablation();
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
