// Section V-B experiment: the decentralized protocol DMT(k).
// Measures message overhead per operation, response time, and load balance
// as the number of sites grows; verifies deadlock-free completion and
// global serializability; shows the effect of periodic counter
// synchronization under unbalanced load.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "classify/classes.h"
#include "common/bench_clock.h"
#include "common/bench_json.h"
#include "common/table_printer.h"
#include "dist/dmt_system.h"
#include "obs/dspan.h"
#include "obs/metrics.h"

namespace mdts {
namespace {

int failures = 0;

DmtOptions Base(uint64_t seed) {
  DmtOptions options;
  options.k = 3;
  options.num_txns = 150;
  options.concurrency = 10;
  options.message_latency = 0.5;
  options.seed = seed;
  options.workload.num_items = 18;
  options.workload.min_ops = 2;
  options.workload.max_ops = 4;
  options.workload.read_fraction = 0.6;
  return options;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// One wall-clock measurement of the distributed simulation: transactions
// per second of real time, optionally with the distributed tracer (span
// ring + path collector + the dmt.path.* instruments) attached at the
// given per-transaction sampling shift. A private registry keeps the
// arms from polluting the global metrics.
double TxnsPerSec(bool traced, uint32_t sample_shift) {
  DmtOptions options = Base(13);
  options.num_sites = 4;
  options.num_txns = 400;
  options.concurrency = 12;
  MetricsRegistry registry;
  options.metrics = &registry;
  std::unique_ptr<SpanRing> spans;
  std::unique_ptr<PathCollector> paths;
  if (traced) {
    SpanRingOptions sro;
    sro.rings = 4;
    sro.capacity = 1024;
    spans = std::make_unique<SpanRing>(sro);
    paths = std::make_unique<PathCollector>(16);
    options.spans = spans.get();
    options.paths = paths.get();
    options.trace_sample_shift = sample_shift;
  }
  Stopwatch sw;
  const DmtResult r = RunDmtSimulation(options);
  const double secs = sw.ElapsedSeconds();
  if (r.committed + r.gave_up != options.num_txns) ++failures;
  return secs > 0 ? static_cast<double>(options.num_txns) / secs : 0.0;
}

// Paired A/B overhead of tracing at `sample_shift`, as a percent of the
// untraced arm. Arms run in adjacent pairs with the order flipped every
// other pair, and the headline is the median of per-pair deltas (the same
// noise discipline as mt_throughput's observability gates): interference
// bursts corrupt one pair's delta instead of shifting a per-arm median.
struct AbResult {
  double base_tps = 0.0;
  double traced_tps = 0.0;
  double overhead_pct = 0.0;
};

AbResult MeasureTraceOverhead(int pairs, uint32_t sample_shift) {
  std::vector<double> base_tps, traced_tps, deltas;
  for (int p = 0; p < pairs; ++p) {
    double a = 0, b = 0;  // a = untraced baseline, b = tracer attached.
    if (p % 2 == 0) {
      a = TxnsPerSec(false, 0);
      b = TxnsPerSec(true, sample_shift);
    } else {
      b = TxnsPerSec(true, sample_shift);
      a = TxnsPerSec(false, 0);
    }
    base_tps.push_back(a);
    traced_tps.push_back(b);
    if (a > 0) deltas.push_back((a - b) / a * 100.0);
  }
  return {Median(base_tps), Median(traced_tps), Median(deltas)};
}

int Run(const char* out_path) {
  std::printf("=== DMT(k): decentralized concurrency control ===\n\n");

  TablePrinter table({"sites", "committed", "aborts", "max consec aborts",
                      "messages", "msgs/op", "lock waits", "avg response",
                      "DSR audit"});
  for (uint32_t sites : {1u, 2u, 4u, 8u}) {
    DmtOptions options = Base(5);
    options.num_sites = sites;
    DmtResult r = RunDmtSimulation(options);
    const bool dsr = IsDsr(r.committed_history);
    if (!dsr || r.committed + r.gave_up != options.num_txns) ++failures;
    table.AddRow({std::to_string(sites), std::to_string(r.committed),
                  std::to_string(r.aborts),
                  std::to_string(r.max_consecutive_aborts),
                  std::to_string(r.messages_sent),
                  FormatDouble(r.ops_scheduled
                                   ? static_cast<double>(r.messages_sent) /
                                         static_cast<double>(r.ops_scheduled)
                                   : 0.0,
                               2),
                  std::to_string(r.lock_waits),
                  FormatDouble(r.avg_response_time, 2),
                  dsr ? "ok" : "FAILED"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("[%s] every configuration completed deadlock-free with a\n"
              "     serializable global history\n\n",
              failures == 0 ? "ok" : "REPRODUCTION FAILURE");

  std::printf("--- message overhead is bounded per operation ---\n");
  std::printf("Each operation locks at most 4 objects (item + up to 3\n"
              "vectors), each costing at most 3 messages: request, grant\n"
              "with value, combined write-back/release - the paper's\n"
              "\"message overhead proportionate to the size of the "
              "vector\".\n\n");

  std::printf("--- counter synchronization (unbalanced load) ---\n");
  TablePrinter sync({"sync interval", "committed", "aborts", "messages"});
  for (double interval : {0.0, 20.0, 5.0}) {
    DmtOptions options = Base(7);
    options.num_sites = 4;
    options.workload.zipf_theta = 1.2;  // Skewed items -> skewed sites.
    options.workload.distinct_items_per_txn = false;
    options.counter_sync_interval = interval;
    DmtResult r = RunDmtSimulation(options);
    if (!IsDsr(r.committed_history)) ++failures;
    sync.AddRow({interval == 0.0 ? "none" : FormatDouble(interval, 0),
                 std::to_string(r.committed), std::to_string(r.aborts),
                 std::to_string(r.messages_sent)});
  }
  std::printf("%s\n", sync.ToString().c_str());

  std::printf("--- load balance across sites (4 sites) ---\n");
  DmtOptions options = Base(11);
  options.num_sites = 4;
  DmtResult r = RunDmtSimulation(options);
  TablePrinter load({"site", "operations scheduled"});
  for (uint32_t s = 0; s < 4; ++s) {
    load.AddRow({std::to_string(s), std::to_string(r.ops_per_site[s])});
  }
  std::printf("%s\n", load.ToString().c_str());

  // Distributed tracing overhead, A/B. The gated configuration samples 1
  // in 64 transactions (trace_sample_shift = 6) - the flight-recorder
  // discipline: the always-on production setting must stay under the
  // established < 3% bar. Full fidelity (shift 0, what fault_sweep and
  // the tests run: every transaction traced, exact per-txn
  // reconciliation) is measured the same way and recorded honestly - on
  // this time-compressed simulator an event costs ~100ns of wall clock,
  // so tracing every one of the ~100 spans a transaction produces is a
  // significant fraction of the run, not a rounding error.
  std::printf("--- distributed tracing overhead (A/B, paired) ---\n");
  constexpr int kPairs = 9;
  const AbResult sampled = MeasureTraceOverhead(kPairs, 6);
  const AbResult full = MeasureTraceOverhead(kPairs, 0);
  std::printf(
      "sampled 1/64: untraced %.0f txns/s, traced %.0f txns/s; overhead "
      "%.2f%% (bar: < 3%%)\nfull fidelity: untraced %.0f txns/s, traced "
      "%.0f txns/s; overhead %.2f%% (recorded, not gated)\n[%s] the "
      "sampled tracer stays off the simulation's critical path\n\n",
      sampled.base_tps, sampled.traced_tps, sampled.overhead_pct,
      full.base_tps, full.traced_tps, full.overhead_pct,
      sampled.overhead_pct < 3.0 ? "ok" : "ABOVE BAR");
  UpsertBenchRecord(
      out_path, "dmt_trace_overhead",
      {{"pairs", JsonNum(kPairs)},
       {"sample_shift", JsonNum(6)},
       {"untraced_txns_per_sec", JsonNum(sampled.base_tps)},
       {"traced_txns_per_sec", JsonNum(sampled.traced_tps)},
       {"trace_overhead_pct", JsonNum(sampled.overhead_pct)},
       {"full_fidelity_overhead_pct", JsonNum(full.overhead_pct)}});

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

// Usage: distributed_dmt [results.json]
// The optional argument overrides where the tracing-overhead record is
// upserted (default BENCH_core.json in the working directory).
int main(int argc, char** argv) {
  return mdts::Run(argc > 1 ? argv[1] : "BENCH_core.json");
}
