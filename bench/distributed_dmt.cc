// Section V-B experiment: the decentralized protocol DMT(k).
// Measures message overhead per operation, response time, and load balance
// as the number of sites grows; verifies deadlock-free completion and
// global serializability; shows the effect of periodic counter
// synchronization under unbalanced load.

#include <cstdio>

#include "classify/classes.h"
#include "common/table_printer.h"
#include "dist/dmt_system.h"

namespace mdts {
namespace {

int failures = 0;

DmtOptions Base(uint64_t seed) {
  DmtOptions options;
  options.k = 3;
  options.num_txns = 150;
  options.concurrency = 10;
  options.message_latency = 0.5;
  options.seed = seed;
  options.workload.num_items = 18;
  options.workload.min_ops = 2;
  options.workload.max_ops = 4;
  options.workload.read_fraction = 0.6;
  return options;
}

int Run() {
  std::printf("=== DMT(k): decentralized concurrency control ===\n\n");

  TablePrinter table({"sites", "committed", "aborts", "max consec aborts",
                      "messages", "msgs/op", "lock waits", "avg response",
                      "DSR audit"});
  for (uint32_t sites : {1u, 2u, 4u, 8u}) {
    DmtOptions options = Base(5);
    options.num_sites = sites;
    DmtResult r = RunDmtSimulation(options);
    const bool dsr = IsDsr(r.committed_history);
    if (!dsr || r.committed + r.gave_up != options.num_txns) ++failures;
    table.AddRow({std::to_string(sites), std::to_string(r.committed),
                  std::to_string(r.aborts),
                  std::to_string(r.max_consecutive_aborts),
                  std::to_string(r.messages_sent),
                  FormatDouble(r.ops_scheduled
                                   ? static_cast<double>(r.messages_sent) /
                                         static_cast<double>(r.ops_scheduled)
                                   : 0.0,
                               2),
                  std::to_string(r.lock_waits),
                  FormatDouble(r.avg_response_time, 2),
                  dsr ? "ok" : "FAILED"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("[%s] every configuration completed deadlock-free with a\n"
              "     serializable global history\n\n",
              failures == 0 ? "ok" : "REPRODUCTION FAILURE");

  std::printf("--- message overhead is bounded per operation ---\n");
  std::printf("Each operation locks at most 4 objects (item + up to 3\n"
              "vectors), each costing at most 3 messages: request, grant\n"
              "with value, combined write-back/release - the paper's\n"
              "\"message overhead proportionate to the size of the "
              "vector\".\n\n");

  std::printf("--- counter synchronization (unbalanced load) ---\n");
  TablePrinter sync({"sync interval", "committed", "aborts", "messages"});
  for (double interval : {0.0, 20.0, 5.0}) {
    DmtOptions options = Base(7);
    options.num_sites = 4;
    options.workload.zipf_theta = 1.2;  // Skewed items -> skewed sites.
    options.workload.distinct_items_per_txn = false;
    options.counter_sync_interval = interval;
    DmtResult r = RunDmtSimulation(options);
    if (!IsDsr(r.committed_history)) ++failures;
    sync.AddRow({interval == 0.0 ? "none" : FormatDouble(interval, 0),
                 std::to_string(r.committed), std::to_string(r.aborts),
                 std::to_string(r.messages_sent)});
  }
  std::printf("%s\n", sync.ToString().c_str());

  std::printf("--- load balance across sites (4 sites) ---\n");
  DmtOptions options = Base(11);
  options.num_sites = 4;
  DmtResult r = RunDmtSimulation(options);
  TablePrinter load({"site", "operations scheduled"});
  for (uint32_t s = 0; s < 4; ++s) {
    load.AddRow({std::to_string(s), std::to_string(r.ops_per_site[s])});
  }
  std::printf("%s\n", load.ToString().c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
