// Closed-loop multithreaded MT(k) throughput benchmark (the perf experiment
// behind the sharded engine): sweeps threads x contention x k over the
// thread-safe ShardedMtkEngine, and measures the single-thread speedup of
// the optimized scheduler/engine against the real pre-refactor
// MtkScheduler, vendored verbatim under bench/prepr/. Every
// worker retries its transaction until it commits (a closed loop), so abort
// handling and restart costs are part of every number and the compaction
// watermark can always advance.
//
// Results go to stdout (tables) and are upserted into a JSON results file
// (first positional arg, default BENCH_core.json) keyed by benchmark name.
// Scaling numbers are only meaningful when the machine has at least as many
// hardware threads as the sweep uses; the record carries the detected
// count so readers can judge.
//
// Live telemetry: `--serve[=PORT]` (default port 9464, 0 = ephemeral)
// starts a background Sampler over the process-wide registry plus an HTTP
// exporter serving /metrics, /metrics.json, /series.json and /healthz
// while the benchmark runs; the part-2 engines then publish into the
// global registry so the series show real windowed rates. `--sample-ms=N`
// sets the sampling interval (default 100).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_clock.h"
#include "common/bench_json.h"
#include "common/table_printer.h"
#include "control/admission.h"
#include "core/mtk_scheduler.h"
#include "core/types.h"
#include "engine/sharded_engine.h"
#include "obs/flight.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "prepr/mtk_scheduler.h"

namespace mdts {
namespace {


// The vendored baseline has its own OpDecision enum; both spellings of
// "rejected" funnel through this pair so ClosedLoop stays generic.
inline bool IsReject(OpDecision d) { return d == OpDecision::kReject; }
inline bool IsReject(prepr::OpDecision d) {
  return d == prepr::OpDecision::kReject;
}

// ===========================================================================
// Workload: transaction programs generated OUTSIDE the timed loops.
// ===========================================================================

struct StreamOp {
  uint8_t is_read;
  uint32_t item;
};

struct Workload {
  uint32_t items = 0;
  uint32_t ops_per_txn = 0;
  // ops[t] holds thread t's transaction programs back to back; a worker
  // replays program n at offset n * ops_per_txn (mod the stream) until the
  // transaction commits.
  std::vector<std::vector<StreamOp>> ops;
};

// xorshift64* - tiny, deterministic, allocation-free.
inline uint64_t NextRand(uint64_t* s) {
  uint64_t x = *s;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *s = x;
  return x * 0x2545F4914F6CDD1DULL;
}

Workload MakeWorkload(size_t threads, uint32_t items, uint32_t ops_per_txn,
                      double read_fraction, uint64_t seed) {
  constexpr size_t kTxnsPerStream = 1 << 15;  // Replayed cyclically.
  Workload w;
  w.items = items;
  w.ops_per_txn = ops_per_txn;
  w.ops.resize(threads);
  for (size_t t = 0; t < threads; ++t) {
    uint64_t s = seed + 0x9E3779B97F4A7C15ULL * (t + 1);
    w.ops[t].resize(kTxnsPerStream * ops_per_txn);
    for (StreamOp& op : w.ops[t]) {
      const uint64_t r = NextRand(&s);
      op.item = static_cast<uint32_t>(r % items);
      op.is_read = (r >> 32) % 100 < static_cast<uint64_t>(read_fraction * 100)
                       ? 1
                       : 0;
    }
  }
  return w;
}

// ===========================================================================
// Closed-loop drivers.
// ===========================================================================

struct LoopResult {
  uint64_t committed = 0;
  uint64_t aborts = 0;
  uint64_t ops_accepted = 0;
  double seconds = 0.0;
  std::vector<uint64_t> latencies_ns;  // Sampled per committed txn.

  double ops_per_sec() const {
    return seconds > 0 ? static_cast<double>(ops_accepted) / seconds : 0;
  }
  double abort_rate() const {
    const uint64_t attempts = committed + aborts;
    return attempts ? static_cast<double>(aborts) / attempts : 0;
  }
};

// One worker's closed loop over any scheduler-shaped S (Process /
// CommitTxn / RestartTxn). Transaction ids are 1 + t + n * stride so
// multithreaded runs produce globally unique ids striped across engine
// shards. Runs for `seconds` of wall time, checking the clock every few
// transactions.
template <typename S>
LoopResult ClosedLoop(S& sched, const Workload& w, size_t t, size_t stride,
                      double seconds) {
  LoopResult res;
  const std::vector<StreamOp>& stream = w.ops[t];
  const size_t txns_in_stream = stream.size() / w.ops_per_txn;
  res.latencies_ns.reserve(1 << 16);
  Stopwatch total;
  Stopwatch txn_clock;
  uint64_t n = 0;
  for (;; ++n) {
    if ((n & 63) == 0) {
      res.seconds = total.ElapsedSeconds();
      if (res.seconds >= seconds) break;
    }
    const TxnId txn = static_cast<TxnId>(1 + t + n * stride);
    const StreamOp* prog = &stream[(n % txns_in_stream) * w.ops_per_txn];
    const bool sample = (n & 7) == 0;
    if (sample) txn_clock.Reset();
    // Retry until commit, bounded: a multiversion reader whose vector was
    // pinned by its earlier operations can be rejected deterministically
    // on every replay once GC has pruned its fallback versions, so an
    // unbounded retry loop livelocks. Abandon (leave the id aborted - an
    // aborted id never pins the GC watermark) and move on; each failed
    // attempt already counted as an abort. The cap is generous enough
    // that single-version starvation-fix retries (a handful) never hit it.
    for (uint64_t tries = 0;; ++tries) {
      bool ok = true;
      for (uint32_t o = 0; o < w.ops_per_txn && ok; ++o) {
        Op op;
        op.txn = txn;
        op.type = prog[o].is_read ? OpType::kRead : OpType::kWrite;
        op.item = prog[o].item;
        ok = !IsReject(sched.Process(op));
        if (ok) ++res.ops_accepted;
      }
      if (ok) {
        sched.CommitTxn(txn);
        ++res.committed;
        if (sample) res.latencies_ns.push_back(txn_clock.ElapsedNanos());
        break;
      }
      ++res.aborts;
      if (tries >= 128 || total.ElapsedSeconds() >= seconds) break;
      sched.RestartTxn(txn);
    }
  }
  res.seconds = total.ElapsedSeconds();
  return res;
}

LoopResult MergeThreadResults(std::vector<LoopResult> parts) {
  LoopResult out;
  for (LoopResult& p : parts) {
    out.committed += p.committed;
    out.aborts += p.aborts;
    out.ops_accepted += p.ops_accepted;
    out.seconds = std::max(out.seconds, p.seconds);
    out.latencies_ns.insert(out.latencies_ns.end(), p.latencies_ns.begin(),
                            p.latencies_ns.end());
  }
  return out;
}

LoopResult RunEngine(const EngineOptions& eo, const Workload& w,
                     size_t threads, double seconds,
                     EngineStats* stats_out = nullptr) {
  ShardedMtkEngine engine(eo);
  std::vector<LoopResult> parts(threads);
  if (threads == 1) {
    parts[0] = ClosedLoop(engine, w, 0, 1, seconds);
  } else {
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        parts[t] = ClosedLoop(engine, w, t, threads, seconds);
      });
    }
    for (auto& th : pool) th.join();
  }
  if (stats_out != nullptr) *stats_out = engine.stats();
  return MergeThreadResults(std::move(parts));
}

// One worker's BATCHED closed loop: it keeps `batch` transactions in flight
// and submits one operation per live transaction per ProcessBatch call, the
// admission shape the batched pipeline amortizes (one lockset acquisition
// covers the whole round). A rejected slot restarts its transaction and
// replays its program from the top; a slot that completes its program
// commits and moves to the next transaction id. Ids follow the same
// 1 + t + n * stride striping as ClosedLoop, with n drawn from a per-worker
// counter shared by the slots.
LoopResult BatchedClosedLoop(ShardedMtkEngine& engine, const Workload& w,
                             size_t t, size_t stride, size_t batch,
                             double seconds) {
  LoopResult res;
  const std::vector<StreamOp>& stream = w.ops[t];
  const size_t txns_in_stream = stream.size() / w.ops_per_txn;
  res.latencies_ns.reserve(1 << 16);
  struct Slot {
    TxnId txn = 0;
    uint64_t n = 0;         // Program / id index.
    uint32_t done = 0;      // Accepted operations so far.
    uint32_t tries = 0;     // Rejections of this transaction so far.
    uint64_t start_ns = 0;  // Nonzero iff this transaction is sampled.
  };
  Stopwatch total;
  uint64_t next_n = 0;
  std::vector<Slot> slots(batch);
  for (Slot& s : slots) {
    s.n = next_n++;
    s.txn = static_cast<TxnId>(1 + t + s.n * stride);
    if ((s.n & 7) == 0) s.start_ns = total.ElapsedNanos();
  }
  std::vector<Op> ops(batch);
  std::vector<OpDecision> dec(batch);
  for (uint64_t round = 0;; ++round) {
    if ((round & 15) == 0) {
      res.seconds = total.ElapsedSeconds();
      if (res.seconds >= seconds) break;
    }
    for (size_t b = 0; b < batch; ++b) {
      const Slot& s = slots[b];
      const StreamOp& so =
          stream[(s.n % txns_in_stream) * w.ops_per_txn + s.done];
      ops[b].txn = s.txn;
      ops[b].type = so.is_read ? OpType::kRead : OpType::kWrite;
      ops[b].item = so.item;
    }
    engine.ProcessBatch(std::span<const Op>(ops.data(), batch), dec.data());
    for (size_t b = 0; b < batch; ++b) {
      Slot& s = slots[b];
      if (IsReject(dec[b])) {
        ++res.aborts;
        // Same bounded-retry rule as ClosedLoop: abandon a transaction
        // that keeps being rejected (deterministic multiversion read
        // rejects after GC livelock an unbounded retry) - leave the id
        // aborted and give the slot a fresh transaction.
        if (++s.tries >= 128) {
          s.n = next_n++;
          s.txn = static_cast<TxnId>(1 + t + s.n * stride);
          s.tries = 0;
          s.start_ns = (s.n & 7) == 0 ? total.ElapsedNanos() : 0;
        } else {
          engine.RestartTxn(s.txn);
        }
        s.done = 0;
        continue;
      }
      ++res.ops_accepted;
      if (++s.done < w.ops_per_txn) continue;
      engine.CommitTxn(s.txn);
      ++res.committed;
      if (s.start_ns != 0) {
        res.latencies_ns.push_back(total.ElapsedNanos() - s.start_ns);
      }
      s.n = next_n++;
      s.txn = static_cast<TxnId>(1 + t + s.n * stride);
      s.done = 0;
      s.tries = 0;
      s.start_ns = (s.n & 7) == 0 ? total.ElapsedNanos() : 0;
    }
  }
  res.seconds = total.ElapsedSeconds();
  return res;
}

LoopResult RunEngineBatched(const EngineOptions& eo, const Workload& w,
                            size_t threads, size_t batch, double seconds,
                            EngineStats* stats_out = nullptr) {
  ShardedMtkEngine engine(eo);
  std::vector<LoopResult> parts(threads);
  if (threads == 1) {
    parts[0] = BatchedClosedLoop(engine, w, 0, 1, batch, seconds);
  } else {
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        parts[t] = BatchedClosedLoop(engine, w, t, threads, batch, seconds);
      });
    }
    for (auto& th : pool) th.join();
  }
  if (stats_out != nullptr) *stats_out = engine.stats();
  return MergeThreadResults(std::move(parts));
}

// Part-5 driver: BatchedClosedLoop with a runtime-adjustable live batch.
// The number of slots submitted per round is re-read from the admission
// controller before every ProcessBatch, and a manually ticked Sampler
// drives the controller on the caller's phase clock (`global`) so the
// decision trace lines up with the phase boundaries the caller measures
// on the same stopwatch. ctl == nullptr degrades to a plain static batch
// of `max_batch` - the static arms reuse this loop so all three arms pay
// identical driver costs. `next_n` persists across phases: the engine
// survives the contention change, so transaction ids must keep advancing.
// Slots in flight at a phase boundary are dropped; their live
// transactions never commit, which is harmless to MT(k) ordering (peers
// encode after a live top accessor normally) and only pins the compaction
// watermark for the seconds the run lasts. Single-worker (t=0, stride 1):
// the phase-change experiment isolates the controller's reaction, not
// thread scaling.
LoopResult AdaptivePhaseLoop(ShardedMtkEngine& engine, const Workload& w,
                             size_t max_batch, double seconds,
                             AdmissionController* ctl, Sampler* sampler,
                             Stopwatch& global, double tick_sec,
                             uint64_t* next_n) {
  LoopResult res;
  const std::vector<StreamOp>& stream = w.ops[0];
  const size_t txns_in_stream = stream.size() / w.ops_per_txn;
  struct Slot {
    TxnId txn = 0;
    uint64_t n = 0;
    uint32_t done = 0;
    uint32_t tries = 0;
  };
  Stopwatch phase;
  std::vector<Slot> slots(max_batch);
  for (Slot& s : slots) {
    s.n = (*next_n)++;
    s.txn = static_cast<TxnId>(1 + s.n);
  }
  std::vector<Op> ops(max_batch);
  std::vector<OpDecision> dec(max_batch);
  double next_tick = tick_sec;
  for (uint64_t round = 0;; ++round) {
    if ((round & 15) == 0) {
      const double t = phase.ElapsedSeconds();
      if (t >= seconds) break;
      if (sampler != nullptr && t >= next_tick) {
        sampler->TickOnce(global.ElapsedSeconds());
        next_tick += tick_sec;
      }
    }
    size_t live = max_batch;
    if (ctl != nullptr) {
      const uint32_t b = ctl->batch_size(0);
      live = b < 1 ? 1 : (b > max_batch ? max_batch : b);
    }
    // Park-and-resolve: slots beyond the current advisory width leave the
    // in-flight set by committing whatever program prefix was already
    // accepted (legal - a commit covers exactly the accepted operations).
    // Freezing them live instead would leave immortal top writers on the
    // hot items: every later accessor of such an item deterministically
    // rejects, which the controller would misread as permanent contention
    // and never grow back. Only does work on the round after a shrink.
    for (size_t b = live; b < slots.size(); ++b) {
      Slot& s = slots[b];
      if (s.done == 0) continue;
      engine.CommitTxn(s.txn);
      s.n = (*next_n)++;
      s.txn = static_cast<TxnId>(1 + s.n);
      s.done = 0;
      s.tries = 0;
    }
    for (size_t b = 0; b < live; ++b) {
      const Slot& s = slots[b];
      const StreamOp& so =
          stream[(s.n % txns_in_stream) * w.ops_per_txn + s.done];
      ops[b].txn = s.txn;
      ops[b].type = so.is_read ? OpType::kRead : OpType::kWrite;
      ops[b].item = so.item;
    }
    engine.ProcessBatch(std::span<const Op>(ops.data(), live), dec.data());
    for (size_t b = 0; b < live; ++b) {
      Slot& s = slots[b];
      if (IsReject(dec[b])) {
        ++res.aborts;
        // Same bounded-retry rule as BatchedClosedLoop.
        if (++s.tries >= 128) {
          s.n = (*next_n)++;
          s.txn = static_cast<TxnId>(1 + s.n);
          s.tries = 0;
        } else {
          engine.RestartTxn(s.txn);
        }
        s.done = 0;
        continue;
      }
      ++res.ops_accepted;
      if (++s.done < w.ops_per_txn) continue;
      engine.CommitTxn(s.txn);
      ++res.committed;
      s.n = (*next_n)++;
      s.txn = static_cast<TxnId>(1 + s.n);
      s.done = 0;
      s.tries = 0;
    }
  }
  res.seconds = phase.ElapsedSeconds();
  // Resolve every in-flight transaction at the phase boundary, for the
  // same reason as the park-and-resolve above: the next phase must not
  // inherit immortal live top writers from this one. Boundary commits are
  // not counted into res.committed - they are partial programs, not
  // completed workload transactions.
  for (const Slot& s : slots) {
    if (s.done > 0) engine.CommitTxn(s.txn);
  }
  return res;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

double Mops(const LoopResult& r) { return r.ops_per_sec() / 1e6; }

// Goodput: operations of COMMITTED transactions per second (in millions).
// Accepted-op throughput flatters high-abort configurations, because
// operations of transactions that later abort still count; goodput only
// credits work that survived, which is the number the batching and the
// III-D-5 encoding sweeps compare.
double GoodputMops(const LoopResult& r, uint32_t ops_per_txn) {
  return r.seconds > 0 ? static_cast<double>(r.committed) * ops_per_txn /
                             r.seconds / 1e6
                       : 0;
}

double LatencyUs(LoopResult& r, int pct) {
  if (r.latencies_ns.empty()) return 0;
  return static_cast<double>(Percentile(r.latencies_ns, pct)) / 1000.0;
}

std::string Fmt(double v, int prec = 2) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

// A/B overhead measurement for the observability gates. Arms run in
// adjacent pairs with the order flipped every other pair (machine-wide
// drift taxes both arms alike instead of always the second), and the
// reported overhead is the MEDIAN OF PER-PAIR DELTAS rather than a
// comparison of per-arm medians: shared hosts show multi-hundred-ms
// interference bursts that depress whichever arm they land on by 10%+,
// and a burst corrupts one pair's delta (voted out by the median over
// pairs) where it would shift a per-arm median. Calibrate with an A-vs-A
// null: per-arm medians read up to +-7% on a busy box, the paired median
// stays within the arm-length noise floor.
struct AbOverhead {
  std::vector<double> a_mops, b_mops;
  double med_a = 0, med_b = 0, overhead_pct = 0;
};

template <typename A, typename B>
AbOverhead MeasureAbOverhead(int pairs, A&& run_a, B&& run_b) {
  AbOverhead r;
  std::vector<double> deltas;
  for (int p = 0; p < pairs; ++p) {
    double a = 0, b = 0;
    if (p % 2 == 0) {
      a = run_a();
      b = run_b();
    } else {
      b = run_b();
      a = run_a();
    }
    r.a_mops.push_back(a);
    r.b_mops.push_back(b);
    if (a > 0) deltas.push_back((a - b) / a * 100.0);
  }
  r.med_a = Median(r.a_mops);
  r.med_b = Median(r.b_mops);
  r.overhead_pct = Median(deltas);
  return r;
}

// ===========================================================================
// Experiments.
// ===========================================================================

constexpr uint32_t kOpsPerTxn = 6;
constexpr double kReadFraction = 0.6;
constexpr uint32_t kLowContentionItems = 65536;
constexpr uint32_t kHighContentionItems = 64;

int Run(const char* out_path, int serve_port, uint64_t sample_ms,
        size_t batch_override, bool enc_only) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== MT(k) closed-loop throughput (hardware threads: %u) ===\n\n",
              hw);

  // Optional live telemetry: wall-clock sampler + HTTP exporter over the
  // process-wide registry, running for the whole benchmark. The watchdog
  // watches the engine's consecutive-abort gauge; closed-loop retries under
  // high contention can legitimately trip it, which makes the benchmark a
  // convenient live demo.
  std::unique_ptr<Sampler> live_sampler;
  std::unique_ptr<HttpExporter> live_exporter;
  if (serve_port >= 0) {
    SamplerOptions so;
    so.registry = &GlobalMetrics();
    so.interval_ms = sample_ms;
    live_sampler = std::make_unique<Sampler>(so);
    StarvationWatchdogOptions wo;
    wo.source_gauge = "engine.max_consecutive_aborts";
    live_sampler->AddStarvationWatchdog(wo);
    live_sampler->Start();
    HttpExporterOptions ho;
    ho.registry = &GlobalMetrics();
    ho.sampler = live_sampler.get();
    ho.port = static_cast<uint16_t>(serve_port);
    live_exporter = std::make_unique<HttpExporter>(ho);
    if (!live_exporter->Start()) {
      std::fprintf(stderr, "failed to start exporter on port %d\n",
                   serve_port);
      return 1;
    }
    std::printf(
        "live telemetry: http://127.0.0.1:%u/metrics (also /metrics.json, "
        "/series.json, /healthz; sample interval %llu ms)\n"
        "  watch with: tools/mdtop.py --port %u\n\n",
        live_exporter->port(),
        static_cast<unsigned long long>(sample_ms), live_exporter->port());
    std::fflush(stdout);  // The URL must be visible even when piped.
  }

  // -------------------------------------------------------------------
  // Part 1: single-thread speedup against the frozen pre-refactor
  // scheduler, at k = 3 on both contention levels. "sched" is the current
  // MtkScheduler (what MtkOnline runs), "engine x1" the sharded engine
  // with one shard.
  // -------------------------------------------------------------------
  std::printf("--- single-thread, k=3, %u ops/txn, %.0f%% reads ---\n",
              kOpsPerTxn, kReadFraction * 100);
  TablePrinter single({"items", "prepr Mops", "sched Mops", "engine Mops",
                       "sched/prepr", "engine/prepr", "abort rate"});
  double speedup_sched_low = 0, speedup_engine_low = 0;
  double prepr_low_mops = 0, sched_low_mops = 0, engine_low_mops = 0;
  for (uint32_t items : {kLowContentionItems, kHighContentionItems}) {
    const Workload w =
        MakeWorkload(1, items, kOpsPerTxn, kReadFraction, 42);
    const double secs = 1.0;
    // Warmup + run, each system fresh.
    LoopResult rp, rs, re;
    prepr::MtkOptions po;
    po.k = 3;
    po.starvation_fix = true;
    {
      prepr::MtkScheduler s(po);
      (void)ClosedLoop(s, w, 0, 1, 0.1);  // Warmup.
    }
    {
      prepr::MtkScheduler s(po);
      rp = ClosedLoop(s, w, 0, 1, secs);
    }
    {
      MtkOptions mo;
      mo.k = 3;
      mo.starvation_fix = true;
      MtkScheduler s(mo);
      (void)ClosedLoop(s, w, 0, 1, 0.1);
    }
    {
      MtkOptions mo;
      mo.k = 3;
      mo.starvation_fix = true;
      MtkScheduler s(mo);
      rs = ClosedLoop(s, w, 0, 1, secs);
    }
    {
      EngineOptions eo;
      eo.k = 3;
      eo.num_shards = 1;
      eo.starvation_fix = true;
      re = RunEngine(eo, w, 1, secs);
    }
    const double sp_s = Mops(rs) / Mops(rp);
    const double sp_e = Mops(re) / Mops(rp);
    if (items == kLowContentionItems) {
      speedup_sched_low = sp_s;
      speedup_engine_low = sp_e;
      prepr_low_mops = Mops(rp);
      sched_low_mops = Mops(rs);
      engine_low_mops = Mops(re);
    }
    single.AddRow({std::to_string(items), Fmt(Mops(rp)), Fmt(Mops(rs)),
                   Fmt(Mops(re)), Fmt(sp_s), Fmt(sp_e),
                   Fmt(rs.abort_rate(), 3)});
  }
  std::printf("%s\n", single.ToString().c_str());

  UpsertBenchRecord(
      out_path, "mt_throughput_single_thread_k3",
      {{"hardware_threads", JsonNum(hw)},
       {"items_low_contention", JsonNum(kLowContentionItems)},
       {"prepr_mops", JsonNum(prepr_low_mops)},
       {"sched_mops", JsonNum(sched_low_mops)},
       {"engine_1shard_mops", JsonNum(engine_low_mops)},
       {"single_thread_speedup_vs_prepr", JsonNum(speedup_sched_low)},
       {"engine_speedup_vs_prepr", JsonNum(speedup_engine_low)}});

  // -------------------------------------------------------------------
  // Part 2: engine scaling sweep, threads x contention x k. Compaction is
  // on, with a period scaled to the item count: the stop-the-world sweep
  // is O(items), so a fixed small period would spend the whole run
  // scanning 65536 item histories.
  // -------------------------------------------------------------------
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  double scaling_4t = 0, mops_1t_low_k3 = 0, mops_4t_low_k3 = 0;
  for (uint32_t items : {kLowContentionItems, kHighContentionItems}) {
    for (size_t k : {1u, 3u, 7u}) {
      std::printf("--- engine: %u items, k=%zu ---\n", items, k);
      TablePrinter table({"threads", "Mops", "commit/s", "abort rate",
                          "p50 us", "p99 us", "cross-shard", "released"});
      std::string mops_list, abort_list, p50_list, p99_list;
      for (size_t threads : thread_counts) {
        EngineOptions eo;
        eo.k = k;
        eo.num_shards = 32;  // Over-provisioned so locksets rarely collide.
        eo.starvation_fix = true;
        // When serving live telemetry, publish into the global registry so
        // the exporter has something to show. Mirroring costs ~1% (part 3),
        // which is uniform across the sweep.
        if (live_sampler != nullptr) eo.metrics = &GlobalMetrics();
        // The stop-the-world sweep is O(items): scale the period with the
        // item count so compaction stays amortized, with a floor so hot
        // small-table runs still reclaim aggressively.
        eo.compact_every = std::max<uint64_t>(1024, items / 2);
        const Workload w =
            MakeWorkload(threads, items, kOpsPerTxn, kReadFraction, 42);
        (void)RunEngine(eo, w, threads, 0.08);  // Warmup (fresh engine).
        ShardedMtkEngine engine(eo);
        std::vector<LoopResult> parts(threads);
        {
          std::vector<std::thread> pool;
          for (size_t t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
              parts[t] = ClosedLoop(engine, w, t, threads, 0.5);
            });
          }
          for (auto& th : pool) th.join();
        }
        LoopResult r = MergeThreadResults(std::move(parts));
        const EngineStats st = engine.stats();
        const double cross_frac =
            st.single_shard_ops + st.cross_shard_ops
                ? static_cast<double>(st.cross_shard_ops) /
                      static_cast<double>(st.single_shard_ops +
                                          st.cross_shard_ops)
                : 0;
        const double p50 = LatencyUs(r, 50);
        const double p99 = LatencyUs(r, 99);
        table.AddRow({std::to_string(threads), Fmt(Mops(r)),
                      Fmt(static_cast<double>(r.committed) / r.seconds, 0),
                      Fmt(r.abort_rate(), 3), Fmt(p50, 1), Fmt(p99, 1),
                      Fmt(cross_frac, 2),
                      std::to_string(st.txns_released)});
        if (!mops_list.empty()) {
          mops_list += ", ";
          abort_list += ", ";
          p50_list += ", ";
          p99_list += ", ";
        }
        mops_list += JsonNum(Mops(r));
        abort_list += JsonNum(r.abort_rate());
        p50_list += JsonNum(p50);
        p99_list += JsonNum(p99);
        if (items == kLowContentionItems && k == 3) {
          if (threads == 1) mops_1t_low_k3 = Mops(r);
          if (threads == 4) mops_4t_low_k3 = Mops(r);
        }
      }
      std::printf("%s\n", table.ToString().c_str());
      const std::string name = "mt_engine_scaling_items" +
                               std::to_string(items) + "_k" +
                               std::to_string(k);
      UpsertBenchRecord(out_path, name,
                        {{"hardware_threads", JsonNum(hw)},
                         {"num_shards", JsonNum(32)},
                         {"threads", "[1, 2, 4, 8]"},
                         {"mops", "[" + mops_list + "]"},
                         {"abort_rate", "[" + abort_list + "]"},
                         {"p50_us", "[" + p50_list + "]"},
                         {"p99_us", "[" + p99_list + "]"}});
    }
  }
  scaling_4t = mops_1t_low_k3 > 0 ? mops_4t_low_k3 / mops_1t_low_k3 : 0;

  // -------------------------------------------------------------------
  // Part 2b: batched admission x contention x III-D-5 encoding, single
  // thread (the per-op arm then matches the threads=1 cells of part 2, so
  // the encoding delta is comparable against the recorded baselines). The
  // per-op arm drives Process in a plain closed loop; the batched arms
  // keep `batch` transactions in flight and admit one operation per
  // transaction per ProcessBatch call. Goodput (committed ops/s) is the
  // comparison metric: batching also raises the number of concurrently
  // live transactions per worker, which under high contention raises the
  // conflict rate - a real tradeoff the table reports instead of hiding.
  // -------------------------------------------------------------------
  const std::vector<size_t> batch_sizes =
      batch_override > 0 ? std::vector<size_t>{batch_override}
                         : std::vector<size_t>{1, 8, 32};
  const std::vector<int> enc_axis =
      enc_only ? std::vector<int>{1} : std::vector<int>{0, 1};
  // Both arms run with a metrics registry attached: mirroring is one of the
  // per-operation costs the batch pipeline amortizes (one flush per batch
  // instead of per op), so benching without it would hide part of the win.
  // Arms are interleaved and the medians compared, like part 3.
  constexpr int kBatchReps = 3;
  constexpr double kBatchSecs = 0.4;
  double perop_goodput_low_off = 0, batch8_goodput_low_off = 0;
  double perop_abort_hot_off = 0, perop_abort_hot_on = 0;
  double perop_goodput_hot_off = 0, perop_goodput_hot_on = 0;
  uint64_t hot_encodings_hot_on = 0;
  for (uint32_t items : {kLowContentionItems, kHighContentionItems}) {
    std::printf(
        "--- batched admission: %u items, k=3, 1 thread, "
        "median of %d x %.1fs ---\n",
        items, kBatchReps, kBatchSecs);
    TablePrinter table({"encoding", "mode", "goodput Mops", "accepted Mops",
                        "abort rate", "hot encodings"});
    std::string record;
    for (int enc : enc_axis) {
      EngineOptions eo;
      eo.k = 3;
      eo.num_shards = 32;
      eo.starvation_fix = true;
      eo.optimized_encoding = enc != 0;
      eo.compact_every = std::max<uint64_t>(1024, items / 2);
      const Workload w = MakeWorkload(1, items, kOpsPerTxn, kReadFraction, 42);
      const char* enc_name = enc != 0 ? "III-D-5 on" : "off";

      // Arm 0 is the per-op closed loop; arm 1 + b is batch_sizes[b].
      const size_t n_arms = 1 + batch_sizes.size();
      std::vector<std::vector<double>> gp(n_arms), ab(n_arms), mp(n_arms);
      std::vector<EngineStats> arm_stats(n_arms);
      MetricsRegistry scratch_reg;
      eo.metrics =
          live_sampler != nullptr ? &GlobalMetrics() : &scratch_reg;
      for (int rep = 0; rep < kBatchReps; ++rep) {
        for (size_t a = 0; a < n_arms; ++a) {
          LoopResult r;
          if (a == 0) {
            if (rep == 0) (void)RunEngine(eo, w, 1, 0.08);  // Warmup.
            r = RunEngine(eo, w, 1, kBatchSecs, &arm_stats[a]);
          } else {
            const size_t batch = batch_sizes[a - 1];
            if (rep == 0) (void)RunEngineBatched(eo, w, 1, batch, 0.08);
            r = RunEngineBatched(eo, w, 1, batch, kBatchSecs, &arm_stats[a]);
          }
          gp[a].push_back(GoodputMops(r, kOpsPerTxn));
          ab[a].push_back(r.abort_rate());
          mp[a].push_back(Mops(r));
        }
      }
      eo.metrics = nullptr;

      if (!record.empty()) record += ", ";
      record += std::string("{\"encoding\": ") + (enc ? "true" : "false") +
                ", \"perop_goodput_mops\": " + JsonNum(Median(gp[0])) +
                ", \"perop_abort_rate\": " + JsonNum(Median(ab[0])) +
                ", \"batch\": [";
      std::string cells;
      for (size_t a = 0; a < n_arms; ++a) {
        const double goodput = Median(gp[a]);
        const double abort = Median(ab[a]);
        const EngineStats& st = arm_stats[a];
        const std::string mode =
            a == 0 ? "per-op" : "batch=" + std::to_string(batch_sizes[a - 1]);
        table.AddRow({enc_name, mode, Fmt(goodput), Fmt(Median(mp[a])),
                      Fmt(abort, 3), std::to_string(st.hot_encodings)});
        if (a > 0) {
          const size_t batch = batch_sizes[a - 1];
          const double avg_batch =
              st.batches > 0 ? static_cast<double>(st.batch_ops) /
                                   static_cast<double>(st.batches)
                             : 0;
          if (!cells.empty()) cells += ", ";
          cells += "{\"batch\": " + JsonNum(static_cast<double>(batch)) +
                   ", \"goodput_mops\": " + JsonNum(goodput) +
                   ", \"abort_rate\": " + JsonNum(abort) +
                   ", \"avg_batch_ops\": " + JsonNum(avg_batch) +
                   ", \"hot_encodings\": " +
                   JsonNum(static_cast<double>(st.hot_encodings)) + "}";
          if (items == kLowContentionItems && enc == 0 && batch == 8) {
            batch8_goodput_low_off = goodput;
          }
        }
      }
      record += cells + "]}";
      if (items == kLowContentionItems && enc == 0) {
        perop_goodput_low_off = Median(gp[0]);
      }
      if (items == kHighContentionItems) {
        if (enc == 0) {
          perop_abort_hot_off = Median(ab[0]);
          perop_goodput_hot_off = Median(gp[0]);
        } else {
          perop_abort_hot_on = Median(ab[0]);
          perop_goodput_hot_on = Median(gp[0]);
          hot_encodings_hot_on = arm_stats[0].hot_encodings;
        }
      }
    }
    std::printf("%s\n", table.ToString().c_str());
    UpsertBenchRecord(
        out_path, "mt_engine_batch_sweep_items" + std::to_string(items),
        {{"hardware_threads", JsonNum(hw)},
         {"num_shards", JsonNum(32)},
         {"k", JsonNum(3)},
         {"threads", JsonNum(1)},
         {"ops_per_txn", JsonNum(kOpsPerTxn)},
         {"hot_item_threshold", JsonNum(8)},
         {"ab_reps", JsonNum(kBatchReps)},
         {"metrics_attached", "true"},
         {"cells", "[" + record + "]"}});
  }
  if (!enc_only && batch_override == 0) {
    // The explicit III-D-5 on/off delta at the hot-item cell (items = 64,
    // per-op arm, settings identical to the recorded
    // mt_engine_scaling_items64_k3 baseline's threads=1 entry). Measured
    // honestly: under uniform access every item crosses the hot threshold,
    // so every dependency takes the right-end path - it avoids the Table II
    // bystander total orders (the structural claim, reproduced exactly in
    // bench/table2_optimized_encoding) but also assigns more elements per
    // dependency, and on this closed loop the two effects offset to a
    // slightly negative abort delta, matching that benchmark's log-level
    // ablation. The hot_encodings count is the structural win: each one is
    // a dependency that did NOT consume the leftmost free element.
    const double abort_delta = perop_abort_hot_off - perop_abort_hot_on;
    std::printf(
        "III-D-5 delta (items=%u, per-op, 1 thread): abort rate %.3f -> "
        "%.3f (delta %+.3f), goodput %.2f -> %.2f Mops, %llu hot encodings\n"
        "  (uniform access makes every item hot; right-end placement avoids\n"
        "   bystander total orders but assigns more elements per dependency\n"
        "   - the effects offset, as in table2_optimized_encoding's "
        "ablation)\n\n",
        kHighContentionItems, perop_abort_hot_off, perop_abort_hot_on,
        abort_delta, perop_goodput_hot_off, perop_goodput_hot_on,
        static_cast<unsigned long long>(hot_encodings_hot_on));
    UpsertBenchRecord(
        out_path, "mt_engine_encoding_delta_items64",
        {{"hardware_threads", JsonNum(hw)},
         {"num_shards", JsonNum(32)},
         {"k", JsonNum(3)},
         {"threads", JsonNum(1)},
         {"hot_item_threshold", JsonNum(8)},
         {"abort_rate_enc_off", JsonNum(perop_abort_hot_off)},
         {"abort_rate_enc_on", JsonNum(perop_abort_hot_on)},
         {"abort_rate_delta", JsonNum(abort_delta)},
         {"goodput_mops_enc_off", JsonNum(perop_goodput_hot_off)},
         {"goodput_mops_enc_on", JsonNum(perop_goodput_hot_on)},
         {"hot_encodings", JsonNum(static_cast<double>(hot_encodings_hot_on))},
         {"note",
          JsonStr("uniform access makes every item hot, so right-end "
                  "placement avoids Table II bystander total orders but "
                  "assigns more elements per dependency; the effects offset "
                  "(slightly negative delta), matching the log-level "
                  "ablation in table2_optimized_encoding. hot_encodings "
                  "counts dependencies kept off the leftmost element.")}});
  }

  // -------------------------------------------------------------------
  // Part 3: observability overhead. Same engine cell as part 2 (k=3, low
  // contention, 32 shards), tracing runtime-disabled; the only difference
  // between the two arms is EngineOptions::metrics (nullptr = mirroring
  // off). Adjacent A/B pairs, order flipped per pair, median of per-pair
  // deltas (see MeasureAbOverhead), so drift and interference bursts hit
  // both arms alike.
  // -------------------------------------------------------------------
  const size_t obs_threads = hw >= 4 ? 4 : 1;
  std::printf("--- observability overhead: k=3, %u items, %zu threads ---\n",
              kLowContentionItems, obs_threads);
  MetricsRegistry registry;
  EngineOptions obs_eo;
  obs_eo.k = 3;
  obs_eo.num_shards = 32;
  obs_eo.starvation_fix = true;
  obs_eo.compact_every = std::max<uint64_t>(1024, kLowContentionItems / 2);
  const Workload obs_w = MakeWorkload(obs_threads, kLowContentionItems,
                                      kOpsPerTxn, kReadFraction, 42);
  (void)RunEngine(obs_eo, obs_w, obs_threads, 0.1);  // Warmup.
  EngineStats obs_stats;
  constexpr int kObsPairs = 9;
  // Arm length: interference bursts on shared hosts run for a few hundred
  // ms, so 0.3 s arms land entirely inside or outside a burst (+-8% per
  // arm); 1 s arms integrate over it.
  constexpr double kObsArmSecs = 1.0;
  const AbOverhead part3 = MeasureAbOverhead(
      kObsPairs,
      [&] {
        obs_eo.metrics = nullptr;
        return Mops(RunEngine(obs_eo, obs_w, obs_threads, kObsArmSecs));
      },
      [&] {
        obs_eo.metrics = &registry;
        return Mops(
            RunEngine(obs_eo, obs_w, obs_threads, kObsArmSecs, &obs_stats));
      });
  obs_eo.metrics = nullptr;
  const double med_base = part3.med_a;
  const double med_attached = part3.med_b;
  const double obs_overhead_pct = part3.overhead_pct;
  std::printf(
      "baseline (no registry): %.2f Mops; metrics attached: %.2f Mops; "
      "overhead %.2f%% (tracing %s)\n",
      med_base, med_attached, obs_overhead_pct,
      MDTS_TRACE_COMPILED ? "compiled in, runtime-disabled"
                          : "compiled out");
  std::printf("abort reasons (last attached run): %s\n",
              obs_stats.reject_reasons.ToJson().c_str());
  std::printf("\nmetrics snapshot (attached arm, cumulative):\n%s\n",
              registry.Snapshot().ToText().c_str());

  UpsertBenchRecord(
      out_path, "mt_throughput_obs_overhead",
      {{"hardware_threads", JsonNum(hw)},
       {"threads", JsonNum(static_cast<double>(obs_threads))},
       {"ab_pairs", JsonNum(kObsPairs)},
       {"ab_arm_seconds", JsonNum(kObsArmSecs)},
       {"baseline_mops", JsonNum(med_base)},
       {"metrics_attached_mops", JsonNum(med_attached)},
       {"obs_overhead_pct", JsonNum(obs_overhead_pct)},
       {"trace_compiled", MDTS_TRACE_COMPILED ? "true" : "false"},
       {"abort_reasons", obs_stats.reject_reasons.ToJson()}});

  // -------------------------------------------------------------------
  // Part 3f: flight recorder + phase attribution overhead. Both arms run
  // metrics-attached; the instrumented arm additionally records every
  // commit/abort into a FlightRecorder and samples per-phase latencies at
  // the default 1-in-64 rate, while the baseline arm sets
  // phase_sample_shift = 63 (attribution effectively off) and no recorder.
  // Adjacent A/B pairs, order flipped per pair, median of per-pair deltas
  // (see MeasureAbOverhead). The acceptance bar is < 3%.
  // -------------------------------------------------------------------
  std::printf(
      "\n--- flight recorder + phase attribution overhead ---\n");
  FlightRecorderOptions fro;
  fro.rings = 4;
  fro.capacity = 256;
  fro.k = 3;
  uint64_t flight_commits = 0, flight_aborts = 0;
  const AbOverhead part3f = MeasureAbOverhead(
      kObsPairs,
      [&] {
        MetricsRegistry reg_a;
        obs_eo.metrics = &reg_a;
        obs_eo.flight = nullptr;
        obs_eo.phase_sample_shift = 63;
        return Mops(RunEngine(obs_eo, obs_w, obs_threads, kObsArmSecs));
      },
      [&] {
        MetricsRegistry reg_b;
        FlightRecorder flight(fro);
        obs_eo.metrics = &reg_b;
        obs_eo.flight = &flight;
        obs_eo.phase_sample_shift = 6;
        const double m =
            Mops(RunEngine(obs_eo, obs_w, obs_threads, kObsArmSecs));
        flight_commits = flight.commits();
        flight_aborts = flight.aborts();
        return m;
      });
  obs_eo.metrics = nullptr;
  obs_eo.flight = nullptr;
  obs_eo.phase_sample_shift = 6;
  const double med_noflight = part3f.med_a;
  const double med_flight = part3f.med_b;
  const double flight_obs_overhead_pct = part3f.overhead_pct;
  std::printf(
      "metrics only: %.2f Mops; + flight recorder + 1-in-64 phase "
      "attribution: %.2f Mops; overhead %.2f%% (bar: < 3%%)\n"
      "last instrumented run captured %llu commits, %llu aborts\n",
      med_noflight, med_flight, flight_obs_overhead_pct,
      static_cast<unsigned long long>(flight_commits),
      static_cast<unsigned long long>(flight_aborts));

  UpsertBenchRecord(
      out_path, "mt_throughput_flight_obs_overhead",
      {{"hardware_threads", JsonNum(hw)},
       {"threads", JsonNum(static_cast<double>(obs_threads))},
       {"ab_pairs", JsonNum(kObsPairs)},
       {"ab_arm_seconds", JsonNum(kObsArmSecs)},
       {"flight_rings", JsonNum(static_cast<double>(fro.rings))},
       {"flight_capacity", JsonNum(static_cast<double>(fro.capacity))},
       {"phase_sample_shift", JsonNum(6)},
       {"metrics_only_mops", JsonNum(med_noflight)},
       {"flight_attached_mops", JsonNum(med_flight)},
       {"flight_obs_overhead_pct", JsonNum(flight_obs_overhead_pct)}});

  // -------------------------------------------------------------------
  // Part 3b: live telemetry overhead. Both arms run the metrics-attached
  // engine from part 3; the live arm additionally has a Sampler ticking
  // every 100 ms and an HTTP exporter listening (idle - no scraper) on the
  // same registry. Adjacent A/B pairs, order flipped per pair, median of
  // per-pair deltas (see MeasureAbOverhead). The acceptance bar is < 2%.
  // -------------------------------------------------------------------
  std::printf(
      "\n--- live telemetry overhead: sampler @100ms + idle exporter ---\n");
  constexpr uint64_t kLiveSampleMs = 100;
  const AbOverhead part3b = MeasureAbOverhead(
      kObsPairs,
      [&] {
        MetricsRegistry plain_reg;
        obs_eo.metrics = &plain_reg;
        return Mops(RunEngine(obs_eo, obs_w, obs_threads, kObsArmSecs));
      },
      [&] {
        MetricsRegistry live_reg;
        obs_eo.metrics = &live_reg;
        SamplerOptions so;
        so.registry = &live_reg;
        so.interval_ms = kLiveSampleMs;
        Sampler sampler(so);
        StarvationWatchdogOptions wo;
        wo.source_gauge = "engine.max_consecutive_aborts";
        sampler.AddStarvationWatchdog(wo);
        sampler.Start();
        HttpExporterOptions ho;
        ho.registry = &live_reg;
        ho.sampler = &sampler;
        ho.port = 0;  // Ephemeral; idle listener, worst case for the bench.
        HttpExporter exporter(ho);
        const bool serving = exporter.Start();
        const double m =
            Mops(RunEngine(obs_eo, obs_w, obs_threads, kObsArmSecs));
        if (serving) exporter.Stop();
        sampler.Stop();
        return m;
      });
  obs_eo.metrics = nullptr;
  const double med_plain = part3b.med_a;
  const double med_live = part3b.med_b;
  const double live_obs_overhead_pct = part3b.overhead_pct;
  std::printf(
      "metrics attached: %.2f Mops; + sampler@%llums + exporter: %.2f Mops; "
      "overhead %.2f%% (bar: < 2%%)\n",
      med_plain, static_cast<unsigned long long>(kLiveSampleMs), med_live,
      live_obs_overhead_pct);

  UpsertBenchRecord(
      out_path, "mt_throughput_live_obs_overhead",
      {{"hardware_threads", JsonNum(hw)},
       {"threads", JsonNum(static_cast<double>(obs_threads))},
       {"ab_pairs", JsonNum(kObsPairs)},
       {"ab_arm_seconds", JsonNum(kObsArmSecs)},
       {"sample_interval_ms", JsonNum(kLiveSampleMs)},
       {"metrics_attached_mops", JsonNum(med_plain)},
       {"live_telemetry_mops", JsonNum(med_live)},
       {"live_obs_overhead_pct", JsonNum(live_obs_overhead_pct)}});

  // -------------------------------------------------------------------
  // Part 4: multiversion vs single-version admission, threads x
  // contention x k x batch. Both arms run the same engine configuration
  // (32 shards, starvation fix, periodic compaction - for the MV arm the
  // sweep is also what refreshes the GC watermark); the only difference
  // is EngineOptions::multiversion. The interesting cell is high
  // contention, where SV aborts every read/write conflict and MV serves
  // reads from older versions instead.
  // -------------------------------------------------------------------
  std::printf("\n--- part 4: multiversion vs single-version engine ---\n");
  const size_t mv_threads_hi = hw >= 4 ? 4 : hw >= 2 ? 2 : 1;
  double acc_sv_abort = 0, acc_mv_abort = 0, acc_sv_goodput = 0,
         acc_mv_goodput = 0;
  uint64_t acc_mv_read_rejects = 0, acc_mv_live_versions = 0,
           acc_mv_installed = 0;
  for (uint32_t items : {kHighContentionItems, uint32_t{4096}}) {
    TablePrinter mv_table({"threads", "k", "batch", "SV good Mops",
                           "MV good Mops", "MV/SV", "SV abort", "MV abort",
                           "MV read rej", "MV live vers"});
    std::string cells;
    std::vector<size_t> mv_thread_levels{1};
    if (mv_threads_hi > 1) mv_thread_levels.push_back(mv_threads_hi);
    for (size_t threads : mv_thread_levels) {
      for (size_t k : {size_t{3}, size_t{5}}) {
        for (size_t batch : {size_t{1}, size_t{8}}) {
          const Workload w = MakeWorkload(threads, items, kOpsPerTxn,
                                          kReadFraction, 42);
          EngineOptions eo;
          eo.k = k;
          eo.num_shards = 32;
          eo.starvation_fix = true;
          eo.compact_every = 256;
          // Keep one fallback version per chain through GC so post-sweep
          // readers with pinned vectors stay orderable (see
          // EngineOptions::mv_gc_keep_tail); ignored by the SV arm.
          eo.mv_gc_keep_tail = 16;
          // A/B interleaved: SV then MV per rep, medians compared.
          constexpr int kMvReps = 3;
          std::vector<double> sv_gp, mv_gp, sv_ab, mv_ab;
          EngineStats sv_st, mv_st;
          for (int rep = 0; rep < kMvReps; ++rep) {
            eo.multiversion = false;
            LoopResult rs =
                batch == 1
                    ? RunEngine(eo, w, threads, 0.3, &sv_st)
                    : RunEngineBatched(eo, w, threads, batch, 0.3, &sv_st);
            sv_gp.push_back(GoodputMops(rs, kOpsPerTxn));
            sv_ab.push_back(rs.abort_rate());
            eo.multiversion = true;
            LoopResult rm =
                batch == 1
                    ? RunEngine(eo, w, threads, 0.3, &mv_st)
                    : RunEngineBatched(eo, w, threads, batch, 0.3, &mv_st);
            mv_gp.push_back(GoodputMops(rm, kOpsPerTxn));
            mv_ab.push_back(rm.abort_rate());
          }
          eo.multiversion = false;
          const double svg = Median(sv_gp), mvg = Median(mv_gp);
          const double sva = Median(sv_ab), mva = Median(mv_ab);
          mv_table.AddRow(
              {std::to_string(threads), std::to_string(k),
               std::to_string(batch), Fmt(svg), Fmt(mvg),
               Fmt(svg > 0 ? mvg / svg : 0), Fmt(sva, 3), Fmt(mva, 3),
               std::to_string(mv_st.read_rejects),
               std::to_string(mv_st.live_versions)});
          if (!cells.empty()) cells += ", ";
          cells += "{\"threads\": " + JsonNum(static_cast<double>(threads)) +
                   ", \"k\": " + JsonNum(static_cast<double>(k)) +
                   ", \"batch\": " + JsonNum(static_cast<double>(batch)) +
                   ", \"sv_goodput_mops\": " + JsonNum(svg) +
                   ", \"mv_goodput_mops\": " + JsonNum(mvg) +
                   ", \"sv_abort_rate\": " + JsonNum(sva) +
                   ", \"mv_abort_rate\": " + JsonNum(mva) +
                   ", \"mv_read_rejects\": " +
                   JsonNum(static_cast<double>(mv_st.read_rejects)) +
                   ", \"mv_old_version_reads\": " +
                   JsonNum(static_cast<double>(mv_st.old_version_reads)) +
                   ", \"mv_versions_installed\": " +
                   JsonNum(static_cast<double>(mv_st.versions_installed)) +
                   ", \"mv_versions_gc\": " +
                   JsonNum(static_cast<double>(mv_st.versions_gc)) +
                   ", \"mv_live_versions\": " +
                   JsonNum(static_cast<double>(mv_st.live_versions)) + "}";
          // The acceptance cell: high contention, k=3, batched, all
          // hardware threads.
          if (items == kHighContentionItems && k == 3 && batch == 8 &&
              threads == mv_threads_hi) {
            acc_sv_abort = sva;
            acc_mv_abort = mva;
            acc_sv_goodput = svg;
            acc_mv_goodput = mvg;
            acc_mv_read_rejects = mv_st.read_rejects;
            acc_mv_live_versions = mv_st.live_versions;
            acc_mv_installed = mv_st.versions_installed;
          }
        }
      }
    }
    std::printf("items = %u:\n%s\n", items, mv_table.ToString().c_str());
    UpsertBenchRecord(out_path,
                      "mt_engine_mv_sweep_items" + std::to_string(items),
                      {{"hardware_threads", JsonNum(hw)},
                       {"num_shards", JsonNum(32)},
                       {"ops_per_txn", JsonNum(kOpsPerTxn)},
                       {"read_fraction", JsonNum(kReadFraction)},
                       {"compact_every", JsonNum(256)},
                       {"mv_gc_keep_tail", JsonNum(16)},
                       {"ab_reps", JsonNum(3)},
                       {"cells", "[" + cells + "]"}});
  }
  std::printf(
      "MV acceptance cell (items=%u, k=3, batch=8, %zu threads): abort "
      "%.3f -> %.3f, goodput %.2f -> %.2f Mops (%.2fx), %llu read rejects, "
      "%llu live versions (of %llu installed)\n",
      kHighContentionItems, mv_threads_hi, acc_sv_abort, acc_mv_abort,
      acc_sv_goodput, acc_mv_goodput,
      acc_sv_goodput > 0 ? acc_mv_goodput / acc_sv_goodput : 0,
      static_cast<unsigned long long>(acc_mv_read_rejects),
      static_cast<unsigned long long>(acc_mv_live_versions),
      static_cast<unsigned long long>(acc_mv_installed));
  UpsertBenchRecord(
      out_path, "mt_engine_mv_acceptance",
      {{"hardware_threads", JsonNum(hw)},
       {"items", JsonNum(kHighContentionItems)},
       {"k", JsonNum(3)},
       {"batch", JsonNum(8)},
       {"threads", JsonNum(static_cast<double>(mv_threads_hi))},
       {"mv_gc_keep_tail", JsonNum(16)},
       {"sv_abort_rate", JsonNum(acc_sv_abort)},
       {"mv_abort_rate", JsonNum(acc_mv_abort)},
       {"sv_goodput_mops", JsonNum(acc_sv_goodput)},
       {"mv_goodput_mops", JsonNum(acc_mv_goodput)},
       {"mv_over_sv_goodput",
        JsonNum(acc_sv_goodput > 0 ? acc_mv_goodput / acc_sv_goodput : 0)},
       {"mv_read_rejects", JsonNum(static_cast<double>(acc_mv_read_rejects))},
       {"mv_live_versions",
        JsonNum(static_cast<double>(acc_mv_live_versions))},
       {"mv_versions_installed",
        JsonNum(static_cast<double>(acc_mv_installed))}});

  // -------------------------------------------------------------------
  // Part 5: adaptive admission across a contention phase change. One
  // engine lives through low -> high -> low contention; three arms run
  // the identical schedule: the adaptive arm (AdmissionController driving
  // batch size and MT(k+) width off a manually ticked Sampler, with the
  // starvation watchdog's alert wired to EmergencyShrink) against static
  // batch=32 (the low-contention champion that livelocks at items=64)
  // and static batch=1 (the high-contention safe harbor that forfeits
  // the batching win). Acceptance bars: the adaptive arm must escape the
  // high-phase livelock without hand tuning - >= 0.5x the best static
  // goodput there at an abort rate < 0.6 - while retaining >= 80% of the
  // batch=32 gain over batch=1 across the two low phases.
  // -------------------------------------------------------------------
  std::printf(
      "\n--- part 5: adaptive admission across a contention phase change "
      "---\n");
  constexpr double kPhaseSecs = 1.0;
  constexpr double kTickSecs = 0.02;  // 50 controller windows per second.
  constexpr size_t kAdaptiveMaxBatch = 32;
  const Workload w_ad_low =
      MakeWorkload(1, kLowContentionItems, kOpsPerTxn, kReadFraction, 42);
  const Workload w_ad_high =
      MakeWorkload(1, kHighContentionItems, kOpsPerTxn, kReadFraction, 42);

  struct AdaptiveArm {
    LoopResult low1, high, low2;
    uint64_t grows = 0, shrinks = 0, k_switches = 0, alerts = 0;
    double react_high_s = -1.0;  // High-phase start -> first shrink.
    double react_low_s = -1.0;   // Recovery-phase start -> first grow.
    uint32_t batch_end_high = 0, batch_end_low = 0;
    uint32_t k_end_high = 0, k_end_low = 0;
    std::string trace;  // Full decision trace (adaptive arm only).
  };
  auto run_adaptive_arm = [&](bool adaptive, size_t static_batch) {
    AdaptiveArm arm;
    MetricsRegistry areg;
    EngineOptions aeo;
    aeo.k = 5;  // Physical width; the adaptive arm starts at active_k=3.
    aeo.num_shards = 32;
    aeo.starvation_fix = true;
    aeo.compact_every = 4096;
    aeo.metrics = &areg;
    ShardedMtkEngine engine(aeo);
    std::unique_ptr<Sampler> sampler;
    std::unique_ptr<AdmissionController> ctl;
    if (adaptive) {
      engine.SetActiveK(3);  // Headroom for the MT(k+) widener (3..5).
      SamplerOptions so;
      so.registry = &areg;
      sampler = std::make_unique<Sampler>(so);
      AdmissionControlOptions ao;
      ao.registry = &areg;
      ao.engine = &engine;
      ao.max_batch = kAdaptiveMaxBatch;
      ao.min_k = 3;
      // Calibrate the abort-rate bands to this engine's closed-loop driver:
      // restart-and-replay keeps the healthy low-contention op reject rate
      // near 0.47-0.50 (part 2b), while the batch=32 hot-set collapse sits
      // at 0.90+. The stock 0.5/0.2 bands straddle the healthy baseline and
      // would shrink on noise; 0.70/0.55 puts the baseline inside the quiet
      // band and the collapse alone inside the shrink band.
      ao.abort_rate_shrink = 0.70;
      ao.abort_rate_quiet = 0.55;
      ctl = std::make_unique<AdmissionController>(ao);
      AdmissionController* c = ctl.get();
      StarvationWatchdogOptions wo;
      wo.source_gauge = "engine.max_consecutive_aborts";
      wo.on_alert = [c](const WatchdogAlert& a) {
        c->EmergencyShrink(a.last_seq, a.last_time);
      };
      sampler->AddStarvationWatchdog(wo);
      sampler->AddTickHook(
          [c](uint64_t seq, double now) { c->TickOnce(seq, now); });
    }
    const size_t width = adaptive ? kAdaptiveMaxBatch : static_batch;
    Stopwatch phase_clock;
    uint64_t next_n = 0;
    arm.low1 = AdaptivePhaseLoop(engine, w_ad_low, width, kPhaseSecs,
                                 ctl.get(), sampler.get(), phase_clock,
                                 kTickSecs, &next_n);
    const double high_start = phase_clock.ElapsedSeconds();
    arm.high = AdaptivePhaseLoop(engine, w_ad_high, width, kPhaseSecs,
                                 ctl.get(), sampler.get(), phase_clock,
                                 kTickSecs, &next_n);
    const double low2_start = phase_clock.ElapsedSeconds();
    if (ctl != nullptr) {
      arm.batch_end_high = ctl->batch_size();
      arm.k_end_high = ctl->active_k();
    }
    arm.low2 = AdaptivePhaseLoop(engine, w_ad_low, width, kPhaseSecs,
                                 ctl.get(), sampler.get(), phase_clock,
                                 kTickSecs, &next_n);
    if (ctl != nullptr) {
      arm.batch_end_low = ctl->batch_size();
      arm.k_end_low = ctl->active_k();
      arm.grows = ctl->grows();
      arm.shrinks = ctl->shrinks();
      arm.k_switches = ctl->k_switches();
      arm.alerts = sampler->alerts().size();
      arm.trace = ctl->TraceString();
      for (const AdmissionDecision& d : ctl->decisions()) {
        if (arm.react_high_s < 0 && d.time >= high_start &&
            (d.action == AdmissionAction::kShrink ||
             d.action == AdmissionAction::kEmergencyShrink)) {
          arm.react_high_s = d.time - high_start;
        }
        if (arm.react_low_s < 0 && d.time >= low2_start &&
            d.action == AdmissionAction::kGrow) {
          arm.react_low_s = d.time - low2_start;
        }
      }
    }
    return arm;
  };
  // A/B/C interleaved, medians over kAdReps full schedules: 1-second
  // phases on a shared container are individually noisy, and the
  // acceptance ratios divide two of them.
  constexpr int kAdReps = 3;
  std::vector<AdaptiveArm> reps_ad, reps_b32, reps_b1;
  for (int rep = 0; rep < kAdReps; ++rep) {
    reps_ad.push_back(run_adaptive_arm(true, 0));
    reps_b32.push_back(run_adaptive_arm(false, 32));
    reps_b1.push_back(run_adaptive_arm(false, 1));
  }
  const AdaptiveArm& arm_adapt = reps_ad[0];  // Controller narrative.
  auto med_of = [&](const std::vector<AdaptiveArm>& v, auto metric) {
    std::vector<double> xs;
    xs.reserve(v.size());
    for (const AdaptiveArm& a : v) xs.push_back(metric(a));
    return Median(std::move(xs));
  };
  auto low_goodput = [&](const AdaptiveArm& a) {
    const double secs = a.low1.seconds + a.low2.seconds;
    return secs > 0 ? static_cast<double>(a.low1.committed +
                                          a.low2.committed) *
                          kOpsPerTxn / secs / 1e6
                    : 0.0;
  };
  auto high_gp = [&](const AdaptiveArm& a) {
    return GoodputMops(a.high, kOpsPerTxn);
  };
  auto low1_gp = [&](const AdaptiveArm& a) {
    return GoodputMops(a.low1, kOpsPerTxn);
  };
  auto low2_gp = [&](const AdaptiveArm& a) {
    return GoodputMops(a.low2, kOpsPerTxn);
  };
  auto high_ab = [&](const AdaptiveArm& a) { return a.high.abort_rate(); };
  const double ad_high = med_of(reps_ad, high_gp);
  const double b32_high = med_of(reps_b32, high_gp);
  const double b1_high = med_of(reps_b1, high_gp);
  const double ad_high_abort = med_of(reps_ad, high_ab);
  const double best_static_high = std::max(b32_high, b1_high);
  const double ad_low = med_of(reps_ad, low_goodput);
  const double b32_low = med_of(reps_b32, low_goodput);
  const double b1_low = med_of(reps_b1, low_goodput);
  // Share of the static batching win the adaptive arm keeps across the
  // low phases; when batch=32 is not actually ahead of batch=1 on this
  // machine the gain is vacuous and retention reports 1.
  const double batch_gain = b32_low - b1_low;
  const double retained =
      batch_gain > 0 ? (ad_low - b1_low) / batch_gain : 1.0;
  const double high_ratio =
      best_static_high > 0 ? ad_high / best_static_high : 0.0;

  TablePrinter ad_table({"arm", "low1 good Mops", "high good Mops",
                         "low2 good Mops", "high abort", "grows", "shrinks",
                         "kSw"});
  auto ad_row = [&](const char* name, const std::vector<AdaptiveArm>& v,
                    bool ctl_arm) {
    const AdaptiveArm& a0 = v[0];
    ad_table.AddRow({name, Fmt(med_of(v, low1_gp)), Fmt(med_of(v, high_gp)),
                     Fmt(med_of(v, low2_gp)), Fmt(med_of(v, high_ab), 3),
                     ctl_arm ? std::to_string(a0.grows) : "-",
                     ctl_arm ? std::to_string(a0.shrinks) : "-",
                     ctl_arm ? std::to_string(a0.k_switches) : "-"});
  };
  ad_row("adaptive", reps_ad, true);
  ad_row("batch=32", reps_b32, false);
  ad_row("batch=1", reps_b1, false);
  std::printf("%s\n", ad_table.ToString().c_str());
  std::printf("adaptive decision trace (rep 0):\n%s",
              arm_adapt.trace.c_str());
  std::printf(
      "adaptive reaction: first shrink %.0f ms into the high phase (ends "
      "it at batch %u, k %u); first grow %.0f ms into the recovery phase "
      "(ends the run at batch %u, k %u); %llu watchdog alert(s)\n",
      arm_adapt.react_high_s * 1e3, arm_adapt.batch_end_high,
      arm_adapt.k_end_high, arm_adapt.react_low_s * 1e3,
      arm_adapt.batch_end_low, arm_adapt.k_end_low,
      static_cast<unsigned long long>(arm_adapt.alerts));
  std::printf(
      "acceptance: high-phase adaptive/best-static %.2f (bar >= 0.5, "
      "abort %.3f < 0.6), low-phase batch-win retention %.2f (bar >= "
      "0.8)\n",
      high_ratio, ad_high_abort, retained);

  UpsertBenchRecord(
      out_path, "mt_engine_adaptive_phase_change",
      {{"hardware_threads", JsonNum(hw)},
       {"phase_seconds", JsonNum(kPhaseSecs)},
       {"tick_seconds", JsonNum(kTickSecs)},
       {"items_low", JsonNum(kLowContentionItems)},
       {"items_high", JsonNum(kHighContentionItems)},
       {"max_batch", JsonNum(kAdaptiveMaxBatch)},
       {"physical_k", JsonNum(5)},
       {"initial_active_k", JsonNum(3)},
       {"ab_reps", JsonNum(kAdReps)},
       {"adaptive_low1_goodput_mops", JsonNum(med_of(reps_ad, low1_gp))},
       {"adaptive_high_goodput_mops", JsonNum(ad_high)},
       {"adaptive_low2_goodput_mops", JsonNum(med_of(reps_ad, low2_gp))},
       {"adaptive_high_abort_rate", JsonNum(ad_high_abort)},
       {"static32_high_goodput_mops", JsonNum(b32_high)},
       {"static32_high_abort_rate", JsonNum(med_of(reps_b32, high_ab))},
       {"static1_high_goodput_mops", JsonNum(b1_high)},
       {"adaptive_low_goodput_mops", JsonNum(ad_low)},
       {"static32_low_goodput_mops", JsonNum(b32_low)},
       {"static1_low_goodput_mops", JsonNum(b1_low)},
       {"grows", JsonNum(static_cast<double>(arm_adapt.grows))},
       {"shrinks", JsonNum(static_cast<double>(arm_adapt.shrinks))},
       {"k_switches", JsonNum(static_cast<double>(arm_adapt.k_switches))},
       {"watchdog_alerts", JsonNum(static_cast<double>(arm_adapt.alerts))},
       {"react_high_seconds", JsonNum(arm_adapt.react_high_s)},
       {"react_recovery_seconds", JsonNum(arm_adapt.react_low_s)},
       {"batch_end_of_high_phase",
        JsonNum(static_cast<double>(arm_adapt.batch_end_high))},
       {"batch_end_of_run",
        JsonNum(static_cast<double>(arm_adapt.batch_end_low))},
       {"k_end_of_high_phase",
        JsonNum(static_cast<double>(arm_adapt.k_end_high))},
       {"k_end_of_run",
        JsonNum(static_cast<double>(arm_adapt.k_end_low))}});
  UpsertBenchRecord(
      out_path, "mt_engine_adaptive_acceptance",
      {{"hardware_threads", JsonNum(hw)},
       {"high_phase_adaptive_over_best_static", JsonNum(high_ratio)},
       {"high_phase_adaptive_abort_rate", JsonNum(ad_high_abort)},
       {"low_phase_batch_win_retained", JsonNum(retained)},
       {"low_phase_batch_gain_mops", JsonNum(batch_gain)}});

  std::vector<std::pair<std::string, std::string>> acceptance = {
      {"hardware_threads", JsonNum(hw)},
      {"single_thread_speedup_vs_prepr_k3", JsonNum(speedup_sched_low)},
      {"engine_1shard_speedup_vs_prepr_k3", JsonNum(speedup_engine_low)},
      {"scaling_4t_over_1t_low_contention_k3", JsonNum(scaling_4t)},
      {"obs_overhead_pct", JsonNum(obs_overhead_pct)},
      {"live_obs_overhead_pct", JsonNum(live_obs_overhead_pct)},
      {"flight_obs_overhead_pct", JsonNum(flight_obs_overhead_pct)},
      {"note",
       JsonStr(hw >= 4 ? "thread counts within hardware parallelism"
                       : "hardware threads < 4: scaling ratio reflects "
                         "timeslicing, not parallel speedup")}};
  if (!enc_only && batch_override == 0) {
    acceptance.push_back(
        {"batch8_over_perop_goodput_low_contention",
         JsonNum(perop_goodput_low_off > 0
                     ? batch8_goodput_low_off / perop_goodput_low_off
                     : 0)});
    acceptance.push_back({"encoding_abort_delta_items64",
                          JsonNum(perop_abort_hot_off - perop_abort_hot_on)});
  }
  UpsertBenchRecord(out_path, "mt_throughput_acceptance", acceptance);

  std::printf(
      "single-thread speedup vs pre-refactor scheduler (k=3, low "
      "contention): %.2fx (sched), %.2fx (engine x1)\n",
      speedup_sched_low, speedup_engine_low);
  std::printf("engine scaling 4t/1t (low contention, k=3): %.2fx%s\n",
              scaling_4t,
              hw < 4 ? "  [hardware threads < 4: timeslicing, not a "
                       "parallel speedup measurement]"
                     : "");
  std::printf("results upserted into %s\n", out_path);

  if (live_exporter != nullptr) {
    live_exporter->Stop();
    live_sampler->Stop();
    std::printf("live telemetry: %llu windows sampled, %zu watchdog alerts\n",
                static_cast<unsigned long long>(live_sampler->samples_taken()),
                live_sampler->alerts().size());
  }
  return 0;
}

}  // namespace
}  // namespace mdts

int main(int argc, char** argv) {
  const char* out_path = "BENCH_core.json";
  int serve_port = -1;        // < 0 means no exporter.
  uint64_t sample_ms = 100;   // Live sampler interval when serving.
  size_t batch_override = 0;  // 0 = sweep the default {1, 8, 32}.
  bool enc_only = false;      // true = only the III-D-5-on arm.
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--serve") == 0) {
      serve_port = 9464;
    } else if (std::strncmp(arg, "--serve=", 8) == 0) {
      serve_port = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--sample-ms=", 12) == 0) {
      sample_ms = static_cast<uint64_t>(std::strtoull(arg + 12, nullptr, 10));
      if (sample_ms == 0) sample_ms = 100;
    } else if (std::strncmp(arg, "--batch=", 8) == 0) {
      // Focus the part-2b sweep on one batch size (skips the on/off delta
      // record so a focus run never overwrites full-sweep numbers).
      batch_override = static_cast<size_t>(std::strtoull(arg + 8, nullptr, 10));
      if (batch_override == 0) {
        std::fprintf(stderr, "--batch=N requires N >= 1\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--optimized-encoding") == 0) {
      // Run only the III-D-5-on arm of the part-2b sweep.
      enc_only = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [out.json] [--serve[=PORT]] [--sample-ms=N] "
                   "[--batch=N] [--optimized-encoding]\n",
                   argv[0]);
      return 2;
    } else {
      out_path = arg;
    }
  }
  return mdts::Run(out_path, serve_port, sample_ms, batch_override, enc_only);
}
