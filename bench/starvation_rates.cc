// Section III-D-4 experiment: starvation behavior under load. The
// deterministic Fig. 5 scenario is replayed in bench/fig5_starvation; here
// the fix's effect is measured statistically: distribution of consecutive
// aborts and completion under adversarial contention, with and without the
// seeding fix.

#include <cstdio>

#include "common/table_printer.h"
#include "sched/mtk_online.h"
#include "sim/simulator.h"

namespace mdts {
namespace {

int Run() {
  std::printf("=== Starvation rates (Section III-D-4) ===\n\n");

  TablePrinter table({"k", "fix", "seed", "committed", "gave up", "aborts",
                      "max consecutive aborts", "throughput"});
  for (size_t k : {2u, 4u}) {
    for (bool fix : {false, true}) {
      for (uint64_t seed : {3u, 11u, 19u}) {
        MtkOptions o;
        o.k = k;
        o.starvation_fix = fix;
        MtkOnline s(o);
        SimOptions options;
        options.num_txns = 150;
        options.concurrency = 10;
        options.seed = seed;
        options.max_attempts = 60;
        options.workload.num_items = 4;  // Brutal contention.
        options.workload.min_ops = 2;
        options.workload.max_ops = 4;
        options.workload.read_fraction = 0.3;
        SimResult r = RunSimulation(&s, options);
        table.AddRow({std::to_string(k), fix ? "yes" : "no",
                      std::to_string(seed), std::to_string(r.committed),
                      std::to_string(r.gave_up), std::to_string(r.aborts),
                      std::to_string(r.max_consecutive_aborts),
                      FormatDouble(r.throughput, 3)});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Interpretation: the fix guarantees a transaction is never\n"
              "re-aborted by the SAME blocker (the deterministic guarantee\n"
              "of Fig. 5); under random contention blockers change, so\n"
              "consecutive-abort counts fluctuate but give-ups should not\n"
              "be systematically worse with the fix.\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
