// Regenerates paper Table I and Fig. 3 (Section III-A, Example 2): the
// edge-by-edge evolution of the MT(2) timestamp table on
//     T1: R1[x] W1[y] W1[z],  T2: R2[y],  T3: R3[z]
// interleaved as R1[x] R2[y] R3[z] W1[y] W1[z].
//
// Every row is checked against the paper's values; a mismatch aborts with
// a REPRODUCTION FAILURE message.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "classify/classes.h"
#include "classify/dependency_graph.h"
#include "common/table_printer.h"
#include "core/log.h"
#include "core/mtk_scheduler.h"

namespace mdts {
namespace {

struct Step {
  Op op;
  const char* edge;
  // Expected vectors TS(0..3) after the step.
  const char* expect[4];
};

int Run() {
  std::printf("=== Table I / Fig. 3: Example 2, k = 2 ===\n\n");
  const Log log = *Log::Parse("R1[x] R2[y] R3[z] W1[y] W1[z]");
  std::printf("Log: %s\n\n", log.ToString().c_str());
  std::printf("Fig. 3 dependency digraph:\n%s\n",
              DependencyGraph::FromLog(log).ToDot("fig3").c_str());

  const std::vector<Step> steps = {
      {Op{1, OpType::kRead, 0}, "a : T0 -> T1",
       {"<0,*>", "<1,*>", "<*,*>", "<*,*>"}},
      {Op{2, OpType::kRead, 1}, "b : T0 -> T2",
       {"<0,*>", "<1,*>", "<1,*>", "<*,*>"}},
      {Op{3, OpType::kRead, 2}, "c : T0 -> T3",
       {"<0,*>", "<1,*>", "<1,*>", "<1,*>"}},
      {Op{1, OpType::kWrite, 1}, "d : T2 -> T1",
       {"<0,*>", "<1,2>", "<1,1>", "<1,*>"}},
      {Op{1, OpType::kWrite, 2}, "e : T3 -> T1",
       {"<0,*>", "<1,2>", "<1,1>", "<1,0>"}},
  };

  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);

  TablePrinter table({"edge", "TS(0)", "TS(1)", "TS(2)", "TS(3)", "check"});
  table.AddRow({"initialization", s.Ts(0).ToString(), s.Ts(1).ToString(),
                s.Ts(2).ToString(), s.Ts(3).ToString(), "ok"});
  bool all_ok = true;
  for (const Step& step : steps) {
    if (s.Process(step.op) != OpDecision::kAccept) {
      std::printf("REPRODUCTION FAILURE: %s rejected\n",
                  OpName(step.op).c_str());
      return 1;
    }
    bool ok = true;
    for (TxnId t = 0; t <= 3; ++t) {
      if (s.Ts(t).ToString() != step.expect[t]) ok = false;
    }
    all_ok = all_ok && ok;
    table.AddRow({step.edge, s.Ts(0).ToString(), s.Ts(1).ToString(),
                  s.Ts(2).ToString(), s.Ts(3).ToString(),
                  ok ? "ok" : "MISMATCH"});
  }
  std::printf("%s\n", table.ToString().c_str());

  auto order = s.SerializationOrder({1, 2, 3});
  std::printf("Serialization order: T%u T%u T%u "
              "(paper: equivalent to T3 T2 T1 or T2 T3 T1)\n",
              order[0], order[1], order[2]);
  std::printf("DSR witness order agrees: %s\n\n",
              IsDsr(log) ? "log is DSR" : "log is NOT DSR (!)");

  if (!all_ok) {
    std::printf("REPRODUCTION FAILURE: some Table I row mismatched.\n");
    return 1;
  }
  std::printf("All Table I rows match the paper exactly.\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
