#include "mtk_scheduler.h"

#include <algorithm>
#include <cassert>

#include "common/table_printer.h"

namespace prepr {

using mdts::TablePrinter;

const char* OpDecisionName(OpDecision d) {
  switch (d) {
    case OpDecision::kAccept:
      return "ACCEPT";
    case OpDecision::kReject:
      return "REJECT";
    case OpDecision::kIgnore:
      return "IGNORE";
  }
  return "?";
}

MtkScheduler::MtkScheduler(const MtkOptions& options) : options_(options) {
  assert(options_.k >= 1);
  // Line 2 of Algorithm 1: the virtual transaction T0, which conceptually
  // read and wrote every item first, starts with TS(0) = <0, *, ..., *> and
  // is permanently committed. Lines 3-4: RT(x) = WT(x) = 0 is realized by
  // TopLive falling back to kVirtualTxn on empty stacks; lcount/ucount start
  // at 0 / 1.
  txns_.emplace_back(options_.k);
  txns_[0].ts = TimestampVector::Virtual(options_.k);
  txns_[0].committed = true;
}

MtkScheduler::TxnState& MtkScheduler::State(TxnId txn) {
  while (txns_.size() <= txn) txns_.emplace_back(options_.k);
  return txns_[txn];
}

MtkScheduler::ItemState& MtkScheduler::Item(ItemId item) {
  if (items_.size() <= item) items_.resize(item + 1);
  return items_[item];
}

bool MtkScheduler::IsLiveAccess(const Access& access) {
  const TxnState& s = State(access.txn);
  return access.incarnation == s.incarnation && !s.aborted;
}

TxnId MtkScheduler::TopLive(std::vector<Access>* stack) {
  while (!stack->empty() && !IsLiveAccess(stack->back())) {
    stack->pop_back();
  }
  return stack->empty() ? kVirtualTxn : stack->back().txn;
}

VectorCompareResult MtkScheduler::CompareTs(TxnId a, TxnId b) {
  VectorCompareResult r = Compare(State(a).ts, State(b).ts);
  stats_.element_comparisons += r.index + 1;
  return r;
}

void MtkScheduler::RecordEncoding(TxnId from, TxnId to) {
  if (options_.record_encodings) {
    encodings_.push_back(EncodingEvent{from, to, current_op_, ops_processed_});
  }
}

void MtkScheduler::EncodePairAt(TxnId j, TxnId i, size_t m) {
  // Algorithm 1's '=' case below the last column: the two elements are set
  // to the constants 1 < 2. Columns other than the k-th may therefore hold
  // equal values across different vectors, which is what lets MT(k) keep
  // transactions unordered longer than MT(k-1) (Section III-C).
  State(j).ts.Set(m, 1);
  State(i).ts.Set(m, 2);
  stats_.elements_assigned += 2;
}

bool MtkScheduler::Set(TxnId j, TxnId i, bool hot_item) {
  if (j == i) return true;  // Line 15.
  ++stats_.set_calls;
  const size_t k = options_.k;
  const VectorCompareResult cr = CompareTs(j, i);
  const size_t m = cr.index;
  TimestampVector& tj = State(j).ts;
  TimestampVector& ti = State(i).ts;

  switch (cr.order) {
    case VectorOrder::kLess:
      return true;  // Line 17: the dependency is already encoded.
    case VectorOrder::kGreater:
      return false;  // Line 18: the opposite order is fixed; must reject.
    case VectorOrder::kIdentical:
      // All k elements equal and defined. Algorithm 1's distinct k-th
      // elements make this unreachable between live transactions (the paper:
      // "otherwise we cannot enforce any further dependency"), but an
      // externally seeded vector could in principle collide; refuse safely.
      return false;
    case VectorOrder::kEqual: {
      // Line 19: both elements undefined; encode TS(j,m) < TS(i,m).
      // The optimized paths write into TS(j) as well, so they are skipped
      // when j is the virtual transaction: TS(0) must stay <0,*,...,*>.
      if (options_.optimized_encoding && hot_item && j != kVirtualTxn &&
          m + 1 < k) {
        // Section III-D-5: a dependency born on a hot item is pushed toward
        // the right end of the vectors so the hot item does not force a
        // total order. Both prefixes are extended with equal filler values
        // up to column k-2, where the 1 < 2 pair is placed.
        const size_t e = k - 2;
        for (size_t h = m; h < e; ++h) {
          tj.Set(h, 0);
          ti.Set(h, 0);
          stats_.elements_assigned += 2;
        }
        EncodePairAt(j, i, e);
      } else if (m + 1 == k) {
        // Last column: use the global counters so every fully assigned
        // vector stays distinguishable from every other.
        tj.Set(m, ucount_);
        ti.Set(m, ucount_ + 1);
        ucount_ += 2;
        stats_.elements_assigned += 2;
      } else {
        EncodePairAt(j, i, m);
      }
      RecordEncoding(j, i);
      return true;
    }
    case VectorOrder::kUndetermined: {
      // Line 20: exactly one of the two elements is undefined.
      if (!ti.IsDefined(m)) {
        // TS(i,m) is the undefined one.
        const size_t p = tj.DefinedPrefixLength();
        const bool optimize =
            options_.optimized_encoding && hot_item && j != kVirtualTxn;
        if (optimize && p + 1 < k) {
          // Section III-D-5, the worked variant: copy TS(j)'s defined
          // prefix into TS(i) and encode the dependency just past it
          // (e.g. <1,3,*,*> vs <*,*,*,*> becomes <1,3,1,*> vs <1,3,2,*>).
          for (size_t h = m; h < p; ++h) {
            ti.Set(h, tj.Get(h));
            ++stats_.elements_assigned;
          }
          EncodePairAt(j, i, p);
        } else if (optimize && p + 1 == k) {
          for (size_t h = m; h < p; ++h) {
            ti.Set(h, tj.Get(h));
            ++stats_.elements_assigned;
          }
          tj.Set(p, ucount_);
          ti.Set(p, ucount_ + 1);
          ucount_ += 2;
          stats_.elements_assigned += 2;
        } else if (m + 1 == k) {
          ti.Set(m, ucount_);
          ucount_ += 1;
          ++stats_.elements_assigned;
        } else {
          ti.Set(m, tj.Get(m) + 1);
          ++stats_.elements_assigned;
        }
      } else {
        // TS(j,m) is the undefined one: shrink from the low side.
        if (m + 1 == k) {
          tj.Set(m, lcount_);
          lcount_ -= 1;
          ++stats_.elements_assigned;
        } else {
          tj.Set(m, ti.Get(m) - 1);
          ++stats_.elements_assigned;
        }
      }
      RecordEncoding(j, i);
      return true;
    }
  }
  return false;
}

void MtkScheduler::ApplyStarvationSeed(TxnId aborted, TxnId blocker) {
  // Section III-D-4: flush out TS(i) and seed TS(i,1) := TS(j,1) + 1 so the
  // restarted incarnation is ordered after the blocking transaction.
  TimestampVector& ti = State(aborted).ts;
  const TimestampVector& tj = State(blocker).ts;
  assert(tj.IsDefined(0));
  ti.Reset();
  ti.Set(0, tj.Get(0) + 1);
}

OpDecision MtkScheduler::Process(const Op& op) {
  ++ops_processed_;
  current_op_ = op;
  const TxnId i = op.txn;
  if (i == kVirtualTxn) {
    ++stats_.rejected;
    return OpDecision::kReject;  // T0 is virtual; it issues no operations.
  }
  TxnState& state = State(i);
  if (state.aborted || state.committed) {
    ++stats_.rejected;
    return OpDecision::kReject;
  }
  ItemState& item = Item(op.item);
  const bool hot = item.access_count >= options_.hot_item_threshold;
  ++item.access_count;

  // Lines 5-6: j is whichever of RT(x), WT(x) has the larger timestamp,
  // with RT(x) winning ties and undetermined comparisons.
  const TxnId jr = TopLive(&item.readers);
  const TxnId jw = TopLive(&item.writers);
  const TxnId j =
      CompareTs(jr, jw).order == VectorOrder::kLess ? jw : jr;

  auto reject = [&](TxnId blocker) {
    last_blocker_ = blocker;
    state.aborted = true;
    if (options_.starvation_fix) ApplyStarvationSeed(i, blocker);
    ++stats_.rejected;
    return OpDecision::kReject;
  };

  if (op.type == OpType::kRead) {
    if (Set(j, i, hot)) {
      item.readers.push_back({i, state.incarnation});  // Line 7: RT(x) := i.
      ++stats_.accepted;
      return OpDecision::kAccept;
    }
    // Line 9: a read older than the most recent reader is still safe if it
    // follows the most recent writer. The relaxed variant (noted after
    // Theorem 3) encodes the WT dependency with Set instead of testing it.
    if (j == jr && !options_.disable_old_read_path) {
      const bool write_ordered =
          options_.relaxed_read_path
              ? Set(jw, i, hot)
              : CompareTs(jw, i).order == VectorOrder::kLess;
      if (write_ordered) {
        ++stats_.accepted;
        return OpDecision::kAccept;  // Line 10; RT(x) is not updated.
      }
    }
    return reject(j);  // Line 11.
  }

  // Write.
  if (Set(j, i, hot)) {
    item.writers.push_back({i, state.incarnation});  // Line 12: WT(x) := i.
    ++stats_.accepted;
    return OpDecision::kAccept;
  }
  if (options_.thomas_write_rule) {
    // Section III-D-6c: if TS(RT(x)) < TS(i) < TS(WT(x)), the write is
    // obsolete and can be ignored rather than aborting T_i.
    const bool after_reads = CompareTs(jr, i).order == VectorOrder::kLess;
    const bool before_writer = CompareTs(i, jw).order == VectorOrder::kLess;
    if (after_reads && before_writer) {
      ++stats_.ignored_writes;
      return OpDecision::kIgnore;
    }
  }
  return reject(j);  // Line 14.
}

void MtkScheduler::CommitTxn(TxnId txn) {
  TxnState& s = State(txn);
  assert(!s.aborted);
  s.committed = true;
}

void MtkScheduler::RestartTxn(TxnId txn) {
  TxnState& s = State(txn);
  assert(s.aborted);
  s.aborted = false;
  s.committed = false;
  ++s.incarnation;  // Invalidates the previous incarnation's item accesses.
  if (!options_.starvation_fix) {
    s.ts.Reset();  // Fresh, fully undefined vector.
  }
  // With the fix the seeded vector from ApplyStarvationSeed is kept.
}

bool MtkScheduler::IsAborted(TxnId txn) const {
  return txn < txns_.size() && txns_[txn].aborted;
}

bool MtkScheduler::IsCommitted(TxnId txn) const {
  return txn < txns_.size() && txns_[txn].committed;
}

const TimestampVector& MtkScheduler::Ts(TxnId txn) { return State(txn).ts; }

TxnId MtkScheduler::Rt(ItemId item) { return TopLive(&Item(item).readers); }

TxnId MtkScheduler::Wt(ItemId item) { return TopLive(&Item(item).writers); }

void MtkScheduler::CompactItemHistories() {
  for (ItemState& item : items_) {
    const TxnId r = TopLive(&item.readers);
    const TxnId w = TopLive(&item.writers);
    item.readers.clear();
    item.writers.clear();
    if (r != kVirtualTxn) item.readers.push_back({r, State(r).incarnation});
    if (w != kVirtualTxn) item.writers.push_back({w, State(w).incarnation});
  }
}

std::vector<TxnId> MtkScheduler::SerializationOrder(std::vector<TxnId> txns) {
  // Kahn's algorithm over the determined (Definition 6) order; stable with
  // respect to the input order among unordered transactions. The relation is
  // a strict partial order by Lemmas 1 and 2, so the sort always completes.
  const size_t n = txns.size();
  std::vector<TxnId> out;
  out.reserve(n);
  std::vector<bool> placed(n, false);
  for (size_t round = 0; round < n; ++round) {
    size_t pick = n;
    for (size_t c = 0; c < n && pick == n; ++c) {
      if (placed[c]) continue;
      bool minimal = true;
      for (size_t d = 0; d < n && minimal; ++d) {
        if (d == c || placed[d]) continue;
        if (VectorLess(State(txns[d]).ts, State(txns[c]).ts)) minimal = false;
      }
      if (minimal) pick = c;
    }
    assert(pick < n && "determined order must be acyclic (Lemmas 1-2)");
    if (pick == n) {  // Defensive fallback in release builds.
      for (size_t c = 0; c < n; ++c) {
        if (!placed[c]) {
          pick = c;
          break;
        }
      }
    }
    placed[pick] = true;
    out.push_back(txns[pick]);
  }
  return out;
}

std::string MtkScheduler::DumpTable(TxnId max_txn) {
  std::vector<std::string> header = {"txn", "TS", "state"};
  TablePrinter table(header);
  for (TxnId t = 0; t <= max_txn; ++t) {
    const TxnState& s = State(t);
    std::string st = t == kVirtualTxn ? "virtual"
                     : s.aborted      ? "aborted"
                     : s.committed    ? "committed"
                                      : "active";
    table.AddRow({"T" + std::to_string(t), s.ts.ToString(), st});
  }
  return table.ToString();
}

}  // namespace prepr
