// Frozen pre-refactor baseline, vendored verbatim from the seed tree
// (commit 6e326b8^ lineage) with only the namespace renamed, so the
// mt_throughput benchmark can measure the optimized core against the real
// code it replaced inside one binary. Do not modernize this copy.
#ifndef BENCH_PREPR_TIMESTAMP_VECTOR_H_
#define BENCH_PREPR_TIMESTAMP_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace prepr {

/// A single timestamp element. Elements are drawn from a logical clock, not a
/// real clock, and may be negative (lcount counts downward). kUndefinedElement
/// is the paper's '*': an element that has not been assigned yet. Per the
/// paper, "an undefined element is not equal to any integer".
using TsElement = int64_t;
constexpr TsElement kUndefinedElement = std::numeric_limits<int64_t>::min();

/// Outcome of comparing two timestamp vectors under Definition 6.
enum class VectorOrder {
  kLess,          // TS(i) < TS(j): first differing defined pair orders them.
  kGreater,       // TS(i) > TS(j).
  kEqual,         // '=': equal prefix, then both undefined at position m.
  kUndetermined,  // '?': equal prefix, then exactly one side undefined at m.
  kIdentical,     // All k elements defined and pairwise equal. Algorithm 1's
                  // counters make this unreachable between distinct live
                  // transactions; surfaced for defensive handling.
};

/// Result of a Definition-6 comparison: the order plus the 0-based position m
/// at which it was decided (== size() for kIdentical).
struct VectorCompareResult {
  VectorOrder order = VectorOrder::kIdentical;
  size_t index = 0;
};

/// The timestamp vector TS(i) of a transaction: k elements, each an integer
/// or undefined. Earlier (leftmost) elements are more significant; comparison
/// is lexicographic with the undefined-element rules of Definition 6.
class TimestampVector {
 public:
  /// All k elements undefined: the initial state of every real transaction.
  explicit TimestampVector(size_t k);

  /// The virtual transaction T0's vector <0, *, *, ..., *>.
  static TimestampVector Virtual(size_t k);

  size_t size() const { return elems_.size(); }

  bool IsDefined(size_t m) const { return elems_[m] != kUndefinedElement; }
  TsElement Get(size_t m) const { return elems_[m]; }
  void Set(size_t m, TsElement v) { elems_[m] = v; }

  /// Number of leading elements that are defined.
  size_t DefinedPrefixLength() const;

  /// Count of defined elements anywhere in the vector.
  size_t DefinedCount() const;

  /// Clears every element back to undefined (used by the starvation fix,
  /// which "flushes out" an aborted transaction's vector).
  void Reset();

  /// Renders in the paper's notation, e.g. "<1,2,*>".
  std::string ToString() const;

  friend bool operator==(const TimestampVector& a, const TimestampVector& b) {
    return a.elems_ == b.elems_;
  }

 private:
  std::vector<TsElement> elems_;
};

/// Definition-6 comparison of TS(i) = a against TS(j) = b. Scans left to
/// right for the first position where the elements are not both defined and
/// equal; the pair found there decides the order:
///   both defined, a<b  -> kLess      both defined, a>b -> kGreater
///   both undefined     -> kEqual     exactly one undefined -> kUndetermined
/// Vectors must have equal size.
VectorCompareResult Compare(const TimestampVector& a, const TimestampVector& b);

/// Convenience: strict Definition-6 "less than".
inline bool VectorLess(const TimestampVector& a, const TimestampVector& b) {
  return Compare(a, b).order == VectorOrder::kLess;
}

/// Name of a VectorOrder value, for diagnostics.
const char* VectorOrderName(VectorOrder order);

}  // namespace prepr

#endif  // BENCH_PREPR_TIMESTAMP_VECTOR_H_
