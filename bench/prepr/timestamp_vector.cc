#include "timestamp_vector.h"

#include <cassert>

namespace prepr {

TimestampVector::TimestampVector(size_t k)
    : elems_(k, kUndefinedElement) {
  assert(k > 0);
}

TimestampVector TimestampVector::Virtual(size_t k) {
  TimestampVector v(k);
  v.Set(0, 0);
  return v;
}

size_t TimestampVector::DefinedPrefixLength() const {
  size_t n = 0;
  while (n < elems_.size() && elems_[n] != kUndefinedElement) ++n;
  return n;
}

size_t TimestampVector::DefinedCount() const {
  size_t n = 0;
  for (TsElement e : elems_) {
    if (e != kUndefinedElement) ++n;
  }
  return n;
}

void TimestampVector::Reset() {
  for (TsElement& e : elems_) e = kUndefinedElement;
}

std::string TimestampVector::ToString() const {
  std::string out = "<";
  for (size_t i = 0; i < elems_.size(); ++i) {
    if (i > 0) out += ',';
    if (elems_[i] == kUndefinedElement) {
      out += '*';
    } else {
      out += std::to_string(elems_[i]);
    }
  }
  out += '>';
  return out;
}

VectorCompareResult Compare(const TimestampVector& a,
                            const TimestampVector& b) {
  assert(a.size() == b.size());
  const size_t k = a.size();
  for (size_t m = 0; m < k; ++m) {
    const bool da = a.IsDefined(m);
    const bool db = b.IsDefined(m);
    if (da && db) {
      if (a.Get(m) < b.Get(m)) return {VectorOrder::kLess, m};
      if (a.Get(m) > b.Get(m)) return {VectorOrder::kGreater, m};
      continue;  // Equal defined elements: keep scanning.
    }
    if (!da && !db) return {VectorOrder::kEqual, m};
    return {VectorOrder::kUndetermined, m};
  }
  return {VectorOrder::kIdentical, k};
}

const char* VectorOrderName(VectorOrder order) {
  switch (order) {
    case VectorOrder::kLess:
      return "LESS";
    case VectorOrder::kGreater:
      return "GREATER";
    case VectorOrder::kEqual:
      return "EQUAL";
    case VectorOrder::kUndetermined:
      return "UNDETERMINED";
    case VectorOrder::kIdentical:
      return "IDENTICAL";
  }
  return "?";
}

}  // namespace prepr
