// Durability overhead sweep for the Taurus-style parallel WAL: sync policy
// x group-commit window x threads over the sharded MT(k) engine, against
// the in-memory (wal = nullptr) baseline. Goodput is committed
// transactions per second in a closed loop - every worker retries its
// transaction until it commits, appends land before the commit is
// acknowledged - so the numbers honestly include abort handling, restart
// costs and the fsync stalls of each policy. Commit-acknowledge latency
// (p50/p99 of the CommitTxn call, which contains the append and any fsync
// wait) is sampled per cell and recorded next to the goodput, making the
// policy trade explicit: every-commit pays the sync in every ack, group
// commit amortizes it across its window at the cost of tail latency. After every durable run the
// log is recovered and the record count audited against the engine's
// append count; any mismatch fails the run (non-zero exit).
//
// Results are upserted into a JSON results file (default BENCH_core.json)
// keyed by benchmark name. The machine's hardware thread count rides along
// in each record: on a single-core container the multi-thread rows measure
// oversubscription, not scaling, and readers can judge.
//
// CI smoke modes (used by the recovery-smoke workflow step):
//   wal_throughput --crash-after=N --dir=D   drive load until the WAL has
//       appended N records, then die abruptly (std::_Exit) mid-write: no
//       destructors, no flushes - a real torn process image under D.
//   wal_throughput --recover --dir=D         recover D, rebuild an engine
//       from the merged records, print what survived; exit 0 on success.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_clock.h"
#include "common/bench_json.h"
#include "common/table_printer.h"
#include "core/types.h"
#include "engine/sharded_engine.h"
#include "obs/metrics.h"
#include "wal/wal.h"

namespace mdts {
namespace {

// xorshift64* - tiny, deterministic, allocation-free.
inline uint64_t NextRand(uint64_t* s) {
  uint64_t x = *s;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *s = x;
  return x * 0x2545F4914F6CDD1DULL;
}

constexpr size_t kVectorK = 4;
constexpr ItemId kItems = 256;
constexpr size_t kOpsPerTxn = 4;

struct RunResult {
  uint64_t committed = 0;
  uint64_t ops_accepted = 0;
  double seconds = 0.0;
  WalStats wal;
  // Commit-acknowledge latency samples (ns): the CommitTxn call, which for
  // a durable engine includes the WAL append and whatever fsync stall the
  // sync policy imposes (every-commit pays one per commit, group commit
  // waits for its window, none rides the page cache). Sampled every 4th
  // commit per worker.
  std::vector<uint64_t> ack_ns;

  double goodput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0;
  }
  double AckPercentileUs(int pct) {
    return ack_ns.empty()
               ? 0.0
               : static_cast<double>(Percentile(ack_ns, pct)) / 1000.0;
  }
};

// Closed loop: `threads` workers, each driving one transaction at a time to
// commit (retrying on reject), stopping once the stopwatch passes `secs`.
// `crash_after` > 0 kills the process outright once the WAL has that many
// appends (the CI smoke's mid-write crash).
RunResult RunLoad(ShardedMtkEngine& engine, ParallelWal* wal, double secs,
                  size_t threads, uint64_t crash_after) {
  std::vector<std::thread> pool;
  std::vector<uint64_t> committed(threads, 0);
  std::vector<uint64_t> accepted(threads, 0);
  std::vector<std::vector<uint64_t>> ack_ns(threads);
  Stopwatch clock;
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint64_t rng = 0x9E3779B97F4A7C15ULL * (t + 1);
      uint32_t n = 0;
      while (clock.ElapsedSeconds() < secs) {
        const TxnId txn = static_cast<TxnId>(1 + t + n * threads);
        ++n;
        for (;;) {
          bool ok = true;
          uint64_t acc = 0;
          for (size_t o = 0; o < kOpsPerTxn && ok; ++o) {
            const uint64_t r = NextRand(&rng);
            Op op;
            op.txn = txn;
            op.type = r % 2 == 0 ? OpType::kRead : OpType::kWrite;
            op.item = static_cast<ItemId>((r >> 8) % kItems);
            ok = engine.Process(op) != OpDecision::kReject;
            acc += ok;
          }
          if (ok) {
            const bool sample = (committed[t] & 3) == 0;
            const uint64_t t0 = sample ? clock.ElapsedNanos() : 0;
            engine.CommitTxn(txn);
            if (sample) ack_ns[t].push_back(clock.ElapsedNanos() - t0);
            ++committed[t];
            accepted[t] += acc;
            break;
          }
          engine.RestartTxn(txn);
        }
        if (crash_after > 0 && wal != nullptr &&
            wal->stats().appends >= crash_after) {
          std::_Exit(3);  // Abrupt: buffered WAL tails are torn on purpose.
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  RunResult out;
  out.seconds = clock.ElapsedSeconds();
  for (size_t t = 0; t < threads; ++t) {
    out.committed += committed[t];
    out.ops_accepted += accepted[t];
    out.ack_ns.insert(out.ack_ns.end(), ack_ns[t].begin(), ack_ns[t].end());
  }
  if (wal != nullptr) out.wal = wal->stats();
  return out;
}

EngineOptions BaseEngineOptions() {
  EngineOptions eo;
  eo.k = kVectorK;
  eo.num_shards = 4;
  eo.starvation_fix = true;
  eo.compact_every = 4096;
  return eo;
}

struct PolicyConfig {
  const char* name;
  WalSyncPolicy policy;
  size_t window;  // group_commit_ops; meaningful for kGroupCommit only.
};

int failures = 0;

// One durable run: fresh log dir, engine with the WAL attached, then a
// recovery audit - every acknowledged append must come back.
RunResult RunDurable(const std::string& dir, const PolicyConfig& cfg,
                     double secs, size_t threads) {
  std::filesystem::remove_all(dir);
  WalOptions wo;
  wo.dir = dir;
  wo.num_streams = threads;
  wo.k = kVectorK;
  wo.sync_policy = cfg.policy;
  wo.group_commit_ops = cfg.window;
  ParallelWal wal(wo);
  if (!wal.ok()) {
    std::fprintf(stderr, "FAIL: cannot open WAL under %s\n", dir.c_str());
    ++failures;
    return {};
  }
  EngineOptions eo = BaseEngineOptions();
  eo.wal = &wal;
  ShardedMtkEngine engine(eo);
  RunResult r = RunLoad(engine, &wal, secs, threads, 0);
  wal.Close();  // Clean shutdown: flush + fsync every stream.
  r.wal = wal.stats();
  const WalRecovery rec = ParallelWal::Recover(dir);
  if (!rec.ok || rec.torn_streams != 0 || rec.records.size() != r.wal.appends) {
    std::fprintf(stderr,
                 "FAIL: %s/%zu/%zut recovery mismatch: ok=%d torn=%zu "
                 "records=%zu appends=%llu\n",
                 cfg.name, cfg.window, threads, rec.ok ? 1 : 0,
                 rec.torn_streams, rec.records.size(),
                 static_cast<unsigned long long>(r.wal.appends));
    ++failures;
  }
  std::filesystem::remove_all(dir);
  return r;
}

int RunSweep(const std::string& out_path, const std::string& base_dir,
             double secs) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("WAL durability sweep: %zu-op txns over %u items, k=%zu, "
              "%.2fs per cell, %u hardware threads\n\n",
              kOpsPerTxn, kItems, kVectorK, secs, hw);

  const PolicyConfig policies[] = {
      {"none", WalSyncPolicy::kNone, 0},
      {"group", WalSyncPolicy::kGroupCommit, 8},
      {"group", WalSyncPolicy::kGroupCommit, 64},
      {"every_commit", WalSyncPolicy::kEveryCommit, 0},
  };
  TablePrinter table({"threads", "policy", "window", "goodput txn/s",
                      "overhead %", "ack p50 us", "ack p99 us", "fsyncs",
                      "wal MB"});
  for (size_t threads : {1u, 2u, 4u}) {
    EngineOptions eo = BaseEngineOptions();
    ShardedMtkEngine baseline_engine(eo);
    RunResult base = RunLoad(baseline_engine, nullptr, secs, threads, 0);
    table.AddRow({std::to_string(threads), "in-memory", "-",
                  FormatDouble(base.goodput(), 0), "0.0",
                  FormatDouble(base.AckPercentileUs(50), 1),
                  FormatDouble(base.AckPercentileUs(99), 1), "-", "-"});
    BenchFields fields = {
        {"hardware_threads", JsonNum(hw)},
        {"seconds_per_cell", JsonNum(secs)},
        {"baseline_goodput_txn_s", JsonNum(base.goodput())},
        {"baseline_ack_p50_us", JsonNum(base.AckPercentileUs(50))},
        {"baseline_ack_p99_us", JsonNum(base.AckPercentileUs(99))}};
    for (const PolicyConfig& cfg : policies) {
      const std::string dir = base_dir + "/wal_bench_t" +
                              std::to_string(threads) + "_" + cfg.name + "_w" +
                              std::to_string(cfg.window);
      RunResult r = RunDurable(dir, cfg, secs, threads);
      const double overhead =
          base.goodput() > 0
              ? (base.goodput() - r.goodput()) / base.goodput() * 100.0
              : 0.0;
      table.AddRow({std::to_string(threads), cfg.name,
                    cfg.policy == WalSyncPolicy::kGroupCommit
                        ? std::to_string(cfg.window)
                        : "-",
                    FormatDouble(r.goodput(), 0), FormatDouble(overhead, 1),
                    FormatDouble(r.AckPercentileUs(50), 1),
                    FormatDouble(r.AckPercentileUs(99), 1),
                    std::to_string(r.wal.fsyncs),
                    FormatDouble(static_cast<double>(r.wal.bytes) / 1e6, 1)});
      const std::string key =
          std::string(cfg.name) +
          (cfg.policy == WalSyncPolicy::kGroupCommit
               ? "_w" + std::to_string(cfg.window)
               : "");
      fields.emplace_back(key + "_goodput_txn_s", JsonNum(r.goodput()));
      fields.emplace_back(key + "_overhead_pct", JsonNum(overhead));
      fields.emplace_back(key + "_fsyncs", JsonNum(double(r.wal.fsyncs)));
      fields.emplace_back(key + "_ack_p50_us",
                          JsonNum(r.AckPercentileUs(50)));
      fields.emplace_back(key + "_ack_p99_us",
                          JsonNum(r.AckPercentileUs(99)));
    }
    UpsertBenchRecord(out_path, "wal_throughput_t" + std::to_string(threads),
                      fields);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("[%s] durability sweep: %d recovery audit failure(s)\n",
              failures == 0 ? "ok" : "REPRODUCTION FAILURE", failures);
  return failures == 0 ? 0 : 1;
}

// --crash-after mode: drive load with a group-commit WAL until the append
// count is reached, then _Exit mid-write. Never returns on the happy path.
int RunCrash(const std::string& dir, uint64_t crash_after) {
  std::filesystem::remove_all(dir);
  WalOptions wo;
  wo.dir = dir;
  wo.num_streams = 2;
  wo.k = kVectorK;
  wo.sync_policy = WalSyncPolicy::kGroupCommit;
  wo.group_commit_ops = 8;
  ParallelWal wal(wo);
  if (!wal.ok()) return 2;
  EngineOptions eo = BaseEngineOptions();
  eo.wal = &wal;
  ShardedMtkEngine engine(eo);
  RunLoad(engine, &wal, /*secs=*/60.0, /*threads=*/2, crash_after);
  std::fprintf(stderr, "crash-after=%llu never reached\n",
               static_cast<unsigned long long>(crash_after));
  return 2;
}

// --recover mode: merge the streams left by a crashed run and rebuild an
// engine from them. Torn tails are expected (and truncated); an unreadable
// log or an inconsistent rebuild is the failure.
int RunRecover(const std::string& dir) {
  const WalRecovery rec = ParallelWal::Recover(dir);
  if (!rec.ok) {
    std::fprintf(stderr, "recovery failed: %s\n", rec.error.c_str());
    return 1;
  }
  EngineOptions eo = BaseEngineOptions();
  ShardedMtkEngine engine(eo);
  const size_t applied = engine.RecoverFrom(rec);
  for (const WalCommitRecord& r : rec.records) {
    if (!engine.IsCommitted(r.txn)) {
      std::fprintf(stderr, "rebuild lost txn %u\n", r.txn);
      return 1;
    }
  }
  std::printf("recovered %zu commit records (%zu applied) from %zu streams "
              "(%zu torn tail(s) truncated), %zu item tops rebuilt\n",
              rec.records.size(), applied, rec.streams.size(),
              rec.torn_streams, rec.item_writer.size());
  return 0;
}

}  // namespace
}  // namespace mdts

// Usage: wal_throughput [RESULTS.json] [--secs=S] [--dir=D]
//                       [--crash-after=N --dir=D] [--recover --dir=D]
int main(int argc, char** argv) {
  std::string out_path = "BENCH_core.json";
  std::string dir;
  double secs = 0.5;
  uint64_t crash_after = 0;
  bool recover = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--secs=", 7) == 0) {
      secs = std::strtod(argv[i] + 7, nullptr);
      if (secs <= 0) secs = 0.5;
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--crash-after=", 14) == 0) {
      crash_after = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (argv[i][0] != '-') {
      out_path = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (recover) {
    if (dir.empty()) {
      std::fprintf(stderr, "--recover requires --dir=D\n");
      return 2;
    }
    return mdts::RunRecover(dir);
  }
  if (crash_after > 0) {
    if (dir.empty()) {
      std::fprintf(stderr, "--crash-after requires --dir=D\n");
      return 2;
    }
    return mdts::RunCrash(dir, crash_after);
  }
  if (dir.empty()) {
    dir = std::filesystem::temp_directory_path().string();
  }
  return mdts::RunSweep(out_path, dir, secs);
}
