// Section III-D-6d extension experiment: multiversion MT(k) ("Reed [19]
// proposed a multiple version concurrency control mechanism using
// single-valued timestamps. The idea can be extended to timestamp
// vectors"). Measures the multiversion payoff against single-version MT(k)
// across read fractions: reads never abort, old-version reads absorb
// conflicts, and the Section III-D-4 seeding is what keeps writers from
// starving under a floating reader population.

#include <cstdio>
#include <memory>

#include "common/table_printer.h"
#include "mvcc/mv_online.h"
#include "sched/mtk_online.h"
#include "sim/simulator.h"

namespace mdts {
namespace {

int Run() {
  std::printf("=== Multiversion MT(k) vs single-version MT(k) ===\n\n");

  TablePrinter table({"reads", "scheduler", "committed", "gave up", "aborts",
                      "throughput", "old-version reads", "read rejects"});
  for (double rf : {0.5, 0.8, 0.95}) {
    SimOptions sim;
    sim.num_txns = 200;
    sim.concurrency = 10;
    sim.seed = 404;
    sim.workload.num_items = 6;
    sim.workload.min_ops = 2;
    sim.workload.max_ops = 4;
    sim.workload.read_fraction = rf;

    {
      MtkOptions o;
      o.k = 3;
      o.starvation_fix = true;
      MtkOnline s(o);
      SimResult r = RunSimulation(&s, sim);
      table.AddRow({FormatDouble(rf, 2), s.name(),
                    std::to_string(r.committed), std::to_string(r.gave_up),
                    std::to_string(r.aborts), FormatDouble(r.throughput, 3),
                    "-", "-"});
    }
    for (bool fix : {false, true}) {
      MvMtkOptions o;
      o.k = 3;
      o.starvation_fix = fix;
      MvOnline s(o);
      SimResult r = RunSimulation(&s, sim);
      const auto& st = s.inner().stats();
      table.AddRow({FormatDouble(rf, 2),
                    s.name() + std::string(fix ? "+fix" : ""),
                    std::to_string(r.committed), std::to_string(r.gave_up),
                    std::to_string(r.aborts), FormatDouble(r.throughput, 3),
                    std::to_string(st.old_version_reads),
                    std::to_string(st.read_rejects)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("--- version storage and reclamation ---\n");
  MvMtkOptions o;
  o.k = 3;
  o.starvation_fix = true;
  MvOnline s(o);
  SimOptions sim;
  sim.num_txns = 300;
  sim.concurrency = 10;
  sim.seed = 505;
  sim.workload.num_items = 4;
  sim.workload.min_ops = 2;
  sim.workload.max_ops = 4;
  sim.workload.read_fraction = 0.6;
  RunSimulation(&s, sim);
  size_t before = 0;
  for (ItemId x = 0; x < 4; ++x) before += s.inner().VersionCount(x);
  s.inner().PruneVersions();
  size_t after = 0;
  for (ItemId x = 0; x < 4; ++x) after += s.inner().VersionCount(x);
  std::printf("live versions across 4 items: %zu before pruning, %zu after\n"
              "(unreferenced committed versions behind the newest are "
              "reclaimed,\n per the paper's storage-reclamation note "
              "III-D-6b).\n\n",
              before, after);
  std::printf("audit: committed multiversion history one-copy serializable: "
              "%s\n",
              s.inner().AuditMvsgAcyclic() ? "yes" : "NO (bug!)");

  std::printf("\nExpected shape: reads never abort (read rejects = 0);\n"
              "with the seeding fix, multiversion MT(3) aborts far less\n"
              "than single-version MT(3), and the advantage grows with the\n"
              "read fraction; without the fix, floating readers starve\n"
              "writers - the dynamic-timestamp analogue of MVTO's\n"
              "write-rejection weakness.\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
