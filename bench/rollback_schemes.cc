// Section VI-C experiment: the two rollback-overhead reduction schemes.
//  1) Partial rollback: a restarted transaction keeps the computation
//     results of the prefix before the rejected operation - measured as
//     think-time-free replays and wasted work.
//  2) Two-phase commit per write (deferred writes): writes stay invisible
//     until commit; aborts never cascade and committed transactions are
//     final - measured against immediate-write MT(k) on the same load.

#include <cstdio>
#include <memory>

#include "common/table_printer.h"
#include "sched/deferred_write.h"
#include "sched/mtk_online.h"
#include "sim/simulator.h"

namespace mdts {
namespace {

SimOptions Contended(uint64_t seed) {
  SimOptions options;
  options.num_txns = 250;
  options.concurrency = 10;
  options.seed = seed;
  options.workload.num_items = 6;
  options.workload.min_ops = 4;
  options.workload.max_ops = 6;
  options.workload.read_fraction = 0.5;
  return options;
}

int Run() {
  std::printf("=== Rollback schemes (Section VI-C) ===\n\n");

  std::printf("--- 1) full restart vs partial rollback (MT(3)+fix) ---\n");
  TablePrinter t1({"policy", "committed", "aborts", "ops wasted",
                   "prefix ops replayed free", "throughput"});
  for (bool partial : {false, true}) {
    MtkOptions o;
    o.k = 3;
    o.starvation_fix = true;
    MtkOnline s(o);
    SimOptions options = Contended(9);
    options.partial_rollback = partial;
    SimResult r = RunSimulation(&s, options);
    t1.AddRow({partial ? "partial rollback" : "full restart",
               std::to_string(r.committed), std::to_string(r.aborts),
               std::to_string(r.ops_wasted),
               std::to_string(r.ops_replayed_free),
               FormatDouble(r.throughput, 3)});
  }
  std::printf("%s\n", t1.ToString().c_str());
  std::printf("Expected shape: partial rollback converts wasted operations\n"
              "into free replays, preserving the computation results up to\n"
              "the restart point (paper VI-C-1).\n\n");

  std::printf("--- 2) immediate writes vs deferred writes ---\n");
  TablePrinter t2({"scheduler", "committed", "aborts", "gave up",
                   "throughput", "avg response"});
  for (int which = 0; which < 2; ++which) {
    std::unique_ptr<Scheduler> s;
    MtkOptions o;
    o.k = 3;
    if (which == 0) {
      o.starvation_fix = true;
      s = std::make_unique<MtkOnline>(o);
    } else {
      s = std::make_unique<MtkDeferredWrite>(o);
    }
    SimResult r = RunSimulation(s.get(), Contended(21));
    t2.AddRow({s->name(), std::to_string(r.committed),
               std::to_string(r.aborts), std::to_string(r.gave_up),
               FormatDouble(r.throughput, 3),
               FormatDouble(r.avg_response_time, 2)});
  }
  std::printf("%s\n", t2.ToString().c_str());
  std::printf("Properties the deferred scheme guarantees (VI-C-2), both\n"
              "checked structurally in the test suite: an uncommitted\n"
              "abort affects no other transaction (no write was visible),\n"
              "and a committed transaction is never aborted afterwards.\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
