// Regenerates paper Figs. 6-7 (Section III-E): the five-phase parallel
// vector-comparison walkthrough on TS(1) = <1,3,2,2> vs TS(2) = <1,3,5,2>,
// the partial-OR processor tree, and Theorem 4's O(log k) depth as a
// depth-vs-k table (sequential element comparisons vs parallel phases).

#include <cstdio>

#include "common/table_printer.h"
#include "parallel/parallel_compare.h"

namespace mdts {
namespace {

int Run() {
  std::printf("=== Figs. 6-7: parallel timestamp-vector comparison ===\n\n");

  TimestampVector a(4), b(4);
  const TsElement va[4] = {1, 3, 2, 2};
  const TsElement vb[4] = {1, 3, 5, 2};
  for (size_t i = 0; i < 4; ++i) {
    a.Set(i, va[i]);
    b.Set(i, vb[i]);
  }
  std::printf("input:  TS(1) = %s\n        TS(2) = %s\n\n",
              a.ToString().c_str(), b.ToString().c_str());

  std::vector<std::string> trace;
  auto r = ParallelCompareTraced(a, b, &trace);
  for (const std::string& line : trace) std::printf("%s\n", line.c_str());
  std::printf("\nresult: %s at column %zu (1-based %zu), %zu phases, "
              "%zu processors\n",
              VectorOrderName(r.order), r.index, r.index + 1, r.phases,
              r.processors);
  const bool fig6_ok =
      r.order == VectorOrder::kLess && r.index == 2 && r.phases == 6;
  std::printf("[%s] Fig. 6 walkthrough: 3rd elements decide TS(1) < TS(2)\n\n",
              fig6_ok ? "ok" : "REPRODUCTION FAILURE");

  std::printf("Theorem 4: depth vs vector size k (the Fig. 7 tree has\n"
              "height ceil(log2 k); sequential comparison costs O(k)):\n\n");
  TablePrinter table({"k", "sequential element steps (worst)",
                      "parallel phases (4 + ceil(log2 k))"});
  for (size_t k : {2u, 4u, 8u, 16u, 64u, 256u, 1024u, 4096u}) {
    TimestampVector x(k), y(k);
    for (size_t i = 0; i < k; ++i) {
      x.Set(i, 1);
      y.Set(i, 1);
    }
    y.Set(k - 1, 2);  // Worst case: decided at the last column.
    auto rr = ParallelCompare(x, y);
    table.AddRow({std::to_string(k), std::to_string(k),
                  std::to_string(rr.phases)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Shape reproduced: parallel depth grows logarithmically while\n"
              "the sequential scan grows linearly, as Theorem 4 states.\n");
  return fig6_ok ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
