// Section IV experiment: the shared-prefix composite MT(k+) (Algorithm 2)
// against running MT(1..k) independently - identical decisions at O(k)
// instead of O(k^2) column work per operation.

#include <cstdio>

#include "common/table_printer.h"
#include "composite/mtk_plus.h"
#include "composite/naive_union.h"
#include "workload/generator.h"

namespace mdts {
namespace {

int failures = 0;

int Run() {
  std::printf("=== MT(k+): shared prefix vs independent subprotocols ===\n\n");

  TablePrinter table({"k", "logs", "decision mismatches",
                      "columns/op (shared)", "elements/op (naive, approx)"});
  for (size_t k : {2u, 3u, 5u, 8u, 12u}) {
    uint64_t mismatches = 0;
    uint64_t shared_cols = 0, shared_ops = 0;
    uint64_t naive_elems = 0;
    const int rounds = 300;
    for (int i = 0; i < rounds; ++i) {
      WorkloadOptions w;
      w.num_txns = 8;
      w.num_items = 5;
      w.min_ops = 2;
      w.max_ops = 4;
      w.seed = 500 + static_cast<uint64_t>(i);
      Log log = GenerateLog(w);

      NaiveUnionRecognizer naive(k, /*with_old_read_path=*/false);
      MtkPlus shared(k);
      for (const Op& op : log.ops()) {
        const OpDecision dn = naive.Process(op);
        const OpDecision ds = shared.Process(op);
        if (dn != ds) ++mismatches;
        if (dn == OpDecision::kReject) break;
      }
      shared_cols += shared.stats().columns_touched;
      shared_ops += shared.stats().accepted + shared.stats().rejected;
      for (size_t h = 1; h <= k; ++h) {
        naive_elems += naive.Sub(h).stats().element_comparisons;
      }
    }
    table.AddRow({std::to_string(k), std::to_string(rounds),
                  std::to_string(mismatches),
                  FormatDouble(static_cast<double>(shared_cols) /
                                   static_cast<double>(shared_ops),
                               2),
                  FormatDouble(static_cast<double>(naive_elems) /
                                   static_cast<double>(shared_ops),
                               2)});
    if (mismatches != 0) ++failures;
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("[%s] zero decision mismatches at every k\n",
              failures == 0 ? "ok" : "REPRODUCTION FAILURE");
  std::printf("\nExpected shape: shared-prefix column work grows linearly\n"
              "in k while the independent subprotocols' total comparison\n"
              "work grows roughly quadratically (Section IV's O(nqk) vs\n"
              "O(nqk^2) claim).\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
