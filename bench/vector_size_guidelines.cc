// Section VI-B experiment: guidelines to choose the timestamp vector size.
// Measures acceptance rate vs k across conflict levels and transaction
// lengths, locating the knee the paper predicts at k = 2q-1, and showing
// that high-conflict workloads profit from larger k while low-conflict
// ones do not.

#include <cstdio>

#include "common/table_printer.h"
#include "core/recognizer.h"
#include "workload/generator.h"

namespace mdts {
namespace {

double AcceptRate(uint32_t items, uint32_t q, size_t k, int rounds) {
  int accepted = 0;
  for (int i = 0; i < rounds; ++i) {
    WorkloadOptions w;
    w.num_txns = 6;
    w.num_items = items;
    w.min_ops = q;
    w.max_ops = q;
    w.read_fraction = 0.5;
    w.seed = 42'000 + static_cast<uint64_t>(i) * 13 + items * 7 + q;
    if (IsToK(GenerateLog(w), k)) ++accepted;
  }
  return 100.0 * accepted / rounds;
}

int Run() {
  std::printf("=== Vector-size guidelines (Section VI-B) ===\n\n");
  const int rounds = 800;

  for (uint32_t q : {2u, 3u, 4u}) {
    const size_t kstar = 2 * q - 1;
    std::printf("--- q = %u (sufficient size 2q-1 = %zu) ---\n", q, kstar);
    TablePrinter table({"k", "high conflict (4 items) %",
                        "medium (8 items) %", "low (32 items) %"});
    for (size_t k = 1; k <= kstar + 2; ++k) {
      table.AddRow({std::to_string(k) + (k == kstar ? "  <= 2q-1" : ""),
                    FormatDouble(AcceptRate(4, q, k, rounds), 1),
                    FormatDouble(AcceptRate(8, q, k, rounds), 1),
                    FormatDouble(AcceptRate(32, q, k, rounds), 1)});
    }
    std::printf("%s\n", table.ToString().c_str());
  }

  std::printf("Expected shape (paper's guidelines):\n"
              " a) under high conflict, acceptance varies with k and large\n"
              "    k pays off; under low conflict every k accepts almost\n"
              "    everything,\n"
              " b) rows beyond k = 2q-1 are identical to the k = 2q-1 row\n"
              "    (Theorem 3): storage beyond 2q-1 is wasted,\n"
              " c) acceptance need not be monotone in k below 2q-1 (the\n"
              "    classes are incomparable), which is why MT(k+) exists.\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
