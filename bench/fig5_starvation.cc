// Regenerates paper Fig. 5 (Section III-D-4): the starvation case
//     L = W1(x) W2(x) R3(y) W3(x)
// where T3 is aborted at W3(x) and, without the fix, repeats the identical
// abort forever; with the fix TS(3) is flushed and seeded to TS(2,1)+1 so
// the retry commits.

#include <cstdio>

#include "classify/dependency_graph.h"
#include "core/log.h"
#include "core/mtk_scheduler.h"

namespace mdts {
namespace {

void RunVariant(bool fix, int max_retries) {
  MtkOptions options;
  options.k = 2;
  options.starvation_fix = fix;
  MtkScheduler s(options);
  std::printf("--- MT(2) %s the starvation fix ---\n",
              fix ? "WITH" : "WITHOUT");
  const Log prefix = *Log::Parse("W1(x) W2(x)");
  for (const Op& op : prefix.ops()) s.Process(op);
  std::printf("After %s: TS(1)=%s TS(2)=%s\n", prefix.ToString().c_str(),
              s.Ts(1).ToString().c_str(), s.Ts(2).ToString().c_str());

  for (int attempt = 1; attempt <= max_retries; ++attempt) {
    const OpDecision read = s.Process(Op{3, OpType::kRead, 1});
    const OpDecision write = s.Process(Op{3, OpType::kWrite, 0});
    std::printf("attempt %d: R3(y) -> %s, W3(x) -> %s, TS(3)=%s\n", attempt,
                OpDecisionName(read), OpDecisionName(write),
                s.Ts(3).ToString().c_str());
    if (write == OpDecision::kAccept) {
      s.CommitTxn(3);
      std::printf("T3 committed on attempt %d.\n\n", attempt);
      return;
    }
    s.RestartTxn(3);
  }
  std::printf("T3 still aborting after %d attempts: STARVATION.\n\n",
              max_retries);
}

int Run() {
  std::printf("=== Fig. 5: the starvation case ===\n\n");
  const Log log = *Log::Parse("W1(x) W2(x) R3(y) W3(x)");
  std::printf("Log: %s\nDependency digraph:\n%s\n", log.ToString().c_str(),
              DependencyGraph::FromLog(log).ToDot("fig5").c_str());

  RunVariant(/*fix=*/false, /*max_retries=*/5);
  RunVariant(/*fix=*/true, /*max_retries=*/5);

  std::printf("Paper's claim reproduced: without the fix the dependency\n"
              "edge d (T2 -> T3) is disallowed on every retry; with the\n"
              "fix TS(3) restarts as <3,*> and T3 proceeds to its end.\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
