// Adaptable concurrency control experiment (the direction referenced as
// [8] at the end of Section IV): the vector size k adapts to the observed
// abort rate, growing under contention per the Section VI-B guidelines and
// shrinking when conflicts vanish. Shows the adaptation trajectory and
// compares against fixed-k schedulers on the same workloads.

#include <cstdio>
#include <memory>

#include "common/table_printer.h"
#include "sched/adaptive.h"
#include "sched/mtk_online.h"
#include "sim/simulator.h"

namespace mdts {
namespace {

SimOptions Workload(uint32_t items, uint64_t seed) {
  SimOptions sim;
  sim.num_txns = 300;
  sim.concurrency = 10;
  sim.seed = seed;
  sim.workload.num_items = items;
  sim.workload.min_ops = 2;
  sim.workload.max_ops = 4;
  sim.workload.read_fraction = 0.5;
  return sim;
}

int Run() {
  std::printf("=== Adaptive MT(k): vector size follows the abort rate ===\n\n");

  TablePrinter table({"items", "scheduler", "committed", "aborts",
                      "throughput", "final k", "switches"});
  for (uint32_t items : {4u, 12u, 60u}) {
    for (int which = 0; which < 3; ++which) {
      std::unique_ptr<Scheduler> s;
      AdaptiveMtScheduler* adaptive = nullptr;
      if (which == 0) {
        MtkOptions o;
        o.k = 1;
        o.starvation_fix = true;
        s = std::make_unique<MtkOnline>(o);
      } else if (which == 1) {
        MtkOptions o;
        o.k = 5;
        o.starvation_fix = true;
        s = std::make_unique<MtkOnline>(o);
      } else {
        AdaptiveOptions o;
        o.initial_k = 1;
        o.epoch_ops = 100;
        auto a = std::make_unique<AdaptiveMtScheduler>(o);
        adaptive = a.get();
        s = std::move(a);
      }
      SimResult r = RunSimulation(s.get(), Workload(items, 808));
      table.AddRow({std::to_string(items), s->name(),
                    std::to_string(r.committed), std::to_string(r.aborts),
                    FormatDouble(r.throughput, 3),
                    adaptive ? std::to_string(adaptive->current_k()) : "-",
                    adaptive ? std::to_string(adaptive->switches()) : "-"});
      if (adaptive != nullptr) {
        std::printf("adaptation trajectory (%u items): k =", items);
        size_t shown = 0;
        for (size_t k : adaptive->k_history()) {
          if (++shown > 20) {
            std::printf(" ...");
            break;
          }
          std::printf(" %zu", k);
        }
        std::printf("\n");
      }
    }
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("Expected shape: under contention the adaptive scheduler\n"
              "climbs toward the fixed large-k performance; without\n"
              "contention it stays at k = 1 and pays nothing. Each switch\n"
              "restarts the active transactions (Algorithm 2's discipline),\n"
              "so switching itself costs aborts - visible at moderate\n"
              "contention.\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
