// Fault injection sweep for the decentralized protocol DMT(k).
//
// The paper specifies DMT(k) over a perfect network (Section V-B); this
// bench exercises it outside the happy path: message loss x site crashes
// x vector size k. The key claim under test is that the safety property
// survives every fault mix - the committed history of every cell must
// still be DSR (Theorem 2) - while the fault-tolerance machinery
// (idempotent retries, lock leases, abort-and-retry degradation) keeps
// the system live: every run terminates and commits transactions.
//
// Exits non-zero if any cell wedges, commits nothing, or fails the audit.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "classify/classes.h"
#include "common/bench_json.h"
#include "common/table_printer.h"
#include "core/types.h"
#include "dist/dmt_system.h"
#include "engine/sharded_engine.h"
#include "fault/fault.h"
#include "obs/dspan.h"
#include "obs/flight.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "wal/wal.h"

namespace mdts {
namespace {

int failures = 0;

DmtOptions Base(uint64_t seed) {
  DmtOptions options;
  options.num_sites = 4;
  options.num_txns = 120;
  options.concurrency = 10;
  options.message_latency = 0.5;
  options.seed = seed;
  options.workload.num_items = 16;
  options.workload.min_ops = 2;
  options.workload.max_ops = 4;
  options.workload.read_fraction = 0.6;
  return options;
}

std::string Audit(const DmtResult& r, uint32_t expected_txns) {
  const bool terminated = r.committed + r.gave_up == expected_txns;
  const bool dsr = IsDsr(r.committed_history);
  const bool live = r.committed > 0;
  if (!terminated || !dsr || !live) {
    ++failures;
    return !terminated ? "WEDGED" : (!dsr ? "NOT DSR" : "NO COMMITS");
  }
  return "ok";
}

int Run(const char* trace_path, const char* metrics_path, int serve_port,
        double sample_interval, double hold_seconds, const char* flight_path,
        const char* paths_path) {
  // Optional distributed tracer: a per-site span ring plus a critical-path
  // collector attached to every DMT(k) cell. The collector is snapshotted
  // and cleared after each cell, so the final --paths file holds one entry
  // per cell - the input tools/critical_path.py audits - and the per-cell
  // segment shares land in BENCH_core.json as the message-count/latency
  // baseline for the replication work (ROADMAP item 4).
  std::unique_ptr<SpanRing> spans;
  std::unique_ptr<PathCollector> paths;
  std::vector<std::string> cell_dumps;
  std::string bench_cells;
  if (paths_path != nullptr) {
    SpanRingOptions sro;
    sro.rings = 4;  // One ring per site in the Base() topology.
    sro.capacity = 1024;
    spans = std::make_unique<SpanRing>(sro);
    paths = std::make_unique<PathCollector>(/*top_n=*/12);
  }
  auto capture_cell = [&](const std::string& scenario, double loss, int crash,
                          size_t k, const DmtResult& r) {
    if (paths == nullptr) return;
    cell_dumps.push_back("{\"cell\": {\"scenario\": " + JsonStr(scenario) +
                         ", \"loss\": " + JsonNum(loss) +
                         ", \"crash\": " + std::to_string(crash) +
                         ", \"k\": " + std::to_string(k) +
                         "}, \"paths\": " + paths->ToJson() + "}");
    std::string b = "{\"scenario\": " + JsonStr(scenario) +
                    ", \"loss\": " + JsonNum(loss) +
                    ", \"crash\": " + std::to_string(crash) +
                    ", \"k\": " + std::to_string(k) +
                    ", \"paths\": " + std::to_string(r.paths_extracted) +
                    ", \"total_us\": " + std::to_string(r.path_total_us) +
                    ", \"messages\": " + std::to_string(r.messages_sent) +
                    ", \"hops\": " + std::to_string(r.hops_recorded) +
                    ", \"p99_response\": " + JsonNum(r.p99_response_time) +
                    ", \"share\": {";
    for (size_t s = 0; s < kNumDistSegments; ++s) {
      if (s != 0) b += ", ";
      const double share =
          r.path_total_us > 0 ? static_cast<double>(r.path_seg_us[s]) /
                                    static_cast<double>(r.path_total_us)
                              : 0.0;
      b += std::string("\"") + DistSegmentName(static_cast<DistSegment>(s)) +
           "\": " + JsonNum(share);
    }
    b += "}}";
    // One physical line: UpsertBenchRecord stores each record as a single
    // getline()-able line, so an embedded newline here would be sheared
    // off by the next bench's upsert.
    if (!bench_cells.empty()) bench_cells += ", ";
    bench_cells += b;
    paths->Clear();  // Next cell starts from an empty collector.
  };
  // Optional flight recorder: every simulation cell and the WAL crash
  // cells' engines record their commits/aborts (with timestamp vectors)
  // into the same rings. Auto-dumped on each starvation alert and at each
  // planned WAL crash point; the final dump at the end of the sweep is the
  // file tools/flight_check.py audits.
  std::unique_ptr<FlightRecorder> flight;
  uint64_t flight_dumps = 0;
  if (flight_path != nullptr) {
    FlightRecorderOptions fo;
    fo.rings = 4;  // One ring per site in the Base() topology.
    fo.capacity = 512;
    fo.k = 4;
    flight = std::make_unique<FlightRecorder>(fo);
  }

  // Optional live telemetry. The sampler is NOT started as a thread: every
  // simulation cell ticks it on SIMULATED time (DmtOptions::sampler), so
  // the exported series and any starvation alerts are deterministic for a
  // given seed - the crash cells reliably trip the watchdog as the victim
  // site's transactions rack up consecutive down-site aborts. The HTTP
  // exporter still serves live while the sweep runs.
  std::unique_ptr<Sampler> sampler;
  std::unique_ptr<HttpExporter> exporter;
  if (serve_port >= 0) {
    SamplerOptions so;
    so.registry = &GlobalMetrics();
    so.interval_ms = static_cast<uint64_t>(sample_interval * 1000.0);
    so.capacity = 4096;  // Room for every cell's windows in one sweep.
    sampler = std::make_unique<Sampler>(so);
    StarvationWatchdogOptions wo;
    wo.source_gauge = "dmt.max_consecutive_aborts";
    if (flight != nullptr) {
      // Auto-dump the rings the moment starvation is raised: the dump
      // holds the commits/aborts leading up to the alert.
      wo.on_alert = [&flight, &flight_dumps,
                     flight_path](const WatchdogAlert&) {
        if (flight->DumpToFile(flight_path)) ++flight_dumps;
      };
    }
    sampler->AddStarvationWatchdog(wo);
    HttpExporterOptions ho;
    ho.registry = &GlobalMetrics();
    ho.sampler = sampler.get();
    ho.flight = flight.get();
    ho.paths = paths.get();
    ho.port = static_cast<uint16_t>(serve_port);
    exporter = std::make_unique<HttpExporter>(ho);
    if (!exporter->Start()) {
      std::fprintf(stderr, "failed to start exporter on port %d\n",
                   serve_port);
      return 2;
    }
    std::printf(
        "live telemetry: http://127.0.0.1:%u/metrics (also /metrics.json, "
        "/series.json, /healthz)\n"
        "  sampler ticks on simulated time, every %.1f time units\n"
        "  watch with: tools/mdtop.py --port %u\n\n",
        exporter->port(), sample_interval, exporter->port());
    std::fflush(stdout);  // The URL must be visible even when piped.
  }

  if (trace_path != nullptr) {
    if (MDTS_TRACE_COMPILED) {
      // The whole sweep runs on one thread, so a single generous ring
      // keeps the tail of the simulated timeline (oldest events of a long
      // sweep are overwritten, newest survive).
      Tracer::Get().Enable(1 << 18);
      std::printf("tracing enabled; Chrome trace JSON -> %s\n", trace_path);
    } else {
      std::printf(
          "--trace requested but the build has MDTS_TRACE=OFF; no trace "
          "will be written\n");
      trace_path = nullptr;
    }
  }
  std::printf("=== DMT(k) fault sweep: loss x crash x k ===\n\n");
  std::printf(
      "Mechanisms under test: idempotent lock-request retries on a\n"
      "capped-exponential timeout, lock leases reclaiming locks from\n"
      "crashed or wedged coordinators, counter resynchronization on\n"
      "recovery, and abort-and-retry for transactions touching a down\n"
      "site. Safety bar: every committed history must be DSR.\n\n");

  TablePrinter table({"loss", "crash", "k", "committed", "commit rate",
                      "aborts", "retries", "leases", "dropped", "p99 resp",
                      "DSR audit"});
  TablePrinter reasons({"loss", "crash", "k", "abort reasons"});
  for (double loss : {0.0, 0.05, 0.2}) {
    for (int crash : {0, 1}) {
      for (size_t k : {2u, 3u}) {
        DmtOptions options = Base(11);
        if (sampler != nullptr) {
          options.sampler = sampler.get();
          options.sample_interval = sample_interval;
        }
        options.flight = flight.get();
        options.spans = spans.get();
        options.paths = paths.get();
        options.k = k;
        options.fault.drop_rate = loss;
        if (loss > 0) options.fault.jitter = 0.2;
        if (crash) {
          // One mid-run crash/recovery plus a second, later outage.
          options.fault.crashes.push_back({1, 60.0, 140.0});
          options.fault.crashes.push_back({3, 220.0, 260.0});
        }
        DmtResult r = RunDmtSimulation(options);
        capture_cell("grid", loss, crash, k, r);
        table.AddRow(
            {FormatDouble(loss, 2), crash ? "yes" : "no", std::to_string(k),
             std::to_string(r.committed),
             FormatDouble(static_cast<double>(r.committed) /
                              static_cast<double>(options.num_txns),
                          2),
             std::to_string(r.aborts), std::to_string(r.lock_retries),
             std::to_string(r.lease_reclaims),
             std::to_string(r.messages_dropped),
             FormatDouble(r.p99_response_time, 1),
             Audit(r, options.num_txns)});
        reasons.AddRow({FormatDouble(loss, 2), crash ? "yes" : "no",
                        std::to_string(k), r.abort_reasons.ToJson()});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("--- abort-reason breakdown per cell ---\n%s\n",
              reasons.ToString().c_str());

  std::printf("--- stress: heavy loss, duplication, flapping site ---\n");
  TablePrinter stress({"scenario", "committed", "gave up", "retries",
                       "timeouts", "leases", "down aborts", "DSR audit"});
  struct Scenario {
    const char* name;
    FaultPlan plan;
  };
  FaultPlan heavy_loss;
  heavy_loss.drop_rate = 0.3;
  heavy_loss.jitter = 0.5;
  FaultPlan dup_storm;
  dup_storm.duplicate_rate = 0.5;
  dup_storm.jitter = 0.5;
  FaultPlan flapping;
  flapping.drop_rate = 0.1;
  flapping.crashes = {{0, 40.0, 80.0}, {2, 100.0, 130.0}, {0, 180.0, 210.0}};
  FaultPlan dead_site;
  dead_site.crashes = {{1, 50.0}};  // Never recovers.
  for (const Scenario& s : {Scenario{"30% loss + jitter", heavy_loss},
                            Scenario{"50% duplication", dup_storm},
                            Scenario{"flapping sites", flapping},
                            Scenario{"permanent site loss", dead_site}}) {
    DmtOptions options = Base(23);
    if (sampler != nullptr) {
      options.sampler = sampler.get();
      options.sample_interval = sample_interval;
    }
    options.flight = flight.get();
    options.spans = spans.get();
    options.paths = paths.get();
    options.max_attempts = 30;
    options.counter_sync_interval = 25.0;  // Exercises recovery resync.
    options.fault = s.plan;
    DmtResult r = RunDmtSimulation(options);
    capture_cell(s.name, s.plan.drop_rate, s.plan.crashes.empty() ? 0 : 1,
                 options.k, r);
    stress.AddRow({s.name, std::to_string(r.committed),
                   std::to_string(r.gave_up),
                   std::to_string(r.lock_retries),
                   std::to_string(r.timeout_give_ups),
                   std::to_string(r.lease_reclaims),
                   std::to_string(r.down_site_aborts),
                   Audit(r, options.num_txns)});
  }
  std::printf("%s\n", stress.ToString().c_str());

  // -------------------------------------------------------------------
  // WAL process-crash recovery audit: crash point x sync policy over the
  // sharded engine with a parallel WAL attached. Each cell arms one
  // WalCrashPlan, drives a closed loop until the simulated crash fires,
  // then recovers the log and rebuilds a fresh engine. The bar: recovery
  // never fails, every recovered record rebuilds as committed, torn tails
  // only appear for the mid-record crash, and under every-commit sync all
  // acknowledged appends survive.
  // -------------------------------------------------------------------
  std::printf("--- WAL crash points: durability audit ---\n");
  TablePrinter walt({"crash point", "policy", "appends", "recovered", "torn",
                     "audit"});
  for (const WalCrashPoint point :
       {WalCrashPoint::kBeforeFsync, WalCrashPoint::kMidRecord,
        WalCrashPoint::kBetweenStreams}) {
    for (const WalSyncPolicy policy :
         {WalSyncPolicy::kGroupCommit, WalSyncPolicy::kEveryCommit}) {
      const std::string dir =
          (std::filesystem::temp_directory_path() /
           (std::string("mdts_fault_wal_") + WalCrashPointName(point) + "_" +
            WalSyncPolicyName(policy)))
              .string();
      std::filesystem::remove_all(dir);
      WalCrashPlan plan;
      plan.point = point;
      plan.at_append = 90;
      plan.torn_bytes = 11;
      WalOptions wo2;
      wo2.dir = dir;
      wo2.num_streams = 2;
      wo2.k = 4;
      wo2.sync_policy = policy;
      wo2.group_commit_ops = 8;
      wo2.crash = &plan;
      if (flight != nullptr) {
        // Dump before the WAL goes dark at the planned crash point: the
        // post-mortem shows what was in flight when durability stopped.
        wo2.on_crash = [&flight, &flight_dumps, flight_path] {
          if (flight->DumpToFile(flight_path)) ++flight_dumps;
        };
      }
      ParallelWal wal(wo2);
      EngineOptions eo;
      eo.k = 4;
      eo.num_shards = 2;
      eo.starvation_fix = true;
      eo.flight = flight.get();
      eo.wal = &wal;
      ShardedMtkEngine engine(eo);
      std::mt19937_64 rng(31 + static_cast<uint64_t>(point));
      for (TxnId txn = 1; txn <= 400 && !wal.crashed(); ++txn) {
        bool ok = true;
        for (size_t o = 0; o < 3 && ok; ++o) {
          Op op;
          op.txn = txn;
          op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
          op.item = static_cast<ItemId>(rng() % 64);
          ok = engine.Process(op) != OpDecision::kReject;
        }
        if (!ok) {
          engine.RestartTxn(txn);
          --txn;
          continue;
        }
        engine.CommitTxn(txn);
      }
      const uint64_t appends = wal.stats().appends;
      wal.Close();
      const WalRecovery rec = ParallelWal::Recover(dir);
      std::string audit = "ok";
      if (!wal.crashed() || !rec.ok) {
        audit = !wal.crashed() ? "CRASH NEVER FIRED" : "RECOVERY FAILED";
      } else if (point != WalCrashPoint::kMidRecord && rec.torn_streams > 0) {
        audit = "UNEXPECTED TORN TAIL";
      } else if (policy == WalSyncPolicy::kEveryCommit &&
                 rec.records.size() < appends) {
        audit = "ACKNOWLEDGED COMMIT LOST";
      } else {
        EngineOptions eo2 = eo;
        eo2.wal = nullptr;
        ShardedMtkEngine fresh(eo2);
        if (fresh.RecoverFrom(rec) != rec.records.size()) {
          audit = "REBUILD INCOMPLETE";
        } else {
          for (const WalCommitRecord& r : rec.records) {
            if (!fresh.IsCommitted(r.txn)) {
              audit = "REBUILD LOST TXN";
              break;
            }
          }
        }
      }
      if (audit != "ok") ++failures;
      walt.AddRow({WalCrashPointName(point), WalSyncPolicyName(policy),
                   std::to_string(appends), std::to_string(rec.records.size()),
                   std::to_string(rec.torn_streams), audit});
      std::filesystem::remove_all(dir);
    }
  }
  std::printf("%s\n", walt.ToString().c_str());

  // Every run above published its end-of-run counters into the global
  // registry (DmtOptions::metrics defaults to GlobalMetrics()), so this
  // snapshot is the cumulative tally across the whole sweep.
  const MetricsSnapshot snapshot = GlobalMetrics().Snapshot();
  std::printf("--- metrics snapshot (cumulative across the sweep) ---\n%s\n",
              snapshot.ToText().c_str());
  if (metrics_path != nullptr && snapshot.WriteJsonFile(metrics_path)) {
    std::printf("wrote metrics snapshot to %s (diff runs with "
                "tools/metrics_diff.py)\n",
                metrics_path);
  }

  if (trace_path != nullptr) {
    Tracer::Get().Disable();
    if (Tracer::Get().WriteFile(trace_path)) {
      std::printf("wrote %zu trace events to %s (open in ui.perfetto.dev)\n",
                  Tracer::Get().event_count(), trace_path);
    } else {
      ++failures;
    }
  }

  if (flight != nullptr) {
    if (flight->DumpToFile(flight_path)) ++flight_dumps;
    std::printf(
        "flight recorder: %llu commits, %llu aborts captured; %llu dump(s) "
        "-> %s (audit with tools/flight_check.py)\n\n",
        static_cast<unsigned long long>(flight->commits()),
        static_cast<unsigned long long>(flight->aborts()),
        static_cast<unsigned long long>(flight_dumps), flight_path);
  }

  if (paths != nullptr) {
    std::string dump = "{\"cells\": [\n";
    for (size_t c = 0; c < cell_dumps.size(); ++c) {
      dump += cell_dumps[c];
      dump += c + 1 < cell_dumps.size() ? ",\n" : "\n";
    }
    dump += "]}\n";
    std::ofstream out(paths_path, std::ios::trunc);
    out << dump;
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", paths_path);
      ++failures;
    } else {
      std::printf(
          "critical paths: %zu cells, %llu spans recorded (%llu hops) -> %s "
          "(audit with tools/critical_path.py)\n",
          cell_dumps.size(),
          static_cast<unsigned long long>(spans->recorded()),
          static_cast<unsigned long long>(spans->hops()), paths_path);
    }
    // Per-cell segment shares: the replication baseline ROADMAP item 4
    // will be compared against.
    BenchFields fields;
    fields.emplace_back("cells", "[" + bench_cells + "]");
    if (UpsertBenchRecord("BENCH_core.json", "fault_sweep_critical_path",
                          fields)) {
      std::printf(
          "recorded per-cell critical-path shares into BENCH_core.json\n\n");
    }
  }

  if (sampler != nullptr) {
    const std::vector<WatchdogAlert> alerts = sampler->alerts();
    std::printf(
        "--- live telemetry: %llu windows sampled, %zu starvation alerts "
        "---\n",
        static_cast<unsigned long long>(sampler->samples_taken()),
        alerts.size());
    const size_t kMaxShown = 8;  // Faulty cells alert a lot; show a sample.
    for (size_t i = 0; i < alerts.size() && i < kMaxShown; ++i) {
      std::printf("  %s\n", alerts[i].ToJson().c_str());
    }
    if (alerts.size() > kMaxShown) {
      std::printf("  ... %zu more (full list on /series.json)\n",
                  alerts.size() - kMaxShown);
    }
    std::printf("\n");
    if (hold_seconds > 0) {
      // The whole sweep finishes in well under a second of wall time (it
      // runs on simulated time), so give scrapers a window to look at the
      // final series.
      std::printf("holding the exporter open for %.0f s...\n", hold_seconds);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<int64_t>(hold_seconds * 1000.0)));
    }
    exporter->Stop();
  }

  std::printf("[%s] every cell terminated, committed work, and passed the\n"
              "     DSR audit - Theorem 2 survives the fault model\n",
              failures == 0 ? "ok" : "REPRODUCTION FAILURE");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

// Usage: fault_sweep [--trace[=PATH]] [--metrics=PATH] [--serve[=PORT]]
//                    [--sample-ms=N] [--flight[=PATH]] [--paths[=PATH]]
// --trace default PATH: fault_sweep_trace.json (Chrome trace_event JSON).
// --metrics writes the cumulative MetricsSnapshot as JSON, the input
// format of tools/metrics_diff.py.
// --flight records every cell's commits/aborts in a flight recorder,
// auto-dumped to PATH (default fault_sweep_flight.json) on each
// starvation alert and WAL crash point, plus a final dump; audit the file
// with tools/flight_check.py. Also served on /flight.json with --serve.
// --paths attaches the distributed tracer to every DMT(k) cell and writes
// each cell's critical-path dump to PATH (default fault_sweep_paths.json;
// audit with tools/critical_path.py), records per-cell segment shares
// into BENCH_core.json, and serves the live collector on /paths.json with
// --serve.
// Bare-flag dump defaults resolve NEXT TO THE BINARY (build/bench/ in the
// standard layout), not in the caller's cwd - `./build/bench/fault_sweep
// --paths` from a checkout used to drop a multi-MB artifact into the repo
// root. An explicit --flag=PATH still goes exactly where it says.
// --serve starts the live telemetry exporter (default port 9464, 0 =
// ephemeral) with a sampler ticked on SIMULATED time inside each cell;
// --sample-ms sets that interval in simulated milliseconds (1 simulated
// time unit = 1 s; default 5000, i.e. every 5 time units). The sweep
// itself finishes in a fraction of a wall-clock second, so --hold=SECS
// keeps the exporter up that long afterwards for scrapers / mdtop.
// Resolves a bare-flag dump default to sit next to the binary instead of
// the caller's cwd. Falls back to the bare name (cwd) when the executable
// path cannot be resolved.
static std::string SelfDirDefault(const char* name) {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec || !self.has_parent_path()) return name;
  return (self.parent_path() / name).string();
}

int main(int argc, char** argv) {
  std::string trace_store, flight_store, paths_store;  // Bare-flag defaults.
  const char* trace_path = nullptr;
  const char* metrics_path = nullptr;
  const char* flight_path = nullptr;
  const char* paths_path = nullptr;
  int serve_port = -1;            // < 0 means no exporter.
  double sample_interval = 5.0;   // Simulated time units between samples.
  double hold_seconds = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_store = SelfDirDefault("fault_sweep_trace.json");
      trace_path = trace_store.c_str();
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve_port = 9464;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve_port = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--sample-ms=", 12) == 0) {
      sample_interval = std::strtod(argv[i] + 12, nullptr) / 1000.0;
      if (sample_interval <= 0) sample_interval = 5.0;
    } else if (std::strncmp(argv[i], "--hold=", 7) == 0) {
      hold_seconds = std::strtod(argv[i] + 7, nullptr);
    } else if (std::strcmp(argv[i], "--flight") == 0) {
      flight_store = SelfDirDefault("fault_sweep_flight.json");
      flight_path = flight_store.c_str();
    } else if (std::strncmp(argv[i], "--flight=", 9) == 0) {
      flight_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--paths") == 0) {
      paths_store = SelfDirDefault("fault_sweep_paths.json");
      paths_path = paths_store.c_str();
    } else if (std::strncmp(argv[i], "--paths=", 8) == 0) {
      paths_path = argv[i] + 8;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  return mdts::Run(trace_path, metrics_path, serve_port, sample_interval,
                   hold_seconds, flight_path, paths_path);
}
