// Ablations of the protocol variations Algorithm 1 parameterizes:
//   * the Thomas write rule (Section III-D-6c),
//   * the relaxed read path Set(WT(x), i) (noted after Theorem 3),
//   * crossing out lines 9-10 entirely (the Theorem-5 mode),
// measured as whole-log acceptance rates and per-decision effects on the
// same random workloads.

#include <cstdio>

#include "common/table_printer.h"
#include "core/recognizer.h"
#include "workload/generator.h"

namespace mdts {
namespace {

struct Acceptance {
  int base = 0;
  int thomas = 0;
  int relaxed = 0;
  int no_line9 = 0;
  int total = 0;
};

Acceptance Sweep(uint32_t items, double read_fraction, int rounds) {
  Acceptance a;
  for (int i = 0; i < rounds; ++i) {
    WorkloadOptions w;
    w.num_txns = 6;
    w.num_items = items;
    w.min_ops = 2;
    w.max_ops = 3;
    w.read_fraction = read_fraction;
    w.seed = 7000 + static_cast<uint64_t>(i) * 11 + items;
    Log log = GenerateLog(w);
    ++a.total;

    MtkOptions base;
    base.k = 3;
    if (RecognizeLog(log, base).accepted) ++a.base;

    MtkOptions thomas = base;
    thomas.thomas_write_rule = true;
    if (RecognizeLog(log, thomas).accepted) ++a.thomas;

    MtkOptions relaxed = base;
    relaxed.relaxed_read_path = true;
    if (RecognizeLog(log, relaxed).accepted) ++a.relaxed;

    MtkOptions strict = base;
    strict.disable_old_read_path = true;
    if (RecognizeLog(log, strict).accepted) ++a.no_line9;
  }
  return a;
}

int failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "REPRODUCTION FAILURE", what);
  if (!ok) ++failures;
}

int Run() {
  std::printf("=== Algorithm 1 variant ablations ===\n\n");
  const int rounds = 1200;

  TablePrinter table({"items", "reads", "MT(3)", "+thomas", "+relaxed line 9",
                      "lines 9-10 removed", "logs"});
  Acceptance all[6];
  int idx = 0;
  for (uint32_t items : {4u, 8u, 16u}) {
    for (double rf : {0.3, 0.7}) {
      Acceptance a = Sweep(items, rf, rounds);
      all[idx++] = a;
      table.AddRow({std::to_string(items), FormatDouble(rf, 1),
                    std::to_string(a.base), std::to_string(a.thomas),
                    std::to_string(a.relaxed), std::to_string(a.no_line9),
                    std::to_string(a.total)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  bool thomas_ge = true, relaxed_ge = true, strict_le = true;
  for (const Acceptance& a : all) {
    if (a.thomas < a.base) thomas_ge = false;
    if (a.relaxed < a.base) relaxed_ge = false;
    if (a.no_line9 > a.base) strict_le = false;
  }
  Check(thomas_ge,
        "the Thomas write rule never hurts acceptance (ignored writes "
        "instead of aborts)");
  Check(relaxed_ge,
        "the relaxed read path accepts a superset (Set encodes what the "
        "strict test only checks)");
  Check(strict_le,
        "removing lines 9-10 accepts a subset (old reads lose their "
        "escape hatch)");

  std::printf("\nStructural observation visible in the table: with lines\n"
              "9-10 removed, reads and writes are scheduled identically\n"
              "(both just Set against the latest accessor), so acceptance\n"
              "depends only on the access pattern - the counts for 30%% and\n"
              "70%% reads coincide on equal seeds. Line 9 is exactly what\n"
              "makes MT(k) read/write-aware.\n");
  std::printf("\nNote (after Theorem 3): with the relaxed read path the\n"
              "2q-1 saturation bound is no longer guaranteed, since the\n"
              "extra Set calls break Observations ii-iv. The theorems_test\n"
              "suite checks saturation only for the strict protocol.\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
