// Section VI-A experiment: MT(k)'s timestamp vectors against Bayer-style
// dynamic timestamp intervals on identical workloads. The paper's
// qualitative arguments become measurements:
//  1) vectors "shrink from both ends" and stay balanced; intervals shrink
//     one-endedly and fragment (exponentially shrinking overlaps),
//  2) more dimensions -> more concurrency, in a controllable way,
//  3) restarting with a fixed full interval recreates the starvation case.

#include <cstdio>
#include <memory>

#include "common/table_printer.h"
#include "sched/interval_scheduler.h"
#include "sched/mtk_online.h"
#include "sim/simulator.h"

namespace mdts {
namespace {

SimOptions Workload(uint64_t seed, uint32_t items, double read_fraction) {
  SimOptions options;
  options.num_txns = 200;
  options.concurrency = 10;
  options.seed = seed;
  options.workload.num_items = items;
  options.workload.min_ops = 2;
  options.workload.max_ops = 4;
  options.workload.read_fraction = read_fraction;
  return options;
}

int Run() {
  std::printf("=== MT(k) vs dynamic timestamp intervals (Bayer [1]) ===\n\n");

  TablePrinter table({"items", "reads", "scheduler", "committed", "aborts",
                      "gave up", "throughput", "avg response"});
  for (uint32_t items : {6u, 12u, 24u}) {
    for (double rf : {0.5, 0.8}) {
      for (int which = 0; which < 3; ++which) {
        std::unique_ptr<Scheduler> s;
        if (which == 0) {
          MtkOptions o;
          o.k = 3;
          o.starvation_fix = true;
          s = std::make_unique<MtkOnline>(o);
        } else if (which == 1) {
          MtkOptions o;
          o.k = 7;
          o.starvation_fix = true;
          s = std::make_unique<MtkOnline>(o);
        } else {
          s = std::make_unique<IntervalScheduler>();
        }
        SimResult r = RunSimulation(s.get(), Workload(77, items, rf));
        table.AddRow({std::to_string(items), FormatDouble(rf, 1), s->name(),
                      std::to_string(r.committed), std::to_string(r.aborts),
                      std::to_string(r.gave_up),
                      FormatDouble(r.throughput, 3),
                      FormatDouble(r.avg_response_time, 2)});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  // Fragmentation microbenchmark: a long-running transaction whose
  // interval is bounded on both sides (someone already depends on it) is
  // squeezed by a chain of new dependencies; midpoint splitting halves the
  // remaining overlap each time.
  std::printf("--- interval fragmentation (paper's point 3) ---\n");
  IntervalScheduler::Options io;
  io.min_split_width = 1e-6;
  IntervalScheduler interval(io);
  // Bound T1 from above: T1 writes an item that T99 then reads.
  interval.OnOperation(Op{1, OpType::kWrite, 300});
  interval.OnOperation(Op{99, OpType::kRead, 300});
  int splits_until_abort = 0;
  TxnId other = 200;  // Disjoint from the bounding reader T99.
  for (ItemId item = 0; item < 200; ++item) {
    if (interval.OnOperation(Op{other, OpType::kWrite, item}) !=
        SchedOutcome::kAccepted) {
      break;
    }
    if (interval.OnOperation(Op{1, OpType::kRead, item}) !=
        SchedOutcome::kAccepted) {
      break;
    }
    ++splits_until_abort;
    ++other;
  }
  std::printf("midpoint splitting survived %d dependencies before the\n"
              "overlap fragmented below 1e-6 (width halves every split);\n"
              "an MT(k) vector encodes the same chain without ever running\n"
              "out of range:\n",
              splits_until_abort);
  MtkOptions mo;
  mo.k = 3;
  MtkOnline mtk(mo);
  mtk.OnOperation(Op{1, OpType::kWrite, 300});
  mtk.OnOperation(Op{99, OpType::kRead, 300});
  int mtk_chain = 0;
  other = 200;
  for (ItemId item = 0; item < 200; ++item) {
    if (mtk.OnOperation(Op{other, OpType::kWrite, item}) !=
        SchedOutcome::kAccepted) {
      break;
    }
    if (mtk.OnOperation(Op{1, OpType::kRead, item}) !=
        SchedOutcome::kAccepted) {
      break;
    }
    ++mtk_chain;
    ++other;
  }
  std::printf("  interval scheduler: %d, MT(3): %d (all %d offered)\n\n",
              splits_until_abort, mtk_chain, 200);

  std::printf(
      "Interpretation (Section VI-A, honest reading): given the same\n"
      "dependency-discovery mechanism (which the paper notes [1] did not\n"
      "specify) and an unbounded timestamp domain, intervals with\n"
      "real-valued split points behave like vectors with very many\n"
      "dimensions and are competitive in the closed-loop simulation. The\n"
      "paper's structural criticisms remain measurable: (a) a transaction\n"
      "bounded on both sides fragments after ~log2(range/min-width)\n"
      "dependencies while MT(k) encodes the same chain with O(1) integer\n"
      "elements, and (b) the interval representation needs real/word-pair\n"
      "precision per transaction where MT(k) uses k small integers with\n"
      "an explicit, provable saturation point (Theorem 3).\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
