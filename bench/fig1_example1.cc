// Regenerates paper Fig. 1 (Section I-A, Example 1): the motivating
// comparison between conventional one-dimensional timestamp ordering and
// the two-dimensional protocol MT(2) on
//     L = W1[x] W1[y] R3[x] R2[y] ... W3[y].
//
// Output: the dependency digraph at both log stages, the timestamp vectors
// MT(2) assigns (Fig. 1b/1c), and the decisions of TO(1) vs MT(2).

#include <cstdio>

#include "classify/dependency_graph.h"
#include "common/table_printer.h"
#include "core/log.h"
#include "core/mtk_scheduler.h"
#include "core/recognizer.h"
#include "sched/to1_scheduler.h"

namespace mdts {
namespace {

void PrintVectors(MtkScheduler* s, const char* caption) {
  std::printf("%s\n", caption);
  TablePrinter table({"txn", "TS"});
  for (TxnId t = 1; t <= 3; ++t) {
    table.AddRow({"T" + std::to_string(t), s->Ts(t).ToString()});
  }
  std::printf("%s\n", table.ToString().c_str());
}

int Run() {
  std::printf("=== Fig. 1 / Example 1: why multidimensional timestamps ===\n\n");

  const Log stage1 = *Log::Parse("W1[x] W1[y] R3[x] R2[y]");
  const Log full = *Log::Parse("W1[x] W1[y] R3[x] R2[y] W3[y]");

  std::printf("Log prefix: %s\n", stage1.ToString().c_str());
  std::printf("\nFig. 1(a): dependency digraph of the prefix\n%s\n",
              DependencyGraph::FromLog(stage1).ToDot("fig1a").c_str());

  MtkOptions options;
  options.k = 2;
  MtkScheduler mt2(options);
  for (const Op& op : stage1.ops()) mt2.Process(op);
  PrintVectors(&mt2, "Fig. 1(b): MT(2) vectors after the prefix\n"
                     "(T2 and T3 share <2,*>: their order stays open)");

  std::printf("Full log:  %s\n", full.ToString().c_str());
  std::printf("\nFig. 1(c): after W3[y], R2[y] conflicts with W3[y], so the\n"
              "2nd dimension encodes T2 -> T3:\n");
  mt2.Process(full.at(4));
  PrintVectors(&mt2, "");
  auto order = mt2.SerializationOrder({1, 2, 3});
  std::printf("Serializability order: T%u T%u T%u (no abort needed)\n\n",
              order[0], order[1], order[2]);

  std::printf("Conventional TO(1) on the same log:\n");
  To1Scheduler to1;
  for (size_t i = 0; i < full.size(); ++i) {
    auto outcome = to1.OnOperation(full.at(i));
    std::printf("  %-6s -> %s\n", OpName(full.at(i)).c_str(),
                SchedOutcomeName(outcome));
  }
  std::printf("\nClass membership: log in TO(1)? %s    log in TO(2)? %s\n",
              IsToK(full, 1) ? "yes" : "no", IsToK(full, 2) ? "yes" : "no");
  std::printf("\nPaper's claim reproduced: the scalar timestamp prematurely\n"
              "ordered T3 before T2 and must abort T3; MT(2) accepts the "
              "whole log.\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
