// Cross-protocol throughput experiment: closed-loop simulation of every
// scheduler family in the repository over the same workloads, sweeping
// contention and transaction length. This is the end-to-end comparison the
// paper motivates: higher degree of concurrency (fewer forced orders)
// should translate into fewer aborts under contention.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_json.h"
#include "common/table_printer.h"
#include "composite/mtk_plus_online.h"
#include "mvcc/mv_online.h"
#include "sched/deferred_write.h"
#include "sched/interval_scheduler.h"
#include "sched/mtk_online.h"
#include "sched/occ_scheduler.h"
#include "sched/to1_scheduler.h"
#include "sched/two_pl_scheduler.h"
#include "sim/simulator.h"

namespace mdts {
namespace {

std::unique_ptr<Scheduler> Make(int which) {
  MtkOptions o;
  o.starvation_fix = true;
  switch (which) {
    case 0:
      o.k = 1;
      return std::make_unique<MtkOnline>(o);
    case 1:
      o.k = 3;
      return std::make_unique<MtkOnline>(o);
    case 2:
      o.k = 7;
      return std::make_unique<MtkOnline>(o);
    case 3:
      return std::make_unique<To1Scheduler>();
    case 4:
      return std::make_unique<TwoPlScheduler>();
    case 5:
      return std::make_unique<OccScheduler>();
    case 6:
      return std::make_unique<IntervalScheduler>();
    case 7: {
      MtkOptions d;
      d.k = 3;
      d.starvation_fix = true;
      return std::make_unique<MtkDeferredWrite>(d);
    }
    case 8: {
      MvMtkOptions m;
      m.k = 3;
      m.starvation_fix = true;
      return std::make_unique<MvOnline>(m);
    }
    case 9:
      return std::make_unique<MtkPlusOnline>(3);
  }
  return nullptr;
}

int Run(const char* out_path) {
  std::printf("=== Throughput comparison across protocols ===\n\n");

  // One machine-readable record per contention level lands next to
  // mt_throughput's records so cross-protocol and intra-protocol numbers
  // share one results file.
  for (uint32_t items : {6u, 15u, 40u}) {
    std::printf("--- %u items, 200 txns, MPL 10, 2-4 ops/txn, 60%% reads ---\n",
                items);
    TablePrinter table({"scheduler", "committed", "aborts", "blocks",
                        "gave up", "throughput", "avg response"});
    BenchFields fields;
    for (int which = 0; which < 10; ++which) {
      auto s = Make(which);
      SimOptions options;
      options.num_txns = 200;
      options.concurrency = 10;
      options.seed = 1234;
      options.workload.num_items = items;
      options.workload.min_ops = 2;
      options.workload.max_ops = 4;
      options.workload.read_fraction = 0.6;
      SimResult r = RunSimulation(s.get(), options);
      table.AddRow({s->name(), std::to_string(r.committed),
                    std::to_string(r.aborts), std::to_string(r.block_events),
                    std::to_string(r.gave_up), FormatDouble(r.throughput, 3),
                    FormatDouble(r.avg_response_time, 2)});
      fields.emplace_back(s->name(),
                          "{\"throughput\": " + JsonNum(r.throughput) +
                              ", \"aborts\": " + JsonNum(r.aborts) + "}");
    }
    std::printf("%s\n", table.ToString().c_str());
    UpsertBenchRecord(out_path,
                      "cross_protocol_items" + std::to_string(items), fields);
  }

  std::printf("--- long transactions (5-8 ops), 8 items ---\n");
  TablePrinter table({"scheduler", "committed", "aborts", "blocks",
                      "gave up", "throughput"});
  for (int which : {1, 3, 4, 5}) {
    auto s = Make(which);
    SimOptions options;
    options.num_txns = 120;
    options.concurrency = 8;
    options.seed = 77;
    options.workload.num_items = 8;
    options.workload.min_ops = 5;
    options.workload.max_ops = 8;
    options.workload.read_fraction = 0.6;
    SimResult r = RunSimulation(s.get(), options);
    table.AddRow({s->name(), std::to_string(r.committed),
                  std::to_string(r.aborts), std::to_string(r.block_events),
                  std::to_string(r.gave_up), FormatDouble(r.throughput, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: under contention MT(k) with k >= 3 aborts less than\n"
      "single-value TO (its dynamic partial order defers decisions); 2PL\n"
      "trades aborts for blocking; with long transactions the paper's\n"
      "VI-B-c guideline favors larger vectors over lock-based schemes.\n");
  return 0;
}

}  // namespace
}  // namespace mdts

int main(int argc, char** argv) {
  return mdts::Run(argc > 1 ? argv[1] : "BENCH_core.json");
}
