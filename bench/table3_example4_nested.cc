// Regenerates paper Table III and Figs. 11-12 (Section V-A, Example 4):
// the nested/grouped protocol MT(2,2) with G1 = {T1, T2}, G2 = {T3} on the
// log R1[x] R2[y] W2[x] W3[y]. Each edge's vector updates are checked
// against the paper row by row, then the antisymmetry consequence (a later
// T3 -> T2 dependency is disallowed) is demonstrated.

#include <cstdio>
#include <string>

#include "common/table_printer.h"
#include "core/log.h"
#include "nested/nested_scheduler.h"

namespace mdts {
namespace {

int failures = 0;

void Expect(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "REPRODUCTION FAILURE", what);
  if (!ok) ++failures;
}

int Run() {
  std::printf("=== Table III / Figs. 11-12: MT(k1,k2), Example 4 ===\n\n");
  std::printf("Groups: G1 = {T1, T2}, G2 = {T3}, k1 = k2 = 2\n");
  std::printf("Log: R1[x] R2[y] W2[x] W3[y]\n\n");

  NestedMtScheduler s({2, 2});
  (void)s.RegisterTxn(1, {1});
  (void)s.RegisterTxn(2, {1});
  (void)s.RegisterTxn(3, {2});

  TablePrinter table({"edge", "GS(0)", "TS(0)", "GS(1)", "TS(1)", "TS(2)",
                      "GS(2)", "TS(3)"});
  auto row = [&](const std::string& label) {
    table.AddRow({label, s.GroupTs(1, 0).ToString(), s.TxnTs(0).ToString(),
                  s.GroupTs(1, 1).ToString(), s.TxnTs(1).ToString(),
                  s.TxnTs(2).ToString(), s.GroupTs(1, 2).ToString(),
                  s.TxnTs(3).ToString()});
  };
  row("initialization");
  s.Process(Op{1, OpType::kRead, 0});
  row("a : G0 -> G1");
  s.Process(Op{2, OpType::kRead, 1});
  row("b : G0 -> G1 (implied)");
  s.Process(Op{2, OpType::kWrite, 0});
  row("c : T1 -> T2");
  s.Process(Op{3, OpType::kWrite, 1});
  row("d : G1 -> G2");
  std::printf("%s\n", table.ToString().c_str());

  Expect(s.GroupTs(1, 1).ToString() == "<1,*>" &&
             s.TxnTs(1).ToString() == "<1,*>" &&
             s.TxnTs(2).ToString() == "<2,*>" &&
             s.GroupTs(1, 2).ToString() == "<2,*>" &&
             s.TxnTs(3).ToString() == "<*,*>",
         "resulting vectors match Table III");

  std::printf("\nFig. 11 representation (both tables):\n%s\n",
              s.DumpTables(3).c_str());

  // "If in the future a new dependency T3 -> T2 is created due to some
  // conflict, it is disallowed since it also implies G2 -> G1."
  std::printf("Antisymmetry demonstration:\n");
  const OpDecision w3z = s.Process(Op{3, OpType::kWrite, 2});
  const OpDecision r2z = s.Process(Op{2, OpType::kRead, 2});
  std::printf("  W3[z] -> %s, then R2[z] -> %s\n", OpDecisionName(w3z),
              OpDecisionName(r2z));
  Expect(w3z == OpDecision::kAccept && r2z == OpDecision::kReject,
         "the T3 -> T2 dependency (implying G2 -> G1) is rejected");

  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
