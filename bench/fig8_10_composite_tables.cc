// Regenerates paper Figs. 8-10 (Section IV): the shared-prefix timestamp
// tables of the composite protocol MT(k+). Fig. 8 shows the two
// independent tables of MT(k1) and MT(k2); Theorem 5 proves their prefixes
// stay equal, so Figs. 9-10 merge them into one PREFIX table plus
// per-subprotocol LASTCOL columns. We run a workload through both
// representations, dump the tables, and verify the prefix equality and the
// decision-for-decision equivalence.

#include <cstdio>

#include "common/table_printer.h"
#include "composite/mtk_plus.h"
#include "composite/naive_union.h"
#include "core/log.h"
#include "workload/generator.h"

namespace mdts {
namespace {

int failures = 0;

void Expect(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "REPRODUCTION FAILURE", what);
  if (!ok) ++failures;
}

int Run() {
  std::printf("=== Figs. 8-10: MT(k+) shared-prefix tables ===\n\n");
  const Log log =
      *Log::Parse("R1[x] R2[y] W1[y] R3[z] W3[x] R4[w] W2[w] W4[z] R5[w]");
  std::printf("Workload: %s\n\n", log.ToString().c_str());

  // Fig. 8: independent MT(2) and MT(4) (lines 9-10 crossed out, the
  // Theorem-5 mode).
  const size_t k1 = 2, k2 = 4;
  MtkOptions o1, o2;
  o1.k = k1;
  o2.k = k2;
  o1.disable_old_read_path = o2.disable_old_read_path = true;
  MtkScheduler s1(o1), s2(o2);
  for (const Op& op : log.ops()) {
    s1.Process(op);
    s2.Process(op);
  }
  std::printf("Fig. 8(a): timestamp table of MT(%zu)\n%s\n", k1,
              s1.DumpTable(5).c_str());
  std::printf("Fig. 8(b): timestamp table of MT(%zu)\n%s\n", k2,
              s2.DumpTable(5).c_str());

  bool prefix_equal = true;
  for (TxnId t = 0; t <= 5; ++t) {
    for (size_t c = 0; c + 1 < k1; ++c) {
      if (s1.Ts(t).Get(c) != s2.Ts(t).Get(c)) prefix_equal = false;
    }
  }
  Expect(prefix_equal,
         "Theorem 5: the k1-1 prefix columns of MT(k1) and MT(k2) agree");

  // Figs. 9-10: the merged representation.
  std::printf("\nFig. 10: PREFIX and LASTCOL tables of MT(4+)\n");
  MtkPlus plus(k2);
  NaiveUnionRecognizer naive(k2, /*with_old_read_path=*/false);
  bool decisions_equal = true;
  for (const Op& op : log.ops()) {
    const OpDecision dp = plus.Process(op);
    const OpDecision dn = naive.Process(op);
    if (dp != dn) decisions_equal = false;
  }
  std::printf("%s\n", plus.DumpTables(5).c_str());
  Expect(decisions_equal,
         "shared-prefix MT(k+) decisions identical to running MT(1..k) "
         "independently");

  bool views_match = true;
  for (size_t h = 1; h <= k2; ++h) {
    if (!plus.IsLive(h) || !naive.IsLive(h)) continue;
    for (TxnId t = 0; t <= 5; ++t) {
      TimestampVector view = plus.ViewOf(h, t);
      if (!(view == naive.Sub(h).Ts(t))) views_match = false;
    }
  }
  Expect(views_match,
         "every live subprotocol's reconstructed view equals the "
         "independently maintained MT(h) table");

  std::printf("\nCost (Section IV): the composite walked %llu columns over "
              "%llu operations (O(k) per op, not O(k^2)).\n",
              static_cast<unsigned long long>(plus.stats().columns_touched),
              static_cast<unsigned long long>(plus.stats().accepted +
                                              plus.stats().rejected));
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace mdts

int main() { return mdts::Run(); }
