#include "parallel/parallel_compare.h"

#include "common/rng.h"
#include "gtest/gtest.h"

namespace mdts {
namespace {

TimestampVector Make(std::vector<TsElement> elems) {
  TimestampVector v(elems.size());
  for (size_t i = 0; i < elems.size(); ++i) {
    if (elems[i] != kUndefinedElement) v.Set(i, elems[i]);
  }
  return v;
}

constexpr TsElement U = kUndefinedElement;

TEST(ParallelCompareTest, Figure6Walkthrough) {
  // The paper's Fig. 6 input: TS(1) = <1,3,2,2>, TS(2) = <1,3,5,2>.
  std::vector<std::string> trace;
  auto r = ParallelCompareTraced(Make({1, 3, 2, 2}), Make({1, 3, 5, 2}),
                                 &trace);
  EXPECT_EQ(r.order, VectorOrder::kLess);
  EXPECT_EQ(r.index, 2u) << "3rd element (1-based) decides";
  // k = 4: two partial-OR rounds, 4 + 2 phases total.
  EXPECT_EQ(r.phases, 6u);
  EXPECT_EQ(r.processors, 16u);

  // Phase 2's row c must be 0 0 1 0, and the final partial OR 0 0 1 1,
  // exactly as in the figure.
  bool saw_c = false, saw_d = false;
  for (const std::string& line : trace) {
    if (line == "c: 0 0 1 0") saw_c = true;
    if (line == "d: 0 0 1 1") saw_d = true;
  }
  EXPECT_TRUE(saw_c) << "phase-2 row mismatch";
  EXPECT_TRUE(saw_d) << "final partial-OR row mismatch";
}

TEST(ParallelCompareTest, PartialOrRoundsIsCeilLog2) {
  EXPECT_EQ(PartialOrRounds(1), 0u);
  EXPECT_EQ(PartialOrRounds(2), 1u);
  EXPECT_EQ(PartialOrRounds(3), 2u);
  EXPECT_EQ(PartialOrRounds(4), 2u);
  EXPECT_EQ(PartialOrRounds(5), 3u);
  EXPECT_EQ(PartialOrRounds(8), 3u);
  EXPECT_EQ(PartialOrRounds(9), 4u);
  EXPECT_EQ(PartialOrRounds(1024), 10u);
}

TEST(ParallelCompareTest, HandlesUndefinedElements) {
  // Extension beyond the paper's figure: undefined elements are "unequal"
  // and classified per Definition 6.
  auto r = ParallelCompare(Make({1, U}), Make({1, 4}));
  EXPECT_EQ(r.order, VectorOrder::kUndetermined);
  EXPECT_EQ(r.index, 1u);

  r = ParallelCompare(Make({2, U}), Make({2, U}));
  EXPECT_EQ(r.order, VectorOrder::kEqual);
  EXPECT_EQ(r.index, 1u);
}

TEST(ParallelCompareTest, IdenticalVectors) {
  auto r = ParallelCompare(Make({3, 7}), Make({3, 7}));
  EXPECT_EQ(r.order, VectorOrder::kIdentical);
  EXPECT_EQ(r.index, 2u);
}

TEST(ParallelCompareTest, SingleElementVectors) {
  auto r = ParallelCompare(Make({1}), Make({2}));
  EXPECT_EQ(r.order, VectorOrder::kLess);
  EXPECT_EQ(r.phases, 4u);  // No partial-OR rounds needed for k = 1.
}

// Theorem 4's heart: the parallel result must always equal the sequential
// Definition-6 comparison, at O(log k) depth.
class ParallelEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelEquivalence, MatchesSequentialCompareOnRandomVectors) {
  const size_t k = GetParam();
  Rng rng(k * 977 + 5);
  for (int trial = 0; trial < 500; ++trial) {
    TimestampVector a(k), b(k);
    // Random defined prefixes with small values force frequent ties.
    const size_t pa = static_cast<size_t>(rng.Uniform(0, k));
    const size_t pb = static_cast<size_t>(rng.Uniform(0, k));
    for (size_t i = 0; i < pa; ++i) a.Set(i, rng.Uniform(-2, 3));
    for (size_t i = 0; i < pb; ++i) b.Set(i, rng.Uniform(-2, 3));

    const VectorCompareResult seq = Compare(a, b);
    const ParallelCompareResult par = ParallelCompare(a, b);
    ASSERT_EQ(par.order, seq.order)
        << a.ToString() << " vs " << b.ToString();
    ASSERT_EQ(par.index, seq.index)
        << a.ToString() << " vs " << b.ToString();
    EXPECT_EQ(par.phases, 4 + PartialOrRounds(k));
  }
}

INSTANTIATE_TEST_SUITE_P(VectorSizes, ParallelEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 16u, 33u,
                                           128u));

TEST(ParallelCompareTest, DepthGrowsLogarithmically) {
  // 4096-element vectors compare in 4 + 12 phases: Theorem 4's point that
  // the parallel cost is O(log k), not O(k).
  TimestampVector a(4096), b(4096);
  for (size_t i = 0; i < 4096; ++i) {
    a.Set(i, 1);
    b.Set(i, 1);
  }
  b.Set(4095, 2);
  auto r = ParallelCompare(a, b);
  EXPECT_EQ(r.order, VectorOrder::kLess);
  EXPECT_EQ(r.index, 4095u);
  EXPECT_EQ(r.phases, 16u);
}

}  // namespace
}  // namespace mdts
