#include "core/mtk_scheduler.h"

#include <memory>
#include <string>
#include <vector>

#include "core/log.h"
#include "core/recognizer.h"
#include "gtest/gtest.h"

namespace mdts {
namespace {

// Feeds every op of the log; returns the decisions.
std::vector<OpDecision> RunOps(MtkScheduler* s, const Log& log) {
  std::vector<OpDecision> out;
  for (const Op& op : log.ops()) out.push_back(s->Process(op));
  return out;
}

void ExpectAllAccepted(const std::vector<OpDecision>& ds) {
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds[i], OpDecision::kAccept) << "op index " << i;
  }
}

// --- Paper Section I-A, Example 1 ---

TEST(MtkSchedulerTest, Example1StageOneVectors) {
  // L = W1[x] W1[y] R3[x] R2[y]: T2 and T3 must share the vector <2,*>,
  // leaving their order undecided (Fig. 1b).
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] W1[y] R3[x] R2[y]")));
  EXPECT_EQ(s.Ts(1).ToString(), "<1,*>");
  EXPECT_EQ(s.Ts(2).ToString(), "<2,*>");
  EXPECT_EQ(s.Ts(3).ToString(), "<2,*>");
  EXPECT_EQ(Compare(s.Ts(2), s.Ts(3)).order, VectorOrder::kEqual);
}

TEST(MtkSchedulerTest, Example1StageTwoEncodesT2BeforeT3) {
  // Continuing with W3[y]: R2[y] precedes and conflicts with W3[y], so
  // T2 -> T3 is encoded in the second dimension (Fig. 1c) and nothing
  // aborts. Resulting vectors: T2 <2,1>, T3 <2,2>.
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] W1[y] R3[x] R2[y] W3[y]")));
  EXPECT_EQ(s.Ts(1).ToString(), "<1,*>");
  EXPECT_EQ(s.Ts(2).ToString(), "<2,1>");
  EXPECT_EQ(s.Ts(3).ToString(), "<2,2>");
  EXPECT_EQ(s.SerializationOrder({1, 2, 3}), (std::vector<TxnId>{1, 2, 3}));
}

TEST(MtkSchedulerTest, Example1LogRejectedByOneDimensionalProtocol) {
  // The same log is NOT in TO(1): a scalar timestamp forces T3 -> T2 at
  // R3[x]/R2[y] time and must abort T3 at W3[y]. This is the paper's
  // motivating separation between MT(1) and MT(2).
  Log log = *Log::Parse("W1[x] W1[y] R3[x] R2[y] W3[y]");
  EXPECT_FALSE(IsToK(log, 1));
  EXPECT_TRUE(IsToK(log, 2));
}

// --- Paper Section III-A, Example 2 (Fig. 3 + Table I) ---

TEST(MtkSchedulerTest, Example2ReproducesTableI) {
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);

  // Initialization row of Table I.
  EXPECT_EQ(s.Ts(0).ToString(), "<0,*>");
  EXPECT_EQ(s.Ts(1).ToString(), "<*,*>");

  // Edge a: T0 -> T1 via R1[x].
  EXPECT_EQ(s.Process(*Log::Parse("R1[x]")->ops().begin()), OpDecision::kAccept);
  EXPECT_EQ(s.Ts(1).ToString(), "<1,*>");

  // Edge b: T0 -> T2 via R2[y].
  EXPECT_EQ(s.Process(Op{2, OpType::kRead, 1}), OpDecision::kAccept);
  EXPECT_EQ(s.Ts(2).ToString(), "<1,*>");

  // Edge c: T0 -> T3 via R3[z].
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 2}), OpDecision::kAccept);
  EXPECT_EQ(s.Ts(3).ToString(), "<1,*>");

  // Edge d: T2 -> T1 via W1[y] (conflicts with R2[y]).
  EXPECT_EQ(s.Process(Op{1, OpType::kWrite, 1}), OpDecision::kAccept);
  EXPECT_EQ(s.Ts(1).ToString(), "<1,2>");
  EXPECT_EQ(s.Ts(2).ToString(), "<1,1>");

  // Edge e: T3 -> T1 via W1[z] (conflicts with R3[z]); TS(3)'s 2nd element
  // becomes 0 (not 1) to stay distinguishable from TS(2).
  EXPECT_EQ(s.Process(Op{1, OpType::kWrite, 2}), OpDecision::kAccept);
  EXPECT_EQ(s.Ts(3).ToString(), "<1,0>");

  // Resulting-vectors row of Table I.
  EXPECT_EQ(s.Ts(0).ToString(), "<0,*>");
  EXPECT_EQ(s.Ts(1).ToString(), "<1,2>");
  EXPECT_EQ(s.Ts(2).ToString(), "<1,1>");
  EXPECT_EQ(s.Ts(3).ToString(), "<1,0>");

  // "The log L is equivalent to the serial log T3T2T1 or T2T3T1".
  EXPECT_EQ(s.SerializationOrder({1, 2, 3}), (std::vector<TxnId>{3, 2, 1}));
}

// --- Paper Section III-D-5, Example 3 (Table II) ---

// Prefix that manufactures TS(4) = <1,4> exactly as Table II requires while
// leaving item x untouched: two undefined-pair encodings consume the ucount
// values (1,2) and (3,4).
constexpr char kTable2Prefix[] = "R6[4] R7[5] W7[4] R4[6] R8[7] W4[7]";

TEST(MtkSchedulerTest, Example3ReproducesTableII) {
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse(kTable2Prefix)));
  ASSERT_EQ(s.Ts(4).ToString(), "<1,4>");  // Table II precondition.

  // Middle of the log: R1[x] W2[x] W3[x] on the frequently accessed item x.
  ExpectAllAccepted(RunOps(&s, *Log::Parse("R1[x] W2[x] W3[x]")));

  // Resulting-vectors row of Table II.
  EXPECT_EQ(s.Ts(0).ToString(), "<0,*>");
  EXPECT_EQ(s.Ts(1).ToString(), "<1,*>");
  EXPECT_EQ(s.Ts(2).ToString(), "<2,*>");
  EXPECT_EQ(s.Ts(3).ToString(), "<3,*>");
  EXPECT_EQ(s.Ts(4).ToString(), "<1,4>");

  // The paper's observation: the hot item created a total order; in
  // particular T4 is now ordered before T2 and T3 although they never
  // conflicted.
  EXPECT_TRUE(VectorLess(s.Ts(4), s.Ts(2)));
  EXPECT_TRUE(VectorLess(s.Ts(4), s.Ts(3)));
}

TEST(MtkSchedulerTest, OptimizedEncodingCopiesPrefixOfDefinedVector) {
  // Section III-D-5 worked variant: TS(1) = <1,3,*,*>, TS(2) fully
  // undefined; encoding T1 -> T2 through a hot item must produce
  // TS(1) = <1,3,1,*> and TS(2) = <1,3,2,*>.
  MtkOptions options;
  options.k = 4;
  options.optimized_encoding = true;
  options.hot_item_threshold = 3;  // Setup items stay cold (<= 2 accesses).
  MtkScheduler s(options);

  // Build TS(1) = <1,3,*,*> with cold items: T6/T5 form the pair (1,2) in
  // column 2 of their vectors, then W1[4] (conflicting with R5[4]) assigns
  // TS(1,1) = TS(5,1)+1 = 3.
  ExpectAllAccepted(RunOps(&s, *Log::Parse("R5[4] R6[5] W5[5]")));
  ASSERT_EQ(s.Ts(5).ToString(), "<1,2,*,*>");
  ExpectAllAccepted(RunOps(&s, *Log::Parse("R1[6] W1[4]")));
  ASSERT_EQ(s.Ts(1).ToString(), "<1,3,*,*>");

  // Warm up item 7 (two bystander reads), then T1 reads and T2 writes it:
  // the T1 -> T2 dependency is created through a now-hot item.
  ExpectAllAccepted(RunOps(&s, *Log::Parse("R9[7] R9[7] R1[7] W2[7]")));
  EXPECT_EQ(s.Ts(1).ToString(), "<1,3,1,*>");
  EXPECT_EQ(s.Ts(2).ToString(), "<1,3,2,*>");
}

TEST(MtkSchedulerTest, OptimizedEncodingKeepsHotItemsFromForcingTotalOrder) {
  // Example 3's point: with normal encoding, a chain of conflicts on the
  // hot item x gives T3 a fresh first element, totally ordering it against
  // the bystander T4; optimized encoding keeps them unordered.
  // Three warm-up reads make x hot before the conflict chain starts.
  const char* kOps = "R9[x] R9[x] R9[x] R1[x] W2[x] W3[x]";
  auto run = [&](bool optimized) {
    MtkOptions options;
    options.k = 4;
    options.optimized_encoding = optimized;
    options.hot_item_threshold = 3;
    auto s = std::make_unique<MtkScheduler>(options);
    // Cold prefix creating the bystander T4 (vector <1,2,*,*>).
    ExpectAllAccepted(RunOps(s.get(), *Log::Parse(kTable2Prefix)));
    EXPECT_EQ(s->Ts(4).ToString(), "<1,2,*,*>");
    // x becomes hot from its fourth access on (threshold 3).
    ExpectAllAccepted(RunOps(s.get(), *Log::Parse(kOps)));
    return s;
  };

  auto normal = run(false);
  EXPECT_EQ(Compare(normal->Ts(4), normal->Ts(3)).order, VectorOrder::kLess)
      << "normal encoding totally orders the bystander against T3";

  auto optimized = run(true);
  auto order = Compare(optimized->Ts(4), optimized->Ts(3)).order;
  EXPECT_EQ(order, VectorOrder::kUndetermined)
      << "TS(4)=" << optimized->Ts(4).ToString()
      << " TS(3)=" << optimized->Ts(3).ToString();
  EXPECT_EQ(Compare(optimized->Ts(4), optimized->Ts(2)).order,
            VectorOrder::kUndetermined);
}

// --- Paper Section III-D-4, the starvation case (Fig. 5) ---

TEST(MtkSchedulerTest, StarvationCaseRejectsT3) {
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  Log log = *Log::Parse("W1(x) W2(x) R3(y) W3(x)");
  auto ds = RunOps(&s, log);
  EXPECT_EQ(ds[0], OpDecision::kAccept);
  EXPECT_EQ(ds[1], OpDecision::kAccept);
  EXPECT_EQ(ds[2], OpDecision::kAccept);
  EXPECT_EQ(ds[3], OpDecision::kReject);
  EXPECT_TRUE(s.IsAborted(3));
  EXPECT_EQ(s.LastBlocker(), 2u);
}

TEST(MtkSchedulerTest, WithoutFixT3StarvesForever) {
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1(x) W2(x)")));
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(s.Process(Op{3, OpType::kRead, 1}), OpDecision::kAccept);
    EXPECT_EQ(s.Process(Op{3, OpType::kWrite, 0}), OpDecision::kReject)
        << "attempt " << attempt;
    s.RestartTxn(3);
  }
}

TEST(MtkSchedulerTest, StarvationFixLetsT3CommitOnRetry) {
  MtkOptions options;
  options.k = 2;
  options.starvation_fix = true;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1(x) W2(x)")));
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 1}), OpDecision::kAccept);
  EXPECT_EQ(s.Process(Op{3, OpType::kWrite, 0}), OpDecision::kReject);
  // "Just before T3 is aborted, TS(3) is set to <3,*>".
  EXPECT_EQ(s.Ts(3).ToString(), "<3,*>");
  s.RestartTxn(3);
  // "When T3 restarts, it is allowed to proceed to its end."
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 1}), OpDecision::kAccept);
  EXPECT_EQ(s.Process(Op{3, OpType::kWrite, 0}), OpDecision::kAccept);
  s.CommitTxn(3);
  EXPECT_TRUE(s.IsCommitted(3));
}

// --- Section III-D-6c, the Thomas write rule ---

TEST(MtkSchedulerTest, ThomasWriteRuleIgnoresObsoleteWrite) {
  // W1[x] W2[x] then W1[x] again: T1's second write is older than T2's and
  // no read is endangered, so it can be ignored rather than aborted.
  Log log = *Log::Parse("W1[x] W2[x] W1[x]");
  {
    MtkOptions options;
    options.k = 2;
    MtkScheduler s(options);
    auto ds = RunOps(&s, log);
    EXPECT_EQ(ds[2], OpDecision::kReject);
  }
  {
    MtkOptions options;
    options.k = 2;
    options.thomas_write_rule = true;
    MtkScheduler s(options);
    auto ds = RunOps(&s, log);
    EXPECT_EQ(ds[2], OpDecision::kIgnore);
    EXPECT_FALSE(s.IsAborted(1));
    EXPECT_EQ(s.Wt(0), 2u) << "ignored write must not become WT(x)";
  }
}

TEST(MtkSchedulerTest, ThomasRuleDoesNotIgnoreWriteNeededByReader) {
  // A read of x newer than T1 forbids ignoring T1's write.
  MtkOptions options;
  options.k = 2;
  options.thomas_write_rule = true;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] W2[x] R3[x]")));
  // T1 writes x again: TS(RT(x)) = TS(3) is not < TS(1), so no ignore.
  EXPECT_EQ(s.Process(Op{1, OpType::kWrite, 0}), OpDecision::kReject);
}

// --- Line 9: old reads accepted when ordered after the last writer ---

TEST(MtkSchedulerTest, OldReadAcceptedAfterLastWriter) {
  // W1[x] R2[x] R3[y] W3[z] ... then R... construct: T2 reads x (RT=2),
  // then T3 (ordered before T2 but after T1) reads x. Accepted via line 9
  // without updating RT(x).
  MtkOptions options;
  options.k = 3;
  MtkScheduler s(options);
  // Order T1 < T3 < T2 deliberately: T1 writes x; T2 reads x -> T2 after T1;
  // T3 reads y written by T1 after T2 wrote y?? Simpler to force with
  // explicit conflicts:
  //   W1[x]            TS(1)=<1,*,*>
  //   R2[x]            TS(2)=<2,*,*>   RT(x)=2
  //   R3[y]            TS(3)=<1,*,*>
  //   W2[y]            T3 -> T2 already holds (first elements 1 < 2)
  //   R3[x]            TS(3) < TS(2)=RT(x); strict line-9 test needs
  //                    TS(WT(x)) = TS(1) < TS(3), which is undetermined.
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] R2[x] R3[y] W2[y]")));
  ASSERT_TRUE(VectorLess(s.Ts(3), s.Ts(2)));
  ASSERT_EQ(s.Rt(0), 2u);
  // TS(1) vs TS(3): 1 vs 1 -> equal so far; line 9's pure test fails, but
  // the relaxed variant can encode it. First the strict protocol:
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 0}), OpDecision::kReject);
}

TEST(MtkSchedulerTest, RelaxedReadPathAcceptsByEncodingWriterDependency) {
  MtkOptions options;
  options.k = 3;
  options.relaxed_read_path = true;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] R2[x] R3[y] W2[y]")));
  // Same situation as above: the relaxed path calls Set(WT(x), T3), which
  // encodes T1 < T3 and accepts the read.
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 0}), OpDecision::kAccept);
  EXPECT_TRUE(VectorLess(s.Ts(1), s.Ts(3)));
  EXPECT_EQ(s.Rt(0), 2u) << "line 10 must not update RT(x)";
}

// --- Line-9 strict test where the order is already determined ---

TEST(MtkSchedulerTest, OldReadAcceptedWhenWriterOrderAlreadyKnown) {
  MtkOptions options;
  options.k = 3;
  MtkScheduler s(options);
  //   W1[x]  R3[x]  -> TS(3) = <2,*,*>, RT(x)=3, T1 < T3 determined.
  //   R2[y]  W3[y]  -> T2 -> T3 encoded; TS(2) < TS(3).
  //   R2[x]: RT(x)=3 with TS(2) < TS(3) (Set fails), but WT(x)=1 and
  //          TS(1) < TS(2)? TS(1)=<1,..>, TS(2)=<1,..> undetermined -> the
  //          strict test fails... so instead give T2 a determined slot:
  //   W4[z] R2[z] orders T4 < T2 and T2 takes first element 2.
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] R3[x] W1[z] R2[z]")));
  ASSERT_EQ(s.Ts(2).ToString(), "<2,*,*>");
  ASSERT_EQ(s.Ts(3).ToString(), "<2,*,*>");
  // Order T2 before T3 via y.
  ExpectAllAccepted(RunOps(&s, *Log::Parse("R2[y] W3[y]")));
  ASSERT_TRUE(VectorLess(s.Ts(2), s.Ts(3)));
  // Now R2[x]: RT(x)=3 beats T2; WT(x)=1 with TS(1)=<1,..> < TS(2)=<2,..>:
  // line 9 accepts without updating RT.
  EXPECT_EQ(s.Process(Op{2, OpType::kRead, 0}), OpDecision::kAccept);
  EXPECT_EQ(s.Rt(0), 3u);
}

// --- Misc plumbing ---

TEST(MtkSchedulerTest, VirtualTransactionCannotIssueOperations) {
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  EXPECT_EQ(s.Process(Op{kVirtualTxn, OpType::kRead, 0}), OpDecision::kReject);
}

TEST(MtkSchedulerTest, AbortedTransactionOpsRejectedUntilRestart) {
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1(x) W2(x) R3(y)")));
  EXPECT_EQ(s.Process(Op{3, OpType::kWrite, 0}), OpDecision::kReject);
  // Further ops of T3 rejected while aborted.
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 2}), OpDecision::kReject);
  s.RestartTxn(3);
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 2}), OpDecision::kAccept);
}

TEST(MtkSchedulerTest, AbortWithdrawsItemTableEntries) {
  MtkOptions options;
  options.k = 3;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] R2[x] W2[y]")));
  EXPECT_EQ(s.Rt(0), 2u);
  EXPECT_EQ(s.Wt(1), 2u);
  // Force an abort of T2 via an impossible write.
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W3[x]")));
  ASSERT_TRUE(VectorLess(s.Ts(2), s.Ts(3)));
  EXPECT_EQ(s.Process(Op{2, OpType::kWrite, 0}), OpDecision::kReject);
  ASSERT_TRUE(s.IsAborted(2));
  // T2's accesses are withdrawn: RT(x) falls back to the virtual txn,
  // WT(y) likewise.
  EXPECT_EQ(s.Rt(0), kVirtualTxn);
  EXPECT_EQ(s.Wt(1), kVirtualTxn);
}

TEST(MtkSchedulerTest, CompactItemHistoriesKeepsMostRecentAccessors) {
  MtkOptions options;
  options.k = 3;
  MtkScheduler s(options);
  ExpectAllAccepted(
      RunOps(&s, *Log::Parse("R1[x] R2[x] R3[x] W3[x] W4[x]")));
  s.CompactItemHistories();
  EXPECT_EQ(s.Rt(0), 3u);
  EXPECT_EQ(s.Wt(0), 4u);
}

TEST(MtkSchedulerTest, CompactCommittedReleasesPassedStates) {
  MtkOptions options;
  options.k = 3;
  options.starvation_fix = true;
  MtkScheduler s(options);
  // A long chain of single-op committed transactions on a rotating item
  // set: once a transaction stops being any item's top accessor, its state
  // is reclaimable.
  constexpr TxnId kTxns = 400;
  for (TxnId t = 1; t <= kTxns; ++t) {
    Op op;
    op.txn = t;
    op.type = t % 2 == 0 ? OpType::kWrite : OpType::kRead;
    op.item = t % 4;
    if (s.Process(op) == OpDecision::kReject) {
      s.RestartTxn(t);
      ASSERT_NE(s.Process(op), OpDecision::kReject) << "txn " << t;
    }
    s.CommitTxn(t);
  }
  const size_t before = s.live_txn_states();
  const size_t released = s.CompactCommitted();
  EXPECT_GT(released, 300u);
  EXPECT_EQ(s.stats().txns_released, released);
  EXPECT_EQ(s.live_txn_states(), before - released);
  EXPECT_GT(s.base_txn_id(), 1u);
  // Released ids still answer liveness queries correctly...
  EXPECT_TRUE(s.IsCommitted(1));
  EXPECT_FALSE(s.IsAborted(1));
  // ...and the surviving tops keep scheduling new work consistently.
  const TxnId next = kTxns + 1;
  EXPECT_EQ(s.Process(Op{next, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_EQ(s.Wt(0), next);
  // A second compaction with nothing newly passed is a no-op.
  EXPECT_EQ(s.CompactCommitted(), 0u);
}

TEST(MtkSchedulerTest, AutomaticCompactionBoundsLiveStates) {
  MtkOptions options;
  options.k = 3;
  options.starvation_fix = true;
  options.compact_every = 64;
  MtkScheduler s(options);
  for (TxnId t = 1; t <= 2000; ++t) {
    Op op;
    op.txn = t;
    op.type = OpType::kWrite;
    op.item = t % 8;
    if (s.Process(op) == OpDecision::kReject) {
      s.RestartTxn(t);
      ASSERT_NE(s.Process(op), OpDecision::kReject) << "txn " << t;
    }
    s.CommitTxn(t);
  }
  EXPECT_GT(s.stats().txns_released, 1500u);
  // Storage tracks the live span (tops + open window), not the 2000-txn
  // history.
  EXPECT_LT(s.live_txn_states(), 200u);
}

TEST(MtkSchedulerTest, StatsCountDecisions) {
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  RunOps(&s, *Log::Parse("W1(x) W2(x) R3(y) W3(x)"));
  EXPECT_EQ(s.stats().accepted, 3u);
  EXPECT_EQ(s.stats().rejected, 1u);
  EXPECT_GT(s.stats().set_calls, 0u);
  EXPECT_GT(s.stats().element_comparisons, 0u);
}

TEST(MtkSchedulerTest, SerializationOrderRespectsAllDeterminedPairs) {
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] W1[y] R3[x] R2[y] W3[y]")));
  auto order = s.SerializationOrder({3, 2, 1});
  // T1 first (first element 1 < 2); T2 before T3 (second element 1 < 2).
  EXPECT_EQ(order, (std::vector<TxnId>{1, 2, 3}));
}

// --- Dimension-1 protocol sanity: MT(1) behaves like conventional TO ---

TEST(MtkSchedulerTest, Mt1AssignsDistinctScalarTimestamps) {
  MtkOptions options;
  options.k = 1;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("R1[x] R2[y] R3[z]")));
  // All three got distinct scalars from ucount.
  EXPECT_NE(s.Ts(1).Get(0), s.Ts(2).Get(0));
  EXPECT_NE(s.Ts(2).Get(0), s.Ts(3).Get(0));
  EXPECT_NE(s.Ts(1).Get(0), s.Ts(3).Get(0));
}

// --- ExplainLastReject: one test per producible reject reason; the
// rendered one-liner must name the cause and, where one exists, the
// blocking transaction. ---

TEST(ExplainLastRejectTest, LexOrderNamesTheBlocker) {
  MtkOptions options;
  options.k = 1;
  MtkScheduler s(options);
  // MT(1): W1[x] R2[x] fixes 1 < 2, so R1[y] after W2[y] needs the
  // opposite scalar order - rejected with T2 as the blocker.
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] R2[x] W2[y]")));
  EXPECT_EQ(s.Process(Op{1, OpType::kRead, 1}), OpDecision::kReject);
  EXPECT_EQ(s.last_reject().reason, AbortReason::kLexOrder);
  const std::string msg = s.ExplainLastReject();
  EXPECT_NE(msg.find("lex_order"), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocker T2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("R1[y]"), std::string::npos) << msg;
}

TEST(ExplainLastRejectTest, EncodingExhaustedNamesTheBlocker) {
  // Identical fully-defined vectors leave no room to encode a dependency.
  // Algorithm 1 keeps live vectors distinct, but the starvation fix's
  // seeding can collide two restarted incarnations at k = 1: abort both
  // T1 and T3 against the same blocker T2 and they both restart seeded
  // with <TS(2,0) + 1>.
  MtkOptions options;
  options.k = 1;
  options.starvation_fix = true;
  MtkScheduler s(options);
  ExpectAllAccepted(
      RunOps(&s, *Log::Parse("W1[x] W3[y] R2[x] R2[y] W2[z] W2[w]")));
  EXPECT_EQ(s.Process(Op{1, OpType::kRead, 2}), OpDecision::kReject);
  s.RestartTxn(1);
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 3}), OpDecision::kReject);
  s.RestartTxn(3);
  ASSERT_EQ(s.Ts(1).Get(0), s.Ts(3).Get(0));  // The seeded collision.
  EXPECT_EQ(s.Process(Op{1, OpType::kWrite, 4}), OpDecision::kAccept);
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 4}), OpDecision::kReject);
  EXPECT_EQ(s.last_reject().reason, AbortReason::kEncodingExhausted);
  const std::string msg = s.ExplainLastReject();
  EXPECT_NE(msg.find("encoding_exhausted"), std::string::npos) << msg;
  EXPECT_NE(msg.find("blocker T1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("R3[i4]"), std::string::npos) << msg;
}

TEST(ExplainLastRejectTest, StaleTxnHasNoSpecificBlocker) {
  MtkOptions options;
  options.k = 1;
  MtkScheduler s(options);
  ExpectAllAccepted(RunOps(&s, *Log::Parse("W1[x] R2[x] W2[y]")));
  EXPECT_EQ(s.Process(Op{1, OpType::kRead, 1}), OpDecision::kReject);
  // Resubmission from the aborted (un-restarted) incarnation is stale; no
  // single transaction blocks it, so none is named.
  EXPECT_EQ(s.Process(Op{1, OpType::kWrite, 0}), OpDecision::kReject);
  EXPECT_EQ(s.last_reject().reason, AbortReason::kStaleTxn);
  EXPECT_EQ(s.LastBlocker(), kVirtualTxn);
  const std::string msg = s.ExplainLastReject();
  EXPECT_NE(msg.find("stale_txn"), std::string::npos) << msg;
  EXPECT_NE(msg.find("W1[x]"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("blocker"), std::string::npos) << msg;
}

TEST(ExplainLastRejectTest, InvalidOpHasNoSpecificBlocker) {
  MtkScheduler s(MtkOptions{});
  EXPECT_EQ(s.Process(Op{kVirtualTxn, OpType::kWrite, 7}),
            OpDecision::kReject);
  EXPECT_EQ(s.last_reject().reason, AbortReason::kInvalidOp);
  const std::string msg = s.ExplainLastReject();
  EXPECT_NE(msg.find("invalid_op"), std::string::npos) << msg;
  EXPECT_NE(msg.find("W0[i7]"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("blocker"), std::string::npos) << msg;
}

}  // namespace
}  // namespace mdts
