// Stress/fuzz-style invariant tests: long random command sequences
// (operations, commits, aborts, restarts, compactions) against the
// schedulers, checking the structural invariants the correctness arguments
// rest on:
//   I1  defined vector elements always form a prefix,
//   I2  a determined pair order never reverses,
//   I3  whatever is accepted stays D-serializable (committed projection),
//   I4  Definition 5: serializability numbers s_i exist inside
//       (t_i - 1, t_i) windows given by the first vector elements.

#include <map>
#include <utility>
#include <vector>

#include "classify/classes.h"
#include "common/rng.h"
#include "core/log.h"
#include "core/mtk_scheduler.h"
#include "core/recognizer.h"
#include "gtest/gtest.h"
#include "mvcc/mv_scheduler.h"
#include "workload/generator.h"

namespace mdts {
namespace {

// I1: every vector's defined elements form a contiguous prefix.
void ExpectPrefixInvariant(MtkScheduler* s, TxnId max_txn) {
  for (TxnId t = 0; t <= max_txn; ++t) {
    const TimestampVector& v = s->Ts(t);
    EXPECT_EQ(v.DefinedPrefixLength(), v.DefinedCount())
        << "txn " << t << " vector " << v.ToString();
  }
}

class SchedulerStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerStress, InvariantsHoldUnderRandomCommandSequences) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    MtkOptions options;
    options.k = static_cast<size_t>(rng.Uniform(1, 6));
    options.starvation_fix = rng.Chance(0.5);
    options.thomas_write_rule = rng.Chance(0.3);
    options.relaxed_read_path = rng.Chance(0.3);
    options.optimized_encoding = rng.Chance(0.3);
    options.hot_item_threshold = static_cast<size_t>(rng.Uniform(0, 6));
    MtkScheduler s(options);

    const TxnId n = 8;
    const ItemId m = 5;
    // Determined-order memory for I2.
    std::map<std::pair<TxnId, TxnId>, VectorOrder> seen;

    // Abort or restart of t legitimately rewrites TS(t); forget any order
    // observations involving t at those moments so I2 only tracks pairs
    // whose vectors evolved monotonically.
    auto forget = [&](TxnId t) {
      for (auto it = seen.begin(); it != seen.end();) {
        if (it->first.first == t || it->first.second == t) {
          it = seen.erase(it);
        } else {
          ++it;
        }
      }
    };

    for (int step = 0; step < 400; ++step) {
      const TxnId t = static_cast<TxnId>(rng.Uniform(1, n));
      const double dice = rng.UniformReal();
      if (s.IsAborted(t)) {
        if (dice < 0.7) {
          s.RestartTxn(t);
          forget(t);
        }
        continue;
      }
      if (s.IsCommitted(t)) continue;
      if (dice < 0.85) {
        const Op op{t,
                    rng.Chance(0.5) ? OpType::kRead : OpType::kWrite,
                    static_cast<ItemId>(rng.Uniform(0, m - 1))};
        if (s.Process(op) == OpDecision::kReject) forget(t);
      } else if (dice < 0.92) {
        s.CommitTxn(t);
      } else {
        s.CompactItemHistories();
      }

      if (step % 7 == 0) {
        ExpectPrefixInvariant(&s, n);
        // I2: determined orders must never reverse while both vectors
        // evolve monotonically (no abort/restart in between).
        for (TxnId a = 1; a <= n; ++a) {
          for (TxnId b = a + 1; b <= n; ++b) {
            const VectorOrder now = Compare(s.Ts(a), s.Ts(b)).order;
            auto it = seen.find({a, b});
            if (it != seen.end() &&
                (it->second == VectorOrder::kLess ||
                 it->second == VectorOrder::kGreater)) {
              EXPECT_EQ(now, it->second)
                  << "determined order reversed for T" << a << ", T" << b;
            }
            seen[{a, b}] = now;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStress,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(SchedulerStressTest, EffectiveHistoriesStayDsrUnderAllVariantCombos) {
  // I3 across the full option grid.
  for (int mask = 0; mask < 32; ++mask) {
    MtkOptions options;
    options.k = 1 + (mask % 4);
    options.starvation_fix = mask & 1;
    options.thomas_write_rule = mask & 2;
    options.relaxed_read_path = mask & 4;
    options.optimized_encoding = mask & 8;
    options.disable_old_read_path = mask & 16;
    options.hot_item_threshold = 2;

    WorkloadOptions w;
    w.num_txns = 6;
    w.num_items = 3;
    w.min_ops = 1;
    w.max_ops = 4;
    w.distinct_items_per_txn = false;
    w.seed = 4000 + static_cast<uint64_t>(mask);
    Log log = GenerateLog(w);
    EXPECT_TRUE(IsDsr(EffectiveHistory(log, options)))
        << "mask " << mask << " log " << log.ToString();
  }
}

TEST(SchedulerStressTest, Definition5WitnessExistsForAcceptedLogs) {
  // I4 / Definition 5: for an accepted log there exist serializability
  // numbers s_i with t_i - 1 < s_i < t_i (t_i the first vector element)
  // satisfying every dependency constraint. Construction: distinct first
  // elements already order their windows disjointly; within an equal-t
  // group, order by the full vector (a partial order we linearize).
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions w;
    w.num_txns = 6;
    w.num_items = 4;
    w.min_ops = 1;
    w.max_ops = 3;
    w.seed = seed + 6000;
    Log log = GenerateLog(w);

    MtkOptions options;
    options.k = 4;
    MtkScheduler s(options);
    bool accepted = true;
    for (const Op& op : log.ops()) {
      if (s.Process(op) != OpDecision::kAccept) {
        accepted = false;
        break;
      }
    }
    if (!accepted) continue;

    // Assign s_i inside (t_i - 1, t_i), ordered within the window by the
    // global serialization order.
    std::vector<TxnId> txns;
    for (TxnId t = 1; t <= log.num_txns(); ++t) {
      if (log.OpsOfTxn(t) > 0) txns.push_back(t);
    }
    auto order = s.SerializationOrder(txns);
    std::map<TxnId, double> s_num;
    std::map<TsElement, int> rank_in_window;
    for (TxnId t : order) {
      ASSERT_TRUE(s.Ts(t).IsDefined(0)) << "active txn without t_i";
      const TsElement ti = s.Ts(t).Get(0);
      const int r = rank_in_window[ti]++;
      s_num[t] = static_cast<double>(ti) - 1.0 +
                 (static_cast<double>(r) + 1.0) /
                     (static_cast<double>(txns.size()) + 2.0);
      EXPECT_GT(s_num[t], static_cast<double>(ti) - 1.0);
      EXPECT_LT(s_num[t], static_cast<double>(ti));
    }
    // Every dependency must respect the s numbers.
    const auto& ops = log.ops();
    for (size_t b = 0; b < ops.size(); ++b) {
      for (size_t a = 0; a < b; ++a) {
        if (Conflicts(ops[a], ops[b])) {
          EXPECT_LT(s_num[ops[a].txn], s_num[ops[b].txn])
              << "dependency " << OpName(ops[a]) << " -> " << OpName(ops[b])
              << " violates Definition 5 in " << log.ToString();
        }
      }
    }
  }
}

TEST(MvStressTest, RandomCommandSequencesKeepMvsgAcyclic) {
  Rng rng(777);
  for (int round = 0; round < 8; ++round) {
    MvMtkOptions options;
    options.k = static_cast<size_t>(rng.Uniform(1, 5));
    options.starvation_fix = rng.Chance(0.5);
    MvMtkScheduler s(options);
    const TxnId n = 8;
    const ItemId m = 4;
    for (int step = 0; step < 400; ++step) {
      const TxnId t = static_cast<TxnId>(rng.Uniform(1, n));
      const double dice = rng.UniformReal();
      if (s.IsAborted(t)) {
        if (dice < 0.7) s.RestartTxn(t);
        continue;
      }
      if (s.IsCommitted(t)) continue;
      if (dice < 0.85) {
        s.Process(Op{t, rng.Chance(0.6) ? OpType::kRead : OpType::kWrite,
                     static_cast<ItemId>(rng.Uniform(0, m - 1))});
      } else if (dice < 0.92) {
        s.CommitTxn(t);
      } else {
        s.PruneVersions();
      }
      if (step % 57 == 0) {
        EXPECT_TRUE(s.AuditMvsgAcyclic()) << "round " << round << " step "
                                          << step;
      }
    }
    EXPECT_TRUE(s.AuditMvsgAcyclic());
  }
}

}  // namespace
}  // namespace mdts
