#include "classify/classes.h"

#include "classify/dependency_graph.h"
#include "classify/hierarchy.h"
#include "core/log.h"
#include "core/recognizer.h"
#include "gtest/gtest.h"
#include "workload/generator.h"

namespace mdts {
namespace {

Log L(const char* text) {
  auto r = Log::Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return *r;
}

// --- Dependency graph / DSR ---

TEST(DependencyGraphTest, BuildsConflictEdges) {
  DependencyGraph g = DependencyGraph::FromLog(L("W1[x] R2[x] W3[y] R1[y]"));
  EXPECT_TRUE(g.HasEdge(1, 2));   // W1[x] before R2[x].
  EXPECT_TRUE(g.HasEdge(3, 1));   // W3[y] before R1[y].
  EXPECT_FALSE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasCycle());
}

TEST(DependencyGraphTest, ReadsDoNotConflict) {
  DependencyGraph g = DependencyGraph::FromLog(L("R1[x] R2[x] R3[x]"));
  EXPECT_TRUE(g.edges().empty());
}

TEST(DependencyGraphTest, DetectsCycle) {
  // R1[x] < W2[x] gives 1->2; W2[y] < W1[y] gives 2->1.
  DependencyGraph g = DependencyGraph::FromLog(L("R1[x] W2[x] W2[y] W1[y]"));
  EXPECT_TRUE(g.HasCycle());
  EXPECT_TRUE(g.TopologicalOrder().empty());
}

TEST(DependencyGraphTest, TopologicalOrderIsAWitness) {
  Log log = L("R2[y] R1[x] W1[y] R3[z] W2[z]");
  DependencyGraph g = DependencyGraph::FromLog(log);
  auto order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  // Edges 2->1 (y) and 3->2 (z) force 3, 2, 1.
  EXPECT_EQ(order, (std::vector<TxnId>{3, 2, 1}));
}

TEST(DependencyGraphTest, DotRenderingMentionsAllEdges) {
  DependencyGraph g = DependencyGraph::FromLog(L("W1[x] R2[x]"));
  std::string dot = g.ToDot("g");
  EXPECT_NE(dot.find("T1 -> T2"), std::string::npos);
}

TEST(DsrTest, PaperExample1IsDsr) {
  EXPECT_TRUE(IsDsr(L("W1[x] W1[y] R3[x] R2[y] W3[y]")));
}

TEST(DsrTest, CyclicLogIsNotDsr) {
  EXPECT_FALSE(IsDsr(L("R1[x] W2[x] W2[y] W1[y]")));
}

TEST(DsrTest, SerialOrderEmptyForNonDsr) {
  EXPECT_TRUE(DsrSerialOrder(L("R1[x] W2[x] W2[y] W1[y]")).empty());
}

// --- TO(1) by Definition 4 vs the MT(1) recognizer ---

TEST(To1Test, SerialLogSatisfiesDefinition4) {
  EXPECT_TRUE(IsTo1ByDefinition(L("R1[x] W1[x] R2[x] W2[x]")));
}

TEST(To1Test, ReadReadConditionIvEnforced) {
  // R2[y] then R1[y] with s_1 < s_2 violates condition iv even though reads
  // do not conflict.
  EXPECT_FALSE(IsTo1ByDefinition(L("R1[x] R2[y] R1[y]")));
  // MT(1) accepts it through Algorithm 1's line 9: the class TO(1) is
  // slightly larger than the Definition-4 necessary condition.
  EXPECT_TRUE(IsToK(L("R1[x] R2[y] R1[y]"), 1));
}

TEST(To1Test, Definition4ImpliesMt1AcceptanceOnRandomLogs) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    WorkloadOptions options;
    options.num_txns = 5;
    options.num_items = 4;
    options.min_ops = 1;
    options.max_ops = 3;
    options.seed = seed;
    Log log = GenerateLog(options);
    if (IsTo1ByDefinition(log)) {
      EXPECT_TRUE(IsToK(log, 1)) << log.ToString();
    }
  }
}

// --- View / final-state serializability ---

TEST(SerializabilityTest, ViewButNotConflictSerializable) {
  // Blind-write log: not DSR (cycle between T1 and T2 on x) but
  // view-equivalent to T1 T2 T3.
  Log log = L("R1[x] W2[x] W1[x] W3[x]");
  EXPECT_FALSE(IsDsr(log));
  auto vsr = IsViewSerializable(log);
  ASSERT_TRUE(vsr.ok());
  EXPECT_TRUE(*vsr);
}

TEST(SerializabilityTest, NonSerializableLog) {
  // Lost update: both read the initial x then both write it.
  Log log = L("R1[x] R2[x] W1[x] W2[x]");
  auto vsr = IsViewSerializable(log);
  ASSERT_TRUE(vsr.ok());
  EXPECT_FALSE(*vsr);
  auto fsr = IsFinalStateSerializable(log);
  ASSERT_TRUE(fsr.ok());
  EXPECT_FALSE(*fsr);
}

TEST(SerializabilityTest, DeadReadMakesFinalStateStrictlyWeaker) {
  // T2 only reads; its reads never influence the final state, so the
  // final-state test ignores them while the view test does not.
  // R2 reads x between W1[x] and W3[x]: view-wise R2 must read from W1,
  // forcing 1 < 2 < 3; that is still achievable, so pick the variant where
  // it is not: R2 reads x before any write but after T1 started writing y.
  Log log = L("W1[y] R2[x] W1[x] R2[y]");
  // View: R2[x] reads initial, R2[y] reads from W1[y]: serial T1 T2 gives
  // R2[x] reading W1[x] instead -> not view-serializable; T2 T1 gives R2[y]
  // reading initial -> not view-equivalent either.
  auto vsr = IsViewSerializable(log);
  ASSERT_TRUE(vsr.ok());
  EXPECT_FALSE(*vsr);
  // Final state: T2 writes nothing, so both serial orders produce the same
  // final state as the log.
  auto fsr = IsFinalStateSerializable(log);
  ASSERT_TRUE(fsr.ok());
  EXPECT_TRUE(*fsr);
}

TEST(SerializabilityTest, ConflictSerializableImpliesViewAndFinalState) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    WorkloadOptions options;
    options.num_txns = 4;
    options.num_items = 3;
    options.min_ops = 1;
    options.max_ops = 3;
    options.read_fraction = 0.5;
    options.seed = seed;
    Log log = GenerateLog(options);
    auto vsr = IsViewSerializable(log);
    auto fsr = IsFinalStateSerializable(log);
    ASSERT_TRUE(vsr.ok() && fsr.ok());
    if (IsDsr(log)) {
      EXPECT_TRUE(*vsr) << log.ToString();
    }
    if (*vsr) {
      EXPECT_TRUE(*fsr) << log.ToString();
    }
  }
}

TEST(SerializabilityTest, BruteForceGuardsAgainstLargeLogs) {
  WorkloadOptions options;
  options.num_txns = kMaxBruteForceTxns + 1;
  options.num_items = 4;
  Log log = GenerateLog(options);
  EXPECT_FALSE(IsViewSerializable(log).ok());
  EXPECT_FALSE(IsSsr(log).ok());
}

// --- Strict serializability ---

TEST(SsrTest, SerialLogIsStrictlySerializable) {
  auto ssr = IsSsr(L("R1[x] W1[x] R2[x] W2[x]"));
  ASSERT_TRUE(ssr.ok());
  EXPECT_TRUE(*ssr);
  EXPECT_TRUE(IsSsrConflict(L("R1[x] W1[x] R2[x] W2[x]")));
}

TEST(SsrTest, SerializableButNotStrict) {
  // Serialization is forced to T3 T2 T1 (conflicts 3->2 on z, 2->1 on y),
  // but T1 completes before T3 starts. T3 writes w so its read of z is
  // visible to final-state equivalence.
  Log log = L("R2[y] R1[x] W1[y] R3[z] W2[z] W3[w]");
  EXPECT_TRUE(IsDsr(log));
  auto sr = IsFinalStateSerializable(log);
  ASSERT_TRUE(sr.ok());
  EXPECT_TRUE(*sr);
  auto ssr = IsSsr(log);
  ASSERT_TRUE(ssr.ok());
  EXPECT_FALSE(*ssr);
  EXPECT_FALSE(IsSsrConflict(log));
}

TEST(SsrTest, ConflictTestImpliesBruteForceTest) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions options;
    options.num_txns = 4;
    options.num_items = 3;
    options.min_ops = 1;
    options.max_ops = 3;
    options.seed = seed;
    Log log = GenerateLog(options);
    if (IsSsrConflict(log)) {
      auto ssr = IsSsr(log);
      ASSERT_TRUE(ssr.ok());
      EXPECT_TRUE(*ssr) << log.ToString();
    }
  }
}

// --- 2PL class membership ---

TEST(TwoPlTest, SerialLogIsTwoPl) {
  EXPECT_TRUE(IsTwoPl(L("R1[x] W1[y] R2[x] W2[y]")));
}

TEST(TwoPlTest, DisjointInterleavingIsTwoPl) {
  EXPECT_TRUE(IsTwoPl(L("R1[x] R2[y] W1[x] W2[y]")));
}

TEST(TwoPlTest, EarlyAcquisitionCaseIsTwoPl) {
  // T1 can predeclare (lock x and y up front), release x after reading it,
  // and still write y later: the interleaving is 2PL-producible.
  EXPECT_TRUE(IsTwoPl(L("R1[x] W2[x] W1[y] W2[y]")));
}

TEST(TwoPlTest, LockUpgradePatternIsNotTwoPl) {
  // T2 reads x inside T1's read-write span on x: with one continuous lock
  // window per (transaction, item), T1's window must cover both its ops,
  // excluding T2's read between them.
  EXPECT_FALSE(IsTwoPl(L("R1[x] R2[x] W1[x]")));
}

TEST(TwoPlTest, DsrButNotTwoPl) {
  // T1 must release x before W2[x] (so T1's lock point is early), yet T3
  // writes y before T1's own y-write: T3's window on y cannot fit before
  // T1's early-acquired y lock. DSR holds (edges 1->2, 3->1, acyclic).
  Log log = L("R1[x] W2[x] W3[y] W1[y]");
  EXPECT_TRUE(IsDsr(log));
  EXPECT_FALSE(IsTwoPl(log));
}

TEST(TwoPlTest, NonDsrIsNeverTwoPl) {
  EXPECT_FALSE(IsTwoPl(L("R1[x] W2[x] W2[y] W1[y]")));
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions options;
    options.num_txns = 4;
    options.num_items = 3;
    options.min_ops = 1;
    options.max_ops = 3;
    options.seed = seed;
    Log log = GenerateLog(options);
    if (IsTwoPl(log)) {
      EXPECT_TRUE(IsDsr(log)) << log.ToString();
    }
  }
}

// --- Hierarchy bundle ---

TEST(HierarchyTest, SerialLogIsInEveryClass) {
  auto m = ClassifyLog(L("R1[x] W1[x] R2[x] W2[x]"));
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->sr);
  EXPECT_TRUE(m->dsr);
  EXPECT_TRUE(m->ssr);
  EXPECT_TRUE(m->two_pl);
  EXPECT_TRUE(m->to1);
  EXPECT_TRUE(m->to2);
  EXPECT_TRUE(m->to3);
  EXPECT_EQ(Fig4Region(*m), 1);
}

TEST(HierarchyTest, SignatureIsReadable) {
  ClassMembership m;
  m.sr = m.dsr = true;
  EXPECT_EQ(MembershipSignature(m), "+SR+DSR-SSR-2PL-TO1-TO2-TO3");
}

TEST(HierarchyTest, RegionZeroForInconsistentMembership) {
  ClassMembership m;
  m.two_pl = true;  // 2PL without DSR/SR is impossible.
  EXPECT_EQ(Fig4Region(m), 0);
}

TEST(HierarchyTest, ClassifiedRandomLogsAreAlwaysConsistent) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions options;
    options.num_txns = 3;
    options.num_items = 3;
    options.min_ops = 1;
    options.max_ops = 3;
    options.seed = seed;
    Log log = GenerateLog(options);
    auto m = ClassifyLog(log);
    ASSERT_TRUE(m.ok());
    EXPECT_NE(Fig4Region(*m), 0) << log.ToString() << " "
                                 << MembershipSignature(*m);
  }
}

}  // namespace
}  // namespace mdts
