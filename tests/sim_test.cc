#include "sim/simulator.h"

#include <memory>

#include "classify/classes.h"
#include "gtest/gtest.h"
#include "sched/deferred_write.h"
#include "sched/interval_scheduler.h"
#include "sched/mtk_online.h"
#include "sched/occ_scheduler.h"
#include "sched/to1_scheduler.h"
#include "sched/two_pl_scheduler.h"

namespace mdts {
namespace {

SimOptions BaseOptions(uint64_t seed) {
  SimOptions options;
  options.num_txns = 60;
  options.concurrency = 8;
  options.mean_think_time = 1.0;
  options.restart_delay = 2.0;
  options.seed = seed;
  options.workload.num_items = 12;
  options.workload.min_ops = 2;
  options.workload.max_ops = 4;
  options.workload.read_fraction = 0.6;
  return options;
}

std::unique_ptr<Scheduler> MakeMtk(size_t k, bool fix = true) {
  MtkOptions options;
  options.k = k;
  options.starvation_fix = fix;
  return std::make_unique<MtkOnline>(options);
}

TEST(SimulatorTest, AllTransactionsEventuallyCommitUnderMtk) {
  auto s = MakeMtk(3);
  SimResult r = RunSimulation(s.get(), BaseOptions(1));
  EXPECT_EQ(r.committed + r.gave_up, 60u);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.throughput, 0.0);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  auto s1 = MakeMtk(3);
  auto s2 = MakeMtk(3);
  SimResult r1 = RunSimulation(s1.get(), BaseOptions(7));
  SimResult r2 = RunSimulation(s2.get(), BaseOptions(7));
  EXPECT_EQ(r1.committed, r2.committed);
  EXPECT_EQ(r1.aborts, r2.aborts);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.committed_history.ToString(),
            r2.committed_history.ToString());
}

// The master safety property: whatever any scheduler commits must be
// D-serializable. Parameterized over all protocols.
class CommittedHistoryAudit : public ::testing::TestWithParam<int> {
 public:
  static std::unique_ptr<Scheduler> Make(int which) {
    switch (which) {
      case 0:
        return MakeMtk(1);
      case 1:
        return MakeMtk(2);
      case 2:
        return MakeMtk(4);
      case 3: {
        MtkOptions o;
        o.k = 3;
        o.thomas_write_rule = true;
        o.starvation_fix = true;
        return std::make_unique<MtkOnline>(o);
      }
      case 4:
        return std::make_unique<TwoPlScheduler>();
      case 5:
        return std::make_unique<To1Scheduler>();
      case 6:
        return std::make_unique<OccScheduler>();
      case 7:
        return std::make_unique<IntervalScheduler>();
      case 8: {
        MtkOptions o;
        o.k = 3;
        return std::make_unique<MtkDeferredWrite>(o);
      }
      default:
        return nullptr;
    }
  }
};

TEST_P(CommittedHistoryAudit, CommittedHistoryIsAlwaysDsr) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    auto scheduler = Make(GetParam());
    ASSERT_NE(scheduler, nullptr);
    SimOptions options = BaseOptions(seed * 13);
    options.num_txns = 40;
    options.workload.num_items = 6;  // High contention.
    options.workload.read_fraction = 0.5;
    SimResult r = RunSimulation(scheduler.get(), options);
    EXPECT_GT(r.committed, 0u) << scheduler->name();
    EXPECT_TRUE(IsDsr(r.committed_history))
        << scheduler->name() << " seed " << seed << "\n"
        << r.committed_history.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, CommittedHistoryAudit,
                         ::testing::Range(0, 9));

TEST(SimulatorTest, TwoPlBlocksButRarelyAborts) {
  TwoPlScheduler s;
  SimOptions options = BaseOptions(3);
  options.workload.num_items = 6;
  SimResult r = RunSimulation(&s, options);
  EXPECT_EQ(r.committed + r.gave_up, 60u);
  EXPECT_GT(r.block_events, 0u) << "2PL under contention must block";
}

TEST(SimulatorTest, StarvationFixBoundsConsecutiveAborts) {
  SimOptions options = BaseOptions(11);
  options.num_txns = 80;
  options.workload.num_items = 4;  // Very high contention.
  options.workload.read_fraction = 0.3;

  auto without = MakeMtk(2, /*fix=*/false);
  SimResult r_without = RunSimulation(without.get(), options);
  auto with = MakeMtk(2, /*fix=*/true);
  SimResult r_with = RunSimulation(with.get(), options);

  // The fix guarantees a restarted transaction cannot be re-aborted by the
  // SAME blocker (the deterministic Fig. 5 replay in mtk_scheduler_test
  // pins that); under random contention with changing blockers it does not
  // bound consecutive aborts, so here we assert only that both
  // configurations drive the whole workload to completion.
  EXPECT_EQ(r_with.committed + r_with.gave_up, 80u);
  EXPECT_EQ(r_without.committed + r_without.gave_up, 80u);
  EXPECT_GT(r_with.committed, 0u);
  EXPECT_GT(r_without.committed, 0u);
}

TEST(SimulatorTest, PartialRollbackPreservesWork) {
  SimOptions options = BaseOptions(17);
  options.num_txns = 80;
  options.workload.num_items = 5;
  options.workload.min_ops = 4;
  options.workload.max_ops = 6;
  options.workload.read_fraction = 0.4;

  auto full = MakeMtk(3);
  SimResult r_full = RunSimulation(full.get(), options);

  options.partial_rollback = true;
  auto partial = MakeMtk(3);
  SimResult r_partial = RunSimulation(partial.get(), options);

  EXPECT_EQ(r_partial.committed + r_partial.gave_up, 80u);
  if (r_partial.aborts > 0) {
    EXPECT_GT(r_partial.ops_replayed_free, 0u)
        << "partial rollback should replay some prefix work for free";
  }
  EXPECT_EQ(r_full.ops_replayed_free, 0u);
}

TEST(SimulatorTest, ZeroContentionCommitsWithoutAborts) {
  SimOptions options = BaseOptions(23);
  options.num_txns = 30;
  options.workload.num_items = 500;  // Conflicts are nearly impossible.
  auto s = MakeMtk(2);
  SimResult r = RunSimulation(s.get(), options);
  EXPECT_EQ(r.committed, 30u);
  EXPECT_EQ(r.aborts, 0u);
  EXPECT_EQ(r.ops_wasted, 0u);
}

TEST(SimulatorTest, ConcurrencyOneIsSerialAndConflictFree) {
  SimOptions options = BaseOptions(29);
  options.concurrency = 1;
  options.workload.num_items = 3;
  for (int which : {0, 4, 6}) {
    auto s = CommittedHistoryAudit::Make(which);
    SimResult r = RunSimulation(s.get(), options);
    EXPECT_EQ(r.committed, 60u) << s->name();
    EXPECT_EQ(r.aborts, 0u) << s->name();
    EXPECT_EQ(r.block_events, 0u) << s->name();
  }
}

}  // namespace
}  // namespace mdts
