// Live telemetry tests: the Gauge instrument, the windowed Sampler ring,
// the StarvationWatchdog, and the HTTP exporter scraped over a REAL
// localhost socket - /metrics is checked against the Prometheus text
// exposition grammar by the in-file parser below, /series.json for window
// count and strict timestamp monotonicity.
//
// The watchdog's end-to-end trigger reuses fault_sweep's site-crash cell:
// the sampler is ticked on SIMULATED time by the DMT event loop
// (DmtOptions::sampler), so the alert fires deterministically - asserted
// via the sampler ring and alert records, never via wall-clock sleeps.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "dist/dmt_system.h"
#include "engine/sharded_engine.h"
#include "gtest/gtest.h"
#include "obs/flight.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"

namespace mdts {
namespace {

// ===========================================================================
// Minimal HTTP client: one blocking GET against the exporter's real socket.
// ===========================================================================

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// ===========================================================================
// Prometheus text exposition parser (format 0.0.4). Returns every grammar
// violation found; an empty vector means the scrape is well-formed:
//  - "# HELP <name> <doc>" then "# TYPE <name> <counter|gauge|histogram>",
//  - every sample belongs to the most recently TYPE'd family (histograms
//    via the _bucket/_sum/_count suffixes),
//  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, values parse as numbers,
//  - histogram buckets are cumulative and the +Inf bucket equals _count.
// ===========================================================================

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

std::vector<std::string> ValidatePrometheus(const std::string& text) {
  std::vector<std::string> errors;
  std::string family;      // Most recent TYPE'd name.
  std::string family_type;
  std::string pending_help;  // HELP seen, TYPE not yet.
  uint64_t prev_bucket = 0;
  bool saw_inf = false;
  uint64_t inf_value = 0;
  size_t line_no = 0;
  size_t start = 0;
  if (text.empty() || text.back() != '\n') {
    errors.push_back("exposition must end with a newline");
  }
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    const std::string at = "line " + std::to_string(line_no) + ": ";
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      const std::string name = line.substr(7, sp - 7);
      if (!IsValidMetricName(name)) {
        errors.push_back(at + "bad HELP metric name: " + name);
      }
      if (sp == std::string::npos || sp + 1 >= line.size()) {
        errors.push_back(at + "HELP without docstring");
      }
      pending_help = name;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t sp = line.find(' ', 7);
      const std::string name = line.substr(7, sp - 7);
      const std::string type =
          sp == std::string::npos ? "" : line.substr(sp + 1);
      if (!IsValidMetricName(name)) {
        errors.push_back(at + "bad TYPE metric name: " + name);
      }
      if (type != "counter" && type != "gauge" && type != "histogram") {
        errors.push_back(at + "unknown metric type: " + type);
      }
      if (pending_help != name) {
        errors.push_back(at + "TYPE " + name + " not preceded by its HELP");
      }
      family = name;
      family_type = type;
      prev_bucket = 0;
      saw_inf = false;
      continue;
    }
    if (line[0] == '#') continue;  // Other comments are legal.
    // Sample line: name[{labels}] value.
    const size_t val_sp = line.rfind(' ');
    if (val_sp == std::string::npos) {
      errors.push_back(at + "sample line without value: " + line);
      continue;
    }
    const std::string value_str = line.substr(val_sp + 1);
    double value = 0;
    if (!ParseNumber(value_str, &value)) {
      errors.push_back(at + "unparsable sample value: " + value_str);
    }
    std::string series = line.substr(0, val_sp);
    std::string labels;
    const size_t brace = series.find('{');
    if (brace != std::string::npos) {
      if (series.back() != '}') {
        errors.push_back(at + "unterminated label set: " + series);
        continue;
      }
      labels = series.substr(brace + 1, series.size() - brace - 2);
      series = series.substr(0, brace);
    }
    if (!IsValidMetricName(series)) {
      errors.push_back(at + "bad sample metric name: " + series);
      continue;
    }
    if (family.empty()) {
      errors.push_back(at + "sample before any TYPE line: " + series);
      continue;
    }
    if (family_type == "histogram") {
      if (series == family + "_bucket") {
        if (labels.rfind("le=\"", 0) != 0 || labels.back() != '"') {
          errors.push_back(at + "histogram bucket without le label");
          continue;
        }
        const std::string le = labels.substr(4, labels.size() - 5);
        const uint64_t cumulative =
            static_cast<uint64_t>(value);
        if (cumulative < prev_bucket) {
          errors.push_back(at + "non-cumulative histogram bucket: " + line);
        }
        prev_bucket = cumulative;
        if (le == "+Inf") {
          saw_inf = true;
          inf_value = cumulative;
        }
      } else if (series == family + "_sum") {
        // Value already checked numeric.
      } else if (series == family + "_count") {
        if (!saw_inf) {
          errors.push_back(at + family + " has no +Inf bucket");
        } else if (static_cast<uint64_t>(value) != inf_value) {
          errors.push_back(at + family + "_count != +Inf bucket");
        }
      } else {
        errors.push_back(at + "sample " + series +
                         " does not belong to histogram " + family);
      }
    } else if (series != family) {
      errors.push_back(at + "sample " + series +
                       " does not belong to family " + family);
    }
  }
  return errors;
}

std::string JoinErrors(const std::vector<std::string>& errors) {
  std::string out;
  for (const std::string& e : errors) out += e + "\n";
  return out;
}

// ===========================================================================
// Gauge instrument.
// ===========================================================================

TEST(GaugeTest, SetAddMaxExchangeSemantics) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(5);
  EXPECT_EQ(g.Value(), 5);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 3);
  g.SetMax(10);
  EXPECT_EQ(g.Value(), 10);
  g.SetMax(7);  // Lower: no effect.
  EXPECT_EQ(g.Value(), 10);
  EXPECT_EQ(g.Exchange(0), 10);
  EXPECT_EQ(g.Value(), 0);
}

TEST(GaugeTest, AppearsInSnapshotTextAndJson) {
  MetricsRegistry reg;
  reg.GetGauge("test.depth")->Set(-3);
  reg.GetCounter("test.events")->Add(2);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.GaugeValue("test.depth"), -3);
  EXPECT_EQ(snap.GaugeValue("absent"), 0);
  EXPECT_NE(snap.ToText().find("test.depth -3"), std::string::npos)
      << snap.ToText();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.depth\": -3"), std::string::npos) << json;
}

TEST(GaugeTest, RegistryReturnsSamePointerPerName) {
  MetricsRegistry reg;
  Gauge* a = reg.GetGauge("g");
  Gauge* b = reg.GetGauge("g");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetGauge("other"));
}

// ===========================================================================
// HistogramDelta.
// ===========================================================================

TEST(HistogramDeltaTest, WindowPercentilesComeFromTheDeltaOnly) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(10);
  const HistogramSnapshot before = h.Snapshot();
  for (int i = 0; i < 100; ++i) h.Record(1000);
  const HistogramSnapshot after = h.Snapshot();

  const HistogramSnapshot d = HistogramDelta(after, before);
  EXPECT_EQ(d.count, 100u);
  EXPECT_EQ(d.sum, 100u * 1000u);
  // All delta mass sits in 1000's bucket; the bucket upper bound (1023)
  // clamps against the observed max.
  EXPECT_EQ(d.Percentile(50), 1000u);
  EXPECT_EQ(d.Percentile(99), 1000u);
  // The cumulative snapshot would have said p50 = 10; the window must not.
  EXPECT_LE(after.Percentile(50), 15u);
}

TEST(HistogramDeltaTest, EmptyWindowIsAllZero) {
  Histogram h;
  h.Record(42);
  const HistogramSnapshot s = h.Snapshot();
  const HistogramSnapshot d = HistogramDelta(s, s);
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum, 0u);
  EXPECT_EQ(d.Percentile(99), 0u);
}

// ===========================================================================
// Sampler ring.
// ===========================================================================

TEST(SamplerTest, RingCapacityAndMonotoneSeq) {
  MetricsRegistry reg;
  SamplerOptions so;
  so.registry = &reg;
  so.capacity = 4;
  Sampler sampler(so);
  for (int i = 1; i <= 10; ++i) {
    sampler.TickOnce(static_cast<double>(i));
  }
  EXPECT_EQ(sampler.samples_taken(), 10u);
  const std::vector<Sample> ring = sampler.Ring();
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.front().seq, 7u);
  EXPECT_EQ(ring.back().seq, 10u);
  for (size_t i = 1; i < ring.size(); ++i) {
    EXPECT_LT(ring[i - 1].time, ring[i].time);
  }
}

TEST(SamplerTest, ClockRestartRebasesInsteadOfCollapsing) {
  MetricsRegistry reg;
  SamplerOptions so;
  so.registry = &reg;
  Sampler sampler(so);
  // First run: t = 10, 20. Second run restarts its clock: t = 1, 2.
  sampler.TickOnce(10.0);
  sampler.TickOnce(20.0);
  sampler.TickOnce(1.0);
  sampler.TickOnce(2.0);
  const std::vector<Sample> ring = sampler.Ring();
  ASSERT_EQ(ring.size(), 4u);
  for (size_t i = 1; i < ring.size(); ++i) {
    EXPECT_LT(ring[i - 1].time, ring[i].time);
  }
  // Within-run spacing survives the rebase: the second run's two samples
  // are still 1.0 apart (not collapsed onto a nanosecond window).
  EXPECT_NEAR(ring[3].time - ring[2].time, 1.0, 1e-6);
}

TEST(SamplerTest, BackgroundThreadTicksAndStops) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("bg.events");
  SamplerOptions so;
  so.registry = &reg;
  so.interval_ms = 1;
  Sampler sampler(so);
  sampler.Start();
  // Poll instead of a fixed sleep: the only timing assumption is "a 1 ms
  // sampler takes at least 3 samples eventually".
  for (int spin = 0; spin < 10000 && sampler.samples_taken() < 3; ++spin) {
    c->Add(1);
    usleep(1000);
  }
  sampler.Stop();
  const uint64_t taken = sampler.samples_taken();
  EXPECT_GE(taken, 3u);
  usleep(5000);  // No further ticks after Stop.
  EXPECT_EQ(sampler.samples_taken(), taken);
}

// ===========================================================================
// StarvationWatchdog (driven by manual sampler ticks - no wall clock).
// ===========================================================================

TEST(WatchdogTest, RaisesAfterTwoWindowsAndDeactivates) {
  MetricsRegistry reg;
  Gauge* source = reg.GetGauge("test.consec_aborts");
  SamplerOptions so;
  so.registry = &reg;
  Sampler sampler(so);
  StarvationWatchdogOptions wo;
  wo.source_gauge = "test.consec_aborts";
  wo.threshold = 8;
  wo.min_windows = 2;
  sampler.AddStarvationWatchdog(wo);

  source->SetMax(12);
  sampler.TickOnce(1.0);  // Window 1 above threshold: streak starts.
  EXPECT_TRUE(sampler.alerts().empty());
  source->SetMax(9);
  sampler.TickOnce(2.0);  // Window 2 above: alert raises.
  std::vector<WatchdogAlert> alerts = sampler.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].active);
  EXPECT_EQ(alerts[0].peak, 12);
  EXPECT_EQ(alerts[0].first_seq, 1u);
  EXPECT_EQ(alerts[0].last_seq, 2u);
  source->SetMax(30);
  sampler.TickOnce(3.0);  // Still above: alert extends, peak rises.
  alerts = sampler.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].peak, 30);
  EXPECT_EQ(alerts[0].last_seq, 3u);
  sampler.TickOnce(4.0);  // Peak 0: deactivates.
  alerts = sampler.alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_FALSE(alerts[0].active);
  // The alert gauge and raise counter are published into the registry.
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("obs.starvation_alerts.test.consec_aborts"),
            1u);
  EXPECT_EQ(snap.GaugeValue("obs.starvation_alert.test.consec_aborts"), 0);
}

TEST(WatchdogTest, OneWindowBlipDoesNotAlert) {
  MetricsRegistry reg;
  Gauge* source = reg.GetGauge("test.blip");
  SamplerOptions so;
  so.registry = &reg;
  Sampler sampler(so);
  StarvationWatchdogOptions wo;
  wo.source_gauge = "test.blip";
  wo.threshold = 8;
  sampler.AddStarvationWatchdog(wo);
  for (int window = 1; window <= 6; ++window) {
    if (window % 2 == 1) source->SetMax(100);  // Alternating blips.
    sampler.TickOnce(static_cast<double>(window));
  }
  EXPECT_TRUE(sampler.alerts().empty());
}

TEST(WatchdogTest, SampleStillShowsTheWindowPeak) {
  // The snapshot is taken before the watchdog consumes the gauge, so the
  // ring shows the per-window peak while the live gauge reads 0 again.
  MetricsRegistry reg;
  Gauge* source = reg.GetGauge("test.peak");
  SamplerOptions so;
  so.registry = &reg;
  Sampler sampler(so);
  StarvationWatchdogOptions wo;
  wo.source_gauge = "test.peak";
  sampler.AddStarvationWatchdog(wo);
  source->SetMax(17);
  sampler.TickOnce(1.0);
  const std::vector<Sample> ring = sampler.Ring();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].snapshot.GaugeValue("test.peak"), 17);
  EXPECT_EQ(source->Value(), 0);
}

// ===========================================================================
// HTTP exporter over a real localhost socket.
// ===========================================================================

class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reg_.GetCounter("test.commits")->Add(7);
    reg_.GetGauge("test.depth")->Set(-3);
    Histogram* h = reg_.GetHistogram("test.latency_us");
    h->Record(0);
    h->Record(3);
    h->Record(100);
    h->Record(5000);
  }

  MetricsRegistry reg_;
};

TEST_F(HttpExporterTest, MetricsEndpointPassesPrometheusGrammar) {
  HttpExporterOptions ho;
  ho.registry = &reg_;
  ho.port = 0;
  HttpExporter exporter(ho);
  ASSERT_TRUE(exporter.Start());
  ASSERT_NE(exporter.port(), 0);

  const std::string response = HttpGet(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = BodyOf(response);
  const std::vector<std::string> errors = ValidatePrometheus(body);
  EXPECT_TRUE(errors.empty()) << JoinErrors(errors) << "--- body:\n" << body;
  EXPECT_NE(body.find("mdts_test_commits 7"), std::string::npos) << body;
  EXPECT_NE(body.find("mdts_test_depth -3"), std::string::npos) << body;
  EXPECT_NE(body.find("mdts_test_latency_us_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << body;
  exporter.Stop();
}

TEST_F(HttpExporterTest, StaticPrometheusTextIsValidToo) {
  // The same grammar check against the pure function, no socket involved.
  const std::string text = HttpExporter::PrometheusText(reg_.Snapshot());
  const std::vector<std::string> errors = ValidatePrometheus(text);
  EXPECT_TRUE(errors.empty()) << JoinErrors(errors) << text;
}

TEST_F(HttpExporterTest, JsonHealthzAndNotFound) {
  HttpExporterOptions ho;
  ho.registry = &reg_;
  ho.port = 0;
  HttpExporter exporter(ho);
  ASSERT_TRUE(exporter.Start());

  const std::string json = HttpGet(exporter.port(), "/metrics.json");
  EXPECT_NE(json.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(BodyOf(json).find("\"test.commits\": 7"), std::string::npos);

  const std::string health = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");

  const std::string missing = HttpGet(exporter.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  // /series.json without a sampler answers an empty, well-formed series.
  const std::string series = HttpGet(exporter.port(), "/series.json");
  EXPECT_NE(series.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(BodyOf(series).find("\"windows\": []"), std::string::npos)
      << BodyOf(series);
  exporter.Stop();
}

TEST_F(HttpExporterTest, SeriesEndpointHasMonotoneWindows) {
  SamplerOptions so;
  so.registry = &reg_;
  Sampler sampler(so);
  Counter* c = reg_.GetCounter("test.commits");
  for (int tick = 1; tick <= 5; ++tick) {
    c->Add(10);
    sampler.TickOnce(0.1 * tick);
  }
  HttpExporterOptions ho;
  ho.registry = &reg_;
  ho.sampler = &sampler;
  ho.port = 0;
  HttpExporter exporter(ho);
  ASSERT_TRUE(exporter.Start());
  const std::string body = BodyOf(HttpGet(exporter.port(), "/series.json"));
  exporter.Stop();

  // 5 samples = 4 windows; timestamps must be strictly increasing.
  size_t windows = 0;
  double last_t = -1.0;
  size_t pos = 0;
  while ((pos = body.find("\"t\": ", pos)) != std::string::npos) {
    const double t = std::strtod(body.c_str() + pos + 5, nullptr);
    EXPECT_GT(t, last_t) << body;
    last_t = t;
    ++windows;
    ++pos;
  }
  EXPECT_GE(windows, 3u) << body;
  EXPECT_EQ(windows, 4u) << body;
  EXPECT_NE(body.find("\"samples_taken\": 5"), std::string::npos) << body;
  // Counter rate: 10 added per 0.1 s window = 100/s.
  EXPECT_NE(body.find("\"test.commits\": 100"), std::string::npos) << body;
}

// ===========================================================================
// Concurrent scrapes: several clients hammer every endpoint while a live
// engine (metrics + flight recorder attached) keeps mutating the registry
// and the rings underneath. The exporter serves sequentially, so the
// property under test is that every interleaving still yields a complete,
// well-formed answer - no torn exposition, no empty response, and the
// Prometheus grammar holds on every single scrape.
// ===========================================================================

TEST(HttpExporterConcurrencyTest, ParallelScrapesUnderLiveEngineTraffic) {
  MetricsRegistry reg;
  FlightRecorderOptions fo;
  fo.rings = 4;
  fo.capacity = 128;
  fo.k = 3;
  FlightRecorder flight(fo);
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 4;
  eo.metrics = &reg;
  eo.flight = &flight;
  eo.phase_sample_shift = 0;
  ShardedMtkEngine engine(eo);

  HttpExporterOptions ho;
  ho.registry = &reg;
  ho.flight = &flight;
  ho.port = 0;
  HttpExporter exporter(ho);
  ASSERT_TRUE(exporter.Start());
  const uint16_t port = exporter.port();

  // Engine traffic: disjoint item ranges per worker, so transactions
  // conflict rarely and the registry/rings churn for the whole test.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  constexpr int kWorkers = 2;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&engine, &stop, w] {
      TxnId t = 1 + static_cast<TxnId>(w);
      while (!stop.load(std::memory_order_relaxed)) {
        const ItemId base = static_cast<ItemId>(w) * 64;
        bool alive = true;
        for (ItemId q = 0; q < 3 && alive; ++q) {
          const Op op{t, q == 0 ? OpType::kRead : OpType::kWrite,
                      base + (t + q) % 64};
          alive = engine.Process(op) != OpDecision::kReject;
        }
        if (alive) engine.CommitTxn(t);
        t += kWorkers;
      }
    });
  }

  // Scrapers: every endpoint, many times, from several threads at once.
  const std::string endpoints[] = {"/metrics", "/metrics.json",
                                   "/series.json", "/phases.json",
                                   "/flight.json", "/healthz"};
  std::atomic<uint64_t> bad_responses{0};
  std::vector<std::string> grammar_failures[3];
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 3; ++s) {
    scrapers.emplace_back([&, s] {
      for (int round = 0; round < 20; ++round) {
        const std::string& path = endpoints[(s + round) % 6];
        const std::string response = HttpGet(port, path);
        if (response.find("HTTP/1.1 200 OK") == std::string::npos) {
          bad_responses.fetch_add(1);
          continue;
        }
        const std::string body = BodyOf(response);
        if (body.empty()) bad_responses.fetch_add(1);
        if (path == "/metrics") {
          // Full grammar validation on every scrape of the text format.
          std::vector<std::string> errors = ValidatePrometheus(body);
          for (std::string& e : errors) {
            grammar_failures[s].push_back(std::move(e));
          }
        }
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();
  exporter.Stop();

  EXPECT_EQ(bad_responses.load(), 0u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_TRUE(grammar_failures[s].empty())
        << JoinErrors(grammar_failures[s]);
  }
  // The engine really was live underneath: it committed and recorded.
  EXPECT_GT(engine.stats().accepted, 0u);
  EXPECT_GT(flight.commits(), 0u);
}

// ===========================================================================
// End-to-end: a DMT(k) site crash trips the starvation watchdog,
// deterministically, on simulated time.
// ===========================================================================

DmtOptions CrashCell(MetricsRegistry* reg, Sampler* sampler) {
  // fault_sweep's crash cell: 4 sites, one mid-run crash/recovery plus a
  // later outage. Transactions homed on the dead site abort-and-retry
  // until it recovers, racking up consecutive aborts.
  DmtOptions options;
  options.k = 3;
  options.num_sites = 4;
  options.num_txns = 120;
  options.concurrency = 10;
  options.message_latency = 0.5;
  options.seed = 11;
  options.workload.num_items = 16;
  options.workload.min_ops = 2;
  options.workload.max_ops = 4;
  options.workload.read_fraction = 0.6;
  options.fault.crashes.push_back({1, 60.0, 140.0});
  options.fault.crashes.push_back({3, 220.0, 260.0});
  options.metrics = reg;
  options.sampler = sampler;
  options.sample_interval = 5.0;  // Simulated time units per window.
  return options;
}

struct CrashCellRun {
  uint64_t committed = 0;
  uint64_t samples = 0;
  int64_t ring_peak = 0;
  std::vector<WatchdogAlert> alerts;
};

CrashCellRun RunCrashCell(int64_t threshold) {
  MetricsRegistry reg;
  SamplerOptions so;
  so.registry = &reg;
  Sampler sampler(so);
  StarvationWatchdogOptions wo;
  wo.source_gauge = "dmt.max_consecutive_aborts";
  wo.threshold = threshold;
  wo.min_windows = 2;
  sampler.AddStarvationWatchdog(wo);

  const DmtResult r = RunDmtSimulation(CrashCell(&reg, &sampler));
  CrashCellRun out;
  out.committed = r.committed;
  out.samples = sampler.samples_taken();
  for (const Sample& s : sampler.Ring()) {
    const int64_t peak =
        s.snapshot.GaugeValue("dmt.max_consecutive_aborts");
    if (peak > out.ring_peak) out.ring_peak = peak;
  }
  out.alerts = sampler.alerts();
  return out;
}

TEST(DmtWatchdogTest, SiteCrashTripsTheAlertViaTheSamplerRing) {
  const CrashCellRun run = RunCrashCell(/*threshold=*/4);
  EXPECT_GT(run.committed, 0u);
  // The sim ticked the sampler on simulated time: enough windows for the
  // 5-unit interval over a run that outlives the 60..140 outage.
  EXPECT_GE(run.samples, 10u);
  // The ring itself recorded a windowed consecutive-abort peak above the
  // threshold (the snapshot is taken before the watchdog consumes it)...
  EXPECT_GT(run.ring_peak, 4) << "no starving window in the ring";
  // ...and the watchdog turned the sustained excess into an alert.
  ASSERT_FALSE(run.alerts.empty());
  const WatchdogAlert& first = run.alerts.front();
  EXPECT_EQ(first.source, "dmt.max_consecutive_aborts");
  EXPECT_GT(first.peak, 4);
  EXPECT_GE(first.last_seq, first.first_seq + 1);
}

TEST(DmtWatchdogTest, CrashCellAlertsAreDeterministic) {
  const CrashCellRun a = RunCrashCell(/*threshold=*/4);
  const CrashCellRun b = RunCrashCell(/*threshold=*/4);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.ring_peak, b.ring_peak);
  ASSERT_EQ(a.alerts.size(), b.alerts.size());
  for (size_t i = 0; i < a.alerts.size(); ++i) {
    EXPECT_EQ(a.alerts[i].first_seq, b.alerts[i].first_seq);
    EXPECT_EQ(a.alerts[i].last_seq, b.alerts[i].last_seq);
    EXPECT_EQ(a.alerts[i].peak, b.alerts[i].peak);
  }
}

TEST(DmtWatchdogTest, CleanRunRaisesNoAlert) {
  MetricsRegistry reg;
  SamplerOptions so;
  so.registry = &reg;
  Sampler sampler(so);
  StarvationWatchdogOptions wo;
  wo.source_gauge = "dmt.max_consecutive_aborts";
  wo.threshold = 8;
  sampler.AddStarvationWatchdog(wo);
  DmtOptions options = CrashCell(&reg, &sampler);
  options.fault = FaultPlan{};  // No faults...
  // ...and a read-only workload: R-R never conflicts, so nobody aborts,
  // let alone starves. (Even fault-free mixed workloads can starve a
  // retrying transaction behind a high-vector blocker - that is exactly
  // what the watchdog exists to surface, so it cannot be the calm cell.)
  options.workload.read_fraction = 1.0;
  const DmtResult r = RunDmtSimulation(options);
  EXPECT_EQ(r.committed + r.gave_up, options.num_txns);
  EXPECT_GE(sampler.samples_taken(), 3u);
  int64_t peak = 0;
  for (const Sample& s : sampler.Ring()) {
    const int64_t p = s.snapshot.GaugeValue("dmt.max_consecutive_aborts");
    if (p > peak) peak = p;
  }
  EXPECT_EQ(peak, 0);
  EXPECT_TRUE(sampler.alerts().empty());
}

}  // namespace
}  // namespace mdts
