#include "mvcc/mv_scheduler.h"

#include <memory>

#include "core/log.h"
#include "gtest/gtest.h"
#include "mvcc/mv_online.h"
#include "sched/mtk_online.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace mdts {
namespace {

MvMtkScheduler Make(size_t k = 3) {
  MvMtkOptions options;
  options.k = k;
  return MvMtkScheduler(options);
}

std::vector<OpDecision> RunOps(MvMtkScheduler* s, const Log& log) {
  std::vector<OpDecision> out;
  for (const Op& op : log.ops()) out.push_back(s->Process(op));
  return out;
}

TEST(MvSchedulerTest, EveryItemStartsWithInitialVersion) {
  auto s = Make();
  EXPECT_EQ(s.VersionCount(0), 1u);
  EXPECT_EQ(s.Process(Op{1, OpType::kRead, 0}), OpDecision::kAccept);
}

TEST(MvSchedulerTest, WritesCreateVersions) {
  auto s = Make();
  EXPECT_EQ(s.Process(Op{1, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_EQ(s.Process(Op{2, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_EQ(s.VersionCount(0), 3u);  // Initial + two writes.
  EXPECT_EQ(s.stats().versions_created, 2u);
}

TEST(MvSchedulerTest, OldReadServedByOldVersion) {
  // The flagship multiversion win: the read that single-version MT(k)
  // line-9-rejects is served by an older version here.
  //   W1[x] R2[x] R3[y] W2[y]: T3 < T2 and RT(x) = T2.
  //   R3[x]: single-version MT(3) rejects (see mtk_scheduler_test);
  //   multiversion serves T3 from a version it can order after.
  auto s = Make();
  const Log log = *Log::Parse("W1[x] R2[x] R3[y] W2[y]");
  for (auto d : RunOps(&s, log)) ASSERT_EQ(d, OpDecision::kAccept);
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 0}), OpDecision::kAccept);
  EXPECT_FALSE(s.IsAborted(3));
  EXPECT_TRUE(s.AuditMvsgAcyclic());
}

TEST(MvSchedulerTest, ReadsNeverAbortOnRandomWorkloads) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    WorkloadOptions w;
    w.num_txns = 8;
    w.num_items = 4;
    w.min_ops = 2;
    w.max_ops = 4;
    w.read_fraction = 0.6;
    w.seed = seed + 900;
    Log log = GenerateLog(w);
    auto s = Make();
    for (const Op& op : log.ops()) {
      if (s.IsAborted(op.txn)) continue;
      const OpDecision d = s.Process(op);
      if (op.type == OpType::kRead) {
        EXPECT_EQ(d, OpDecision::kAccept)
            << "read rejected: " << OpName(op) << " in " << log.ToString();
      }
    }
    EXPECT_EQ(s.stats().read_rejects, 0u);
  }
}

TEST(MvSchedulerTest, WriteFindsOlderSlotWhenNewestIsBlocked) {
  auto s = Make();
  // T1 writes x; T2 reads that version; T3 < T2 is fixed via y. T3 then
  // writes x: the newest slot (after T1's version) is blocked by reader
  // T2 (T3 < T2 already holds, but the rule needs T2 < T3 there), so the
  // two-phase placement slots T3's version BEFORE T1's instead - the
  // write is accepted with T3 < T1.
  ASSERT_EQ(s.Process(Op{1, OpType::kWrite, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{2, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{3, OpType::kRead, 1}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{2, OpType::kWrite, 1}), OpDecision::kAccept);
  ASSERT_TRUE(VectorLess(s.Ts(3), s.Ts(2)));
  EXPECT_EQ(s.Process(Op{3, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_TRUE(VectorLess(s.Ts(3), s.Ts(1)))
      << "T3's version must have been placed before T1's";
  EXPECT_EQ(s.VersionCount(0), 3u);
  EXPECT_TRUE(s.AuditMvsgAcyclic());
}

TEST(MvSchedulerTest, WriteRejectedWhenReaderOfInitialVersionIsAfter) {
  auto s = Make();
  // T4 reads the initial version of x; T5 < T4 is then fixed via z. T5
  // writing x has no feasible slot: every slot lies at or above the
  // initial version, whose reader T4 is already ordered after T5.
  ASSERT_EQ(s.Process(Op{4, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{5, OpType::kRead, 2}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{4, OpType::kWrite, 2}), OpDecision::kAccept);
  ASSERT_TRUE(VectorLess(s.Ts(5), s.Ts(4)));
  EXPECT_EQ(s.Process(Op{5, OpType::kWrite, 0}), OpDecision::kReject);
  EXPECT_TRUE(s.IsAborted(5));
  EXPECT_GT(s.stats().write_rejects, 0u);
}

TEST(MvSchedulerTest, MvsgAuditAcyclicOnRandomWorkloads) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions w;
    w.num_txns = 8;
    w.num_items = 4;
    w.min_ops = 1;
    w.max_ops = 4;
    w.read_fraction = 0.5;
    w.seed = seed + 700;
    Log log = GenerateLog(w);
    auto s = Make((seed % 3) + 1);
    for (const Op& op : log.ops()) {
      if (!s.IsAborted(op.txn)) s.Process(op);
    }
    for (TxnId t = 1; t <= log.num_txns(); ++t) {
      if (!s.IsAborted(t)) s.CommitTxn(t);
    }
    EXPECT_TRUE(s.AuditMvsgAcyclic()) << "seed " << seed;
  }
}

TEST(MvSchedulerTest, RestartInvalidatesVersionsAndReads) {
  auto s = Make();
  ASSERT_EQ(s.Process(Op{1, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_EQ(s.VersionCount(0), 2u);
  // Force-abort T1 through a rejected write.
  ASSERT_EQ(s.Process(Op{2, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{3, OpType::kRead, 1}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{1, OpType::kWrite, 1}), OpDecision::kAccept);
  // T3 < T1 now holds; make T1 conflict so it aborts:
  // simplest: directly mark via a failing write is hard here; instead use
  // RestartTxn on an aborted txn path: reject write of T4 after ordering.
  // For this test just exercise RestartTxn's invalidation semantics:
  ASSERT_EQ(s.Process(Op{4, OpType::kRead, 2}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{5, OpType::kRead, 3}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{4, OpType::kWrite, 3}), OpDecision::kAccept);
  ASSERT_TRUE(VectorLess(s.Ts(5), s.Ts(4)));
  ASSERT_EQ(s.Process(Op{5, OpType::kWrite, 2}), OpDecision::kReject);
  ASSERT_TRUE(s.IsAborted(5));
  s.RestartTxn(5);
  EXPECT_FALSE(s.IsAborted(5));
  EXPECT_EQ(s.Process(Op{5, OpType::kRead, 0}), OpDecision::kAccept);
}

TEST(MvSchedulerTest, PruneReclaimsUnreadOldVersions) {
  auto s = Make();
  for (TxnId t = 1; t <= 5; ++t) {
    ASSERT_EQ(s.Process(Op{t, OpType::kWrite, 0}), OpDecision::kAccept);
    s.CommitTxn(t);
  }
  EXPECT_EQ(s.VersionCount(0), 6u);
  s.PruneVersions();
  // Only the newest committed version (and nothing older, since no one
  // read the older ones) survives.
  EXPECT_EQ(s.VersionCount(0), 1u);
}

TEST(MvSchedulerTest, PruneKeepsVersionsWithLiveReaders) {
  auto s = Make();
  ASSERT_EQ(s.Process(Op{1, OpType::kWrite, 0}), OpDecision::kAccept);
  s.CommitTxn(1);
  ASSERT_EQ(s.Process(Op{2, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{3, OpType::kWrite, 0}), OpDecision::kAccept);
  s.CommitTxn(3);
  s.PruneVersions();
  // T1's version still has live reader T2; the initial version is
  // reclaimable (no readers).
  EXPECT_EQ(s.VersionCount(0), 2u);
}

TEST(MvSchedulerTest, DumpVersionsListsChain) {
  auto s = Make();
  s.Process(Op{1, OpType::kWrite, 0});
  s.Process(Op{2, OpType::kRead, 0});
  std::string dump = s.DumpVersions(0);
  EXPECT_NE(dump.find("T1"), std::string::npos);
  EXPECT_NE(dump.find("readers: T2"), std::string::npos);
}

TEST(MvOnlineTest, SimulationCompletesAndAuditsClean) {
  MvMtkOptions options;
  options.k = 3;
  MvOnline s(options);
  SimOptions sim;
  sim.num_txns = 80;
  sim.concurrency = 8;
  sim.seed = 31;
  sim.workload.num_items = 6;
  sim.workload.min_ops = 2;
  sim.workload.max_ops = 4;
  sim.workload.read_fraction = 0.6;
  SimResult r = RunSimulation(&s, sim);
  EXPECT_EQ(r.committed + r.gave_up, 80u);
  EXPECT_GT(r.committed, 60u);
  // The one-copy-serializability audit over everything that committed.
  EXPECT_TRUE(s.inner().AuditMvsgAcyclic());
  EXPECT_EQ(s.inner().stats().read_rejects, 0u);
}

TEST(MvOnlineTest, FewerAbortsThanSingleVersionUnderReadHeavyLoad) {
  SimOptions sim;
  sim.num_txns = 150;
  sim.concurrency = 10;
  sim.seed = 17;
  sim.workload.num_items = 6;
  sim.workload.min_ops = 2;
  sim.workload.max_ops = 4;
  sim.workload.read_fraction = 0.8;  // Read-heavy: MVCC's sweet spot.

  MtkOptions so;
  so.k = 3;
  so.starvation_fix = true;
  MtkOnline single(so);
  SimResult rs = RunSimulation(&single, sim);

  MvMtkOptions mo;
  mo.k = 3;
  mo.starvation_fix = true;
  MvOnline multi(mo);
  SimResult rm = RunSimulation(&multi, sim);

  EXPECT_EQ(rm.committed, 150u);
  EXPECT_EQ(rm.gave_up, 0u);
  EXPECT_LT(rm.aborts, rs.aborts)
      << "multiversion should abort less under read-heavy contention "
      << "(single: " << rs.aborts << ", multi: " << rm.aborts << ")";
  EXPECT_TRUE(multi.inner().AuditMvsgAcyclic());
}

TEST(MvOnlineTest, WriterStarvationWithoutSeedFix) {
  // Without Section III-D-4 seeding, continuously arriving readers keep
  // floating later than a blocked writer's anchored vector and can starve
  // it; the seeded variant drives everything to commit. (This is the
  // multiversion analogue of MVTO's write-rejection weakness.)
  SimOptions sim;
  sim.num_txns = 150;
  sim.concurrency = 10;
  sim.seed = 17;
  sim.workload.num_items = 6;
  sim.workload.min_ops = 2;
  sim.workload.max_ops = 4;
  sim.workload.read_fraction = 0.8;

  MvMtkOptions unfixed;
  unfixed.k = 3;
  MvOnline without(unfixed);
  SimResult r_without = RunSimulation(&without, sim);

  MvMtkOptions fixed = unfixed;
  fixed.starvation_fix = true;
  MvOnline with(fixed);
  SimResult r_with = RunSimulation(&with, sim);

  EXPECT_EQ(r_with.gave_up, 0u);
  EXPECT_LT(r_with.aborts, r_without.aborts / 4)
      << "seeding should collapse the write-starvation abort count "
      << "(without: " << r_without.aborts << ", with: " << r_with.aborts
      << ")";
}

}  // namespace
}  // namespace mdts
