// Concurrency suite for the batched admission pipeline: mixed
// Process / ProcessBatch / CommitTxn / RestartTxn / CompactAll traffic from
// several threads must be race-clean (the suite is labeled engine-batch so
// the tsan-engine-batch preset can run exactly this binary under
// ThreadSanitizer) and must reconcile its counters afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "core/types.h"
#include "engine/sharded_engine.h"
#include "obs/metrics.h"

namespace mdts {
namespace {

// One worker driving `width` concurrent transactions, one operation per
// transaction per ProcessBatch call — the closed-loop shape the benchmark
// uses. Returns the number of transactions committed.
uint64_t BatchWorker(ShardedMtkEngine& engine, size_t t, size_t stride,
                     size_t width, uint32_t txns_to_commit, ItemId items,
                     size_t ops_per_txn, uint64_t seed) {
  std::mt19937_64 rng(seed);
  struct Slot {
    TxnId txn = 0;
    size_t done = 0;  // Accepted operations so far.
  };
  std::vector<Slot> slots(width);
  uint32_t started = 0;
  uint64_t committed = 0;
  for (Slot& s : slots) {
    s.txn = static_cast<TxnId>(1 + t + started * stride);
    ++started;
  }
  std::vector<Op> batch(width);
  std::vector<OpDecision> dec(width);
  uint64_t rounds = 0;
  while (committed < txns_to_commit) {
    if (++rounds > 2000000) {
      ADD_FAILURE() << "batch worker " << t << " starved at " << committed
                    << "/" << txns_to_commit;
      break;
    }
    for (size_t b = 0; b < width; ++b) {
      batch[b].txn = slots[b].txn;
      batch[b].type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
      batch[b].item = static_cast<ItemId>(rng() % items);
    }
    engine.ProcessBatch(std::span<const Op>(batch.data(), width), dec.data());
    for (size_t b = 0; b < width; ++b) {
      Slot& s = slots[b];
      if (dec[b] == OpDecision::kReject) {
        engine.RestartTxn(s.txn);
        s.done = 0;
        continue;
      }
      if (++s.done < ops_per_txn) continue;
      engine.CommitTxn(s.txn);
      ++committed;
      s.txn = static_cast<TxnId>(1 + t + started * stride);
      ++started;
      s.done = 0;
    }
  }
  return committed;
}

TEST(EngineBatchConcurrencyTest, MixedBatchPerOpAndCompactionTraffic) {
  constexpr size_t kBatchWorkers = 2;
  constexpr size_t kPerOpWorkers = 1;
  constexpr size_t kStride = kBatchWorkers + kPerOpWorkers;
  constexpr uint32_t kTxnsPerWorker = 400;
  constexpr ItemId kItems = 32;
  constexpr size_t kOpsPerTxn = 4;

  MetricsRegistry reg;
  EngineOptions eo;
  eo.k = 7;
  eo.num_shards = 8;
  eo.starvation_fix = true;
  eo.optimized_encoding = true;  // Exercise the hot-item paths under races.
  eo.hot_item_threshold = 8;
  eo.metrics = &reg;
  ShardedMtkEngine engine(eo);

  std::atomic<uint64_t> committed{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kBatchWorkers; ++t) {
    threads.emplace_back([&engine, &committed, t] {
      committed += BatchWorker(engine, t, kStride, /*width=*/8,
                               kTxnsPerWorker, kItems, kOpsPerTxn, 900 + t);
    });
  }
  for (size_t t = kBatchWorkers; t < kStride; ++t) {
    threads.emplace_back([&engine, &committed, t] {
      // Per-op closed loop sharing the same items and shard set.
      std::mt19937_64 rng(900 + t);
      for (uint32_t n = 0; n < kTxnsPerWorker; ++n) {
        const TxnId txn = static_cast<TxnId>(1 + t + n * kStride);
        size_t attempts = 0;
        for (;;) {
          // Generous bound: on a loaded single-core machine one per-op
          // transaction can lose many scheduling rounds to the 16
          // concurrent batch transactions before making progress.
          ASSERT_LT(++attempts, 2000000u) << "txn " << txn << " starved";
          bool ok = true;
          for (size_t o = 0; o < kOpsPerTxn && ok; ++o) {
            Op op;
            op.txn = txn;
            op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
            op.item = static_cast<ItemId>(rng() % kItems);
            ok = engine.Process(op) != OpDecision::kReject;
          }
          if (ok) {
            engine.CommitTxn(txn);
            ++committed;
            break;
          }
          engine.RestartTxn(txn);
        }
      }
    });
  }
  // Churn worker: stop-the-world compactions, stats merges and vector
  // snapshots racing the admission traffic.
  threads.emplace_back([&engine, &done] {
    uint64_t spins = 0;
    while (!done.load(std::memory_order_acquire)) {
      engine.CompactAll();
      (void)engine.stats();
      (void)engine.TsSnapshot(kVirtualTxn);
      (void)engine.IsCommitted(1 + (spins % 64));
      ++spins;
      std::this_thread::yield();
    }
  });
  for (size_t t = 0; t < kStride; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  threads.back().join();
  // The churn thread may never get scheduled on a loaded single-core
  // machine before the workers finish; compact once so the stats
  // assertions below are deterministic.
  engine.CompactAll();

  // Batch workers check their quota once per round, so the last round can
  // commit up to width - 1 extra transactions.
  EXPECT_GE(committed.load(), kStride * kTxnsPerWorker);
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.reject_reasons.total(), st.rejected);
  EXPECT_GT(st.batches, 0u);
  EXPECT_GT(st.batch_ops, st.batches);  // Batch workers used width 8.
  EXPECT_GT(st.hot_encodings, 0u);
  EXPECT_GT(st.compactions, 0u);
  // Every decided operation took exactly one covered lock round.
  EXPECT_EQ(st.accepted + st.ignored_writes + st.rejected,
            st.single_shard_ops + st.cross_shard_ops);
  // Registry mirrors flushed per batch must agree with the shard stats.
  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("engine.accepted"), st.accepted);
  EXPECT_EQ(snap.CounterValue("engine.batches"), st.batches);
  EXPECT_EQ(snap.CounterValue("engine.batch_ops"), st.batch_ops);
  EXPECT_EQ(snap.CounterValue("engine.hot_encodings"), st.hot_encodings);
  EXPECT_EQ(snap.CounterSum("engine.rejected."), st.rejected);
}

TEST(EngineBatchConcurrencyTest, ConcurrentBatchesOnDisjointPartitions) {
  constexpr size_t kThreads = 4;
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = kThreads;
  eo.compact_every = 128;
  ShardedMtkEngine engine(eo);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      // Thread t's transactions and items all map to shard t, so each batch
      // should stay on the single-shard lockset.
      std::vector<Op> batch;
      std::vector<OpDecision> dec(8);
      for (uint32_t n = 0; n < 500; ++n) {
        const TxnId txn = static_cast<TxnId>((n + 1) * kThreads + t);
        batch.clear();
        for (uint32_t o = 0; o < 8; ++o) {
          const ItemId item =
              static_cast<ItemId>(((n * 8 + o) % 16) * kThreads + t);
          batch.push_back(Op{txn, o % 2 == 0 ? OpType::kRead : OpType::kWrite,
                             item});
        }
        const size_t acc = engine.ProcessBatch(
            std::span<const Op>(batch.data(), batch.size()), dec.data());
        ASSERT_EQ(acc, batch.size());
        engine.CommitTxn(txn);
      }
    });
  }
  for (auto& th : threads) th.join();

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.accepted, kThreads * 500 * 8);
  EXPECT_EQ(st.cross_shard_ops, 0u);
  EXPECT_EQ(st.batches, kThreads * 500);
  EXPECT_EQ(st.batch_ops, kThreads * 500 * 8);
}

// Regression test for the batched-admission livelock collapse: a single
// write-heavy closed loop at batch width 32 over 64 items used to spin
// forever with every round aborting every transaction. The guardrail must
// detect the commit-free streak, serialize admission behind a champion
// (counted in engine.batch_fallbacks, rejects tagged kBatchThrottled) and
// restore forward progress, without breaking the op-accounting invariant.
TEST(EngineBatchConcurrencyTest, LivelockGuardrailRestoresForwardProgress) {
  constexpr size_t kWidth = 32;
  constexpr ItemId kItems = 64;
  // Long all-write transactions: a commit needs 32 consecutive accepted
  // rounds for one slot, so the streak of commit-free batches that used to
  // spin forever actually forms.
  constexpr size_t kOpsPerTxn = 32;
  constexpr uint32_t kTarget = 30;

  MetricsRegistry reg;
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 4;
  eo.starvation_fix = true;
  eo.batch_fallback_rounds = 8;  // Short streak so the test stays fast.
  eo.metrics = &reg;
  ShardedMtkEngine engine(eo);

  std::mt19937_64 rng(4242);
  struct Slot {
    TxnId txn = 0;
    size_t done = 0;
  };
  std::vector<Slot> slots(kWidth);
  uint32_t started = 0;
  for (Slot& s : slots) s.txn = static_cast<TxnId>(++started);
  std::vector<Op> batch(kWidth);
  std::vector<OpDecision> dec(kWidth);
  uint64_t committed = 0;
  uint64_t rounds = 0;
  while (committed < kTarget) {
    ASSERT_LT(++rounds, 2000000u)
        << "livelocked: " << committed << "/" << kTarget << " commits";
    for (size_t b = 0; b < kWidth; ++b) {
      batch[b].txn = slots[b].txn;
      batch[b].type = OpType::kWrite;  // All-write: the collapse shape.
      batch[b].item = static_cast<ItemId>(rng() % kItems);
    }
    engine.ProcessBatch(std::span<const Op>(batch.data(), kWidth),
                        dec.data());
    for (size_t b = 0; b < kWidth; ++b) {
      Slot& s = slots[b];
      if (dec[b] == OpDecision::kReject) {
        engine.RestartTxn(s.txn);
        s.done = 0;
        continue;
      }
      if (++s.done < kOpsPerTxn) continue;
      engine.CommitTxn(s.txn);
      ++committed;
      s.txn = static_cast<TxnId>(++started);
      s.done = 0;
    }
  }

  const EngineStats st = engine.stats();
  EXPECT_GT(st.batch_fallbacks, 0u) << "the guardrail never engaged";
  EXPECT_GT(st.reject_reasons[AbortReason::kBatchThrottled], 0u);
  EXPECT_EQ(st.reject_reasons.total(), st.rejected);
  // Throttled operations still count as decided admission traffic.
  EXPECT_EQ(st.accepted + st.ignored_writes + st.rejected,
            st.single_shard_ops + st.cross_shard_ops);
  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("engine.batch_fallbacks"), st.batch_fallbacks);
  EXPECT_EQ(snap.CounterValue("engine.rejected.batch_throttled"),
            st.reject_reasons[AbortReason::kBatchThrottled]);
}

}  // namespace
}  // namespace mdts
