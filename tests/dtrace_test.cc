// Distributed tracing tests: the per-site SpanRing, the PathCollector,
// and the DMT(k) causal tracer end to end - the leak invariant
// (spans_opened == spans_closed, even across crashes, lease reclaims and
// duplicate storms), exact critical-path reconciliation (the segment
// classes partition each transaction's timeline, so per-class sums
// telescope to the end-to-end latency in integer simulated microseconds),
// parent-covers-child and send-happens-before-receive on every hop,
// Definition-6 definedness monotonicity, bit-identical determinism of a
// traced run against an untraced one, and /paths.json over a REAL
// localhost socket.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "classify/classes.h"
#include "dist/dmt_system.h"
#include "gtest/gtest.h"
#include "obs/dspan.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"

namespace mdts {
namespace {

// ===========================================================================
// Minimal HTTP client: one blocking GET against the exporter's real socket.
// ===========================================================================

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// ===========================================================================

DmtOptions BaseOptions(uint64_t seed) {
  DmtOptions options;
  options.k = 3;
  options.num_sites = 3;
  options.num_txns = 40;
  options.concurrency = 6;
  options.message_latency = 0.5;
  options.mean_think_time = 1.0;
  options.restart_delay = 3.0;
  options.seed = seed;
  options.workload.num_items = 9;
  options.workload.min_ops = 2;
  options.workload.max_ops = 3;
  options.workload.read_fraction = 0.6;
  return options;
}

/// The tracer's structural invariants over one retained record:
///  - segment spans are children of the root, tile [start_us, end_us]
///    with no gaps or overlaps, and their per-class sums equal both
///    seg_us and the end-to-end latency EXACTLY (integer simulated us);
///  - every hop's parent is a segment span that covers it, and the send
///    happens-before the receive;
///  - within one incarnation the hops' defined counts never shrink in
///    (send time, id) order (Definition 6 refines the order
///    monotonically).
void CheckRecord(const TxnPathRecord& t) {
  std::set<uint64_t> ids;
  std::map<uint64_t, const DistSpan*> segs_by_id;
  std::vector<const DistSpan*> segs, hops;
  for (const DistSpan& s : t.spans) {
    EXPECT_TRUE(ids.insert(s.id).second) << "T" << t.txn << ": dup id";
    EXPECT_EQ(s.txn, t.txn);
    (s.hop ? hops : segs).push_back(&s);
    if (!s.hop) segs_by_id[s.id] = &s;
  }
  auto by_start = [](const DistSpan* a, const DistSpan* b) {
    return a->start_us != b->start_us ? a->start_us < b->start_us
                                      : a->id < b->id;
  };
  std::sort(segs.begin(), segs.end(), by_start);
  std::sort(hops.begin(), hops.end(), by_start);

  ASSERT_FALSE(segs.empty()) << "T" << t.txn;
  uint64_t seg_us[kNumDistSegments] = {};
  for (size_t i = 0; i < segs.size(); ++i) {
    const DistSpan& s = *segs[i];
    EXPECT_EQ(s.parent, t.root) << "T" << t.txn;
    EXPECT_LE(s.start_us, s.end_us) << "T" << t.txn;
    if (i > 0) {
      EXPECT_EQ(segs[i - 1]->end_us, s.start_us)
          << "T" << t.txn << ": segments do not tile";
    }
    seg_us[static_cast<size_t>(s.segment)] += s.end_us - s.start_us;
  }
  EXPECT_EQ(segs.front()->start_us, t.start_us) << "T" << t.txn;
  EXPECT_EQ(segs.back()->end_us, t.end_us) << "T" << t.txn;
  uint64_t total = 0;
  for (size_t c = 0; c < kNumDistSegments; ++c) {
    EXPECT_EQ(seg_us[c], t.seg_us[c]) << "T" << t.txn << " class " << c;
    total += seg_us[c];
  }
  EXPECT_EQ(total, t.latency_us()) << "T" << t.txn;

  std::map<uint32_t, uint8_t> defined_floor;  // Per incarnation.
  for (const DistSpan* h : hops) {
    EXPECT_LE(h->start_us, h->end_us)
        << "T" << t.txn << ": receive precedes send";
    auto it = segs_by_id.find(h->parent);
    ASSERT_NE(it, segs_by_id.end())
        << "T" << t.txn << ": hop " << h->id << " parent missing";
    EXPECT_LE(it->second->start_us, h->start_us) << "T" << t.txn;
    EXPECT_GE(it->second->end_us, h->end_us) << "T" << t.txn;
    uint8_t& floor = defined_floor[h->incarnation];
    EXPECT_GE(h->defined, floor)
        << "T" << t.txn << ": defined count shrank within incarnation "
        << h->incarnation;
    floor = std::max(floor, h->defined);
  }
}

// ===========================================================================
// SpanRing.
// ===========================================================================

DistSpan MakeSpan(uint64_t id, uint32_t site, bool hop) {
  DistSpan s;
  s.id = id;
  s.parent = id / 2;
  s.txn = id % 7;
  s.incarnation = static_cast<uint32_t>(id % 3);
  s.site = site;
  s.segment = static_cast<DistSegment>(id % kNumDistSegments);
  s.hop = hop;
  s.aborted = id % 5 == 0;
  s.start_us = 10 * id;
  s.end_us = 10 * id + 4;
  s.defined = static_cast<uint8_t>(id % 4);
  return s;
}

TEST(SpanRingTest, RoundTripsEveryField) {
  SpanRingOptions sro;
  sro.rings = 2;
  sro.capacity = 8;
  SpanRing ring(sro);
  const DistSpan in = MakeSpan(42, 1, true);
  ring.Record(in.site, in);
  const std::vector<DistSpan> out = ring.Drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, in.id);
  EXPECT_EQ(out[0].parent, in.parent);
  EXPECT_EQ(out[0].txn, in.txn);
  EXPECT_EQ(out[0].incarnation, in.incarnation);
  EXPECT_EQ(out[0].site, in.site);
  EXPECT_EQ(out[0].segment, in.segment);
  EXPECT_EQ(out[0].hop, in.hop);
  EXPECT_EQ(out[0].aborted, in.aborted);
  EXPECT_EQ(out[0].start_us, in.start_us);
  EXPECT_EQ(out[0].end_us, in.end_us);
  EXPECT_EQ(out[0].defined, in.defined);
}

TEST(SpanRingTest, WrapsKeepingTheNewestAndCountsLifetimeTotals) {
  SpanRingOptions sro;
  sro.rings = 1;
  sro.capacity = 8;
  SpanRing ring(sro);
  for (uint64_t id = 1; id <= 100; ++id) ring.Record(0, MakeSpan(id, 0, id % 2 == 0));
  const std::vector<DistSpan> out = ring.Drain();
  ASSERT_EQ(out.size(), 8u);  // Bounded by capacity...
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, 93 + i);  // ...retaining the newest, sorted by id.
  }
  EXPECT_EQ(ring.recorded(), 100u);  // Lifetime totals are not bounded.
  EXPECT_EQ(ring.hops(), 50u);
  EXPECT_EQ(ring.aborted(), 20u);
}

TEST(SpanRingTest, SitesMapToRingsSoOneSiteCannotEvictAnother) {
  SpanRingOptions sro;
  sro.rings = 2;
  sro.capacity = 4;
  SpanRing ring(sro);
  for (uint64_t id = 1; id <= 50; ++id) ring.Record(0, MakeSpan(id, 0, false));
  ring.Record(1, MakeSpan(1000, 1, false));  // Site 1 -> the other ring.
  std::vector<DistSpan> out = ring.Drain();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.back().id, 1000u);  // Survived site 0's churn.
}

TEST(SpanRingTest, ConcurrentDrainNeverObservesTornSlots) {
  // One writer hammering a tiny ring, one reader draining concurrently:
  // the seqlock must yield only fully written spans (every drained span
  // matches what MakeSpan(id) wrote - a torn slot would mix two ids'
  // fields). The generation check (id -> fields) is what makes tearing
  // observable.
  SpanRingOptions sro;
  sro.rings = 1;
  sro.capacity = 4;
  SpanRing ring(sro);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t id = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.Record(0, MakeSpan(id, 0, id % 2 == 0));
      ++id;
    }
  });
  for (int round = 0; round < 2000; ++round) {
    for (const DistSpan& s : ring.Drain()) {
      const DistSpan want = MakeSpan(s.id, 0, s.id % 2 == 0);
      ASSERT_EQ(s.parent, want.parent) << "torn slot, id=" << s.id;
      ASSERT_EQ(s.start_us, want.start_us) << "torn slot, id=" << s.id;
      ASSERT_EQ(s.end_us, want.end_us) << "torn slot, id=" << s.id;
      ASSERT_EQ(s.txn, want.txn) << "torn slot, id=" << s.id;
      ASSERT_EQ(s.defined, want.defined) << "torn slot, id=" << s.id;
    }
  }
  stop.store(true);
  writer.join();
}

// ===========================================================================
// PathCollector.
// ===========================================================================

TxnPathRecord MakeRecord(TxnId txn, uint64_t latency_us, bool committed) {
  TxnPathRecord t;
  t.txn = txn;
  t.committed = committed;
  t.attempts = 1;
  t.root = txn * 100;
  t.start_us = 1000;
  t.end_us = 1000 + latency_us;
  t.seg_us[static_cast<size_t>(DistSegment::kProcessing)] = latency_us;
  t.k = 3;
  return t;
}

TEST(PathCollectorTest, RetainsTopNSlowestButAggregatesEverything) {
  PathCollector collector(4);
  for (TxnId txn = 1; txn <= 20; ++txn) {
    collector.Add(MakeRecord(txn, 10 * txn, txn % 3 != 0));
  }
  const std::vector<TxnPathRecord> slowest = collector.Slowest();
  ASSERT_EQ(slowest.size(), 4u);  // Bounded by top_n...
  for (size_t i = 0; i < slowest.size(); ++i) {
    EXPECT_EQ(slowest[i].latency_us(), (20 - i) * 10);  // ...slowest first.
  }
  const PathCollector::Aggregates agg = collector.aggregates();
  EXPECT_EQ(agg.paths, 20u);  // Aggregates cover every record added.
  EXPECT_EQ(agg.committed, 14u);
  EXPECT_EQ(agg.total_us, 10u * (20 * 21 / 2));
  EXPECT_EQ(agg.seg_us[static_cast<size_t>(DistSegment::kProcessing)],
            agg.total_us);

  collector.Clear();
  EXPECT_TRUE(collector.Slowest().empty());
  EXPECT_EQ(collector.aggregates().paths, 0u);
}

// ===========================================================================
// The DMT(k) tracer end to end.
// ===========================================================================

TEST(DmtTraceTest, TracingDoesNotPerturbTheSimulation) {
  // The tracer draws no randomness, schedules no events and changes no
  // delivery order, so a traced run must be BIT-IDENTICAL to an untraced
  // one - determinism is the property that makes every other test here
  // reproducible.
  DmtOptions options = BaseOptions(5);
  options.fault.drop_rate = 0.1;
  options.fault.jitter = 0.3;
  options.fault.duplicate_rate = 0.1;
  const DmtResult plain = RunDmtSimulation(options);

  SpanRingOptions sro;
  sro.rings = 4;
  sro.capacity = 256;
  SpanRing spans(sro);
  PathCollector paths(8);
  options.spans = &spans;
  options.paths = &paths;
  const DmtResult traced = RunDmtSimulation(options);

  EXPECT_EQ(plain.committed, traced.committed);
  EXPECT_EQ(plain.aborts, traced.aborts);
  EXPECT_EQ(plain.gave_up, traced.gave_up);
  EXPECT_EQ(plain.messages_sent, traced.messages_sent);
  EXPECT_EQ(plain.lock_waits, traced.lock_waits);
  EXPECT_EQ(plain.messages_dropped, traced.messages_dropped);
  EXPECT_DOUBLE_EQ(plain.makespan, traced.makespan);
  EXPECT_EQ(plain.committed_history.ToString(),
            traced.committed_history.ToString());
  EXPECT_EQ(plain.spans_opened, 0u);  // Untraced run records nothing.
  EXPECT_GT(traced.spans_opened, 0u);
}

TEST(DmtTraceTest, CleanRunPathsReconcileExactly) {
  DmtOptions options = BaseOptions(3);
  SpanRingOptions sro;
  sro.rings = 4;
  sro.capacity = 1024;
  SpanRing spans(sro);
  PathCollector paths(64);
  options.spans = &spans;
  options.paths = &paths;
  const DmtResult r = RunDmtSimulation(options);

  EXPECT_EQ(r.committed + r.gave_up, options.num_txns);
  EXPECT_EQ(r.spans_opened, r.spans_closed);  // The leak invariant.
  EXPECT_EQ(r.spans_aborted, r.aborts);       // One aborted close per abort.
  EXPECT_EQ(r.paths_extracted, r.committed + r.gave_up);
  uint64_t total = 0;
  for (size_t c = 0; c < kNumDistSegments; ++c) total += r.path_seg_us[c];
  EXPECT_EQ(total, r.path_total_us);  // Classes partition the timelines.

  const PathCollector::Aggregates agg = paths.aggregates();
  EXPECT_EQ(agg.paths, r.paths_extracted);
  EXPECT_EQ(agg.committed, r.committed);
  EXPECT_EQ(agg.total_us, r.path_total_us);
  for (size_t c = 0; c < kNumDistSegments; ++c) {
    EXPECT_EQ(agg.seg_us[c], r.path_seg_us[c]);
  }
  const std::vector<TxnPathRecord> slowest = paths.Slowest();
  ASSERT_FALSE(slowest.empty());
  for (const TxnPathRecord& t : slowest) CheckRecord(t);
  // Every closed span lands in the ring except the per-transaction root,
  // which closes bookkeeping-only at path extraction.
  EXPECT_EQ(spans.recorded(), r.spans_closed - r.paths_extracted);
}

TEST(DmtTraceTest, CrashClosesOpenSpansAsAbortedNeverLeaks) {
  // A site crash wipes its lock tables mid-flight: transactions blocked
  // there abort via lease expiry / timeouts / down-site rejections. Every
  // segment span open at such an abort must be closed-as-aborted - the
  // opened == closed invariant holding under crashes is the point.
  DmtOptions options = BaseOptions(9);
  options.num_txns = 30;
  options.fault.crashes.push_back({1, 20.0, 35.0});
  SpanRingOptions sro;
  sro.rings = 4;
  sro.capacity = 1024;
  SpanRing spans(sro);
  PathCollector paths(32);
  options.spans = &spans;
  options.paths = &paths;
  const DmtResult r = RunDmtSimulation(options);

  EXPECT_EQ(r.committed + r.gave_up, 30u);
  EXPECT_GT(r.aborts, 0u);  // The crash must actually bite.
  EXPECT_EQ(r.spans_opened, r.spans_closed);
  EXPECT_EQ(r.spans_aborted, r.aborts);
  EXPECT_GT(r.spans_aborted, 0u);
  EXPECT_EQ(spans.aborted(), r.spans_aborted);
  for (const TxnPathRecord& t : paths.Slowest()) {
    CheckRecord(t);
    // Crash-driven retries surface as site_down_retry / backoff segments
    // on the slow paths; the record keeps attempts honest.
    EXPECT_GE(t.attempts, 1u);
  }
}

TEST(DmtTraceTest, DuplicateStormsAreDedupedNotDoubleCounted) {
  // Duplicated deliveries (and re-sent requests racing their jittered
  // originals) must not inflate the trace: only the first delivery that
  // matches the sender's still-open segment becomes a hop, the rest are
  // counted as dup_hops_ignored. CheckRecord's parent-covers-child pass
  // is what a stale hop would break.
  DmtOptions options = BaseOptions(7);
  options.fault.duplicate_rate = 0.4;
  options.fault.jitter = 0.5;
  PathCollector paths(32);
  options.paths = &paths;
  const DmtResult r = RunDmtSimulation(options);

  EXPECT_GT(r.messages_duplicated, 0u);
  EXPECT_GT(r.dup_hops_ignored, 0u);
  EXPECT_EQ(r.spans_opened, r.spans_closed);
  EXPECT_EQ(r.spans_aborted, r.aborts);
  for (const TxnPathRecord& t : paths.Slowest()) CheckRecord(t);
}

TEST(DmtTraceTest, SeedSweepSpansNeverLeakUnderFaults) {
  // The durability-style property sweep: 50 seeded configurations mixing
  // drops, duplicates, jitter, crashes and counter sync (the same grid as
  // dist_test's DSR sweep), each asserting the leak invariant, the abort
  // accounting, one extracted path per finished transaction and exact
  // critical-path reconciliation on every retained record.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    DmtOptions options = BaseOptions(seed * 17 + 1);
    options.num_txns = 24;
    options.num_sites = 2 + seed % 3;
    options.workload.num_items = 6;  // Contention.
    if (seed % 3 == 0) options.counter_sync_interval = 4.0;
    if (seed % 2 == 0) {
      options.fault.drop_rate =
          0.05 + 0.15 * static_cast<double>(seed % 4) / 3.0;
      options.fault.jitter = 0.3;
    }
    if (seed % 4 == 1) options.fault.duplicate_rate = 0.1;
    if (seed % 5 == 0) {
      options.fault.crashes.push_back(
          {static_cast<uint32_t>(seed % options.num_sites), 30.0,
           30.0 + 10.0 * static_cast<double>(seed % 7)});
    }
    SpanRingOptions sro;
    sro.rings = 4;
    sro.capacity = 512;
    SpanRing spans(sro);
    PathCollector paths(8);
    options.spans = &spans;
    options.paths = &paths;
    const DmtResult r = RunDmtSimulation(options);

    EXPECT_EQ(r.committed + r.gave_up, 24u) << "seed=" << seed;
    EXPECT_EQ(r.spans_opened, r.spans_closed) << "seed=" << seed;
    EXPECT_EQ(r.spans_aborted, r.aborts) << "seed=" << seed;
    EXPECT_EQ(r.paths_extracted, r.committed + r.gave_up) << "seed=" << seed;
    uint64_t total = 0;
    for (size_t c = 0; c < kNumDistSegments; ++c) total += r.path_seg_us[c];
    EXPECT_EQ(total, r.path_total_us) << "seed=" << seed;
    EXPECT_TRUE(IsDsr(r.committed_history)) << "seed=" << seed;
    for (const TxnPathRecord& t : paths.Slowest()) CheckRecord(t);
  }
}

TEST(DmtTraceTest, SamplingTracesExactlyTheSelectedTransactions) {
  // trace_sample_shift = 2 deterministically samples txn ids divisible by
  // 4 - no RNG drawn, so the simulation stays bit-identical - and every
  // sampled transaction keeps the full reconciliation guarantees while
  // unsampled ones record nothing.
  DmtOptions options = BaseOptions(5);
  const DmtResult plain = RunDmtSimulation(options);
  PathCollector paths(64);
  options.paths = &paths;
  options.trace_sample_shift = 2;
  const DmtResult sampled = RunDmtSimulation(options);

  EXPECT_EQ(plain.committed, sampled.committed);
  EXPECT_DOUBLE_EQ(plain.makespan, sampled.makespan);
  EXPECT_EQ(sampled.paths_extracted, 10u);  // Txns 4, 8, ..., 40.
  EXPECT_EQ(sampled.spans_opened, sampled.spans_closed);
  const std::vector<TxnPathRecord> slowest = paths.Slowest();
  EXPECT_EQ(slowest.size(), 10u);
  for (const TxnPathRecord& t : slowest) {
    EXPECT_EQ(t.txn % 4, 0u);
    CheckRecord(t);
  }
}

TEST(DmtTraceTest, RegistryCountersReconcileWithTheResult) {
  DmtOptions options = BaseOptions(11);
  options.fault.drop_rate = 0.1;
  options.fault.jitter = 0.3;
  MetricsRegistry registry;
  options.metrics = &registry;
  PathCollector paths(8);
  options.paths = &paths;
  const DmtResult r = RunDmtSimulation(options);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("dmt.spans_opened"), r.spans_opened);
  EXPECT_EQ(snap.CounterValue("dmt.spans_closed"), r.spans_closed);
  EXPECT_EQ(snap.CounterValue("dmt.spans_aborted"), r.spans_aborted);
  EXPECT_EQ(snap.CounterValue("dmt.hops_recorded"), r.hops_recorded);
  EXPECT_EQ(snap.CounterValue("dmt.dup_hops_ignored"), r.dup_hops_ignored);
  EXPECT_EQ(snap.CounterValue("dmt.paths_extracted"), r.paths_extracted);
  EXPECT_EQ(snap.CounterValue("dmt.critical_path.total_us"),
            r.path_total_us);
  uint64_t by_class = 0;
  for (size_t c = 0; c < kNumDistSegments; ++c) {
    by_class += snap.CounterValue(
        std::string("dmt.critical_path.") +
        DistSegmentName(static_cast<DistSegment>(c)) + "_us");
  }
  EXPECT_EQ(by_class, r.path_total_us);
  // The dmt.path.* histograms record one sample per nonzero segment.
  uint64_t hist_sum = 0;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind("dmt.path.", 0) == 0) hist_sum += h.sum;
  }
  EXPECT_EQ(hist_sum, r.path_total_us);

  // An untraced run must leave the tracer instruments unregistered.
  MetricsRegistry untraced;
  DmtOptions plain = BaseOptions(11);
  plain.metrics = &untraced;
  RunDmtSimulation(plain);
  EXPECT_EQ(untraced.Snapshot().CounterValue("dmt.spans_opened"), 0u);
}

TEST(DmtTraceTest, PathsJsonServedOverARealSocket) {
  DmtOptions options = BaseOptions(13);
  PathCollector paths(8);
  options.paths = &paths;
  RunDmtSimulation(options);

  MetricsRegistry registry;
  HttpExporterOptions ho;
  ho.registry = &registry;
  ho.port = 0;
  ho.paths = &paths;
  HttpExporter exporter(ho);
  ASSERT_TRUE(exporter.Start());
  ASSERT_NE(exporter.port(), 0);

  const std::string response = HttpGet(exporter.port(), "/paths.json");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = BodyOf(response);
  EXPECT_EQ(body, paths.ToJson());
  EXPECT_NE(body.find("\"aggregates\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"critical_path_us\""), std::string::npos) << body;
  exporter.Stop();

  // Without a collector the endpoint degrades to an explicit empty body,
  // not a 404 - mdtop treats it as "no paths yet".
  HttpExporterOptions bare;
  bare.registry = &registry;
  bare.port = 0;
  HttpExporter empty(bare);
  ASSERT_TRUE(empty.Start());
  const std::string none = BodyOf(HttpGet(empty.port(), "/paths.json"));
  EXPECT_NE(none.find("\"paths\": 0"), std::string::npos) << none;
  empty.Stop();
}

}  // namespace
}  // namespace mdts
