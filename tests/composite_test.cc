#include "composite/mtk_plus.h"

#include "classify/classes.h"
#include "composite/mtk_plus_online.h"
#include "composite/naive_union.h"
#include "core/log.h"
#include "core/recognizer.h"
#include "sim/simulator.h"
#include "gtest/gtest.h"
#include "workload/enumerate.h"
#include "workload/generator.h"

namespace mdts {
namespace {

Log L(const char* text) { return *Log::Parse(text); }

// --- Union semantics of the naive construction ---

TEST(NaiveUnionTest, AcceptsLogInAnySubclass) {
  // Example 1's log is in TO(2) but not TO(1): MT(2+) accepts it.
  Log log = L("W1[x] W1[y] R3[x] R2[y] W3[y]");
  EXPECT_FALSE(IsToKPlus(log, 1));
  EXPECT_TRUE(IsToKPlus(log, 2));
  EXPECT_TRUE(IsToKPlus(log, 3));
}

TEST(NaiveUnionTest, StopsSubprotocolThatRejects) {
  NaiveUnionRecognizer composite(2);
  const Log log = L("W1[x] W1[y] R3[x] R2[y]");
  for (const Op& op : log.ops()) {
    EXPECT_EQ(composite.Process(op), OpDecision::kAccept);
  }
  EXPECT_EQ(composite.live_count(), 2u);
  // W3[y] kills MT(1) but not MT(2).
  EXPECT_EQ(composite.Process(Op{3, OpType::kWrite, 1}), OpDecision::kAccept);
  EXPECT_EQ(composite.live_count(), 1u);
  EXPECT_FALSE(composite.IsLive(1));
  EXPECT_TRUE(composite.IsLive(2));
}

TEST(NaiveUnionTest, UnionEqualsDisjunctionOfMemberships) {
  for (uint64_t seed = 1; seed <= 80; ++seed) {
    WorkloadOptions w;
    w.num_txns = 5;
    w.num_items = 4;
    w.min_ops = 1;
    w.max_ops = 3;
    w.seed = seed;
    Log log = GenerateLog(w);
    for (size_t k = 1; k <= 4; ++k) {
      bool any = false;
      for (size_t h = 1; h <= k; ++h) any = any || IsToK(log, h);
      EXPECT_EQ(IsToKPlus(log, k), any) << "k=" << k << " " << log.ToString();
    }
  }
}

TEST(NaiveUnionTest, InclusivityChainIsMonotone) {
  // TO(1+) subset TO(2+) subset ... : if MT(k+) accepts, MT(k'+) accepts
  // for all k' >= k. Verified over the exhaustive two-step universe.
  ForEachTwoStepLog(3, 2, [](const Log& log) {
    bool prev = IsToKPlus(log, 1);
    for (size_t k = 2; k <= 4; ++k) {
      bool cur = IsToKPlus(log, k);
      EXPECT_TRUE(!prev || cur) << "k=" << k << " " << log.ToString();
      prev = cur;
    }
    return !::testing::Test::HasFailure();
  });
}

TEST(NaiveUnionTest, StrictlyMoreConcurrentThanAnySingleProtocol) {
  // TO(3+) strictly contains both TO(1) and TO(3): witnesses both ways.
  Log in_to2_not_to3 =
      L("R1[x] R2[y] W1[y] R3[z] R4[w] W3[w] W4[x] W2[4]");
  EXPECT_FALSE(IsToK(in_to2_not_to3, 3));
  EXPECT_TRUE(IsToKPlus(in_to2_not_to3, 3));

  Log in_to2_not_to1 = L("W1[x] W1[y] R3[x] R2[y] W3[y]");
  EXPECT_FALSE(IsToK(in_to2_not_to1, 1));
  EXPECT_TRUE(IsToKPlus(in_to2_not_to1, 2));
}

// --- Shared-prefix implementation (Algorithm 2) ---

TEST(MtkPlusTest, ViewsStartUndefinedExceptVirtual) {
  MtkPlus composite(3);
  EXPECT_EQ(composite.ViewOf(1, 0).ToString(), "<0>");
  EXPECT_EQ(composite.ViewOf(2, 0).ToString(), "<0,*>");
  EXPECT_EQ(composite.ViewOf(3, 0).ToString(), "<0,*,*>");
  EXPECT_EQ(composite.ViewOf(3, 1).ToString(), "<*,*,*>");
}

TEST(MtkPlusTest, AcceptsExample1AndStopsMt1) {
  MtkPlus composite(2);
  const Log log = L("W1[x] W1[y] R3[x] R2[y] W3[y]");
  for (const Op& op : log.ops()) {
    EXPECT_EQ(composite.Process(op), OpDecision::kAccept)
        << composite.DumpTables(3);
  }
  EXPECT_FALSE(composite.IsLive(1));
  EXPECT_TRUE(composite.IsLive(2));
}

TEST(MtkPlusTest, RejectsWhenAllSubprotocolsStopped) {
  // A non-DSR log is outside every TO(h).
  MtkPlus composite(3);
  Log log = L("R1[x] W2[x] W2[y] W1[y]");
  OpDecision last = OpDecision::kAccept;
  for (const Op& op : log.ops()) last = composite.Process(op);
  EXPECT_EQ(last, OpDecision::kReject);
  EXPECT_EQ(composite.live_count(), 0u);
  // Once everything is stopped, every further operation is rejected.
  EXPECT_EQ(composite.Process(Op{3, OpType::kRead, 0}), OpDecision::kReject);
}

TEST(MtkPlusTest, DumpShowsPrefixAndLastcolColumns) {
  MtkPlus composite(3);
  const Log log = L("R1[x] R2[y] W1[y]");
  for (const Op& op : log.ops()) composite.Process(op);
  std::string dump = composite.DumpTables(2);
  EXPECT_NE(dump.find("PREFIX(1)"), std::string::npos);
  EXPECT_NE(dump.find("LASTCOL(3)"), std::string::npos);
}

// --- Differential equivalence: Algorithm 2 vs the naive union ---
// (Both in the Theorem-5 mode: subprotocols without lines 9-10.)

class MtkPlusEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MtkPlusEquivalence, MatchesNaiveUnionDecisionForDecision) {
  Rng meta(GetParam());
  for (int round = 0; round < 40; ++round) {
    WorkloadOptions w;
    w.num_txns = 6;
    w.num_items = static_cast<uint32_t>(meta.Uniform(2, 6));
    w.min_ops = 1;
    w.max_ops = static_cast<uint32_t>(meta.Uniform(2, 4));
    w.read_fraction = 0.3 + 0.4 * meta.UniformReal();
    w.seed = meta.Uniform(1, 1 << 30);
    Log log = GenerateLog(w);

    for (size_t k : {1u, 2u, 3u, 5u}) {
      NaiveUnionRecognizer naive(k, /*with_old_read_path=*/false);
      MtkPlus shared(k);
      for (size_t pos = 0; pos < log.size(); ++pos) {
        const OpDecision dn = naive.Process(log.at(pos));
        const OpDecision ds = shared.Process(log.at(pos));
        ASSERT_EQ(dn, ds) << "k=" << k << " pos=" << pos << " op "
                          << OpName(log.at(pos)) << "\nlog " << log.ToString()
                          << "\n"
                          << shared.DumpTables(log.num_txns());
        // Stopped-subprotocol sets must agree as well.
        for (size_t h = 1; h <= k; ++h) {
          ASSERT_EQ(naive.IsLive(h), shared.IsLive(h))
              << "k=" << k << " h=" << h << " pos=" << pos << " log "
              << log.ToString();
        }
        if (dn == OpDecision::kReject) break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MtkPlusEquivalence,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(MtkPlusTest, Theorem5PrefixEqualityAgainstStandaloneSubprotocols) {
  // Theorem 5: if a log is accepted by both MT(k1) and MT(k2), k1 <= k2,
  // their vectors agree on the first k1 - 1 elements. Checked against
  // independently run MT(k1)/MT(k2) (lines 9-10 disabled).
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions w;
    w.num_txns = 5;
    w.num_items = 4;
    w.min_ops = 1;
    w.max_ops = 3;
    w.seed = seed;
    Log log = GenerateLog(w);

    for (size_t k1 = 2; k1 <= 3; ++k1) {
      for (size_t k2 = k1; k2 <= 5; ++k2) {
        MtkOptions o1, o2;
        o1.k = k1;
        o2.k = k2;
        o1.disable_old_read_path = o2.disable_old_read_path = true;
        if (!RecognizeLog(log, o1).accepted) continue;
        if (!RecognizeLog(log, o2).accepted) continue;

        MtkScheduler s1(o1), s2(o2);
        for (const Op& op : log.ops()) {
          s1.Process(op);
          s2.Process(op);
        }
        for (TxnId t = 0; t <= log.num_txns(); ++t) {
          for (size_t c = 0; c + 1 < k1; ++c) {
            EXPECT_EQ(s1.Ts(t).Get(c), s2.Ts(t).Get(c))
                << "k1=" << k1 << " k2=" << k2 << " txn=" << t << " col=" << c
                << " log=" << log.ToString();
          }
        }
      }
    }
  }
}

TEST(MtkPlusTest, SharedImplementationTouchesLinearlyManyColumns) {
  // Section IV's cost claim: O(k) columns per operation for MT(k+),
  // against O(k^2) when the subprotocols run independently.
  WorkloadOptions w;
  w.num_txns = 30;
  w.num_items = 10;
  w.min_ops = 2;
  w.max_ops = 4;
  w.seed = 5;
  Log log = GenerateLog(w);

  const size_t k = 8;
  MtkPlus shared(k);
  for (const Op& op : log.ops()) shared.Process(op);
  // Each operation walks at most 2k columns (one LASTCOL and one PREFIX
  // cell per step).
  EXPECT_LE(shared.stats().columns_touched,
            2 * k * (shared.stats().accepted + shared.stats().rejected));
}

TEST(MtkPlusTest, SoundnessEffectiveHistoriesAreDsr) {
  // Whatever MT(k+) accepts must still be D-serializable: feed logs whole
  // (no early stop) and check the accepted prefix... the composite rejects
  // everything after the first total rejection, so the accepted prefix is
  // exactly the recognized part.
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions w;
    w.num_txns = 6;
    w.num_items = 3;
    w.min_ops = 1;
    w.max_ops = 3;
    w.seed = seed + 500;
    Log log = GenerateLog(w);
    MtkPlus composite(3);
    Log accepted;
    for (const Op& op : log.ops()) {
      if (composite.Process(op) == OpDecision::kAccept) accepted.Append(op);
    }
    EXPECT_TRUE(IsDsr(accepted)) << log.ToString();
  }
}

TEST(MtkPlusOnlineTest, FullRestartOnTotalRejection) {
  MtkPlusOnline s(2);
  s.OnBegin(1);
  s.OnBegin(2);
  // Drive a non-DSR pattern that stops every subprotocol:
  // R1[x] W2[x] (1 < 2 fixed everywhere), then W2[y] R1-after... use the
  // classic cycle: R1[x] W2[x] W2[y] W1[y].
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 1}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 1}), SchedOutcome::kAborted);
  EXPECT_EQ(s.full_restarts(), 1u);
  EXPECT_EQ(s.live_subprotocols(), 2u) << "all subprotocols restarted";
  // T2 was begun under the old generation: stale, aborted at next touch.
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kRead, 2}), SchedOutcome::kAborted);
  EXPECT_EQ(s.OnCommit(2), SchedOutcome::kAborted);
  // After restart both run under fresh tables.
  s.OnRestart(1);
  s.OnBegin(1);
  s.OnRestart(2);
  s.OnBegin(2);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(1), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(2), SchedOutcome::kAccepted);
}

TEST(MtkPlusOnlineTest, SimulationCommitsSerializableHistories) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    MtkPlusOnline s(3);
    SimOptions sim;
    sim.num_txns = 60;
    sim.concurrency = 8;
    sim.seed = seed * 97;
    sim.workload.num_items = 5;
    sim.workload.min_ops = 2;
    sim.workload.max_ops = 4;
    sim.workload.read_fraction = 0.5;
    SimResult r = RunSimulation(&s, sim);
    EXPECT_EQ(r.committed + r.gave_up, 60u);
    EXPECT_GT(r.committed, 0u);
    EXPECT_TRUE(IsDsr(r.committed_history)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mdts
