#include "core/explain.h"

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"
#include "mvcc/mv_scheduler.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace mdts {
namespace {

Log L(const char* text) { return *Log::Parse(text); }

TEST(ExplainTest, AcceptedLogHasNothingToExplain) {
  MtkOptions options;
  options.k = 2;
  auto e = ExplainRejection(L("W1[x] W1[y] R3[x] R2[y] W3[y]"), options);
  EXPECT_FALSE(e.rejected);
  EXPECT_NE(e.ToString().find("accepted"), std::string::npos);
}

TEST(ExplainTest, StarvationCaseExplained) {
  // Fig. 5: W1(x) W2(x) R3(y) W3(x) - T3's write is blocked by T2, whose
  // order over T3 was fixed transitively: T3 < ... the direct chain is
  // T3 < ? Actually TS(3) = <1,*> < TS(2) = <2,*> through the encodings
  // T0 < T1 (W1), T1 < T2 (W2), T0 < T3 (R3): the comparison is by counter
  // values, so the shortest encoded chain may be empty - both renderings
  // are acceptable; what matters is the blocker and position.
  MtkOptions options;
  options.k = 2;
  auto e = ExplainRejection(L("W1(x) W2(x) R3(y) W3(x)"), options);
  ASSERT_TRUE(e.rejected);
  EXPECT_EQ(e.rejected_at, 3u);
  EXPECT_EQ(e.rejected_op, (Op{3, OpType::kWrite, 0}));
  EXPECT_EQ(e.blocker, 2u);
  EXPECT_NE(e.ToString().find("W3[x]"), std::string::npos);
}

TEST(ExplainTest, DirectChainIsReconstructed) {
  // R2[y] W3[y] fixes T2 < T3 directly; T3 then writes x read... build:
  //   R2[x]  (T0 < T2 via x)
  //   W3[x]  (T2 < T3 encoded: the event we expect in the chain)
  //   R2[z]  fine...
  //   W2[x]  -> T2 writes x after T3: blocked, blocker T3.
  MtkOptions options;
  options.k = 3;
  auto e = ExplainRejection(L("R2[x] W3[x] W2[x]"), options);
  ASSERT_TRUE(e.rejected);
  EXPECT_EQ(e.blocker, 3u);
  ASSERT_FALSE(e.chain.empty());
  EXPECT_EQ(e.chain.front().from, 2u);
  EXPECT_EQ(e.chain.back().to, 3u);
  // The encoding that fixed it happened while scheduling W3[x].
  EXPECT_EQ(e.chain.back().op, (Op{3, OpType::kWrite, 0}));
  EXPECT_NE(e.ToString().find("dependency chain"), std::string::npos);
}

TEST(ExplainTest, TransitiveChainAcrossItems) {
  //   R1[x] W2[x]: T1 < T2 (via x)
  //   R2[y] W3[y]: T2 < T3 (via y)
  //   W1[z] after R3[z]: needs T3 < T1, but T1 < T2 < T3 is fixed.
  MtkOptions options;
  options.k = 4;
  auto e = ExplainRejection(L("R1[x] W2[x] R2[y] W3[y] R3[z] W1[z]"),
                            options);
  ASSERT_TRUE(e.rejected);
  EXPECT_EQ(e.rejected_op, (Op{1, OpType::kWrite, 2}));
  EXPECT_EQ(e.blocker, 3u);
  // The chain should walk T1 -> T2 -> T3 (possibly through encodings only;
  // each hop must compose).
  ASSERT_GE(e.chain.size(), 2u);
  EXPECT_EQ(e.chain.front().from, 1u);
  EXPECT_EQ(e.chain.back().to, 3u);
  for (size_t i = 1; i < e.chain.size(); ++i) {
    EXPECT_EQ(e.chain[i - 1].to, e.chain[i].from) << "chain must compose";
  }
}

TEST(ExplainTest, RecordingOffByDefaultKeepsSchedulerLean) {
  MtkOptions options;
  options.k = 2;
  MtkScheduler s(options);
  const Log log = L("R1[x] W2[x] R3[y] W1[y]");
  for (const Op& op : log.ops()) s.Process(op);
  EXPECT_TRUE(s.encodings().empty());
  EXPECT_EQ(s.operations_processed(), 4u);
}

// --- Multiversion (MV-era) explain ---

TEST(ExplainTest, MvVersionConflictExplainedWithBlockerVector) {
  MvMtkOptions options;
  options.k = 3;
  MvMtkScheduler s(options);
  // T4 reads the initial version of x; T5 < T4 is then fixed via z. T5's
  // write of x has no feasible slot: every slot lies at or above the
  // initial version, whose reader T4 is already ordered after T5.
  ASSERT_EQ(s.Process(Op{4, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{5, OpType::kRead, 2}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{4, OpType::kWrite, 2}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{5, OpType::kWrite, 0}), OpDecision::kReject);
  EXPECT_EQ(s.LastBlocker(), 4u);
  EXPECT_EQ(s.last_reject().reason, AbortReason::kVersionConflict);
  EXPECT_EQ(s.last_reject().op, (Op{5, OpType::kWrite, 0}));
  EXPECT_EQ(s.last_reject().position, 4u);
  const std::string e = s.ExplainLastReject();
  EXPECT_NE(e.find("version_conflict"), std::string::npos) << e;
  EXPECT_NE(e.find("T4"), std::string::npos) << e;
  EXPECT_NE(e.find("blocker vector " + std::string(s.Ts(4).ToString())),
            std::string::npos)
      << e;
}

TEST(ExplainTest, MvStaleSubmissionExplainedWithoutVector) {
  MvMtkOptions options;
  MvMtkScheduler s(options);
  ASSERT_EQ(s.Process(Op{4, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{5, OpType::kRead, 2}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{4, OpType::kWrite, 2}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{5, OpType::kWrite, 0}), OpDecision::kReject);
  // A follow-up operation from the now-aborted T5 is a stale submission
  // with no blocker and no vector rendering.
  ASSERT_EQ(s.Process(Op{5, OpType::kRead, 1}), OpDecision::kReject);
  EXPECT_EQ(s.last_reject().reason, AbortReason::kStaleTxn);
  EXPECT_EQ(s.LastBlocker(), kVirtualTxn);
  const std::string e = s.ExplainLastReject();
  EXPECT_NE(e.find("stale_txn"), std::string::npos) << e;
  EXPECT_EQ(e.find("blocker vector"), std::string::npos) << e;
}

TEST(ExplainTest, MvNoRejectionYet) {
  MvMtkOptions options;
  MvMtkScheduler s(options);
  EXPECT_EQ(s.ExplainLastReject(), "no rejection yet");
  ASSERT_EQ(s.Process(Op{1, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_EQ(s.ExplainLastReject(), "no rejection yet");
  EXPECT_EQ(s.operations_processed(), 1u);
}

// --- Trace I/O ---

TEST(TraceTest, SaveAndLoadRoundTrip) {
  WorkloadOptions w;
  w.num_txns = 8;
  w.num_items = 5;
  w.seed = 77;
  Log log = GenerateLog(w);
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.log";
  ASSERT_TRUE(SaveLogToFile(log, path, "round trip test\nsecond line").ok());
  auto loaded = LoadLogFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToString(), log.ToString());
}

TEST(TraceTest, CommentsAndBlanksIgnored) {
  const std::string path = ::testing::TempDir() + "/trace_comments.log";
  {
    std::ofstream out(path);
    out << "# header\n\nR1[x] W1[x]  # trailing comment\n\nW2[x]\n";
  }
  auto loaded = LoadLogFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToString(), "R1[x] W1[x] W2[x]");
}

TEST(TraceTest, MissingFileIsNotFound) {
  auto r = LoadLogFromFile("/nonexistent/definitely/missing.log");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

}  // namespace
}  // namespace mdts
