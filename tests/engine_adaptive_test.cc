// Adaptive admission suite: the AdmissionController's deterministic
// decision state machine (AIMD batch sizing with hysteresis/cool-down,
// MT(k+) runtime k switching), its wiring into the sharded engine
// (SetActiveK, the starvation watchdog's EmergencyShrink path, flight
// recorder control events), ExplainLastReject rendering per reject
// reason, and race-cleanliness of controller ticking concurrent with
// ProcessBatch traffic (the TSan target of the engine-adaptive label).

#include "control/admission.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/mtk_scheduler.h"
#include "core/types.h"
#include "engine/sharded_engine.h"
#include "obs/abort_reason.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace mdts {
namespace {

// ---------------------------------------------------------------------------
// ExplainLastReject: per-reason rendering.
// ---------------------------------------------------------------------------

TEST(ExplainLastRejectTest, FreshEngineHasNothingToExplain) {
  EngineOptions eo;
  eo.k = 2;
  ShardedMtkEngine engine(eo);
  EXPECT_EQ(engine.ExplainLastReject(), "no rejection yet");
}

TEST(ExplainLastRejectTest, LexOrderRejectNamesReasonAndBlocker) {
  // MT(1) degenerates to timestamp ordering: once T2 has taken the later
  // write position on x, T1's attempt to write x again has no legal
  // position and rejects with T2 as the blocking transaction.
  EngineOptions eo;
  eo.k = 1;
  eo.num_shards = 1;
  ShardedMtkEngine engine(eo);
  EXPECT_EQ(engine.Process({1, OpType::kWrite, 7}), OpDecision::kAccept);
  EXPECT_EQ(engine.Process({2, OpType::kWrite, 7}), OpDecision::kAccept);
  ASSERT_EQ(engine.Process({1, OpType::kWrite, 7}), OpDecision::kReject);
  const std::string out = engine.ExplainLastReject();
  EXPECT_NE(out.find("W1[i7]"), std::string::npos) << out;
  EXPECT_NE(out.find("rejected: "), std::string::npos) << out;
  EXPECT_NE(out.find("blocker T2"), std::string::npos) << out;
}

TEST(ExplainLastRejectTest, InvalidOpRendersWithoutBlocker) {
  EngineOptions eo;
  eo.k = 2;
  eo.num_shards = 2;
  ShardedMtkEngine engine(eo);
  Op bad;
  bad.txn = kVirtualTxn;  // The reserved id is not admissible traffic.
  bad.type = OpType::kWrite;
  bad.item = 3;
  OpDecision dec = OpDecision::kAccept;
  engine.ProcessBatch(std::span<const Op>(&bad, 1), &dec);
  ASSERT_EQ(dec, OpDecision::kReject);
  const std::string out = engine.ExplainLastReject();
  EXPECT_NE(out.find("invalid_op"), std::string::npos) << out;
  EXPECT_EQ(out.find("blocker"), std::string::npos) << out;
}

TEST(ExplainLastRejectTest, BatchThrottledNamesChampionAndFallbackRound) {
  // Reuse the livelock-guardrail recipe: all-write width-32 batches over
  // 64 items form a commit-free streak, the guardrail elects a champion,
  // and every other batched operation rejects as kBatchThrottled. The
  // explain line must then carry the champion id and the fallback round.
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 4;
  eo.starvation_fix = true;
  eo.batch_fallback_rounds = 8;
  ShardedMtkEngine engine(eo);

  constexpr size_t kWidth = 32;
  constexpr ItemId kItems = 64;
  std::mt19937_64 rng(4242);
  std::vector<TxnId> txns(kWidth);
  uint32_t started = 0;
  for (TxnId& t : txns) t = static_cast<TxnId>(++started);
  std::vector<Op> batch(kWidth);
  std::vector<OpDecision> dec(kWidth);
  bool saw_throttled = false;
  for (size_t round = 0; round < 5000 && !saw_throttled; ++round) {
    for (size_t b = 0; b < kWidth; ++b) {
      batch[b].txn = txns[b];
      batch[b].type = OpType::kWrite;
      batch[b].item = static_cast<ItemId>(rng() % kItems);
    }
    engine.ProcessBatch(std::span<const Op>(batch.data(), kWidth),
                        dec.data());
    for (size_t b = 0; b < kWidth; ++b) {
      if (dec[b] == OpDecision::kReject) {
        engine.RestartTxn(txns[b]);
      }
    }
    saw_throttled =
        engine.stats().reject_reasons[AbortReason::kBatchThrottled] > 0;
  }
  ASSERT_TRUE(saw_throttled) << "guardrail never engaged";
  // The throttled rejects were the most recent ones of the last round
  // (the champion's own operations are not throttled, but at width 32
  // over 64 items the round always contains non-champion rejects).
  const std::string out = engine.ExplainLastReject();
  EXPECT_NE(out.find("batch_throttled"), std::string::npos) << out;
  EXPECT_NE(out.find("champion T"), std::string::npos) << out;
  EXPECT_NE(out.find("fallback round "), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// Controller state machine on synthetic sensor traffic (no engine):
// deterministic, window-exact.
// ---------------------------------------------------------------------------

struct SyntheticFeed {
  MetricsRegistry reg;
  Counter* commits;
  Counter* lex;
  Counter* stale;
  Counter* fallbacks;
  Counter* contention;

  SyntheticFeed() {
    commits = reg.GetCounter("engine.commits");
    lex = reg.GetCounter("engine.rejected.lex_order");
    stale = reg.GetCounter("engine.rejected.stale_txn");
    fallbacks = reg.GetCounter("engine.batch_fallbacks");
    contention = reg.GetCounter("engine.lock_contention");
  }
};

TEST(AdmissionControllerTest, ShrinkOnPressureGrowAfterQuietDwell) {
  SyntheticFeed f;
  AdmissionControlOptions ao;
  ao.registry = &f.reg;
  ao.max_k = 3;  // No engine: k is tracked internally.
  AdmissionController ctl(ao);
  ASSERT_EQ(ctl.batch_size(), 32u);  // Optimistic start at max_batch.

  uint64_t seq = 0;
  double now = 0.0;
  auto tick = [&] { ctl.TickOnce(++seq, now += 0.1); };

  // Pressured window (abort rate 0.9): multiplicative shrink, then a
  // 2-window cool-down in which further pressure must NOT re-shrink.
  f.commits->Add(5);
  f.lex->Add(45);
  tick();
  EXPECT_EQ(ctl.batch_size(), 16u);
  EXPECT_EQ(ctl.shrinks(), 1u);
  f.commits->Add(5);
  f.lex->Add(45);
  tick();  // Cool-down window 1: no actuation.
  EXPECT_EQ(ctl.batch_size(), 16u);
  f.commits->Add(5);
  f.lex->Add(45);
  tick();  // Cool-down expired: shrink again.
  EXPECT_EQ(ctl.batch_size(), 8u);
  EXPECT_EQ(ctl.shrinks(), 2u);

  // Middle band (abort rate 0.3): hysteresis - no action either way.
  f.commits->Add(70);
  f.lex->Add(30);
  tick();
  f.commits->Add(70);
  f.lex->Add(30);
  tick();
  EXPECT_EQ(ctl.batch_size(), 8u);
  EXPECT_EQ(ctl.grows(), 0u);

  // Quiet windows: additive grow after the 2-window dwell, +4 each.
  for (int i = 0; i < 20 && ctl.batch_size() < 32u; ++i) {
    f.commits->Add(100);
    tick();
  }
  EXPECT_EQ(ctl.batch_size(), 32u);
  EXPECT_GE(ctl.grows(), 6u);

  // Published registry state tracks the actuators.
  const MetricsSnapshot snap = f.reg.Snapshot();
  EXPECT_EQ(snap.GaugeValue("engine.adaptive.batch_size"), 32);
  EXPECT_EQ(snap.CounterValue("engine.adaptive.shrinks"), ctl.shrinks());
  EXPECT_EQ(snap.CounterValue("engine.adaptive.grows"), ctl.grows());
}

TEST(AdmissionControllerTest, TinyWindowsCarryNoSignal) {
  SyntheticFeed f;
  AdmissionControlOptions ao;
  ao.registry = &f.reg;
  ao.max_k = 3;
  AdmissionController ctl(ao);
  // 15 ops < min_window_ops = 16: even at abort rate 1.0, no shrink.
  f.lex->Add(15);
  ctl.TickOnce(1, 0.1);
  EXPECT_EQ(ctl.batch_size(), 32u);
  EXPECT_EQ(ctl.shrinks(), 0u);
}

TEST(AdmissionControllerTest, WidensAndNarrowsKThroughEngine) {
  SyntheticFeed f;
  EngineOptions eo;
  eo.k = 5;
  eo.num_shards = 2;
  ShardedMtkEngine engine(eo);
  engine.SetActiveK(3);

  AdmissionControlOptions ao;
  ao.registry = &f.reg;
  ao.engine = &engine;
  ao.min_k = 3;
  AdmissionController ctl(ao);
  ASSERT_EQ(ctl.active_k(), 3u);

  uint64_t seq = 0;
  double now = 0.0;
  auto tick = [&] { ctl.TickOnce(++seq, now += 0.1); };

  // Vector-capacity-dominated pressure: widen by one per widen_dwell(=2)
  // consecutive windows, through the engine, up to its physical k.
  for (int i = 0; i < 4; ++i) {
    f.commits->Add(10);
    f.lex->Add(90);  // vector_frac = 1.0, abort rate 0.9.
    tick();
  }
  EXPECT_EQ(ctl.active_k(), 5u);
  EXPECT_EQ(engine.active_k(), 5u);
  EXPECT_EQ(ctl.k_switches(), 2u);

  // Staleness-dominated pressure must NOT widen: the extra dimensions
  // buy encoding room, not freshness.
  for (int i = 0; i < 4; ++i) {
    f.commits->Add(10);
    f.stale->Add(90);
    tick();
  }
  EXPECT_EQ(ctl.active_k(), 5u);

  // Sustained quiet: narrow back after narrow_dwell(=8), floored at
  // min_k.
  for (int i = 0; i < 30; ++i) {
    f.commits->Add(100);
    tick();
  }
  EXPECT_EQ(ctl.active_k(), 3u);
  EXPECT_EQ(engine.active_k(), 3u);
  const MetricsSnapshot snap = f.reg.Snapshot();
  EXPECT_EQ(snap.GaugeValue("engine.adaptive.k"), 3);
}

TEST(AdmissionControllerTest, DeterministicTraceIsBitIdentical) {
  // Two independent controllers fed the identical seeded window schedule
  // must produce byte-identical decision traces: the controller reads
  // only its sensors and its own state, never a clock.
  auto run = [] {
    SyntheticFeed f;
    FlightRecorder flight{FlightRecorderOptions{}};
    AdmissionControlOptions ao;
    ao.registry = &f.reg;
    ao.flight = &flight;
    ao.max_k = 4;
    ao.min_k = 2;
    AdmissionController ctl(ao);
    std::mt19937_64 rng(777);
    uint64_t seq = 0;
    double now = 0.0;
    for (int w = 0; w < 400; ++w) {
      const uint64_t commits = rng() % 200;
      const uint64_t lex = rng() % 150;
      const uint64_t stale = rng() % 40;
      f.commits->Add(commits);
      f.lex->Add(lex);
      f.stale->Add(stale);
      if (rng() % 17 == 0) f.fallbacks->Add(1);
      if (rng() % 11 == 0) ctl.EmergencyShrink(seq, now);
      ctl.TickOnce(++seq, now += 0.05);
    }
    // The flight recorder saw one control event per decision, in order.
    EXPECT_EQ(flight.ControlEvents().size(), ctl.decisions().size());
    return ctl.TraceString();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Watchdog wiring: a starvation alert collapses admission immediately.
// ---------------------------------------------------------------------------

TEST(AdmissionControllerTest, WatchdogAlertTriggersEmergencyShrink) {
  SyntheticFeed f;
  FlightRecorder flight{FlightRecorderOptions{}};
  AdmissionControlOptions ao;
  ao.registry = &f.reg;
  ao.flight = &flight;
  ao.max_k = 3;
  AdmissionController ctl(ao);
  ASSERT_EQ(ctl.batch_size(), 32u);

  SamplerOptions so;
  so.registry = &f.reg;
  Sampler sampler(so);
  StarvationWatchdogOptions wo;
  wo.source_gauge = "engine.max_consecutive_aborts";
  wo.on_alert = [&ctl](const WatchdogAlert& a) {
    ctl.EmergencyShrink(a.last_seq, a.last_time);
  };
  sampler.AddStarvationWatchdog(wo);
  sampler.AddTickHook(
      [&ctl](uint64_t seq, double now) { ctl.TickOnce(seq, now); });

  Gauge* consec = f.reg.GetGauge("engine.max_consecutive_aborts");
  // Two consecutive windows above the threshold raise the alert; its
  // on_alert runs before the tick hook, so the same tick's TickOnce sees
  // the post-shrink batch and the cool-down already armed.
  consec->SetMax(50);
  sampler.TickOnce(0.1);
  EXPECT_EQ(ctl.batch_size(), 32u) << "one window must not alert";
  consec->SetMax(50);
  sampler.TickOnce(0.2);
  EXPECT_EQ(ctl.batch_size(), 1u);
  ASSERT_FALSE(ctl.decisions().empty());
  EXPECT_EQ(ctl.decisions().back().action,
            AdmissionAction::kEmergencyShrink);
  ASSERT_EQ(flight.ControlEvents().size(), 1u);
  EXPECT_EQ(flight.ControlEvents()[0].action, "emergency_shrink");
}

// ---------------------------------------------------------------------------
// Closed loop against the real engine.
// ---------------------------------------------------------------------------

// Drives the benched livelock shape (all-write width-32 batches over 64
// items) with the controller in the admission loop, ticking on simulated
// time every 32 rounds. Returns the decision trace.
std::string RunAdaptiveLivelockEscape(uint64_t* committed_out) {
  MetricsRegistry reg;
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 4;
  eo.starvation_fix = true;
  eo.metrics = &reg;
  ShardedMtkEngine engine(eo);

  SamplerOptions so;
  so.registry = &reg;
  Sampler sampler(so);
  AdmissionControlOptions ao;
  ao.registry = &reg;
  ao.engine = &engine;
  AdmissionController ctl(ao);
  StarvationWatchdogOptions wo;
  wo.source_gauge = "engine.max_consecutive_aborts";
  wo.on_alert = [&ctl](const WatchdogAlert& a) {
    ctl.EmergencyShrink(a.last_seq, a.last_time);
  };
  sampler.AddStarvationWatchdog(wo);
  sampler.AddTickHook(
      [&ctl](uint64_t seq, double now) { ctl.TickOnce(seq, now); });

  constexpr size_t kWidth = 32;
  constexpr ItemId kItems = 64;
  constexpr size_t kOpsPerTxn = 8;
  constexpr uint64_t kTarget = 200;
  std::mt19937_64 rng(99);
  struct Slot {
    TxnId txn = 0;
    size_t done = 0;
  };
  std::vector<Slot> slots(kWidth);
  uint32_t started = 0;
  for (Slot& s : slots) s.txn = static_cast<TxnId>(++started);
  std::vector<Op> batch(kWidth);
  std::vector<OpDecision> dec(kWidth);
  uint64_t committed = 0;
  double sim_time = 0.0;
  for (uint64_t round = 0; committed < kTarget; ++round) {
    // Bounded: with the controller in the loop this converges in a few
    // thousand rounds; the static width-32 loop needs the engine's own
    // guardrail and an order of magnitude more.
    EXPECT_LT(round, 500000u) << "livelocked despite the controller";
    if (round >= 500000u) break;
    if (round % 32 == 0) sampler.TickOnce(sim_time += 0.01);
    const size_t live = ctl.batch_size();
    for (size_t b = 0; b < live; ++b) {
      batch[b].txn = slots[b].txn;
      batch[b].type = OpType::kWrite;
      batch[b].item = static_cast<ItemId>(rng() % kItems);
    }
    engine.ProcessBatch(std::span<const Op>(batch.data(), live), dec.data());
    for (size_t b = 0; b < live; ++b) {
      Slot& s = slots[b];
      if (dec[b] == OpDecision::kReject) {
        engine.RestartTxn(s.txn);
        s.done = 0;
        continue;
      }
      if (++s.done < kOpsPerTxn) continue;
      engine.CommitTxn(s.txn);
      ++committed;
      s.txn = static_cast<TxnId>(++started);
      s.done = 0;
    }
  }
  EXPECT_GT(ctl.shrinks(), 0u) << "controller never reacted";
  EXPECT_LT(ctl.batch_size(), 32u);
  if (committed_out != nullptr) *committed_out = committed;
  return ctl.TraceString();
}

TEST(AdaptiveEngineTest, ControllerEscapesBatchLivelock) {
  uint64_t committed = 0;
  const std::string trace = RunAdaptiveLivelockEscape(&committed);
  EXPECT_GE(committed, 200u);
  EXPECT_FALSE(trace.empty());
}

TEST(AdaptiveEngineTest, SimTimeReplayProducesIdenticalTrace) {
  // The whole closed loop is deterministic - seeded workload, sim-time
  // ticks at fixed round counts - so two runs must produce bit-identical
  // decision traces.
  const std::string a = RunAdaptiveLivelockEscape(nullptr);
  const std::string b = RunAdaptiveLivelockEscape(nullptr);
  EXPECT_EQ(a, b);
}

// Effective-k soundness (the MT(k+) switch): an engine with physical
// k = 5 narrowed to active_k = 3 must make exactly the decisions of a
// k = 3 scheduler - the extra two elements hold constants every narrower
// encoding fixes, so Compare over the full vectors agrees.
TEST(AdaptiveEngineTest, NarrowedActiveKMatchesNarrowScheduler) {
  MtkOptions mo;
  mo.k = 3;
  mo.starvation_fix = true;
  MtkScheduler sched(mo);

  EngineOptions eo;
  eo.k = 5;
  eo.num_shards = 1;
  eo.starvation_fix = true;
  ShardedMtkEngine engine(eo);
  engine.SetActiveK(3);

  std::mt19937_64 rng(2024);
  constexpr ItemId kItems = 12;
  std::vector<TxnId> live;
  TxnId next_txn = 1;
  for (size_t n = 0; n < 24; ++n) live.push_back(next_txn++);
  for (size_t step = 0; step < 4000; ++step) {
    const TxnId i = live[rng() % live.size()];
    ASSERT_EQ(sched.IsAborted(i), engine.IsAborted(i)) << "step " << step;
    if (sched.IsAborted(i)) {
      if (rng() % 2 == 0) {
        sched.RestartTxn(i);
        engine.RestartTxn(i);
      }
      continue;
    }
    if (rng() % 16 == 0) {
      sched.CommitTxn(i);
      engine.CommitTxn(i);
      *std::find(live.begin(), live.end(), i) = next_txn++;
      continue;
    }
    Op op;
    op.txn = i;
    op.type = rng() % 8 < 5 ? OpType::kRead : OpType::kWrite;
    op.item = static_cast<ItemId>(rng() % kItems);
    ASSERT_EQ(sched.Process(op), engine.Process(op))
        << "step " << step << " txn " << i << " item " << op.item;
  }
}

// ---------------------------------------------------------------------------
// Race cleanliness (the TSan target): controller ticking, emergency
// shrinks and runtime k switches concurrent with batched admission.
// ---------------------------------------------------------------------------

TEST(AdaptiveEngineTest, ConcurrentTicksAndBatchesAreRaceClean) {
  MetricsRegistry reg;
  FlightRecorder flight{FlightRecorderOptions{}};
  EngineOptions eo;
  eo.k = 4;
  eo.num_shards = 4;
  eo.starvation_fix = true;
  eo.metrics = &reg;
  ShardedMtkEngine engine(eo);

  AdmissionControlOptions ao;
  ao.registry = &reg;
  ao.engine = &engine;
  ao.flight = &flight;
  AdmissionController ctl(ao);

  constexpr size_t kWidth = 16;
  constexpr ItemId kItems = 256;
  std::atomic<bool> done{false};

  std::thread admission([&] {
    std::mt19937_64 rng(7);
    struct Slot {
      TxnId txn = 0;
      size_t done_ops = 0;
    };
    std::vector<Slot> slots(kWidth);
    uint32_t started = 0;
    for (Slot& s : slots) s.txn = static_cast<TxnId>(++started);
    std::vector<Op> batch(kWidth);
    std::vector<OpDecision> dec(kWidth);
    for (int round = 0; round < 3000; ++round) {
      size_t live = ctl.batch_size();
      if (live > kWidth) live = kWidth;
      for (size_t b = 0; b < live; ++b) {
        batch[b].txn = slots[b].txn;
        batch[b].type = rng() % 2 ? OpType::kRead : OpType::kWrite;
        batch[b].item = static_cast<ItemId>(rng() % kItems);
      }
      engine.ProcessBatch(std::span<const Op>(batch.data(), live),
                          dec.data());
      for (size_t b = 0; b < live; ++b) {
        Slot& s = slots[b];
        if (dec[b] == OpDecision::kReject) {
          engine.RestartTxn(s.txn);
          s.done_ops = 0;
          continue;
        }
        if (++s.done_ops < 6) continue;
        engine.CommitTxn(s.txn);
        s.txn = static_cast<TxnId>(++started);
        s.done_ops = 0;
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::thread control([&] {
    uint64_t seq = 0;
    double now = 0.0;
    while (!done.load(std::memory_order_acquire)) {
      ctl.TickOnce(++seq, now += 0.001);
      if (seq % 7 == 0) ctl.EmergencyShrink(seq, now);
      if (seq % 5 == 0) {
        engine.SetActiveK(1 + seq % 4);
        (void)engine.ExplainLastReject();
      }
      std::this_thread::yield();
    }
  });

  admission.join();
  control.join();
  // Sanity: the registry's adaptive gauges reflect the last actuation.
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(static_cast<uint32_t>(
                snap.GaugeValue("engine.adaptive.batch_size")),
            ctl.batch_size());
}

}  // namespace
}  // namespace mdts
