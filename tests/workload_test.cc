#include "workload/generator.h"

#include <map>
#include <set>

#include "gtest/gtest.h"
#include "workload/enumerate.h"

namespace mdts {
namespace {

TEST(GeneratorTest, DeterministicForSameSeed) {
  WorkloadOptions options;
  options.seed = 99;
  EXPECT_EQ(GenerateLog(options).ToString(), GenerateLog(options).ToString());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  WorkloadOptions a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(GenerateLog(a).ToString(), GenerateLog(b).ToString());
}

TEST(GeneratorTest, RespectsOpsPerTxnBounds) {
  WorkloadOptions options;
  options.num_txns = 20;
  options.num_items = 50;
  options.min_ops = 2;
  options.max_ops = 5;
  options.seed = 7;
  Log log = GenerateLog(options);
  for (TxnId t = 1; t <= options.num_txns; ++t) {
    EXPECT_GE(log.OpsOfTxn(t), 2u);
    EXPECT_LE(log.OpsOfTxn(t), 5u);
  }
}

TEST(GeneratorTest, TwoStepFlagProducesTwoStepLogs) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    WorkloadOptions options;
    options.two_step = true;
    options.seed = seed;
    EXPECT_TRUE(GenerateLog(options).IsTwoStep());
  }
}

TEST(GeneratorTest, DistinctItemsPerTxnHolds) {
  WorkloadOptions options;
  options.num_txns = 10;
  options.num_items = 6;
  options.min_ops = 4;
  options.max_ops = 6;
  options.distinct_items_per_txn = true;
  options.seed = 3;
  Log log = GenerateLog(options);
  for (TxnId t = 1; t <= options.num_txns; ++t) {
    std::set<ItemId> items;
    size_t count = 0;
    for (const Op& op : log.ops()) {
      if (op.txn == t) {
        items.insert(op.item);
        ++count;
      }
    }
    EXPECT_EQ(items.size(), count) << "txn " << t;
  }
}

TEST(GeneratorTest, ReadFractionExtremes) {
  WorkloadOptions options;
  options.read_fraction = 1.0;
  options.seed = 5;
  const Log all_reads = GenerateLog(options);
  for (const Op& op : all_reads.ops()) {
    EXPECT_EQ(op.type, OpType::kRead);
  }
  options.read_fraction = 0.0;
  const Log all_writes = GenerateLog(options);
  for (const Op& op : all_writes.ops()) {
    EXPECT_EQ(op.type, OpType::kWrite);
  }
}

TEST(GeneratorTest, ZipfSkewConcentratesAccesses) {
  WorkloadOptions options;
  options.num_txns = 200;
  options.num_items = 20;
  options.min_ops = options.max_ops = 2;
  options.distinct_items_per_txn = false;
  options.seed = 11;

  auto hottest_share = [&](double theta) {
    options.zipf_theta = theta;
    std::map<ItemId, size_t> counts;
    Log log = GenerateLog(options);
    for (const Op& op : log.ops()) ++counts[op.item];
    size_t hottest = 0;
    for (const auto& [item, c] : counts) hottest = std::max(hottest, c);
    return static_cast<double>(hottest) / static_cast<double>(log.size());
  };

  EXPECT_LT(hottest_share(0.0), 0.15);
  EXPECT_GT(hottest_share(1.2), 0.25);
}

TEST(GeneratorTest, ProgramsAndInterleavePreserveOrder) {
  WorkloadOptions options;
  options.num_txns = 5;
  options.seed = 13;
  Rng rng(options.seed);
  auto programs = GenerateTxnPrograms(options, &rng);
  Log log = InterleavePrograms(programs, &rng);
  // Per-transaction op order must be preserved in the interleaving.
  std::vector<size_t> next(programs.size(), 0);
  for (const Op& op : log.ops()) {
    const size_t t = op.txn - 1;
    ASSERT_LT(next[t], programs[t].size());
    EXPECT_EQ(op, programs[t][next[t]]);
    ++next[t];
  }
}

// --- Enumeration ---

TEST(EnumerateTest, CountInterleavingsMatchesMultinomial) {
  EXPECT_EQ(CountInterleavings({2, 2}), 6u);
  EXPECT_EQ(CountInterleavings({2, 2, 2}), 90u);
  EXPECT_EQ(CountInterleavings({1, 1, 1, 1}), 24u);
  EXPECT_EQ(CountInterleavings({3}), 1u);
  EXPECT_EQ(CountInterleavings({}), 1u);
}

TEST(EnumerateTest, ForEachInterleavingVisitsExactlyAllInterleavings) {
  std::vector<std::vector<Op>> programs = {
      {Op{1, OpType::kRead, 0}, Op{1, OpType::kWrite, 0}},
      {Op{2, OpType::kRead, 1}, Op{2, OpType::kWrite, 1}},
  };
  std::set<std::string> seen;
  ForEachInterleaving(programs, [&](const Log& log) {
    EXPECT_TRUE(seen.insert(log.ToString()).second) << "duplicate";
    return true;
  });
  EXPECT_EQ(seen.size(), 6u);
}

TEST(EnumerateTest, EarlyStopPropagates) {
  std::vector<std::vector<Op>> programs = {
      {Op{1, OpType::kRead, 0}},
      {Op{2, OpType::kRead, 0}},
  };
  int visits = 0;
  bool completed = ForEachInterleaving(programs, [&](const Log&) {
    ++visits;
    return false;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visits, 1);
}

TEST(EnumerateTest, TwoStepUniverseSizeIsExact) {
  // 2 transactions over 2 items: 2^(2*2) item choices x 6 interleavings.
  size_t count = 0;
  ForEachTwoStepLog(2, 2, [&](const Log& log) {
    EXPECT_EQ(log.size(), 4u);
    EXPECT_TRUE(log.IsTwoStep());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 16u * 6u);
}

TEST(EnumerateTest, ThreeTxnUniverseSize) {
  size_t count = 0;
  ForEachTwoStepLog(3, 2, [&](const Log&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 64u * 90u);
}

}  // namespace
}  // namespace mdts
