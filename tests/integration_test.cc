// Cross-module integration tests and API edge cases.

#include "classify/classes.h"
#include "classify/dependency_graph.h"
#include "core/recognizer.h"
#include "gtest/gtest.h"
#include "nested/nested_online.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace mdts {
namespace {

Log L(const char* text) { return *Log::Parse(text); }

// --- Recognizer / EffectiveHistory edge cases ---

TEST(RecognizerEdgeTest, EmptyLogAccepted) {
  EXPECT_TRUE(IsToK(Log(), 1));
  EXPECT_TRUE(IsToK(Log(), 5));
  MtkOptions o;
  o.k = 2;
  EXPECT_TRUE(EffectiveHistory(Log(), o).empty());
}

TEST(RecognizerEdgeTest, SingleOperationLog) {
  EXPECT_TRUE(IsToK(L("R1[x]"), 1));
  EXPECT_TRUE(IsToK(L("W1[x]"), 1));
}

TEST(RecognizerEdgeTest, RepeatedIdenticalOperations) {
  EXPECT_TRUE(IsToK(L("R1[x] R1[x] R1[x] W1[x] W1[x]"), 2));
}

TEST(RecognizerEdgeTest, RejectedAtIndexReported) {
  MtkOptions o;
  o.k = 1;
  auto r = RecognizeLog(L("W1[x] W1[y] R3[x] R2[y] W3[y]"), o);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.rejected_at, 4u) << "W3[y] is the rejected operation";
}

TEST(RecognizerEdgeTest, EffectiveHistoryDropsAbortedTxnOps) {
  MtkOptions o;
  o.k = 1;
  Log log = L("W1[x] W1[y] R3[x] R2[y] W3[y]");
  Log eff = EffectiveHistory(log, o);
  // T3's ops are dropped (it aborted at W3[y]); T1 and T2 survive whole.
  for (const Op& op : eff.ops()) EXPECT_NE(op.txn, 3u);
  EXPECT_EQ(eff.OpsOfTxn(1), 2u);
  EXPECT_EQ(eff.OpsOfTxn(2), 1u);
}

TEST(RecognizerEdgeTest, SerializationOrderAgreesWithDependencyGraph) {
  // Integration: MT(k)'s induced order must be one of the dependency
  // digraph's topological orders (same partial order, Theorem 1 + 2).
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    WorkloadOptions w;
    w.num_txns = 5;
    w.num_items = 4;
    w.min_ops = 1;
    w.max_ops = 3;
    w.seed = seed + 8800;
    Log log = GenerateLog(w);
    MtkOptions o;
    o.k = 5;
    MtkScheduler s(o);
    bool ok = true;
    for (const Op& op : log.ops()) {
      if (s.Process(op) != OpDecision::kAccept) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    std::vector<TxnId> txns;
    for (TxnId t = 1; t <= log.num_txns(); ++t) txns.push_back(t);
    auto order = s.SerializationOrder(txns);
    // Position index per txn.
    std::vector<size_t> pos(log.num_txns() + 1, 0);
    for (size_t p = 0; p < order.size(); ++p) pos[order[p]] = p;
    DependencyGraph g = DependencyGraph::FromLog(log);
    for (const auto& e : g.edges()) {
      EXPECT_LT(pos[e.from], pos[e.to])
          << "T" << e.from << " -> T" << e.to << " violated in "
          << log.ToString();
    }
  }
}

// --- Committed transactions are closed ---

TEST(RecognizerEdgeTest, CommittedTransactionOpsRejected) {
  MtkOptions o;
  o.k = 2;
  MtkScheduler s(o);
  EXPECT_EQ(s.Process(Op{1, OpType::kRead, 0}), OpDecision::kAccept);
  s.CommitTxn(1);
  EXPECT_EQ(s.Process(Op{1, OpType::kWrite, 0}), OpDecision::kReject);
}

// --- Nested online adapter ---

TEST(NestedOnlineTest, SimulationCommitsSerializableHistories) {
  for (GroupId groups : {1u, 2u, 4u}) {
    NestedOnline s({2, 2}, groups);
    SimOptions sim;
    sim.num_txns = 60;
    sim.concurrency = 6;
    sim.seed = 1000 + groups;
    sim.workload.num_items = 6;
    sim.workload.min_ops = 2;
    sim.workload.max_ops = 3;
    sim.workload.read_fraction = 0.6;
    SimResult r = RunSimulation(&s, sim);
    EXPECT_EQ(r.committed + r.gave_up, 60u) << groups << " groups";
    EXPECT_GT(r.committed, 0u);
    EXPECT_TRUE(IsDsr(r.committed_history)) << groups << " groups";
  }
}

TEST(NestedOnlineTest, ArbitraryPartitionsAreCostly) {
  // The grouped protocol enforces sticky, antisymmetric GROUP orders:
  // shared group vectors are never reset (other members rely on them), so
  // a semantically meaningless round-robin partition accumulates permanent
  // constraints and aborts far more than singleton groups (where a
  // restarting sole member resets its own group vector and the protocol
  // reduces to plain MT). Groups are a semantic tool (Table IV), not a
  // throughput knob - measured here.
  auto aborts_with = [](GroupId groups) {
    NestedOnline s({2, 2}, groups);
    SimOptions sim;
    sim.num_txns = 120;
    sim.concurrency = 8;
    sim.seed = 4242;
    sim.workload.num_items = 8;
    sim.workload.min_ops = 2;
    sim.workload.max_ops = 3;
    sim.workload.read_fraction = 0.6;
    return RunSimulation(&s, sim).aborts;
  };
  const uint64_t singleton = aborts_with(200);  // >= num_txns: all alone.
  const uint64_t shared2 = aborts_with(2);
  EXPECT_LT(singleton, shared2)
      << "singleton groups (" << singleton
      << " aborts) must beat a meaningless 2-way partition (" << shared2
      << ")";
}

}  // namespace
}  // namespace mdts
