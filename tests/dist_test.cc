#include "dist/dmt_system.h"

#include "classify/classes.h"
#include "gtest/gtest.h"

namespace mdts {
namespace {

DmtOptions BaseOptions(uint64_t seed) {
  DmtOptions options;
  options.k = 3;
  options.num_sites = 3;
  options.num_txns = 40;
  options.concurrency = 6;
  options.message_latency = 0.5;
  options.mean_think_time = 1.0;
  options.restart_delay = 3.0;
  options.seed = seed;
  options.workload.num_items = 9;
  options.workload.min_ops = 2;
  options.workload.max_ops = 3;
  options.workload.read_fraction = 0.6;
  return options;
}

TEST(DmtTest, CompletesAllTransactions) {
  DmtResult r = RunDmtSimulation(BaseOptions(1));
  EXPECT_EQ(r.committed + r.gave_up, 40u);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(DmtTest, DeterministicGivenSeed) {
  DmtResult a = RunDmtSimulation(BaseOptions(5));
  DmtResult b = RunDmtSimulation(BaseOptions(5));
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.committed_history.ToString(), b.committed_history.ToString());
}

TEST(DmtTest, GlobalHistoryIsSerializable) {
  // The decentralized protocol must still only commit DSR histories, for
  // every seed and site count.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (uint32_t sites : {1u, 2u, 4u}) {
      DmtOptions options = BaseOptions(seed * 31);
      options.num_sites = sites;
      options.workload.num_items = 6;  // Contention.
      DmtResult r = RunDmtSimulation(options);
      EXPECT_GT(r.committed, 0u);
      EXPECT_TRUE(IsDsr(r.committed_history))
          << "sites=" << sites << " seed=" << seed << "\n"
          << r.committed_history.ToString();
    }
  }
}

TEST(DmtTest, VectorCompactionBoundsStorage) {
  // With many transactions flowing through, finished vectors must be
  // released: the table left at the end is bounded by the live span, not
  // by num_txns, and reclamation never compromises serializability.
  DmtOptions options = BaseOptions(3);
  options.num_txns = 400;
  options.concurrency = 8;
  DmtResult r = RunDmtSimulation(options);
  EXPECT_EQ(r.committed + r.gave_up, 400u);
  EXPECT_GT(r.vectors_released, 300u);
  EXPECT_LT(r.final_live_vectors, 100u);
  EXPECT_TRUE(IsDsr(r.committed_history));
}

TEST(DmtTest, SingleSiteSendsNoMessages) {
  DmtOptions options = BaseOptions(9);
  options.num_sites = 1;
  DmtResult r = RunDmtSimulation(options);
  EXPECT_EQ(r.messages_sent, 0u);
  EXPECT_EQ(r.committed + r.gave_up, 40u);
}

TEST(DmtTest, MoreSitesMoreMessages) {
  DmtOptions options = BaseOptions(13);
  options.num_sites = 2;
  const uint64_t m2 = RunDmtSimulation(options).messages_sent;
  options.num_sites = 6;
  const uint64_t m6 = RunDmtSimulation(options).messages_sent;
  EXPECT_GT(m6, m2);
}

TEST(DmtTest, MessageCountBoundedPerOperation) {
  // The paper: "the message overhead tends to be proportionate"; each
  // operation locks at most 4 objects, each costing at most 3 messages
  // (request, grant, combined writeback/release).
  DmtOptions options = BaseOptions(17);
  options.num_sites = 4;
  DmtResult r = RunDmtSimulation(options);
  ASSERT_GT(r.ops_scheduled, 0u);
  EXPECT_LE(r.messages_sent, 12 * r.ops_scheduled);
}

TEST(DmtTest, DeadlockFreedomUnderHighContention) {
  // Ordered locking means the run always terminates with all transactions
  // resolved, even with many sites and tiny item space.
  DmtOptions options = BaseOptions(21);
  options.num_sites = 5;
  options.num_txns = 60;
  options.concurrency = 12;
  options.workload.num_items = 5;
  options.workload.read_fraction = 0.4;
  DmtResult r = RunDmtSimulation(options);
  EXPECT_EQ(r.committed + r.gave_up, 60u);
  EXPECT_TRUE(IsDsr(r.committed_history));
}

TEST(DmtTest, OpsPerSiteCoversAllSites) {
  DmtOptions options = BaseOptions(25);
  options.num_sites = 3;
  options.workload.num_items = 9;  // 3 items per site.
  DmtResult r = RunDmtSimulation(options);
  ASSERT_EQ(r.ops_per_site.size(), 3u);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_GT(r.ops_per_site[s], 0u) << "site " << s;
  }
}

TEST(DmtTest, CounterSyncKeepsRunsSerializable) {
  DmtOptions options = BaseOptions(29);
  options.counter_sync_interval = 5.0;
  DmtResult r = RunDmtSimulation(options);
  EXPECT_EQ(r.committed + r.gave_up, 40u);
  EXPECT_TRUE(IsDsr(r.committed_history));
}

TEST(DmtTest, HigherLatencyStretchesMakespan) {
  DmtOptions options = BaseOptions(33);
  options.message_latency = 0.1;
  const double fast = RunDmtSimulation(options).makespan;
  options.message_latency = 5.0;
  const double slow = RunDmtSimulation(options).makespan;
  EXPECT_GT(slow, fast);
}

TEST(DmtTest, CleanRunReportsNoFaultActivity) {
  DmtResult r = RunDmtSimulation(BaseOptions(37));
  EXPECT_EQ(r.messages_dropped, 0u);
  EXPECT_EQ(r.messages_duplicated, 0u);
  EXPECT_EQ(r.lock_retries, 0u);
  EXPECT_EQ(r.timeout_give_ups, 0u);
  EXPECT_EQ(r.lease_reclaims, 0u);
  EXPECT_EQ(r.down_site_aborts, 0u);
  EXPECT_GE(r.p99_response_time, r.avg_response_time);
}

TEST(DmtTest, MaxConsecutiveAbortsTracksStarvation) {
  DmtOptions options = BaseOptions(41);
  options.workload.num_items = 4;  // Heavy contention forces re-aborts.
  options.workload.read_fraction = 0.2;
  DmtResult r = RunDmtSimulation(options);
  EXPECT_GT(r.aborts, 0u);
  EXPECT_GE(r.aborts, r.max_consecutive_aborts);
  EXPECT_GT(r.max_consecutive_aborts, 0u);
}

// --- Fault injection & recovery ---

DmtOptions FaultyOptions(uint64_t seed) {
  DmtOptions options = BaseOptions(seed);
  options.fault.drop_rate = 0.1;
  options.fault.duplicate_rate = 0.05;
  options.fault.jitter = 0.25;
  return options;
}

TEST(DmtFaultTest, FaultyRunDeterministicGivenSeed) {
  DmtOptions options = FaultyOptions(3);
  options.fault.crashes.push_back({1, 40.0, 80.0});
  DmtResult a = RunDmtSimulation(options);
  DmtResult b = RunDmtSimulation(options);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.lock_retries, b.lock_retries);
  EXPECT_EQ(a.lease_reclaims, b.lease_reclaims);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.committed_history.ToString(), b.committed_history.ToString());
}

TEST(DmtFaultTest, MessageLossRetriesAndStaysSerializable) {
  DmtOptions options = FaultyOptions(7);
  options.fault.drop_rate = 0.2;
  DmtResult r = RunDmtSimulation(options);
  EXPECT_EQ(r.committed + r.gave_up, 40u);  // Nothing wedges.
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.messages_dropped, 0u);
  EXPECT_GT(r.lock_retries, 0u);
  EXPECT_TRUE(IsDsr(r.committed_history)) << r.committed_history.ToString();
}

// The ISSUE acceptance scenario: up to 20% message loss plus a mid-run
// crash and recovery, for a fixed seed, must terminate with commits and a
// DSR history.
TEST(DmtFaultTest, LossPlusMidRunCrashRecoversAndCommits) {
  DmtOptions options = BaseOptions(19);
  options.fault.drop_rate = 0.2;
  options.fault.crashes.push_back({1, 60.0, 160.0});
  DmtResult r = RunDmtSimulation(options);
  EXPECT_EQ(r.committed + r.gave_up, 40u);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.down_site_aborts, 0u);
  EXPECT_TRUE(IsDsr(r.committed_history)) << r.committed_history.ToString();
}

TEST(DmtFaultTest, CrashWithoutRecoveryDegradesGracefully) {
  DmtOptions options = BaseOptions(23);
  options.max_attempts = 20;  // Bound futile retries against the dead site.
  options.fault.crashes.push_back({2, 50.0});  // Never recovers.
  DmtResult r = RunDmtSimulation(options);
  // Transactions touching the dead site abort-and-retry until they give
  // up; everything else commits, and the run still terminates.
  EXPECT_EQ(r.committed + r.gave_up, 40u);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.down_site_aborts, 0u);
  EXPECT_TRUE(IsDsr(r.committed_history)) << r.committed_history.ToString();
}

TEST(DmtFaultTest, LeasesReclaimLocksFromCrashedCoordinators) {
  DmtOptions options = BaseOptions(29);
  options.num_sites = 4;
  options.fault.drop_rate = 0.25;  // Lost releases leave orphaned locks.
  options.fault.crashes.push_back({0, 30.0, 90.0});
  options.fault.crashes.push_back({3, 120.0, 170.0});
  DmtResult r = RunDmtSimulation(options);
  EXPECT_EQ(r.committed + r.gave_up, 40u);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.lease_reclaims, 0u);
  EXPECT_TRUE(IsDsr(r.committed_history)) << r.committed_history.ToString();
}

TEST(DmtFaultTest, DuplicatedMessagesAreIdempotent) {
  DmtOptions options = BaseOptions(31);
  options.fault.duplicate_rate = 0.5;
  options.fault.jitter = 0.5;
  DmtResult r = RunDmtSimulation(options);
  EXPECT_EQ(r.committed + r.gave_up, 40u);
  EXPECT_GT(r.messages_duplicated, 0u);
  EXPECT_TRUE(IsDsr(r.committed_history)) << r.committed_history.ToString();
}

// Seed-sweep property test: the safety claim (Theorem 2 - only DSR
// histories commit) must survive every fault mix, counter-sync setting and
// site count, for >= 50 random seeds.
TEST(DmtFaultTest, SeedSweepHistoriesAlwaysDsr) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    DmtOptions options = BaseOptions(seed * 17 + 1);
    options.num_txns = 24;
    options.num_sites = 2 + seed % 3;
    options.workload.num_items = 6;  // Contention.
    if (seed % 3 == 0) options.counter_sync_interval = 4.0;
    if (seed % 2 == 0) {
      options.fault.drop_rate = 0.05 + 0.15 * static_cast<double>(seed % 4) / 3.0;
      options.fault.jitter = 0.3;
    }
    if (seed % 4 == 1) options.fault.duplicate_rate = 0.1;
    if (seed % 5 == 0) {
      options.fault.crashes.push_back(
          {static_cast<uint32_t>(seed % options.num_sites), 30.0,
           30.0 + 10.0 * static_cast<double>(seed % 7)});
    }
    DmtResult r = RunDmtSimulation(options);
    EXPECT_EQ(r.committed + r.gave_up, 24u) << "seed=" << seed;
    EXPECT_GT(r.committed, 0u) << "seed=" << seed;
    EXPECT_TRUE(IsDsr(r.committed_history))
        << "seed=" << seed << " sites=" << options.num_sites << "\n"
        << r.committed_history.ToString();
  }
}

}  // namespace
}  // namespace mdts
