#include "common/status.h"

#include <map>

#include "common/backoff.h"
#include "common/bench_clock.h"
#include "common/bench_json.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "core/vector_table.h"
#include "gtest/gtest.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mdts {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad log");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad log");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad log");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FAILED_PRECONDITION: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OUT_OF_RANGE: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// --- Rng / Zipf ---

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
  EXPECT_EQ(rng.Uniform(4, 4), 4);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(9), b(9), c(10);
  EXPECT_EQ(a.Uniform(0, 1 << 20), b.Uniform(0, 1 << 20));
  // Overwhelmingly likely to differ.
  bool differed = false;
  for (int i = 0; i < 8 && !differed; ++i) {
    differed = a.Uniform(0, 1 << 20) != c.Uniform(0, 1 << 20);
  }
  EXPECT_TRUE(differed);
}

TEST(RngTest, ExponentialIsPositiveWithRoughlyRightMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfPicker picker(10, 0.0);
  Rng rng(17);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[picker.Pick(&rng)];
  for (const auto& [item, c] : counts) {
    EXPECT_NEAR(c, 2000, 300) << "item " << item;
  }
}

TEST(ZipfTest, SkewFavorsLowIds) {
  ZipfPicker picker(10, 1.2);
  Rng rng(19);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[picker.Pick(&rng)];
  EXPECT_GT(counts[0], counts[9] * 5);
  EXPECT_GT(counts[0], counts[1]);
}

// --- BackoffPolicy (shared by sim restarts and dist retries) ---

TEST(BackoffTest, MeanDelayGrowsExponentiallyAndCaps) {
  BackoffPolicy p{1.0, 2.0, 10.0};
  EXPECT_DOUBLE_EQ(p.MeanDelay(0), 1.0);
  EXPECT_DOUBLE_EQ(p.MeanDelay(1), 2.0);
  EXPECT_DOUBLE_EQ(p.MeanDelay(2), 4.0);
  EXPECT_DOUBLE_EQ(p.MeanDelay(3), 8.0);
  EXPECT_DOUBLE_EQ(p.MeanDelay(4), 10.0);   // Capped.
  EXPECT_DOUBLE_EQ(p.MeanDelay(100), 10.0);  // Stays capped (no overflow).
}

TEST(BackoffTest, MultiplierOneIsFlatJitteredDelay) {
  // The closed-loop simulator's restart policy: every attempt draws from
  // the same exponential as a bare rng.Exponential(base) would.
  BackoffPolicy p{3.0, 1.0, 3.0};
  Rng a(99), b(99);
  for (uint32_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_DOUBLE_EQ(p.ExpJitterDelay(attempt, &a), b.Exponential(3.0));
  }
}

TEST(BackoffTest, EqualJitterStaysWithinHalfToFullMean) {
  BackoffPolicy p{2.0, 2.0, 16.0};
  Rng rng(7);
  for (uint32_t attempt = 0; attempt < 8; ++attempt) {
    const double m = p.MeanDelay(attempt);
    for (int i = 0; i < 200; ++i) {
      const double d = p.EqualJitterDelay(attempt, &rng);
      EXPECT_GE(d, m / 2.0);
      EXPECT_LT(d, m);
    }
  }
}

TEST(BackoffTest, DeterministicPerSeed) {
  BackoffPolicy p{1.5, 2.0, 24.0};
  Rng a(42), b(42);
  for (uint32_t attempt = 0; attempt < 20; ++attempt) {
    EXPECT_DOUBLE_EQ(p.ExpJitterDelay(attempt, &a),
                     p.ExpJitterDelay(attempt, &b));
  }
}

// --- TablePrinter ---

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long-header"});
  t.AddRow({"xxxxx", "y"});
  const std::string out = t.ToString();
  EXPECT_EQ(out,
            "| a     | long-header |\n"
            "|-------|-------------|\n"
            "| xxxxx | y           |\n");
}

TEST(TablePrinterTest, PadsAndTruncatesRows) {
  TablePrinter t({"a", "b"});
  t.AddRow({"only-one"});
  t.AddRow({"1", "2", "3-dropped"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("only-one"), std::string::npos);
  EXPECT_EQ(out.find("3-dropped"), std::string::npos);
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

// --- VectorTable (the reusable Algorithm-1 encoder) ---

TEST(VectorTableTest, VirtualEntityInitialized) {
  VectorTable t(3);
  EXPECT_EQ(t.Ts(0).ToString(), "<0,*,*>");
  EXPECT_EQ(t.Ts(5).ToString(), "<*,*,*>");
}

TEST(VectorTableTest, SetEncodesAndRefusesReversal) {
  VectorTable t(2);
  EXPECT_TRUE(t.Set(0, 1));  // T0 -> T1: <1,*>.
  EXPECT_EQ(t.Ts(1).ToString(), "<1,*>");
  EXPECT_TRUE(t.Set(1, 2));  // <2,*>.
  EXPECT_TRUE(t.Set(1, 2));  // Idempotent (already determined).
  EXPECT_FALSE(t.Set(2, 1)) << "reversal must be refused";
}

TEST(VectorTableTest, EqualCaseUsesCountersAtLastColumn) {
  VectorTable t(2);
  EXPECT_TRUE(t.Set(0, 1));
  EXPECT_TRUE(t.Set(0, 2));  // Both now <1,*>: wait, Set(0,2) gives <1,*>.
  EXPECT_TRUE(t.Set(1, 2));  // kEqual at last column -> ucount pair.
  EXPECT_EQ(t.Ts(1).ToString(), "<1,1>");
  EXPECT_EQ(t.Ts(2).ToString(), "<1,2>");
}

TEST(VectorTableTest, EqualCaseUsesPairConstantsMidColumn) {
  VectorTable t(3);
  EXPECT_TRUE(t.Set(0, 1));
  EXPECT_TRUE(t.Set(0, 2));
  EXPECT_TRUE(t.Set(1, 2));  // kEqual at column 2 (not last): {1,2}.
  EXPECT_EQ(t.Ts(1).ToString(), "<1,1,*>");
  EXPECT_EQ(t.Ts(2).ToString(), "<1,2,*>");
}

TEST(VectorTableTest, SeedAfterOrdersRestartAfterBlocker) {
  VectorTable t(2);
  EXPECT_TRUE(t.Set(0, 1));
  EXPECT_TRUE(t.Set(1, 2));  // T2 = <2,*>.
  t.SeedAfter(3, 2);
  EXPECT_EQ(t.Ts(3).ToString(), "<3,*>");
  EXPECT_TRUE(VectorLess(t.Ts(2), t.Ts(3)));
  // Seeding after an entity with undefined first element seeds to 1.
  t.SeedAfter(4, 9);
  EXPECT_EQ(t.Ts(4).ToString(), "<1,*>");
}

TEST(VectorTableTest, CountersTrackWork) {
  VectorTable t(2);
  (void)t.Set(0, 1);
  (void)t.Set(1, 2);
  EXPECT_GT(t.element_comparisons(), 0u);
  EXPECT_GT(t.elements_assigned(), 0u);
}

TEST(VectorTableTest, TransitivityAcrossManyEntities) {
  VectorTable t(4);
  for (uint32_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(t.Set(i - 1, i));
  }
  // Chain implies every earlier < every later.
  for (uint32_t a = 0; a <= 20; ++a) {
    for (uint32_t b = a + 1; b <= 20; ++b) {
      EXPECT_TRUE(VectorLess(t.Ts(a), t.Ts(b))) << a << " vs " << b;
      EXPECT_FALSE(t.Set(b, a));
    }
  }
}

TEST(BenchClockTest, PercentileMatchesCeilRankFormula) {
  // 1..100: the pct-th percentile under ceil-rank indexing is pct itself.
  std::vector<double> v;
  for (int n = 100; n >= 1; --n) v.push_back(n);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 50.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 99), 99.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 100), 100.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 1), 1.0);

  // The exact expression the DMT(k) simulation used for p99 before the
  // helper existed: idx = (n * 99 + 99) / 100, sample[min(idx, n) - 1].
  for (size_t n : {1u, 2u, 7u, 99u, 100u, 101u, 250u}) {
    std::vector<double> s;
    for (size_t m = 0; m < n; ++m) s.push_back(static_cast<double>(m));
    const size_t idx = (n * 99 + 99) / 100;
    EXPECT_DOUBLE_EQ(PercentileSorted(s, 99), s[std::min(idx, n) - 1])
        << "n=" << n;
  }
  std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(one, 0), 42.0);
}

TEST(BenchClockTest, StopwatchIsMonotonic) {
  Stopwatch sw;
  const uint64_t a = sw.ElapsedNanos();
  const uint64_t b = sw.ElapsedNanos();
  EXPECT_GE(b, a);
  sw.Reset();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(BenchJsonTest, UpsertCreatesAndReplacesRecords) {
  const std::string path = "bench_json_test.tmp.json";
  std::remove(path.c_str());
  ASSERT_TRUE(UpsertBenchRecord(path, "alpha",
                                {{"ops", JsonNum(123)}, {"name", JsonStr("a")}}));
  ASSERT_TRUE(UpsertBenchRecord(path, "beta", {{"ops", JsonNum(4.5)}}));
  // Re-upserting alpha replaces its record instead of appending.
  ASSERT_TRUE(UpsertBenchRecord(path, "alpha", {{"ops", JsonNum(999)}}));

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string contents = ss.str();
  EXPECT_EQ(contents.find("123"), std::string::npos);
  EXPECT_NE(contents.find("999"), std::string::npos);
  EXPECT_NE(contents.find("\"bench\": \"beta\""), std::string::npos);
  // Valid array shape: starts with '[', ends with "]\n", two record lines.
  EXPECT_EQ(contents.front(), '[');
  EXPECT_EQ(contents.substr(contents.size() - 2), "]\n");
  size_t record_lines = 0;
  std::istringstream lines(contents);
  for (std::string line; std::getline(lines, line);) {
    if (!line.empty() && line[0] == '{') ++record_lines;
  }
  EXPECT_EQ(record_lines, 2u);
  std::remove(path.c_str());
}

TEST(BenchJsonTest, JsonEscapingAndNumbers) {
  EXPECT_EQ(JsonStr("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonNum(2.5), "2.5");
  EXPECT_EQ(JsonNum(1e6), "1e+06");
  EXPECT_EQ(JsonNum(std::nan("")), "null");
}

TEST(VectorTableTest, ReleaseBelowReclaimsAndKeepsVirtual) {
  VectorTable t(3);
  for (uint32_t i = 1; i <= 50; ++i) ASSERT_TRUE(t.Set(i - 1, i));
  const size_t before = t.live_vectors();
  EXPECT_GE(before, 50u);
  EXPECT_EQ(t.ReleaseBelow(41), 40u);
  EXPECT_EQ(t.base_id(), 41u);
  EXPECT_EQ(t.live_vectors(), before - 40);
  // Entity 0 is permanent and the surviving ids keep their vectors.
  EXPECT_EQ(t.Ts(0).ToString().substr(0, 2), "<0");
  EXPECT_TRUE(VectorLess(t.Ts(41), t.Ts(50)));
  // Releasing below the current base is a no-op.
  EXPECT_EQ(t.ReleaseBelow(10), 0u);
}

}  // namespace
}  // namespace mdts
