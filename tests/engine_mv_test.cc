// Multiversion engine suite (labeled engine-mv so the asan-engine-mv /
// tsan-engine-mv presets can run exactly this binary):
//
//  1. Differential: with num_shards == 1 the engine's multiversion mode
//     must make bit-identical decisions and assign bit-identical vectors
//     to the src/mvcc MvMtkScheduler it ports, across batch sizes and
//     protocol variants, on seeded closed-loop workloads.
//  2. Concurrency: multi-threaded chain traffic with commit-side GC and
//     CompactAll sweeps must be race-clean, keep every chain's version
//     order encoded (MvAuditChains), reconcile stats with the registry
//     mirror, and keep live versions bounded.
//  3. GC: the live watermark must reclaim superseded versions once no live
//     transaction can reach them, and never a version a live reader pins.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "core/types.h"
#include "engine/sharded_engine.h"
#include "mvcc/mv_scheduler.h"
#include "obs/metrics.h"

namespace mdts {
namespace {

bool SameVector(const TimestampVector& a, const TimestampVector& b) {
  if (a.size() != b.size()) return false;
  for (size_t m = 0; m < a.size(); ++m) {
    if (a.IsDefined(m) != b.IsDefined(m)) return false;
    if (a.IsDefined(m) && a.Get(m) != b.Get(m)) return false;
  }
  return true;
}

// Feeds identical seeded closed-loop traffic to a single-shard multiversion
// engine (batched admission) and the reference MvMtkScheduler (one Process
// per op). With one shard, ProcessBatch decides in array order, so the two
// must agree operation by operation - decisions, per-transaction vectors,
// and the version/read counters.
struct DifferentialRun {
  size_t k = 3;
  bool starvation_fix = false;
  size_t batch = 1;
  uint64_t seed = 1;
  size_t txn_width = 4;     // Concurrent transactions in the closed loop.
  size_t ops_per_txn = 5;
  ItemId items = 8;
  uint32_t target_commits = 120;
  size_t max_restarts = 64;  // Per transaction id, then it is abandoned.
};

void RunDifferential(const DifferentialRun& cfg) {
  EngineOptions eo;
  eo.k = cfg.k;
  eo.num_shards = 1;
  eo.multiversion = true;
  eo.starvation_fix = cfg.starvation_fix;
  ShardedMtkEngine engine(eo);

  MvMtkOptions mo;
  mo.k = cfg.k;
  mo.starvation_fix = cfg.starvation_fix;
  MvMtkScheduler ref(mo);

  std::mt19937_64 rng(cfg.seed);
  struct Slot {
    TxnId txn = 0;
    size_t done = 0;
    size_t restarts = 0;
  };
  std::vector<Slot> slots(cfg.txn_width);
  TxnId next_txn = 1;
  for (Slot& s : slots) s.txn = next_txn++;

  std::vector<Op> ops;
  std::vector<OpDecision> dec(cfg.batch);
  std::vector<AbortReason> why(cfg.batch);
  uint32_t commits = 0;
  uint64_t rounds = 0;
  while (commits < cfg.target_commits) {
    ASSERT_LT(++rounds, 200000u) << "differential loop starved";
    ops.clear();
    for (size_t b = 0; b < cfg.batch; ++b) {
      const Slot& s = slots[rng() % slots.size()];
      Op op;
      op.txn = s.txn;
      op.type = rng() % 5 < 3 ? OpType::kRead : OpType::kWrite;
      op.item = static_cast<ItemId>(rng() % cfg.items);
      ops.push_back(op);
    }
    engine.ProcessBatch(std::span<const Op>(ops.data(), ops.size()),
                        dec.data(), why.data());
    for (size_t b = 0; b < ops.size(); ++b) {
      const OpDecision rd = ref.Process(ops[b]);
      ASSERT_EQ(dec[b], rd)
          << "decision divergence at round " << rounds << " op " << b
          << " txn T" << ops[b].txn << " item " << ops[b].item << " "
          << (ops[b].type == OpType::kRead ? "read" : "write")
          << " reason " << AbortReasonName(why[b]);
    }
    // Terminal handling mirrors in both; vectors must match throughout.
    for (Slot& s : slots) {
      const bool ea = engine.IsAborted(s.txn);
      ASSERT_EQ(ea, ref.IsAborted(s.txn)) << "T" << s.txn;
      ASSERT_TRUE(SameVector(engine.TsSnapshot(s.txn), ref.Ts(s.txn)))
          << "vector divergence on T" << s.txn << ": engine "
          << engine.TsSnapshot(s.txn).ToString() << " ref "
          << ref.Ts(s.txn).ToString();
      if (ea) {
        if (++s.restarts > cfg.max_restarts) {
          s.txn = next_txn++;  // Abandon the starving id.
          s.restarts = 0;
          s.done = 0;
          continue;
        }
        engine.RestartTxn(s.txn);
        ref.RestartTxn(s.txn);
        s.done = 0;
      }
    }
    // Progress accounting: accepted ops per slot come from the decisions.
    size_t cursor = 0;
    for (const Op& op : ops) {
      const OpDecision d = dec[cursor++];
      if (d != OpDecision::kAccept) continue;
      for (Slot& s : slots) {
        if (s.txn != op.txn || engine.IsAborted(s.txn)) continue;
        if (++s.done >= cfg.ops_per_txn) {
          engine.CommitTxn(s.txn);
          ref.CommitTxn(s.txn);
          ++commits;
          s.txn = next_txn++;
          s.done = 0;
          s.restarts = 0;
        }
        break;
      }
    }
  }

  const EngineStats st = engine.stats();
  const MvMtkStats& rs = ref.stats();
  EXPECT_EQ(st.versions_installed, rs.versions_created);
  EXPECT_EQ(st.old_version_reads, rs.old_version_reads);
  EXPECT_EQ(st.read_rejects, rs.read_rejects);
  EXPECT_TRUE(engine.MvAuditChains());
  EXPECT_TRUE(ref.AuditMvsgAcyclic());
}

TEST(EngineMvDifferentialTest, MatchesMvSchedulerPerOp) {
  DifferentialRun cfg;
  cfg.batch = 1;
  cfg.seed = 11;
  RunDifferential(cfg);
}

TEST(EngineMvDifferentialTest, MatchesMvSchedulerAcrossBatchSizes) {
  for (const size_t batch : {2u, 4u, 8u}) {
    DifferentialRun cfg;
    cfg.batch = batch;
    cfg.seed = 100 + batch;
    RunDifferential(cfg);
  }
}

TEST(EngineMvDifferentialTest, MatchesMvSchedulerWithStarvationFix) {
  for (const size_t batch : {1u, 4u}) {
    DifferentialRun cfg;
    cfg.starvation_fix = true;
    cfg.batch = batch;
    cfg.seed = 200 + batch;
    RunDifferential(cfg);
  }
}

TEST(EngineMvDifferentialTest, MatchesMvSchedulerAtOtherVectorSizes) {
  for (const size_t k : {2u, 4u}) {
    DifferentialRun cfg;
    cfg.k = k;
    cfg.batch = 4;
    cfg.seed = 300 + k;
    RunDifferential(cfg);
  }
}

TEST(EngineMvDifferentialTest, HighContentionSingleItem) {
  DifferentialRun cfg;
  cfg.items = 2;
  cfg.batch = 4;
  cfg.starvation_fix = true;
  cfg.seed = 41;
  cfg.target_commits = 80;
  RunDifferential(cfg);
}

// ---------------------------------------------------------------------------
// Basic semantics.

TEST(EngineMvTest, ReadsNeverAbortUnderWriteContention) {
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.multiversion = true;
  eo.starvation_fix = true;
  ShardedMtkEngine engine(eo);

  // Writers create versions of item 0; interleaved readers must all be
  // served (from some version) without a single read-induced abort.
  TxnId next = 1;
  for (int round = 0; round < 40; ++round) {
    const TxnId w = next++;
    const TxnId r = next++;
    OpDecision dw = engine.Process({w, OpType::kWrite, 0});
    OpDecision dr = engine.Process({r, OpType::kRead, 0});
    EXPECT_EQ(dr, OpDecision::kAccept) << "round " << round;
    engine.CommitTxn(r);
    if (dw == OpDecision::kAccept) {
      engine.CommitTxn(w);
    } else {
      engine.RestartTxn(w);
    }
  }
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.read_rejects, 0u);
  EXPECT_GT(st.versions_installed, 0u);
  EXPECT_TRUE(engine.MvAuditChains());
}

TEST(EngineMvTest, WriteConflictClassifiedAsVersionConflict) {
  EngineOptions eo;
  eo.k = 2;  // Small vectors exhaust encodings quickly.
  eo.num_shards = 1;
  eo.multiversion = true;
  ShardedMtkEngine engine(eo);

  // A reader ordered after a would-be writer blocks the write: the
  // classic reader-blocks-older-writer multiversion conflict.
  ASSERT_EQ(engine.Process({1, OpType::kWrite, 0}), OpDecision::kAccept);
  ASSERT_EQ(engine.Process({2, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(engine.Process({2, OpType::kWrite, 1}), OpDecision::kAccept);
  engine.CommitTxn(1);
  engine.CommitTxn(2);
  // T3 reads item 1 (ordering it after T2), then tries to write item 0,
  // whose chain tops are T1's version read by T2 - T3 can still place a
  // version after T1's, so drive the conflict through a reader of the
  // NEWEST version: T4 reads item 0 (served by T1's version), T5 must now
  // order after T4 to write item 0... keep writing until a reject shows
  // up and assert its classification instead of scripting the exact state.
  AbortReason why = AbortReason::kNone;
  bool saw_reject = false;
  TxnId t = 3;
  for (; t < 300 && !saw_reject; ++t) {
    const OpDecision dr = engine.Process({t, OpType::kRead, 0}, &why);
    ASSERT_EQ(dr, OpDecision::kAccept);
    const OpDecision dw = engine.Process({t, OpType::kWrite, 0}, &why);
    if (dw == OpDecision::kReject) {
      saw_reject = true;
      EXPECT_EQ(why, AbortReason::kVersionConflict)
          << AbortReasonName(why);
      break;
    }
    engine.CommitTxn(t);
  }
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.reject_reasons.counts[static_cast<size_t>(
                AbortReason::kVersionConflict)],
            st.rejected);
}

TEST(EngineMvTest, StatsReconcileWithRegistryMirror) {
  MetricsRegistry reg;
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.multiversion = true;
  eo.starvation_fix = true;
  eo.metrics = &reg;
  eo.mirror_flush_ops = 64;  // Force buffering to actually buffer.
  eo.compact_every = 16;
  ShardedMtkEngine engine(eo);

  std::mt19937_64 rng(7);
  TxnId next = 1;
  std::vector<Op> batch(4);
  std::vector<OpDecision> dec(4);
  for (int round = 0; round < 400; ++round) {
    const TxnId t = next++;
    for (size_t b = 0; b < batch.size(); ++b) {
      batch[b] = {t, rng() % 2 == 0 ? OpType::kRead : OpType::kWrite,
                  static_cast<ItemId>(rng() % 8)};
    }
    const size_t ok =
        engine.ProcessBatch(std::span<const Op>(batch.data(), batch.size()),
                            dec.data());
    if (engine.IsAborted(t)) {
      engine.RestartTxn(t);
    } else if (ok == batch.size()) {
      engine.CommitTxn(t);
    } else {
      engine.CommitTxn(t);  // Partial acceptance still commits: reads
                            // and writes accepted so far are consistent.
    }
  }
  // stats() is the observation point: it drains every pending mirror
  // buffer, so the snapshot below must reconcile exactly.
  const EngineStats st = engine.stats();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("engine.accepted"), st.accepted);
  EXPECT_EQ(snap.CounterSum("engine.rejected."), st.rejected);
  EXPECT_EQ(snap.CounterValue("engine.versions_installed"),
            st.versions_installed);
  EXPECT_EQ(snap.CounterValue("engine.versions_gc"), st.versions_gc);
  EXPECT_EQ(snap.CounterValue("engine.lock_contention"), st.lock_contention);
  EXPECT_EQ(snap.CounterValue("engine.batches"), st.batches);
  EXPECT_EQ(snap.CounterValue("engine.batch_ops"), st.batch_ops);
  EXPECT_EQ(snap.CounterValue("engine.compactions"), st.compactions);
  EXPECT_EQ(snap.GaugeValue("engine.live_versions"),
            static_cast<int64_t>(st.live_versions));
  EXPECT_EQ(st.live_versions, st.versions_installed - st.versions_gc);
}

// ---------------------------------------------------------------------------
// Garbage collection.

TEST(EngineMvGcTest, WatermarkReclaimsSupersededVersions) {
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.multiversion = true;
  eo.starvation_fix = true;
  ShardedMtkEngine engine(eo);

  // 50 committed writer generations on one item, no readers pinning
  // anything: after a sweep with no live transactions, the chain must
  // shrink to the newest committed version.
  for (TxnId t = 1; t <= 50; ++t) {
    ASSERT_EQ(engine.Process({t, OpType::kWrite, 0}), OpDecision::kAccept);
    engine.CommitTxn(t);
  }
  EngineStats st = engine.stats();
  EXPECT_EQ(st.versions_installed, 50u);
  engine.CompactAll();
  st = engine.stats();
  EXPECT_EQ(st.live_versions, 1u) << "chain did not shrink to the newest "
                                     "committed version";
  EXPECT_EQ(st.versions_gc, st.versions_installed - st.live_versions);
  EXPECT_TRUE(engine.MvAuditChains());

  // New transactions still order strictly after the surviving version.
  ASSERT_EQ(engine.Process({51, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(engine.Process({51, OpType::kWrite, 0}), OpDecision::kAccept);
  engine.CommitTxn(51);
}

TEST(EngineMvGcTest, KeepTailPreservesReadFallbackVersions) {
  // mv_gc_keep_tail keeps the N newest committed versions through the
  // sweep: future readers whose vectors get pinned by earlier operations
  // need an older (smaller-element) writer to fall back to, which the
  // default maximal reclaim (tail 1) can strip. The tail is a per-chain
  // memory bound, not a watermark override - superseded versions below
  // the tail still go.
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.multiversion = true;
  eo.starvation_fix = true;
  eo.mv_gc_keep_tail = 4;
  ShardedMtkEngine engine(eo);

  for (TxnId t = 1; t <= 50; ++t) {
    ASSERT_EQ(engine.Process({t, OpType::kWrite, 0}), OpDecision::kAccept);
    engine.CommitTxn(t);
  }
  engine.CompactAll();
  EngineStats st = engine.stats();
  EXPECT_EQ(st.live_versions, 4u)
      << "sweep must keep exactly mv_gc_keep_tail committed versions";
  EXPECT_EQ(st.versions_gc, st.versions_installed - st.live_versions);
  EXPECT_TRUE(engine.MvAuditChains());

  // The surviving tail is the NEWEST four: a fresh reader takes the
  // newest version (no old-version fallback needed here), and a second
  // sweep with nothing new reclaims nothing further.
  ASSERT_EQ(engine.Process({51, OpType::kRead, 0}), OpDecision::kAccept);
  engine.CommitTxn(51);
  engine.CompactAll();
  st = engine.stats();
  EXPECT_EQ(st.live_versions, 4u);
  EXPECT_TRUE(engine.MvAuditChains());
}

TEST(EngineMvGcTest, LiveTransactionPinsItsVisibleVersions) {
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.multiversion = true;
  eo.starvation_fix = true;
  ShardedMtkEngine engine(eo);

  // A long-running reader begins (first op pins its begin stamp), then
  // writers supersede the version population behind it. The sweep's
  // watermark is the reader's begin stamp, so every version stamped at or
  // after it survives.
  ASSERT_EQ(engine.Process({1, OpType::kRead, 1}), OpDecision::kAccept);
  for (TxnId t = 2; t <= 21; ++t) {
    ASSERT_EQ(engine.Process({t, OpType::kWrite, 0}), OpDecision::kAccept);
    engine.CommitTxn(t);
  }
  engine.CompactAll();
  const EngineStats mid = engine.stats();
  EXPECT_GT(mid.live_versions, 1u)
      << "sweep reclaimed versions the live reader could still reach";

  // The reader finishes; the next sweep passes the whole clock again.
  engine.CommitTxn(1);
  engine.CompactAll();
  const EngineStats fin = engine.stats();
  EXPECT_EQ(fin.live_versions, 1u);
  EXPECT_TRUE(engine.MvAuditChains());
}

TEST(EngineMvGcTest, CommitSidePruningBoundsChainsBetweenSweeps) {
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.multiversion = true;
  eo.starvation_fix = true;
  eo.compact_every = 25;  // Periodic sweeps refresh the watermark...
  ShardedMtkEngine engine(eo);

  // ...and the commit hook prunes written chains against it in between,
  // so a hot item's chain stays near-constant instead of growing with
  // total history.
  uint64_t peak = 0;
  for (TxnId t = 1; t <= 400; ++t) {
    ASSERT_EQ(engine.Process({t, OpType::kWrite, 0}), OpDecision::kAccept);
    engine.CommitTxn(t);
    peak = std::max(peak, engine.stats().live_versions);
  }
  EXPECT_LE(peak, 60u) << "live versions grew with history instead of "
                          "being bounded by the watermark";
  EXPECT_TRUE(engine.MvAuditChains());
}

// ---------------------------------------------------------------------------
// Concurrency (race-clean under TSan; chain order and reconciliation hold).

uint64_t MvWorker(ShardedMtkEngine& engine, size_t t, size_t stride,
                  uint32_t txns_to_commit, ItemId items, size_t ops_per_txn,
                  uint64_t seed, std::atomic<uint64_t>* read_accepts) {
  std::mt19937_64 rng(seed);
  TxnId txn = static_cast<TxnId>(1 + t);
  uint32_t started = 1;
  uint64_t committed = 0;
  size_t done = 0;
  uint64_t rounds = 0;
  std::vector<Op> batch;
  std::vector<OpDecision> dec(4);
  while (committed < txns_to_commit) {
    if (++rounds > 2000000) {
      ADD_FAILURE() << "mv worker " << t << " starved at " << committed;
      break;
    }
    batch.clear();
    const size_t width = 1 + rng() % 4;
    for (size_t b = 0; b < width; ++b) {
      batch.push_back({txn, rng() % 5 < 3 ? OpType::kRead : OpType::kWrite,
                       static_cast<ItemId>(rng() % items)});
    }
    engine.ProcessBatch(std::span<const Op>(batch.data(), batch.size()),
                        dec.data());
    for (size_t b = 0; b < batch.size(); ++b) {
      if (dec[b] == OpDecision::kAccept &&
          batch[b].type == OpType::kRead) {
        read_accepts->fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (engine.IsAborted(txn)) {
      engine.RestartTxn(txn);
      done = 0;
      continue;
    }
    for (size_t b = 0; b < batch.size(); ++b) {
      if (dec[b] == OpDecision::kAccept) ++done;
    }
    if (done >= ops_per_txn) {
      engine.CommitTxn(txn);
      ++committed;
      txn = static_cast<TxnId>(1 + t + started * stride);
      ++started;
      done = 0;
    }
  }
  return committed;
}

TEST(EngineMvConcurrencyTest, ChainAndGcRaces) {
  constexpr size_t kWorkers = 4;
  constexpr uint32_t kTxnsPerWorker = 250;
  constexpr ItemId kItems = 16;
  constexpr size_t kOpsPerTxn = 4;

  MetricsRegistry reg;
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 4;
  eo.multiversion = true;
  eo.starvation_fix = true;
  eo.metrics = &reg;
  eo.mirror_flush_ops = 128;
  eo.compact_every = 64;
  ShardedMtkEngine engine(eo);

  std::atomic<uint64_t> read_accepts{0};
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  // A dedicated antagonist hammers CompactAll and stats() while workers
  // mutate chains - the sweep / decision / commit-prune interleavings are
  // exactly what the suite exists to exercise under TSan.
  std::thread antagonist([&] {
    while (!stop.load(std::memory_order_acquire)) {
      engine.CompactAll();
      (void)engine.stats();
      std::this_thread::yield();
    }
  });
  for (size_t t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      MvWorker(engine, t, kWorkers, kTxnsPerWorker, kItems, kOpsPerTxn,
               0x9E3779B97F4A7C15ull * (t + 1), &read_accepts);
    });
  }
  for (std::thread& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  antagonist.join();

  EXPECT_TRUE(engine.MvAuditChains());

  const EngineStats st = engine.stats();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("engine.accepted"), st.accepted);
  EXPECT_EQ(snap.CounterSum("engine.rejected."), st.rejected);
  EXPECT_EQ(snap.CounterValue("engine.versions_installed"),
            st.versions_installed);
  EXPECT_EQ(snap.CounterValue("engine.versions_gc"), st.versions_gc);
  EXPECT_EQ(st.live_versions, st.versions_installed - st.versions_gc);

  // Bounded memory: a final sweep with nothing live leaves at most one
  // version per item.
  engine.CompactAll();
  EXPECT_LE(engine.stats().live_versions, static_cast<uint64_t>(kItems));

  // The multiversion payoff held under concurrency: reads were served.
  EXPECT_GT(read_accepts.load(), 0u);
}

TEST(EngineMvConcurrencyTest, ReadsDoNotAbortAcrossThreads) {
  constexpr size_t kWorkers = 3;
  EngineOptions eo;
  eo.k = 4;
  eo.num_shards = 4;
  eo.multiversion = true;
  eo.starvation_fix = true;
  eo.compact_every = 128;
  ShardedMtkEngine engine(eo);

  std::atomic<uint64_t> read_accepts{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      MvWorker(engine, t, kWorkers, 150, 8, 4,
               0xD1B54A32D192ED03ull * (t + 1), &read_accepts);
    });
  }
  for (std::thread& th : threads) th.join();

  // Reads are reject-free except when GC truncation plus exhausted
  // encodings leaves no orderable version (rare by construction): allow
  // at most 1% of accepted reads, against an SV baseline where roughly
  // half of all ops abort at this contention.
  const EngineStats st = engine.stats();
  EXPECT_LE(st.read_rejects * 100, read_accepts.load())
      << "multiversion reads aborted under concurrent write traffic: "
      << st.read_rejects << " rejects / " << read_accepts.load()
      << " accepts";
  EXPECT_TRUE(engine.MvAuditChains());
}

}  // namespace
}  // namespace mdts
