#include "fault/fault.h"

#include <cmath>

#include "gtest/gtest.h"

namespace mdts {
namespace {

TEST(FaultPlanTest, DefaultIsFaultFree) {
  FaultPlan plan;
  EXPECT_FALSE(plan.any_faults());
}

TEST(FaultPlanTest, AnyKnobActivates) {
  FaultPlan drop;
  drop.drop_rate = 0.1;
  EXPECT_TRUE(drop.any_faults());
  FaultPlan dup;
  dup.duplicate_rate = 0.1;
  EXPECT_TRUE(dup.any_faults());
  FaultPlan jitter;
  jitter.jitter = 0.5;
  EXPECT_TRUE(jitter.any_faults());
  FaultPlan crash;
  crash.crashes.push_back({0, 10.0, 20.0});
  EXPECT_TRUE(crash.any_faults());
}

TEST(FaultPlanTest, CrashDefaultsToNoRecovery) {
  SiteCrash c;
  EXPECT_FALSE(std::isfinite(c.recover_time));
}

TEST(FaultInjectorTest, CleanPlanDeliversExactlyOnce) {
  FaultInjector injector(FaultPlan{}, 7);
  for (int i = 0; i < 100; ++i) {
    const auto d = injector.Deliveries(0.5);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_DOUBLE_EQ(d[0], 0.5);
  }
}

TEST(FaultInjectorTest, DropRateOneDropsEverything) {
  FaultPlan plan;
  plan.drop_rate = 1.0;
  FaultInjector injector(plan, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.Deliveries(1.0).empty());
  }
}

TEST(FaultInjectorTest, DuplicateRateOneDeliversTwice) {
  FaultPlan plan;
  plan.duplicate_rate = 1.0;
  FaultInjector injector(plan, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.Deliveries(1.0).size(), 2u);
  }
}

TEST(FaultInjectorTest, DropRateIsStatisticallyHonored) {
  FaultPlan plan;
  plan.drop_rate = 0.3;
  FaultInjector injector(plan, 11);
  int dropped = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (injector.Deliveries(1.0).empty()) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.3, 0.02);
}

TEST(FaultInjectorTest, JitterDelaysButNeverReordersBelowBase) {
  FaultPlan plan;
  plan.jitter = 0.4;
  FaultInjector injector(plan, 13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto d = injector.Deliveries(1.0);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_GE(d[0], 1.0);  // Jitter only ever adds delay.
    sum += d[0];
  }
  EXPECT_NEAR(sum / n, 1.4, 0.05);
}

TEST(FaultInjectorTest, DuplicateCopiesGetIndependentJitter) {
  FaultPlan plan;
  plan.duplicate_rate = 1.0;
  plan.jitter = 0.5;
  FaultInjector injector(plan, 17);
  int distinct = 0;
  for (int i = 0; i < 50; ++i) {
    const auto d = injector.Deliveries(1.0);
    ASSERT_EQ(d.size(), 2u);
    if (d[0] != d[1]) ++distinct;
  }
  EXPECT_GT(distinct, 45);  // Ties have probability ~0.
}

TEST(FaultInjectorTest, DeterministicPerSeed) {
  FaultPlan plan;
  plan.drop_rate = 0.2;
  plan.duplicate_rate = 0.2;
  plan.jitter = 0.3;
  FaultInjector a(plan, 23);
  FaultInjector b(plan, 23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Deliveries(1.0), b.Deliveries(1.0));
  }
}

}  // namespace
}  // namespace mdts
