#include "sched/adaptive.h"

#include "classify/classes.h"
#include "gtest/gtest.h"
#include "sim/simulator.h"

namespace mdts {
namespace {

AdaptiveOptions FastAdaptation() {
  AdaptiveOptions o;
  o.initial_k = 1;
  o.min_k = 1;
  o.max_k = 7;
  o.epoch_ops = 60;
  o.grow_threshold = 0.08;
  o.shrink_threshold = 0.01;
  return o;
}

TEST(AdaptiveTest, GrowsUnderContention) {
  AdaptiveMtScheduler s(FastAdaptation());
  SimOptions sim;
  sim.num_txns = 250;
  sim.concurrency = 10;
  sim.seed = 52;
  sim.workload.num_items = 5;  // High contention.
  sim.workload.min_ops = 2;
  sim.workload.max_ops = 4;
  sim.workload.read_fraction = 0.5;
  SimResult r = RunSimulation(&s, sim);
  EXPECT_EQ(r.committed + r.gave_up, 250u);
  EXPECT_GT(s.current_k(), 1u) << "contention should have grown k";
  EXPECT_GT(s.switches(), 0u);
  EXPECT_TRUE(IsDsr(r.committed_history));
}

TEST(AdaptiveTest, StaysSmallWithoutContention) {
  AdaptiveMtScheduler s(FastAdaptation());
  SimOptions sim;
  sim.num_txns = 150;
  sim.concurrency = 6;
  sim.seed = 53;
  sim.workload.num_items = 400;  // Conflict-free.
  sim.workload.min_ops = 2;
  sim.workload.max_ops = 3;
  SimResult r = RunSimulation(&s, sim);
  EXPECT_EQ(r.committed, 150u);
  EXPECT_EQ(s.current_k(), 1u);
  EXPECT_EQ(s.switches(), 0u);
}

TEST(AdaptiveTest, StaleTransactionsAreAbortedAcrossSwitch) {
  AdaptiveOptions o = FastAdaptation();
  AdaptiveMtScheduler s(o);
  s.OnBegin(1);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  // Force a switch by driving the abort rate with a conflicting pair.
  TxnId t = 2;
  const uint64_t switches_before = s.switches();
  for (int i = 0; i < 2000 && s.switches() == switches_before; ++i) {
    // Alternate a guaranteed-conflict pattern: T_a writes x, T_b writes x,
    // T_a writes x again (rejected under any k).
    s.OnBegin(t);
    s.OnBegin(t + 1);
    s.OnOperation(Op{t, OpType::kWrite, 1});
    s.OnOperation(Op{t + 1, OpType::kWrite, 1});
    if (s.OnOperation(Op{t, OpType::kWrite, 1}) == SchedOutcome::kAborted) {
      s.OnRestart(t);
    }
    s.OnCommit(t + 1);
    t += 2;
  }
  if (s.switches() > 0) {
    // T1 began before the switch: it is stale and must be turned away.
    EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}),
              SchedOutcome::kAborted);
    // After a restart it runs under the new table.
    s.OnRestart(1);
    s.OnBegin(1);
    EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}),
              SchedOutcome::kAccepted);
  } else {
    GTEST_SKIP() << "no switch triggered; adjust thresholds";
  }
}

TEST(AdaptiveTest, TrajectoryRecordsEpochDecisions) {
  AdaptiveMtScheduler s(FastAdaptation());
  SimOptions sim;
  sim.num_txns = 200;
  sim.concurrency = 8;
  sim.seed = 54;
  sim.workload.num_items = 6;
  sim.workload.min_ops = 2;
  sim.workload.max_ops = 4;
  RunSimulation(&s, sim);
  EXPECT_FALSE(s.k_history().empty());
  for (size_t k : s.k_history()) {
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 7u);
  }
}

}  // namespace
}  // namespace mdts
