#include "core/log.h"

#include "gtest/gtest.h"

namespace mdts {
namespace {

TEST(LogParseTest, ParsesPaperExample1) {
  auto r = Log::Parse("W1[x] W1[y] R3[x] R2[y]");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Log& log = r.value();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.at(0), (Op{1, OpType::kWrite, 0}));
  EXPECT_EQ(log.at(1), (Op{1, OpType::kWrite, 1}));
  EXPECT_EQ(log.at(2), (Op{3, OpType::kRead, 0}));
  EXPECT_EQ(log.at(3), (Op{2, OpType::kRead, 1}));
  EXPECT_EQ(log.num_txns(), 3u);
  EXPECT_EQ(log.num_items(), 2u);
}

TEST(LogParseTest, AcceptsParenthesesAndNoWhitespace) {
  // The paper's starvation example uses parentheses: W1(x)W2(x)R3(y)W3(x).
  auto r = Log::Parse("W1(x)W2(x)R3(y)W3(x)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
  EXPECT_EQ(r->at(3), (Op{3, OpType::kWrite, 0}));
}

TEST(LogParseTest, NumericItemsAndMultiDigitTxns) {
  auto r = Log::Parse("R12[7] W3[0]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->at(0).txn, 12u);
  EXPECT_EQ(r->at(0).item, 7u);
  EXPECT_EQ(r->num_items(), 8u);
}

TEST(LogParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Log::Parse("X1[x]").ok());
  EXPECT_FALSE(Log::Parse("R[x]").ok());
  EXPECT_FALSE(Log::Parse("R1x]").ok());
  EXPECT_FALSE(Log::Parse("R1[x").ok());
  EXPECT_FALSE(Log::Parse("R1[]").ok());
  EXPECT_FALSE(Log::Parse("R0[x]").ok()) << "txn 0 is the virtual txn";
}

TEST(LogTest, RoundTripToString) {
  auto r = Log::Parse("R1[x] W1[y] W1[z] R2[y] W2[x] R3[z] W3[y]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "R1[x] W1[y] W1[z] R2[y] W2[x] R3[z] W3[y]");
  auto again = Log::Parse(r->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), r->ToString());
}

TEST(LogTest, ReadAndWriteSets) {
  auto r = Log::Parse("R1[x] R1[z] W1[y] W1[x] R2[y]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ReadSet(1), (std::vector<ItemId>{0, 2}));
  EXPECT_EQ(r->WriteSet(1), (std::vector<ItemId>{1, 0}));
  EXPECT_EQ(r->ReadSet(2), (std::vector<ItemId>{1}));
  EXPECT_TRUE(r->WriteSet(2).empty());
  EXPECT_EQ(r->OpsOfTxn(1), 4u);
  EXPECT_EQ(r->MaxOpsPerTxn(), 4u);
}

TEST(LogTest, DuplicateAccessesDedupedInSets) {
  auto r = Log::Parse("R1[x] R1[x] W1[x] W1[x]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ReadSet(1).size(), 1u);
  EXPECT_EQ(r->WriteSet(1).size(), 1u);
}

TEST(LogTest, TwoStepDetection) {
  EXPECT_TRUE(Log::Parse("R1[x] R2[y] W1[x] W2[y]")->IsTwoStep());
  EXPECT_TRUE(Log::Parse("R1[x] R1[y] W1[x]")->IsTwoStep());
  // A read after a write of the same transaction breaks the model.
  EXPECT_FALSE(Log::Parse("W1[x] R1[y]")->IsTwoStep());
  // Interleaving across transactions is fine.
  EXPECT_TRUE(Log::Parse("R1[x] W2[y] W1[x]")->IsTwoStep());
}

TEST(LogTest, ConcatRenumbersTransactions) {
  Log a = *Log::Parse("R1[x] W2[x]");
  Log b = *Log::Parse("R1[x] W1[y]");
  Log c = a.Concat(b, /*disjoint_items=*/true);
  EXPECT_EQ(c.ToString(), "R1[x] W2[x] R3[y] W3[z]");
  EXPECT_EQ(c.num_txns(), 3u);

  Log d = a.Concat(b, /*disjoint_items=*/false);
  EXPECT_EQ(d.ToString(), "R1[x] W2[x] R3[x] W3[y]");
}

TEST(LogTest, EmptyLogProperties) {
  Log log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.num_txns(), 0u);
  EXPECT_EQ(log.MaxOpsPerTxn(), 0u);
  EXPECT_TRUE(log.IsTwoStep());
}

}  // namespace
}  // namespace mdts
