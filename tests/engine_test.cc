#include "engine/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/mtk_scheduler.h"
#include "core/types.h"
#include "obs/abort_reason.h"
#include "obs/metrics.h"

namespace mdts {
namespace {

// ---------------------------------------------------------------------------
// Single-shard equivalence: with num_shards = 1 the engine must accept
// exactly the logs MtkScheduler accepts and assign the same vectors, since
// its counter encoding value * N + shard degenerates to the scheduler's
// plain counters at N = 1.
// ---------------------------------------------------------------------------

struct EquivConfig {
  size_t k;
  bool starvation_fix;
  bool thomas_write_rule;
  bool relaxed_read_path;
  bool disable_old_read_path;
};

void RunEquivalence(const EquivConfig& cfg, uint64_t seed) {
  MtkOptions mo;
  mo.k = cfg.k;
  mo.starvation_fix = cfg.starvation_fix;
  mo.thomas_write_rule = cfg.thomas_write_rule;
  mo.relaxed_read_path = cfg.relaxed_read_path;
  mo.disable_old_read_path = cfg.disable_old_read_path;
  MtkScheduler sched(mo);

  EngineOptions eo;
  eo.k = cfg.k;
  eo.num_shards = 1;
  eo.starvation_fix = cfg.starvation_fix;
  eo.thomas_write_rule = cfg.thomas_write_rule;
  eo.relaxed_read_path = cfg.relaxed_read_path;
  eo.disable_old_read_path = cfg.disable_old_read_path;
  ShardedMtkEngine engine(eo);

  std::mt19937_64 rng(seed);
  constexpr ItemId kItems = 12;
  constexpr size_t kLive = 24;
  constexpr size_t kSteps = 4000;

  std::vector<TxnId> live;
  TxnId next_txn = 1;
  for (size_t n = 0; n < kLive; ++n) live.push_back(next_txn++);
  std::vector<TxnId> all_txns = live;

  for (size_t step = 0; step < kSteps; ++step) {
    const TxnId i = live[rng() % live.size()];
    ASSERT_EQ(sched.IsAborted(i), engine.IsAborted(i)) << "step " << step;
    if (sched.IsAborted(i)) {
      if (rng() % 2 == 0) {
        sched.RestartTxn(i);
        engine.RestartTxn(i);
      }
      continue;
    }
    if (rng() % 16 == 0) {
      sched.CommitTxn(i);
      engine.CommitTxn(i);
      // Replace with a fresh transaction so the workload keeps moving.
      auto it = std::find(live.begin(), live.end(), i);
      *it = next_txn;
      all_txns.push_back(next_txn);
      ++next_txn;
      continue;
    }
    Op op;
    op.txn = i;
    op.type = rng() % 8 < 5 ? OpType::kRead : OpType::kWrite;
    op.item = static_cast<ItemId>(rng() % kItems);
    const OpDecision ds = sched.Process(op);
    const OpDecision de = engine.Process(op);
    ASSERT_EQ(ds, de) << "step " << step << " txn " << i << " item "
                      << op.item;
  }

  for (TxnId t : all_txns) {
    ASSERT_EQ(sched.IsAborted(t), engine.IsAborted(t)) << "txn " << t;
    ASSERT_EQ(sched.IsCommitted(t), engine.IsCommitted(t)) << "txn " << t;
    EXPECT_TRUE(sched.Ts(t) == engine.TsSnapshot(t))
        << "txn " << t << ": " << sched.Ts(t).ToString() << " vs "
        << engine.TsSnapshot(t).ToString();
  }
  EXPECT_TRUE(sched.Ts(kVirtualTxn) == engine.TsSnapshot(kVirtualTxn));
}

TEST(EngineEquivalenceTest, SingleShardMatchesSchedulerAcrossConfigs) {
  const EquivConfig configs[] = {
      {1, false, false, false, false}, {2, false, false, false, false},
      {3, false, false, false, false}, {5, false, false, false, false},
      {3, true, false, false, false},  {3, false, true, false, false},
      {3, true, true, false, false},   {3, false, false, true, false},
      {3, false, false, false, true},  {2, true, true, true, false},
  };
  uint64_t seed = 20260805;
  for (const EquivConfig& cfg : configs) {
    SCOPED_TRACE("k=" + std::to_string(cfg.k) +
                 " fix=" + std::to_string(cfg.starvation_fix) +
                 " thomas=" + std::to_string(cfg.thomas_write_rule) +
                 " relaxed=" + std::to_string(cfg.relaxed_read_path) +
                 " no_old_read=" + std::to_string(cfg.disable_old_read_path));
    RunEquivalence(cfg, seed++);
  }
}

TEST(EngineEquivalenceTest, SingleShardMatchesSchedulerWithCompaction) {
  // Compaction on both sides must not change any decision.
  MtkOptions mo;
  mo.k = 3;
  mo.starvation_fix = true;
  mo.compact_every = 32;
  MtkScheduler sched(mo);

  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 1;
  eo.starvation_fix = true;
  eo.compact_every = 32;
  ShardedMtkEngine engine(eo);

  std::mt19937_64 rng(7);
  std::vector<TxnId> live;
  TxnId next_txn = 1;
  for (size_t n = 0; n < 16; ++n) live.push_back(next_txn++);

  for (size_t step = 0; step < 6000; ++step) {
    TxnId& slot = live[rng() % live.size()];
    const TxnId i = slot;
    if (sched.IsAborted(i)) {
      sched.RestartTxn(i);
      engine.RestartTxn(i);
      continue;
    }
    if (rng() % 8 == 0) {
      sched.CommitTxn(i);
      engine.CommitTxn(i);
      slot = next_txn++;
      continue;
    }
    Op op;
    op.txn = i;
    op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
    op.item = static_cast<ItemId>(rng() % 8);
    ASSERT_EQ(sched.Process(op), engine.Process(op)) << "step " << step;
  }
  EXPECT_GT(engine.stats().txns_released, 0u);
  EXPECT_GT(engine.stats().compactions, 0u);
}

// ---------------------------------------------------------------------------
// Batched admission: ProcessBatch with num_shards = 1 decides in array
// order, so feeding the same stream to MtkScheduler one operation at a time
// must produce elementwise-identical decisions and final vectors — with the
// III-D-5 optimized encoding off and on (both sides run the shared
// core/encoding.h helper, so the hot-item paths must also agree).
// ---------------------------------------------------------------------------

void RunBatchEquivalence(const EquivConfig& cfg, bool optimized_encoding,
                         size_t batch_size, uint64_t seed) {
  MtkOptions mo;
  mo.k = cfg.k;
  mo.starvation_fix = cfg.starvation_fix;
  mo.thomas_write_rule = cfg.thomas_write_rule;
  mo.relaxed_read_path = cfg.relaxed_read_path;
  mo.disable_old_read_path = cfg.disable_old_read_path;
  mo.optimized_encoding = optimized_encoding;
  mo.hot_item_threshold = 6;
  MtkScheduler sched(mo);

  EngineOptions eo;
  eo.k = cfg.k;
  eo.num_shards = 1;
  eo.starvation_fix = cfg.starvation_fix;
  eo.thomas_write_rule = cfg.thomas_write_rule;
  eo.relaxed_read_path = cfg.relaxed_read_path;
  eo.disable_old_read_path = cfg.disable_old_read_path;
  eo.optimized_encoding = optimized_encoding;
  eo.hot_item_threshold = 6;
  ShardedMtkEngine engine(eo);

  std::mt19937_64 rng(seed);
  constexpr ItemId kItems = 10;
  constexpr size_t kLive = 16;
  constexpr size_t kRounds = 500;

  std::vector<TxnId> live;
  TxnId next_txn = 1;
  for (size_t n = 0; n < kLive; ++n) live.push_back(next_txn++);
  std::vector<TxnId> all_txns = live;

  std::vector<Op> batch(batch_size);
  std::vector<OpDecision> want(batch_size);
  std::vector<OpDecision> got(batch_size);
  std::vector<AbortReason> why(batch_size);

  for (size_t round = 0; round < kRounds; ++round) {
    // A batch may contain several operations of one transaction, including
    // a transaction an earlier operation in the same batch aborts: both
    // sides then classify the later operations as stale rejects, because
    // the single-shard batch decides in array order like the sequential
    // scheduler.
    for (size_t b = 0; b < batch_size; ++b) {
      Op& op = batch[b];
      op.txn = live[rng() % live.size()];
      op.type = rng() % 8 < 5 ? OpType::kRead : OpType::kWrite;
      op.item = static_cast<ItemId>(rng() % kItems);
    }
    size_t want_accepts = 0;
    for (size_t b = 0; b < batch_size; ++b) {
      want[b] = sched.Process(batch[b]);
      if (want[b] == OpDecision::kAccept) ++want_accepts;
    }
    const size_t accepts = engine.ProcessBatch(
        std::span<const Op>(batch.data(), batch_size), got.data(), why.data());
    ASSERT_EQ(accepts, want_accepts) << "round " << round;
    for (size_t b = 0; b < batch_size; ++b) {
      ASSERT_EQ(want[b], got[b])
          << "round " << round << " pos " << b << " txn " << batch[b].txn
          << " item " << batch[b].item;
      if (got[b] == OpDecision::kReject) {
        EXPECT_NE(why[b], AbortReason::kNone) << "round " << round;
      } else {
        EXPECT_EQ(why[b], AbortReason::kNone) << "round " << round;
      }
    }
    // Lifecycle between batches, mirrored on both sides.
    for (TxnId& slot : live) {
      const TxnId t = slot;
      ASSERT_EQ(sched.IsAborted(t), engine.IsAborted(t)) << "txn " << t;
      if (sched.IsAborted(t)) {
        if (rng() % 2 == 0) {
          sched.RestartTxn(t);
          engine.RestartTxn(t);
        }
      } else if (rng() % 8 == 0) {
        sched.CommitTxn(t);
        engine.CommitTxn(t);
        slot = next_txn;
        all_txns.push_back(next_txn);
        ++next_txn;
      }
    }
  }

  for (TxnId t : all_txns) {
    ASSERT_EQ(sched.IsAborted(t), engine.IsAborted(t)) << "txn " << t;
    ASSERT_EQ(sched.IsCommitted(t), engine.IsCommitted(t)) << "txn " << t;
    EXPECT_TRUE(sched.Ts(t) == engine.TsSnapshot(t))
        << "txn " << t << ": " << sched.Ts(t).ToString() << " vs "
        << engine.TsSnapshot(t).ToString();
  }
  EXPECT_TRUE(sched.Ts(kVirtualTxn) == engine.TsSnapshot(kVirtualTxn));
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.batches, kRounds);
  EXPECT_EQ(st.batch_ops, kRounds * batch_size);
  if (optimized_encoding && cfg.k >= 2) {
    // Hot encodings only exist on the engine side of this check; the
    // vector equality above already proved the scheduler produced the
    // same right-end placements. k = 1 leaves no room for a right-end
    // placement, so the hot paths never fire there.
    EXPECT_GT(st.hot_encodings, 0u);
  } else if (!optimized_encoding) {
    EXPECT_EQ(st.hot_encodings, 0u);
  }
}

TEST(EngineBatchEquivalenceTest, BatchedSingleShardMatchesSchedulerAcrossSizes) {
  uint64_t seed = 30260805;
  for (size_t batch : {size_t{1}, size_t{2}, size_t{7}, size_t{16},
                       size_t{64}, size_t{160}}) {
    for (bool optimized : {false, true}) {
      SCOPED_TRACE("batch=" + std::to_string(batch) +
                   " optimized=" + std::to_string(optimized));
      RunBatchEquivalence({3, true, true, false, false}, optimized, batch,
                          seed++);
    }
  }
}

TEST(EngineBatchEquivalenceTest, BatchedEquivalenceAcrossConfigs) {
  const EquivConfig configs[] = {
      {1, false, false, false, false}, {2, false, false, false, false},
      {3, false, false, false, false}, {5, true, false, false, false},
      {3, false, false, true, false},  {3, false, false, false, true},
  };
  uint64_t seed = 40260805;
  for (const EquivConfig& cfg : configs) {
    for (bool optimized : {false, true}) {
      SCOPED_TRACE("k=" + std::to_string(cfg.k) +
                   " fix=" + std::to_string(cfg.starvation_fix) +
                   " relaxed=" + std::to_string(cfg.relaxed_read_path) +
                   " no_old_read=" + std::to_string(cfg.disable_old_read_path) +
                   " optimized=" + std::to_string(optimized));
      RunBatchEquivalence(cfg, optimized, 8, seed++);
    }
  }
}

// With the III-D-5 encoding on, right-end placements through hot items must
// leave fewer totally-ordered pairs than the leftmost-free placement: two
// transactions that only share a hot item can stay unordered. The sequential
// single-shard engine shows the accept-count benefit directly.
TEST(EngineBatchEquivalenceTest, OptimizedEncodingAcceptsMoreOnHotItems) {
  auto run = [](bool optimized) {
    EngineOptions eo;
    eo.k = 3;
    eo.num_shards = 1;
    eo.starvation_fix = true;
    eo.optimized_encoding = optimized;
    eo.hot_item_threshold = 4;
    ShardedMtkEngine engine(eo);
    std::mt19937_64 rng(515151);
    std::vector<TxnId> live;
    TxnId next_txn = 1;
    for (size_t n = 0; n < 24; ++n) live.push_back(next_txn++);
    std::vector<Op> batch(16);
    for (size_t round = 0; round < 400; ++round) {
      for (Op& op : batch) {
        op.txn = live[rng() % live.size()];
        op.type = rng() % 8 < 5 ? OpType::kRead : OpType::kWrite;
        op.item = static_cast<ItemId>(rng() % 4);  // All items run hot.
      }
      std::vector<OpDecision> dec(batch.size());
      engine.ProcessBatch(std::span<const Op>(batch.data(), batch.size()),
                          dec.data());
      for (TxnId& slot : live) {
        if (engine.IsAborted(slot)) {
          engine.RestartTxn(slot);
        } else if (rng() % 8 == 0) {
          engine.CommitTxn(slot);
          slot = next_txn++;
        }
      }
    }
    return engine.stats();
  };
  const EngineStats off = run(false);
  const EngineStats on = run(true);
  EXPECT_EQ(off.hot_encodings, 0u);
  EXPECT_GT(on.hot_encodings, 0u);
  EXPECT_GT(on.accepted, off.accepted)
      << "optimized " << on.accepted << "/" << on.rejected << " vs plain "
      << off.accepted << "/" << off.rejected;
}

// ---------------------------------------------------------------------------
// Concurrency.
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, DisjointPartitionsAllCommitWithoutCrossShardLocks) {
  constexpr size_t kThreads = 4;
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = kThreads;
  eo.compact_every = 128;
  ShardedMtkEngine engine(eo);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      // Thread t's transactions and items all live on shard t, so every
      // operation should take the single-shard path.
      for (uint32_t n = 0; n < 2000; ++n) {
        const TxnId txn = static_cast<TxnId>((n + 1) * kThreads + t);
        const ItemId item = static_cast<ItemId>((n % 16) * kThreads + t);
        Op r{txn, OpType::kRead, item};
        Op w{txn, OpType::kWrite, item};
        ASSERT_EQ(engine.Process(r), OpDecision::kAccept);
        ASSERT_EQ(engine.Process(w), OpDecision::kAccept);
        engine.CommitTxn(txn);
      }
    });
  }
  for (auto& th : threads) th.join();

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.accepted, kThreads * 2000 * 2);
  EXPECT_EQ(st.cross_shard_ops, 0u);
  EXPECT_EQ(st.single_shard_ops, kThreads * 2000 * 2);
  EXPECT_GT(st.txns_released, 0u);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(engine.IsCommitted(static_cast<TxnId>(kThreads + t)));
  }
}

TEST(ShardedEngineTest, ContendedHammerCommitsEveryTransaction) {
  constexpr size_t kThreads = 4;
  constexpr uint32_t kTxnsPerThread = 1500;
  constexpr ItemId kItems = 64;  // Shared: plenty of cross-shard traffic.
  EngineOptions eo;
  eo.k = 7;
  eo.num_shards = 4;
  eo.starvation_fix = true;
  eo.compact_every = 256;
  ShardedMtkEngine engine(eo);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      std::mt19937_64 rng(1000 + t);
      for (uint32_t n = 0; n < kTxnsPerThread; ++n) {
        const TxnId txn =
            static_cast<TxnId>(1 + t + n * kThreads);  // Globally unique.
        size_t attempts = 0;
        for (;;) {  // Closed loop: retry until the transaction commits.
          ASSERT_LT(++attempts, 100000u) << "txn " << txn << " starved";
          bool ok = true;
          const size_t ops = 1 + rng() % 3;
          for (size_t o = 0; o < ops && ok; ++o) {
            Op op;
            op.txn = txn;
            op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
            op.item = static_cast<ItemId>(rng() % kItems);
            ok = engine.Process(op) != OpDecision::kReject;
          }
          if (ok) {
            engine.CommitTxn(txn);
            break;
          }
          engine.RestartTxn(txn);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const EngineStats st = engine.stats();
  EXPECT_GT(st.accepted, 0u);
  EXPECT_GT(st.compactions, 0u);
  for (size_t t = 0; t < kThreads; ++t) {
    for (uint32_t n = 0; n < kTxnsPerThread; n += 97) {
      const TxnId txn = static_cast<TxnId>(1 + t + n * kThreads);
      EXPECT_TRUE(engine.IsCommitted(txn)) << "txn " << txn;
      EXPECT_FALSE(engine.IsAborted(txn)) << "txn " << txn;
    }
  }
  // Compaction kept storage bounded by live transactions, not history:
  // 6000 committed transactions across 4 shards must not pin 6000 states.
  EXPECT_LE(engine.allocated_txn_states(),
            2 * ShardedMtkEngine::kChunkSize * eo.num_shards);
}

// Regression: with many shards and a handful of hot items, the top
// reader/writer of an item shifts between lock-acquisition rounds, so the
// retry loop sees a different pair of top shards every attempt. The lockset
// must be rebuilt per round (item, issuer, reader, writer - at most four),
// not widened cumulatively: the original widening overflowed the fixed
// lockset array and unlocked mutexes it had never locked.
TEST(ShardedEngineTest, ManyShardsHotItemsKeepLocksetBounded) {
  constexpr size_t kThreads = 4;
  constexpr uint32_t kTxnsPerThread = 800;
  constexpr ItemId kItems = 8;  // Very hot: tops churn constantly.
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 32;  // Far more shards than the lockset can hold.
  eo.starvation_fix = true;
  eo.max_lock_retries = 4;  // Exercise the full-lock fallback too.
  ShardedMtkEngine engine(eo);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      std::mt19937_64 rng(7000 + t);
      for (uint32_t n = 0; n < kTxnsPerThread; ++n) {
        const TxnId txn = static_cast<TxnId>(1 + t + n * kThreads);
        size_t attempts = 0;
        for (;;) {
          ASSERT_LT(++attempts, 100000u) << "txn " << txn << " starved";
          bool ok = true;
          const size_t ops = 1 + rng() % 3;
          for (size_t o = 0; o < ops && ok; ++o) {
            Op op;
            op.txn = txn;
            op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
            op.item = static_cast<ItemId>(rng() % kItems);
            ok = engine.Process(op) != OpDecision::kReject;
          }
          if (ok) {
            engine.CommitTxn(txn);
            break;
          }
          engine.RestartTxn(txn);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const EngineStats st = engine.stats();
  // Every decided operation went through exactly one covered lock round
  // (no operations were issued by T0 here, which would skip the count).
  EXPECT_EQ(st.accepted + st.ignored_writes + st.rejected,
            st.single_shard_ops + st.cross_shard_ops);
  for (size_t t = 0; t < kThreads; ++t) {
    const TxnId last = static_cast<TxnId>(1 + t + (kTxnsPerThread - 1) * kThreads);
    EXPECT_TRUE(engine.IsCommitted(last));
  }
}

TEST(ShardedEngineTest, CompactionBoundsMemorySingleThreaded) {
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.compact_every = 64;
  ShardedMtkEngine engine(eo);

  for (TxnId txn = 1; txn <= 20000; ++txn) {
    Op r{txn, OpType::kRead, static_cast<ItemId>(txn % 8)};
    Op w{txn, OpType::kWrite, static_cast<ItemId>(txn % 8)};
    ASSERT_NE(engine.Process(r), OpDecision::kReject);
    ASSERT_NE(engine.Process(w), OpDecision::kReject);
    engine.CommitTxn(txn);
  }
  // 20000 committed states would need 20 chunks per shard uncompacted.
  EXPECT_LE(engine.allocated_txn_states(),
            2 * ShardedMtkEngine::kChunkSize * eo.num_shards);
  EXPECT_GT(engine.stats().txns_released, 15000u);
  // Released ids still answer liveness queries.
  EXPECT_TRUE(engine.IsCommitted(1));
  EXPECT_FALSE(engine.IsAborted(1));
}

TEST(ShardedEngineTest, RejectionMarksAbortedAndRestartRevives) {
  EngineOptions eo;
  eo.k = 1;  // One element: the second conflicting txn order is forced.
  eo.num_shards = 2;
  ShardedMtkEngine engine(eo);

  ASSERT_EQ(engine.Process(Op{1, OpType::kWrite, 0}), OpDecision::kAccept);
  ASSERT_EQ(engine.Process(Op{2, OpType::kWrite, 0}), OpDecision::kAccept);
  // T1 now tries to write after T2 took the later position: with k = 1 the
  // order TS(1) < TS(2) is fully determined, so this write must reject.
  ASSERT_EQ(engine.Process(Op{1, OpType::kWrite, 0}), OpDecision::kReject);
  EXPECT_TRUE(engine.IsAborted(1));
  // Operations of an aborted transaction reject outright.
  EXPECT_EQ(engine.Process(Op{1, OpType::kRead, 1}), OpDecision::kReject);
  engine.RestartTxn(1);
  EXPECT_FALSE(engine.IsAborted(1));
  EXPECT_EQ(engine.Process(Op{1, OpType::kWrite, 0}), OpDecision::kAccept);
}

TEST(ShardedEngineTest, VirtualTransactionIsProtectedAndImmutable) {
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 4;
  ShardedMtkEngine engine(eo);
  EXPECT_EQ(engine.Process(Op{kVirtualTxn, OpType::kRead, 0}),
            OpDecision::kReject);
  EXPECT_TRUE(engine.IsCommitted(kVirtualTxn));
  EXPECT_FALSE(engine.IsAborted(kVirtualTxn));
  const TimestampVector t0 = engine.TsSnapshot(kVirtualTxn);
  EXPECT_TRUE(t0 == TimestampVector::Virtual(3));
  for (TxnId t = 1; t <= 100; ++t) {
    engine.Process(Op{t, OpType::kRead, t % 5});
    engine.Process(Op{t, OpType::kWrite, t % 5});
  }
  EXPECT_TRUE(engine.TsSnapshot(kVirtualTxn) == t0);
}

// Batch-path rejects must land in EngineStats.reject_reasons and in the
// mirrored registry counters: per-reason equality, total() == rejected, and
// the engine.batches / engine.batch_ops counters matching the stats struct.
TEST(ShardedEngineTest, BatchRejectsReconcileWithStatsAndRegistry) {
  MetricsRegistry reg;
  EngineOptions eo;
  eo.k = 2;  // Small vectors: plenty of lex-order / exhausted rejects.
  eo.num_shards = 4;
  eo.metrics = &reg;
  ShardedMtkEngine engine(eo);

  std::mt19937_64 rng(20260805);
  constexpr ItemId kItems = 4;
  constexpr size_t kRounds = 400;
  constexpr size_t kBatch = 16;
  std::vector<TxnId> live;
  TxnId next_txn = 1;
  for (size_t n = 0; n < 12; ++n) live.push_back(next_txn++);

  std::vector<Op> batch(kBatch);
  std::vector<OpDecision> dec(kBatch);
  for (size_t round = 0; round < kRounds; ++round) {
    for (Op& op : batch) {
      // Mix in T0 submissions (kInvalidOp) and operations of transactions
      // aborted earlier in the run or earlier in this very batch
      // (kStaleTxn) alongside ordinary conflicting traffic.
      op.txn = rng() % 32 == 0 ? kVirtualTxn : live[rng() % live.size()];
      op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
      op.item = static_cast<ItemId>(rng() % kItems);
    }
    engine.ProcessBatch(std::span<const Op>(batch.data(), kBatch), dec.data());
    for (TxnId& slot : live) {
      if (engine.IsAborted(slot)) {
        if (rng() % 2 == 0) engine.RestartTxn(slot);
      } else if (rng() % 8 == 0) {
        engine.CommitTxn(slot);
        slot = next_txn++;
      }
    }
  }

  const EngineStats st = engine.stats();
  EXPECT_GT(st.rejected, 0u);
  EXPECT_EQ(st.reject_reasons.total(), st.rejected);
  EXPECT_GT(st.reject_reasons[AbortReason::kLexOrder], 0u);
  EXPECT_GT(st.reject_reasons[AbortReason::kStaleTxn], 0u);
  EXPECT_GT(st.reject_reasons[AbortReason::kInvalidOp], 0u);
  EXPECT_EQ(st.batches, kRounds);
  EXPECT_EQ(st.batch_ops, kRounds * kBatch);

  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("engine.accepted"), st.accepted);
  EXPECT_EQ(snap.CounterValue("engine.batches"), st.batches);
  EXPECT_EQ(snap.CounterValue("engine.batch_ops"), st.batch_ops);
  EXPECT_EQ(snap.CounterSum("engine.rejected."), st.rejected);
  for (size_t r = 1; r < kNumAbortReasons; ++r) {
    const AbortReason reason = static_cast<AbortReason>(r);
    EXPECT_EQ(snap.CounterValue(std::string("engine.rejected.") +
                                AbortReasonName(reason)),
              st.reject_reasons[reason])
        << AbortReasonName(reason);
  }
}

}  // namespace
}  // namespace mdts
