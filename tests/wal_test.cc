// Durability suite for the Taurus-style parallel WAL (src/wal) and its
// engine integration: record framing (length + CRC), torn-tail truncation,
// group-commit sync policies and their metrics, concurrent appends (the
// suite is labeled `wal` so the asan-wal / tsan-wal presets run exactly
// this binary under the sanitizers), and the seeded crash-point property
// sweep: crash at random points across every WalCrashPoint plus random
// byte-offset truncation, recover, and check the result against two
// independent oracles -
//   1. the byte oracle: a record ticketed fully inside the surviving file
//      bytes is recovered field-for-field, anything past them is not, and
//      no record acknowledged as durable (covered by a completed fsync) is
//      ever lost;
//   2. the protocol oracle (single-threaded runs): each item's recovered
//      committed writer is the last surviving accepted-and-committed
//      writer in admission order - the prefix-replay state.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/timestamp_vector.h"
#include "core/types.h"
#include "engine/sharded_engine.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "wal/wal.h"

namespace mdts {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) / ("mdts_wal_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

// The merged recovery order, restated independently of wal.cc: raw
// lexicographic elements (undefined = the INT64_MIN sentinel, sorting
// low), ties by stream then position.
bool RecordBefore(const TimestampVector& a, uint32_t a_stream, uint64_t a_pos,
                  const TimestampVector& b, uint32_t b_stream,
                  uint64_t b_pos) {
  for (size_t m = 0; m < a.size(); ++m) {
    const TsElement av = a.IsDefined(m) ? a.Get(m) : kUndefinedElement;
    const TsElement bv = b.IsDefined(m) ? b.Get(m) : kUndefinedElement;
    if (av != bv) return av < bv;
  }
  if (a_stream != b_stream) return a_stream < b_stream;
  return a_pos < b_pos;
}

// One commit record the driver appended, with its durability ticket.
struct Logged {
  WalAppendTicket ticket;
  TxnId txn = 0;
  TimestampVector vec;
  std::vector<ItemId> writes;
  Logged(size_t k) : vec(k) {}
};

struct DriveResult {
  std::vector<Logged> logged;  // Every acknowledged AppendCommit.
  /// Appends the WAL refused (crash point hit). At most one of these - the
  /// crash trigger itself - may still have reached the disk: a crash
  /// mid-call can persist a record the caller was never told about.
  /// Recovering it is correct (more than acknowledged, never less).
  std::vector<Logged> refused;
  /// Accepted writes in admission order (single-threaded drivers only):
  /// (item, txn), recorded when the engine accepted the write and kept
  /// only if that incarnation committed.
  std::vector<std::pair<ItemId, TxnId>> admitted;
  std::set<TxnId> committed;
  bool wal_refused = false;  // An AppendCommit returned false (crash).
};

EngineOptions SweepEngineOptions(uint64_t seed) {
  EngineOptions eo;
  eo.k = 4;
  eo.num_shards = 3;
  eo.starvation_fix = true;
  eo.optimized_encoding = seed % 2 == 0;
  eo.hot_item_threshold = 8;
  return eo;
}

// Single-threaded closed loop: run transactions through `engine`, append a
// commit record (vector snapshot + accepted writes) to `wal` before each
// CommitTxn, exactly as the engine-attached path does. Stops early when
// the WAL refuses an append (injected crash).
DriveResult DriveSingle(ShardedMtkEngine& engine, ParallelWal& wal,
                        uint64_t seed, uint32_t txns_to_commit, ItemId items,
                        size_t ops_per_txn) {
  std::mt19937_64 rng(seed);
  DriveResult out;
  const size_t k = engine.options().k;
  TxnId next = 1;
  while (out.committed.size() < txns_to_commit && !out.wal_refused) {
    const TxnId txn = next++;
    std::vector<std::pair<ItemId, TxnId>> pending;  // This incarnation.
    std::vector<ItemId> writes;
    bool committed = false;
    for (size_t attempt = 0; attempt < 200 && !committed; ++attempt) {
      pending.clear();
      writes.clear();
      bool ok = true;
      for (size_t o = 0; o < ops_per_txn && ok; ++o) {
        Op op;
        op.txn = txn;
        op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
        op.item = static_cast<ItemId>(rng() % items);
        ok = engine.Process(op) != OpDecision::kReject;
        if (ok && op.type == OpType::kWrite) {
          pending.emplace_back(op.item, txn);
          writes.push_back(op.item);
        }
      }
      if (!ok) {
        engine.RestartTxn(txn);
        continue;
      }
      Logged l(k);
      l.txn = txn;
      l.vec = engine.TsSnapshot(txn);
      l.writes = writes;
      if (!writes.empty() &&
          !wal.AppendCommit(txn, l.vec, writes, &l.ticket)) {
        out.wal_refused = true;  // Crash point hit; this commit never ran.
        out.refused.push_back(std::move(l));
        break;
      }
      if (!writes.empty()) out.logged.push_back(std::move(l));
      engine.CommitTxn(txn);
      out.committed.insert(txn);
      out.admitted.insert(out.admitted.end(), pending.begin(),
                          pending.end());
      committed = true;
    }
  }
  return out;
}

// Multi-threaded variant: `threads` workers drive disjoint transaction ids
// over shared items, each appending to the WAL from its own thread (so the
// per-worker stream spread is real). No admission oracle - cross-thread
// admission order is not observable from outside the engine.
DriveResult DriveThreads(ShardedMtkEngine& engine, ParallelWal& wal,
                         uint64_t seed, size_t threads,
                         uint32_t txns_per_thread, ItemId items,
                         size_t ops_per_txn) {
  DriveResult out;
  std::mutex mu;
  std::vector<std::thread> pool;
  const size_t k = engine.options().k;
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      std::mt19937_64 rng(seed * 977 + t);
      for (uint32_t c = 0; c < txns_per_thread; ++c) {
        const TxnId txn = static_cast<TxnId>(1 + t + c * threads);
        bool committed = false;
        for (size_t attempt = 0; attempt < 500 && !committed; ++attempt) {
          std::vector<ItemId> writes;
          bool ok = true;
          for (size_t o = 0; o < ops_per_txn && ok; ++o) {
            Op op;
            op.txn = txn;
            op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
            op.item = static_cast<ItemId>(rng() % items);
            ok = engine.Process(op) != OpDecision::kReject;
            if (ok && op.type == OpType::kWrite) writes.push_back(op.item);
          }
          if (!ok) {
            engine.RestartTxn(txn);
            continue;
          }
          Logged l(k);
          l.txn = txn;
          l.vec = engine.TsSnapshot(txn);
          l.writes = writes;
          if (!writes.empty() &&
              !wal.AppendCommit(txn, l.vec, writes, &l.ticket)) {
            std::lock_guard<std::mutex> g(mu);
            out.wal_refused = true;
            out.refused.push_back(std::move(l));
            return;  // Crashed: this worker stops, commit never ran.
          }
          engine.CommitTxn(txn);
          committed = true;
          std::lock_guard<std::mutex> g(mu);
          if (!writes.empty()) out.logged.push_back(std::move(l));
          out.committed.insert(txn);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  return out;
}

std::vector<uint64_t> StreamSizes(const std::string& dir, size_t streams) {
  std::vector<uint64_t> out(streams, 0);
  for (size_t i = 0; i < streams; ++i) {
    const fs::path p = fs::path(dir) / ("wal-" + std::to_string(i) + ".log");
    std::error_code ec;
    if (fs::exists(p, ec)) out[i] = fs::file_size(p, ec);
  }
  return out;
}

// The byte oracle: against the on-disk stream sizes (captured BEFORE
// Recover truncated anything), every acknowledged record whose frame lies
// fully inside the surviving bytes must be recovered field-for-field, no
// acknowledged record past them may appear, and the only other admissible
// record is a crash-refused append whose trigger write reached the disk
// before the simulated crash (recovering more than acknowledged is fine).
// Per-item winners are cross-checked by re-sorting the recovered records
// with this file's independent restatement of the merge order.
void VerifyAgainstBytes(const WalRecovery& rec, const DriveResult& dr,
                        const std::vector<uint64_t>& sizes) {
  std::map<TxnId, const Logged*> survived;
  for (const Logged& l : dr.logged) {
    ASSERT_LT(l.ticket.stream, sizes.size());
    if (l.ticket.end_offset <= sizes[l.ticket.stream]) {
      survived[l.txn] = &l;
    }
  }
  std::map<TxnId, const Logged*> refused;
  for (const Logged& l : dr.refused) refused[l.txn] = &l;
  size_t refused_recovered = 0;
  for (const WalCommitRecord& r : rec.records) {
    const Logged* want = nullptr;
    if (auto it = survived.find(r.txn); it != survived.end()) {
      want = it->second;
    } else if (auto it2 = refused.find(r.txn); it2 != refused.end()) {
      want = it2->second;
      ++refused_recovered;
    }
    ASSERT_NE(want, nullptr)
        << "recovered a record that should be past the crash: txn " << r.txn;
    EXPECT_TRUE(r.vec == want->vec) << "txn " << r.txn;
    EXPECT_EQ(r.writes, want->writes) << "txn " << r.txn;
  }
  EXPECT_LE(refused_recovered, 1u) << "only the crash trigger can persist";
  ASSERT_EQ(rec.records.size(), survived.size() + refused_recovered);
  // Winners by the merged vector order, re-derived from an independent
  // sort of the recovered records.
  std::vector<const WalCommitRecord*> order;
  order.reserve(rec.records.size());
  for (const WalCommitRecord& r : rec.records) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const WalCommitRecord* a, const WalCommitRecord* b) {
              return RecordBefore(a->vec, a->stream, a->seq, b->vec,
                                  b->stream, b->seq);
            });
  std::map<ItemId, TxnId> want;
  for (const WalCommitRecord* r : order) {
    for (ItemId item : r->writes) want[item] = r->txn;
  }
  ASSERT_EQ(rec.item_writer.size(), want.size());
  for (const auto& [item, idx] : rec.item_writer) {
    EXPECT_EQ(rec.records[idx].txn, want[item]) << "item " << item;
  }
}

// No acknowledged commit lost: every record whose frame was covered by a
// completed fsync at crash time must be in the recovered set.
void VerifyAcknowledged(const WalRecovery& rec, const ParallelWal& wal,
                        const std::vector<Logged>& logged) {
  std::set<TxnId> recovered;
  for (const WalCommitRecord& r : rec.records) recovered.insert(r.txn);
  for (const Logged& l : logged) {
    if (l.ticket.end_offset <= wal.SyncedBytes(l.ticket.stream)) {
      EXPECT_TRUE(recovered.count(l.txn))
          << "acknowledged (fsynced) commit lost: txn " << l.txn;
    }
  }
}

// The protocol oracle (single-threaded runs): each item's recovered
// committed writer equals the last surviving accepted-and-committed writer
// in admission order - same-item committed writers are totally ordered by
// the protocol, so admission order is the serialization order.
void VerifyAdmissionOracle(const WalRecovery& rec, const DriveResult& dr) {
  std::set<TxnId> recovered;
  for (const WalCommitRecord& r : rec.records) recovered.insert(r.txn);
  std::map<ItemId, TxnId> want;
  for (const auto& [item, txn] : dr.admitted) {
    if (dr.committed.count(txn) && recovered.count(txn)) want[item] = txn;
  }
  // A recovered crash-trigger record is the last transaction the driver
  // ran: its writes were admitted after every committed one, so they win.
  for (const Logged& l : dr.refused) {
    if (!recovered.count(l.txn)) continue;
    for (ItemId item : l.writes) want[item] = l.txn;
  }
  ASSERT_EQ(rec.item_writer.size(), want.size());
  for (const auto& [item, idx] : rec.item_writer) {
    EXPECT_EQ(rec.records[idx].txn, want[item]) << "item " << item;
  }
}

TEST(WalCodecTest, FrameRoundTripAndCrcDetection) {
  const size_t k = 5;
  TimestampVector vec(k);
  vec.Set(0, 7);
  vec.Set(2, -13);
  vec.Set(4, 1'000'000'007);
  const std::vector<ItemId> writes = {3, 19, 3};
  std::vector<uint8_t> buf;
  wal_internal::EncodeFrame(42, vec, writes, &buf);

  WalCommitRecord rec(k);
  ASSERT_EQ(wal_internal::DecodeFrame(buf.data(), buf.size(), k, &rec),
            buf.size());
  EXPECT_EQ(rec.txn, 42u);
  EXPECT_TRUE(rec.vec == vec);
  EXPECT_EQ(rec.writes, writes);

  // Truncated buffers hold no complete frame.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_EQ(wal_internal::DecodeFrame(buf.data(), cut, k, &rec), 0u)
        << "cut " << cut;
  }
  // Any single flipped payload byte must fail the CRC.
  for (size_t b = wal_internal::kFrameHeaderBytes; b < buf.size(); ++b) {
    std::vector<uint8_t> bad = buf;
    bad[b] ^= 0x40;
    EXPECT_EQ(wal_internal::DecodeFrame(bad.data(), bad.size(), k, &rec), 0u)
        << "byte " << b;
  }
}

TEST(WalCodecTest, Crc32KnownAnswer) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(WalWriterTest, TornTailDetectedAndTruncated) {
  const std::string dir = FreshDir("torn_tail");
  WalOptions wo;
  wo.dir = dir;
  wo.num_streams = 1;
  wo.k = 3;
  wo.sync_policy = WalSyncPolicy::kEveryCommit;
  TimestampVector vec(3);
  vec.Set(0, 1);
  {
    ParallelWal wal(wo);
    ASSERT_TRUE(wal.ok());
    const std::vector<ItemId> writes = {5};
    ASSERT_TRUE(wal.AppendCommit(1, vec, writes));
    ASSERT_TRUE(wal.AppendCommit(2, vec, writes));
    wal.Close();
  }
  // Simulate a torn write: garbage that looks like the start of a frame.
  const fs::path p = fs::path(dir) / "wal-0.log";
  const uint64_t clean_size = fs::file_size(p);
  {
    std::ofstream out(p, std::ios::binary | std::ios::app);
    const char junk[] = {0x30, 0x00, 0x00, 0x00, 0x11, 0x22};
    out.write(junk, sizeof(junk));
  }
  WalRecovery rec = ParallelWal::Recover(dir);
  ASSERT_TRUE(rec.ok) << rec.error;
  ASSERT_EQ(rec.streams.size(), 1u);
  EXPECT_TRUE(rec.streams[0].torn);
  EXPECT_EQ(rec.torn_streams, 1u);
  EXPECT_EQ(rec.streams[0].valid_bytes, clean_size);
  ASSERT_EQ(rec.records.size(), 2u);
  // The torn tail was truncated on disk: a second recovery is clean.
  EXPECT_EQ(fs::file_size(p), clean_size);
  WalRecovery again = ParallelWal::Recover(dir);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.torn_streams, 0u);
  EXPECT_EQ(again.records.size(), 2u);
  fs::remove_all(dir);
}

TEST(WalWriterTest, SyncPoliciesAndMetrics) {
  TimestampVector vec(3);
  vec.Set(0, 1);
  const std::vector<ItemId> writes = {1, 2};
  {
    // Group commit with a window of 8: 20 appends on one thread trigger
    // exactly two group fsyncs (the remainder syncs at Close, uncounted).
    const std::string dir = FreshDir("policy_group");
    MetricsRegistry reg;
    WalOptions wo;
    wo.dir = dir;
    wo.num_streams = 2;
    wo.k = 3;
    wo.sync_policy = WalSyncPolicy::kGroupCommit;
    wo.group_commit_ops = 8;
    wo.metrics = &reg;
    ParallelWal wal(wo);
    ASSERT_TRUE(wal.ok());
    for (TxnId t = 1; t <= 20; ++t) {
      ASSERT_TRUE(wal.AppendCommit(t, vec, writes));
    }
    const auto snap = reg.Snapshot();
    EXPECT_EQ(snap.CounterValue("wal.appends"), 20u);
    EXPECT_EQ(snap.CounterValue("wal.fsyncs"), 2u);
    EXPECT_GT(snap.CounterValue("wal.bytes"), 0u);
    const HistogramSnapshot* h = nullptr;
    for (const auto& [name, hist] : snap.histograms) {
      if (name == "wal.group_commit_size") h = &hist;
    }
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
    EXPECT_EQ(h->sum, 16u);  // Two full windows of 8.
    wal.Close();
    EXPECT_EQ(ParallelWal::Recover(dir).records.size(), 20u);
    fs::remove_all(dir);
  }
  {
    // Every-commit: one fsync per append.
    const std::string dir = FreshDir("policy_every");
    MetricsRegistry reg;
    WalOptions wo;
    wo.dir = dir;
    wo.num_streams = 1;
    wo.k = 3;
    wo.sync_policy = WalSyncPolicy::kEveryCommit;
    wo.metrics = &reg;
    ParallelWal wal(wo);
    for (TxnId t = 1; t <= 5; ++t) {
      WalAppendTicket ticket;
      ASSERT_TRUE(wal.AppendCommit(t, vec, writes, &ticket));
      // Durable immediately: the ticket is covered by the completed sync.
      EXPECT_LE(ticket.end_offset, wal.SyncedBytes(ticket.stream));
    }
    const auto snap = reg.Snapshot();
    EXPECT_EQ(snap.CounterValue("wal.fsyncs"), 5u);
    wal.Close();
    fs::remove_all(dir);
  }
  {
    // None: no fsync until Close; an explicit SyncAll is a group boundary.
    const std::string dir = FreshDir("policy_none");
    MetricsRegistry reg;
    WalOptions wo;
    wo.dir = dir;
    wo.num_streams = 1;
    wo.k = 3;
    wo.sync_policy = WalSyncPolicy::kNone;
    wo.metrics = &reg;
    ParallelWal wal(wo);
    WalAppendTicket ticket;
    for (TxnId t = 1; t <= 6; ++t) {
      ASSERT_TRUE(wal.AppendCommit(t, vec, writes, &ticket));
    }
    EXPECT_EQ(reg.Snapshot().CounterValue("wal.fsyncs"), 0u);
    EXPECT_GT(ticket.end_offset, wal.SyncedBytes(0));  // Not yet durable.
    wal.SyncAll();
    EXPECT_EQ(reg.Snapshot().CounterValue("wal.fsyncs"), 1u);
    EXPECT_LE(ticket.end_offset, wal.SyncedBytes(0));
    wal.Close();
    fs::remove_all(dir);
  }
}

TEST(WalWriterTest, ConcurrentAppendsRecoverCompletely) {
  const std::string dir = FreshDir("concurrent");
  MetricsRegistry reg;
  WalOptions wo;
  wo.dir = dir;
  wo.num_streams = 4;
  wo.k = 3;
  wo.sync_policy = WalSyncPolicy::kGroupCommit;
  wo.group_commit_ops = 4;
  wo.sync_interval_ms = 1;  // Exercise the background flusher under races.
  wo.metrics = &reg;
  ParallelWal wal(wo);
  ASSERT_TRUE(wal.ok());
  constexpr size_t kThreads = 4;
  constexpr uint32_t kPerThread = 200;
  std::vector<std::thread> pool;
  for (size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&wal, t] {
      TimestampVector vec(3);
      for (uint32_t n = 0; n < kPerThread; ++n) {
        const TxnId txn = static_cast<TxnId>(1 + t + n * kThreads);
        vec.Reset();
        vec.Set(0, static_cast<TsElement>(txn));
        const ItemId item = static_cast<ItemId>(txn % 64);
        ASSERT_TRUE(wal.AppendCommit(txn, vec, std::span<const ItemId>(
                                                   &item, 1)));
      }
    });
  }
  for (auto& th : pool) th.join();
  wal.SyncAll();
  wal.Close();
  EXPECT_EQ(wal.stats().appends, kThreads * kPerThread);
  WalRecovery rec = ParallelWal::Recover(dir);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.records.size(), kThreads * kPerThread);
  EXPECT_EQ(rec.torn_streams, 0u);
  fs::remove_all(dir);
}

TEST(WalEngineTest, CleanShutdownRoundTripRebuildsCommittedState) {
  const std::string dir = FreshDir("engine_roundtrip");
  WalOptions wo;
  wo.dir = dir;
  wo.num_streams = 2;
  wo.k = 4;
  wo.sync_policy = WalSyncPolicy::kGroupCommit;
  wo.group_commit_ops = 8;
  ParallelWal wal(wo);
  ASSERT_TRUE(wal.ok());
  EngineOptions eo = SweepEngineOptions(1);
  ShardedMtkEngine engine(eo);
  const DriveResult dr =
      DriveSingle(engine, wal, /*seed=*/11, /*txns_to_commit=*/120,
                  /*items=*/48, /*ops_per_txn=*/3);
  ASSERT_FALSE(dr.wal_refused);
  wal.Close();

  WalRecovery rec = ParallelWal::Recover(dir);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.torn_streams, 0u);
  VerifyAgainstBytes(rec, dr, StreamSizes(dir, wo.num_streams));
  VerifyAcknowledged(rec, wal, dr.logged);
  VerifyAdmissionOracle(rec, dr);

  // Rebuild a fresh engine from the recovery: every logged transaction is
  // committed with its logged vector, and new admissions order strictly
  // after the recovered writers.
  ShardedMtkEngine recovered(eo);
  ASSERT_EQ(recovered.RecoverFrom(rec), rec.records.size());
  for (const Logged& l : dr.logged) {
    EXPECT_TRUE(recovered.IsCommitted(l.txn)) << "txn " << l.txn;
    EXPECT_TRUE(recovered.TsSnapshot(l.txn) == l.vec) << "txn " << l.txn;
  }
  TxnId fresh = 1;
  while (dr.committed.count(fresh)) ++fresh;
  size_t checked = 0;
  for (const auto& [item, idx] : rec.item_writer) {
    if (checked == 5) break;
    Op op;
    op.txn = fresh;
    op.type = OpType::kWrite;
    op.item = item;
    ASSERT_EQ(recovered.Process(op), OpDecision::kAccept) << "item " << item;
    ++checked;
  }
  ASSERT_GT(checked, 0u);
  const TimestampVector fresh_vec = recovered.TsSnapshot(fresh);
  for (const auto& [item, idx] : rec.item_writer) {
    EXPECT_EQ(Compare(rec.records[idx].vec, fresh_vec).order,
              VectorOrder::kLess)
        << "recovered writer of item " << item
        << " does not precede the post-recovery writer";
    if (--checked == 0) break;
  }
  fs::remove_all(dir);
}

TEST(WalEngineTest, AttachedWalLogsCommitsBeforeAcknowledging) {
  const std::string dir = FreshDir("engine_attached");
  MetricsRegistry reg;
  WalOptions wo;
  wo.dir = dir;
  wo.num_streams = 2;
  wo.k = 3;
  wo.sync_policy = WalSyncPolicy::kEveryCommit;
  wo.metrics = &reg;
  ParallelWal wal(wo);
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.starvation_fix = true;
  eo.metrics = &reg;
  eo.wal = &wal;
  ShardedMtkEngine engine(eo);

  std::mt19937_64 rng(7);
  uint64_t logged_commits = 0;
  for (TxnId txn = 1; txn <= 200; ++txn) {
    bool wrote = false;
    bool ok = true;
    for (size_t o = 0; o < 3 && ok; ++o) {
      Op op;
      op.txn = txn;
      op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
      op.item = static_cast<ItemId>(rng() % 32);
      const OpDecision d = engine.Process(op);
      ok = d != OpDecision::kReject;
      wrote |= ok && op.type == OpType::kWrite && d == OpDecision::kAccept;
    }
    if (!ok) {
      engine.RestartTxn(txn);
      --txn;  // Retry the same id with a fresh incarnation.
      continue;
    }
    engine.CommitTxn(txn);
    if (wrote) ++logged_commits;
  }
  EXPECT_EQ(wal.stats().appends, logged_commits);
  EXPECT_EQ(reg.Snapshot().CounterValue("wal.appends"), logged_commits);
  wal.Close();
  WalRecovery rec = ParallelWal::Recover(dir);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.records.size(), logged_commits);
  for (const WalCommitRecord& r : rec.records) {
    EXPECT_TRUE(engine.IsCommitted(r.txn)) << "txn " << r.txn;
    EXPECT_FALSE(r.writes.empty());
  }
  fs::remove_all(dir);
}

// The seeded crash-point property sweep (single-threaded half): 28 seeds
// cycling through every WalCrashPoint plus random byte-offset truncation,
// across all three sync policies and both encodings.
TEST(WalCrashSweepTest, SingleThreadedCrashPoints) {
  for (uint64_t seed = 0; seed < 28; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string dir = FreshDir("sweep_s" + std::to_string(seed));
    std::mt19937_64 rng(0xABC0 + seed);

    WalCrashPlan plan;
    const uint64_t mode = seed % 4;
    if (mode != 3) {
      plan.point = mode == 0   ? WalCrashPoint::kBeforeFsync
                   : mode == 1 ? WalCrashPoint::kMidRecord
                               : WalCrashPoint::kBetweenStreams;
      plan.at_append = 1 + rng() % 30;
      plan.torn_bytes = 1 + rng() % 40;
    }
    WalOptions wo;
    wo.dir = dir;
    wo.num_streams = 2;
    wo.k = 4;
    const uint64_t pol = (seed / 4) % 3;
    wo.sync_policy = pol == 0   ? WalSyncPolicy::kEveryCommit
                     : pol == 1 ? WalSyncPolicy::kGroupCommit
                                : WalSyncPolicy::kNone;
    wo.group_commit_ops = 4;
    wo.crash = plan.armed() ? &plan : nullptr;
    ParallelWal wal(wo);
    ASSERT_TRUE(wal.ok());

    EngineOptions eo = SweepEngineOptions(seed);
    ShardedMtkEngine engine(eo);
    const DriveResult dr = DriveSingle(engine, wal, 0x51D + seed,
                                       /*txns_to_commit=*/40, /*items=*/48,
                                       /*ops_per_txn=*/3);
    wal.Close();
    EXPECT_EQ(plan.armed() && wal.crashed(), dr.wal_refused);

    if (mode == 3) {
      // Random byte-offset truncation of the busiest stream: an arbitrary
      // prefix, possibly ending mid-record.
      auto sizes = StreamSizes(dir, wo.num_streams);
      const size_t victim = static_cast<size_t>(
          std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
      const fs::path p =
          fs::path(dir) / ("wal-" + std::to_string(victim) + ".log");
      const uint64_t cut = rng() % (sizes[victim] + 1);
      fs::resize_file(p, cut);
    }

    const auto sizes = StreamSizes(dir, wo.num_streams);
    WalRecovery rec = ParallelWal::Recover(dir);
    ASSERT_TRUE(rec.ok) << rec.error;
    VerifyAgainstBytes(rec, dr, sizes);
    if (mode != 3) VerifyAcknowledged(rec, wal, dr.logged);
    VerifyAdmissionOracle(rec, dr);

    // Torn tails are truncated, not fatal: recovering again is clean and
    // yields the identical record set.
    WalRecovery again = ParallelWal::Recover(dir);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.torn_streams, 0u);
    ASSERT_EQ(again.records.size(), rec.records.size());
    for (size_t r = 0; r < rec.records.size(); ++r) {
      EXPECT_EQ(again.records[r].txn, rec.records[r].txn);
      EXPECT_TRUE(again.records[r].vec == rec.records[r].vec);
    }

    // And a fresh engine rebuilt from the recovery reports every recovered
    // transaction as committed with its logged vector.
    ShardedMtkEngine recovered(eo);
    ASSERT_EQ(recovered.RecoverFrom(rec), rec.records.size());
    for (const WalCommitRecord& r : rec.records) {
      EXPECT_TRUE(recovered.IsCommitted(r.txn));
      EXPECT_TRUE(recovered.TsSnapshot(r.txn) == r.vec);
    }
    fs::remove_all(dir);
  }
}

// The multi-threaded half: 24 seeds, three workers appending from their
// own threads (real stream spread), same crash grid, byte oracle only.
TEST(WalCrashSweepTest, MultiThreadedCrashPoints) {
  for (uint64_t seed = 0; seed < 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string dir = FreshDir("sweep_m" + std::to_string(seed));
    std::mt19937_64 rng(0xDEF0 + seed);

    WalCrashPlan plan;
    if (seed % 4 != 3) {
      plan.point = seed % 4 == 0   ? WalCrashPoint::kBeforeFsync
                   : seed % 4 == 1 ? WalCrashPoint::kMidRecord
                                   : WalCrashPoint::kBetweenStreams;
      plan.at_append = 1 + rng() % 40;
      plan.torn_bytes = 1 + rng() % 40;
    }
    WalOptions wo;
    wo.dir = dir;
    wo.num_streams = 3;
    wo.k = 4;
    wo.sync_policy = (seed / 4) % 2 == 0 ? WalSyncPolicy::kEveryCommit
                                         : WalSyncPolicy::kGroupCommit;
    wo.group_commit_ops = 4;
    wo.crash = plan.armed() ? &plan : nullptr;
    ParallelWal wal(wo);
    ASSERT_TRUE(wal.ok());

    EngineOptions eo = SweepEngineOptions(seed);
    ShardedMtkEngine engine(eo);
    const DriveResult dr =
        DriveThreads(engine, wal, 0xBEE + seed, /*threads=*/3,
                     /*txns_per_thread=*/15, /*items=*/60, /*ops_per_txn=*/3);
    wal.Close();

    const auto sizes = StreamSizes(dir, wo.num_streams);
    WalRecovery rec = ParallelWal::Recover(dir);
    ASSERT_TRUE(rec.ok) << rec.error;
    VerifyAgainstBytes(rec, dr, sizes);
    VerifyAcknowledged(rec, wal, dr.logged);
    fs::remove_all(dir);
  }
}

// The multiversion half of the sweep: 24 seeds against an engine with
// version chains and the WAL attached (the engine appends inside CommitTxn,
// before the commit point). Three seed classes crash inside AppendCommit at
// the usual WalCrashPoints; the fourth arms MvInstallCrashPlan so the crash
// fires from the engine's version-install hook mid-ProcessBatch - commits
// acknowledged before the install survive, everything after is refused.
// After recovery a fresh multiversion engine is rebuilt with RecoverFrom
// and its chains are audited: every recovered transaction is committed with
// its logged vector, chains are pruned to the newest committed version per
// item, and new traffic orders strictly after the recovered writers.
TEST(WalCrashSweepTest, MultiversionCrashPoints) {
  for (uint64_t seed = 0; seed < 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string dir = FreshDir("sweep_mv" + std::to_string(seed));
    std::mt19937_64 rng(0x3F00 + seed);

    WalCrashPlan plan;
    MvInstallCrashPlan iplan;
    const uint64_t mode = seed % 4;
    if (mode != 3) {
      plan.point = mode == 0   ? WalCrashPoint::kBeforeFsync
                   : mode == 1 ? WalCrashPoint::kMidRecord
                               : WalCrashPoint::kBetweenStreams;
      plan.at_append = 1 + rng() % 25;
      plan.torn_bytes = 1 + rng() % 40;
    } else {
      iplan.point = seed % 8 == 3 ? WalCrashPoint::kBeforeFsync
                                  : WalCrashPoint::kMidRecord;
      iplan.at_install = 5 + rng() % 40;
    }
    WalOptions wo;
    wo.dir = dir;
    wo.num_streams = 2;
    wo.k = 4;
    const uint64_t pol = (seed / 4) % 3;
    wo.sync_policy = pol == 0   ? WalSyncPolicy::kEveryCommit
                     : pol == 1 ? WalSyncPolicy::kGroupCommit
                                : WalSyncPolicy::kNone;
    wo.group_commit_ops = 4;
    wo.crash = plan.armed() ? &plan : nullptr;
    ParallelWal wal(wo);
    ASSERT_TRUE(wal.ok());

    EngineOptions eo = SweepEngineOptions(seed);
    eo.multiversion = true;
    eo.compact_every = seed % 2 == 0 ? 16 : 0;
    eo.wal = &wal;
    eo.install_crash = iplan.armed() ? &iplan : nullptr;
    ShardedMtkEngine engine(eo);

    // Attached-path driver: the engine logs on CommitTxn, so the oracle is
    // the per-transaction write list in accepted order, captured as the
    // driver issues the ops. The loop stops once the WAL reports the
    // injected crash (a real process would be gone).
    std::map<TxnId, std::vector<ItemId>> committed;
    std::map<TxnId, TimestampVector> vectors;
    TxnId next = 1;
    while (committed.size() < 60 && !wal.crashed()) {
      const TxnId txn = next++;
      bool done = false;
      for (size_t attempt = 0; attempt < 200 && !done && !wal.crashed();
           ++attempt) {
        std::vector<ItemId> writes;
        bool ok = true;
        for (size_t o = 0; o < 3 && ok; ++o) {
          Op op;
          op.txn = txn;
          op.type = rng() % 2 == 0 ? OpType::kRead : OpType::kWrite;
          op.item = static_cast<ItemId>(rng() % 32);
          ok = engine.Process(op) != OpDecision::kReject;
          if (ok && op.type == OpType::kWrite) writes.push_back(op.item);
        }
        if (!ok) {
          engine.RestartTxn(txn);
          continue;
        }
        const bool crashed_before = wal.crashed();
        engine.CommitTxn(txn);
        done = true;
        if (!crashed_before && !writes.empty()) {
          committed.emplace(txn, std::move(writes));
          vectors.emplace(txn, engine.TsSnapshot(txn));
        }
      }
    }
    wal.Close();
    EXPECT_EQ(wal.crashed(), plan.armed() || iplan.armed());

    WalRecovery rec = ParallelWal::Recover(dir);
    ASSERT_TRUE(rec.ok) << rec.error;
    // Recovered records are a subset of the driver's write-commits (minus
    // the crash tail), field-for-field.
    for (const WalCommitRecord& r : rec.records) {
      const auto it = committed.find(r.txn);
      ASSERT_NE(it, committed.end()) << "unknown recovered txn " << r.txn;
      EXPECT_EQ(r.writes, it->second) << "txn " << r.txn;
      EXPECT_TRUE(r.vec == vectors.at(r.txn)) << "txn " << r.txn;
    }
    if (!wal.crashed()) {
      EXPECT_EQ(rec.records.size(), committed.size());
    }

    // Rebuild with version chains and audit them.
    EngineOptions ro = eo;
    ro.wal = nullptr;
    ro.install_crash = nullptr;
    ShardedMtkEngine recovered(ro);
    ASSERT_EQ(recovered.RecoverFrom(rec), rec.records.size());
    std::set<ItemId> recovered_items;
    for (const WalCommitRecord& r : rec.records) {
      EXPECT_TRUE(recovered.IsCommitted(r.txn)) << "txn " << r.txn;
      EXPECT_TRUE(recovered.TsSnapshot(r.txn) == r.vec) << "txn " << r.txn;
      recovered_items.insert(r.writes.begin(), r.writes.end());
    }
    EXPECT_TRUE(recovered.MvAuditChains());
    // RecoverFrom sweeps with nothing live: chains are pruned to the
    // newest committed version per recovered item.
    EXPECT_LE(recovered.stats().live_versions, recovered_items.size());

    // New traffic orders strictly after the recovered writers: for a few
    // recovered items, a fresh transaction (one per item - a single
    // transaction spanning items could legitimately be ordered before a
    // later item's writer once its vector is pinned) reads and rewrites
    // the item, and its vector must land after the recovered writer's.
    size_t checked = 0;
    for (const auto& [item, idx] : rec.item_writer) {
      if (checked++ == 5) break;
      const TxnId fresh = next++;
      Op rd{fresh, OpType::kRead, item};
      Op wr{fresh, OpType::kWrite, item};
      AbortReason why = AbortReason::kNone;
      ASSERT_EQ(recovered.Process(rd, &why), OpDecision::kAccept)
          << "item " << item << ": " << AbortReasonName(why)
          << " writer T" << rec.records[idx].txn << " vec "
          << rec.records[idx].vec.ToString();
      ASSERT_EQ(recovered.Process(wr, &why), OpDecision::kAccept)
          << "item " << item << ": " << AbortReasonName(why);
      EXPECT_EQ(Compare(rec.records[idx].vec,
                        recovered.TsSnapshot(fresh)).order,
                VectorOrder::kLess)
          << "recovered writer of item " << item
          << " does not precede the post-recovery writer";
      recovered.CommitTxn(fresh);
    }
    EXPECT_TRUE(recovered.MvAuditChains());
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace mdts
