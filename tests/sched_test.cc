#include "sched/scheduler.h"

#include "core/log.h"
#include "gtest/gtest.h"
#include "sched/deferred_write.h"
#include "sched/interval_scheduler.h"
#include "sched/mtk_online.h"
#include "sched/occ_scheduler.h"
#include "sched/to1_scheduler.h"
#include "sched/two_pl_scheduler.h"

namespace mdts {
namespace {

// --- Conventional TO(1) baseline ---

TEST(To1SchedulerTest, TimestampOrderEnforced) {
  To1Scheduler s;
  s.OnBegin(1);
  s.OnBegin(2);
  ASSERT_LT(s.TimestampOf(1), s.TimestampOf(2));
  // T2 writes x, then older T1 tries to read it: abort.
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAborted);
}

TEST(To1SchedulerTest, RestartGetsFresherTimestamp) {
  To1Scheduler s;
  s.OnBegin(1);
  s.OnBegin(2);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAborted);
  s.OnRestart(1);
  s.OnBegin(1);
  EXPECT_GT(s.TimestampOf(1), s.TimestampOf(2));
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
}

TEST(To1SchedulerTest, ThomasRuleIgnoresObsoleteWrite) {
  To1Scheduler::Options options;
  options.thomas_write_rule = true;
  To1Scheduler s(options);
  s.OnBegin(1);
  s.OnBegin(2);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kIgnored);
}

TEST(To1SchedulerTest, RejectsWhatMt2Accepts) {
  // The motivating Example 1: TO(1) aborts T3 at W3[y]; MT(2) accepts.
  To1Scheduler to1;
  MtkOptions mo;
  mo.k = 2;
  MtkOnline mt2(mo);
  Log log = *Log::Parse("W1[x] W1[y] R3[x] R2[y] W3[y]");
  SchedOutcome last_to1 = SchedOutcome::kAccepted;
  for (const Op& op : log.ops()) {
    last_to1 = to1.OnOperation(op);
    EXPECT_EQ(mt2.OnOperation(op), SchedOutcome::kAccepted);
  }
  // TO(1) assigned timestamps in first-op order T1 < T3 < T2, so the final
  // W3[y] (conflicting with R2[y]) violates timestamp order.
  EXPECT_EQ(last_to1, SchedOutcome::kAborted);
}

// --- Strict two-phase locking ---

TEST(TwoPlSchedulerTest, SharedLocksCoexist) {
  TwoPlScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kRead, 0}), SchedOutcome::kAccepted);
}

TEST(TwoPlSchedulerTest, ExclusiveConflictBlocks) {
  TwoPlScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kRead, 0}), SchedOutcome::kBlocked);
  EXPECT_TRUE(s.TakeUnblocked().empty());
  // Commit of T1 releases the lock and wakes T2.
  EXPECT_EQ(s.OnCommit(1), SchedOutcome::kAccepted);
  EXPECT_EQ(s.TakeUnblocked(), (std::vector<TxnId>{2}));
}

TEST(TwoPlSchedulerTest, ReacquisitionIsIdempotent) {
  TwoPlScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
}

TEST(TwoPlSchedulerTest, UpgradeWhenSoleHolder) {
  TwoPlScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
}

TEST(TwoPlSchedulerTest, UpgradeWaitsForOtherReaders) {
  TwoPlScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kBlocked);
  EXPECT_EQ(s.OnCommit(2), SchedOutcome::kAccepted);
  EXPECT_EQ(s.TakeUnblocked(), (std::vector<TxnId>{1}));
}

TEST(TwoPlSchedulerTest, DeadlockDetectedAndRequesterAborted) {
  TwoPlScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 1}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 1}), SchedOutcome::kBlocked);
  // T2 requesting x closes the cycle: T2 aborts, its locks release, T1
  // gets y.
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAborted);
  EXPECT_EQ(s.deadlocks_detected(), 1u);
  EXPECT_EQ(s.TakeUnblocked(), (std::vector<TxnId>{1}));
}

TEST(TwoPlSchedulerTest, UpgradeDeadlockDetected) {
  // Two readers both upgrading is the classic upgrade deadlock.
  TwoPlScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kBlocked);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAborted);
  // T2's abort released its shared lock; T1's upgrade proceeds.
  EXPECT_EQ(s.TakeUnblocked(), (std::vector<TxnId>{1}));
}

TEST(TwoPlSchedulerTest, FifoFairnessNoOvertaking) {
  TwoPlScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kBlocked);
  // T3's read must queue behind T2's exclusive request.
  EXPECT_EQ(s.OnOperation(Op{3, OpType::kRead, 0}), SchedOutcome::kBlocked);
  EXPECT_EQ(s.OnCommit(1), SchedOutcome::kAccepted);
  auto unblocked = s.TakeUnblocked();
  ASSERT_EQ(unblocked.size(), 1u);
  EXPECT_EQ(unblocked[0], 2u);
}

// --- Optimistic (Kung-Robinson backward validation) ---

TEST(OccSchedulerTest, ReadPhaseNeverAborts) {
  OccScheduler s;
  s.OnBegin(1);
  s.OnBegin(2);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 1}), SchedOutcome::kAccepted);
}

TEST(OccSchedulerTest, ValidationCatchesStaleRead) {
  OccScheduler s;
  s.OnBegin(1);
  s.OnBegin(2);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(2), SchedOutcome::kAccepted);
  // T1 read x before T2's committed write: backward validation fails.
  EXPECT_EQ(s.OnCommit(1), SchedOutcome::kAborted);
  EXPECT_EQ(s.validations_failed(), 1u);
}

TEST(OccSchedulerTest, NonOverlappingTransactionsCommit) {
  OccScheduler s;
  s.OnBegin(1);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(1), SchedOutcome::kAccepted);
  s.OnBegin(2);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(2), SchedOutcome::kAccepted);
}

TEST(OccSchedulerTest, RestartRevalidatesCleanly) {
  OccScheduler s;
  s.OnBegin(1);
  s.OnBegin(2);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(2), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(1), SchedOutcome::kAborted);
  s.OnRestart(1);
  s.OnBegin(1);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(1), SchedOutcome::kAccepted);
}

// --- Bayer-style dynamic timestamp intervals ---

TEST(IntervalSchedulerTest, DependencyShrinksBothIntervals) {
  IntervalScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kRead, 0}), SchedOutcome::kAccepted);
  // T1 -> T2 encoded: T1's interval now ends where T2's begins.
  EXPECT_LE(s.hi(1), s.lo(2));
  EXPECT_GT(s.shrinks(), 0u);
}

TEST(IntervalSchedulerTest, ReversedOrderAborts) {
  IntervalScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{3, OpType::kRead, 1}), SchedOutcome::kAccepted);
  // Order T1 < T2 is fixed; T2 -> T1 must abort... construct directly:
  // T1 is before T2; now T1 tries to read an item T2 wrote.
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 2}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 2}), SchedOutcome::kAborted);
  EXPECT_GT(s.order_aborts(), 0u);
}

TEST(IntervalSchedulerTest, AcceptsExample1LikeMt2) {
  // Dynamic intervals also avoid TO(1)'s premature ordering on Example 1.
  IntervalScheduler s;
  Log log = *Log::Parse("W1[x] W1[y] R3[x] R2[y] W3[y]");
  for (const Op& op : log.ops()) {
    EXPECT_EQ(s.OnOperation(op), SchedOutcome::kAccepted) << OpName(op);
  }
}

TEST(IntervalSchedulerTest, FragmentationAfterManySplits) {
  // The paper's criticism: "intervals may shrink exponentially in terms of
  // the number of operations, and there tend to be fragmentation". Once a
  // transaction's interval is bounded on both sides, every further
  // dependency halves the remaining overlap until it cannot be split.
  IntervalScheduler::Options options;
  options.min_split_width = 1e-3;
  IntervalScheduler s(options);
  // Bound T1 from above: T1 writes y, T99 reads it (T1 -> T99 caps hi(1)).
  ASSERT_EQ(s.OnOperation(Op{1, OpType::kWrite, 100}), SchedOutcome::kAccepted);
  ASSERT_EQ(s.OnOperation(Op{99, OpType::kRead, 100}),
            SchedOutcome::kAccepted);
  ASSERT_LT(s.hi(1), 2.0);
  // Now squeeze from below: fresh writers each force lo(1) upward inside
  // the fixed (lo, hi) window; midpoint splitting halves the overlap every
  // time until fragmentation aborts the dependency.
  SchedOutcome out = SchedOutcome::kAccepted;
  int survived = 0;
  TxnId other = 2;
  for (ItemId item = 0; out == SchedOutcome::kAccepted && item < 64; ++item) {
    ASSERT_EQ(s.OnOperation(Op{other, OpType::kWrite, item}),
              SchedOutcome::kAccepted);
    out = s.OnOperation(Op{1, OpType::kRead, item});
    if (out == SchedOutcome::kAccepted) ++survived;
    ++other;
  }
  EXPECT_EQ(out, SchedOutcome::kAborted);
  EXPECT_GT(s.fragmentation_aborts(), 0u);
  // Roughly log2(1 / min_split_width) ~ 10 dependencies fit.
  EXPECT_LT(survived, 20);
  EXPECT_GT(survived, 3);
}

TEST(IntervalSchedulerTest, RestartGetsFullInterval) {
  IntervalScheduler s;
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 1}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 1}), SchedOutcome::kAborted);
  const double old_hi = s.hi(1);
  s.OnRestart(1);
  EXPECT_GT(s.hi(1), old_hi);
}

// --- Deferred-write MT(k) (two-phase commit per write, VI-C-2) ---

TEST(DeferredWriteTest, WritesInvisibleUntilCommit) {
  MtkOptions options;
  options.k = 2;
  MtkDeferredWrite s(options);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  // The write is buffered: WT(x) still belongs to the virtual txn.
  EXPECT_EQ(s.inner().Wt(0), kVirtualTxn);
  EXPECT_EQ(s.OnCommit(1), SchedOutcome::kAccepted);
  EXPECT_EQ(s.inner().Wt(0), 1u);
}

TEST(DeferredWriteTest, CommitValidationCanAbort) {
  MtkOptions options;
  options.k = 2;
  MtkDeferredWrite s(options);
  // Both writes are buffered. T1 commits first: validating W1[x] against
  // RT(x) = T3 encodes T3 < T1. T3 then commits: validating W3[y] against
  // RT(y) = T1 would need T1 < T3 - the opposite order is fixed, so T3
  // aborts at its own commit, after T1 (already committed) is untouchable.
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kRead, 1}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{3, OpType::kWrite, 1}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{3, OpType::kRead, 0}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(1), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(3), SchedOutcome::kAborted);
  // The aborted T3 can restart and succeed.
  s.OnRestart(3);
  EXPECT_EQ(s.OnOperation(Op{3, OpType::kWrite, 1}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(3), SchedOutcome::kAccepted);
}

TEST(DeferredWriteTest, AbortLeavesNoTrace) {
  MtkOptions options;
  options.k = 2;
  MtkDeferredWrite s(options);
  EXPECT_EQ(s.OnOperation(Op{1, OpType::kWrite, 0}), SchedOutcome::kAccepted);
  // Force an abort through a read rejection.
  EXPECT_EQ(s.OnOperation(Op{2, OpType::kWrite, 1}), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnCommit(2), SchedOutcome::kAccepted);
  EXPECT_EQ(s.OnOperation(Op{3, OpType::kRead, 1}), SchedOutcome::kAccepted);
  // T1's buffered write never touched the table.
  EXPECT_EQ(s.inner().Wt(0), kVirtualTxn);
}

}  // namespace
}  // namespace mdts
