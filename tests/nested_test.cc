#include "nested/nested_scheduler.h"

#include "classify/classes.h"
#include "core/log.h"
#include "gtest/gtest.h"
#include "nested/partition.h"
#include "workload/generator.h"

namespace mdts {
namespace {

Log L(const char* text) { return *Log::Parse(text); }

// --- Paper Section V-A, Example 4 (Fig. 12 + Table III) ---
// G1 = {T1, T2}, G2 = {T3}, k1 = k2 = 2.
// Log R1[x] R2[y] W2[x] W3[y] creates the edges
//   a: G0 -> G1 (R1[x]),   b: G0 -> G1 (R2[y], already implied),
//   c: T1 -> T2 (W2[x] conflicts with R1[x], same group),
//   d: G1 -> G2 (W3[y] conflicts with R2[y], different groups).

class Example4Test : public ::testing::Test {
 protected:
  Example4Test() : s_({2, 2}) {
    EXPECT_TRUE(s_.RegisterTxn(1, {1}).ok());
    EXPECT_TRUE(s_.RegisterTxn(2, {1}).ok());
    EXPECT_TRUE(s_.RegisterTxn(3, {2}).ok());
  }
  NestedMtScheduler s_;
};

TEST_F(Example4Test, ReproducesTableIII) {
  // Initialization row.
  EXPECT_EQ(s_.GroupTs(1, 0).ToString(), "<0,*>");
  EXPECT_EQ(s_.TxnTs(0).ToString(), "<0,*>");
  EXPECT_EQ(s_.GroupTs(1, 1).ToString(), "<*,*>");

  // Edge a: R1[x] encodes G0 -> G1 in group timestamps only.
  EXPECT_EQ(s_.Process(Op{1, OpType::kRead, 0}), OpDecision::kAccept);
  EXPECT_EQ(s_.GroupTs(1, 1).ToString(), "<1,*>");
  EXPECT_EQ(s_.TxnTs(1).ToString(), "<*,*>");

  // Edge b: R2[y], G0 -> G1 already encoded; no vector changes.
  EXPECT_EQ(s_.Process(Op{2, OpType::kRead, 1}), OpDecision::kAccept);
  EXPECT_EQ(s_.GroupTs(1, 1).ToString(), "<1,*>");
  EXPECT_EQ(s_.TxnTs(2).ToString(), "<*,*>");

  // Edge c: W2[x] conflicts with R1[x]; same group, transaction
  // timestamps encode T1 -> T2.
  EXPECT_EQ(s_.Process(Op{2, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_EQ(s_.TxnTs(1).ToString(), "<1,*>");
  EXPECT_EQ(s_.TxnTs(2).ToString(), "<2,*>");

  // Edge d: W3[y] conflicts with R2[y]; different groups, group
  // timestamps encode G1 -> G2.
  EXPECT_EQ(s_.Process(Op{3, OpType::kWrite, 1}), OpDecision::kAccept);
  EXPECT_EQ(s_.GroupTs(1, 2).ToString(), "<2,*>");
  EXPECT_EQ(s_.TxnTs(3).ToString(), "<*,*>");

  // Resulting-vectors row of Table III.
  EXPECT_EQ(s_.GroupTs(1, 0).ToString(), "<0,*>");
  EXPECT_EQ(s_.TxnTs(0).ToString(), "<0,*>");
  EXPECT_EQ(s_.GroupTs(1, 1).ToString(), "<1,*>");
  EXPECT_EQ(s_.TxnTs(1).ToString(), "<1,*>");
  EXPECT_EQ(s_.TxnTs(2).ToString(), "<2,*>");
  EXPECT_EQ(s_.GroupTs(1, 2).ToString(), "<2,*>");
  EXPECT_EQ(s_.TxnTs(3).ToString(), "<*,*>");
}

TEST_F(Example4Test, LaterReverseGroupDependencyIsRejected) {
  const Log log = L("R1[x] R2[y] W2[x] W3[y]");
  for (const Op& op : log.ops()) {
    ASSERT_EQ(s_.Process(op), OpDecision::kAccept);
  }
  // "If in the future a new dependency T3 -> T2 is created due to some
  // conflict, it is disallowed since it also implies G2 -> G1."
  // T3 writes z, then T2 reads z: dependency T3 -> T2.
  ASSERT_EQ(s_.Process(Op{3, OpType::kWrite, 2}), OpDecision::kAccept);
  EXPECT_EQ(s_.Process(Op{2, OpType::kRead, 2}), OpDecision::kReject);
  EXPECT_TRUE(s_.IsAborted(2));
}

TEST_F(Example4Test, GroupDependencyIsAntisymmetric) {
  const Log log = L("R1[x] R2[y] W2[x] W3[y]");
  for (const Op& op : log.ops()) {
    ASSERT_EQ(s_.Process(op), OpDecision::kAccept);
  }
  // G1 -> G2 holds; any same-direction dependency is still fine.
  EXPECT_EQ(s_.Process(Op{3, OpType::kRead, 0}), OpDecision::kAccept);
}

TEST(NestedTest, RegistrationValidation) {
  NestedMtScheduler s({2, 2});
  EXPECT_FALSE(s.RegisterTxn(0, {1}).ok()) << "virtual txn";
  EXPECT_FALSE(s.RegisterTxn(1, {}).ok()) << "chain length";
  EXPECT_FALSE(s.RegisterTxn(1, {0}).ok()) << "virtual group";
  EXPECT_TRUE(s.RegisterTxn(1, {1}).ok());
  EXPECT_TRUE(s.RegisterTxn(1, {1}).ok()) << "idempotent re-registration";
  EXPECT_FALSE(s.RegisterTxn(1, {2}).ok()) << "membership is static";
}

TEST(NestedTest, UnregisteredTransactionRejected) {
  NestedMtScheduler s({2, 2});
  EXPECT_EQ(s.Process(Op{5, OpType::kRead, 0}), OpDecision::kReject);
}

TEST(NestedTest, SingletonGroupsReduceToPlainMtk) {
  // "If we let each group contain exactly one transaction ... MT(k1,k2)
  // reduces to MT(k)." With singleton groups every dependency is
  // inter-group, so the group table behaves exactly like MT(k_group).
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    WorkloadOptions w;
    w.num_txns = 5;
    w.num_items = 4;
    w.min_ops = 1;
    w.max_ops = 3;
    w.seed = seed + 100;
    Log log = GenerateLog(w);

    for (size_t k : {1u, 2u, 3u}) {
      NestedMtScheduler nested({2, k});
      for (TxnId t = 1; t <= log.num_txns(); ++t) {
        ASSERT_TRUE(nested.RegisterTxn(t, {t}).ok());
      }
      MtkOptions options;
      options.k = k;
      MtkScheduler plain(options);
      for (const Op& op : log.ops()) {
        OpDecision dn = nested.Process(op);
        OpDecision dp = plain.Process(op);
        ASSERT_EQ(dn, dp) << "k=" << k << " op " << OpName(op) << " in "
                          << log.ToString();
        if (dn == OpDecision::kReject) break;  // Keep abort states aligned.
      }
    }
  }
}

TEST(NestedTest, AcceptedHistoriesAreDsr) {
  // Group-level serializability implies (coarser) transaction
  // serializability: whatever MT(k1,k2) accepts must be DSR.
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions w;
    w.num_txns = 6;
    w.num_items = 4;
    w.min_ops = 1;
    w.max_ops = 3;
    w.seed = seed + 300;
    Log log = GenerateLog(w);

    NestedMtScheduler nested({2, 2});
    // Two groups: odd transactions in G1, even in G2.
    for (TxnId t = 1; t <= log.num_txns(); ++t) {
      ASSERT_TRUE(nested.RegisterTxn(t, {1 + t % 2}).ok());
    }
    Log accepted;
    for (const Op& op : log.ops()) {
      if (nested.Process(op) == OpDecision::kAccept) accepted.Append(op);
    }
    // Drop operations of aborted transactions (their accesses are
    // withdrawn by the scheduler).
    Log effective;
    for (const Op& op : accepted.ops()) {
      if (!nested.IsAborted(op.txn)) effective.Append(op);
    }
    EXPECT_TRUE(IsDsr(effective)) << log.ToString();
  }
}

TEST(NestedTest, ThreeLevelHierarchyWorks) {
  // "G1, G2, ..., Gm can be further grouped into supergroups, and the same
  // idea applies."
  NestedMtScheduler s({2, 2, 2});
  ASSERT_TRUE(s.RegisterTxn(1, {1, 1}).ok());
  ASSERT_TRUE(s.RegisterTxn(2, {1, 1}).ok());
  ASSERT_TRUE(s.RegisterTxn(3, {2, 1}).ok());
  ASSERT_TRUE(s.RegisterTxn(4, {3, 2}).ok());

  // T1 -> T2 same group: transaction level.
  ASSERT_EQ(s.Process(Op{1, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{2, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_TRUE(VectorLess(s.TxnTs(1), s.TxnTs(2)));

  // T2 -> T3: same supergroup, different groups: level-1 vectors.
  ASSERT_EQ(s.Process(Op{3, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_TRUE(VectorLess(s.GroupTs(1, 1), s.GroupTs(1, 2)));

  // T3 -> T4: different supergroups: level-2 vectors only.
  ASSERT_EQ(s.Process(Op{4, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_TRUE(VectorLess(s.GroupTs(2, 1), s.GroupTs(2, 2)));

  // Reverse supergroup dependency T4 -> T1 is now impossible.
  ASSERT_EQ(s.Process(Op{4, OpType::kWrite, 1}), OpDecision::kAccept);
  EXPECT_EQ(s.Process(Op{1, OpType::kRead, 1}), OpDecision::kReject);
}

TEST(NestedTest, RestartAfterAbort) {
  NestedMtScheduler s({2, 2});
  ASSERT_TRUE(s.RegisterTxn(1, {1}).ok());
  ASSERT_TRUE(s.RegisterTxn(2, {2}).ok());
  ASSERT_TRUE(s.RegisterTxn(3, {1}).ok());
  // Establish G1 -> G2 (W2[x] after R1[x]); then T3 (in G1) reading y,
  // last written by T2 (G2), would imply G2 -> G1 and must be rejected.
  ASSERT_EQ(s.Process(Op{1, OpType::kRead, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{2, OpType::kWrite, 0}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{2, OpType::kWrite, 1}), OpDecision::kAccept);
  ASSERT_EQ(s.Process(Op{3, OpType::kRead, 1}), OpDecision::kReject);
  ASSERT_TRUE(s.IsAborted(3));
  // While aborted, further operations are rejected.
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 2}), OpDecision::kReject);
  // After restart, T3 can run against untouched items.
  s.RestartTxn(3);
  EXPECT_FALSE(s.IsAborted(3));
  EXPECT_EQ(s.Process(Op{3, OpType::kRead, 2}), OpDecision::kAccept);
}

// --- Partition rules (Table IV / Examples 5-6) ---

TEST(PartitionTest, ReadWriteSignatureGrouping) {
  // Table IV: G1 reads {x,z} writes {y,z}; G2 reads {y,w} writes {x,w}.
  // T1 and T3 share G1's signature; T2 shares G2's.
  Log log = L(
      "R1[x] R1[z] W1[y] W1[z] "
      "R2[y] R2[w] W2[x] W2[w] "
      "R3[x] R3[z] W3[y] W3[z]");
  auto partition = PartitionByReadWriteSignature(log);
  ASSERT_EQ(partition.size(), 3u);
  EXPECT_EQ(partition[0], partition[2]) << "T1 and T3 share a signature";
  EXPECT_NE(partition[0], partition[1]);
}

TEST(PartitionTest, RegisterPartitionWiresUpScheduler) {
  Log log = L("R1[x] W1[y] R2[x] W2[y] R3[z] W3[w]");
  auto partition = PartitionByReadWriteSignature(log);
  NestedMtScheduler s({2, 2});
  ASSERT_TRUE(RegisterPartition(&s, partition).ok());
  for (const Op& op : log.ops()) {
    EXPECT_EQ(s.Process(op), OpDecision::kAccept) << OpName(op);
  }
}

TEST(PartitionTest, PartitionBySiteIsIdentity) {
  EXPECT_EQ(PartitionBySite({1, 2, 1}), (std::vector<GroupId>{1, 2, 1}));
}

}  // namespace
}  // namespace mdts
