#include "obs/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include "core/mtk_scheduler.h"
#include "dist/dmt_system.h"
#include "engine/sharded_engine.h"
#include "gtest/gtest.h"
#include "obs/abort_reason.h"
#include "obs/trace.h"
#include "sched/interval_scheduler.h"
#include "sched/mtk_online.h"
#include "sched/occ_scheduler.h"
#include "sched/to1_scheduler.h"
#include "sched/two_pl_scheduler.h"

namespace mdts {
namespace {

// ===========================================================================
// Counter / Histogram under concurrent writers (exactness; run under tsan
// via the asan-obs / tsan-obs presets).
// ===========================================================================

TEST(CounterTest, ConcurrentWritersLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(CounterTest, MoreThreadsThanSlotsStillExact) {
  // Threads beyond the exclusive slots share the overflow slot via
  // fetch_add; totals must stay exact either way.
  Counter c;
  constexpr int kThreads = 24;  // > Counter::kSlots.
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add(3);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread * 3);
}

TEST(HistogramTest, ConcurrentWritersExactMoments) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kMax = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h] {
      for (uint64_t v = 1; v <= kMax; ++v) h.Record(v);
    });
  }
  for (auto& th : pool) th.join();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, kThreads * kMax);
  EXPECT_EQ(s.sum, kThreads * (kMax * (kMax + 1) / 2));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, kMax);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(HistogramTest, LogBucketPlacementAndPercentiles) {
  Histogram h;
  h.Record(0);    // bucket 0
  h.Record(1);    // bucket 1
  h.Record(2);    // bucket 2
  h.Record(3);    // bucket 2
  h.Record(100);  // bucket 7 (64 <= 100 < 128)
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[7], 1u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 100u);
  // p50 falls in bucket 2 (upper bound 3); p99's bucket upper bound is
  // clamped to the observed max.
  EXPECT_EQ(s.Percentile(50), 3u);
  EXPECT_EQ(s.Percentile(99), 100u);
}

// ===========================================================================
// Registry snapshots: determinism and lookups.
// ===========================================================================

TEST(MetricsRegistryTest, SnapshotIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry a, b;
  a.GetCounter("zeta")->Add(7);
  a.GetCounter("alpha")->Add(3);
  a.GetHistogram("lat")->Record(5);
  b.GetHistogram("lat")->Record(5);
  b.GetCounter("alpha")->Add(3);
  b.GetCounter("zeta")->Add(7);
  EXPECT_EQ(a.Snapshot().ToText(), b.Snapshot().ToText());
  EXPECT_EQ(a.Snapshot().ToJson(), b.Snapshot().ToJson());
}

TEST(MetricsRegistryTest, StablePointersAndLookups) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x.accepted");
  EXPECT_EQ(reg.GetCounter("x.accepted"), c);  // Register-once.
  c->Add(4);
  reg.GetCounter("x.rejected.lex_order")->Add(2);
  reg.GetCounter("x.rejected.stale_txn")->Add(1);
  const MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.CounterValue("x.accepted"), 4u);
  EXPECT_EQ(s.CounterValue("absent"), 0u);
  EXPECT_EQ(s.CounterSum("x.rejected."), 3u);
}

// ===========================================================================
// Abort-reason taxonomy.
// ===========================================================================

TEST(AbortReasonTest, NamesAndDescriptionsCoverEveryValue) {
  std::vector<std::string> seen;
  for (size_t r = 0; r < kNumAbortReasons; ++r) {
    const AbortReason reason = static_cast<AbortReason>(r);
    const std::string name = AbortReasonName(reason);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find(' '), std::string::npos) << name;
    EXPECT_FALSE(std::string(AbortReasonDescription(reason)).empty());
    for (const std::string& prev : seen) EXPECT_NE(prev, name);
    seen.push_back(name);
  }
}

TEST(AbortReasonTest, CountsTotalExcludesUnclassified) {
  AbortReasonCounts c;
  c.Add(AbortReason::kNone);
  c.Add(AbortReason::kLexOrder, 2);
  c.Add(AbortReason::kLeaseExpired);
  EXPECT_EQ(c.total(), 3u);
  EXPECT_EQ(c.unclassified(), 1u);
  EXPECT_EQ(c[AbortReason::kLexOrder], 2u);
  AbortReasonCounts d;
  d.Add(AbortReason::kLexOrder);
  d += c;
  EXPECT_EQ(d[AbortReason::kLexOrder], 3u);
  // ToJson lists nonzero reasons only.
  const std::string json = c.ToJson();
  EXPECT_NE(json.find("\"lex_order\": 2"), std::string::npos) << json;
  EXPECT_EQ(json.find("down_site"), std::string::npos) << json;
}

TEST(AbortReasonTest, FormatRejectMentionsOpReasonAndBlocker) {
  const std::string s =
      FormatReject("W3[x]", AbortReason::kLexOrder, 2);
  EXPECT_NE(s.find("W3[x]"), std::string::npos) << s;
  EXPECT_NE(s.find("lex_order"), std::string::npos) << s;
  EXPECT_NE(s.find("2"), std::string::npos) << s;
}

// ===========================================================================
// Reconciliation: every rejected operation carries a classified reason and
// the per-reason tallies sum to the layer's reject/abort count.
// ===========================================================================

TEST(ReconciliationTest, MtkSchedulerRejectsAreClassified) {
  MtkOptions options;
  options.k = 1;
  MtkScheduler s(options);
  EXPECT_EQ(s.ExplainLastReject(), "no rejection yet");
  // MT(1): R2[x] after W1[x] fixes 1 < 2; R1[y] after W2[y] then needs
  // 2 < 1 - the opposite scalar order is already fixed.
  EXPECT_EQ(s.Process(Op{1, OpType::kWrite, 0}), OpDecision::kAccept);
  EXPECT_EQ(s.Process(Op{2, OpType::kRead, 0}), OpDecision::kAccept);
  EXPECT_EQ(s.Process(Op{2, OpType::kWrite, 1}), OpDecision::kAccept);
  EXPECT_EQ(s.Process(Op{1, OpType::kRead, 1}), OpDecision::kReject);
  EXPECT_EQ(s.last_reject().reason, AbortReason::kLexOrder);
  EXPECT_EQ(s.LastBlocker(), 2u);
  EXPECT_NE(s.ExplainLastReject().find("lex_order"), std::string::npos)
      << s.ExplainLastReject();
  // A stale resubmission is classified too.
  EXPECT_EQ(s.Process(Op{1, OpType::kRead, 1}), OpDecision::kReject);
  EXPECT_EQ(s.last_reject().reason, AbortReason::kStaleTxn);
  const MtkStats& st = s.stats();
  EXPECT_EQ(st.rejected, st.reject_reasons.total());
  EXPECT_EQ(st.reject_reasons.unclassified(), 0u);
}

TEST(ReconciliationTest, FiveProtocolsShareTheTaxonomy) {
  // One minimal conflict per protocol; each must classify its abort and
  // keep abort_reasons().total() equal to its abort count.
  To1Scheduler to1;
  to1.OnBegin(1);
  to1.OnBegin(2);
  EXPECT_EQ(to1.OnOperation(Op{2, OpType::kWrite, 0}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(to1.OnOperation(Op{1, OpType::kRead, 0}),
            SchedOutcome::kAborted);
  EXPECT_EQ(to1.last_abort_reason(), AbortReason::kLexOrder);

  TwoPlScheduler tpl;
  EXPECT_EQ(tpl.OnOperation(Op{1, OpType::kWrite, 0}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(tpl.OnOperation(Op{2, OpType::kWrite, 1}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(tpl.OnOperation(Op{1, OpType::kWrite, 1}),
            SchedOutcome::kBlocked);
  EXPECT_EQ(tpl.OnOperation(Op{2, OpType::kWrite, 0}),
            SchedOutcome::kAborted);
  EXPECT_EQ(tpl.last_abort_reason(), AbortReason::kDeadlockAvoidance);

  OccScheduler occ;
  occ.OnBegin(1);
  occ.OnBegin(2);
  EXPECT_EQ(occ.OnOperation(Op{1, OpType::kRead, 0}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(occ.OnOperation(Op{2, OpType::kWrite, 0}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(occ.OnCommit(2), SchedOutcome::kAccepted);
  EXPECT_EQ(occ.OnCommit(1), SchedOutcome::kAborted);
  EXPECT_EQ(occ.last_abort_reason(), AbortReason::kValidationFailure);

  IntervalScheduler iv;
  EXPECT_EQ(iv.OnOperation(Op{1, OpType::kWrite, 0}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(iv.OnOperation(Op{2, OpType::kRead, 0}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(iv.OnOperation(Op{1, OpType::kWrite, 0}),
            SchedOutcome::kAborted);
  EXPECT_EQ(iv.last_abort_reason(), AbortReason::kLexOrder);

  MtkOptions mo;
  mo.k = 1;
  MtkOnline mtk(mo);
  EXPECT_EQ(mtk.OnOperation(Op{1, OpType::kWrite, 0}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(mtk.OnOperation(Op{2, OpType::kRead, 0}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(mtk.OnOperation(Op{2, OpType::kWrite, 1}),
            SchedOutcome::kAccepted);
  EXPECT_EQ(mtk.OnOperation(Op{1, OpType::kRead, 1}),
            SchedOutcome::kAborted);
  EXPECT_EQ(mtk.last_abort_reason(), AbortReason::kLexOrder);

  for (const Scheduler* s :
       {static_cast<const Scheduler*>(&to1),
        static_cast<const Scheduler*>(&tpl),
        static_cast<const Scheduler*>(&occ),
        static_cast<const Scheduler*>(&iv),
        static_cast<const Scheduler*>(&mtk)}) {
    EXPECT_EQ(s->abort_reasons().total(), 1u) << s->name();
    EXPECT_EQ(s->abort_reasons().unclassified(), 0u) << s->name();
  }
}

TEST(ReconciliationTest, EngineStatsMatchMirroredRegistry) {
  MetricsRegistry reg;
  EngineOptions eo;
  eo.k = 2;
  eo.num_shards = 4;
  eo.metrics = &reg;
  ShardedMtkEngine engine(eo);
  constexpr int kThreads = 4;
  constexpr uint64_t kTxnsPerThread = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&engine, t] {
      uint64_t x = 88172645463325252ull + t;
      for (uint64_t n = 0; n < kTxnsPerThread; ++n) {
        const TxnId txn = 1 + t + n * kThreads;
        bool ok = true;
        for (int o = 0; o < 4 && ok; ++o) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
          Op op;
          op.txn = txn;
          op.type = (x & 1) ? OpType::kRead : OpType::kWrite;
          op.item = static_cast<ItemId>((x >> 8) % 8);  // Hot: conflicts.
          AbortReason reason = AbortReason::kNone;
          ok = engine.Process(op, &reason) != OpDecision::kReject;
          if (!ok) {
            // Every rejection must carry a classified reason.
            EXPECT_NE(reason, AbortReason::kNone);
          }
        }
        if (ok) {
          engine.CommitTxn(txn);
        } else {
          engine.RestartTxn(txn);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  const EngineStats st = engine.stats();
  EXPECT_GT(st.rejected, 0u);  // The hot item set guarantees conflicts.
  EXPECT_EQ(st.rejected, st.reject_reasons.total());
  EXPECT_EQ(st.reject_reasons.unclassified(), 0u);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("engine.accepted"), st.accepted);
  EXPECT_EQ(snap.CounterSum("engine.rejected."), st.rejected);
  EXPECT_EQ(snap.CounterValue("engine.rejected.lex_order"),
            st.reject_reasons[AbortReason::kLexOrder]);
  EXPECT_EQ(snap.CounterValue("engine.lock_contention"),
            st.lock_contention);
}

TEST(ReconciliationTest, DmtAbortsMatchReasonsAndRegistry) {
  MetricsRegistry reg;
  DmtOptions options;
  options.k = 2;
  options.num_sites = 4;
  options.num_txns = 60;
  options.concurrency = 8;
  options.message_latency = 0.5;
  options.seed = 11;
  options.workload.num_items = 12;
  options.workload.min_ops = 2;
  options.workload.max_ops = 4;
  options.workload.read_fraction = 0.5;
  options.fault.drop_rate = 0.2;
  options.fault.jitter = 0.2;
  options.fault.crashes.push_back({1, 40.0, 90.0});
  options.metrics = &reg;
  const DmtResult r = RunDmtSimulation(options);
  EXPECT_GT(r.aborts, 0u);  // Faults guarantee aborts at this loss rate.
  EXPECT_EQ(r.aborts, r.abort_reasons.total());
  EXPECT_EQ(r.abort_reasons.unclassified(), 0u);
  // End-of-run publication: registry deltas equal the result fields.
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("dmt.committed"), r.committed);
  EXPECT_EQ(snap.CounterSum("dmt.aborts."), r.aborts);
  EXPECT_EQ(snap.CounterValue("dmt.aborts.lease_expired"),
            r.abort_reasons[AbortReason::kLeaseExpired]);
  EXPECT_EQ(snap.CounterValue("dmt.lease_reclaims"), r.lease_reclaims);
}

// ===========================================================================
// Tracer: disabled-by-default, ring wrap, Chrome trace JSON schema.
// ===========================================================================

#if MDTS_TRACE_COMPILED

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Reset();
  }
};

TEST_F(TracerTest, DisabledMacrosEmitNothing) {
  ASSERT_FALSE(Tracer::Enabled());
  MDTS_TRACE_INSTANT("noop");
  MDTS_TRACE_AT("noop", 'i', 2, 0, 17);
  { MDTS_TRACE_SPAN("noop"); }
  EXPECT_EQ(Tracer::Get().event_count(), 0u);
}

TEST_F(TracerTest, RingKeepsNewestEventsAfterWrap) {
  Tracer::Get().Enable(/*events_per_thread=*/16);  // 16 = the minimum ring.
  for (uint64_t i = 0; i < 100; ++i) {
    MDTS_TRACE_AT_ARG("tick", 'i', 2, 0, i, "n", i);
  }
  Tracer::Get().Disable();
  EXPECT_EQ(Tracer::Get().event_count(), 16u);
  const std::string json = Tracer::Get().ToJson();
  EXPECT_NE(json.find("\"ts\":99"), std::string::npos);   // Newest kept.
  EXPECT_EQ(json.find("\"ts\":50,"), std::string::npos);  // Oldest dropped.
}

TEST_F(TracerTest, JsonSchemaAndLaneOrdering) {
  Tracer::Get().Enable();
  // Same (pid, tid) lane, timestamps emitted out of order: export must
  // sort the lane.
  MDTS_TRACE_AT("later", 'i', 2, 3, 500);
  MDTS_TRACE_AT("earlier", 'i', 2, 3, 100);
  MDTS_TRACE_AT_ARG("argued", 'i', 2, 4, 250, "txn", 42);
  { MDTS_TRACE_SPAN("span"); }  // Real-time lane: 'X' with dur.
  Tracer::Get().Disable();
  const std::string json = Tracer::Get().ToJson();

  // Chrome trace_event envelope, loadable by Perfetto.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  const std::string tail = "],\"displayTimeUnit\":\"ms\"}\n";
  ASSERT_GE(json.size(), tail.size());
  EXPECT_EQ(json.substr(json.size() - tail.size()), tail);
  // Metadata names both timeline groups.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("mdts-sim"), std::string::npos);
  // Every emitted event carries the required keys.
  for (const char* key : {"\"name\"", "\"ph\"", "\"pid\"", "\"tid\"",
                          "\"ts\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Lane (2, 3) is sorted by ts regardless of emission order.
  EXPECT_LT(json.find("\"earlier\""), json.find("\"later\""));
  // The argument rides along under "args".
  EXPECT_NE(json.find("\"args\":{\"txn\":42}"), std::string::npos);
  // The span exported as a complete event with a duration.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST_F(TracerTest, ConcurrentEmittersGetPrivateLanes) {
  Tracer::Get().Enable();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        MDTS_TRACE_INSTANT("evt");
      }
    });
  }
  for (auto& th : pool) th.join();
  Tracer::Get().Disable();
  EXPECT_EQ(Tracer::Get().event_count(), kThreads * kPerThread);
}

#endif  // MDTS_TRACE_COMPILED

}  // namespace
}  // namespace mdts
