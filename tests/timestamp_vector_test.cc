#include "core/timestamp_vector.h"

#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"

namespace mdts {
namespace {

TimestampVector Make(std::vector<TsElement> elems) {
  TimestampVector v(elems.size());
  for (size_t i = 0; i < elems.size(); ++i) {
    if (elems[i] != kUndefinedElement) v.Set(i, elems[i]);
  }
  return v;
}

constexpr TsElement U = kUndefinedElement;

TEST(TimestampVectorTest, InitiallyAllUndefined) {
  TimestampVector v(4);
  EXPECT_EQ(v.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_FALSE(v.IsDefined(i));
  EXPECT_EQ(v.DefinedPrefixLength(), 0u);
  EXPECT_EQ(v.DefinedCount(), 0u);
  EXPECT_EQ(v.ToString(), "<*,*,*,*>");
}

TEST(TimestampVectorTest, VirtualVectorIsZeroThenUndefined) {
  TimestampVector v = TimestampVector::Virtual(3);
  EXPECT_TRUE(v.IsDefined(0));
  EXPECT_EQ(v.Get(0), 0);
  EXPECT_FALSE(v.IsDefined(1));
  EXPECT_EQ(v.ToString(), "<0,*,*>");
}

TEST(TimestampVectorTest, SetAndReset) {
  TimestampVector v(3);
  v.Set(0, 5);
  v.Set(1, -2);
  EXPECT_EQ(v.DefinedPrefixLength(), 2u);
  EXPECT_EQ(v.ToString(), "<5,-2,*>");
  v.Reset();
  EXPECT_EQ(v.DefinedCount(), 0u);
}

// --- Definition 6 comparison semantics ---

TEST(CompareTest, LessAtFirstElement) {
  auto r = Compare(Make({1, 2}), Make({2, U}));
  EXPECT_EQ(r.order, VectorOrder::kLess);
  EXPECT_EQ(r.index, 0u);
}

TEST(CompareTest, GreaterDecidedAtSecondElement) {
  auto r = Compare(Make({1, 5, U}), Make({1, 3, 9}));
  EXPECT_EQ(r.order, VectorOrder::kGreater);
  EXPECT_EQ(r.index, 1u);
}

TEST(CompareTest, EqualWhenBothUndefined) {
  // Paper Example 1: TS(2) = <2,*> and TS(3) = <2,*> are equal, which is the
  // whole point of multidimensional timestamps.
  auto r = Compare(Make({2, U}), Make({2, U}));
  EXPECT_EQ(r.order, VectorOrder::kEqual);
  EXPECT_EQ(r.index, 1u);
}

TEST(CompareTest, EqualAtFirstElementWhenBothFullyUndefined) {
  auto r = Compare(Make({U, U}), Make({U, U}));
  EXPECT_EQ(r.order, VectorOrder::kEqual);
  EXPECT_EQ(r.index, 0u);
}

TEST(CompareTest, UndeterminedWhenExactlyOneUndefined) {
  auto r = Compare(Make({1, U}), Make({1, 4}));
  EXPECT_EQ(r.order, VectorOrder::kUndetermined);
  EXPECT_EQ(r.index, 1u);

  r = Compare(Make({1, 4}), Make({1, U}));
  EXPECT_EQ(r.order, VectorOrder::kUndetermined);
  EXPECT_EQ(r.index, 1u);
}

TEST(CompareTest, UndefinedElementNotEqualToAnyInteger) {
  // "We assume that an undefined element is not equal to any integer":
  // <1,*> vs <1,0> must be undetermined, not equal, even though the
  // undefined slot could later take value 0.
  auto r = Compare(Make({1, U}), Make({1, 0}));
  EXPECT_EQ(r.order, VectorOrder::kUndetermined);
}

TEST(CompareTest, IdenticalFullyDefinedVectors) {
  auto r = Compare(Make({3, 7}), Make({3, 7}));
  EXPECT_EQ(r.order, VectorOrder::kIdentical);
  EXPECT_EQ(r.index, 2u);
}

TEST(CompareTest, PaperFigure6Vectors) {
  // Input of Fig. 6: TS(1) = <1,3,2,2>, TS(2) = <1,3,5,2>; the 3rd elements
  // are the first unequal pair and decide TS(1) < TS(2).
  auto r = Compare(Make({1, 3, 2, 2}), Make({1, 3, 5, 2}));
  EXPECT_EQ(r.order, VectorOrder::kLess);
  EXPECT_EQ(r.index, 2u);
}

TEST(CompareTest, NegativeElementsOrderCorrectly) {
  // lcount counts downward, so negative elements are routine.
  auto r = Compare(Make({1, 0}), Make({1, 2}));
  EXPECT_EQ(r.order, VectorOrder::kLess);
  r = Compare(Make({1, -3}), Make({1, 0}));
  EXPECT_EQ(r.order, VectorOrder::kLess);
}

// --- Lemma 1 (transitivity) and Lemma 2 (irreflexivity), randomized ---

class CompareLawsTest : public ::testing::TestWithParam<uint64_t> {};

TimestampVector RandomVector(Rng* rng, size_t k) {
  TimestampVector v(k);
  // Random defined prefix (the invariant the scheduler maintains).
  size_t prefix = static_cast<size_t>(rng->Uniform(0, static_cast<int64_t>(k)));
  for (size_t i = 0; i < prefix; ++i) {
    v.Set(i, rng->Uniform(-4, 5));
  }
  return v;
}

TEST_P(CompareLawsTest, LessIsTransitiveAndIrreflexive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    size_t k = static_cast<size_t>(rng.Uniform(1, 6));
    TimestampVector a = RandomVector(&rng, k);
    TimestampVector b = RandomVector(&rng, k);
    TimestampVector c = RandomVector(&rng, k);
    // Lemma 2: irreflexive.
    EXPECT_FALSE(VectorLess(a, a));
    // Lemma 1: transitive.
    if (VectorLess(a, b) && VectorLess(b, c)) {
      EXPECT_TRUE(VectorLess(a, c))
          << a.ToString() << " < " << b.ToString() << " < " << c.ToString();
    }
    // Antisymmetry follows: not both a<b and b>a reversed.
    if (VectorLess(a, b)) {
      EXPECT_FALSE(VectorLess(b, a));
      EXPECT_EQ(Compare(b, a).order, VectorOrder::kGreater);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompareLawsTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1986u));

TEST(CompareTest, ComparisonIsSymmetricallyConsistent) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t k = static_cast<size_t>(rng.Uniform(1, 5));
    TimestampVector a = RandomVector(&rng, k);
    TimestampVector b = RandomVector(&rng, k);
    auto ab = Compare(a, b);
    auto ba = Compare(b, a);
    EXPECT_EQ(ab.index, ba.index);
    switch (ab.order) {
      case VectorOrder::kLess:
        EXPECT_EQ(ba.order, VectorOrder::kGreater);
        break;
      case VectorOrder::kGreater:
        EXPECT_EQ(ba.order, VectorOrder::kLess);
        break;
      default:
        EXPECT_EQ(ba.order, ab.order);
    }
  }
}

TEST(TimestampVectorDifferentialTest, OptimizedCompareMatchesNaive) {
  // The mask-based comparator must agree with the literal Definition-6
  // reference on order AND decision position for arbitrary definedness
  // patterns, across inline (k <= 8), heap (k > 8), and mask-overflow
  // (k > 32) storage regimes.
  Rng rng(20260805);
  for (size_t k : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 31u, 32u, 33u, 40u}) {
    const size_t pairs = k <= 9 ? 1200 : 300;
    for (size_t n = 0; n < pairs; ++n) {
      TimestampVector a(k);
      TimestampVector b(k);
      for (size_t m = 0; m < k; ++m) {
        // Small value range forces frequent equal defined prefixes, the
        // interesting regime; ~40% undefined exercises every break case.
        if (rng.Chance(0.6)) a.Set(m, static_cast<TsElement>(rng.Uniform(0, 2)));
        if (rng.Chance(0.6)) b.Set(m, static_cast<TsElement>(rng.Uniform(0, 2)));
      }
      const VectorCompareResult fast = internal::CompareFast(a, b);
      const VectorCompareResult naive = CompareNaive(a, b);
      ASSERT_EQ(fast.order, naive.order)
          << "k=" << k << " a=" << a.ToString() << " b=" << b.ToString();
      ASSERT_EQ(fast.index, naive.index)
          << "k=" << k << " a=" << a.ToString() << " b=" << b.ToString();
      // Compare() is the same decision (plus the optional debug check).
      const VectorCompareResult pub = Compare(a, b);
      ASSERT_EQ(pub.order, naive.order);
      ASSERT_EQ(pub.index, naive.index);
      // Antisymmetry through the mirrored call.
      const VectorCompareResult rev = internal::CompareFast(b, a);
      switch (naive.order) {
        case VectorOrder::kLess:
          ASSERT_EQ(rev.order, VectorOrder::kGreater);
          break;
        case VectorOrder::kGreater:
          ASSERT_EQ(rev.order, VectorOrder::kLess);
          break;
        default:
          ASSERT_EQ(rev.order, naive.order);
          break;
      }
      ASSERT_EQ(rev.index, naive.index);
    }
  }
}

TEST(TimestampVectorDifferentialTest, UnsetViaSentinelClearsMaskBit) {
  TimestampVector v(4);
  v.Set(1, 7);
  EXPECT_TRUE(v.IsDefined(1));
  v.Set(1, kUndefinedElement);  // Writing the sentinel un-defines.
  EXPECT_FALSE(v.IsDefined(1));
  EXPECT_EQ(v.DefinedCount(), 0u);
  EXPECT_EQ(v.DefinedPrefixLength(), 0u);
}

TEST(TimestampVectorDifferentialTest, PrefixAndCountAgreeWithScan) {
  Rng rng(99);
  for (size_t k : {1u, 8u, 9u, 32u, 33u, 45u}) {
    for (int n = 0; n < 200; ++n) {
      TimestampVector v(k);
      for (size_t m = 0; m < k; ++m) {
        if (rng.Chance(0.5)) v.Set(m, static_cast<TsElement>(rng.Uniform(0, 99)));
      }
      size_t prefix = 0;
      while (prefix < k && v.IsDefined(prefix)) ++prefix;
      size_t count = 0;
      for (size_t m = 0; m < k; ++m) count += v.IsDefined(m) ? 1 : 0;
      ASSERT_EQ(v.DefinedPrefixLength(), prefix) << "k=" << k;
      ASSERT_EQ(v.DefinedCount(), count) << "k=" << k;
    }
  }
}

TEST(TimestampVectorDifferentialTest, CopyAndMovePreserveHeapVectors) {
  TimestampVector big(12);  // Heap regime.
  big.Set(0, 1);
  big.Set(11, -4);
  TimestampVector copy = big;
  EXPECT_TRUE(copy == big);
  TimestampVector moved = std::move(copy);
  EXPECT_TRUE(moved == big);
  moved = big;  // Copy-assign over a heap vector.
  EXPECT_TRUE(moved == big);
  TimestampVector small(3);
  small.Set(1, 5);
  moved = small;  // Copy-assign shrinking heap -> inline.
  EXPECT_TRUE(moved == small);
  EXPECT_EQ(moved.size(), 3u);
}

}  // namespace
}  // namespace mdts
