// Flight recorder + latency attribution suite (labeled `obs-flight` so the
// asan-obs-flight / tsan-obs-flight presets run exactly this binary under
// the sanitizers):
//   - FlightRecorder unit coverage: seqlock ring round trips, overwrite
//     semantics, capacity rounding, write-set truncation, JSON/dump shape;
//   - engine integration: commit/reject records reconcile exactly with
//     EngineStats, commit records carry the committed vector and write set,
//     and phase_sample_shift = 0 deterministically populates every
//     "engine.phase.*_us" histogram (multiversion + WAL run, so the
//     mv_read / wal_append / fsync phases exist too);
//   - the two auto-dump triggers: StarvationWatchdogOptions::on_alert and
//     WalOptions::on_crash both produce a parseable dump file;
//   - the HTTP surfacing: /phases.json (with exemplars) and /flight.json
//     over a real localhost socket, plus the 400/404 error answers.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/timestamp_vector.h"
#include "core/types.h"
#include "engine/sharded_engine.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "obs/flight.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"
#include "wal/wal.h"

namespace mdts {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) / ("mdts_flight_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ===========================================================================
// FlightRecorder unit coverage.
// ===========================================================================

TEST(FlightRecorderTest, CommitRoundTripAllFields) {
  FlightRecorderOptions fo;
  fo.rings = 2;
  fo.capacity = 8;
  fo.k = 3;
  FlightRecorder flight(fo);

  TimestampVector vec(3);
  vec.Set(0, 5);
  vec.Set(2, -7);  // Slot 1 stays undefined.
  const ItemId writes[] = {11, 42};
  uint32_t phase_us[kNumTxnPhases] = {};
  phase_us[static_cast<size_t>(TxnPhase::kLock)] = 3;
  phase_us[static_cast<size_t>(TxnPhase::kAck)] = 9;
  flight.RecordCommit(/*ring=*/1, /*txn=*/7, vec, /*shard_mask=*/0b10,
                      writes, phase_us, /*time_us=*/1234);

  const std::vector<FlightRecord> records = flight.Drain();
  ASSERT_EQ(records.size(), 1u);
  const FlightRecord& r = records[0];
  EXPECT_EQ(r.txn, 7u);
  EXPECT_TRUE(r.commit);
  EXPECT_TRUE(r.phases_sampled);
  EXPECT_EQ(r.ring, 1u);
  EXPECT_EQ(r.time_us, 1234u);
  EXPECT_EQ(r.shard_mask, 0b10u);
  EXPECT_EQ(r.writes_total, 2u);
  ASSERT_EQ(r.writes.size(), 2u);
  EXPECT_EQ(r.writes[0], 11u);
  EXPECT_EQ(r.writes[1], 42u);
  ASSERT_EQ(r.k, 3u);
  ASSERT_EQ(r.vec.size(), 3u);
  EXPECT_EQ(r.vec[0], 5);
  EXPECT_EQ(r.vec[1], kUndefinedElement);
  EXPECT_EQ(r.vec[2], -7);
  EXPECT_EQ(r.phase_us[static_cast<size_t>(TxnPhase::kLock)], 3u);
  EXPECT_EQ(r.phase_us[static_cast<size_t>(TxnPhase::kAck)], 9u);
  EXPECT_EQ(flight.commits(), 1u);
  EXPECT_EQ(flight.aborts(), 0u);
}

TEST(FlightRecorderTest, AbortRoundTripReasonBlockerOp) {
  FlightRecorderOptions fo;
  fo.k = 2;
  FlightRecorder flight(fo);

  TimestampVector vec(2);
  vec.Set(0, 3);
  const Op op{9, OpType::kWrite, 77};
  flight.RecordAbort(/*ring=*/0, /*txn=*/9, AbortReason::kVersionConflict,
                     /*blocker=*/4, &op, /*shard_mask=*/1, &vec,
                     /*time_us=*/55);
  // A reject with no vector snapshot (DMT aborts mid-flight) is legal too.
  flight.RecordAbort(0, 10, AbortReason::kLexOrder, 0, nullptr, 0, nullptr,
                     56);

  const std::vector<FlightRecord> records = flight.Drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_LT(records[0].seq, records[1].seq);
  const FlightRecord& a = records[0];
  EXPECT_FALSE(a.commit);
  EXPECT_FALSE(a.phases_sampled);
  EXPECT_EQ(a.reason, AbortReason::kVersionConflict);
  EXPECT_EQ(a.blocker, 4u);
  ASSERT_TRUE(a.has_op);
  EXPECT_EQ(a.op.type, OpType::kWrite);
  EXPECT_EQ(a.op.item, 77u);
  ASSERT_EQ(a.k, 2u);
  EXPECT_EQ(a.vec[0], 3);
  EXPECT_EQ(a.vec[1], kUndefinedElement);
  const FlightRecord& b = records[1];
  EXPECT_EQ(b.reason, AbortReason::kLexOrder);
  EXPECT_FALSE(b.has_op);
  EXPECT_EQ(b.k, 0u);  // No vector was captured.
  EXPECT_TRUE(b.vec.empty());

  EXPECT_EQ(flight.aborts(), 2u);
  const AbortReasonCounts reasons = flight.abort_reasons();
  EXPECT_EQ(
      reasons.counts[static_cast<size_t>(AbortReason::kVersionConflict)], 1u);
  EXPECT_EQ(reasons.counts[static_cast<size_t>(AbortReason::kLexOrder)], 1u);
}

TEST(FlightRecorderTest, RingOverwritesOldestKeepsNewest) {
  FlightRecorderOptions fo;
  fo.rings = 1;
  fo.capacity = 4;
  fo.k = 1;
  FlightRecorder flight(fo);
  TimestampVector vec(1);
  for (TxnId t = 1; t <= 10; ++t) {
    vec.Set(0, static_cast<TsElement>(t));
    flight.RecordCommit(0, t, vec, 0, {}, nullptr, t);
  }
  const std::vector<FlightRecord> records = flight.Drain();
  ASSERT_EQ(records.size(), 4u);
  // The ring keeps the newest 4 (txns 7..10); lifetime totals keep all 10.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].txn, 7u + i);
    if (i > 0) {
      EXPECT_GT(records[i].seq, records[i - 1].seq);
    }
  }
  EXPECT_EQ(flight.commits(), 10u);
}

TEST(FlightRecorderTest, CapacityRoundsUpAndRingsClamp) {
  FlightRecorderOptions fo;
  fo.rings = 0;    // Clamped to 1.
  fo.capacity = 5;  // Rounded up to 8.
  FlightRecorder flight(fo);
  EXPECT_EQ(flight.rings(), 1u);
  EXPECT_EQ(flight.capacity(), 8u);
}

TEST(FlightRecorderTest, WriteSetTruncationKeepsTotal) {
  FlightRecorderOptions fo;
  fo.k = 1;
  FlightRecorder flight(fo);
  TimestampVector vec(1);
  vec.Set(0, 1);
  const std::vector<ItemId> writes = {1, 2, 3, 4, 5, 6};
  flight.RecordCommit(0, 1, vec, 0, writes, nullptr, 1);
  const std::vector<FlightRecord> records = flight.Drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].writes.size(), FlightRecorder::kMaxWrites);
  EXPECT_EQ(records[0].writes_total, 6u);
  EXPECT_EQ(records[0].writes[0], 1u);
}

TEST(FlightRecorderTest, JsonAndDumpShape) {
  FlightRecorderOptions fo;
  fo.rings = 1;
  fo.capacity = 4;
  fo.k = 2;
  FlightRecorder flight(fo);
  TimestampVector vec(2);
  vec.Set(0, 9);  // Slot 1 undefined: rendered "*".
  const ItemId writes[] = {5};
  flight.RecordCommit(0, 3, vec, 1, writes, nullptr, 100);
  flight.RecordAbort(0, 4, AbortReason::kStaleTxn, 0, nullptr, 0, &vec, 101);

  const std::string json = flight.ToJson();
  EXPECT_NE(json.find("\"meta\": {\"rings\": 1, \"capacity\": 4, \"k\": 2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"totals\": {\"commits\": 1, \"aborts\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"event\": \"commit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"event\": \"abort\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"reason\": \"stale_txn\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"vec\": [9, \"*\"]"), std::string::npos) << json;

  const std::string path = FreshDir("dump") + "/flight.json";
  ASSERT_TRUE(flight.DumpToFile(path));
  EXPECT_EQ(ReadFile(path), json);
}

// ===========================================================================
// Engine integration: totals reconcile, records carry protocol state, and
// shift-0 sampling deterministically fills every phase histogram.
// ===========================================================================

struct DriveOutcome {
  uint64_t commits = 0;
  uint64_t rejects = 0;
};

// Seeded single-threaded closed loop: each transaction runs a few random
// ops and commits unless one was rejected (lazy abort: the rejected
// transaction is simply abandoned, as MtkScheduler semantics allow).
DriveOutcome Drive(ShardedMtkEngine& engine, uint64_t seed, TxnId txns,
                   ItemId items, size_t ops_per_txn, int read_pct) {
  std::mt19937_64 rng(seed);
  DriveOutcome out;
  for (TxnId t = 1; t <= txns; ++t) {
    bool alive = true;
    for (size_t q = 0; q < ops_per_txn && alive; ++q) {
      const Op op{t,
                  static_cast<int>(rng() % 100) < read_pct ? OpType::kRead
                                                           : OpType::kWrite,
                  static_cast<ItemId>(rng() % items)};
      AbortReason why = AbortReason::kNone;
      if (engine.Process(op, &why) == OpDecision::kReject) {
        ++out.rejects;
        alive = false;
      }
    }
    if (alive) {
      engine.CommitTxn(t);
      ++out.commits;
    }
  }
  return out;
}

uint64_t HistCount(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, h] : snap.histograms) {
    if (n == name) return h.count;
  }
  return 0;
}

TEST(EngineFlightTest, TotalsReconcileWithEngineStats) {
  FlightRecorderOptions fo;
  fo.rings = 2;
  fo.capacity = 1024;  // Larger than the run: nothing is overwritten.
  fo.k = 3;
  FlightRecorder flight(fo);
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.flight = &flight;
  ShardedMtkEngine engine(eo);

  const DriveOutcome out =
      Drive(engine, /*seed=*/17, /*txns=*/200, /*items=*/8,
            /*ops_per_txn=*/4, /*read_pct=*/50);
  ASSERT_GT(out.commits, 0u);
  ASSERT_GT(out.rejects, 0u) << "conflict workload produced no rejects";

  // Lifetime totals match the engine's own accounting exactly...
  const EngineStats stats = engine.stats();
  EXPECT_EQ(flight.commits(), out.commits);
  EXPECT_EQ(flight.aborts(), out.rejects);
  EXPECT_EQ(flight.aborts(), stats.rejected);
  const AbortReasonCounts fr = flight.abort_reasons();
  for (size_t r = 0; r < kNumAbortReasons; ++r) {
    EXPECT_EQ(fr.counts[r], stats.reject_reasons.counts[r])
        << AbortReasonName(static_cast<AbortReason>(r));
  }
  // ...and the oversized ring retained every record.
  const std::vector<FlightRecord> records = flight.Drain();
  EXPECT_EQ(records.size(), out.commits + out.rejects);
}

TEST(EngineFlightTest, CommitRecordsCarryVectorWritesAndSampledPhases) {
  MetricsRegistry reg;
  FlightRecorderOptions fo;
  fo.rings = 1;
  fo.capacity = 1024;
  fo.k = 3;
  FlightRecorder flight(fo);
  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 1;
  eo.metrics = &reg;
  eo.flight = &flight;
  eo.phase_sample_shift = 0;  // Sample every batch and every commit.
  ShardedMtkEngine engine(eo);

  const DriveOutcome out = Drive(engine, 23, 60, 16, 3, 30);
  ASSERT_GT(out.commits, 0u);

  uint64_t commit_records = 0;
  for (const FlightRecord& r : flight.Drain()) {
    if (!r.commit) {
      // Engine rejects carry the refused operation and a classified reason.
      EXPECT_NE(r.reason, AbortReason::kNone);
      EXPECT_TRUE(r.has_op);
      continue;
    }
    ++commit_records;
    EXPECT_EQ(r.k, 3u);
    ASSERT_EQ(r.vec.size(), 3u);
    // A committed writer's vector snapshot is live state: at least one
    // element defined once the transaction ordered against anything. The
    // write set mirrors what the transaction actually wrote.
    EXPECT_EQ(r.writes.size(),
              std::min<size_t>(r.writes_total, FlightRecorder::kMaxWrites));
    // shift 0 with a registry: every commit's phases were measured.
    EXPECT_TRUE(r.phases_sampled) << "txn " << r.txn;
  }
  EXPECT_EQ(commit_records, out.commits);
}

TEST(EngineFlightTest, ShiftZeroPopulatesAllSevenPhaseHistograms) {
  // Multiversion + WAL: the only configuration where all seven lifecycle
  // phases exist (mv_read needs version-chain reads, wal_append/fsync need
  // a log). kEveryCommit makes the fsync wait nonzero-eligible on every
  // commit; shift 0 times everything, so each histogram must have samples.
  MetricsRegistry reg;
  WalOptions wo;
  wo.dir = FreshDir("phases");
  wo.num_streams = 1;
  wo.k = 3;
  wo.sync_policy = WalSyncPolicy::kEveryCommit;
  ParallelWal wal(wo);
  ASSERT_TRUE(wal.ok());

  EngineOptions eo;
  eo.k = 3;
  eo.num_shards = 2;
  eo.multiversion = true;
  eo.metrics = &reg;
  eo.wal = &wal;
  eo.phase_sample_shift = 0;
  ShardedMtkEngine engine(eo);

  const DriveOutcome out = Drive(engine, 31, 80, 16, 4, 50);
  ASSERT_GT(out.commits, 0u);

  const MetricsSnapshot snap = reg.Snapshot();
  for (size_t p = 0; p < kNumTxnPhases; ++p) {
    const std::string name =
        std::string("engine.phase.") +
        TxnPhaseName(static_cast<TxnPhase>(p)) + "_us";
    EXPECT_GT(HistCount(snap, name), 0u) << name;
  }
}

// ===========================================================================
// Auto-dump triggers: watchdog alert and WAL crash hook.
// ===========================================================================

TEST(WatchdogFlightTest, AlertAutoDumpsTheRecorder) {
  const std::string path = FreshDir("watchdog") + "/flight.json";
  FlightRecorderOptions fo;
  fo.k = 1;
  FlightRecorder flight(fo);
  TimestampVector vec(1);
  vec.Set(0, 1);
  flight.RecordCommit(0, 1, vec, 0, {}, nullptr, 10);

  MetricsRegistry reg;
  Gauge* source = reg.GetGauge("engine.max_consecutive_aborts");
  SamplerOptions so;
  so.registry = &reg;
  Sampler sampler(so);
  StarvationWatchdogOptions wo;
  wo.source_gauge = "engine.max_consecutive_aborts";
  wo.threshold = 4;
  wo.min_windows = 2;
  uint64_t dumps = 0;
  wo.on_alert = [&flight, &dumps, &path](const WatchdogAlert&) {
    if (flight.DumpToFile(path)) ++dumps;
  };
  sampler.AddStarvationWatchdog(wo);

  source->SetMax(10);
  sampler.TickOnce(1.0);
  EXPECT_EQ(dumps, 0u);  // One window: streak not yet an alert.
  source->SetMax(12);
  sampler.TickOnce(2.0);  // Second window above threshold: raise + dump.
  ASSERT_EQ(dumps, 1u);
  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"records\": [{"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"event\": \"commit\""), std::string::npos) << dump;

  source->SetMax(15);
  sampler.TickOnce(3.0);  // Sustaining window: no second dump per raise.
  EXPECT_EQ(dumps, 1u);
}

TEST(WalCrashFlightTest, OnCrashAutoDumpsTheRecorder) {
  const std::string dir = FreshDir("crash");
  const std::string path = dir + "/flight.json";
  FlightRecorderOptions fo;
  fo.k = 2;
  FlightRecorder flight(fo);

  WalCrashPlan plan;
  plan.point = WalCrashPoint::kBeforeFsync;
  plan.at_append = 2;
  WalOptions wo;
  wo.dir = dir + "/wal";
  wo.num_streams = 1;
  wo.k = 2;
  wo.crash = &plan;
  uint64_t dumps = 0;
  wo.on_crash = [&flight, &dumps, &path] {
    if (flight.DumpToFile(path)) ++dumps;
  };
  ParallelWal wal(wo);
  ASSERT_TRUE(wal.ok());

  TimestampVector vec(2);
  vec.Set(0, 1);
  const std::vector<ItemId> writes = {3};
  ASSERT_TRUE(wal.AppendCommit(1, vec, writes));
  flight.RecordCommit(0, 1, vec, 0, writes, nullptr, 1);
  EXPECT_EQ(dumps, 0u);
  vec.Set(0, 2);
  wal.AppendCommit(2, vec, writes);  // The armed append: crash fires.
  EXPECT_TRUE(wal.crashed());
  ASSERT_EQ(dumps, 1u);
  // The dump captured the state up to the crash: the one recorded commit.
  const std::string dump = ReadFile(path);
  EXPECT_NE(dump.find("\"totals\": {\"commits\": 1"), std::string::npos)
      << dump;
}

// ===========================================================================
// HTTP surfacing: /phases.json + /flight.json, and the 400/404 answers.
// ===========================================================================

std::string RawRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

TEST(HttpFlightTest, PhasesAndFlightEndpointsServeJson) {
  MetricsRegistry reg;
  // One attributed phase sample with an exemplar, as RecordPhase publishes.
  reg.GetHistogram("engine.phase.lock_us")->RecordWithExemplar(120, 7);
  FlightRecorderOptions fo;
  fo.k = 2;
  FlightRecorder flight(fo);
  TimestampVector vec(2);
  vec.Set(0, 4);
  const ItemId writes[] = {9};
  flight.RecordCommit(0, 3, vec, 1, writes, nullptr, 42);

  HttpExporterOptions ho;
  ho.registry = &reg;
  ho.flight = &flight;
  ho.port = 0;
  HttpExporter exporter(ho);
  ASSERT_TRUE(exporter.Start());

  const std::string phases = HttpGet(exporter.port(), "/phases.json");
  EXPECT_NE(phases.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(phases.find("application/json"), std::string::npos);
  EXPECT_NE(phases.find("\"lock\": {\"count\": 1"), std::string::npos)
      << phases;
  EXPECT_NE(phases.find("\"exemplar\": {\"value_us\": 120, \"txn\": 7}"),
            std::string::npos)
      << phases;

  const std::string fjson = HttpGet(exporter.port(), "/flight.json");
  EXPECT_NE(fjson.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(fjson.find("\"event\": \"commit\""), std::string::npos) << fjson;
  EXPECT_NE(fjson.find("\"txn\": 3"), std::string::npos) << fjson;
  EXPECT_NE(fjson.find("\"vec\": [4, \"*\"]"), std::string::npos) << fjson;
  exporter.Stop();
}

TEST(HttpFlightTest, FlightEndpointWithoutRecorderAnswersEmptyDump) {
  MetricsRegistry reg;
  HttpExporterOptions ho;
  ho.registry = &reg;
  ho.port = 0;
  HttpExporter exporter(ho);
  ASSERT_TRUE(exporter.Start());
  const std::string body = HttpGet(exporter.port(), "/flight.json");
  EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body.find("\"records\": []"), std::string::npos) << body;
  exporter.Stop();
}

TEST(HttpFlightTest, MalformedAndUnknownRequestsGetErrorAnswers) {
  MetricsRegistry reg;
  HttpExporterOptions ho;
  ho.registry = &reg;
  ho.port = 0;
  HttpExporter exporter(ho);
  ASSERT_TRUE(exporter.Start());

  // No parseable "METHOD SP PATH SP" request line: 400, not a silent close.
  const std::string garbage = RawRequest(exporter.port(), "garbage\r\n\r\n");
  EXPECT_NE(garbage.find("400"), std::string::npos) << garbage;

  // A header block overflowing the exporter's 4 KiB read buffer: 400.
  std::string oversized = "GET /metrics HTTP/1.1\r\nX-Pad: ";
  oversized.append(8192, 'x');
  oversized += "\r\n\r\n";
  const std::string too_big = RawRequest(exporter.port(), oversized);
  EXPECT_NE(too_big.find("400"), std::string::npos) << too_big;

  // Unknown path: 404.
  const std::string missing = HttpGet(exporter.port(), "/no-such");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
  exporter.Stop();
}

}  // namespace
}  // namespace mdts
