// Randomized and exhaustive checks of the paper's formal results:
//   Theorem 2  - MT(k) assures serializability (accepted histories are DSR).
//   Theorem 3  - TO(2q-1) = TO(k) for all k >= 2q-1.
//   Lemma 4    - with k = 2q the 2q-th vector element is never assigned.
//   Section III-C - TO(k-1) and TO(k) are incomparable below 2q-1, and
//                   TO(k) is a proper subset of DSR.

#include "classify/classes.h"
#include "core/log.h"
#include "core/mtk_scheduler.h"
#include "core/recognizer.h"
#include "gtest/gtest.h"
#include "workload/enumerate.h"
#include "workload/generator.h"

namespace mdts {
namespace {

struct SweepParam {
  uint64_t seed;
  size_t k;
};

class Theorem2Sweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(Theorem2Sweep, AcceptedHistoriesAreAlwaysDsr) {
  const auto param = GetParam();
  for (int variant = 0; variant < 8; ++variant) {
    MtkOptions options;
    options.k = param.k;
    options.starvation_fix = variant & 1;
    options.thomas_write_rule = variant & 2;
    options.relaxed_read_path = variant & 4;

    for (uint64_t round = 0; round < 20; ++round) {
      WorkloadOptions w;
      w.num_txns = 6;
      w.num_items = 4;
      w.min_ops = 1;
      w.max_ops = 4;
      w.read_fraction = 0.5;
      w.seed = param.seed * 1000 + round;
      Log log = GenerateLog(w);
      Log effective = EffectiveHistory(log, options);
      EXPECT_TRUE(IsDsr(effective))
          << "variant=" << variant << " k=" << param.k
          << " log=" << log.ToString()
          << " effective=" << effective.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KsAndSeeds, Theorem2Sweep,
    ::testing::Values(SweepParam{1, 1}, SweepParam{2, 1}, SweepParam{3, 2},
                      SweepParam{4, 2}, SweepParam{5, 3}, SweepParam{6, 3},
                      SweepParam{7, 4}, SweepParam{8, 5}, SweepParam{9, 7},
                      SweepParam{10, 8}));

TEST(Theorem2Test, OptimizedEncodingVariantAlsoSafe) {
  MtkOptions options;
  options.k = 4;
  options.optimized_encoding = true;
  options.hot_item_threshold = 2;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    WorkloadOptions w;
    w.num_txns = 6;
    w.num_items = 3;  // Few items: everything becomes hot quickly.
    w.min_ops = 1;
    w.max_ops = 4;
    w.distinct_items_per_txn = false;
    w.seed = seed;
    Log log = GenerateLog(w);
    EXPECT_TRUE(IsDsr(EffectiveHistory(log, options))) << log.ToString();
  }
}

TEST(Theorem2Test, AcceptedLogsEnforceDependenciesInVectorOrder) {
  // The mechanism behind Theorem 2: if the whole log is accepted, every
  // dependency T_i -> T_j is reflected as TS(i) < TS(j).
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    WorkloadOptions w;
    w.num_txns = 5;
    w.num_items = 4;
    w.min_ops = 1;
    w.max_ops = 3;
    w.seed = seed;
    Log log = GenerateLog(w);

    MtkOptions options;
    options.k = 5;
    MtkScheduler scheduler(options);
    bool all_accepted = true;
    for (const Op& op : log.ops()) {
      if (scheduler.Process(op) != OpDecision::kAccept) {
        all_accepted = false;
        break;
      }
    }
    if (!all_accepted) continue;

    const auto& ops = log.ops();
    for (size_t b = 0; b < ops.size(); ++b) {
      for (size_t a = 0; a < b; ++a) {
        if (Conflicts(ops[a], ops[b])) {
          EXPECT_TRUE(
              VectorLess(scheduler.Ts(ops[a].txn), scheduler.Ts(ops[b].txn)))
              << log.ToString() << " dep " << OpName(ops[a]) << " -> "
              << OpName(ops[b]);
        }
      }
    }
  }
}

// --- Theorem 3: TO(2q-1) = TO(k) for k >= 2q-1 ---

class Theorem3Sweep : public ::testing::TestWithParam<size_t> {};

TEST_P(Theorem3Sweep, VectorSizeBeyond2qMinus1ChangesNothing) {
  const size_t q = GetParam();
  const size_t k_star = 2 * q - 1;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    WorkloadOptions w;
    w.num_txns = 5;
    w.num_items = 4;
    w.min_ops = 1;
    w.max_ops = static_cast<uint32_t>(q);
    w.seed = seed * 31 + q;
    Log log = GenerateLog(w);
    ASSERT_LE(log.MaxOpsPerTxn(), q);
    const bool base = IsToK(log, k_star);
    for (size_t k = k_star + 1; k <= k_star + 3; ++k) {
      EXPECT_EQ(IsToK(log, k), base)
          << "q=" << q << " k=" << k << " log=" << log.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Q, Theorem3Sweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Theorem3Test, ExhaustiveTwoStepUniverse) {
  // q = 2, so TO(3) = TO(4) = TO(5) over the whole two-step universe with
  // 3 transactions and 2 items.
  ForEachTwoStepLog(3, 2, [](const Log& log) {
    const bool to3 = IsToK(log, 3);
    EXPECT_EQ(IsToK(log, 4), to3) << log.ToString();
    EXPECT_EQ(IsToK(log, 5), to3) << log.ToString();
    return !::testing::Test::HasFailure();
  });
}

// --- Lemma 4: with k = 2q the last element is never assigned ---

TEST(Lemma4Test, LastElementNeverAssignedWhenKIs2q) {
  for (size_t q : {1u, 2u, 3u}) {
    const size_t k = 2 * q;
    for (uint64_t seed = 1; seed <= 40; ++seed) {
      WorkloadOptions w;
      w.num_txns = 5;
      w.num_items = 4;
      w.min_ops = 1;
      w.max_ops = static_cast<uint32_t>(q);
      w.seed = seed * 17 + q;
      Log log = GenerateLog(w);

      MtkOptions options;
      options.k = k;
      MtkScheduler scheduler(options);
      bool all_accepted = true;
      for (const Op& op : log.ops()) {
        if (scheduler.Process(op) != OpDecision::kAccept) {
          all_accepted = false;
          break;
        }
      }
      if (!all_accepted) continue;
      for (TxnId t = 1; t <= log.num_txns(); ++t) {
        EXPECT_FALSE(scheduler.Ts(t).IsDefined(k - 1))
            << "q=" << q << " txn=" << t << " log=" << log.ToString();
      }
    }
  }
}

// --- Section III-C: incomparability and strict containment in DSR ---

TEST(HierarchySeparationTest, To1AndTo3AreIncomparable) {
  bool found_to3_not_to1 = false;
  bool found_to1_not_to3 = false;
  ForEachTwoStepLog(3, 2, [&](const Log& log) {
    const bool to1 = IsToK(log, 1);
    const bool to3 = IsToK(log, 3);
    if (to3 && !to1) found_to3_not_to1 = true;
    if (to1 && !to3) found_to1_not_to3 = true;
    return !(found_to3_not_to1 && found_to1_not_to3);
  });
  EXPECT_TRUE(found_to3_not_to1) << "no witness for TO(3) - TO(1)";
  EXPECT_TRUE(found_to1_not_to3) << "no witness for TO(1) - TO(3)";
}

TEST(HierarchySeparationTest, To2AndTo3AreIncomparable) {
  // The paper: for 2 <= k <= 2q-1, TO(k-1) is not a subset of TO(k),
  // "because column k-1 of MT(k-1)'s table contains only distinct elements
  // but column k-1 of MT(k)'s table may contain equal elements". The
  // separation needs two independent pair encodings plus a cross
  // dependency, i.e. four transactions:
  //
  // In TO(2) - TO(3): under MT(3) the pairs (T2,T1) and (T4,T3) both take
  // column-2 values {1,2}, so TS(1)=<1,2,*> > TS(4)=<1,1,*> blocks the
  // later dependency T1 -> T4; under MT(2) the ucount counter gives
  // TS(4)=<1,3> > TS(1)=<1,2> and the log is accepted.
  Log to2_only =
      *Log::Parse("R1[x] R2[y] W1[y] R3[z] R4[w] W3[w] W4[x] W2[4]");
  EXPECT_TRUE(IsToK(to2_only, 2));
  EXPECT_FALSE(IsToK(to2_only, 3));

  // In TO(3) - TO(2): the dependency T4 -> T2 compares <1,1,*> with
  // <1,1,*> under MT(3) (equal, encodable in the last column) but
  // <1,3> with <1,1> under MT(2) (already reversed).
  Log to3_only =
      *Log::Parse("R1[x] R2[y] W1[y] R3[z] R4[w] W3[w] W4[4] W2[4]");
  EXPECT_FALSE(IsToK(to3_only, 2));
  EXPECT_TRUE(IsToK(to3_only, 3));
}

TEST(HierarchySeparationTest, SmallTwoStepUniverseHasNoTo2To3Separation) {
  // Negative space of the previous test: with only 3 transactions over 3
  // items the two classes coincide on the whole two-step universe - the
  // separation genuinely requires two independent pair encodings.
  ForEachTwoStepLog(3, 3, [](const Log& log) {
    EXPECT_EQ(IsToK(log, 2), IsToK(log, 3)) << log.ToString();
    return !::testing::Test::HasFailure();
  });
}

TEST(HierarchySeparationTest, ToKStrictlyInsideDsr) {
  // Containment: every TO(k) log is DSR (Definition 3). Strictness: some
  // DSR two-step log is outside TO(3).
  bool found_dsr_not_to3 = false;
  ForEachTwoStepLog(3, 2, [&](const Log& log) {
    for (size_t k : {1u, 2u, 3u}) {
      if (IsToK(log, k)) {
        EXPECT_TRUE(IsDsr(log)) << "k=" << k << " " << log.ToString();
      }
    }
    if (IsDsr(log) && !IsToK(log, 3)) found_dsr_not_to3 = true;
    return !::testing::Test::HasFailure();
  });
  EXPECT_TRUE(found_dsr_not_to3);
}

}  // namespace
}  // namespace mdts
