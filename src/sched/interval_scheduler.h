#ifndef MDTS_SCHED_INTERVAL_SCHEDULER_H_
#define MDTS_SCHED_INTERVAL_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace mdts {

/// Dynamic timestamp-interval concurrency control in the style of Bayer et
/// al. [1], the related work the paper compares against in Section VI-A:
/// each transaction starts with a large time interval that is shrunk
/// explicitly whenever a dependency is discovered - to encode T_j -> T_i,
/// a point c is chosen inside the overlap of the two intervals and the
/// intervals become (lo_j, c] and (c, hi_i).
///
/// To make the comparison with MT(k) apples-to-apples, dependencies are
/// discovered with the same RT/WT item bookkeeping as MT(k) (the paper
/// notes [1] left the discovery mechanism unspecified) and the scheduler
/// skeleton mirrors Algorithm 1; only the timestamp representation and
/// shrinking rules differ. The paper's criticisms become measurable here:
/// the interval of a busy transaction shrinks from one end only, midpoint
/// splitting halves widths exponentially, and a restarted transaction
/// re-enters with the full interval.
class IntervalScheduler : public Scheduler {
 public:
  struct Options {
    /// Fraction of the overlap at which the split point is placed
    /// (0.5 = midpoint; the criteria in [1] were unspecified).
    double split_fraction = 0.5;

    /// Overlaps narrower than this cannot be split any further; the
    /// dependency is refused and the transaction aborts ("fragmentation").
    double min_split_width = 1e-9;
  };

  IntervalScheduler() : IntervalScheduler(Options()) {}
  explicit IntervalScheduler(const Options& options);

  std::string name() const override { return "Interval"; }

  SchedOutcome OnOperation(const Op& op) override;
  SchedOutcome OnCommit(TxnId txn) override;
  void OnRestart(TxnId txn) override;

  /// Current interval of a transaction.
  double lo(TxnId txn) const { return txns_[txn].lo; }
  double hi(TxnId txn) const { return txns_[txn].hi; }

  uint64_t shrinks() const { return shrinks_; }
  uint64_t fragmentation_aborts() const { return fragmentation_aborts_; }
  uint64_t order_aborts() const { return order_aborts_; }

 private:
  struct TxnState {
    double lo = 0.0;
    double hi = 0.0;
    bool started = false;
    bool aborted = false;
    uint32_t incarnation = 0;
  };

  struct Access {
    TxnId txn = kVirtualTxn;
    uint32_t incarnation = 0;
  };

  struct ItemState {
    std::vector<Access> readers;
    std::vector<Access> writers;
  };

  TxnState& State(TxnId txn);
  ItemState& Item(ItemId item);
  bool IsLiveAccess(const Access& access);
  TxnId TopLive(std::vector<Access>* stack);

  /// True iff T_a's interval lies entirely before T_b's.
  bool Precedes(TxnId a, TxnId b);

  /// Encodes T_j -> T_i by shrinking; false if impossible.
  bool SetBefore(TxnId j, TxnId i);

  Options options_;
  std::vector<TxnState> txns_;
  std::vector<ItemState> items_;
  uint64_t shrinks_ = 0;
  uint64_t fragmentation_aborts_ = 0;
  uint64_t order_aborts_ = 0;
  /// Cause of the most recent SetBefore() == false, consumed by the abort
  /// path of OnOperation.
  AbortReason last_set_failure_ = AbortReason::kNone;
};

}  // namespace mdts

#endif  // MDTS_SCHED_INTERVAL_SCHEDULER_H_
