#include "sched/to1_scheduler.h"

#include <algorithm>

namespace mdts {

const char* SchedOutcomeName(SchedOutcome o) {
  switch (o) {
    case SchedOutcome::kAccepted:
      return "ACCEPTED";
    case SchedOutcome::kIgnored:
      return "IGNORED";
    case SchedOutcome::kBlocked:
      return "BLOCKED";
    case SchedOutcome::kAborted:
      return "ABORTED";
  }
  return "?";
}

To1Scheduler::To1Scheduler(const Options& options) : options_(options) {}

void To1Scheduler::OnBegin(TxnId txn) {
  if (txn_ts_.size() <= txn) txn_ts_.resize(txn + 1, 0);
  txn_ts_[txn] = ++clock_;
}

void To1Scheduler::OnRestart(TxnId txn) {
  // A restarted incarnation gets a fresh (larger) timestamp at OnBegin.
  if (txn_ts_.size() <= txn) txn_ts_.resize(txn + 1, 0);
  txn_ts_[txn] = 0;
}

uint64_t To1Scheduler::TimestampOf(TxnId txn) const {
  return txn < txn_ts_.size() ? txn_ts_[txn] : 0;
}

SchedOutcome To1Scheduler::OnOperation(const Op& op) {
  if (txn_ts_.size() <= op.txn || txn_ts_[op.txn] == 0) {
    OnBegin(op.txn);  // Lazily timestamp transactions at first operation.
  }
  const uint64_t ts = txn_ts_[op.txn];
  if (items_.size() <= op.item) items_.resize(op.item + 1);
  ItemTs& item = items_[op.item];

  // Every TO(1) rejection is a scalar-order conflict: the single-value
  // timestamp is too old, i.e. the opposite order is already fixed
  // (kLexOrder, the k = 1 case of MT(k)'s Compare == kGreater).
  if (op.type == OpType::kRead) {
    if (ts < item.max_write) return RecordAbort(AbortReason::kLexOrder);
    item.max_read = std::max(item.max_read, ts);
    return SchedOutcome::kAccepted;
  }
  if (ts < item.max_read) return RecordAbort(AbortReason::kLexOrder);
  if (ts < item.max_write) {
    // Obsolete write: ignorable under the Thomas rule.
    return options_.thomas_write_rule
               ? SchedOutcome::kIgnored
               : RecordAbort(AbortReason::kLexOrder);
  }
  item.max_write = ts;
  return SchedOutcome::kAccepted;
}

SchedOutcome To1Scheduler::OnCommit(TxnId) { return SchedOutcome::kAccepted; }

}  // namespace mdts
