#include "sched/two_pl_scheduler.h"

#include <algorithm>
#include <set>

namespace mdts {

TwoPlScheduler::LockState& TwoPlScheduler::Lock(ItemId item) {
  if (locks_.size() <= item) locks_.resize(item + 1);
  return locks_[item];
}

bool TwoPlScheduler::CanGrant(const LockState& lock,
                              const Request& request) const {
  if (request.upgrade) {
    // Upgrade S -> X: grantable once the requester is the sole holder.
    return lock.holders.size() == 1 &&
           lock.holders.begin()->first == request.txn;
  }
  // Mode compatibility with every current holder.
  for (const auto& [holder, mode] : lock.holders) {
    if (holder == request.txn) continue;
    if (mode == Mode::kExclusive || request.mode == Mode::kExclusive) {
      return false;
    }
  }
  return true;
}

std::vector<TxnId> TwoPlScheduler::WaitTargets(TxnId txn, ItemId item,
                                               Mode mode) const {
  std::vector<TxnId> targets;
  if (item >= locks_.size()) return targets;
  const LockState& lock = locks_[item];
  for (const auto& [holder, held_mode] : lock.holders) {
    if (holder == txn) continue;
    if (held_mode == Mode::kExclusive || mode == Mode::kExclusive) {
      targets.push_back(holder);
    }
  }
  // FIFO fairness: also wait for earlier conflicting waiters.
  for (const Request& r : lock.queue) {
    if (r.txn == txn) continue;
    if (r.mode == Mode::kExclusive || mode == Mode::kExclusive) {
      targets.push_back(r.txn);
    }
  }
  return targets;
}

bool TwoPlScheduler::WouldDeadlock(TxnId requester, ItemId item, Mode mode) {
  // DFS over the waits-for graph starting from the hypothetical new edges.
  std::set<TxnId> visited;
  std::vector<TxnId> stack = WaitTargets(requester, item, mode);
  while (!stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    if (t == requester) return true;
    if (!visited.insert(t).second) continue;
    auto it = waiting_on_.find(t);
    if (it == waiting_on_.end()) continue;
    const LockState& lock = locks_[it->second];
    // Find t's queued request to know its mode.
    Mode t_mode = Mode::kExclusive;
    for (const Request& r : lock.queue) {
      if (r.txn == t) {
        t_mode = r.mode;
        break;
      }
    }
    for (TxnId target : WaitTargets(t, it->second, t_mode)) {
      stack.push_back(target);
    }
  }
  return false;
}

SchedOutcome TwoPlScheduler::OnOperation(const Op& op) {
  const Mode mode =
      op.type == OpType::kRead ? Mode::kShared : Mode::kExclusive;
  LockState& lock = Lock(op.item);

  auto held = lock.holders.find(op.txn);
  if (held != lock.holders.end()) {
    if (held->second == Mode::kExclusive || mode == Mode::kShared) {
      return SchedOutcome::kAccepted;  // Already strong enough.
    }
    // Upgrade request.
    Request request{op.txn, Mode::kExclusive, /*upgrade=*/true};
    if (CanGrant(lock, request)) {
      held->second = Mode::kExclusive;
      return SchedOutcome::kAccepted;
    }
    if (WouldDeadlock(op.txn, op.item, Mode::kExclusive)) {
      ++deadlocks_;
      ReleaseAll(op.txn);
      return RecordAbort(AbortReason::kDeadlockAvoidance);
    }
    // Upgrades go to the front of the queue.
    lock.queue.insert(lock.queue.begin(), request);
    waiting_on_[op.txn] = op.item;
    ++blocks_;
    return SchedOutcome::kBlocked;
  }

  Request request{op.txn, mode, /*upgrade=*/false};
  if (lock.queue.empty() && CanGrant(lock, request)) {
    lock.holders[op.txn] = mode;
    held_[op.txn].push_back(op.item);
    return SchedOutcome::kAccepted;
  }
  if (WouldDeadlock(op.txn, op.item, mode)) {
    ++deadlocks_;
    ReleaseAll(op.txn);
    return RecordAbort(AbortReason::kDeadlockAvoidance);
  }
  lock.queue.push_back(request);
  waiting_on_[op.txn] = op.item;
  ++blocks_;
  return SchedOutcome::kBlocked;
}

void TwoPlScheduler::GrantFromQueue(ItemId item) {
  LockState& lock = Lock(item);
  bool granted = true;
  while (granted && !lock.queue.empty()) {
    granted = false;
    Request front = lock.queue.front();
    if (!CanGrant(lock, front)) break;
    lock.queue.erase(lock.queue.begin());
    if (front.upgrade) {
      lock.holders[front.txn] = Mode::kExclusive;
    } else {
      lock.holders[front.txn] = front.mode;
      held_[front.txn].push_back(item);
    }
    waiting_on_.erase(front.txn);
    unblocked_.push_back(front.txn);
    granted = true;
  }
}

void TwoPlScheduler::ReleaseAll(TxnId txn) {
  // Remove any queued request.
  auto waiting = waiting_on_.find(txn);
  if (waiting != waiting_on_.end()) {
    LockState& lock = Lock(waiting->second);
    lock.queue.erase(
        std::remove_if(lock.queue.begin(), lock.queue.end(),
                       [&](const Request& r) { return r.txn == txn; }),
        lock.queue.end());
    waiting_on_.erase(waiting);
  }
  // Release held locks, then wake eligible waiters.
  auto held = held_.find(txn);
  if (held == held_.end()) return;
  std::vector<ItemId> items = std::move(held->second);
  held_.erase(held);
  for (ItemId item : items) Lock(item).holders.erase(txn);
  for (ItemId item : items) GrantFromQueue(item);
}

SchedOutcome TwoPlScheduler::OnCommit(TxnId txn) {
  // Strict 2PL: all locks released at commit.
  ReleaseAll(txn);
  return SchedOutcome::kAccepted;
}

void TwoPlScheduler::OnRestart(TxnId txn) {
  // Locks were already released when the abort was decided; make sure.
  ReleaseAll(txn);
}

std::vector<TxnId> TwoPlScheduler::TakeUnblocked() {
  std::vector<TxnId> out = std::move(unblocked_);
  unblocked_.clear();
  return out;
}

}  // namespace mdts
