#include "sched/occ_scheduler.h"

namespace mdts {

OccScheduler::TxnState& OccScheduler::State(TxnId txn) { return txns_[txn]; }

void OccScheduler::OnBegin(TxnId txn) {
  TxnState& s = State(txn);
  s.start_tn = commit_counter_;
  s.read_set.clear();
  s.write_set.clear();
  s.active = true;
}

SchedOutcome OccScheduler::OnOperation(const Op& op) {
  TxnState& s = State(op.txn);
  if (!s.active) OnBegin(op.txn);
  if (op.type == OpType::kRead) {
    s.read_set.insert(op.item);
  } else {
    s.write_set.insert(op.item);  // Writes go to a private workspace.
  }
  return SchedOutcome::kAccepted;  // The read phase never blocks or aborts.
}

SchedOutcome OccScheduler::OnCommit(TxnId txn) {
  TxnState& s = State(txn);
  // Backward validation: check write sets of transactions that committed
  // while this one was running against our read set.
  for (auto it = committed_.rbegin(); it != committed_.rend(); ++it) {
    if (it->commit_tn <= s.start_tn) break;  // Older than our start.
    for (ItemId item : s.read_set) {
      if (it->write_set.count(item) > 0) {
        ++validations_failed_;
        s.active = false;
        return RecordAbort(AbortReason::kValidationFailure);
      }
    }
  }
  committed_.push_back(CommittedRecord{++commit_counter_, s.write_set});
  s.active = false;
  return SchedOutcome::kAccepted;
}

void OccScheduler::OnRestart(TxnId txn) {
  State(txn).active = false;  // OnBegin will reinitialize on first op.
}

}  // namespace mdts
