#ifndef MDTS_SCHED_SCHEDULER_H_
#define MDTS_SCHED_SCHEDULER_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "obs/abort_reason.h"

namespace mdts {

/// Outcome of submitting one event to an online scheduler.
enum class SchedOutcome {
  kAccepted,  // The operation executed (or the commit succeeded).
  kIgnored,   // The write was skipped (Thomas rule); the txn continues.
  kBlocked,   // The txn must wait; the scheduler reports it via
              // TakeUnblocked when it may retry the same operation.
  kAborted,   // The txn must abort and restart from scratch.
};

const char* SchedOutcomeName(SchedOutcome o);

/// Uniform interface over every concurrency-control protocol in the
/// repository, used by the discrete-event simulator (sim/) and the
/// cross-protocol benches: MT(k) and its variants, two-phase locking,
/// conventional single-value timestamp ordering, optimistic (Kung-Robinson)
/// validation, and Bayer-style dynamic timestamp intervals.
///
/// Lifecycle per transaction incarnation:
///   OnBegin -> OnOperation* -> OnCommit          (happy path)
///   ... any step may return kAborted; the environment later calls
///   OnRestart(txn) and replays the transaction as a new incarnation.
/// A kBlocked outcome parks the transaction; once the scheduler lists it in
/// TakeUnblocked, the same operation is submitted again.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// True for schedulers that buffer writes in a private workspace until
  /// commit (OCC, deferred-write MT(k)). The simulator then records write
  /// operations at commit time in the audited history, which is when they
  /// actually take effect.
  virtual bool deferred_writes() const { return false; }

  /// A new incarnation of the transaction starts.
  virtual void OnBegin(TxnId txn) { (void)txn; }

  /// One read/write operation of a live transaction.
  virtual SchedOutcome OnOperation(const Op& op) = 0;

  /// The transaction finished its operations and asks to commit.
  /// Optimistic schedulers validate here. Never returns kBlocked.
  virtual SchedOutcome OnCommit(TxnId txn) = 0;

  /// The environment acknowledges an abort (after a kAborted outcome or an
  /// external decision, e.g. deadlock victim). Must release every resource
  /// the incarnation holds.
  virtual void OnRestart(TxnId txn) { (void)txn; }

  /// Transactions whose blocking condition cleared since the last call.
  /// The environment re-submits their pending operation.
  virtual std::vector<TxnId> TakeUnblocked() { return {}; }

  /// Classified cause of the most recent kAborted outcome (kNone before
  /// any). Every protocol reports through the shared taxonomy so
  /// cross-protocol abort breakdowns line up (see obs/abort_reason.h).
  AbortReason last_abort_reason() const { return last_abort_reason_; }

  /// Per-reason tally of every kAborted outcome this scheduler returned
  /// (and of externally decided aborts it recorded, e.g. deadlock victims);
  /// abort_reasons().total() equals the number of recorded aborts.
  const AbortReasonCounts& abort_reasons() const { return abort_reasons_; }

 protected:
  /// Classifies and counts one abort; returns kAborted so reject paths can
  /// `return RecordAbort(reason);`.
  SchedOutcome RecordAbort(AbortReason reason) {
    last_abort_reason_ = reason;
    abort_reasons_.Add(reason);
    return SchedOutcome::kAborted;
  }

 private:
  AbortReason last_abort_reason_ = AbortReason::kNone;
  AbortReasonCounts abort_reasons_;
};

}  // namespace mdts

#endif  // MDTS_SCHED_SCHEDULER_H_
