#ifndef MDTS_SCHED_TO1_SCHEDULER_H_
#define MDTS_SCHED_TO1_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace mdts {

/// Conventional single-value timestamp ordering (the paper's "protocol P4
/// in [4]", SDD-1 style): every transaction incarnation receives a unique
/// scalar timestamp at begin time; all conflicting operations must occur in
/// timestamp order, enforced with per-item max read / max write timestamps.
/// This is the baseline whose premature ordering the multidimensional
/// protocols are designed to avoid (paper Section I, Example 1).
class To1Scheduler : public Scheduler {
 public:
  struct Options {
    /// Apply the Thomas write rule to obsolete writes instead of aborting.
    bool thomas_write_rule = false;
  };

  To1Scheduler() : To1Scheduler(Options()) {}
  explicit To1Scheduler(const Options& options);

  std::string name() const override {
    return options_.thomas_write_rule ? "TO(1)+thomas" : "TO(1)";
  }

  void OnBegin(TxnId txn) override;
  SchedOutcome OnOperation(const Op& op) override;
  SchedOutcome OnCommit(TxnId txn) override;
  void OnRestart(TxnId txn) override;

  /// The scalar timestamp of the transaction's current incarnation.
  uint64_t TimestampOf(TxnId txn) const;

 private:
  struct ItemTs {
    uint64_t max_read = 0;
    uint64_t max_write = 0;
  };

  Options options_;
  uint64_t clock_ = 0;
  std::vector<uint64_t> txn_ts_;  // 0 = no timestamp yet.
  std::vector<ItemTs> items_;
};

}  // namespace mdts

#endif  // MDTS_SCHED_TO1_SCHEDULER_H_
