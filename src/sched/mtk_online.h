#ifndef MDTS_SCHED_MTK_ONLINE_H_
#define MDTS_SCHED_MTK_ONLINE_H_

#include <string>

#include "core/mtk_scheduler.h"
#include "engine/sharded_engine.h"
#include "sched/scheduler.h"

namespace mdts {

/// Online adapter of the MT(k) protocol to the uniform Scheduler interface:
/// immediate per-operation validation, aborts on rejection, restart with a
/// fresh (or starvation-seeded) vector.
class MtkOnline : public Scheduler {
 public:
  explicit MtkOnline(const MtkOptions& options)
      : inner_(options), options_(options) {}

  std::string name() const override {
    std::string n = "MT(" + std::to_string(options_.k) + ")";
    if (options_.starvation_fix) n += "+fix";
    if (options_.thomas_write_rule) n += "+thomas";
    if (options_.optimized_encoding) n += "+opt";
    return n;
  }

  SchedOutcome OnOperation(const Op& op) override {
    switch (inner_.Process(op)) {
      case OpDecision::kAccept:
        return SchedOutcome::kAccepted;
      case OpDecision::kIgnore:
        return SchedOutcome::kIgnored;
      case OpDecision::kReject:
        return RecordAbort(inner_.last_reject().reason);
    }
    return RecordAbort(AbortReason::kInvalidOp);
  }

  SchedOutcome OnCommit(TxnId txn) override {
    inner_.CommitTxn(txn);
    return SchedOutcome::kAccepted;
  }

  void OnRestart(TxnId txn) override { inner_.RestartTxn(txn); }

  MtkScheduler& inner() { return inner_; }

 private:
  MtkScheduler inner_;
  MtkOptions options_;
};

/// Engine-backed variant of MtkOnline: the same Scheduler surface, served by
/// the thread-safe ShardedMtkEngine. With num_shards = 1 it accepts exactly
/// the logs MtkOnline accepts; with more shards it is the concurrent engine
/// driven single-threaded through the uniform interface.
class MtkEngineOnline : public Scheduler {
 public:
  explicit MtkEngineOnline(const EngineOptions& options) : inner_(options) {}

  std::string name() const override {
    std::string n = "MT(" + std::to_string(inner_.options().k) + ")x" +
                    std::to_string(inner_.num_shards());
    if (inner_.options().starvation_fix) n += "+fix";
    if (inner_.options().thomas_write_rule) n += "+thomas";
    return n;
  }

  SchedOutcome OnOperation(const Op& op) override {
    AbortReason reason = AbortReason::kNone;
    switch (inner_.Process(op, &reason)) {
      case OpDecision::kAccept:
        return SchedOutcome::kAccepted;
      case OpDecision::kIgnore:
        return SchedOutcome::kIgnored;
      case OpDecision::kReject:
        return RecordAbort(reason);
    }
    return RecordAbort(AbortReason::kInvalidOp);
  }

  SchedOutcome OnCommit(TxnId txn) override {
    inner_.CommitTxn(txn);
    return SchedOutcome::kAccepted;
  }

  void OnRestart(TxnId txn) override { inner_.RestartTxn(txn); }

  ShardedMtkEngine& inner() { return inner_; }

 private:
  ShardedMtkEngine inner_;
};

}  // namespace mdts

#endif  // MDTS_SCHED_MTK_ONLINE_H_
