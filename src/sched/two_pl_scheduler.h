#ifndef MDTS_SCHED_TWO_PL_SCHEDULER_H_
#define MDTS_SCHED_TWO_PL_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace mdts {

/// Strict two-phase locking with shared/exclusive locks, FIFO wait queues,
/// lock upgrades, and waits-for deadlock detection (the requester of the
/// closing edge is the victim). This is the paper's primary baseline
/// protocol family [9]; all locks are held to commit/abort, so the
/// serialization order follows lock points trivially.
class TwoPlScheduler : public Scheduler {
 public:
  TwoPlScheduler() = default;

  std::string name() const override { return "2PL"; }

  SchedOutcome OnOperation(const Op& op) override;
  SchedOutcome OnCommit(TxnId txn) override;
  void OnRestart(TxnId txn) override;
  std::vector<TxnId> TakeUnblocked() override;

  /// Statistics for the benches.
  uint64_t deadlocks_detected() const { return deadlocks_; }
  uint64_t blocks() const { return blocks_; }

 private:
  enum class Mode : uint8_t { kShared, kExclusive };

  struct Request {
    TxnId txn = 0;
    Mode mode = Mode::kShared;
    bool upgrade = false;  // Requester already holds a shared lock.
  };

  struct LockState {
    std::map<TxnId, Mode> holders;
    std::vector<Request> queue;
  };

  LockState& Lock(ItemId item);

  /// True iff the transaction may be granted the lock right now.
  bool CanGrant(const LockState& lock, const Request& request) const;

  /// Grants every eligible queued request of the item.
  void GrantFromQueue(ItemId item);

  /// Releases everything the transaction holds or waits for.
  void ReleaseAll(TxnId txn);

  /// True iff blocking `requester` on `item` would close a waits-for cycle.
  bool WouldDeadlock(TxnId requester, ItemId item, Mode mode);

  /// Transactions `txn` would wait for if enqueued on `item`.
  std::vector<TxnId> WaitTargets(TxnId txn, ItemId item, Mode mode) const;

  std::vector<LockState> locks_;
  std::map<TxnId, std::vector<ItemId>> held_;     // Items each txn locks.
  std::map<TxnId, ItemId> waiting_on_;            // Blocked txn -> item.
  std::vector<TxnId> unblocked_;
  uint64_t deadlocks_ = 0;
  uint64_t blocks_ = 0;
};

}  // namespace mdts

#endif  // MDTS_SCHED_TWO_PL_SCHEDULER_H_
