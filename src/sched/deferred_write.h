#ifndef MDTS_SCHED_DEFERRED_WRITE_H_
#define MDTS_SCHED_DEFERRED_WRITE_H_

#include <map>
#include <string>
#include <vector>

#include "core/mtk_scheduler.h"
#include "sched/scheduler.h"

namespace mdts {

/// The two-phase-commit-per-write rollback scheme of Section VI-C-2 layered
/// over MT(k): reads are validated immediately as in Algorithm 1, but each
/// write only produces a temporary copy invisible to other transactions.
/// At commit time every buffered write is validated (and its timestamp
/// ordering encoded) through the underlying MT(k) scheduler; if all writes
/// still preserve serializability the transaction commits, otherwise it
/// aborts. Advantages realized here: an aborted transaction never published
/// a write, so no other transaction can depend on it, and a committed
/// transaction can never be aborted afterwards.
class MtkDeferredWrite : public Scheduler {
 public:
  explicit MtkDeferredWrite(const MtkOptions& options)
      : inner_(options), options_(options) {}

  std::string name() const override {
    return "MT(" + std::to_string(options_.k) + ")+deferred";
  }
  bool deferred_writes() const override { return true; }

  SchedOutcome OnOperation(const Op& op) override {
    if (op.type == OpType::kWrite) {
      pending_writes_[op.txn].push_back(op);
      return SchedOutcome::kAccepted;  // Private workspace; no validation.
    }
    switch (inner_.Process(op)) {
      case OpDecision::kAccept:
        return SchedOutcome::kAccepted;
      case OpDecision::kIgnore:
        return SchedOutcome::kIgnored;
      case OpDecision::kReject:
        pending_writes_.erase(op.txn);
        return RecordAbort(inner_.last_reject().reason);
    }
    return RecordAbort(AbortReason::kInvalidOp);
  }

  SchedOutcome OnCommit(TxnId txn) override {
    auto it = pending_writes_.find(txn);
    if (it != pending_writes_.end()) {
      for (const Op& write : it->second) {
        if (inner_.Process(write) == OpDecision::kReject) {
          pending_writes_.erase(it);
          return RecordAbort(inner_.last_reject().reason);
        }
      }
      pending_writes_.erase(it);
    }
    inner_.CommitTxn(txn);
    return SchedOutcome::kAccepted;
  }

  void OnRestart(TxnId txn) override {
    pending_writes_.erase(txn);
    inner_.RestartTxn(txn);
  }

  MtkScheduler& inner() { return inner_; }

 private:
  MtkScheduler inner_;
  MtkOptions options_;
  std::map<TxnId, std::vector<Op>> pending_writes_;
};

}  // namespace mdts

#endif  // MDTS_SCHED_DEFERRED_WRITE_H_
