#ifndef MDTS_SCHED_ADAPTIVE_H_
#define MDTS_SCHED_ADAPTIVE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/mtk_scheduler.h"
#include "sched/mtk_online.h"
#include "sched/scheduler.h"

namespace mdts {

/// Options for the adaptable scheduler.
struct AdaptiveOptions {
  size_t initial_k = 2;
  size_t min_k = 1;
  size_t max_k = 7;

  /// Decisions per adaptation epoch.
  size_t epoch_ops = 200;

  /// Abort-rate thresholds: above grow_threshold the vector size is
  /// increased, below shrink_threshold it is decreased.
  double grow_threshold = 0.10;
  double shrink_threshold = 0.02;

  bool starvation_fix = true;
};

/// Adaptable concurrency control on top of MT(k): the direction the paper
/// points to at the end of Section IV ("we have found that the timestamp
/// vector is a useful tool for switching between classes of concurrency
/// algorithms... This work is being used for the design of adaptable
/// concurrency control mechanisms [8]") combined with the Section VI-B
/// guidelines (high conflict -> larger vectors pay off).
///
/// The scheduler monitors the abort rate over fixed-size epochs and grows
/// or shrinks the vector size k between min_k and max_k. Switching uses
/// Algorithm 2's restart discipline ("abort all the active transactions
/// and rollback; restart"): the new MT(k) instance starts from a fresh
/// table, and transactions begun under the old one are aborted when they
/// next interact with the scheduler, restarting under the new table.
class AdaptiveMtScheduler : public Scheduler {
 public:
  explicit AdaptiveMtScheduler(const AdaptiveOptions& options);

  std::string name() const override {
    return "Adaptive-MT(" + std::to_string(current_k_) + ")";
  }

  void OnBegin(TxnId txn) override;
  SchedOutcome OnOperation(const Op& op) override;
  SchedOutcome OnCommit(TxnId txn) override;
  void OnRestart(TxnId txn) override;

  size_t current_k() const { return current_k_; }

  /// The k in force after each completed epoch (adaptation trajectory).
  const std::vector<size_t>& k_history() const { return k_history_; }

  uint64_t switches() const { return switches_; }

 private:
  void NoteDecision(bool aborted);
  void MaybeSwitch();
  void Rebuild(size_t k);
  bool IsStale(TxnId txn) const;

  AdaptiveOptions options_;
  size_t current_k_;
  size_t pending_k_ = 0;  // Nonzero: switch to this k at the next boundary.
  std::unique_ptr<MtkScheduler> inner_;
  uint32_t generation_ = 0;               // Bumped at every switch.
  std::vector<uint32_t> txn_generation_;  // Generation each txn began in.
  uint64_t epoch_decisions_ = 0;
  uint64_t epoch_aborts_ = 0;
  uint64_t switches_ = 0;
  std::vector<size_t> k_history_;
};

}  // namespace mdts

#endif  // MDTS_SCHED_ADAPTIVE_H_
