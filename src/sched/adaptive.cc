#include "sched/adaptive.h"

#include <algorithm>

namespace mdts {

AdaptiveMtScheduler::AdaptiveMtScheduler(const AdaptiveOptions& options)
    : options_(options), current_k_(options.initial_k) {
  Rebuild(current_k_);
}

void AdaptiveMtScheduler::Rebuild(size_t k) {
  MtkOptions o;
  o.k = k;
  o.starvation_fix = options_.starvation_fix;
  inner_ = std::make_unique<MtkScheduler>(o);
  current_k_ = k;
}

void AdaptiveMtScheduler::NoteDecision(bool aborted) {
  ++epoch_decisions_;
  if (aborted) ++epoch_aborts_;
  if (epoch_decisions_ < options_.epoch_ops) return;

  const double rate = static_cast<double>(epoch_aborts_) /
                      static_cast<double>(epoch_decisions_);
  epoch_decisions_ = 0;
  epoch_aborts_ = 0;
  size_t target = current_k_;
  if (rate > options_.grow_threshold && current_k_ < options_.max_k) {
    target = current_k_ + 1;
  } else if (rate < options_.shrink_threshold &&
             current_k_ > options_.min_k) {
    target = current_k_ - 1;
  }
  k_history_.push_back(target);
  if (target != current_k_) pending_k_ = target;
}

void AdaptiveMtScheduler::MaybeSwitch() {
  if (pending_k_ == 0) return;
  // Algorithm 2's switching discipline: restart from a fresh table and
  // abort every transaction begun under the old one ("abort all the
  // active transactions and rollback; restart"). Stale transactions are
  // detected by their epoch and turned away until the environment
  // restarts them.
  Rebuild(pending_k_);
  pending_k_ = 0;
  ++generation_;
  ++switches_;
}

void AdaptiveMtScheduler::OnBegin(TxnId txn) {
  if (txn_generation_.size() <= txn) txn_generation_.resize(txn + 1, 0);
  txn_generation_[txn] = generation_;
}

bool AdaptiveMtScheduler::IsStale(TxnId txn) const {
  return txn >= txn_generation_.size() || txn_generation_[txn] != generation_;
}

SchedOutcome AdaptiveMtScheduler::OnOperation(const Op& op) {
  MaybeSwitch();
  if (IsStale(op.txn)) {
    // Begun under a previous table: must roll back and restart.
    return RecordAbort(AbortReason::kStaleTxn);
  }
  switch (inner_->Process(op)) {
    case OpDecision::kAccept:
      NoteDecision(false);
      return SchedOutcome::kAccepted;
    case OpDecision::kIgnore:
      NoteDecision(false);
      return SchedOutcome::kIgnored;
    case OpDecision::kReject:
      NoteDecision(true);
      return RecordAbort(inner_->last_reject().reason);
  }
  return RecordAbort(AbortReason::kInvalidOp);
}

SchedOutcome AdaptiveMtScheduler::OnCommit(TxnId txn) {
  if (IsStale(txn)) return RecordAbort(AbortReason::kStaleTxn);
  if (!inner_->IsCommitted(txn) && !inner_->IsAborted(txn)) {
    inner_->CommitTxn(txn);
  }
  MaybeSwitch();
  return SchedOutcome::kAccepted;
}

void AdaptiveMtScheduler::OnRestart(TxnId txn) {
  // After a switch the fresh inner never saw this transaction; only
  // restart it where it is actually marked aborted.
  if (!IsStale(txn) && inner_->IsAborted(txn)) inner_->RestartTxn(txn);
  MaybeSwitch();
}

}  // namespace mdts
