#include "sched/interval_scheduler.h"

#include <algorithm>
#include <limits>

namespace mdts {

namespace {
// Fresh transactions receive the interval (0, +infinity): the upper end is
// unbounded so the global frontier can advance forever, as in [1] where
// timestamps come from an unbounded domain. Fragmentation (the paper's
// criticism) still occurs locally, once a transaction's interval has been
// bounded on both sides.
constexpr double kHorizon = std::numeric_limits<double>::infinity();
}  // namespace

IntervalScheduler::IntervalScheduler(const Options& options)
    : options_(options) {
  // The virtual transaction T0 precedes everything: interval (-1, 0].
  txns_.resize(1);
  txns_[0].lo = -1.0;
  txns_[0].hi = 0.0;
  txns_[0].started = true;
}

IntervalScheduler::TxnState& IntervalScheduler::State(TxnId txn) {
  if (txns_.size() <= txn) txns_.resize(txn + 1);
  TxnState& s = txns_[txn];
  if (!s.started) {
    s.lo = 0.0;
    s.hi = kHorizon;
    s.started = true;
  }
  return s;
}

IntervalScheduler::ItemState& IntervalScheduler::Item(ItemId item) {
  if (items_.size() <= item) items_.resize(item + 1);
  return items_[item];
}

bool IntervalScheduler::IsLiveAccess(const Access& access) {
  const TxnState& s = txns_[access.txn];
  return access.incarnation == s.incarnation && !s.aborted;
}

TxnId IntervalScheduler::TopLive(std::vector<Access>* stack) {
  while (!stack->empty() && !IsLiveAccess(stack->back())) stack->pop_back();
  return stack->empty() ? kVirtualTxn : stack->back().txn;
}

bool IntervalScheduler::Precedes(TxnId a, TxnId b) {
  return State(a).hi <= State(b).lo;
}

bool IntervalScheduler::SetBefore(TxnId j, TxnId i) {
  if (j == i) return true;
  if (Precedes(j, i)) return true;
  if (Precedes(i, j)) {
    ++order_aborts_;
    last_set_failure_ = AbortReason::kLexOrder;
    return false;
  }
  TxnState& sj = State(j);
  TxnState& si = State(i);
  const double overlap_lo = std::max(sj.lo, si.lo);
  const double overlap_hi = std::min(sj.hi, si.hi);
  double c;
  if (overlap_hi == kHorizon) {
    // Unbounded overlap: advance the frontier by a unit step.
    c = overlap_lo + 1.0;
  } else {
    const double width = overlap_hi - overlap_lo;
    if (width < options_.min_split_width) {
      // Fragmentation: the overlap is too narrow to split again.
      ++fragmentation_aborts_;
      last_set_failure_ = AbortReason::kEncodingExhausted;
      return false;
    }
    c = overlap_lo + options_.split_fraction * width;
  }
  sj.hi = c;
  si.lo = c;
  ++shrinks_;
  return true;
}

SchedOutcome IntervalScheduler::OnOperation(const Op& op) {
  const TxnId i = op.txn;
  if (i == kVirtualTxn) return RecordAbort(AbortReason::kInvalidOp);
  TxnState& state = State(i);
  if (state.aborted) return RecordAbort(AbortReason::kStaleTxn);

  ItemState& item = Item(op.item);
  const TxnId jr = TopLive(&item.readers);
  const TxnId jw = TopLive(&item.writers);
  const TxnId j = Precedes(jr, jw) ? jw : jr;

  auto abort = [&]() {
    // last_set_failure_ carries the cause from the SetBefore call that
    // refused the dependency (order conflict vs. fragmentation).
    state.aborted = true;
    return RecordAbort(last_set_failure_);
  };

  if (op.type == OpType::kRead) {
    if (SetBefore(j, i)) {
      item.readers.push_back({i, state.incarnation});
      return SchedOutcome::kAccepted;
    }
    if (j == jr && Precedes(jw, i)) {
      return SchedOutcome::kAccepted;  // Old read past the last writer.
    }
    return abort();
  }
  if (SetBefore(j, i)) {
    item.writers.push_back({i, state.incarnation});
    return SchedOutcome::kAccepted;
  }
  return abort();
}

SchedOutcome IntervalScheduler::OnCommit(TxnId) {
  return SchedOutcome::kAccepted;
}

void IntervalScheduler::OnRestart(TxnId txn) {
  TxnState& s = State(txn);
  s.aborted = false;
  ++s.incarnation;
  // As in [1], a restarted transaction re-enters with the full interval.
  s.lo = 0.0;
  s.hi = kHorizon;
}

}  // namespace mdts
