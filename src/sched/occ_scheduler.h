#ifndef MDTS_SCHED_OCC_SCHEDULER_H_
#define MDTS_SCHED_OCC_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace mdts {

/// Optimistic concurrency control with backward validation (Kung-Robinson
/// [13], serial-validation variant): transactions read and buffer writes
/// freely; at commit, a transaction validates against every transaction
/// that committed after it began - if any such committer wrote an item the
/// validating transaction read, it aborts. The paper contrasts MT(k)'s
/// immediate read validation and dynamic partial-order timestamps with this
/// end-of-transaction decision (Sections I and VI-C).
class OccScheduler : public Scheduler {
 public:
  OccScheduler() = default;

  std::string name() const override { return "OCC"; }
  bool deferred_writes() const override { return true; }

  void OnBegin(TxnId txn) override;
  SchedOutcome OnOperation(const Op& op) override;
  SchedOutcome OnCommit(TxnId txn) override;
  void OnRestart(TxnId txn) override;

  uint64_t validations_failed() const { return validations_failed_; }

 private:
  struct TxnState {
    uint64_t start_tn = 0;  // Value of the commit counter at begin.
    std::set<ItemId> read_set;
    std::set<ItemId> write_set;
    bool active = false;
  };

  struct CommittedRecord {
    uint64_t commit_tn = 0;
    std::set<ItemId> write_set;
  };

  TxnState& State(TxnId txn);

  uint64_t commit_counter_ = 0;
  std::map<TxnId, TxnState> txns_;
  std::vector<CommittedRecord> committed_;  // Ordered by commit_tn.
  uint64_t validations_failed_ = 0;
};

}  // namespace mdts

#endif  // MDTS_SCHED_OCC_SCHEDULER_H_
