#ifndef MDTS_CONTROL_ADMISSION_H_
#define MDTS_CONTROL_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/sharded_engine.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace mdts {

/// What the controller did in one actuation (AdmissionDecision::action).
enum class AdmissionAction : uint8_t {
  kGrow,             ///< Additive batch-size increase.
  kShrink,           ///< Multiplicative batch-size decrease.
  kEmergencyShrink,  ///< Watchdog-alert path: straight to min_batch.
  kWidenK,           ///< active_k + 1 (MT(k+) widening).
  kNarrowK,          ///< active_k - 1.
};

/// Stable snake_case identifier ("grow", "shrink", ...).
const char* AdmissionActionName(AdmissionAction action);

/// One controller actuation, with the window signals that justified it.
/// The trace of these is the controller's deterministic decision record:
/// driven by manual Sampler::TickOnce on simulated time over a fixed
/// workload schedule, two runs produce bit-identical traces (ToString has
/// no wall-clock, pointer, or locale dependence).
struct AdmissionDecision {
  uint64_t seq = 0;   ///< Sampler window sequence that triggered it.
  double time = 0.0;  ///< Window timestamp (the tick's `now`).
  AdmissionAction action = AdmissionAction::kGrow;
  uint32_t batch_size = 0;  ///< Advisory batch size AFTER the action.
  uint32_t k = 0;           ///< Active protocol width AFTER the action.
  double abort_rate = 0.0;  ///< Window rejects / (commits + rejects).
  /// Vector-capacity share of the window's rejects: the kLexOrder +
  /// kEncodingExhausted + kVersionConflict fraction - the reject classes
  /// a wider k can actually absorb (more elements = more encoding room).
  double vector_frac = 0.0;
  uint64_t window_commits = 0;
  uint64_t window_rejects = 0;
  uint64_t window_fallbacks = 0;  ///< engine.batch_fallbacks delta.

  /// One line, fixed field order: "seq=3 t=1.5 action=shrink batch=4 k=3
  /// abort_rate=0.71 vector_frac=0.12 commits=9 rejects=22 fallbacks=1".
  std::string ToString() const;
};

struct AdmissionControlOptions {
  /// Registry carrying the engine's mirrors ("engine.commits",
  /// "engine.rejected.<reason>", "engine.batch_fallbacks",
  /// "engine.lock_contention") - the controller's sensors - and receiving
  /// its own "engine.adaptive.*" gauges/counters. Required; must outlive
  /// the controller.
  MetricsRegistry* registry = nullptr;

  /// Engine whose runtime width the k actuator drives (SetActiveK).
  /// Optional: null means the controller only tracks k internally (tests
  /// that exercise the state machine without an engine).
  ShardedMtkEngine* engine = nullptr;

  /// Flight recorder receiving one control event per actuation. Optional.
  FlightRecorder* flight = nullptr;

  /// Independent batch-size slots ("shard groups" - a bench driver maps
  /// its thread groups onto them). Every decision currently actuates all
  /// groups uniformly; the per-group storage is the read-side contract:
  /// batch_size(g) is one relaxed atomic load, safe on the admission hot
  /// path. Clamped to >= 1.
  size_t num_groups = 1;

  /// Batch-size actuator range and AIMD steps.
  uint32_t min_batch = 1;
  uint32_t max_batch = 32;
  uint32_t grow_step = 4;       ///< Additive increase per grow.
  uint32_t shrink_factor = 2;   ///< Divisor per shrink (>= 2).
  uint32_t initial_batch = 0;   ///< 0 = start at max_batch (optimistic).

  /// Window classification. A window is PRESSURED when its abort rate is
  /// >= abort_rate_shrink, its engine.batch_fallbacks delta is nonzero, or
  /// its lock-contention-per-op exceeds contention_per_op_shrink; QUIET
  /// when the abort rate is <= abort_rate_quiet and none of those fire.
  /// In between, streaks reset but nothing actuates (hysteresis band).
  double abort_rate_shrink = 0.5;
  double abort_rate_quiet = 0.2;
  double contention_per_op_shrink = 2.0;

  /// Dwell / cool-down (in sampler windows): grow only after this many
  /// consecutive quiet windows, and never within cooldown_windows of a
  /// shrink - the cliff-oscillation guard: a shrink's effect needs at
  /// least one full window to show in the sensors, so reacting faster
  /// than the cool-down would re-decide on pre-shrink evidence.
  uint64_t quiet_windows_to_grow = 2;
  uint64_t cooldown_windows = 2;

  /// k actuator (MT(k+) runtime width). Widen by one after widen_dwell
  /// consecutive pressured windows whose rejects are dominated (>=
  /// widen_reject_frac) by the vector-capacity classes; narrow by one
  /// after narrow_dwell consecutive quiet windows. Bounds: [min_k,
  /// engine's physical k] (max_k caps it further when nonzero).
  double widen_reject_frac = 0.5;
  uint64_t widen_dwell = 2;
  uint64_t narrow_dwell = 8;
  uint32_t min_k = 1;
  uint32_t max_k = 0;  ///< 0 = the engine's physical k (or initial k).

  /// Windows with fewer than this many decided operations carry no signal
  /// (a batch boundary can land anywhere in them); they are skipped
  /// without touching any streak.
  uint64_t min_window_ops = 16;

  /// Decisions retained for decisions()/TraceString(); the oldest are
  /// dropped past this. Plenty for any test or bench run.
  size_t trace_capacity = 4096;
};

/// Closed-loop admission controller: consumes the engine's registry
/// mirrors window by window (drive it from Sampler::AddTickHook, after
/// the watchdogs) and feeds two actuators back into admission - the
/// advisory per-group batch size (AIMD with hysteresis and cool-down) and
/// the engine's runtime MT(k+) width (SetActiveK). The starvation
/// watchdog's alert path plugs into EmergencyShrink, replacing its
/// alert-only behavior with an immediate collapse to min_batch.
///
/// Thread safety: TickOnce / EmergencyShrink / decisions() serialize on
/// one mutex; batch_size() and active_k() are lock-free reads, safe to
/// call from admission loops concurrent with ticking. Determinism: given
/// the same tick sequence over the same counter history, the controller
/// makes the same decisions - it reads only registry values and its own
/// state, never a clock.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionControlOptions& options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Consumes the window that ended at `now` (sampler-window semantics:
  /// pass the Sampler tick's seq/now straight through) and actuates.
  void TickOnce(uint64_t seq, double now);

  /// Watchdog-alert path: collapse every group to min_batch immediately
  /// and start a fresh cool-down. `seq`/`now` tag the decision (pass the
  /// alert's last_seq/last_time). No-op when already at min_batch.
  void EmergencyShrink(uint64_t seq, double now);

  /// Current advisory batch size for a group (groups beyond num_groups
  /// fold onto group 0). Lock-free.
  uint32_t batch_size(size_t group = 0) const {
    return batch_[group < num_groups_ ? group : 0].load(
        std::memory_order_relaxed);
  }

  /// Current active protocol width the controller believes in. Lock-free.
  uint32_t active_k() const { return k_.load(std::memory_order_relaxed); }

  /// Copy of the retained decision trace, oldest first.
  std::vector<AdmissionDecision> decisions() const;

  /// The trace as ToString() lines joined with '\n' (bit-identical across
  /// deterministic replays).
  std::string TraceString() const;

  uint64_t grows() const { return grows_.load(std::memory_order_relaxed); }
  uint64_t shrinks() const {
    return shrinks_.load(std::memory_order_relaxed);
  }
  uint64_t k_switches() const {
    return k_switches_.load(std::memory_order_relaxed);
  }

  const AdmissionControlOptions& options() const { return options_; }

 private:
  /// Applies `action`, records it (trace, registry, flight), and publishes
  /// the new batch/k gauges. mu_ held.
  void ActuateLocked(uint64_t seq, double now, AdmissionAction action,
                     uint32_t new_batch, uint32_t new_k, double abort_rate,
                     double vector_frac, uint64_t commits, uint64_t rejects,
                     uint64_t fallbacks);

  AdmissionControlOptions options_;
  size_t num_groups_;
  uint32_t physical_k_;  ///< Upper bound for the k actuator.

  // Sensors (stable registry pointers, resolved once).
  Counter* c_commits_ = nullptr;
  Counter* c_rejected_[kNumAbortReasons] = {};
  Counter* c_fallbacks_ = nullptr;
  Counter* c_contention_ = nullptr;

  // Published state ("engine.adaptive.*").
  Gauge* g_batch_ = nullptr;
  Gauge* g_k_ = nullptr;
  Counter* m_grows_ = nullptr;
  Counter* m_shrinks_ = nullptr;
  Counter* m_k_switches_ = nullptr;

  mutable std::mutex mu_;
  // Last-seen cumulative sensor values (window deltas subtract these).
  uint64_t last_commits_ = 0;
  uint64_t last_rejects_[kNumAbortReasons] = {};
  uint64_t last_fallbacks_ = 0;
  uint64_t last_contention_ = 0;
  // Streak state (see AdmissionControlOptions).
  uint64_t quiet_streak_ = 0;
  uint64_t widen_streak_ = 0;
  uint64_t narrow_streak_ = 0;
  uint64_t cooldown_ = 0;
  std::vector<AdmissionDecision> trace_;

  // Lock-free read side.
  std::unique_ptr<std::atomic<uint32_t>[]> batch_;
  std::atomic<uint32_t> k_;
  std::atomic<uint64_t> grows_{0};
  std::atomic<uint64_t> shrinks_{0};
  std::atomic<uint64_t> k_switches_{0};
};

}  // namespace mdts

#endif  // MDTS_CONTROL_ADMISSION_H_
