#include "control/admission.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace mdts {

namespace {

/// Deterministic short float rendering for trace lines (%.6g, no locale).
void AppendNum(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

/// The reject classes a wider vector can absorb: conflicts lost to
/// encoding capacity or to an order fixed through the (too-few) shared
/// elements - as opposed to staleness, throttling, or invalid input,
/// which no amount of dimensions helps.
bool VectorClassReason(size_t r) {
  const AbortReason a = static_cast<AbortReason>(r);
  return a == AbortReason::kLexOrder ||
         a == AbortReason::kEncodingExhausted ||
         a == AbortReason::kVersionConflict;
}

}  // namespace

const char* AdmissionActionName(AdmissionAction action) {
  switch (action) {
    case AdmissionAction::kGrow:
      return "grow";
    case AdmissionAction::kShrink:
      return "shrink";
    case AdmissionAction::kEmergencyShrink:
      return "emergency_shrink";
    case AdmissionAction::kWidenK:
      return "widen_k";
    case AdmissionAction::kNarrowK:
      return "narrow_k";
  }
  return "unknown";
}

std::string AdmissionDecision::ToString() const {
  std::string out = "seq=";
  AppendU64(&out, seq);
  out += " t=";
  AppendNum(&out, time);
  out += " action=";
  out += AdmissionActionName(action);
  out += " batch=";
  AppendU64(&out, batch_size);
  out += " k=";
  AppendU64(&out, k);
  out += " abort_rate=";
  AppendNum(&out, abort_rate);
  out += " vector_frac=";
  AppendNum(&out, vector_frac);
  out += " commits=";
  AppendU64(&out, window_commits);
  out += " rejects=";
  AppendU64(&out, window_rejects);
  out += " fallbacks=";
  AppendU64(&out, window_fallbacks);
  return out;
}

AdmissionController::AdmissionController(
    const AdmissionControlOptions& options)
    : options_(options),
      num_groups_(options.num_groups < 1 ? 1 : options.num_groups),
      k_(1) {
  assert(options_.registry != nullptr);
  options_.num_groups = num_groups_;
  if (options_.min_batch < 1) options_.min_batch = 1;
  if (options_.max_batch < options_.min_batch) {
    options_.max_batch = options_.min_batch;
  }
  if (options_.shrink_factor < 2) options_.shrink_factor = 2;
  if (options_.grow_step < 1) options_.grow_step = 1;
  if (options_.min_k < 1) options_.min_k = 1;

  // k bounds: the engine's physical vector size caps widening; without an
  // engine the cap is max_k (or min_k when unset - nothing to widen into).
  uint32_t start_k = options_.min_k;
  if (options_.engine != nullptr) {
    physical_k_ = static_cast<uint32_t>(options_.engine->options().k);
    start_k = static_cast<uint32_t>(options_.engine->active_k());
  } else {
    physical_k_ = options_.max_k != 0 ? options_.max_k : options_.min_k;
    start_k = physical_k_;
  }
  if (options_.max_k != 0 && options_.max_k < physical_k_) {
    physical_k_ = options_.max_k;
  }
  if (physical_k_ < options_.min_k) physical_k_ = options_.min_k;
  if (start_k < options_.min_k) start_k = options_.min_k;
  if (start_k > physical_k_) start_k = physical_k_;
  k_.store(start_k, std::memory_order_relaxed);

  const uint32_t start_batch =
      options_.initial_batch != 0
          ? (options_.initial_batch < options_.min_batch
                 ? options_.min_batch
                 : (options_.initial_batch > options_.max_batch
                        ? options_.max_batch
                        : options_.initial_batch))
          : options_.max_batch;
  batch_ = std::make_unique<std::atomic<uint32_t>[]>(num_groups_);
  for (size_t g = 0; g < num_groups_; ++g) {
    batch_[g].store(start_batch, std::memory_order_relaxed);
  }

  MetricsRegistry* reg = options_.registry;
  c_commits_ = reg->GetCounter("engine.commits");
  for (size_t r = 1; r < kNumAbortReasons; ++r) {
    c_rejected_[r] =
        reg->GetCounter(std::string("engine.rejected.") +
                        AbortReasonName(static_cast<AbortReason>(r)));
  }
  c_fallbacks_ = reg->GetCounter("engine.batch_fallbacks");
  c_contention_ = reg->GetCounter("engine.lock_contention");

  g_batch_ = reg->GetGauge("engine.adaptive.batch_size");
  g_k_ = reg->GetGauge("engine.adaptive.k");
  m_grows_ = reg->GetCounter("engine.adaptive.grows");
  m_shrinks_ = reg->GetCounter("engine.adaptive.shrinks");
  m_k_switches_ = reg->GetCounter("engine.adaptive.k_switches");
  g_batch_->Set(start_batch);
  g_k_->Set(start_k);

  // Baseline the sensors at attach time so the first window only covers
  // activity after construction.
  last_commits_ = c_commits_->Value();
  for (size_t r = 1; r < kNumAbortReasons; ++r) {
    last_rejects_[r] = c_rejected_[r]->Value();
  }
  last_fallbacks_ = c_fallbacks_->Value();
  last_contention_ = c_contention_->Value();
}

void AdmissionController::ActuateLocked(uint64_t seq, double now,
                                        AdmissionAction action,
                                        uint32_t new_batch, uint32_t new_k,
                                        double abort_rate, double vector_frac,
                                        uint64_t commits, uint64_t rejects,
                                        uint64_t fallbacks) {
  for (size_t g = 0; g < num_groups_; ++g) {
    batch_[g].store(new_batch, std::memory_order_relaxed);
  }
  k_.store(new_k, std::memory_order_relaxed);
  if (options_.engine != nullptr &&
      (action == AdmissionAction::kWidenK ||
       action == AdmissionAction::kNarrowK)) {
    options_.engine->SetActiveK(new_k);
  }
  g_batch_->Set(new_batch);
  g_k_->Set(new_k);
  switch (action) {
    case AdmissionAction::kGrow:
      grows_.fetch_add(1, std::memory_order_relaxed);
      m_grows_->Add(1);
      break;
    case AdmissionAction::kShrink:
    case AdmissionAction::kEmergencyShrink:
      shrinks_.fetch_add(1, std::memory_order_relaxed);
      m_shrinks_->Add(1);
      break;
    case AdmissionAction::kWidenK:
    case AdmissionAction::kNarrowK:
      k_switches_.fetch_add(1, std::memory_order_relaxed);
      m_k_switches_->Add(1);
      break;
  }

  AdmissionDecision d;
  d.seq = seq;
  d.time = now;
  d.action = action;
  d.batch_size = new_batch;
  d.k = new_k;
  d.abort_rate = abort_rate;
  d.vector_frac = vector_frac;
  d.window_commits = commits;
  d.window_rejects = rejects;
  d.window_fallbacks = fallbacks;
  if (trace_.size() >= options_.trace_capacity) {
    trace_.erase(trace_.begin());
  }
  trace_.push_back(d);

  if (options_.flight != nullptr) {
    // Control events share the transaction records' dump; the timestamp is
    // the window time in microseconds, so sim-time driven runs stay
    // deterministic (no wall clock).
    options_.flight->RecordControl(
        AdmissionActionName(action), new_batch, new_k,
        static_cast<uint64_t>(now * 1e6));
  }
}

void AdmissionController::TickOnce(uint64_t seq, double now) {
  std::lock_guard<std::mutex> g(mu_);

  // Window deltas from the cumulative mirrors.
  const uint64_t commits_cum = c_commits_->Value();
  const uint64_t commits = commits_cum - last_commits_;
  last_commits_ = commits_cum;
  uint64_t rejects = 0;
  uint64_t vector_rejects = 0;
  for (size_t r = 1; r < kNumAbortReasons; ++r) {
    const uint64_t cum = c_rejected_[r]->Value();
    const uint64_t d = cum - last_rejects_[r];
    last_rejects_[r] = cum;
    rejects += d;
    if (VectorClassReason(r)) vector_rejects += d;
  }
  const uint64_t fallbacks_cum = c_fallbacks_->Value();
  const uint64_t fallbacks = fallbacks_cum - last_fallbacks_;
  last_fallbacks_ = fallbacks_cum;
  const uint64_t contention_cum = c_contention_->Value();
  const uint64_t contention = contention_cum - last_contention_;
  last_contention_ = contention_cum;

  if (cooldown_ > 0) --cooldown_;

  const uint64_t ops = commits + rejects;
  if (ops < options_.min_window_ops) return;  // No signal this window.

  const double abort_rate =
      static_cast<double>(rejects) / static_cast<double>(ops);
  const double vector_frac =
      rejects > 0 ? static_cast<double>(vector_rejects) /
                        static_cast<double>(rejects)
                  : 0.0;
  const double contention_per_op =
      static_cast<double>(contention) / static_cast<double>(ops);
  const bool pressured = abort_rate >= options_.abort_rate_shrink ||
                         fallbacks > 0 ||
                         contention_per_op > options_.contention_per_op_shrink;
  const bool quiet = !pressured && abort_rate <= options_.abort_rate_quiet;

  const uint32_t batch = batch_[0].load(std::memory_order_relaxed);
  const uint32_t k = k_.load(std::memory_order_relaxed);

  // Batch actuator: multiplicative shrink on pressure (outside the
  // cool-down), additive grow after a quiet dwell. The middle band only
  // resets the quiet streak - hysteresis against dithering at the cliff.
  if (pressured) {
    quiet_streak_ = 0;
    if (cooldown_ == 0 && batch > options_.min_batch) {
      uint32_t nb = batch / options_.shrink_factor;
      if (nb < options_.min_batch) nb = options_.min_batch;
      cooldown_ = options_.cooldown_windows;
      ActuateLocked(seq, now, AdmissionAction::kShrink, nb, k, abort_rate,
                    vector_frac, commits, rejects, fallbacks);
    }
  } else if (quiet) {
    ++quiet_streak_;
    if (quiet_streak_ >= options_.quiet_windows_to_grow && cooldown_ == 0 &&
        batch < options_.max_batch) {
      uint32_t nb = batch + options_.grow_step;
      if (nb > options_.max_batch) nb = options_.max_batch;
      quiet_streak_ = 0;
      ActuateLocked(seq, now, AdmissionAction::kGrow, nb, k, abort_rate,
                    vector_frac, commits, rejects, fallbacks);
    }
  } else {
    quiet_streak_ = 0;
  }

  // k actuator: widen while vector-capacity rejects dominate a pressured
  // window (the extra dimensions buy encoding room exactly there), narrow
  // back once the load has been quiet long enough that the dimensions
  // stopped paying. Both re-read the batch gauge - a shrink above may
  // have changed it within this same tick.
  const uint32_t cur_batch = batch_[0].load(std::memory_order_relaxed);
  if (pressured && vector_frac >= options_.widen_reject_frac &&
      rejects > 0) {
    narrow_streak_ = 0;
    ++widen_streak_;
    if (widen_streak_ >= options_.widen_dwell && k < physical_k_) {
      widen_streak_ = 0;
      ActuateLocked(seq, now, AdmissionAction::kWidenK, cur_batch, k + 1,
                    abort_rate, vector_frac, commits, rejects, fallbacks);
    }
  } else if (quiet) {
    widen_streak_ = 0;
    ++narrow_streak_;
    if (narrow_streak_ >= options_.narrow_dwell && k > options_.min_k) {
      narrow_streak_ = 0;
      ActuateLocked(seq, now, AdmissionAction::kNarrowK, cur_batch, k - 1,
                    abort_rate, vector_frac, commits, rejects, fallbacks);
    }
  } else {
    widen_streak_ = 0;
    narrow_streak_ = 0;
  }
}

void AdmissionController::EmergencyShrink(uint64_t seq, double now) {
  std::lock_guard<std::mutex> g(mu_);
  const uint32_t batch = batch_[0].load(std::memory_order_relaxed);
  cooldown_ = options_.cooldown_windows;
  quiet_streak_ = 0;
  if (batch <= options_.min_batch) return;
  ActuateLocked(seq, now, AdmissionAction::kEmergencyShrink,
                options_.min_batch, k_.load(std::memory_order_relaxed),
                0.0, 0.0, 0, 0, 0);
}

std::vector<AdmissionDecision> AdmissionController::decisions() const {
  std::lock_guard<std::mutex> g(mu_);
  return trace_;
}

std::string AdmissionController::TraceString() const {
  std::lock_guard<std::mutex> g(mu_);
  std::string out;
  for (const AdmissionDecision& d : trace_) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace mdts
