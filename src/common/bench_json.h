#ifndef MDTS_COMMON_BENCH_JSON_H_
#define MDTS_COMMON_BENCH_JSON_H_

#include <string>
#include <utility>
#include <vector>

namespace mdts {

/// One benchmark record: ("field", raw JSON value) pairs, in emission
/// order. Values are already-formatted JSON fragments (use JsonStr /
/// JsonNum below), so records can nest arrays or objects freely.
using BenchFields = std::vector<std::pair<std::string, std::string>>;

/// JSON string literal with the characters that can appear in bench names
/// and machine strings escaped.
std::string JsonStr(const std::string& s);

/// Shortest round-trip-faithful JSON number for a double ("%.17g" trimmed);
/// NaN and infinities, which JSON lacks, are emitted as null.
std::string JsonNum(double v);

/// Inserts or replaces the record whose "bench" field equals `bench` in the
/// JSON-array results file at `path`, creating the file if needed. The file
/// layout is one record per line inside a top-level array, so diffs stay
/// line-per-benchmark and the upsert can filter lines without a JSON
/// parser. A "bench" field is prepended to the given fields automatically.
/// Returns false (after printing to stderr) if the file cannot be written.
bool UpsertBenchRecord(const std::string& path, const std::string& bench,
                       const BenchFields& fields);

}  // namespace mdts

#endif  // MDTS_COMMON_BENCH_JSON_H_
