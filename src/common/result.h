#ifndef MDTS_COMMON_RESULT_H_
#define MDTS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace mdts {

/// Value-or-Status return type: either holds a T (status is OK) or carries a
/// non-OK Status explaining why no value is available.
///
/// Usage:
///   Result<Log> r = ParseLog(text);
///   if (!r.ok()) return r.status();
///   UseLog(r.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result); mirrors absl::StatusOr,
  /// where this implicit conversion is the expected ergonomic style.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ holds a T.
  std::optional<T> value_;
};

}  // namespace mdts

#endif  // MDTS_COMMON_RESULT_H_
