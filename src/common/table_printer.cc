#include "common/table_printer.h"

#include <cstdio>

namespace mdts {

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace mdts
