#ifndef MDTS_COMMON_TABLE_PRINTER_H_
#define MDTS_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace mdts {

/// Renders rows of strings as an aligned ASCII table. Used by the bench
/// binaries to regenerate the paper's tables (Table I-IV) and experiment
/// result grids in a readable, diffable form.
class TablePrinter {
 public:
  /// Sets the header row. Column count is fixed by the header.
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a data row; short rows are padded with empty cells, long rows
  /// are truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string FormatDouble(double v, int decimals);

}  // namespace mdts

#endif  // MDTS_COMMON_TABLE_PRINTER_H_
