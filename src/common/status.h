#ifndef MDTS_COMMON_STATUS_H_
#define MDTS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mdts {

/// Error-handling result type in the RocksDB style: the library does not throw
/// exceptions; fallible operations return a Status (or Result<T>, see
/// result.h) that the caller must inspect.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kFailedPrecondition,
    kOutOfRange,
    kInternal,
  };

  /// Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

}  // namespace mdts

#endif  // MDTS_COMMON_STATUS_H_
