#include "common/bench_json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mdts {

std::string JsonStr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    double back;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

bool UpsertBenchRecord(const std::string& path, const std::string& bench,
                       const BenchFields& fields) {
  // Collect the existing records, dropping any previous one for `bench`.
  const std::string key = "\"bench\": " + JsonStr(bench);
  std::vector<std::string> records;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      // Array brackets and blank lines are re-synthesized on write; record
      // lines may carry a trailing comma from the previous serialization.
      if (line.empty() || line[0] != '{') continue;
      if (!line.empty() && line.back() == ',') line.pop_back();
      if (line.find(key) != std::string::npos) continue;
      records.push_back(line);
    }
  }

  std::ostringstream rec;
  rec << "{\"bench\": " << JsonStr(bench);
  for (const auto& [name, value] : fields) {
    rec << ", " << JsonStr(name) << ": " << value;
  }
  rec << '}';
  records.push_back(rec.str());

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return false;
  }
  out << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    out << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "]\n";
  return out.good();
}

}  // namespace mdts
