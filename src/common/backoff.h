#ifndef MDTS_COMMON_BACKOFF_H_
#define MDTS_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/rng.h"

namespace mdts {

/// Capped exponential backoff shared by every retry/restart path: the
/// closed-loop simulator's transaction restarts (sim/simulator.cc), and the
/// distributed system's restarts and lock-request retries
/// (dist/dmt_system.cc). Attempt 0 yields the first delay.
///
/// MeanDelay(a) = min(cap, base * multiplier^a). The two jitter flavors
/// draw around that mean:
///  - ExpJitterDelay: fully exponential jitter. A deterministic delay lets
///    pairs of mutually conflicting transactions retry in lockstep forever
///    (OCC-style livelock); exponential jitter desynchronizes them.
///  - EqualJitterDelay: mean/2 + uniform[0, mean/2), so the delay is
///    bounded on both sides - for timers that must neither fire absurdly
///    early (spurious retries) nor absurdly late (wedged progress), such
///    as per-message timeouts.
struct BackoffPolicy {
  double base = 1.0;
  double multiplier = 2.0;
  double cap = std::numeric_limits<double>::infinity();

  double MeanDelay(uint32_t attempt) const {
    // Iterative doubling (not std::pow) so results are bit-identical
    // across libm implementations; the cap bounds the loop.
    double d = base;
    for (uint32_t i = 0; i < attempt && d < cap; ++i) d *= multiplier;
    return std::min(d, cap);
  }

  double ExpJitterDelay(uint32_t attempt, Rng* rng) const {
    return rng->Exponential(MeanDelay(attempt));
  }

  double EqualJitterDelay(uint32_t attempt, Rng* rng) const {
    const double m = MeanDelay(attempt);
    return m / 2.0 + rng->UniformReal() * (m / 2.0);
  }
};

}  // namespace mdts

#endif  // MDTS_COMMON_BACKOFF_H_
