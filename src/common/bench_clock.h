#ifndef MDTS_COMMON_BENCH_CLOCK_H_
#define MDTS_COMMON_BENCH_CLOCK_H_

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <vector>

namespace mdts {

/// Monotonic wall-clock timer for benchmarks: wraps steady_clock so no
/// bench re-derives the duration arithmetic (or accidentally uses the
/// adjustable system clock).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Rank-based percentile over an ascending-sorted sample vector, using the
/// ceiling rank idx = ceil(n * pct / 100) clamped to [1, n]. For pct = 99
/// this reproduces the formula the DMT(k) simulation has always used for
/// p99 response times, so switching callers to this helper changes no
/// reported number.
template <typename T>
T PercentileSorted(const std::vector<T>& sorted, int pct) {
  assert(!sorted.empty());
  const size_t idx =
      (sorted.size() * static_cast<size_t>(pct) + 99) / 100;
  return sorted[std::min(std::max<size_t>(idx, 1), sorted.size()) - 1];
}

/// Sorts the samples in place, then returns the pct-th percentile.
template <typename T>
T Percentile(std::vector<T>& samples, int pct) {
  std::sort(samples.begin(), samples.end());
  return PercentileSorted(samples, pct);
}

}  // namespace mdts

#endif  // MDTS_COMMON_BENCH_CLOCK_H_
