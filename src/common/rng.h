#ifndef MDTS_COMMON_RNG_H_
#define MDTS_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace mdts {

/// Seeded pseudo-random source used by every stochastic component
/// (workload generation, simulation think times, property-test sweeps),
/// so that every experiment in the repository is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return UniformReal() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed item picker over {0, .., n-1} with skew theta >= 0
/// (theta = 0 is uniform; larger theta concentrates accesses on few items).
/// Uses the standard inverse-CDF table; O(n) setup, O(log n) per sample.
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double theta);

  /// Draws one item id in [0, n).
  size_t Pick(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace mdts

#endif  // MDTS_COMMON_RNG_H_
