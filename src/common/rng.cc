#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace mdts {

ZipfPicker::ZipfPicker(size_t n, double theta) {
  assert(n > 0);
  assert(theta >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfPicker::Pick(Rng* rng) const {
  double u = rng->UniformReal();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace mdts
