#ifndef MDTS_DIST_DMT_SYSTEM_H_
#define MDTS_DIST_DMT_SYSTEM_H_

#include <cstdint>
#include <vector>

#include "core/log.h"
#include "core/timestamp_vector.h"
#include "fault/fault.h"
#include "obs/abort_reason.h"
#include "obs/dspan.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "workload/generator.h"

namespace mdts {

/// Configuration of the decentralized protocol DMT(k) simulation (paper
/// Section V-B). Data items and transaction timestamp vectors are
/// partitioned across sites; scheduling one operation locks the involved
/// objects (the item record plus up to three timestamp vectors) in a
/// predefined linear order - items before vectors, each ordered by id - so
/// no deadlock can arise, exchanging messages with the objects' home sites.
///
/// Beyond the paper's perfect network, the simulation supports an injected
/// fault model (`fault`): message loss, duplication and jitter, plus
/// scheduled whole-site crash/recovery. Fault tolerance rests on three
/// mechanisms: idempotent lock requests retried on a capped-exponential
/// timeout, lock leases that reclaim locks held by crashed or wedged
/// coordinators, and abort-and-retry for transactions touching a down
/// site. Every run - faulty or not - must still commit only DSR histories.
struct DmtOptions {
  size_t k = 3;
  uint32_t num_sites = 3;

  /// One-way message latency between distinct sites (simulated time).
  double message_latency = 1.0;

  /// Mean think time between a transaction's operations.
  double mean_think_time = 1.0;

  /// Base of the jittered, capped-exponential restart backoff (the mean
  /// delay after a transaction's first abort).
  double restart_delay = 4.0;

  /// Growth factor / cap of the restart backoff. multiplier 0 = automatic:
  /// flat (1.0) on a clean run, doubling (2.0) when faults are injected so
  /// retries shed load during an outage. cap 0 = 8 * restart_delay.
  double restart_backoff_multiplier = 0.0;
  double restart_backoff_cap = 0.0;

  uint32_t num_txns = 60;
  uint32_t concurrency = 8;
  uint32_t max_attempts = 100;

  /// If > 0, all sites' ucount/lcount counters are re-synchronized to the
  /// global extremes every this many simulated time units (the paper's
  /// periodic synchronization for unbalanced loads). The same path rebuilds
  /// a recovering site's counter state after a crash.
  double counter_sync_interval = 0.0;

  /// Injected faults (message loss/duplication/jitter, site crashes).
  /// Inactive by default; a clean run is bit-identical to the fault-free
  /// simulator.
  FaultPlan fault;

  /// Timeout before an unanswered lock request is re-sent (the interval
  /// grows with a capped-exponential, equal-jitter backoff). 0 = automatic:
  /// disabled on a clean run, derived from message_latency and jitter when
  /// any fault is injected.
  double request_timeout = 0.0;

  /// Re-sends of one lock request before the operation is abandoned and
  /// its transaction aborts-and-retries.
  uint32_t max_lock_retries = 6;

  /// Lease on every granted lock; expiry reclaims the lock from a crashed
  /// or wedged holder and aborts that holder's transaction. 0 = automatic:
  /// disabled on a clean run, derived from the request timeout when any
  /// fault is injected (faulty runs need leases to guarantee progress).
  double lock_lease = 0.0;

  WorkloadOptions workload;
  uint64_t seed = 1;

  /// Registry the run publishes its "dmt.*" counters and latency histograms
  /// into. Null means the process-wide GlobalMetrics() - DMT metrics are
  /// always on; pass a private registry to isolate a run (as the
  /// reconciliation tests do). The headline series - "dmt.committed",
  /// "dmt.aborts.<reason>", the gauge "dmt.max_consecutive_aborts", and the
  /// response-time / restart-backoff histograms - record live, per event
  /// (so an attached Sampler sees windowed rates); the remaining counters
  /// are added once at the end of the run. Either way the registry deltas
  /// over a run exactly equal the DmtResult fields.
  MetricsRegistry* metrics = nullptr;

  /// Sampler ticked on SIMULATED time every `sample_interval` time units
  /// while the run is in progress (plus one final tick at the end), giving
  /// deterministic windowed series and watchdog evaluations - no wall
  /// clock involved. Null (or interval <= 0) disables sampling. The
  /// sampler should wrap the same registry this run publishes into.
  Sampler* sampler = nullptr;
  double sample_interval = 0.0;

  /// Flight recorder fed one record per commit and per abort, carrying the
  /// transaction's timestamp vector at that moment and the simulated-time
  /// microsecond stamp. Records land in the ring of the transaction's
  /// vector home site (ring = txn % rings), so a per-site drain mirrors the
  /// partitioning. Null disables recording. Must outlive the run.
  FlightRecorder* flight = nullptr;

  /// Cross-site causal tracing. Attaching either pointer turns the tracer
  /// on: every message carries a compact TraceContext (send time, the
  /// sender's open segment span, the defined prefix of the transaction's
  /// MT(k) vector), each transaction's timeline is attributed to the
  /// DistSegment classes, and per-hop network spans are recorded at the
  /// receiver when a fresh (non-duplicate, non-stale) delivery advances
  /// the protocol. Both null (the default) keeps the simulation on the
  /// zero-cost untraced path, bit-identical to an untraced run either way.
  ///
  /// `spans`: per-site ring every closed span is recorded into (ring =
  /// site). `paths`: collector fed one assembled TxnPathRecord - the span
  /// DAG plus the critical-path breakdown - per finished transaction.
  /// Tracing also publishes "dmt.path.<class>_us" histograms and
  /// cumulative "dmt.critical_path.<class>_us" counters into the registry.
  /// Must outlive the run.
  SpanRing* spans = nullptr;
  PathCollector* paths = nullptr;

  /// Trace 1 in 2^trace_sample_shift transactions (0 = every one). The
  /// choice is deterministic on the txn id (no RNG drawn), an unsampled
  /// transaction never opens a root so it pays nothing beyond a zeroed
  /// trace context on its sends, and every SAMPLED transaction keeps the
  /// full exact-reconciliation guarantees. Full fidelity (shift 0) costs
  /// a meaningful fraction of this time-compressed simulator's ~100ns
  /// events; the overhead gate in bench/distributed_dmt runs at the
  /// sampled setting (the flight-recorder discipline) and records the
  /// full-fidelity cost honestly alongside.
  uint32_t trace_sample_shift = 0;
};

/// Aggregate result of a DMT(k) run.
struct DmtResult {
  uint64_t committed = 0;
  uint64_t aborts = 0;
  /// Per-reason breakdown of `aborts`; abort_reasons.total() == aborts.
  /// Protocol conflicts surface as kLexOrder / kEncodingExhausted; the
  /// fault-tolerance machinery as kLockTimeout / kLeaseExpired / kDownSite.
  AbortReasonCounts abort_reasons;
  uint64_t gave_up = 0;
  uint64_t messages_sent = 0;   // Network messages (remote hops only).
  uint64_t lock_waits = 0;      // Times an object lock was queued behind.
  uint64_t ops_scheduled = 0;
  uint64_t max_consecutive_aborts = 0;  // Starvation indicator.

  // Fault-tolerance activity (all zero on a clean run).
  uint64_t messages_dropped = 0;     // Injector drops + deliveries to down sites.
  uint64_t messages_duplicated = 0;  // Extra copies delivered.
  uint64_t lock_retries = 0;         // Lock requests re-sent after a timeout.
  uint64_t timeout_give_ups = 0;     // Ops abandoned after max_lock_retries.
  uint64_t lease_reclaims = 0;       // Locks reclaimed from expired leases.
  uint64_t down_site_aborts = 0;     // Aborts caused by a crashed/down site.

  double makespan = 0.0;
  double avg_response_time = 0.0;
  double p99_response_time = 0.0;  // Tail response over committed txns.

  // Vector-storage reclamation: finished transactions' timestamp vectors
  // released during the run, and the table size left at the end (bounded
  // by the live span, not num_txns, now that compaction runs).
  uint64_t vectors_released = 0;
  uint64_t final_live_vectors = 0;

  // Distributed tracing (all zero unless DmtOptions::spans or ::paths is
  // attached). The leak invariant spans_opened == spans_closed holds at
  // the end of every run - spans open at a crash, lease reclaim or
  // timeout are closed-as-aborted, never leaked.
  uint64_t spans_opened = 0;
  uint64_t spans_closed = 0;
  uint64_t spans_aborted = 0;      // Closed by an abort.
  uint64_t hops_recorded = 0;      // Message-hop spans on recorded paths.
  uint64_t dup_hops_ignored = 0;   // Duplicate/stale deliveries deduped.
  uint64_t paths_extracted = 0;    // One per finished transaction.
  /// Critical-path microseconds per segment class, summed over every
  /// finished transaction; sums to path_total_us exactly (the classes
  /// partition each transaction's timeline).
  uint64_t path_seg_us[kNumDistSegments] = {};
  uint64_t path_total_us = 0;

  /// Operations scheduled at each site (load balance view).
  std::vector<uint64_t> ops_per_site;

  /// Globally ordered accepted operations of committed transactions; the
  /// audit input (must be DSR).
  Log committed_history;
};

/// Runs the decentralized simulation. Deterministic given options.seed
/// (including the fault schedule: the injector derives its own stream from
/// the seed).
DmtResult RunDmtSimulation(const DmtOptions& options);

}  // namespace mdts

#endif  // MDTS_DIST_DMT_SYSTEM_H_
