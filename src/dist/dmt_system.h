#ifndef MDTS_DIST_DMT_SYSTEM_H_
#define MDTS_DIST_DMT_SYSTEM_H_

#include <cstdint>
#include <vector>

#include "core/log.h"
#include "core/timestamp_vector.h"
#include "workload/generator.h"

namespace mdts {

/// Configuration of the decentralized protocol DMT(k) simulation (paper
/// Section V-B). Data items and transaction timestamp vectors are
/// partitioned across sites; scheduling one operation locks the involved
/// objects (the item record plus up to three timestamp vectors) in a
/// predefined linear order - items before vectors, each ordered by id - so
/// no deadlock can arise, exchanging messages with the objects' home sites.
struct DmtOptions {
  size_t k = 3;
  uint32_t num_sites = 3;

  /// One-way message latency between distinct sites (simulated time).
  double message_latency = 1.0;

  /// Mean think time between a transaction's operations.
  double mean_think_time = 1.0;

  double restart_delay = 4.0;
  uint32_t num_txns = 60;
  uint32_t concurrency = 8;
  uint32_t max_attempts = 100;

  /// If > 0, all sites' ucount/lcount counters are re-synchronized to the
  /// global extremes every this many simulated time units (the paper's
  /// periodic synchronization for unbalanced loads).
  double counter_sync_interval = 0.0;

  WorkloadOptions workload;
  uint64_t seed = 1;
};

/// Aggregate result of a DMT(k) run.
struct DmtResult {
  uint64_t committed = 0;
  uint64_t aborts = 0;
  uint64_t gave_up = 0;
  uint64_t messages_sent = 0;   // Network messages (remote hops only).
  uint64_t lock_waits = 0;      // Times an object lock was queued behind.
  uint64_t ops_scheduled = 0;
  double makespan = 0.0;
  double avg_response_time = 0.0;

  /// Operations scheduled at each site (load balance view).
  std::vector<uint64_t> ops_per_site;

  /// Globally ordered accepted operations of committed transactions; the
  /// audit input (must be DSR).
  Log committed_history;
};

/// Runs the decentralized simulation. Deterministic given options.seed.
DmtResult RunDmtSimulation(const DmtOptions& options);

}  // namespace mdts

#endif  // MDTS_DIST_DMT_SYSTEM_H_
