#include "dist/dmt_system.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>
#include <queue>
#include <set>

#include "common/backoff.h"
#include "common/bench_clock.h"
#include "common/rng.h"
#include "core/types.h"
#include "core/vector_table.h"
#include "obs/trace.h"

namespace mdts {

namespace {

// Global lockable-object numbering: the predefined linear order of Section
// V-B. All item records precede all timestamp vectors, each ordered by id;
// since an operation must consult the item record first (to learn RT/WT)
// and vector ids are all larger, every context acquires locks in strictly
// ascending order and no deadlock can occur.
using ObjectId = uint64_t;

struct Event {
  double time = 0.0;
  uint64_t seq = 0;
  enum class Kind {
    kIssue,           // Transaction issues its next op (or commits).
    kRestart,         // Aborted transaction restarts.
    kLockArrive,      // Lock request arrives at the object's home site.
    kGrantArrive,     // Grant (with value) arrives back at the context.
    kReleaseArrive,   // Release (with writeback) arrives at the home site.
    kCounterSync,     // Periodic ucount/lcount synchronization.
    kRequestTimeout,  // Context-local timer: the expected grant is missing.
    kLeaseExpire,     // Home-site timer: the holder kept the lock too long.
    kSiteCrash,       // Scheduled whole-site failure (volatile state lost).
    kSiteRecover,     // Site rejoins; counters rebuilt via the sync path.
    kSample,          // Periodic sampler tick on simulated time.
  } kind = Kind::kIssue;
  TxnId txn = 0;
  uint64_t ctx = 0;
  ObjectId object = 0;
  // Lock generation (grants/releases/leases) or request epoch (timeouts);
  // doubles as the site id for kSiteCrash/kSiteRecover.
  uint64_t gen = 0;

  // Compact TraceContext, filled only on remote sends of a traced run:
  // send time, the sender transaction's open segment span (the hop's
  // parent), and how many positions of the transaction's MT(k) vector were
  // defined at send time. Definedness only grows within an incarnation
  // (Definition 6 refines the vector monotonically), which is the order
  // tools/critical_path.py re-audits over a transaction's hops. Zero for
  // local calls and untraced runs; never consulted by the protocol itself.
  double sent = 0.0;
  uint64_t parent_span = 0;
  uint8_t sent_defined = 0;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct HeldLock {
  ObjectId object = 0;
  uint64_t generation = 0;  // Generation we were granted; stale if bumped.
};

struct OpContext {
  TxnId txn = 0;
  uint32_t incarnation = 0;  // Incarnation of `txn` that issued this op.
  Op op;
  uint32_t site = 0;           // Site executing the schedule (item's home).
  std::vector<ObjectId> lock_plan;  // Ascending; grows after item lock.
  size_t next_lock = 0;
  std::vector<HeldLock> held;  // Locks granted so far, with generations.
  uint32_t retries = 0;        // Re-sends of the current lock request.
  uint64_t request_epoch = 0;  // Bumped per (re)send; stales old timeouts.
  bool item_locked = false;
  bool dead = false;           // Abandoned: crash, timeout, lease loss.
  bool done = false;
};

struct LockState {
  bool held = false;
  uint64_t holder_ctx = 0;
  // Bumped on every grant and every reclaim/wipe, so grants, releases and
  // lease timers from a previous ownership are recognized as stale.
  uint64_t generation = 0;
  std::deque<uint64_t> waiters;
};

struct TxnRuntime {
  std::vector<Op> program;
  size_t next_op = 0;
  uint32_t attempts = 0;
  uint32_t incarnation = 0;
  uint32_t consecutive_aborts = 0;
  bool aborted = false;
  bool done = false;
  bool started = false;
  bool committed = false;
  uint32_t committed_incarnation = 0;
  double first_start = 0.0;
};

// Per-transaction tracer state: the currently open segment span plus the
// closed spans and per-class sums accumulated across the transaction's
// whole attempt chain (one root spans every incarnation). Reset to the
// default state when the finished path is extracted.
struct TxnTrace {
  uint64_t root = 0;      // Root span id; 0 = not started (or extracted).
  uint64_t seg_span = 0;  // Open segment span id; 0 = none open.
  DistSegment seg = DistSegment::kProcessing;
  uint32_t seg_site = 0;
  uint32_t seg_inc = 0;    // Incarnation at segment open.
  double seg_start = 0.0;  // Simulated open time.
  uint64_t seg_us[kNumDistSegments] = {};
  std::vector<DistSpan> spans;  // Kept only when a PathCollector is attached.
};

// Globally ordered record of accepted operations, filtered at the end to
// committed incarnations for the serializability audit.
struct ExecutedOp {
  Op op;
  uint32_t incarnation = 0;
};

struct Access {
  TxnId txn = kVirtualTxn;
  uint32_t incarnation = 0;
};

struct ItemState {
  std::vector<Access> readers;
  std::vector<Access> writers;
};

class DmtSim {
 public:
  explicit DmtSim(const DmtOptions& options)
      : options_(options),
        rng_(options.seed),
        injector_(options.fault, options.seed * 0x9E3779B97F4A7C15ULL + 0xC2),
        table_(options.k) {
    // Effective fault-tolerance knobs. On a clean run both stay disabled,
    // making the simulation bit-identical to the fault-free event loop.
    timeout_ = options_.request_timeout;
    if (timeout_ <= 0.0 && options_.fault.any_faults()) {
      // Generous vs. one round trip plus jitter: spurious retries are only
      // wasted messages (requests are idempotent), but a tight timeout
      // thrashes under contention.
      timeout_ = 4.0 * (options_.message_latency + options_.fault.jitter) + 1.0;
    }
    lease_ = options_.lock_lease;
    if (lease_ <= 0.0 && options_.fault.any_faults()) {
      // Long enough for a normal multi-lock acquisition; a holder that is
      // slower than this aborts-and-retries, which is safe (the decision
      // is validated against lock generations before it is made).
      lease_ = 12.0 * std::max(timeout_, 1.0);
    }
    retry_backoff_ = BackoffPolicy{timeout_, 2.0, 4.0 * timeout_};
    double restart_mult = options_.restart_backoff_multiplier;
    if (restart_mult <= 0.0) {
      // Auto: growth only pays off when outages make retries futile; on a
      // clean run a flat jittered delay keeps throughput (and matches the
      // closed-loop simulator's policy).
      restart_mult = options_.fault.any_faults() ? 2.0 : 1.0;
    }
    restart_backoff_ = BackoffPolicy{
        options_.restart_delay, restart_mult,
        options_.restart_backoff_cap > 0.0 ? options_.restart_backoff_cap
                                           : 8.0 * options_.restart_delay};
    registry_ = options_.metrics != nullptr ? options_.metrics
                                            : &GlobalMetrics();
    h_response_ = registry_->GetHistogram("dmt.response_time_us");
    h_backoff_ = registry_->GetHistogram("dmt.restart_backoff_us");
    c_committed_ = registry_->GetCounter("dmt.committed");
    for (size_t r = 1; r < kNumAbortReasons; ++r) {
      c_aborts_[r] = registry_->GetCounter(
          std::string("dmt.aborts.") +
          AbortReasonName(static_cast<AbortReason>(r)));
    }
    g_consec_aborts_ = registry_->GetGauge("dmt.max_consecutive_aborts");
    tracing_ = options_.spans != nullptr || options_.paths != nullptr;
    trace_mask_ = options_.trace_sample_shift >= 32
                      ? ~uint64_t{0}
                      : (uint64_t{1} << options_.trace_sample_shift) - 1;
    if (tracing_) {
      for (size_t s = 0; s < kNumDistSegments; ++s) {
        const char* seg = DistSegmentName(static_cast<DistSegment>(s));
        h_path_[s] = registry_->GetHistogram(std::string("dmt.path.") + seg +
                                             "_us");
        c_cpath_[s] = registry_->GetCounter(
            std::string("dmt.critical_path.") + seg + "_us");
      }
      c_cpath_total_ = registry_->GetCounter("dmt.critical_path.total_us");
    }
  }

  DmtResult Run();

 private:
  uint32_t ItemSite(ItemId x) const { return x % options_.num_sites; }
  uint32_t VectorSite(TxnId t) const { return t % options_.num_sites; }
  ObjectId ItemObject(ItemId x) const { return x; }
  ObjectId VectorObject(TxnId t) const {
    return static_cast<ObjectId>(num_items_) + t;
  }
  uint32_t ObjectSite(ObjectId o) const {
    return o < num_items_ ? ItemSite(static_cast<ItemId>(o))
                          : VectorSite(static_cast<TxnId>(o - num_items_));
  }

  TimestampVector& Ts(TxnId t) { return table_.MutableTs(t); }

  ItemState& Item(ItemId x) {
    if (items_.size() <= x) items_.resize(x + 1);
    return items_[x];
  }

  bool IsLive(const Access& a) {
    const TxnRuntime& rt = txns_[a.txn];
    return a.txn == kVirtualTxn ||
           (a.incarnation == rt.incarnation && !rt.aborted);
  }

  TxnId TopLive(std::vector<Access>* stack) {
    while (!stack->empty() && !IsLive(stack->back())) stack->pop_back();
    return stack->empty() ? kVirtualTxn : stack->back().txn;
  }

  /// A context that may still act: not abandoned, not finished, and its
  /// transaction's current incarnation is still the one that issued it.
  bool CtxActive(uint64_t ctx_id) const {
    const OpContext& ctx = contexts_[ctx_id];
    const TxnRuntime& rt = txns_[ctx.txn];
    return !ctx.dead && !ctx.done && !rt.done && !rt.aborted &&
           rt.incarnation == ctx.incarnation;
  }

  /// Globally unique last-column value from a site's upper counter: the
  /// paper's "concatenate the site number as low order bits".
  TsElement UpperValue(uint32_t site) {
    const TsElement v = ucount_[site] * options_.num_sites + site;
    ucount_[site] += 1;
    return v;
  }
  TsElement LowerValue(uint32_t site) {
    const TsElement v = lcount_[site] * options_.num_sites + site;
    lcount_[site] -= 1;
    return v;
  }

  /// Simulated time in integer microseconds, the unit of the pid-2 trace
  /// lanes (one simulated time unit = 1 ms of trace time).
  uint64_t SimUs() const { return static_cast<uint64_t>(now_ * 1000.0); }

  /// Algorithm 1's Set(j, i) with per-site counters for the last column.
  /// On false, `why` receives the classified cause.
  bool DistSet(TxnId j, TxnId i, uint32_t site, AbortReason* why);

  /// Full scheduling decision for a context whose locks are all held.
  /// On false, `why` receives the classified cause.
  bool Decide(OpContext* ctx, AbortReason* why);

  void Push(double time, Event::Kind kind, TxnId txn, uint64_t ctx,
            ObjectId object, uint64_t gen = 0);
  void Send(uint32_t from, uint32_t to, Event::Kind kind, TxnId txn,
            uint64_t ctx, ObjectId object, uint64_t gen = 0);
  void StartNextTxn(double at);
  void IssueNext(TxnId txn, double at);
  void BeginLocking(uint64_t ctx_id);
  void RequestLock(uint64_t ctx_id, ObjectId object);
  void Grant(ObjectId object, LockState* lock, uint64_t ctx_id);
  void GrantNextWaiter(ObjectId object, LockState* lock);
  void OnLockArrive(const Event& ev);
  void OnGrantArrive(const Event& ev);
  void OnReleaseArrive(const Event& ev);
  void OnRequestTimeout(const Event& ev);
  void OnLeaseExpire(const Event& ev);
  void OnSiteCrash(uint32_t site);
  void OnSiteRecover(uint32_t site);
  void ResyncCounters();
  void FinishOp(uint64_t ctx_id);
  void ReleaseHeld(uint64_t ctx_id);
  bool AbandonContext(uint64_t ctx_id, AbortReason reason);
  void HandleAbort(TxnId txn, AbortReason reason);
  void MaybeCompactVectors();
  void PublishMetrics();

  // --- Distributed tracer (active iff options_.spans or options_.paths;
  // every hook is gated on tracing_, draws no randomness and pushes no
  // events, so a traced run's simulation is bit-identical to untraced) ---
  uint64_t Us(double t) const { return static_cast<uint64_t>(t * 1000.0); }
  uint8_t DefinedCount(const TimestampVector& v) const;
  uint64_t NewSpanId() { return ++next_span_id_; }
  void RecordSpan(TxnId txn, const DistSpan& span);
  void OpenSeg(TxnId txn, DistSegment seg, uint32_t site);
  void CloseSeg(TxnId txn, bool aborted);
  void SegTransition(TxnId txn, DistSegment seg, uint32_t site);
  void RecordHop(const Event& ev, uint32_t site);
  void IgnoreHop(const Event& ev);
  void ExtractPath(TxnId txn, bool committed);

  DmtOptions options_;
  Rng rng_;
  FaultInjector injector_;
  BackoffPolicy retry_backoff_;
  BackoffPolicy restart_backoff_;
  double timeout_ = 0.0;
  double lease_ = 0.0;
  DmtResult result_;
  double now_ = 0.0;
  uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;

  uint32_t num_items_ = 0;
  std::vector<TxnRuntime> txns_;
  // Timestamp storage with a releasable base: MaybeCompactVectors() keeps
  // its footprint bounded by the live transaction span instead of num_txns.
  VectorTable table_;
  uint64_t finishes_since_compact_ = 0;
  std::vector<ItemState> items_;
  std::map<ObjectId, LockState> locks_;
  std::vector<OpContext> contexts_;
  std::vector<TsElement> ucount_;
  std::vector<TsElement> lcount_;
  std::vector<bool> site_up_;
  std::vector<ExecutedOp> executed_;
  std::vector<double> response_times_;
  TxnId next_to_start_ = 1;
  double total_response_ = 0.0;

  // Registry (never null: DmtOptions::metrics or GlobalMetrics()). The
  // headline instruments record live per event - commits, per-reason
  // aborts, the consecutive-abort gauge, and the two histograms - so an
  // attached sampler sees windowed rates; the remaining counters are
  // published once by PublishMetrics() at the end of Run().
  MetricsRegistry* registry_ = nullptr;
  Histogram* h_response_ = nullptr;
  Histogram* h_backoff_ = nullptr;
  Counter* c_committed_ = nullptr;
  Counter* c_aborts_[kNumAbortReasons] = {};
  Gauge* g_consec_aborts_ = nullptr;

  // Distributed tracer state (see the helper block above).
  bool tracing_ = false;
  uint64_t trace_mask_ = 0;  ///< Txn sampled iff (txn & trace_mask_) == 0.
  uint64_t next_span_id_ = 0;
  std::vector<TxnTrace> traces_;
  Histogram* h_path_[kNumDistSegments] = {};
  Counter* c_cpath_[kNumDistSegments] = {};
  Counter* c_cpath_total_ = nullptr;
};

void DmtSim::Push(double time, Event::Kind kind, TxnId txn, uint64_t ctx,
                  ObjectId object, uint64_t gen) {
  queue_.push(Event{time, ++seq_, kind, txn, ctx, object, gen});
}

void DmtSim::Send(uint32_t from, uint32_t to, Event::Kind kind, TxnId txn,
                  uint64_t ctx, ObjectId object, uint64_t gen) {
  if (!site_up_[from]) return;  // A dead site sends nothing.
  if (from == to) {
    // Local call: no network traversal, immune to message faults.
    Push(now_, kind, txn, ctx, object, gen);
    return;
  }
  ++result_.messages_sent;
  MDTS_TRACE_AT_ARG("dmt.send", 'i', 2, from, SimUs(), "to", to);
  const std::vector<double> deliveries =
      injector_.Deliveries(options_.message_latency);
  if (deliveries.empty()) {
    ++result_.messages_dropped;
    MDTS_TRACE_AT_ARG("dmt.drop", 'i', 2, from, SimUs(), "to", to);
  }
  if (deliveries.size() > 1) {
    result_.messages_duplicated += deliveries.size() - 1;
  }
  // TraceContext: every copy of the message carries the same send-time
  // snapshot, so a duplicated delivery is recognizable as the same hop.
  double sent = 0.0;
  uint64_t parent_span = 0;
  uint8_t sent_defined = 0;
  if (tracing_ && txn != 0 && !txns_[txn].done && traces_[txn].root != 0) {
    sent = now_;
    parent_span = traces_[txn].seg_span;
    sent_defined = DefinedCount(Ts(txn));
  }
  for (double latency : deliveries) {
    Event e{now_ + latency, ++seq_, kind, txn, ctx, object, gen};
    e.sent = sent;
    e.parent_span = parent_span;
    e.sent_defined = sent_defined;
    queue_.push(e);
  }
}

uint8_t DmtSim::DefinedCount(const TimestampVector& v) const {
  uint8_t n = 0;
  for (size_t m = 0; m < v.size(); ++m) {
    if (v.IsDefined(m)) ++n;
  }
  return n;
}

void DmtSim::RecordSpan(TxnId txn, const DistSpan& span) {
  ++result_.spans_closed;
  if (span.aborted) ++result_.spans_aborted;
  if (options_.spans != nullptr) options_.spans->Record(span.site, span);
  if (options_.paths != nullptr) traces_[txn].spans.push_back(span);
}

void DmtSim::OpenSeg(TxnId txn, DistSegment seg, uint32_t site) {
  TxnTrace& tr = traces_[txn];
  tr.seg_span = NewSpanId();
  ++result_.spans_opened;
  tr.seg = seg;
  tr.seg_site = site;
  tr.seg_inc = txns_[txn].incarnation;
  tr.seg_start = now_;
}

void DmtSim::CloseSeg(TxnId txn, bool aborted) {
  TxnTrace& tr = traces_[txn];
  if (tr.seg_span == 0) return;
  DistSpan s;
  s.id = tr.seg_span;
  s.parent = tr.root;
  s.txn = txn;
  s.incarnation = tr.seg_inc;
  s.site = tr.seg_site;
  s.segment = tr.seg;
  s.aborted = aborted;
  s.start_us = Us(tr.seg_start);
  s.end_us = SimUs();
  s.defined = DefinedCount(Ts(txn));
  tr.seg_us[static_cast<size_t>(tr.seg)] += s.end_us - s.start_us;
  tr.seg_span = 0;
  RecordSpan(txn, s);
}

void DmtSim::SegTransition(TxnId txn, DistSegment seg, uint32_t site) {
  if (!tracing_) return;
  TxnTrace& tr = traces_[txn];
  if (tr.root == 0) return;
  // Same class at the same site (e.g. a timeout re-send of the pending
  // request): the open span simply continues.
  if (tr.seg_span != 0 && tr.seg == seg && tr.seg_site == site) return;
  CloseSeg(txn, /*aborted=*/false);
  OpenSeg(txn, seg, site);
}

/// Records the message-hop span of a FRESH delivery - one that actually
/// advances the protocol at `site`. Duplicate, stale and dead-context
/// deliveries go through IgnoreHop instead (first-delivery-wins), so a
/// dup storm never inflates the path.
void DmtSim::RecordHop(const Event& ev, uint32_t site) {
  if (!tracing_ || ev.parent_span == 0) return;  // Untraced or a local call.
  if (traces_[ev.txn].seg_span != ev.parent_span) {
    // Superseded causal context: the segment open at send time has already
    // closed (e.g. a crash wiped the wait queue, the retry re-sent from a
    // fresh segment, and then a jitter-delayed copy of the ORIGINAL send
    // landed). The protocol action proceeds regardless; only the trace
    // files the delivery as stale, keeping parent-covers-child intact.
    ++result_.dup_hops_ignored;
    return;
  }
  DistSpan s;
  s.id = NewSpanId();
  ++result_.spans_opened;  // A hop opens and closes in one step.
  s.parent = ev.parent_span;
  s.txn = ev.txn;
  s.incarnation = contexts_[ev.ctx].incarnation;
  s.site = site;
  s.segment = DistSegment::kNetwork;
  s.hop = true;
  s.start_us = Us(ev.sent);
  s.end_us = SimUs();
  s.defined = ev.sent_defined;
  ++result_.hops_recorded;
  RecordSpan(ev.txn, s);
}

void DmtSim::IgnoreHop(const Event& ev) {
  if (tracing_ && ev.parent_span != 0) ++result_.dup_hops_ignored;
}

/// Closes the finished transaction's root span and publishes its critical
/// path. Because the segment classes partition [first_start, now], the
/// per-class sums telescope to exactly the end-to-end latency in integer
/// microseconds - the reconciliation tools/critical_path.py re-checks.
void DmtSim::ExtractPath(TxnId txn, bool committed) {
  TxnTrace& tr = traces_[txn];
  if (tr.root == 0) return;
  ++result_.spans_closed;  // The root closes with the transaction itself.
  uint64_t total = 0;
  for (size_t s = 0; s < kNumDistSegments; ++s) {
    const uint64_t us = tr.seg_us[s];
    result_.path_seg_us[s] += us;
    total += us;
    c_cpath_[s]->Add(us);
    if (us > 0) h_path_[s]->RecordWithExemplar(us, txn);
  }
  result_.path_total_us += total;
  c_cpath_total_->Add(total);
  ++result_.paths_extracted;
  MDTS_TRACE_AT_ARG("dmt.path", 'i', 2, VectorSite(txn), SimUs(), "txn", txn);
  if (options_.paths != nullptr) {
    TxnPathRecord rec;
    rec.txn = txn;
    rec.committed = committed;
    rec.attempts = txns_[txn].incarnation + 1;
    rec.root = tr.root;
    rec.start_us = Us(txns_[txn].first_start);
    rec.end_us = SimUs();
    for (size_t s = 0; s < kNumDistSegments; ++s) rec.seg_us[s] = tr.seg_us[s];
    rec.spans = std::move(tr.spans);
    const TimestampVector& v = Ts(txn);
    rec.k = v.size();
    const size_t keep = std::min(v.size(), FlightRecorder::kMaxVecElements);
    for (size_t m = 0; m < keep; ++m) {
      rec.vec.push_back(v.IsDefined(m) ? v.Get(m) : kUndefinedElement);
    }
    options_.paths->Add(std::move(rec));
  }
  tr = TxnTrace{};  // root back to 0: extracted, frees the span storage.
}

bool DmtSim::DistSet(TxnId j, TxnId i, uint32_t site, AbortReason* why) {
  if (j == i) return true;
  const VectorCompareResult cr = Compare(Ts(j), Ts(i));
  const size_t m = cr.index;
  const size_t k = options_.k;
  TimestampVector& tj = Ts(j);
  TimestampVector& ti = Ts(i);
  switch (cr.order) {
    case VectorOrder::kLess:
      return true;
    case VectorOrder::kGreater:
      *why = AbortReason::kLexOrder;
      return false;
    case VectorOrder::kIdentical:
      *why = AbortReason::kEncodingExhausted;
      return false;
    case VectorOrder::kEqual:
      if (m + 1 == k) {
        tj.Set(m, UpperValue(site));
        ti.Set(m, UpperValue(site));
      } else {
        tj.Set(m, 1);
        ti.Set(m, 2);
      }
      return true;
    case VectorOrder::kUndetermined:
      if (!ti.IsDefined(m)) {
        ti.Set(m, m + 1 == k ? UpperValue(site) : tj.Get(m) + 1);
      } else {
        tj.Set(m, m + 1 == k ? LowerValue(site) : ti.Get(m) - 1);
      }
      return true;
  }
  *why = AbortReason::kEncodingExhausted;
  return false;
}

bool DmtSim::Decide(OpContext* ctx, AbortReason* why) {
  const TxnId i = ctx->txn;
  ItemState& item = Item(ctx->op.item);
  const TxnId jr = TopLive(&item.readers);
  const TxnId jw = TopLive(&item.writers);
  const TxnId j =
      Compare(Ts(jr), Ts(jw)).order == VectorOrder::kLess ? jw : jr;
  TxnRuntime& rt = txns_[i];
  if (ctx->op.type == OpType::kRead) {
    if (DistSet(j, i, ctx->site, why)) {
      item.readers.push_back({i, rt.incarnation});
      return true;
    }
    // Old-read path; on failure *why keeps the DistSet(j, i) cause.
    if (j == jr && Compare(Ts(jw), Ts(i)).order == VectorOrder::kLess) {
      return true;
    }
    return false;
  }
  if (DistSet(j, i, ctx->site, why)) {
    item.writers.push_back({i, rt.incarnation});
    return true;
  }
  return false;
}

void DmtSim::StartNextTxn(double at) {
  if (next_to_start_ > options_.num_txns) return;
  const TxnId t = next_to_start_++;
  txns_[t].started = true;
  txns_[t].first_start = at;
  Push(at, Event::Kind::kIssue, t, 0, 0);
}

void DmtSim::IssueNext(TxnId txn, double at) {
  Push(at, Event::Kind::kIssue, txn, 0, 0);
}

void DmtSim::BeginLocking(uint64_t ctx_id) {
  OpContext& ctx = contexts_[ctx_id];
  ctx.lock_plan = {ItemObject(ctx.op.item)};
  ctx.next_lock = 0;
  RequestLock(ctx_id, ctx.lock_plan[0]);
}

void DmtSim::RequestLock(uint64_t ctx_id, ObjectId object) {
  OpContext& ctx = contexts_[ctx_id];
  // The context is now blocked on the wire toward the object's home site;
  // transitioning BEFORE the send makes the new network span the parent
  // the request hop is recorded under (parent covers child).
  SegTransition(ctx.txn, DistSegment::kNetwork, ObjectSite(object));
  ++ctx.request_epoch;  // Stales any outstanding timeout for this context.
  Send(ctx.site, ObjectSite(object), Event::Kind::kLockArrive, ctx.txn,
       ctx_id, object);
  if (timeout_ > 0.0) {
    Push(now_ + retry_backoff_.EqualJitterDelay(ctx.retries, &rng_),
         Event::Kind::kRequestTimeout, ctx.txn, ctx_id, object,
         ctx.request_epoch);
  }
}

void DmtSim::Grant(ObjectId object, LockState* lock, uint64_t ctx_id) {
  lock->held = true;
  lock->holder_ctx = ctx_id;
  ++lock->generation;
  if (lease_ > 0.0) {
    Push(now_ + lease_, Event::Kind::kLeaseExpire, 0, ctx_id, object,
         lock->generation);
  }
  OpContext& ctx = contexts_[ctx_id];
  // The grant travels back: a queued waiter leaves lock_wait for the wire
  // (an immediate grant is already in the request's network segment).
  SegTransition(ctx.txn, DistSegment::kNetwork, ObjectSite(object));
  Send(ObjectSite(object), ctx.site, Event::Kind::kGrantArrive, ctx.txn,
       ctx_id, object, lock->generation);
}

void DmtSim::GrantNextWaiter(ObjectId object, LockState* lock) {
  while (!lock->waiters.empty()) {
    const uint64_t next = lock->waiters.front();
    lock->waiters.pop_front();
    if (!CtxActive(next)) continue;  // Waiter died while queued.
    Grant(object, lock, next);
    return;
  }
}

void DmtSim::OnLockArrive(const Event& ev) {
  if (!CtxActive(ev.ctx)) {
    IgnoreHop(ev);
    return;  // Stale request; never grant to the dead.
  }
  LockState& lock = locks_[ev.object];
  if (lock.held) {
    if (lock.holder_ctx == ev.ctx) {
      // Duplicate request after a lost grant: re-send the grant (requests
      // are idempotent).
      IgnoreHop(ev);
      Send(ObjectSite(ev.object), contexts_[ev.ctx].site,
           Event::Kind::kGrantArrive, ev.txn, ev.ctx, ev.object,
           lock.generation);
      return;
    }
    const bool queued =
        std::find(lock.waiters.begin(), lock.waiters.end(), ev.ctx) !=
        lock.waiters.end();
    if (!queued) {
      // Fresh request that has to wait: record its hop under the sender's
      // network segment, then move the transaction into lock_wait at the
      // object's home site until a grant frees it.
      RecordHop(ev, ObjectSite(ev.object));
      SegTransition(ev.txn, DistSegment::kLockWait, ObjectSite(ev.object));
      ++result_.lock_waits;
      lock.waiters.push_back(ev.ctx);
    } else {
      IgnoreHop(ev);
    }
    return;
  }
  RecordHop(ev, ObjectSite(ev.object));
  Grant(ev.object, &lock, ev.ctx);
}

void DmtSim::OnGrantArrive(const Event& ev) {
  OpContext& ctx = contexts_[ev.ctx];
  if (!CtxActive(ev.ctx)) {
    // The context died while the grant was in flight: hand the lock
    // straight back so waiters advance (the lease would reclaim it anyway).
    IgnoreHop(ev);
    Send(ctx.site, ObjectSite(ev.object), Event::Kind::kReleaseArrive,
         ev.txn, ev.ctx, ev.object, ev.gen);
    return;
  }
  for (const HeldLock& h : ctx.held) {
    if (h.object == ev.object) {
      IgnoreHop(ev);
      return;  // Duplicate of a grant we hold.
    }
  }
  if (ctx.next_lock >= ctx.lock_plan.size() ||
      ctx.lock_plan[ctx.next_lock] != ev.object) {
    IgnoreHop(ev);
    return;  // Stale grant from a superseded acquisition step.
  }
  RecordHop(ev, ctx.site);
  ctx.held.push_back({ev.object, ev.gen});
  ctx.retries = 0;
  ++ctx.request_epoch;  // Cancels the pending timeout for this request.
  if (!ctx.item_locked) {
    // The item record is locked: RT/WT are now stable; extend the plan
    // with the timestamp-vector objects, ascending. The virtual T0's
    // vector is an immutable constant replicated everywhere and needs no
    // lock.
    ctx.item_locked = true;
    ItemState& item = Item(ctx.op.item);
    std::set<TxnId> vec_txns;
    const TxnId jr = TopLive(&item.readers);
    const TxnId jw = TopLive(&item.writers);
    if (jr != kVirtualTxn) vec_txns.insert(jr);
    if (jw != kVirtualTxn) vec_txns.insert(jw);
    vec_txns.insert(ctx.txn);
    for (TxnId t : vec_txns) ctx.lock_plan.push_back(VectorObject(t));
    std::sort(ctx.lock_plan.begin() + 1, ctx.lock_plan.end());
  }
  ++ctx.next_lock;
  if (ctx.next_lock < ctx.lock_plan.size()) {
    RequestLock(ev.ctx, ctx.lock_plan[ctx.next_lock]);
    return;
  }
  FinishOp(ev.ctx);
}

void DmtSim::ReleaseHeld(uint64_t ctx_id) {
  OpContext& ctx = contexts_[ctx_id];
  // One combined writeback/release message per remote object; grants to
  // waiters happen when the release arrives home. Releases carry the
  // granted generation so a reclaimed-and-regranted lock ignores them.
  for (const HeldLock& h : ctx.held) {
    Send(ctx.site, ObjectSite(h.object), Event::Kind::kReleaseArrive,
         ctx.txn, ctx_id, h.object, h.generation);
  }
  ctx.held.clear();
}

void DmtSim::FinishOp(uint64_t ctx_id) {
  OpContext& ctx = contexts_[ctx_id];
  // Defense in depth: the decision must only be made while every lock is
  // still genuinely ours (a lease may have expired or a home site crashed
  // while the last grant was in flight - the normal paths abandon the
  // context first, but mutual exclusion is what DSR rests on).
  for (const HeldLock& h : ctx.held) {
    const LockState& lock = locks_[h.object];
    if (!lock.held || lock.holder_ctx != ctx_id ||
        lock.generation != h.generation) {
      // Mutual exclusion was lost under us (lease reclaim or home-site
      // crash raced the final grant).
      AbandonContext(ctx_id, AbortReason::kLeaseExpired);
      return;
    }
  }
  AbortReason why = AbortReason::kNone;
  const bool accepted = Decide(&ctx, &why);
  ++result_.ops_scheduled;
  result_.ops_per_site[ctx.site] += 1;
  ctx.done = true;
  ReleaseHeld(ctx_id);

  TxnRuntime& rt = txns_[ctx.txn];
  if (accepted) {
    MDTS_TRACE_AT_ARG("dmt.op", 'i', 2, ctx.site, SimUs(), "txn", ctx.txn);
    // The op is scheduled: locks are released and the transaction thinks
    // locally until it issues the next op.
    SegTransition(ctx.txn, DistSegment::kProcessing, ctx.site);
    executed_.push_back(ExecutedOp{ctx.op, rt.incarnation});
    ++rt.next_op;
    IssueNext(ctx.txn, now_ + rng_.Exponential(options_.mean_think_time));
  } else {
    HandleAbort(ctx.txn, why);
  }
}

void DmtSim::OnReleaseArrive(const Event& ev) {
  LockState& lock = locks_[ev.object];
  if (!lock.held || lock.holder_ctx != ev.ctx ||
      lock.generation != ev.gen) {
    return;  // Stale: duplicated release, or the lease already reclaimed.
  }
  lock.held = false;
  GrantNextWaiter(ev.object, &lock);
}

void DmtSim::OnRequestTimeout(const Event& ev) {
  OpContext& ctx = contexts_[ev.ctx];
  if (!CtxActive(ev.ctx)) return;
  if (ev.gen != ctx.request_epoch) return;  // Granted or already re-sent.
  if (ctx.retries >= options_.max_lock_retries) {
    ++result_.timeout_give_ups;
    AbandonContext(ev.ctx, AbortReason::kLockTimeout);
    return;
  }
  ++ctx.retries;
  ++result_.lock_retries;
  RequestLock(ev.ctx, ev.object);
}

void DmtSim::OnLeaseExpire(const Event& ev) {
  LockState& lock = locks_[ev.object];
  if (!lock.held || lock.generation != ev.gen) return;  // Already released.
  ++result_.lease_reclaims;
  MDTS_TRACE_AT_ARG("dmt.lease_reclaim", 'i', 2, ObjectSite(ev.object),
                    SimUs(), "ctx", lock.holder_ctx);
  const uint64_t holder = lock.holder_ctx;
  lock.held = false;
  ++lock.generation;  // In-flight releases from the old holder go stale.
  GrantNextWaiter(ev.object, &lock);
  // If the holder is mid-operation it lost mutual exclusion: abort it. A
  // holder that already decided and released (the release was merely lost
  // or delayed) keeps its result - the reclaim is just cleanup.
  AbandonContext(holder, AbortReason::kLeaseExpired);
}

void DmtSim::OnSiteCrash(uint32_t site) {
  site_up_[site] = false;
  MDTS_TRACE_AT("dmt.site_down", 'B', 2, site, SimUs());
  // Volatile state dies with the site: the lock table is wiped (bumping
  // generations so stale grants, releases and lease timers are ignored)
  // and queued requests are forgotten - their owners time out and retry.
  for (auto& [object, lock] : locks_) {
    if (ObjectSite(object) != site) continue;
    lock.waiters.clear();
    if (lock.held) {
      lock.held = false;
      ++lock.generation;
      if (AbandonContext(lock.holder_ctx, AbortReason::kDownSite)) {
        ++result_.down_site_aborts;
      }
    }
  }
  // Operations coordinated at the site die with it.
  for (size_t c = 0; c < contexts_.size(); ++c) {
    if (contexts_[c].site == site &&
        AbandonContext(c, AbortReason::kDownSite)) {
      ++result_.down_site_aborts;
    }
  }
}

void DmtSim::OnSiteRecover(uint32_t site) {
  site_up_[site] = true;
  MDTS_TRACE_AT("dmt.site_down", 'E', 2, site, SimUs());
  // Recovery rebuilds the site's counter state through the same
  // resynchronization path as the periodic kCounterSync: adopt the global
  // extremes. The site's own last value participates (it is derivable from
  // the durable timestamp vectors it issued), so its upper counter never
  // moves backwards and last-column uniqueness survives the crash.
  ResyncCounters();
}

void DmtSim::ResyncCounters() {
  TsElement umax = 1, lmin = 0;
  for (uint32_t s = 0; s < options_.num_sites; ++s) {
    umax = std::max(umax, ucount_[s]);
    lmin = std::min(lmin, lcount_[s]);
  }
  // Only reachable sites adopt the extremes; a down site keeps its stale
  // (durable) values until its own recovery runs this path.
  for (uint32_t s = 0; s < options_.num_sites; ++s) {
    if (!site_up_[s]) continue;
    ucount_[s] = umax;
    lcount_[s] = lmin;
  }
}

bool DmtSim::AbandonContext(uint64_t ctx_id, AbortReason reason) {
  OpContext& ctx = contexts_[ctx_id];
  if (ctx.dead || ctx.done) return false;
  ctx.dead = true;
  ReleaseHeld(ctx_id);  // Dropped silently if the context's site is down.
  HandleAbort(ctx.txn, reason);
  return true;
}

void DmtSim::PublishMetrics() {
  // One Add per counter at the end of the run: the registry deltas exactly
  // equal this run's DmtResult fields (the reconciliation test's invariant),
  // and the global registry keeps accumulating across runs.
  auto add = [&](const char* name, uint64_t v) {
    registry_->GetCounter(name)->Add(v);
  };
  // "dmt.committed" and "dmt.aborts.<reason>" are NOT published here: they
  // record live (per commit / per abort), which keeps the end-of-run
  // registry deltas identical while letting a sampler derive rates.
  add("dmt.gave_up", result_.gave_up);
  add("dmt.messages_sent", result_.messages_sent);
  add("dmt.messages_dropped", result_.messages_dropped);
  add("dmt.messages_duplicated", result_.messages_duplicated);
  add("dmt.lock_waits", result_.lock_waits);
  add("dmt.lock_retries", result_.lock_retries);
  add("dmt.timeout_give_ups", result_.timeout_give_ups);
  add("dmt.lease_reclaims", result_.lease_reclaims);
  add("dmt.down_site_aborts", result_.down_site_aborts);
  add("dmt.ops_scheduled", result_.ops_scheduled);
  add("dmt.vectors_released", result_.vectors_released);
  // Tracer counters only exist when tracing is attached, so an untraced
  // run's registry is untouched. "dmt.path.*_us" histograms and the
  // "dmt.critical_path.*" counters record live at path extraction.
  if (tracing_) {
    add("dmt.spans_opened", result_.spans_opened);
    add("dmt.spans_closed", result_.spans_closed);
    add("dmt.spans_aborted", result_.spans_aborted);
    add("dmt.hops_recorded", result_.hops_recorded);
    add("dmt.dup_hops_ignored", result_.dup_hops_ignored);
    add("dmt.paths_extracted", result_.paths_extracted);
  }
}

void DmtSim::MaybeCompactVectors() {
  // Called on every transaction finish (commit or give-up); the actual
  // sweep runs every 32 finishes to amortize the item-table scan.
  if (++finishes_since_compact_ < 32) return;
  finishes_since_compact_ = 0;
  // An entry below a committed live entry can never become an item's top
  // again (a committed incarnation stays live forever), so dropping that
  // unreachable prefix changes no decision - it only unpins vectors.
  auto truncate = [&](std::vector<Access>* stack) {
    size_t keep = 0;
    for (size_t n = stack->size(); n-- > 0;) {
      const Access& a = (*stack)[n];
      const TxnRuntime& rt = txns_[a.txn];
      if (rt.committed && a.incarnation == rt.committed_incarnation) {
        keep = n;
        break;
      }
    }
    if (keep > 0) stack->erase(stack->begin(), stack->begin() + keep);
  };
  for (ItemState& item : items_) {
    truncate(&item.readers);
    truncate(&item.writers);
  }
  // Smallest id whose vector may still be consulted: any unfinished
  // transaction (its vector can still grow or reset) or any id an item
  // stack still references (RT/WT resolution compares against it).
  TxnId min_live = next_to_start_;
  for (TxnId t = 1; t < next_to_start_; ++t) {
    if (!txns_[t].done) {
      min_live = t;
      break;
    }
  }
  for (const ItemState& item : items_) {
    for (const Access& a : item.readers) {
      if (a.txn != kVirtualTxn) min_live = std::min(min_live, a.txn);
    }
    for (const Access& a : item.writers) {
      if (a.txn != kVirtualTxn) min_live = std::min(min_live, a.txn);
    }
  }
  result_.vectors_released += table_.ReleaseBelow(min_live);
}

void DmtSim::HandleAbort(TxnId txn, AbortReason reason) {
  TxnRuntime& rt = txns_[txn];
  if (rt.done || rt.aborted) return;
  rt.aborted = true;
  // Whatever segment the incarnation died in - mid-wire, queued behind a
  // lock on a crashing site, mid-decision - is closed-as-aborted here, so
  // spans never leak across crashes, lease reclaims or timeouts.
  if (tracing_) CloseSeg(txn, /*aborted=*/true);
  ++result_.aborts;
  result_.abort_reasons.Add(reason);
  c_aborts_[static_cast<size_t>(reason)]->Add(1);
  MDTS_TRACE_AT_ARG(AbortReasonName(reason), 'i', 2, VectorSite(txn),
                    SimUs(), "txn", txn);
  if (options_.flight != nullptr) {
    // DMT aborts (timeouts, lease reclaims, down sites) have no single
    // blocking transaction; the vector still tells the auditor how far the
    // incarnation's ordering had progressed.
    const uint32_t site = VectorSite(txn);
    options_.flight->RecordAbort(site, txn, reason, /*blocker=*/0,
                                 /*op=*/nullptr,
                                 site < 32 ? (1u << site) : 0, &Ts(txn),
                                 SimUs());
  }
  ++rt.attempts;
  ++rt.consecutive_aborts;
  result_.max_consecutive_aborts = std::max<uint64_t>(
      result_.max_consecutive_aborts, rt.consecutive_aborts);
  // Live starvation signal: the windowed per-transaction peak a sampler's
  // watchdog consumes (and resets) every sampling window.
  g_consec_aborts_->SetMax(rt.consecutive_aborts);
  if (rt.attempts >= options_.max_attempts) {
    ++result_.gave_up;
    rt.done = true;
    if (tracing_) ExtractPath(txn, /*committed=*/false);
    MaybeCompactVectors();
    StartNextTxn(now_ + options_.restart_delay);
    return;
  }
  // Jittered, capped-exponential restart delay (shared BackoffPolicy; see
  // sim/simulator.cc): jitter prevents lockstep retry livelocks between
  // mutually conflicting transactions, growth sheds load during outages.
  const double delay =
      restart_backoff_.ExpJitterDelay(rt.consecutive_aborts - 1, &rng_);
  h_backoff_->Record(static_cast<uint64_t>(delay * 1000.0));
  if (tracing_) {
    // The restart wait is part of the path. Crash-induced retries get
    // their own class so the crashed share stays visible in the breakdown.
    OpenSeg(txn,
            reason == AbortReason::kDownSite ? DistSegment::kSiteDownRetry
                                             : DistSegment::kBackoff,
            VectorSite(txn));
  }
  Push(now_ + delay, Event::Kind::kRestart, txn, 0, 0);
}

DmtResult DmtSim::Run() {
  WorkloadOptions w = options_.workload;
  w.num_txns = options_.num_txns;
  Rng wrng(options_.seed * 6151 + 3);
  const auto programs = GenerateTxnPrograms(w, &wrng);
  num_items_ = w.num_items;

  txns_.resize(options_.num_txns + 1);
  if (tracing_) traces_.resize(options_.num_txns + 1);
  for (TxnId t = 1; t <= options_.num_txns; ++t) {
    txns_[t].program = programs[t - 1];
  }
  ucount_.assign(options_.num_sites, 1);
  lcount_.assign(options_.num_sites, 0);
  site_up_.assign(options_.num_sites, true);
  result_.ops_per_site.assign(options_.num_sites, 0);

  const uint32_t initial = std::min(options_.concurrency, options_.num_txns);
  for (uint32_t c = 0; c < initial; ++c) {
    StartNextTxn(rng_.Exponential(options_.mean_think_time) * 0.1);
  }
  if (options_.counter_sync_interval > 0) {
    Push(options_.counter_sync_interval, Event::Kind::kCounterSync, 0, 0, 0);
  }
  if (options_.sampler != nullptr && options_.sample_interval > 0) {
    Push(options_.sample_interval, Event::Kind::kSample, 0, 0, 0);
  }
  for (const SiteCrash& crash : options_.fault.crashes) {
    if (crash.site >= options_.num_sites) continue;
    Push(crash.crash_time, Event::Kind::kSiteCrash, 0, 0, 0, crash.site);
    if (std::isfinite(crash.recover_time) &&
        crash.recover_time > crash.crash_time) {
      Push(crash.recover_time, Event::Kind::kSiteRecover, 0, 0, 0,
           crash.site);
    }
  }

  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    switch (ev.kind) {
      case Event::Kind::kCounterSync: {
        // Synchronize reachable sites' counters to the global extremes,
        // modeling the paper's periodic clock synchronization.
        ResyncCounters();
        // Stop scheduling syncs once all work is done.
        if (result_.committed + result_.gave_up < options_.num_txns) {
          Push(now_ + options_.counter_sync_interval,
               Event::Kind::kCounterSync, 0, 0, 0);
        }
        break;
      }
      case Event::Kind::kSample: {
        // Deterministic windowed telemetry: ticks ride the simulated
        // clock, so equal seeds produce equal series and watchdog alerts.
        options_.sampler->TickOnce(now_);
        if (result_.committed + result_.gave_up < options_.num_txns) {
          Push(now_ + options_.sample_interval, Event::Kind::kSample, 0, 0,
               0);
        }
        break;
      }
      case Event::Kind::kSiteCrash:
        OnSiteCrash(static_cast<uint32_t>(ev.gen));
        break;
      case Event::Kind::kSiteRecover:
        OnSiteRecover(static_cast<uint32_t>(ev.gen));
        break;
      case Event::Kind::kRestart: {
        TxnRuntime& rt = txns_[ev.txn];
        if (rt.done) break;
        rt.aborted = false;
        ++rt.incarnation;
        rt.next_op = 0;
        Ts(ev.txn).Reset();
        // Backoff over: the new incarnation starts processing.
        SegTransition(ev.txn, DistSegment::kProcessing, VectorSite(ev.txn));
        Push(now_, Event::Kind::kIssue, ev.txn, 0, 0);
        break;
      }
      case Event::Kind::kIssue: {
        TxnRuntime& rt = txns_[ev.txn];
        if (rt.done || rt.aborted) break;
        if (tracing_ && traces_[ev.txn].root == 0 &&
            (ev.txn & trace_mask_) == 0) {
          // First issue of a SAMPLED transaction: open its root span and
          // initial processing segment at the vector home site. Unsampled
          // transactions never get a root, and every other tracer hook
          // keys off the root / the send-time parent span, so they pay
          // nothing further.
          traces_[ev.txn].root = NewSpanId();
          ++result_.spans_opened;
          // A typical transaction closes a few dozen spans; reserving up
          // front keeps the per-span push_back off the allocator.
          if (options_.paths != nullptr) traces_[ev.txn].spans.reserve(64);
          OpenSeg(ev.txn, DistSegment::kProcessing, VectorSite(ev.txn));
        }
        if (rt.next_op >= rt.program.size()) {
          ++result_.committed;
          c_committed_->Add(1);
          rt.done = true;
          rt.committed = true;
          rt.committed_incarnation = rt.incarnation;
          rt.consecutive_aborts = 0;
          const double response = now_ - rt.first_start;
          total_response_ += response;
          response_times_.push_back(response);
          h_response_->Record(static_cast<uint64_t>(response * 1000.0));
          MDTS_TRACE_AT_ARG("dmt.commit", 'i', 2, VectorSite(ev.txn),
                            SimUs(), "txn", ev.txn);
          if (options_.flight != nullptr) {
            const uint32_t site = VectorSite(ev.txn);
            options_.flight->RecordCommit(site, ev.txn, Ts(ev.txn),
                                          site < 32 ? (1u << site) : 0, {},
                                          /*phase_us=*/nullptr, SimUs());
          }
          if (tracing_) {
            CloseSeg(ev.txn, /*aborted=*/false);
            ExtractPath(ev.txn, /*committed=*/true);
          }
          MaybeCompactVectors();
          StartNextTxn(now_ +
                       rng_.Exponential(options_.mean_think_time) * 0.1);
          break;
        }
        const Op& op = rt.program[rt.next_op];
        if (!site_up_[ItemSite(op.item)]) {
          // Graceful degradation: the coordinating site is down, so the
          // transaction aborts-and-retries (with backoff) instead of
          // wedging; max_attempts bounds retries if the outage persists.
          ++result_.down_site_aborts;
          HandleAbort(ev.txn, AbortReason::kDownSite);
          break;
        }
        contexts_.push_back(OpContext{});
        OpContext& ctx = contexts_.back();
        ctx.txn = ev.txn;
        ctx.incarnation = rt.incarnation;
        ctx.op = op;
        ctx.site = ItemSite(ctx.op.item);
        BeginLocking(contexts_.size() - 1);
        break;
      }
      case Event::Kind::kLockArrive:
        if (!site_up_[ObjectSite(ev.object)]) {
          ++result_.messages_dropped;  // Receiver is down.
          break;
        }
        OnLockArrive(ev);
        break;
      case Event::Kind::kGrantArrive:
        if (!site_up_[contexts_[ev.ctx].site]) {
          ++result_.messages_dropped;  // Receiver is down.
          break;
        }
        OnGrantArrive(ev);
        break;
      case Event::Kind::kReleaseArrive:
        if (!site_up_[ObjectSite(ev.object)]) {
          ++result_.messages_dropped;  // Receiver is down.
          break;
        }
        OnReleaseArrive(ev);
        break;
      case Event::Kind::kRequestTimeout:
        OnRequestTimeout(ev);
        break;
      case Event::Kind::kLeaseExpire:
        OnLeaseExpire(ev);
        break;
    }
  }

  for (const ExecutedOp& e : executed_) {
    const TxnRuntime& rt = txns_[e.op.txn];
    if (rt.committed && e.incarnation == rt.committed_incarnation) {
      result_.committed_history.Append(e.op);
    }
  }

  result_.makespan = now_;
  if (result_.committed > 0) {
    result_.avg_response_time =
        total_response_ / static_cast<double>(result_.committed);
    result_.p99_response_time = Percentile(response_times_, 99);
  }
  result_.final_live_vectors = table_.live_vectors();
  PublishMetrics();
  if (options_.sampler != nullptr && options_.sample_interval > 0) {
    // Close the series: the final window also captures the end-of-run
    // counter publication above.
    options_.sampler->TickOnce(now_ + options_.sample_interval);
  }
  return result_;
}

}  // namespace

DmtResult RunDmtSimulation(const DmtOptions& options) {
  return DmtSim(options).Run();
}

}  // namespace mdts
