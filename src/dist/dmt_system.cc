#include "dist/dmt_system.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <queue>
#include <set>

#include "common/rng.h"
#include "core/types.h"

namespace mdts {

namespace {

// Global lockable-object numbering: the predefined linear order of Section
// V-B. All item records precede all timestamp vectors, each ordered by id;
// since an operation must consult the item record first (to learn RT/WT)
// and vector ids are all larger, every context acquires locks in strictly
// ascending order and no deadlock can occur.
using ObjectId = uint64_t;

struct Event {
  double time = 0.0;
  uint64_t seq = 0;
  enum class Kind {
    kIssue,         // Transaction issues its next op (or commits).
    kRestart,       // Aborted transaction restarts.
    kLockArrive,    // Lock request arrives at the object's home site.
    kGrantArrive,   // Grant (with value) arrives back at the context.
    kReleaseArrive, // Release (with writeback) arrives at the home site.
    kCounterSync,   // Periodic ucount/lcount synchronization.
  } kind = Kind::kIssue;
  TxnId txn = 0;
  uint64_t ctx = 0;
  ObjectId object = 0;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct OpContext {
  TxnId txn = 0;
  Op op;
  uint32_t site = 0;           // Site executing the schedule (item's home).
  std::vector<ObjectId> lock_plan;  // Ascending; grows after item lock.
  size_t next_lock = 0;
  bool item_locked = false;
  bool done = false;
};

struct LockState {
  bool held = false;
  uint64_t holder_ctx = 0;
  std::deque<uint64_t> waiters;
};

struct TxnRuntime {
  std::vector<Op> program;
  size_t next_op = 0;
  uint32_t attempts = 0;
  uint32_t incarnation = 0;
  bool aborted = false;
  bool done = false;
  bool started = false;
  bool committed = false;
  uint32_t committed_incarnation = 0;
  double first_start = 0.0;
};

// Globally ordered record of accepted operations, filtered at the end to
// committed incarnations for the serializability audit.
struct ExecutedOp {
  Op op;
  uint32_t incarnation = 0;
};

struct Access {
  TxnId txn = kVirtualTxn;
  uint32_t incarnation = 0;
};

struct ItemState {
  std::vector<Access> readers;
  std::vector<Access> writers;
};

class DmtSim {
 public:
  explicit DmtSim(const DmtOptions& options)
      : options_(options), rng_(options.seed) {}

  DmtResult Run();

 private:
  uint32_t ItemSite(ItemId x) const { return x % options_.num_sites; }
  uint32_t VectorSite(TxnId t) const { return t % options_.num_sites; }
  ObjectId ItemObject(ItemId x) const { return x; }
  ObjectId VectorObject(TxnId t) const {
    return static_cast<ObjectId>(num_items_) + t;
  }
  uint32_t ObjectSite(ObjectId o) const {
    return o < num_items_ ? ItemSite(static_cast<ItemId>(o))
                          : VectorSite(static_cast<TxnId>(o - num_items_));
  }

  TimestampVector& Ts(TxnId t) {
    while (vectors_.size() <= t) vectors_.emplace_back(options_.k);
    return vectors_[t];
  }

  ItemState& Item(ItemId x) {
    if (items_.size() <= x) items_.resize(x + 1);
    return items_[x];
  }

  bool IsLive(const Access& a) {
    const TxnRuntime& rt = txns_[a.txn];
    return a.txn == kVirtualTxn ||
           (a.incarnation == rt.incarnation && !rt.aborted);
  }

  TxnId TopLive(std::vector<Access>* stack) {
    while (!stack->empty() && !IsLive(stack->back())) stack->pop_back();
    return stack->empty() ? kVirtualTxn : stack->back().txn;
  }

  /// Globally unique last-column value from a site's upper counter: the
  /// paper's "concatenate the site number as low order bits".
  TsElement UpperValue(uint32_t site) {
    const TsElement v = ucount_[site] * options_.num_sites + site;
    ucount_[site] += 1;
    return v;
  }
  TsElement LowerValue(uint32_t site) {
    const TsElement v = lcount_[site] * options_.num_sites + site;
    lcount_[site] -= 1;
    return v;
  }

  /// Algorithm 1's Set(j, i) with per-site counters for the last column.
  bool DistSet(TxnId j, TxnId i, uint32_t site);

  /// Full scheduling decision for a context whose locks are all held.
  bool Decide(OpContext* ctx);

  void Push(double time, Event::Kind kind, TxnId txn, uint64_t ctx,
            ObjectId object);
  void StartNextTxn(double at);
  void IssueNext(TxnId txn, double at);
  void BeginLocking(uint64_t ctx_id);
  void RequestLock(uint64_t ctx_id, ObjectId object);
  void OnLockArrive(const Event& ev);
  void OnGrantArrive(const Event& ev);
  void OnReleaseArrive(const Event& ev);
  void FinishOp(uint64_t ctx_id);
  void HandleAbort(TxnId txn);

  double Latency(uint32_t from, uint32_t to) {
    if (from == to) return 0.0;
    ++result_.messages_sent;
    return options_.message_latency;
  }

  DmtOptions options_;
  Rng rng_;
  DmtResult result_;
  double now_ = 0.0;
  uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;

  uint32_t num_items_ = 0;
  std::vector<TxnRuntime> txns_;
  std::deque<TimestampVector> vectors_;
  std::vector<ItemState> items_;
  std::map<ObjectId, LockState> locks_;
  std::vector<OpContext> contexts_;
  std::vector<TsElement> ucount_;
  std::vector<TsElement> lcount_;
  std::vector<ExecutedOp> executed_;
  TxnId next_to_start_ = 1;
  double total_response_ = 0.0;
};

void DmtSim::Push(double time, Event::Kind kind, TxnId txn, uint64_t ctx,
                  ObjectId object) {
  queue_.push(Event{time, ++seq_, kind, txn, ctx, object});
}

bool DmtSim::DistSet(TxnId j, TxnId i, uint32_t site) {
  if (j == i) return true;
  const VectorCompareResult cr = Compare(Ts(j), Ts(i));
  const size_t m = cr.index;
  const size_t k = options_.k;
  TimestampVector& tj = Ts(j);
  TimestampVector& ti = Ts(i);
  switch (cr.order) {
    case VectorOrder::kLess:
      return true;
    case VectorOrder::kGreater:
    case VectorOrder::kIdentical:
      return false;
    case VectorOrder::kEqual:
      if (m + 1 == k) {
        tj.Set(m, UpperValue(site));
        ti.Set(m, UpperValue(site));
      } else {
        tj.Set(m, 1);
        ti.Set(m, 2);
      }
      return true;
    case VectorOrder::kUndetermined:
      if (!ti.IsDefined(m)) {
        ti.Set(m, m + 1 == k ? UpperValue(site) : tj.Get(m) + 1);
      } else {
        tj.Set(m, m + 1 == k ? LowerValue(site) : ti.Get(m) - 1);
      }
      return true;
  }
  return false;
}

bool DmtSim::Decide(OpContext* ctx) {
  const TxnId i = ctx->txn;
  ItemState& item = Item(ctx->op.item);
  const TxnId jr = TopLive(&item.readers);
  const TxnId jw = TopLive(&item.writers);
  const TxnId j =
      Compare(Ts(jr), Ts(jw)).order == VectorOrder::kLess ? jw : jr;
  TxnRuntime& rt = txns_[i];
  if (ctx->op.type == OpType::kRead) {
    if (DistSet(j, i, ctx->site)) {
      item.readers.push_back({i, rt.incarnation});
      return true;
    }
    if (j == jr && Compare(Ts(jw), Ts(i)).order == VectorOrder::kLess) {
      return true;
    }
    return false;
  }
  if (DistSet(j, i, ctx->site)) {
    item.writers.push_back({i, rt.incarnation});
    return true;
  }
  return false;
}

void DmtSim::StartNextTxn(double at) {
  if (next_to_start_ > options_.num_txns) return;
  const TxnId t = next_to_start_++;
  txns_[t].started = true;
  txns_[t].first_start = at;
  Push(at, Event::Kind::kIssue, t, 0, 0);
}

void DmtSim::IssueNext(TxnId txn, double at) {
  Push(at, Event::Kind::kIssue, txn, 0, 0);
}

void DmtSim::BeginLocking(uint64_t ctx_id) {
  OpContext& ctx = contexts_[ctx_id];
  ctx.lock_plan = {ItemObject(ctx.op.item)};
  ctx.next_lock = 0;
  RequestLock(ctx_id, ctx.lock_plan[0]);
}

void DmtSim::RequestLock(uint64_t ctx_id, ObjectId object) {
  OpContext& ctx = contexts_[ctx_id];
  const double arrive = now_ + Latency(ctx.site, ObjectSite(object));
  Push(arrive, Event::Kind::kLockArrive, ctx.txn, ctx_id, object);
}

void DmtSim::OnLockArrive(const Event& ev) {
  LockState& lock = locks_[ev.object];
  if (lock.held) {
    ++result_.lock_waits;
    lock.waiters.push_back(ev.ctx);
    return;
  }
  lock.held = true;
  lock.holder_ctx = ev.ctx;
  OpContext& ctx = contexts_[ev.ctx];
  const double back = now_ + Latency(ObjectSite(ev.object), ctx.site);
  Push(back, Event::Kind::kGrantArrive, ctx.txn, ev.ctx, ev.object);
}

void DmtSim::OnGrantArrive(const Event& ev) {
  OpContext& ctx = contexts_[ev.ctx];
  if (!ctx.item_locked) {
    // The item record is locked: RT/WT are now stable; extend the plan
    // with the timestamp-vector objects, ascending. The virtual T0's
    // vector is an immutable constant replicated everywhere and needs no
    // lock.
    ctx.item_locked = true;
    ItemState& item = Item(ctx.op.item);
    std::set<TxnId> vec_txns;
    const TxnId jr = TopLive(&item.readers);
    const TxnId jw = TopLive(&item.writers);
    if (jr != kVirtualTxn) vec_txns.insert(jr);
    if (jw != kVirtualTxn) vec_txns.insert(jw);
    vec_txns.insert(ctx.txn);
    for (TxnId t : vec_txns) ctx.lock_plan.push_back(VectorObject(t));
    std::sort(ctx.lock_plan.begin() + 1, ctx.lock_plan.end());
  }
  ++ctx.next_lock;
  if (ctx.next_lock < ctx.lock_plan.size()) {
    RequestLock(ev.ctx, ctx.lock_plan[ctx.next_lock]);
    return;
  }
  FinishOp(ev.ctx);
}

void DmtSim::FinishOp(uint64_t ctx_id) {
  OpContext& ctx = contexts_[ctx_id];
  const bool accepted = Decide(&ctx);
  ++result_.ops_scheduled;
  result_.ops_per_site[ctx.site] += 1;

  // Write back and unlock every object (one combined message per remote
  // object; grants to waiters happen when the release arrives home).
  for (ObjectId object : ctx.lock_plan) {
    const double arrive = now_ + Latency(ctx.site, ObjectSite(object));
    Push(arrive, Event::Kind::kReleaseArrive, ctx.txn, ctx_id, object);
  }
  ctx.done = true;

  TxnRuntime& rt = txns_[ctx.txn];
  if (accepted) {
    executed_.push_back(ExecutedOp{ctx.op, rt.incarnation});
    ++rt.next_op;
    IssueNext(ctx.txn, now_ + rng_.Exponential(options_.mean_think_time));
  } else {
    rt.aborted = true;
    HandleAbort(ctx.txn);
  }
}

void DmtSim::OnReleaseArrive(const Event& ev) {
  LockState& lock = locks_[ev.object];
  assert(lock.held);
  if (lock.waiters.empty()) {
    lock.held = false;
    return;
  }
  const uint64_t next = lock.waiters.front();
  lock.waiters.pop_front();
  lock.holder_ctx = next;
  OpContext& ctx = contexts_[next];
  const double back = now_ + Latency(ObjectSite(ev.object), ctx.site);
  Push(back, Event::Kind::kGrantArrive, ctx.txn, next, ev.object);
}

void DmtSim::HandleAbort(TxnId txn) {
  TxnRuntime& rt = txns_[txn];
  ++result_.aborts;
  ++rt.attempts;
  if (rt.attempts >= options_.max_attempts) {
    ++result_.gave_up;
    rt.done = true;
    StartNextTxn(now_ + options_.restart_delay);
    return;
  }
  // Jittered restart delay (see sim/simulator.cc): prevents lockstep
  // retry livelocks between mutually conflicting transactions.
  Push(now_ + rng_.Exponential(options_.restart_delay), Event::Kind::kRestart,
       txn, 0, 0);
}

DmtResult DmtSim::Run() {
  WorkloadOptions w = options_.workload;
  w.num_txns = options_.num_txns;
  Rng wrng(options_.seed * 6151 + 3);
  const auto programs = GenerateTxnPrograms(w, &wrng);
  num_items_ = w.num_items;

  txns_.resize(options_.num_txns + 1);
  for (TxnId t = 1; t <= options_.num_txns; ++t) {
    txns_[t].program = programs[t - 1];
  }
  ucount_.assign(options_.num_sites, 1);
  lcount_.assign(options_.num_sites, 0);
  result_.ops_per_site.assign(options_.num_sites, 0);

  const uint32_t initial = std::min(options_.concurrency, options_.num_txns);
  for (uint32_t c = 0; c < initial; ++c) {
    StartNextTxn(rng_.Exponential(options_.mean_think_time) * 0.1);
  }
  if (options_.counter_sync_interval > 0) {
    Push(options_.counter_sync_interval, Event::Kind::kCounterSync, 0, 0, 0);
  }

  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    switch (ev.kind) {
      case Event::Kind::kCounterSync: {
        // Synchronize all local counters to the global extremes, modeling
        // the paper's periodic clock synchronization.
        TsElement umax = 1, lmin = 0;
        for (uint32_t s = 0; s < options_.num_sites; ++s) {
          umax = std::max(umax, ucount_[s]);
          lmin = std::min(lmin, lcount_[s]);
        }
        ucount_.assign(options_.num_sites, umax);
        lcount_.assign(options_.num_sites, lmin);
        // Stop scheduling syncs once all work is done.
        if (result_.committed + result_.gave_up < options_.num_txns) {
          Push(now_ + options_.counter_sync_interval,
               Event::Kind::kCounterSync, 0, 0, 0);
        }
        break;
      }
      case Event::Kind::kRestart: {
        TxnRuntime& rt = txns_[ev.txn];
        if (rt.done) break;
        rt.aborted = false;
        ++rt.incarnation;
        rt.next_op = 0;
        Ts(ev.txn).Reset();
        Push(now_, Event::Kind::kIssue, ev.txn, 0, 0);
        break;
      }
      case Event::Kind::kIssue: {
        TxnRuntime& rt = txns_[ev.txn];
        if (rt.done || rt.aborted) break;
        if (rt.next_op >= rt.program.size()) {
          ++result_.committed;
          rt.done = true;
          rt.committed = true;
          rt.committed_incarnation = rt.incarnation;
          total_response_ += now_ - rt.first_start;
          StartNextTxn(now_ +
                       rng_.Exponential(options_.mean_think_time) * 0.1);
          break;
        }
        contexts_.push_back(OpContext{});
        OpContext& ctx = contexts_.back();
        ctx.txn = ev.txn;
        ctx.op = rt.program[rt.next_op];
        ctx.site = ItemSite(ctx.op.item);
        BeginLocking(contexts_.size() - 1);
        break;
      }
      case Event::Kind::kLockArrive:
        OnLockArrive(ev);
        break;
      case Event::Kind::kGrantArrive:
        OnGrantArrive(ev);
        break;
      case Event::Kind::kReleaseArrive:
        OnReleaseArrive(ev);
        break;
    }
  }

  for (const ExecutedOp& e : executed_) {
    const TxnRuntime& rt = txns_[e.op.txn];
    if (rt.committed && e.incarnation == rt.committed_incarnation) {
      result_.committed_history.Append(e.op);
    }
  }

  result_.makespan = now_;
  if (result_.committed > 0) {
    result_.avg_response_time =
        total_response_ / static_cast<double>(result_.committed);
  }
  return result_;
}

}  // namespace

DmtResult RunDmtSimulation(const DmtOptions& options) {
  return DmtSim(options).Run();
}

}  // namespace mdts
