#ifndef MDTS_NESTED_NESTED_ONLINE_H_
#define MDTS_NESTED_NESTED_ONLINE_H_

#include <string>
#include <vector>

#include "nested/nested_scheduler.h"
#include "sched/scheduler.h"

namespace mdts {

/// Online adapter of MT(k1, ..., kl) to the uniform Scheduler interface.
/// Transactions are assigned to level-1 groups by a caller-provided
/// assignment function evaluated at first contact (round-robin by default),
/// mirroring Example 5's by-site partitioning.
class NestedOnline : public Scheduler {
 public:
  /// groups: number of level-1 groups (round-robin assignment txn -> group
  /// 1 + (txn-1) % groups).
  NestedOnline(std::vector<size_t> ks, GroupId groups)
      : inner_(std::move(ks)), groups_(groups) {}

  std::string name() const override {
    return "MT(k1,k2)x" + std::to_string(groups_);
  }

  void OnBegin(TxnId txn) override {
    // Static membership: register once, keep across restarts.
    (void)inner_.RegisterTxn(txn, {1 + (txn - 1) % groups_});
  }

  SchedOutcome OnOperation(const Op& op) override {
    if (op.txn == kVirtualTxn) return RecordAbort(AbortReason::kInvalidOp);
    OnBegin(op.txn);  // Idempotent; covers direct use without OnBegin.
    const bool was_aborted = inner_.IsAborted(op.txn);
    switch (inner_.Process(op)) {
      case OpDecision::kAccept:
        return SchedOutcome::kAccepted;
      case OpDecision::kIgnore:
        return SchedOutcome::kIgnored;
      case OpDecision::kReject:
        // Genuine rejections mean HierSet found the opposite inter-group
        // (or intra-group) order already fixed: an order conflict.
        return RecordAbort(was_aborted ? AbortReason::kStaleTxn
                                       : AbortReason::kLexOrder);
    }
    return RecordAbort(AbortReason::kInvalidOp);
  }

  SchedOutcome OnCommit(TxnId txn) override {
    (void)txn;
    return SchedOutcome::kAccepted;
  }

  void OnRestart(TxnId txn) override {
    if (inner_.IsAborted(txn)) inner_.RestartTxn(txn);
  }

  NestedMtScheduler& inner() { return inner_; }

 private:
  NestedMtScheduler inner_;
  GroupId groups_;
};

}  // namespace mdts

#endif  // MDTS_NESTED_NESTED_ONLINE_H_
