#ifndef MDTS_NESTED_NESTED_SCHEDULER_H_
#define MDTS_NESTED_NESTED_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/mtk_scheduler.h"
#include "core/types.h"
#include "core/vector_table.h"

namespace mdts {

/// Group identifier at some hierarchy level. Group 0 at every level is the
/// virtual group containing only the virtual transaction T0.
using GroupId = uint32_t;

/// The protocol MT(k1, k2, ..., kl) for nested-transaction and grouped
/// models (paper Section V-A, Fig. 11).
///
/// Transactions are partitioned into mutually disjoint groups, and groups
/// into supergroups, for any number of levels. Serializability is assured
/// per level: a dependency between transactions in different (super)groups
/// is encoded exclusively in the timestamp vectors of the topmost level
/// where the two ancestor chains diverge, using the MT(k) machinery of that
/// level; dependencies within the same group use the transaction-level
/// vectors. Inter-group dependency is therefore antisymmetric: once
/// G1 -> G2 is encoded, any operation implying G2 -> G1 is rejected.
///
/// Level numbering: level 0 = transactions with vectors of size ks[0]
/// (the paper's k1); level 1 = groups with size ks[1] (the paper's k2);
/// higher levels generalize to supergroups.
class NestedMtScheduler {
 public:
  /// ks[0] is the transaction-level vector size; each further entry adds a
  /// grouping level. ks must not be empty and all entries must be >= 1.
  explicit NestedMtScheduler(std::vector<size_t> ks);

  /// Declares a transaction's ancestor chain: ancestors[l] is its group id
  /// at level l+1. The chain length must be levels()-1. Transactions must
  /// be registered before their first operation, and the membership is
  /// static (the paper: a transaction may not migrate during execution).
  Status RegisterTxn(TxnId txn, const std::vector<GroupId>& ancestors);

  /// Number of levels (1 = plain MT(k)).
  size_t levels() const { return tables_.size(); }

  /// Runs the two-level scheduler on one operation. Operations of
  /// unregistered transactions (when levels() > 1) are rejected.
  OpDecision Process(const Op& op);

  void RestartTxn(TxnId txn);
  bool IsAborted(TxnId txn) const;

  /// Transaction-level vector TS(i).
  const TimestampVector& TxnTs(TxnId txn) { return tables_[0].Ts(txn); }

  /// Group vector GS at the given level (level >= 1).
  const TimestampVector& GroupTs(size_t level, GroupId group) {
    return tables_[level].Ts(group);
  }

  /// Fig. 11-style dump: transaction table plus one group table per level.
  std::string DumpTables(TxnId max_txn);

 private:
  struct TxnState {
    std::vector<GroupId> ancestors;  // ancestors[l-1] = group at level l.
    bool registered = false;
    bool aborted = false;
    uint32_t incarnation = 0;
  };

  struct Access {
    TxnId txn = kVirtualTxn;
    uint32_t incarnation = 0;
  };

  struct ItemState {
    std::vector<Access> readers;
    std::vector<Access> writers;
  };

  TxnState& State(TxnId txn);
  ItemState& Item(ItemId item);
  bool IsLiveAccess(const Access& access);
  TxnId TopLive(std::vector<Access>* stack);

  /// Entity id of the transaction at a level (the txn itself at level 0).
  uint32_t EntityAt(TxnId txn, size_t level);

  /// Topmost level at which the two transactions' entities differ;
  /// levels() if they are the same transaction.
  size_t DivergenceLevel(TxnId a, TxnId b);

  /// Hierarchical comparison: the Definition-6 order of the two
  /// transactions' entities at their divergence level.
  VectorCompareResult HierCompare(TxnId a, TxnId b);

  /// Hierarchical Set: encodes the dependency a -> b at the divergence
  /// level; returns false if the opposite order is fixed there.
  bool HierSet(TxnId a, TxnId b);

  std::vector<VectorTable> tables_;  // tables_[0] = transactions.
  std::vector<TxnState> txns_;
  std::vector<ItemState> items_;
  // members_[l-1][g]: registered transactions in group g of level l.
  std::vector<std::map<GroupId, int>> members_;
};

}  // namespace mdts

#endif  // MDTS_NESTED_NESTED_SCHEDULER_H_
