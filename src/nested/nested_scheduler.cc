#include "nested/nested_scheduler.h"

#include <cassert>

#include "common/table_printer.h"

namespace mdts {

NestedMtScheduler::NestedMtScheduler(std::vector<size_t> ks) {
  assert(!ks.empty());
  tables_.reserve(ks.size());
  for (size_t k : ks) {
    assert(k >= 1);
    tables_.emplace_back(k);
  }
  // The virtual transaction T0 lives in the virtual group 0 of every level.
  txns_.resize(1);
  txns_[0].registered = true;
  txns_[0].ancestors.assign(tables_.size() - 1, 0);
  members_.resize(tables_.size() - 1);
}

NestedMtScheduler::TxnState& NestedMtScheduler::State(TxnId txn) {
  if (txns_.size() <= txn) txns_.resize(txn + 1);
  return txns_[txn];
}

NestedMtScheduler::ItemState& NestedMtScheduler::Item(ItemId item) {
  if (items_.size() <= item) items_.resize(item + 1);
  return items_[item];
}

Status NestedMtScheduler::RegisterTxn(TxnId txn,
                                      const std::vector<GroupId>& ancestors) {
  if (txn == kVirtualTxn) {
    return Status::InvalidArgument("transaction 0 is the virtual T0");
  }
  if (ancestors.size() + 1 != tables_.size()) {
    return Status::InvalidArgument("ancestor chain must have levels()-1 ids");
  }
  for (GroupId g : ancestors) {
    if (g == 0) {
      return Status::InvalidArgument("group 0 is the virtual group");
    }
  }
  TxnState& s = State(txn);
  if (s.registered && s.ancestors != ancestors) {
    return Status::FailedPrecondition(
        "transaction group membership is static (Section V-A)");
  }
  if (!s.registered) {
    for (size_t l = 0; l < ancestors.size(); ++l) {
      ++members_[l][ancestors[l]];
    }
  }
  s.registered = true;
  s.ancestors = ancestors;
  return Status::Ok();
}

bool NestedMtScheduler::IsLiveAccess(const Access& access) {
  const TxnState& s = txns_[access.txn];
  return access.incarnation == s.incarnation && !s.aborted;
}

TxnId NestedMtScheduler::TopLive(std::vector<Access>* stack) {
  while (!stack->empty() && !IsLiveAccess(stack->back())) stack->pop_back();
  return stack->empty() ? kVirtualTxn : stack->back().txn;
}

uint32_t NestedMtScheduler::EntityAt(TxnId txn, size_t level) {
  if (level == 0) return txn;
  return State(txn).ancestors[level - 1];
}

size_t NestedMtScheduler::DivergenceLevel(TxnId a, TxnId b) {
  if (a == b) return tables_.size();
  for (size_t level = tables_.size(); level-- > 1;) {
    if (EntityAt(a, level) != EntityAt(b, level)) return level;
  }
  return 0;
}

VectorCompareResult NestedMtScheduler::HierCompare(TxnId a, TxnId b) {
  const size_t level = DivergenceLevel(a, b);
  if (level == tables_.size()) return {VectorOrder::kIdentical, 0};
  return tables_[level].CompareIds(EntityAt(a, level), EntityAt(b, level));
}

bool NestedMtScheduler::HierSet(TxnId a, TxnId b) {
  const size_t level = DivergenceLevel(a, b);
  if (level == tables_.size()) return true;  // Same transaction.
  return tables_[level].Set(EntityAt(a, level), EntityAt(b, level));
}

OpDecision NestedMtScheduler::Process(const Op& op) {
  const TxnId i = op.txn;
  if (i == kVirtualTxn) return OpDecision::kReject;
  TxnState& state = State(i);
  if (state.aborted || (!state.registered && tables_.size() > 1)) {
    return OpDecision::kReject;
  }
  if (!state.registered) {
    // Single-level instance: behave like plain MT(k), no groups needed.
    state.registered = true;
    state.ancestors.clear();
  }

  ItemState& item = Item(op.item);
  const TxnId jr = TopLive(&item.readers);
  const TxnId jw = TopLive(&item.writers);
  const TxnId j = HierCompare(jr, jw).order == VectorOrder::kLess ? jw : jr;

  if (op.type == OpType::kRead) {
    if (HierSet(j, i)) {
      item.readers.push_back({i, state.incarnation});
      return OpDecision::kAccept;
    }
    // Line-9 analog: an old read is safe if it is hierarchically ordered
    // after the most recent writer.
    if (j == jr && HierCompare(jw, i).order == VectorOrder::kLess) {
      return OpDecision::kAccept;
    }
    state.aborted = true;
    return OpDecision::kReject;
  }
  if (HierSet(j, i)) {
    item.writers.push_back({i, state.incarnation});
    return OpDecision::kAccept;
  }
  state.aborted = true;
  return OpDecision::kReject;
}

void NestedMtScheduler::RestartTxn(TxnId txn) {
  TxnState& s = State(txn);
  assert(s.aborted);
  s.aborted = false;
  ++s.incarnation;
  tables_[0].Reset(txn);  // Fresh transaction vector.
  // A group vector persists across restarts while other members share it;
  // a group whose sole member restarts can be reset too (the paper allows
  // a restarting transaction to migrate groups, so a singleton group's
  // identity is effectively the transaction's own).
  for (size_t l = 0; l < s.ancestors.size(); ++l) {
    const GroupId g = s.ancestors[l];
    auto it = members_[l].find(g);
    if (it != members_[l].end() && it->second == 1) {
      tables_[l + 1].Reset(g);
    }
  }
}

bool NestedMtScheduler::IsAborted(TxnId txn) const {
  return txn < txns_.size() && txns_[txn].aborted;
}

std::string NestedMtScheduler::DumpTables(TxnId max_txn) {
  std::string out;
  {
    TablePrinter table({"txn", "groups", "TS"});
    for (TxnId t = 0; t <= max_txn; ++t) {
      std::string chain;
      for (GroupId g : State(t).ancestors) {
        if (!chain.empty()) chain += "/";
        chain += "G" + std::to_string(g);
      }
      table.AddRow({"T" + std::to_string(t), chain,
                    std::string(tables_[0].Ts(t).ToString())});
    }
    out += "Transaction timestamps:\n" + table.ToString();
  }
  for (size_t level = 1; level < tables_.size(); ++level) {
    GroupId max_group = 0;
    for (TxnId t = 0; t <= max_txn && t < txns_.size(); ++t) {
      if (txns_[t].registered && !txns_[t].ancestors.empty()) {
        max_group = std::max(max_group, txns_[t].ancestors[level - 1]);
      }
    }
    TablePrinter table({"group", "GS"});
    for (GroupId g = 0; g <= max_group; ++g) {
      table.AddRow({"G" + std::to_string(g),
                    std::string(tables_[level].Ts(g).ToString())});
    }
    out += "Level-" + std::to_string(level) + " group timestamps:\n" +
           table.ToString();
  }
  return out;
}

}  // namespace mdts
