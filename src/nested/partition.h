#ifndef MDTS_NESTED_PARTITION_H_
#define MDTS_NESTED_PARTITION_H_

#include <map>
#include <vector>

#include "core/log.h"
#include "nested/nested_scheduler.h"

namespace mdts {

/// Partition rules for MT(k1, k2) (paper Section V-A, Examples 5 and 6).

/// Example 6 / Table IV: transactions with identical read and write sets
/// form a group ("to partition transactions in the same group, they must
/// share some common properties"). Returns the group id (>= 1) of every
/// transaction 1..num_txns, assigning ids in order of first appearance of
/// each (read set, write set) signature.
std::vector<GroupId> PartitionByReadWriteSignature(const Log& log);

/// Example 5: transactions initiated at the same site belong to the site's
/// group. The caller supplies the site of each transaction (1-based ids);
/// returned group ids equal site ids.
std::vector<GroupId> PartitionBySite(const std::vector<uint32_t>& txn_site);

/// Registers a level-1 partition with the scheduler: partition[t-1] is the
/// group of transaction t.
Status RegisterPartition(NestedMtScheduler* scheduler,
                         const std::vector<GroupId>& partition);

}  // namespace mdts

#endif  // MDTS_NESTED_PARTITION_H_
