#include "nested/partition.h"

#include <algorithm>
#include <utility>

namespace mdts {

std::vector<GroupId> PartitionByReadWriteSignature(const Log& log) {
  std::map<std::pair<std::vector<ItemId>, std::vector<ItemId>>, GroupId>
      signature_group;
  std::vector<GroupId> partition(log.num_txns());
  GroupId next_group = 1;
  for (TxnId t = 1; t <= log.num_txns(); ++t) {
    std::vector<ItemId> reads = log.ReadSet(t);
    std::vector<ItemId> writes = log.WriteSet(t);
    std::sort(reads.begin(), reads.end());
    std::sort(writes.begin(), writes.end());
    auto key = std::make_pair(std::move(reads), std::move(writes));
    auto [it, inserted] = signature_group.emplace(key, next_group);
    if (inserted) ++next_group;
    partition[t - 1] = it->second;
  }
  return partition;
}

std::vector<GroupId> PartitionBySite(const std::vector<uint32_t>& txn_site) {
  return txn_site;
}

Status RegisterPartition(NestedMtScheduler* scheduler,
                         const std::vector<GroupId>& partition) {
  for (TxnId t = 1; t <= partition.size(); ++t) {
    Status s = scheduler->RegisterTxn(t, {partition[t - 1]});
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace mdts
