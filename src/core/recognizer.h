#ifndef MDTS_CORE_RECOGNIZER_H_
#define MDTS_CORE_RECOGNIZER_H_

#include <cstddef>
#include <limits>

#include "core/log.h"
#include "core/mtk_scheduler.h"

namespace mdts {

/// Result of running a fixed log through an MT(k) scheduler.
struct RecognizeResult {
  /// True iff every operation of the log was accepted: the log is a member
  /// of the class recognized by the configured protocol (TO(k) for vanilla
  /// options).
  bool accepted = false;

  /// Index of the first rejected operation; kNoReject when accepted.
  size_t rejected_at = kNoReject;

  static constexpr size_t kNoReject = std::numeric_limits<size_t>::max();
};

/// Feeds the log's operations in order to a freshly constructed
/// MtkScheduler with the given options and reports whether all were
/// accepted. Writes ignored under the Thomas rule count as accepted.
RecognizeResult RecognizeLog(const Log& log, const MtkOptions& options);

/// TO(k) membership (Definition 3 realized by Algorithm 1 with default
/// options): true iff MT(k) accepts every operation of the log.
bool IsToK(const Log& log, size_t k);

/// Runs the scheduler over the whole log without stopping at rejections
/// (transactions whose operations are rejected stay aborted) and returns the
/// effective history: the accepted, non-ignored operations of transactions
/// that were never aborted. Theorem 2 guarantees this history is always
/// D-serializable, whatever the options.
Log EffectiveHistory(const Log& log, const MtkOptions& options);

}  // namespace mdts

#endif  // MDTS_CORE_RECOGNIZER_H_
