#include "core/mtk_scheduler.h"

#include <algorithm>
#include <cassert>

#include "common/table_printer.h"
#include "core/encoding.h"

namespace mdts {

const char* OpDecisionName(OpDecision d) {
  switch (d) {
    case OpDecision::kAccept:
      return "ACCEPT";
    case OpDecision::kReject:
      return "REJECT";
    case OpDecision::kIgnore:
      return "IGNORE";
  }
  return "?";
}

MtkScheduler::MtkScheduler(const MtkOptions& options)
    : options_(options), t0_(options.k) {
  assert(options_.k >= 1);
  // Line 2 of Algorithm 1: the virtual transaction T0, which conceptually
  // read and wrote every item first, starts with TS(0) = <0, *, ..., *> and
  // is permanently committed. Lines 3-4: RT(x) = WT(x) = 0 is realized by
  // TopLive falling back to kVirtualTxn on empty stacks; lcount/ucount start
  // at 0 / 1.
  t0_.ts = TimestampVector::Virtual(options_.k);
  t0_.committed = true;
}

MtkScheduler::TxnState& MtkScheduler::State(TxnId txn) {
  if (txn >= base_) {  // Hot path: a non-released real transaction.
    while (base_ + txns_.size() <= txn) txns_.emplace_back(options_.k);
    return txns_[txn - base_];
  }
  assert(txn == kVirtualTxn && "access to a compacted (released) txn");
  return t0_;  // T0; also the defensive answer for released ids.
}

MtkScheduler::ItemState& MtkScheduler::Item(ItemId item) {
  if (items_.size() <= item) items_.resize(item + 1);
  return items_[item];
}

MtkScheduler::LiveRef MtkScheduler::TopLiveOf(Access& top,
                                              std::vector<Access>& stack) {
  // Fast path: the inline mirror of stack.back() is live; the stack's heap
  // storage is never touched.
  if (top.txn == kVirtualTxn) return {kVirtualTxn, &t0_};
  {
    TxnState& s = State(top.txn);
    if (top.incarnation == s.incarnation && !s.aborted) return {top.txn, &s};
  }
  // Dead top: drop it and scan for the most recent live entry. Dead entries
  // (stale incarnation or currently aborted) are popped for good.
  stack.pop_back();
  while (!stack.empty()) {
    const Access& a = stack.back();
    TxnState& s = State(a.txn);
    if (a.incarnation == s.incarnation && !s.aborted) {
      top = a;
      return {a.txn, &s};
    }
    stack.pop_back();
  }
  top = Access{};
  return {kVirtualTxn, &t0_};
}

VectorCompareResult MtkScheduler::CompareStates(const TxnState& a,
                                                const TxnState& b) {
#ifdef MDTS_DEBUG_COMPARE
  VectorCompareResult r = options_.naive_compare ? CompareNaive(a.ts, b.ts)
                                                 : Compare(a.ts, b.ts);
#else
  VectorCompareResult r = options_.naive_compare
                              ? CompareNaive(a.ts, b.ts)
                              : internal::CompareFast(a.ts, b.ts);
#endif
  stats_.element_comparisons += r.index + 1;
  return r;
}

void MtkScheduler::RecordEncoding(TxnId from, TxnId to) {
  if (options_.record_encodings) {
    encodings_.push_back(EncodingEvent{from, to, current_op_, ops_processed_});
  }
}

bool MtkScheduler::SetStates(TxnState& sj, TxnState& si, TxnId j, TxnId i,
                             bool hot_item) {
  if (j == i) return true;  // Line 15.
  ++stats_.set_calls;
  const VectorCompareResult cr = CompareStates(sj, si);
  // The scheduler's global counters ignore EncodeDependency's bound
  // argument: a single monotone sequence per direction already exceeds
  // (resp. undercuts) every value it handed out before.
  struct Counters {
    MtkScheduler* s;
    TsElement Upper(TsElement) { return s->ucount_++; }
    TsElement Lower(TsElement) { return s->lcount_--; }
  };
  const EncodeOutcome out = EncodeDependency(
      cr, options_.k, sj.ts, si.ts, j == kVirtualTxn, hot_item,
      options_.optimized_encoding, Counters{this});
  stats_.elements_assigned += out.elements_assigned;
  if (!out.ok) {
    set_failure_ = out.why;
    return false;
  }
  if (out.encoded) RecordEncoding(j, i);
  return true;
}

void MtkScheduler::ApplyStarvationSeed(TxnState& aborted,
                                       const TxnState& blocker) {
  // Section III-D-4: flush out TS(i) and seed TS(i,1) := TS(j,1) + 1 so the
  // restarted incarnation is ordered after the blocking transaction.
  TimestampVector& ti = aborted.ts;
  const TimestampVector& tj = blocker.ts;
  assert(tj.IsDefined(0));
  ti.Reset();
  ti.Set(0, tj.Get(0) + 1);
}

OpDecision MtkScheduler::Process(const Op& op) {
  ++ops_processed_;
  current_op_ = op;
  const TxnId i = op.txn;
  auto refuse = [&](AbortReason reason, TxnId blocker) {
    last_reject_ = RejectInfo{reason, op, blocker, ops_processed_};
    ++stats_.rejected;
    stats_.reject_reasons.Add(reason);
    return OpDecision::kReject;
  };
  if (i == kVirtualTxn) {
    // T0 is virtual; it issues no operations.
    return refuse(AbortReason::kInvalidOp, kVirtualTxn);
  }
  TxnState& state = State(i);
  if (state.aborted || state.committed) {
    return refuse(AbortReason::kStaleTxn, kVirtualTxn);
  }
  ItemState& item = Item(op.item);
  const bool hot = item.access_count >= options_.hot_item_threshold;
  ++item.access_count;

  // Lines 5-6: j is whichever of RT(x), WT(x) has the larger timestamp,
  // with RT(x) winning ties and undetermined comparisons. All states are
  // resolved to pointers once here; everything below works on them.
  const LiveRef jr = TopLiveOf(item.top_reader, item.readers);
  const LiveRef jw = TopLiveOf(item.top_writer, item.writers);
  const LiveRef j =
      CompareStates(*jr.state, *jw.state).order == VectorOrder::kLess ? jw
                                                                      : jr;

  auto reject = [&](const LiveRef& blocker) {
    // set_failure_ carries the cause recorded by the SetStates call that
    // refused the dependency (kLexOrder or kEncodingExhausted).
    state.aborted = true;
    if (options_.starvation_fix) ApplyStarvationSeed(state, *blocker.state);
    return refuse(set_failure_, blocker.txn);
  };

  if (op.type == OpType::kRead) {
    if (SetStates(*j.state, state, j.txn, i, hot)) {
      item.readers.push_back({i, state.incarnation});  // Line 7: RT(x) := i.
      item.top_reader = item.readers.back();
      ++stats_.accepted;
      return OpDecision::kAccept;
    }
    // Line 9: a read older than the most recent reader is still safe if it
    // follows the most recent writer. The relaxed variant (noted after
    // Theorem 3) encodes the WT dependency with Set instead of testing it.
    if (j.txn == jr.txn && !options_.disable_old_read_path) {
      const bool write_ordered =
          options_.relaxed_read_path
              ? SetStates(*jw.state, state, jw.txn, i, hot)
              : CompareStates(*jw.state, state).order == VectorOrder::kLess;
      if (write_ordered) {
        ++stats_.accepted;
        return OpDecision::kAccept;  // Line 10; RT(x) is not updated.
      }
    }
    return reject(j);  // Line 11.
  }

  // Write.
  if (SetStates(*j.state, state, j.txn, i, hot)) {
    item.writers.push_back({i, state.incarnation});  // Line 12: WT(x) := i.
    item.top_writer = item.writers.back();
    ++stats_.accepted;
    return OpDecision::kAccept;
  }
  if (options_.thomas_write_rule) {
    // Section III-D-6c: if TS(RT(x)) < TS(i) < TS(WT(x)), the write is
    // obsolete and can be ignored rather than aborting T_i.
    const bool after_reads =
        CompareStates(*jr.state, state).order == VectorOrder::kLess;
    const bool before_writer =
        CompareStates(state, *jw.state).order == VectorOrder::kLess;
    if (after_reads && before_writer) {
      ++stats_.ignored_writes;
      return OpDecision::kIgnore;
    }
  }
  return reject(j);  // Line 14.
}

std::string MtkScheduler::ExplainLastReject() const {
  if (last_reject_.reason == AbortReason::kNone) return "no rejection yet";
  return FormatReject(OpName(last_reject_.op), last_reject_.reason,
                      last_reject_.blocker);
}

void MtkScheduler::CommitTxn(TxnId txn) {
  TxnState& s = State(txn);
  assert(!s.aborted);
  s.committed = true;
  if (options_.compact_every > 0 &&
      ++commits_since_compact_ >= options_.compact_every) {
    commits_since_compact_ = 0;
    CompactCommitted();
  }
}

void MtkScheduler::RestartTxn(TxnId txn) {
  TxnState& s = State(txn);
  assert(s.aborted);
  s.aborted = false;
  s.committed = false;
  ++s.incarnation;  // Invalidates the previous incarnation's item accesses.
  if (!options_.starvation_fix) {
    s.ts.Reset();  // Fresh, fully undefined vector.
  }
  // With the fix the seeded vector from ApplyStarvationSeed is kept.
}

bool MtkScheduler::IsAborted(TxnId txn) const {
  if (txn < base_) return false;  // T0 and released (committed) txns.
  const size_t idx = txn - base_;
  return idx < txns_.size() && txns_[idx].aborted;
}

bool MtkScheduler::IsCommitted(TxnId txn) const {
  if (txn == kVirtualTxn) return t0_.committed;
  if (txn < base_) return true;  // Only committed states are released.
  const size_t idx = txn - base_;
  return idx < txns_.size() && txns_[idx].committed;
}

const TimestampVector& MtkScheduler::Ts(TxnId txn) { return State(txn).ts; }

TxnId MtkScheduler::Rt(ItemId item) {
  ItemState& s = Item(item);
  return TopLiveOf(s.top_reader, s.readers).txn;
}

TxnId MtkScheduler::Wt(ItemId item) {
  ItemState& s = Item(item);
  return TopLiveOf(s.top_writer, s.writers).txn;
}

void MtkScheduler::CompactItemHistories() {
  for (ItemState& item : items_) {
    const LiveRef r = TopLiveOf(item.top_reader, item.readers);
    const LiveRef w = TopLiveOf(item.top_writer, item.writers);
    item.readers.clear();
    item.writers.clear();
    if (r.txn != kVirtualTxn) {
      item.readers.push_back({r.txn, r.state->incarnation});
      item.top_reader = item.readers.back();
    }
    if (w.txn != kVirtualTxn) {
      item.writers.push_back({w.txn, w.state->incarnation});
      item.top_writer = item.writers.back();
    }
  }
}

size_t MtkScheduler::CompactCommitted() {
  CompactItemHistories();
  // Everything below the smallest id still referenced by an item history
  // (or still live at the front of the deque) is unreachable: TopLive can
  // never surface it again, so neither Process nor Set will compare
  // against its vector.
  TxnId min_referenced = static_cast<TxnId>(base_ + txns_.size());
  for (const ItemState& item : items_) {
    for (const Access& a : item.readers) {
      min_referenced = std::min(min_referenced, a.txn);
    }
    for (const Access& a : item.writers) {
      min_referenced = std::min(min_referenced, a.txn);
    }
  }
  size_t released = 0;
  while (!txns_.empty() && base_ < min_referenced &&
         txns_.front().committed) {
    txns_.pop_front();
    ++base_;
    ++released;
  }
  stats_.txns_released += released;
  return released;
}

std::vector<TxnId> MtkScheduler::SerializationOrder(std::vector<TxnId> txns) {
  // Kahn's algorithm over the determined (Definition 6) order; stable with
  // respect to the input order among unordered transactions. The relation is
  // a strict partial order by Lemmas 1 and 2, so the sort always completes.
  const size_t n = txns.size();
  std::vector<TxnId> out;
  out.reserve(n);
  std::vector<bool> placed(n, false);
  for (size_t round = 0; round < n; ++round) {
    size_t pick = n;
    for (size_t c = 0; c < n && pick == n; ++c) {
      if (placed[c]) continue;
      bool minimal = true;
      for (size_t d = 0; d < n && minimal; ++d) {
        if (d == c || placed[d]) continue;
        if (VectorLess(State(txns[d]).ts, State(txns[c]).ts)) minimal = false;
      }
      if (minimal) pick = c;
    }
    assert(pick < n && "determined order must be acyclic (Lemmas 1-2)");
    if (pick == n) {  // Defensive fallback in release builds.
      for (size_t c = 0; c < n; ++c) {
        if (!placed[c]) {
          pick = c;
          break;
        }
      }
    }
    placed[pick] = true;
    out.push_back(txns[pick]);
  }
  return out;
}

std::string MtkScheduler::DumpTable(TxnId max_txn) {
  std::vector<std::string> header = {"txn", "TS", "state"};
  TablePrinter table(header);
  for (TxnId t = 0; t <= max_txn; ++t) {
    if (t != kVirtualTxn && t < base_) {
      table.AddRow({"T" + std::to_string(t), "(released)", "committed"});
      continue;
    }
    const TxnState& s = State(t);
    std::string st = t == kVirtualTxn ? "virtual"
                     : s.aborted      ? "aborted"
                     : s.committed    ? "committed"
                                      : "active";
    table.AddRow({"T" + std::to_string(t), s.ts.ToString(), st});
  }
  return table.ToString();
}

}  // namespace mdts
