#ifndef MDTS_CORE_EXPLAIN_H_
#define MDTS_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/log.h"
#include "core/mtk_scheduler.h"

namespace mdts {

/// Why a log was rejected by MT(k): the rejected operation, the blocking
/// transaction (the T_j with TS(i) < TS(j) already fixed), and the chain of
/// previously encoded dependencies that fixed that order - each link
/// annotated with the operation that created it.
struct RejectionExplanation {
  bool rejected = false;       // False: the log was fully accepted.
  size_t rejected_at = 0;      // Log position of the rejected operation.
  Op rejected_op;
  TxnId blocker = kVirtualTxn;

  /// Encoding events forming a path blocker-wards: chain[0].from ==
  /// rejected_op.txn is not required (the order may be transitive); the
  /// links compose rejected_txn -> ... -> blocker through the recorded
  /// encodings.
  std::vector<EncodingEvent> chain;

  /// Human-readable multi-line rendering.
  std::string ToString() const;
};

/// Replays the log through MT(k) with encoding recording enabled and, if an
/// operation is rejected, reconstructs the shortest chain of encoded
/// dependencies that fixed the blocking order. Useful for debugging
/// workloads ("why did this abort?") and for teaching the protocol.
RejectionExplanation ExplainRejection(const Log& log,
                                      const MtkOptions& options);

}  // namespace mdts

#endif  // MDTS_CORE_EXPLAIN_H_
