#include "core/vector_table.h"

#include <cassert>

namespace mdts {

VectorTable::VectorTable(size_t k)
    : k_(k), virtual_(TimestampVector::Virtual(k)) {
  assert(k_ >= 1);
}

TimestampVector& VectorTable::Mutable(uint32_t id) {
  if (id == 0) return virtual_;
  assert(id >= base_ && "access to a released (compacted) entity");
  while (base_ + vectors_.size() <= id) vectors_.emplace_back(k_);
  return vectors_[id - base_];
}

VectorCompareResult VectorTable::CompareIds(uint32_t a, uint32_t b) {
  VectorCompareResult r = Compare(Mutable(a), Mutable(b));
  element_comparisons_ += r.index + 1;
  return r;
}

bool VectorTable::Set(uint32_t j, uint32_t i) {
  if (j == i) return true;
  const VectorCompareResult cr = CompareIds(j, i);
  const size_t m = cr.index;
  TimestampVector& tj = Mutable(j);
  TimestampVector& ti = Mutable(i);
  switch (cr.order) {
    case VectorOrder::kLess:
      return true;
    case VectorOrder::kGreater:
    case VectorOrder::kIdentical:
      return false;
    case VectorOrder::kEqual:
      if (m + 1 == k_) {
        tj.Set(m, ucount_);
        ti.Set(m, ucount_ + 1);
        ucount_ += 2;
      } else {
        tj.Set(m, 1);
        ti.Set(m, 2);
      }
      elements_assigned_ += 2;
      return true;
    case VectorOrder::kUndetermined:
      if (!ti.IsDefined(m)) {
        if (m + 1 == k_) {
          ti.Set(m, ucount_);
          ucount_ += 1;
        } else {
          ti.Set(m, tj.Get(m) + 1);
        }
      } else {
        if (m + 1 == k_) {
          tj.Set(m, lcount_);
          lcount_ -= 1;
        } else {
          tj.Set(m, ti.Get(m) - 1);
        }
      }
      ++elements_assigned_;
      return true;
  }
  return false;
}

void VectorTable::Reset(uint32_t id) { Mutable(id).Reset(); }

void VectorTable::SeedAfter(uint32_t id, uint32_t blocker) {
  const TimestampVector& b = Mutable(blocker);
  const TsElement seed = b.IsDefined(0) ? b.Get(0) + 1 : 1;
  TimestampVector& v = Mutable(id);
  v.Reset();
  v.Set(0, seed);
}

size_t VectorTable::ReleaseBelow(uint32_t min_live_id) {
  size_t released = 0;
  while (base_ < min_live_id && !vectors_.empty()) {
    vectors_.pop_front();
    ++base_;
    ++released;
  }
  return released;
}

}  // namespace mdts
