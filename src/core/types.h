#ifndef MDTS_CORE_TYPES_H_
#define MDTS_CORE_TYPES_H_

#include <cstdint>
#include <string>

namespace mdts {

/// Transaction identifier. Id 0 is reserved for the paper's virtual
/// transaction T0, which "reads and writes all the data items before any
/// other transaction" (Section III-A); user transactions are numbered 1..n.
using TxnId = uint32_t;

/// Database item identifier. Items are dense integers 0..m-1; the textual
/// log format prints them as letters (x, y, z, w, then i4, i5, ...).
using ItemId = uint32_t;

constexpr TxnId kVirtualTxn = 0;

/// Atomic operation kind. Per paper Definition 1, two operations conflict iff
/// they belong to different transactions, access the same item, and at least
/// one is a write.
enum class OpType : uint8_t { kRead, kWrite };

/// A single atomic operation A_i[x]: transaction `txn` reads or writes item
/// `item`. The position of the operation in a Log is the paper's permutation
/// function pi.
struct Op {
  TxnId txn = 0;
  OpType type = OpType::kRead;
  ItemId item = 0;

  friend bool operator==(const Op& a, const Op& b) {
    return a.txn == b.txn && a.type == b.type && a.item == b.item;
  }
};

/// True iff the two operations conflict (Definition 1).
inline bool Conflicts(const Op& a, const Op& b) {
  return a.txn != b.txn && a.item == b.item &&
         (a.type == OpType::kWrite || b.type == OpType::kWrite);
}

/// Renders an item id in the paper's style: 0->x, 1->y, 2->z, 3->w, then i4..
std::string ItemName(ItemId item);

/// Renders an operation as e.g. "W1[x]".
std::string OpName(const Op& op);

}  // namespace mdts

#endif  // MDTS_CORE_TYPES_H_
