#include "core/timestamp_vector.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mdts {

TimestampVector::TimestampVector(size_t k) : k_(static_cast<uint32_t>(k)) {
  assert(k > 0);
  TsElement* d;
  if (k_ <= kInlineCapacity) {
    d = inline_;
    for (size_t m = 0; m < kInlineCapacity; ++m) d[m] = kUndefinedElement;
  } else {
    d = heap_ = new TsElement[k_];
    for (size_t m = 0; m < k_; ++m) d[m] = kUndefinedElement;
  }
}

TimestampVector::TimestampVector(const TimestampVector& o)
    : k_(o.k_), mask_(o.mask_) {
  if (k_ <= kInlineCapacity) {
    std::copy(o.inline_, o.inline_ + kInlineCapacity, inline_);
  } else {
    heap_ = new TsElement[k_];
    std::copy(o.heap_, o.heap_ + k_, heap_);
  }
}

TimestampVector::TimestampVector(TimestampVector&& o) noexcept
    : k_(o.k_), mask_(o.mask_) {
  if (k_ <= kInlineCapacity) {
    std::copy(o.inline_, o.inline_ + kInlineCapacity, inline_);
  } else {
    heap_ = o.heap_;
    o.heap_ = nullptr;  // Moved-from keeps k_; its dtor deletes nullptr.
  }
}

TimestampVector& TimestampVector::operator=(const TimestampVector& o) {
  if (this == &o) return *this;
  if (k_ > kInlineCapacity) delete[] heap_;
  k_ = o.k_;
  mask_ = o.mask_;
  if (k_ <= kInlineCapacity) {
    std::copy(o.inline_, o.inline_ + kInlineCapacity, inline_);
  } else {
    heap_ = new TsElement[k_];
    std::copy(o.heap_, o.heap_ + k_, heap_);
  }
  return *this;
}

TimestampVector& TimestampVector::operator=(TimestampVector&& o) noexcept {
  if (this == &o) return *this;
  if (k_ > kInlineCapacity) delete[] heap_;
  k_ = o.k_;
  mask_ = o.mask_;
  if (k_ <= kInlineCapacity) {
    std::copy(o.inline_, o.inline_ + kInlineCapacity, inline_);
  } else {
    heap_ = o.heap_;
    o.heap_ = nullptr;
  }
  return *this;
}

TimestampVector TimestampVector::Virtual(size_t k) {
  TimestampVector v(k);
  v.Set(0, 0);
  return v;
}

size_t TimestampVector::DefinedPrefixLength() const {
  const size_t p = static_cast<size_t>(std::countr_one(mask_));
  if (p < kMaskBits || k_ <= kMaskBits) return p < k_ ? p : k_;
  // Mask exhausted on an oversized vector: continue with a sentinel scan.
  size_t n = kMaskBits;
  const TsElement* d = data();
  while (n < k_ && d[n] != kUndefinedElement) ++n;
  return n;
}

size_t TimestampVector::DefinedCount() const {
  size_t n = static_cast<size_t>(std::popcount(mask_));
  if (k_ > kMaskBits) {
    const TsElement* d = data();
    for (size_t m = kMaskBits; m < k_; ++m) {
      if (d[m] != kUndefinedElement) ++n;
    }
  }
  return n;
}

void TimestampVector::Reset() {
  TsElement* d = data();
  for (size_t m = 0; m < k_; ++m) d[m] = kUndefinedElement;
  mask_ = 0;
}

std::string TimestampVector::ToString() const {
  std::string out = "<";
  for (size_t i = 0; i < k_; ++i) {
    if (i > 0) out += ',';
    if (!IsDefined(i)) {
      out += '*';
    } else {
      out += std::to_string(Get(i));
    }
  }
  out += '>';
  return out;
}

VectorCompareResult CompareNaive(const TimestampVector& a,
                                 const TimestampVector& b) {
  assert(a.size() == b.size());
  const size_t k = a.size();
  for (size_t m = 0; m < k; ++m) {
    const bool da = a.IsDefined(m);
    const bool db = b.IsDefined(m);
    if (da && db) {
      if (a.Get(m) < b.Get(m)) return {VectorOrder::kLess, m};
      if (a.Get(m) > b.Get(m)) return {VectorOrder::kGreater, m};
      continue;  // Equal defined elements: keep scanning.
    }
    if (!da && !db) return {VectorOrder::kEqual, m};
    return {VectorOrder::kUndetermined, m};
  }
  return {VectorOrder::kIdentical, k};
}

VectorCompareResult Compare(const TimestampVector& a,
                            const TimestampVector& b) {
  assert(a.size() == b.size());
  const VectorCompareResult r = internal::CompareFast(a, b);
#ifdef MDTS_DEBUG_COMPARE
  const VectorCompareResult ref = CompareNaive(a, b);
  assert(r.order == ref.order && r.index == ref.index &&
         "optimized comparator diverged from Definition 6 reference");
#endif
  return r;
}

const char* VectorOrderName(VectorOrder order) {
  switch (order) {
    case VectorOrder::kLess:
      return "LESS";
    case VectorOrder::kGreater:
      return "GREATER";
    case VectorOrder::kEqual:
      return "EQUAL";
    case VectorOrder::kUndetermined:
      return "UNDETERMINED";
    case VectorOrder::kIdentical:
      return "IDENTICAL";
  }
  return "?";
}

}  // namespace mdts
