#include "core/log.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace mdts {

namespace {

constexpr const char* kItemLetters = "xyzw";

}  // namespace

std::string ItemName(ItemId item) {
  if (item < 4) return std::string(1, kItemLetters[item]);
  return "i" + std::to_string(item);
}

std::string OpName(const Op& op) {
  std::string out(1, op.type == OpType::kRead ? 'R' : 'W');
  out += std::to_string(op.txn);
  out += '[';
  out += ItemName(op.item);
  out += ']';
  return out;
}

Log::Log(std::vector<Op> ops) {
  for (const Op& op : ops) Append(op);
}

void Log::Append(const Op& op) {
  ops_.push_back(op);
  num_txns_ = std::max(num_txns_, op.txn);
  num_items_ = std::max(num_items_, op.item + 1);
}

Result<Log> Log::Parse(std::string_view text) {
  Log log;
  // Item names are interned in first-appearance order, except that the
  // canonical letters x, y, z, w always map to items 0-3 so that parsed
  // examples match the paper exactly.
  std::map<std::string, ItemId> items;
  items["x"] = 0;
  items["y"] = 1;
  items["z"] = 2;
  items["w"] = 3;
  ItemId next_item = 4;
  ItemId max_used = 0;
  bool any_named = false;

  size_t i = 0;
  auto err = [&](const std::string& what) {
    return Status::InvalidArgument(what + " at offset " + std::to_string(i) +
                                   " in log text");
  };
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    char c = text[i];
    if (c != 'R' && c != 'W' && c != 'r' && c != 'w') {
      return err("expected R or W");
    }
    OpType type = (c == 'R' || c == 'r') ? OpType::kRead : OpType::kWrite;
    ++i;
    if (i >= text.size() || !std::isdigit(static_cast<unsigned char>(text[i]))) {
      return err("expected transaction number");
    }
    uint64_t txn = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      txn = txn * 10 + static_cast<uint64_t>(text[i] - '0');
      ++i;
    }
    if (txn == 0) return err("transaction id 0 is reserved for virtual T0");
    // Accept both R1[x] and R1(x) bracket styles (the paper uses both).
    if (i >= text.size() || (text[i] != '[' && text[i] != '(')) {
      return err("expected [ or (");
    }
    char close = text[i] == '[' ? ']' : ')';
    ++i;
    std::string name;
    while (i < text.size() && text[i] != close) {
      name += text[i];
      ++i;
    }
    if (i >= text.size()) return err("unterminated item name");
    ++i;  // Consume the closing bracket.
    if (name.empty()) return err("empty item name");

    ItemId item = 0;
    if (std::isdigit(static_cast<unsigned char>(name[0]))) {
      item = static_cast<ItemId>(std::stoul(name));
    } else {
      auto it = items.find(name);
      if (it == items.end()) {
        it = items.emplace(name, next_item++).first;
      }
      item = it->second;
      any_named = true;
    }
    max_used = std::max(max_used, item);
    log.Append(Op{static_cast<TxnId>(txn), type, item});
  }
  (void)any_named;
  (void)max_used;
  return log;
}

std::vector<ItemId> Log::ReadSet(TxnId txn) const {
  std::vector<ItemId> out;
  for (const Op& op : ops_) {
    if (op.txn == txn && op.type == OpType::kRead &&
        std::find(out.begin(), out.end(), op.item) == out.end()) {
      out.push_back(op.item);
    }
  }
  return out;
}

std::vector<ItemId> Log::WriteSet(TxnId txn) const {
  std::vector<ItemId> out;
  for (const Op& op : ops_) {
    if (op.txn == txn && op.type == OpType::kWrite &&
        std::find(out.begin(), out.end(), op.item) == out.end()) {
      out.push_back(op.item);
    }
  }
  return out;
}

size_t Log::OpsOfTxn(TxnId txn) const {
  size_t count = 0;
  for (const Op& op : ops_) {
    if (op.txn == txn) ++count;
  }
  return count;
}

size_t Log::MaxOpsPerTxn() const {
  std::vector<size_t> counts(num_txns_ + 1, 0);
  for (const Op& op : ops_) ++counts[op.txn];
  size_t q = 0;
  for (size_t c : counts) q = std::max(q, c);
  return q;
}

bool Log::IsTwoStep() const {
  // Every transaction's reads must all precede its writes.
  std::vector<bool> wrote(num_txns_ + 1, false);
  for (const Op& op : ops_) {
    if (op.type == OpType::kWrite) {
      wrote[op.txn] = true;
    } else if (wrote[op.txn]) {
      return false;
    }
  }
  return true;
}

Log Log::Concat(const Log& other, bool disjoint_items) const {
  Log out = *this;
  TxnId txn_base = num_txns_;
  ItemId item_base = disjoint_items ? num_items_ : 0;
  for (const Op& op : other.ops_) {
    out.Append(Op{op.txn + txn_base, op.type, op.item + item_base});
  }
  return out;
}

std::string Log::ToString() const {
  std::string out;
  for (const Op& op : ops_) {
    if (!out.empty()) out += ' ';
    out += OpName(op);
  }
  return out;
}

}  // namespace mdts
