#include "core/explain.h"

#include <map>
#include <queue>

namespace mdts {

std::string RejectionExplanation::ToString() const {
  if (!rejected) return "log accepted: nothing to explain\n";
  std::string out = "operation " + OpName(rejected_op) + " (position " +
                    std::to_string(rejected_at) + ") rejected: T" +
                    std::to_string(rejected_op.txn) +
                    " is already ordered before the blocking T" +
                    std::to_string(blocker) + "\n";
  if (chain.empty()) {
    out += "  (the order follows from counter values of independent "
           "encodings,\n   not from a single dependency chain)\n";
    return out;
  }
  out += "the blocking order was fixed by this dependency chain:\n";
  for (const EncodingEvent& e : chain) {
    out += "  T" + std::to_string(e.from) + " < T" + std::to_string(e.to) +
           "   encoded while scheduling " + OpName(e.op) + " (position " +
           std::to_string(e.position) + ")\n";
  }
  return out;
}

RejectionExplanation ExplainRejection(const Log& log,
                                      const MtkOptions& options) {
  MtkOptions traced = options;
  traced.record_encodings = true;
  MtkScheduler scheduler(traced);

  RejectionExplanation result;
  for (size_t pos = 0; pos < log.size(); ++pos) {
    if (scheduler.Process(log.at(pos)) != OpDecision::kReject) continue;
    result.rejected = true;
    result.rejected_at = pos;
    result.rejected_op = log.at(pos);
    result.blocker = scheduler.LastBlocker();

    // BFS for the shortest encoded-dependency path
    // rejected_txn -> ... -> blocker.
    std::map<TxnId, std::vector<const EncodingEvent*>> out_edges;
    for (const EncodingEvent& e : scheduler.encodings()) {
      out_edges[e.from].push_back(&e);
    }
    std::map<TxnId, const EncodingEvent*> via;  // Node -> incoming edge.
    std::queue<TxnId> frontier;
    frontier.push(result.rejected_op.txn);
    via[result.rejected_op.txn] = nullptr;
    while (!frontier.empty() && via.find(result.blocker) == via.end()) {
      const TxnId node = frontier.front();
      frontier.pop();
      for (const EncodingEvent* e : out_edges[node]) {
        if (via.emplace(e->to, e).second) frontier.push(e->to);
      }
    }
    auto it = via.find(result.blocker);
    if (it != via.end()) {
      std::vector<EncodingEvent> reversed;
      for (const EncodingEvent* e = it->second; e != nullptr;
           e = via[e->from]) {
        reversed.push_back(*e);
      }
      result.chain.assign(reversed.rbegin(), reversed.rend());
    }
    return result;
  }
  return result;
}

}  // namespace mdts
