#ifndef MDTS_CORE_MTK_SCHEDULER_H_
#define MDTS_CORE_MTK_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/timestamp_vector.h"
#include "core/types.h"
#include "obs/abort_reason.h"

namespace mdts {

/// Decision of the scheduler for one incoming operation.
enum class OpDecision {
  kAccept,  // Operation executes.
  kReject,  // Operation refused; the issuing transaction must abort.
  kIgnore,  // Thomas-write-rule case: the write is skipped but the
            // transaction continues (Section III-D-6c).
};

const char* OpDecisionName(OpDecision d);

/// Configuration of the MT(k) protocol (Algorithm 1) and its paper-described
/// variations.
struct MtkOptions {
  /// Timestamp vector size k >= 1. Theorem 3: k = 2q-1 suffices when every
  /// transaction has at most q operations.
  size_t k = 3;

  /// Section III-D-4: on rejection caused by TS(i) < TS(j), flush TS(i) and
  /// seed its first element to TS(j,1)+1 so that the restarted incarnation
  /// is ordered after T_j and cannot starve.
  bool starvation_fix = false;

  /// Section III-D-6c: if a rejected write satisfies
  /// TS(RT(x)) < TS(i) < TS(WT(x)), ignore the write instead of aborting.
  bool thomas_write_rule = false;

  /// The variation noted after Theorem 3: at Algorithm 1 line 9, use
  /// Set(WT(x), i) instead of the pure test TS(WT(x)) < TS(i), allowing
  /// higher concurrency (at the cost of Observations ii-iv no longer
  /// holding, so Theorem 3's bound k = 2q-1 is no longer guaranteed).
  bool relaxed_read_path = false;

  /// Section IV's simplification for Theorem 5: cross out lines 9-10
  /// entirely, so a read is accepted only through Set(j, i). The composite
  /// protocol MT(k+) runs its subprotocols in this mode, which keeps their
  /// RT(x)/WT(x) indices synchronized.
  bool disable_old_read_path = false;

  /// Section III-D-5: when a dependency is created through a frequently
  /// accessed item, encode it near the right end of the vectors (copying the
  /// prefix of the defined vector) instead of at the leftmost free element,
  /// to avoid building a total order through hot items.
  bool optimized_encoding = false;

  /// An item is "hot" for optimized encoding once it has been accessed this
  /// many times.
  size_t hot_item_threshold = 8;

  /// Record every dependency encoding (which operation fixed which pair
  /// order) so rejections can be explained; see core/explain.h. Off by
  /// default: it costs memory proportional to the number of operations.
  bool record_encodings = false;

  /// If > 0, CompactCommitted() runs automatically after every this many
  /// commits, so a long-running scheduler's memory stays bounded by live
  /// transactions instead of total history. Leave 0 for recognizer-style
  /// use, where every transaction's final vector must stay inspectable.
  uint64_t compact_every = 0;

  /// Debug flag: route every comparison through CompareNaive, the literal
  /// Definition-6 reference, instead of the optimized mask-based
  /// comparator. Used for differential testing and as the pre-optimization
  /// baseline in bench/mt_throughput.
  bool naive_compare = false;
};

/// One recorded dependency encoding: processing `op` (the `position`-th
/// operation handed to the scheduler) fixed the order TS(from) < TS(to).
struct EncodingEvent {
  TxnId from = 0;
  TxnId to = 0;
  Op op;
  uint64_t position = 0;
};

/// Counters describing the work performed by a scheduler instance; used by
/// the complexity benchmarks (Section III-D-3's O(nqk) bound).
struct MtkStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t ignored_writes = 0;
  /// Per-reason breakdown of `rejected`; reject_reasons.total() == rejected.
  AbortReasonCounts reject_reasons;
  uint64_t set_calls = 0;
  uint64_t elements_assigned = 0;
  /// Element-level comparison steps spent inside Compare().
  uint64_t element_comparisons = 0;
  /// Committed-transaction states reclaimed by CompactCommitted().
  uint64_t txns_released = 0;
};

/// Everything known about the most recent kReject returned by
/// MtkScheduler::Process: the classified cause, the operation that was
/// refused, the blocking transaction (kVirtualTxn when no specific blocker
/// exists, e.g. an operation from an already-aborted transaction), and the
/// 1-based position of the operation in the Process stream.
struct RejectInfo {
  AbortReason reason = AbortReason::kNone;
  Op op;
  TxnId blocker = kVirtualTxn;
  uint64_t position = 0;
};

/// The MT(k) scheduler of Section III-A (Algorithm 1).
///
/// Every transaction T_i owns a timestamp vector TS(i) whose elements are
/// assigned lazily: each operation that establishes a new dependency
/// T_j -> T_i is encoded by making TS(j) < TS(i) through the procedure Set.
/// The virtual transaction T0 (id 0) initially holds the read and write
/// timestamps of every item.
///
/// The scheduler supports two usage styles:
///  * Recognizer style: feed the operations of a fixed log in order; the log
///    is in class TO(k) iff every operation returns kAccept (see
///    recognizer.h).
///  * Online style: interleave Process with CommitTxn / RestartTxn; aborted
///    transactions have their item-table entries withdrawn so a restarted
///    incarnation re-executes from scratch.
class MtkScheduler {
 public:
  explicit MtkScheduler(const MtkOptions& options);

  MtkScheduler(const MtkScheduler&) = delete;
  MtkScheduler& operator=(const MtkScheduler&) = delete;
  MtkScheduler(MtkScheduler&&) = default;
  MtkScheduler& operator=(MtkScheduler&&) = default;

  /// Runs Algorithm 1's Scheduler procedure on one operation. Operations
  /// from a transaction currently marked aborted are rejected outright.
  OpDecision Process(const Op& op);

  /// Marks the transaction committed. Its item-table entries remain (they
  /// carry the most recent read/write timestamps), but its vector can be
  /// reclaimed once it stops being any item's most recent accessor.
  void CommitTxn(TxnId txn);

  /// Starts a fresh incarnation of an aborted transaction. The previous
  /// incarnation's item accesses are withdrawn. With the starvation fix the
  /// vector keeps its seeded first element; otherwise it is reset to fully
  /// undefined.
  void RestartTxn(TxnId txn);

  bool IsAborted(TxnId txn) const;
  bool IsCommitted(TxnId txn) const;

  /// The transaction that caused the most recent rejection (the T_j with
  /// TS(i) < TS(j)); kVirtualTxn if no rejection has happened.
  TxnId LastBlocker() const { return last_reject_.blocker; }

  /// Classified cause, operation and blocker of the most recent rejection.
  const RejectInfo& last_reject() const { return last_reject_; }

  /// Human-readable one-liner for the most recent rejection, e.g.
  /// "W3[x7] rejected: lex_order (...; blocker T2)".
  std::string ExplainLastReject() const;

  /// Recorded dependency encodings (empty unless options.record_encodings).
  const std::vector<EncodingEvent>& encodings() const { return encodings_; }

  /// Number of operations handed to Process so far.
  uint64_t operations_processed() const { return ops_processed_; }

  /// Current timestamp vector of a transaction (auto-creating it).
  const TimestampVector& Ts(TxnId txn);

  /// Most recent live reader / writer of an item (RT(x), WT(x)); the virtual
  /// transaction if the item is untouched.
  TxnId Rt(ItemId item);
  TxnId Wt(ItemId item);

  const MtkOptions& options() const { return options_; }
  const MtkStats& stats() const { return stats_; }

  /// Drops dead (aborted-incarnation) entries from the item history stacks
  /// and keeps only each item's current most recent reader and writer:
  /// the storage-reclamation idea of Section III-D-6a/b.
  void CompactItemHistories();

  /// Full storage reclamation: compacts the item histories, then releases
  /// the state (vector included) of every committed transaction below the
  /// smallest id still referenced by an item or still live. Released ids
  /// must never be passed to Process/Ts/SerializationOrder again (IsAborted
  /// and IsCommitted keep answering correctly); do not mix with
  /// record_encodings, whose explain path replays arbitrary old ids.
  /// Returns the number of transaction states released.
  size_t CompactCommitted();

  /// Transaction states currently held (virtual T0 included): the quantity
  /// CompactCommitted() bounds.
  size_t live_txn_states() const { return txns_.size() + 1; }

  /// Smallest non-virtual id still stored (1 until the first compaction).
  TxnId base_txn_id() const { return base_; }

  /// Topologically sorts the given transactions under the determined vector
  /// order (Definition 6): the serializability order the protocol enforces.
  /// Unordered pairs keep their relative input order where possible.
  std::vector<TxnId> SerializationOrder(std::vector<TxnId> txns);

  /// Fig. 2-style dump of the timestamp table for transactions 0..max_txn.
  std::string DumpTable(TxnId max_txn);

 private:
  struct TxnState {
    TimestampVector ts;
    uint32_t incarnation = 0;
    bool aborted = false;
    bool committed = false;
    explicit TxnState(size_t k) : ts(k) {}
  };

  struct Access {
    TxnId txn = kVirtualTxn;
    uint32_t incarnation = 0;
  };

  struct ItemState {
    // Inline mirrors of readers.back() / writers.back() (kVirtualTxn when
    // the stack is empty). RT(x)/WT(x) resolution reads these instead of
    // chasing the stack vectors' heap storage; the stacks are only touched
    // when an op is accepted (push) or the mirrored top turns out dead.
    Access top_reader;
    Access top_writer;
    std::vector<Access> readers;  // Accepted reads, oldest first.
    std::vector<Access> writers;  // Accepted writes, oldest first.
    uint64_t access_count = 0;    // For hot-item detection (III-D-5).
  };

  /// A resolved accessor: its id plus a pointer to its state. Hot-path
  /// helpers pass these around so each transaction's deque slot is located
  /// once per operation (deque references are stable across growth).
  struct LiveRef {
    TxnId txn;
    TxnState* state;
  };

  TxnState& State(TxnId txn);
  ItemState& Item(ItemId item);

  /// Top live (current-incarnation, non-aborted) entry of an access stack,
  /// resolved; the virtual transaction if the stack drains empty. `top` is
  /// the stack's inline mirror and is kept in sync as dead entries pop.
  LiveRef TopLiveOf(Access& top, std::vector<Access>& stack);

  /// Algorithm 1's Set(j, i): ensure TS(j) < TS(i), encoding a new
  /// dependency if the order is not determined yet. Returns false iff the
  /// opposite order TS(j) > TS(i) already holds (or the vectors are
  /// exhausted), in which case the operation must be rejected.
  bool SetStates(TxnState& sj, TxnState& si, TxnId j, TxnId i, bool hot_item);

  void RecordEncoding(TxnId from, TxnId to);

  void ApplyStarvationSeed(TxnState& aborted, const TxnState& blocker);

  VectorCompareResult CompareStates(const TxnState& a, const TxnState& b);

  MtkOptions options_;
  MtkStats stats_;
  // The virtual T0 lives outside the compactable range: TopLive falls back
  // to it forever, so it can never be released.
  TxnState t0_;
  // Deque of states for ids [base_, base_ + size()): State() hands out
  // references that must survive later growth, and CompactCommitted pops
  // finished front entries to keep memory bounded by live transactions.
  std::deque<TxnState> txns_;
  TxnId base_ = 1;
  uint64_t commits_since_compact_ = 0;
  std::vector<ItemState> items_;
  TsElement lcount_ = 0;  // Current lower bound for k-th elements.
  TsElement ucount_ = 1;  // Current upper bound for k-th elements.
  RejectInfo last_reject_;
  // Cause of the most recent SetStates() == false, consumed by the reject
  // paths of Process: kGreater -> kLexOrder, kIdentical -> kEncodingExhausted.
  AbortReason set_failure_ = AbortReason::kNone;
  std::vector<EncodingEvent> encodings_;
  uint64_t ops_processed_ = 0;
  Op current_op_;  // The operation Process is currently handling.
};

}  // namespace mdts

#endif  // MDTS_CORE_MTK_SCHEDULER_H_
