#ifndef MDTS_CORE_TIMESTAMP_VECTOR_H_
#define MDTS_CORE_TIMESTAMP_VECTOR_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace mdts {

/// A single timestamp element. Elements are drawn from a logical clock, not a
/// real clock, and may be negative (lcount counts downward). kUndefinedElement
/// is the paper's '*': an element that has not been assigned yet. Per the
/// paper, "an undefined element is not equal to any integer".
using TsElement = int64_t;
constexpr TsElement kUndefinedElement = std::numeric_limits<int64_t>::min();

/// Outcome of comparing two timestamp vectors under Definition 6.
enum class VectorOrder {
  kLess,          // TS(i) < TS(j): first differing defined pair orders them.
  kGreater,       // TS(i) > TS(j).
  kEqual,         // '=': equal prefix, then both undefined at position m.
  kUndetermined,  // '?': equal prefix, then exactly one side undefined at m.
  kIdentical,     // All k elements defined and pairwise equal. Algorithm 1's
                  // counters make this unreachable between distinct live
                  // transactions; surfaced for defensive handling.
};

/// Result of a Definition-6 comparison: the order plus the 0-based position m
/// at which it was decided (== size() for kIdentical).
struct VectorCompareResult {
  VectorOrder order = VectorOrder::kIdentical;
  size_t index = 0;
};

/// The timestamp vector TS(i) of a transaction: k elements, each an integer
/// or undefined. Earlier (leftmost) elements are more significant; comparison
/// is lexicographic with the undefined-element rules of Definition 6.
///
/// Layout: the whole object is 72 bytes. Elements live inline (no heap
/// allocation, no pointer chase) for k <= kInlineCapacity, which covers
/// Theorem 3's k = 2q-1 for every transaction of up to 4 operations; larger
/// vectors spill to one heap block. A bitmask mirrors which elements are
/// defined (undefined slots also hold the kUndefinedElement sentinel), so
/// definedness queries, the defined-prefix length, and most of Compare()
/// resolve with mask arithmetic instead of per-element branching.
class TimestampVector {
 public:
  /// Largest k stored inline.
  static constexpr size_t kInlineCapacity = 8;
  /// Largest k whose defined-elements set fits the bitmask; larger vectors
  /// fall back to the reference comparator and sentinel scans (no protocol
  /// configuration in this repository goes near it: Theorem 3 needs
  /// k = 2q-1, i.e. transactions of 16+ operations to exceed it).
  static constexpr size_t kMaskBits = 32;

  /// All k elements undefined: the initial state of every real transaction.
  explicit TimestampVector(size_t k);

  TimestampVector(const TimestampVector& o);
  TimestampVector(TimestampVector&& o) noexcept;
  TimestampVector& operator=(const TimestampVector& o);
  TimestampVector& operator=(TimestampVector&& o) noexcept;
  ~TimestampVector() {
    if (k_ > kInlineCapacity) delete[] heap_;
  }

  /// The virtual transaction T0's vector <0, *, *, ..., *>.
  static TimestampVector Virtual(size_t k);

  size_t size() const { return k_; }

  bool IsDefined(size_t m) const {
    if (m < kMaskBits) return (mask_ >> m) & 1u;
    return data()[m] != kUndefinedElement;
  }
  TsElement Get(size_t m) const { return data()[m]; }
  void Set(size_t m, TsElement v) {
    data()[m] = v;
    if (m < kMaskBits) {
      const uint32_t bit = uint32_t{1} << m;
      mask_ = v == kUndefinedElement ? (mask_ & ~bit) : (mask_ | bit);
    }
  }

  /// Number of leading elements that are defined. O(1) for k <= kMaskBits.
  size_t DefinedPrefixLength() const;

  /// Count of defined elements anywhere in the vector.
  size_t DefinedCount() const;

  /// Clears every element back to undefined (used by the starvation fix,
  /// which "flushes out" an aborted transaction's vector).
  void Reset();

  /// Renders in the paper's notation, e.g. "<1,2,*>".
  std::string ToString() const;

  /// Raw element storage (undefined slots hold kUndefinedElement).
  const TsElement* data() const {
    return k_ <= kInlineCapacity ? inline_ : heap_;
  }

  /// Bit m set iff element m is defined (meaningful for m < kMaskBits).
  uint32_t defined_mask() const { return mask_; }

  friend bool operator==(const TimestampVector& a, const TimestampVector& b) {
    if (a.k_ != b.k_ || a.mask_ != b.mask_) return false;
    const TsElement* pa = a.data();
    const TsElement* pb = b.data();
    for (size_t m = 0; m < a.k_; ++m) {
      if (pa[m] != pb[m]) return false;
    }
    return true;
  }

 private:
  TsElement* data() { return k_ <= kInlineCapacity ? inline_ : heap_; }

  union {
    TsElement inline_[kInlineCapacity];
    TsElement* heap_;  // Engaged iff k_ > kInlineCapacity.
  };
  uint32_t k_;
  uint32_t mask_ = 0;  // Bit m set iff element m is defined (m < kMaskBits).
};

/// Definition-6 comparison of TS(i) = a against TS(j) = b. Scans left to
/// right for the first position where the elements are not both defined and
/// equal; the pair found there decides the order:
///   both defined, a<b  -> kLess      both defined, a>b -> kGreater
///   both undefined     -> kEqual     exactly one undefined -> kUndetermined
/// Vectors must have equal size.
///
/// This is the optimized comparator: the common defined prefix is located
/// with one mask AND plus a count-trailing-ones, the prefix values are
/// scanned with a branch-light memcmp-style loop, and the decision at the
/// break position is read off the two masks. Compile with
/// -DMDTS_DEBUG_COMPARE to cross-check every call against CompareNaive.
VectorCompareResult Compare(const TimestampVector& a, const TimestampVector& b);

/// The reference comparator: the literal per-element transcription of
/// Definition 6. Kept for differential testing (see the MDTS_DEBUG_COMPARE
/// flag and MtkOptions::naive_compare) and as the fallback for k > 32.
VectorCompareResult CompareNaive(const TimestampVector& a,
                                 const TimestampVector& b);

namespace internal {

/// Body of the optimized comparator, defined inline so scheduler hot loops
/// can absorb it. Use Compare(), which adds the MDTS_DEBUG_COMPARE
/// cross-check, unless calling from a measured hot path.
inline VectorCompareResult CompareFast(const TimestampVector& a,
                                       const TimestampVector& b) {
  const size_t k = a.size();
  if (k > TimestampVector::kMaskBits) return CompareNaive(a, b);
  // p = first position where the elements are not both defined; everything
  // before it is a both-defined prefix that only needs a value scan.
  const uint32_t both = a.defined_mask() & b.defined_mask();
  const size_t p = static_cast<size_t>(std::countr_one(both));
  const TsElement* pa = a.data();
  const TsElement* pb = b.data();
  for (size_t m = 0; m < p; ++m) {
    if (pa[m] != pb[m]) {
      return {pa[m] < pb[m] ? VectorOrder::kLess : VectorOrder::kGreater, m};
    }
  }
  if (p >= k) return {VectorOrder::kIdentical, k};
  // Exactly one or neither side defined at p: two mask bits decide.
  const bool da = (a.defined_mask() >> p) & 1u;
  const bool db = (b.defined_mask() >> p) & 1u;
  if (!da && !db) return {VectorOrder::kEqual, p};
  return {VectorOrder::kUndetermined, p};
}

}  // namespace internal

/// Convenience: strict Definition-6 "less than".
inline bool VectorLess(const TimestampVector& a, const TimestampVector& b) {
  return Compare(a, b).order == VectorOrder::kLess;
}

/// Name of a VectorOrder value, for diagnostics.
const char* VectorOrderName(VectorOrder order);

}  // namespace mdts

#endif  // MDTS_CORE_TIMESTAMP_VECTOR_H_
