#ifndef MDTS_CORE_VECTOR_TABLE_H_
#define MDTS_CORE_VECTOR_TABLE_H_

#include <cstdint>
#include <deque>

#include "core/timestamp_vector.h"

namespace mdts {

/// A reusable timestamp table implementing Algorithm 1's comparison and
/// Set(j, i) encoding rules over an arbitrary id space (transactions,
/// groups of the nested protocol MT(k1,k2), or supergroups). This is the
/// normal-encoding core of MtkScheduler without the item bookkeeping;
/// higher-level protocols compose one table per hierarchy level.
class VectorTable {
 public:
  /// Creates a table of k-element vectors. Entity 0 is initialized as the
  /// virtual entity <0, *, ..., *>; all others start fully undefined.
  explicit VectorTable(size_t k);

  size_t k() const { return k_; }

  /// The entity's current vector (auto-creating it fully undefined).
  const TimestampVector& Ts(uint32_t id);

  /// Definition-6 comparison of two entities' vectors.
  VectorCompareResult CompareIds(uint32_t a, uint32_t b);

  /// Algorithm 1's Set(j, i): ensures TS(j) < TS(i), encoding the
  /// dependency if undetermined. Returns false iff TS(j) > TS(i) is
  /// already fixed (the caller must reject the operation).
  bool Set(uint32_t j, uint32_t i);

  /// Resets an entity's vector to fully undefined (abort support).
  void Reset(uint32_t id);

  /// Section III-D-4 starvation seeding: flushes the entity's vector and
  /// sets its first element just past the blocker's, so the restarted
  /// incarnation is ordered after the transaction that caused the abort.
  void SeedAfter(uint32_t id, uint32_t blocker);

  /// Element-comparison and assignment counters (complexity accounting).
  uint64_t element_comparisons() const { return element_comparisons_; }
  uint64_t elements_assigned() const { return elements_assigned_; }

 private:
  TimestampVector& Mutable(uint32_t id);

  size_t k_;
  std::deque<TimestampVector> vectors_;
  TsElement lcount_ = 0;
  TsElement ucount_ = 1;
  uint64_t element_comparisons_ = 0;
  uint64_t elements_assigned_ = 0;
};

}  // namespace mdts

#endif  // MDTS_CORE_VECTOR_TABLE_H_
