#ifndef MDTS_CORE_VECTOR_TABLE_H_
#define MDTS_CORE_VECTOR_TABLE_H_

#include <cstdint>
#include <deque>

#include "core/timestamp_vector.h"

namespace mdts {

/// A reusable timestamp table implementing Algorithm 1's comparison and
/// Set(j, i) encoding rules over an arbitrary id space (transactions,
/// groups of the nested protocol MT(k1,k2), or supergroups). This is the
/// normal-encoding core of MtkScheduler without the item bookkeeping;
/// higher-level protocols compose one table per hierarchy level.
///
/// Storage is a deque of vectors for ids [base_id(), base_id() + n) plus a
/// permanent slot for the virtual entity 0, so a long-running owner can
/// reclaim finished entities' vectors with ReleaseBelow: memory then stays
/// bounded by the live id span instead of the total history.
class VectorTable {
 public:
  /// Creates a table of k-element vectors. Entity 0 is initialized as the
  /// virtual entity <0, *, ..., *>; all others start fully undefined.
  explicit VectorTable(size_t k);

  size_t k() const { return k_; }

  /// The entity's current vector (auto-creating it fully undefined).
  const TimestampVector& Ts(uint32_t id) { return Mutable(id); }

  /// Mutable access for owners that run their own encoding rules over this
  /// table's storage (e.g. DMT(k)'s per-site counters).
  TimestampVector& MutableTs(uint32_t id) { return Mutable(id); }

  /// Definition-6 comparison of two entities' vectors.
  VectorCompareResult CompareIds(uint32_t a, uint32_t b);

  /// Algorithm 1's Set(j, i): ensures TS(j) < TS(i), encoding the
  /// dependency if undetermined. Returns false iff TS(j) > TS(i) is
  /// already fixed (the caller must reject the operation).
  bool Set(uint32_t j, uint32_t i);

  /// Resets an entity's vector to fully undefined (abort support).
  void Reset(uint32_t id);

  /// Section III-D-4 starvation seeding: flushes the entity's vector and
  /// sets its first element just past the blocker's, so the restarted
  /// incarnation is ordered after the transaction that caused the abort.
  void SeedAfter(uint32_t id, uint32_t blocker);

  /// Compaction (Section III-D-6a/b storage reclamation, applied to the
  /// vectors themselves): drops every vector with 0 < id < min_live_id.
  /// The caller guarantees those ids are finished and will never be passed
  /// to this table again; entity 0 is permanent. Returns vectors released.
  size_t ReleaseBelow(uint32_t min_live_id);

  /// Smallest non-virtual id still stored (1 until the first release).
  uint32_t base_id() const { return base_; }

  /// Vectors currently held, including the virtual entity.
  size_t live_vectors() const { return vectors_.size() + 1; }

  /// Element-comparison and assignment counters (complexity accounting).
  uint64_t element_comparisons() const { return element_comparisons_; }
  uint64_t elements_assigned() const { return elements_assigned_; }

 private:
  TimestampVector& Mutable(uint32_t id);

  size_t k_;
  TimestampVector virtual_;              // Entity 0, never released.
  std::deque<TimestampVector> vectors_;  // Ids [base_, base_ + size()).
  uint32_t base_ = 1;
  TsElement lcount_ = 0;
  TsElement ucount_ = 1;
  uint64_t element_comparisons_ = 0;
  uint64_t elements_assigned_ = 0;
};

}  // namespace mdts

#endif  // MDTS_CORE_VECTOR_TABLE_H_
