#ifndef MDTS_CORE_LOG_H_
#define MDTS_CORE_LOG_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/types.h"

namespace mdts {

/// A log in the paper's sense (Section II): the interleaved sequence of
/// atomic read/write operations produced by a set of transactions. The
/// quintuple <D, T, Sigma, S, pi> is represented implicitly: D and T by the
/// dense id spaces, Sigma by the operation vector, the access function S by
/// ReadSet/WriteSet, and pi by each operation's index.
class Log {
 public:
  Log() = default;

  /// Builds a log from an explicit operation sequence.
  explicit Log(std::vector<Op> ops);

  /// Parses the paper's textual notation, e.g. "W1[x] W1[y] R3[x] R2[y]".
  /// Items may be the letters x/y/z/w, arbitrary lowercase identifiers, or
  /// numbers; whitespace between operations is optional. Returns
  /// InvalidArgument on malformed input or on use of transaction id 0
  /// (reserved for the virtual transaction).
  static Result<Log> Parse(std::string_view text);

  /// Appends one operation.
  void Append(const Op& op);
  void Append(TxnId txn, OpType type, ItemId item) {
    Append(Op{txn, type, item});
  }

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  const Op& at(size_t pos) const { return ops_[pos]; }

  /// Largest transaction id appearing in the log (0 if empty). Transactions
  /// are assumed to be numbered densely 1..num_txns.
  TxnId num_txns() const { return num_txns_; }

  /// One past the largest item id appearing in the log.
  ItemId num_items() const { return num_items_; }

  /// Distinct items read (resp. written) by the transaction, in first-access
  /// order: the paper's S(R_i) and S(W_i).
  std::vector<ItemId> ReadSet(TxnId txn) const;
  std::vector<ItemId> WriteSet(TxnId txn) const;

  /// Number of operations issued by the transaction.
  size_t OpsOfTxn(TxnId txn) const;

  /// Maximum number of operations in any single transaction: the paper's q.
  size_t MaxOpsPerTxn() const;

  /// True iff the log follows the two-step transaction model: every
  /// transaction's reads all precede its writes.
  bool IsTwoStep() const;

  /// Concatenation of two logs over disjoint transaction (and, if
  /// disjoint_items, item) name spaces: the paper's L1 . L2 operator used in
  /// the Fig. 4 membership arguments. The other log's transactions are
  /// renumbered to follow this log's; its items are either shared verbatim
  /// (disjoint_items = false) or shifted past this log's items.
  Log Concat(const Log& other, bool disjoint_items = true) const;

  /// Renders in the textual notation accepted by Parse.
  std::string ToString() const;

 private:
  std::vector<Op> ops_;
  TxnId num_txns_ = 0;
  ItemId num_items_ = 0;
};

}  // namespace mdts

#endif  // MDTS_CORE_LOG_H_
