#ifndef MDTS_CORE_ENCODING_H_
#define MDTS_CORE_ENCODING_H_

#include <cstddef>
#include <cstdint>

#include "core/timestamp_vector.h"
#include "obs/abort_reason.h"

namespace mdts {

/// Result of one EncodeDependency call (the body of Algorithm 1's Set(j, i)
/// after the vector comparison): whether TS(j) < TS(i) now holds, whether
/// new elements were written to make it hold, whether the Section III-D-5
/// right-end layout was used, how many elements were assigned, and - when
/// ok is false - the classified cause of the refusal.
struct EncodeOutcome {
  bool ok = false;
  bool encoded = false;
  bool hot_path = false;
  uint32_t elements_assigned = 0;
  AbortReason why = AbortReason::kNone;
};

/// Algorithm 1's Set(j, i) encoding step, shared by MtkScheduler and
/// ShardedMtkEngine so the two implementations cannot drift. The callers
/// differ only in where last-column values come from, abstracted as the
/// Counters policy:
///
///   TsElement Upper(TsElement above);  // Next value > above (and > every
///                                      // value Upper returned before).
///   TsElement Lower(TsElement below);  // Next value < below (and < every
///                                      // value Lower returned before).
///
/// MtkScheduler's global counters ignore the bound argument - monotonicity
/// alone guarantees it - while the engine's per-shard counters (value * N +
/// shard) skip ahead past cross-shard values. `above` may be
/// kUndefinedElement, meaning "no bound beyond the counter itself".
///
/// Every branch that would write TS(j) refuses when j is the virtual
/// transaction: TS(0) must stay <0, *, ..., *> forever (the engine reads it
/// lock-free from every shard, and mutating it would retroactively reorder
/// every transaction already encoded against T0). Those branches are only
/// reachable when optimized encoding has produced a live vector whose
/// prefix collides with T0's; with the option off they never fire.
///
/// Section III-D-5 (`optimized_encoding` && `hot_item`): a dependency born
/// on a frequently accessed item is pushed toward the right end of the
/// vectors - equal filler up to column k-2 with the 1 < 2 pair there, or
/// TS(j)'s defined prefix copied into TS(i) with the pair just past it - so
/// a hot item does not force a premature total order through column m.
template <typename Counters>
EncodeOutcome EncodeDependency(const VectorCompareResult& cr, size_t k,
                               TimestampVector& tj, TimestampVector& ti,
                               bool j_is_virtual, bool hot_item,
                               bool optimized_encoding, Counters&& counters) {
  EncodeOutcome out;
  const size_t m = cr.index;
  switch (cr.order) {
    case VectorOrder::kLess:
      out.ok = true;  // Line 17: the dependency is already encoded.
      return out;
    case VectorOrder::kGreater:
      out.why = AbortReason::kLexOrder;  // Line 18: opposite order is fixed.
      return out;
    case VectorOrder::kIdentical:
      // All k elements equal and defined. Algorithm 1's distinct k-th
      // elements make this unreachable between live transactions, but an
      // externally seeded vector could in principle collide; refuse safely.
      out.why = AbortReason::kEncodingExhausted;
      return out;
    case VectorOrder::kEqual: {
      // Line 19: both elements undefined; encode TS(j, m) < TS(i, m).
      if (j_is_virtual) {
        out.why = AbortReason::kEncodingExhausted;  // TS(0) is immutable.
        return out;
      }
      if (optimized_encoding && hot_item && m + 1 < k) {
        // Section III-D-5: extend both prefixes with equal filler up to
        // column k-2 and place the 1 < 2 pair there.
        const size_t e = k - 2;
        for (size_t h = m; h < e; ++h) {
          tj.Set(h, 0);
          ti.Set(h, 0);
          out.elements_assigned += 2;
        }
        tj.Set(e, 1);
        ti.Set(e, 2);
        out.elements_assigned += 2;
        out.hot_path = true;
      } else if (m + 1 == k) {
        // Last column: counter values keep every fully assigned vector
        // distinguishable from every other.
        const TsElement a = counters.Upper(kUndefinedElement);
        const TsElement b = counters.Upper(a);
        tj.Set(m, a);
        ti.Set(m, b);
        out.elements_assigned += 2;
      } else {
        // The plain '=' case below the last column: the constants 1 < 2.
        // Columns other than the k-th may therefore hold equal values
        // across different vectors, which is what lets MT(k) keep
        // transactions unordered longer than MT(k-1) (Section III-C).
        tj.Set(m, 1);
        ti.Set(m, 2);
        out.elements_assigned += 2;
      }
      out.ok = true;
      out.encoded = true;
      return out;
    }
    case VectorOrder::kUndetermined: {
      // Line 20: exactly one of the two elements is undefined.
      if (!ti.IsDefined(m)) {
        // TS(i, m) is the undefined one.
        const size_t p = tj.DefinedPrefixLength();
        const bool optimize = optimized_encoding && hot_item && !j_is_virtual;
        if (optimize && p + 1 < k) {
          // Section III-D-5, the worked variant: copy TS(j)'s defined
          // prefix into TS(i) and encode the dependency just past it
          // (e.g. <1,3,*,*> vs <*,*,*,*> becomes <1,3,1,*> vs <1,3,2,*>).
          for (size_t h = m; h < p; ++h) {
            ti.Set(h, tj.Get(h));
            ++out.elements_assigned;
          }
          tj.Set(p, 1);
          ti.Set(p, 2);
          out.elements_assigned += 2;
          out.hot_path = true;
        } else if (optimize && p + 1 == k) {
          for (size_t h = m; h < p; ++h) {
            ti.Set(h, tj.Get(h));
            ++out.elements_assigned;
          }
          const TsElement a = counters.Upper(kUndefinedElement);
          const TsElement b = counters.Upper(a);
          tj.Set(p, a);
          ti.Set(p, b);
          out.elements_assigned += 2;
          out.hot_path = true;
        } else if (m + 1 == k) {
          ti.Set(m, counters.Upper(tj.Get(m)));
          ++out.elements_assigned;
        } else {
          ti.Set(m, tj.Get(m) + 1);
          ++out.elements_assigned;
        }
      } else {
        // TS(j, m) is the undefined one: shrink from the low side.
        if (j_is_virtual) {
          out.why = AbortReason::kEncodingExhausted;  // TS(0) is immutable.
          return out;
        }
        if (m + 1 == k) {
          tj.Set(m, counters.Lower(ti.Get(m)));
        } else {
          tj.Set(m, ti.Get(m) - 1);
        }
        ++out.elements_assigned;
      }
      out.ok = true;
      out.encoded = true;
      return out;
    }
  }
  out.why = AbortReason::kEncodingExhausted;
  return out;
}

}  // namespace mdts

#endif  // MDTS_CORE_ENCODING_H_
