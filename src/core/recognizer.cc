#include "core/recognizer.h"

namespace mdts {

RecognizeResult RecognizeLog(const Log& log, const MtkOptions& options) {
  MtkScheduler scheduler(options);
  RecognizeResult result;
  for (size_t pos = 0; pos < log.size(); ++pos) {
    if (scheduler.Process(log.at(pos)) == OpDecision::kReject) {
      result.accepted = false;
      result.rejected_at = pos;
      return result;
    }
  }
  result.accepted = true;
  return result;
}

bool IsToK(const Log& log, size_t k) {
  MtkOptions options;
  options.k = k;
  return RecognizeLog(log, options).accepted;
}

Log EffectiveHistory(const Log& log, const MtkOptions& options) {
  MtkScheduler scheduler(options);
  std::vector<bool> accepted(log.size(), false);
  for (size_t pos = 0; pos < log.size(); ++pos) {
    accepted[pos] = scheduler.Process(log.at(pos)) == OpDecision::kAccept;
  }
  Log effective;
  for (size_t pos = 0; pos < log.size(); ++pos) {
    if (accepted[pos] && !scheduler.IsAborted(log.at(pos).txn)) {
      effective.Append(log.at(pos));
    }
  }
  return effective;
}

}  // namespace mdts
