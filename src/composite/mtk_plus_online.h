#ifndef MDTS_COMPOSITE_MTK_PLUS_ONLINE_H_
#define MDTS_COMPOSITE_MTK_PLUS_ONLINE_H_

#include <memory>
#include <string>
#include <vector>

#include "composite/mtk_plus.h"
#include "sched/scheduler.h"

namespace mdts {

/// Online adapter of the composite protocol MT(k+) implementing Algorithm
/// 2's full lifecycle, including case 4(i): when every subprotocol has been
/// stopped, "abort all the active transactions and rollback; restart all
/// the aborted transactions; go to 0". Realized with a generation counter:
/// the composite is rebuilt from scratch (all subprotocols live again) and
/// transactions begun under the previous generation are aborted at their
/// next interaction, restarting under the fresh tables.
class MtkPlusOnline : public Scheduler {
 public:
  explicit MtkPlusOnline(size_t k) : k_(k) { Rebuild(); }

  std::string name() const override {
    return "MT(" + std::to_string(k_) + "+)";
  }

  void OnBegin(TxnId txn) override {
    if (txn_generation_.size() <= txn) txn_generation_.resize(txn + 1, 0);
    txn_generation_[txn] = generation_;
  }

  SchedOutcome OnOperation(const Op& op) override {
    if (IsStale(op.txn)) return RecordAbort(AbortReason::kStaleTxn);
    const OpDecision d = inner_->Process(op);
    if (d == OpDecision::kAccept) return SchedOutcome::kAccepted;
    // Every subprotocol is stopped: Algorithm 2 case 4(i). The composite's
    // combined encoding capacity is exhausted, hence the full restart.
    Rebuild();
    ++generation_;
    ++full_restarts_;
    return RecordAbort(AbortReason::kEncodingExhausted);
  }

  SchedOutcome OnCommit(TxnId txn) override {
    if (IsStale(txn)) return RecordAbort(AbortReason::kStaleTxn);
    return SchedOutcome::kAccepted;
  }

  void OnRestart(TxnId txn) override { (void)txn; }

  size_t live_subprotocols() const { return inner_->live_count(); }
  uint64_t full_restarts() const { return full_restarts_; }

 private:
  bool IsStale(TxnId txn) const {
    return txn >= txn_generation_.size() ||
           txn_generation_[txn] != generation_;
  }

  void Rebuild() { inner_ = std::make_unique<MtkPlus>(k_); }

  size_t k_;
  std::unique_ptr<MtkPlus> inner_;
  uint32_t generation_ = 0;
  std::vector<uint32_t> txn_generation_;
  uint64_t full_restarts_ = 0;
};

}  // namespace mdts

#endif  // MDTS_COMPOSITE_MTK_PLUS_ONLINE_H_
