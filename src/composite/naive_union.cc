#include "composite/naive_union.h"

namespace mdts {

NaiveUnionRecognizer::NaiveUnionRecognizer(size_t k, bool with_old_read_path)
    : stopped_(k, false) {
  subs_.reserve(k);
  for (size_t h = 1; h <= k; ++h) {
    MtkOptions options;
    options.k = h;
    options.disable_old_read_path = !with_old_read_path;
    subs_.push_back(std::make_unique<MtkScheduler>(options));
  }
}

OpDecision NaiveUnionRecognizer::Process(const Op& op) {
  bool any_accepted = false;
  for (size_t h = 0; h < subs_.size(); ++h) {
    if (stopped_[h]) continue;
    const OpDecision d = subs_[h]->Process(op);
    if (d == OpDecision::kReject) {
      stopped_[h] = true;  // MT(h+1) is out of the race for this log.
    } else {
      any_accepted = true;
    }
  }
  return any_accepted ? OpDecision::kAccept : OpDecision::kReject;
}

size_t NaiveUnionRecognizer::live_count() const {
  size_t live = 0;
  for (bool s : stopped_) {
    if (!s) ++live;
  }
  return live;
}

bool IsToKPlus(const Log& log, size_t k) {
  NaiveUnionRecognizer composite(k);
  for (const Op& op : log.ops()) {
    if (composite.Process(op) == OpDecision::kReject) return false;
  }
  return true;
}

}  // namespace mdts
