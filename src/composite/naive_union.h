#ifndef MDTS_COMPOSITE_NAIVE_UNION_H_
#define MDTS_COMPOSITE_NAIVE_UNION_H_

#include <memory>
#include <vector>

#include "core/log.h"
#include "core/mtk_scheduler.h"

namespace mdts {

/// The reference construction of the composite protocol MT(k+) from the
/// start of Section IV: run MT(1), MT(2), ..., MT(k) independently, each
/// with its own timestamp table. An operation is accepted if at least one
/// still-running subprotocol accepts it; a subprotocol that rejects an
/// operation is stopped for good ("the log will not be in the class TO(h)
/// once an operation of the log is rejected by MT(h)"). The composite
/// rejects only when every subprotocol has been stopped.
///
/// By construction this recognizes exactly
///   TO(k+) = TO(1) u TO(2) u ... u TO(k).
class NaiveUnionRecognizer {
 public:
  /// If with_old_read_path is false, every subprotocol runs with Algorithm
  /// 1's lines 9-10 crossed out (the Theorem-5 mode that the shared-prefix
  /// implementation MtkPlus mirrors exactly).
  explicit NaiveUnionRecognizer(size_t k, bool with_old_read_path = true);

  /// Feeds one operation to every live subprotocol. Returns kAccept if any
  /// live subprotocol accepted (or Thomas-ignored) it; kReject otherwise.
  OpDecision Process(const Op& op);

  size_t k() const { return subs_.size(); }

  /// Number of subprotocols that have not been stopped yet.
  size_t live_count() const;

  /// True iff subprotocol MT(h) (1-based h) is still running.
  bool IsLive(size_t h) const { return !stopped_[h - 1]; }

  /// The subprotocol's scheduler, for table inspection (1-based h).
  const MtkScheduler& Sub(size_t h) const { return *subs_[h - 1]; }
  MtkScheduler& Sub(size_t h) { return *subs_[h - 1]; }

 private:
  std::vector<std::unique_ptr<MtkScheduler>> subs_;
  std::vector<bool> stopped_;
};

/// TO(k+) membership: the log is accepted by at least one of MT(1..k).
bool IsToKPlus(const Log& log, size_t k);

}  // namespace mdts

#endif  // MDTS_COMPOSITE_NAIVE_UNION_H_
