#ifndef MDTS_COMPOSITE_MTK_PLUS_H_
#define MDTS_COMPOSITE_MTK_PLUS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/log.h"
#include "core/mtk_scheduler.h"
#include "core/timestamp_vector.h"

namespace mdts {

/// Work counters for the composite protocol, used by the Section-IV cost
/// claim: the shared-prefix implementation schedules each operation in O(k)
/// column accesses instead of the O(k^2) of running MT(1..k) independently.
struct MtkPlusStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t columns_touched = 0;  // PREFIX/LASTCOL cells examined or written.
  uint64_t subs_stopped = 0;
};

/// The shared-prefix composite protocol MT(k+) of Section IV (Algorithm 2
/// and Fig. 10).
///
/// Timestamp storage is split into:
///  * PREFIX: k-1 shared columns; column h serves as column h of every
///    subprotocol MT(h+1), ..., MT(k) (Theorem 5: their prefixes always
///    agree, so one copy suffices). Prefix columns may hold equal values
///    across vectors.
///  * LASTCOL: k per-subprotocol columns; LASTCOL(h) is the dedicated last
///    column of MT(h) and is kept distinct-valued with the subprotocol's
///    own ucount/lcount counters.
///
/// For each newly created dependency T_j -> T_i, the column walk of
/// Algorithm 2 advances h = 1, 2, ...: at step h it resolves subprotocol
/// MT(h) on LASTCOL(h) (stopping MT(h) if the opposite order is already
/// fixed), then examines PREFIX(h) on behalf of MT(h+1..k): a determined
/// opposite order stops them all, an encodable cell records the dependency
/// for them all, and equal defined cells push the walk one column deeper.
/// The operation is accepted while at least one subprotocol remains live;
/// when all are stopped the operation is rejected (Algorithm 2 would abort
/// all active transactions and restart).
///
/// The subprotocols run with Algorithm 1's lines 9-10 crossed out, the mode
/// the paper adopts for Theorem 5; under that mode this class makes exactly
/// the same accept/stop decisions as NaiveUnionRecognizer(k, false), which
/// the differential tests assert.
class MtkPlus {
 public:
  explicit MtkPlus(size_t k);

  MtkPlus(const MtkPlus&) = delete;
  MtkPlus& operator=(const MtkPlus&) = delete;

  /// Schedules one operation.
  OpDecision Process(const Op& op);

  size_t k() const { return k_; }
  size_t live_count() const;
  bool IsLive(size_t h) const { return !stopped_[h - 1]; }  // 1-based h.

  /// MT(h)'s view of transaction t's vector: PREFIX columns 1..h-1 followed
  /// by LASTCOL(h); a TimestampVector of size h (1-based h).
  TimestampVector ViewOf(size_t h, TxnId txn);

  const MtkPlusStats& stats() const { return stats_; }

  /// Fig. 10-style dump of the PREFIX and LASTCOL tables for transactions
  /// 0..max_txn.
  std::string DumpTables(TxnId max_txn);

 private:
  struct TxnState {
    std::vector<TsElement> prefix;   // k-1 shared columns.
    std::vector<TsElement> lastcol;  // Column h-1 belongs to MT(h).
    explicit TxnState(size_t k)
        : prefix(k > 0 ? k - 1 : 0, kUndefinedElement),
          lastcol(k, kUndefinedElement) {}
  };

  struct Access {
    TxnId txn = kVirtualTxn;
  };

  struct ItemState {
    std::vector<TxnId> readers;
    std::vector<TxnId> writers;
  };

  TxnState& State(TxnId txn);
  ItemState& Item(ItemId item);

  /// Compares transactions a and b under the largest live subprotocol's
  /// view (all live subprotocols agree on every determined pair order, so
  /// the choice of view does not matter; see the class comment).
  VectorCompareResult CompareLargestView(TxnId a, TxnId b);

  /// Algorithm 2's column walk for dependency T_j -> T_i. Returns true if
  /// at least one subprotocol remains live afterwards.
  bool EncodeDependency(TxnId j, TxnId i);

  void StopSub(size_t h);             // 1-based.
  void StopSubsFrom(size_t h_first);  // Stops MT(h_first..k).

  size_t k_;
  MtkPlusStats stats_;
  std::deque<TxnState> txns_;
  std::vector<ItemState> items_;
  std::vector<bool> stopped_;       // Per subprotocol, 0-based.
  std::vector<TsElement> ucount_;   // Per subprotocol LASTCOL counters.
  std::vector<TsElement> lcount_;
};

/// TO(k+) membership decided by the shared-prefix implementation (the
/// subprotocols run without lines 9-10).
bool IsToKPlusShared(const Log& log, size_t k);

}  // namespace mdts

#endif  // MDTS_COMPOSITE_MTK_PLUS_H_
