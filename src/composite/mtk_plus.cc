#include "composite/mtk_plus.h"

#include <cassert>

#include "common/table_printer.h"

namespace mdts {

namespace {
constexpr TsElement U = kUndefinedElement;
}  // namespace

MtkPlus::MtkPlus(size_t k)
    : k_(k),
      stopped_(k, false),
      ucount_(k, 1),
      lcount_(k, 0) {
  assert(k_ >= 1);
  // The virtual transaction T0 = <0, *, ..., *> under every subprotocol:
  // its first column is PREFIX(1) for MT(2..k) and LASTCOL(1) for MT(1).
  txns_.emplace_back(k_);
  if (k_ >= 2) txns_[0].prefix[0] = 0;
  txns_[0].lastcol[0] = 0;
}

MtkPlus::TxnState& MtkPlus::State(TxnId txn) {
  while (txns_.size() <= txn) txns_.emplace_back(k_);
  return txns_[txn];
}

MtkPlus::ItemState& MtkPlus::Item(ItemId item) {
  if (items_.size() <= item) items_.resize(item + 1);
  return items_[item];
}

TimestampVector MtkPlus::ViewOf(size_t h, TxnId txn) {
  assert(h >= 1 && h <= k_);
  TxnState& s = State(txn);
  TimestampVector v(h);
  for (size_t c = 0; c + 1 < h; ++c) {
    if (s.prefix[c] != U) v.Set(c, s.prefix[c]);
  }
  if (s.lastcol[h - 1] != U) v.Set(h - 1, s.lastcol[h - 1]);
  return v;
}

VectorCompareResult MtkPlus::CompareLargestView(TxnId a, TxnId b) {
  size_t h = k_;
  while (h > 1 && stopped_[h - 1]) --h;
  return Compare(ViewOf(h, a), ViewOf(h, b));
}

void MtkPlus::StopSub(size_t h) {
  if (!stopped_[h - 1]) {
    stopped_[h - 1] = true;
    ++stats_.subs_stopped;
  }
}

void MtkPlus::StopSubsFrom(size_t h_first) {
  for (size_t h = h_first; h <= k_; ++h) StopSub(h);
}

size_t MtkPlus::live_count() const {
  size_t live = 0;
  for (bool s : stopped_) {
    if (!s) ++live;
  }
  return live;
}

bool MtkPlus::EncodeDependency(TxnId j, TxnId i) {
  // Algorithm 2's column walk. Step h resolves subprotocol MT(h) on its
  // dedicated column LASTCOL(h), then PREFIX(h) on behalf of MT(h+1..k).
  // Invariant on entering step h: PREFIX columns 1..h-1 of T_j and T_i are
  // defined and equal, which is exactly when MT(h)'s own comparison would
  // reach its last column.
  for (size_t h = 1; h <= k_; ++h) {
    if (!stopped_[h - 1]) {
      TsElement& cj = State(j).lastcol[h - 1];
      TsElement& ci = State(i).lastcol[h - 1];
      ++stats_.columns_touched;
      if (cj != U && ci != U) {
        // LASTCOL values are distinct by construction, so cj != ci.
        if (cj > ci) StopSub(h);
      } else if (cj == U && ci == U) {
        cj = ucount_[h - 1];
        ci = ucount_[h - 1] + 1;
        ucount_[h - 1] += 2;
      } else if (ci == U) {
        ci = ucount_[h - 1];
        ucount_[h - 1] += 1;
      } else {
        cj = lcount_[h - 1];
        lcount_[h - 1] -= 1;
      }
    }
    if (h == k_) break;
    bool any_later_live = false;
    for (size_t g = h + 1; g <= k_ && !any_later_live; ++g) {
      any_later_live = !stopped_[g - 1];
    }
    if (!any_later_live) break;

    TsElement& pj = State(j).prefix[h - 1];
    TsElement& pi = State(i).prefix[h - 1];
    ++stats_.columns_touched;
    if (pj != U && pi != U) {
      if (pj < pi) break;                    // Already encoded for MT(>h).
      if (pj > pi) {
        StopSubsFrom(h + 1);                 // Conflicting dependency.
        break;
      }
      continue;                              // Equal: walk one column deeper.
    }
    if (pj == U && pi == U) {
      pj = 1;  // The '=' encoding of Algorithm 1 in a non-last column.
      pi = 2;
      break;
    }
    if (pi == U) {
      pi = pj + 1;
      break;
    }
    pj = pi - 1;
    break;
  }
  return live_count() > 0;
}

OpDecision MtkPlus::Process(const Op& op) {
  const TxnId i = op.txn;
  if (i == kVirtualTxn || live_count() == 0) {
    ++stats_.rejected;
    return OpDecision::kReject;
  }
  ItemState& item = Item(op.item);
  const TxnId jr = item.readers.empty() ? kVirtualTxn : item.readers.back();
  const TxnId jw = item.writers.empty() ? kVirtualTxn : item.writers.back();
  const TxnId j =
      CompareLargestView(jr, jw).order == VectorOrder::kLess ? jw : jr;

  if (j != i && !EncodeDependency(j, i)) {
    ++stats_.rejected;
    return OpDecision::kReject;
  }
  if (op.type == OpType::kRead) {
    item.readers.push_back(i);
  } else {
    item.writers.push_back(i);
  }
  ++stats_.accepted;
  return OpDecision::kAccept;
}

std::string MtkPlus::DumpTables(TxnId max_txn) {
  std::vector<std::string> header = {"txn"};
  for (size_t c = 1; c < k_; ++c) {
    header.push_back("PREFIX(" + std::to_string(c) + ")");
  }
  for (size_t h = 1; h <= k_; ++h) {
    header.push_back("LASTCOL(" + std::to_string(h) + ")" +
                     (stopped_[h - 1] ? " [stopped]" : ""));
  }
  TablePrinter table(header);
  auto cell = [](TsElement e) {
    return e == U ? std::string("*") : std::to_string(e);
  };
  for (TxnId t = 0; t <= max_txn; ++t) {
    TxnState& s = State(t);
    std::vector<std::string> row = {"T" + std::to_string(t)};
    for (size_t c = 0; c + 1 < k_; ++c) row.push_back(cell(s.prefix[c]));
    for (size_t h = 0; h < k_; ++h) row.push_back(cell(s.lastcol[h]));
    table.AddRow(row);
  }
  return table.ToString();
}

bool IsToKPlusShared(const Log& log, size_t k) {
  MtkPlus composite(k);
  for (const Op& op : log.ops()) {
    if (composite.Process(op) == OpDecision::kReject) return false;
  }
  return true;
}

}  // namespace mdts
