#include "wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace mdts {

namespace {

namespace fs = std::filesystem;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int b = 0; b < 8; ++b) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string StreamPath(const std::string& dir, uint32_t stream) {
  return (fs::path(dir) / ("wal-" + std::to_string(stream) + ".log"))
      .string();
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int b = 0; b < 4; ++b) out->push_back(uint8_t(v >> (8 * b)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int b = 0; b < 8; ++b) out->push_back(uint8_t(v >> (8 * b)));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int b = 3; b >= 0; --b) v = (v << 8) | p[b];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int b = 7; b >= 0; --b) v = (v << 8) | p[b];
  return v;
}

// Loops until the whole span is written; returns false on I/O error.
bool WriteFully(int fd, const uint8_t* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= size_t(n);
  }
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kNone:
      return "none";
    case WalSyncPolicy::kGroupCommit:
      return "group_commit";
    case WalSyncPolicy::kEveryCommit:
      return "every_commit";
  }
  return "unknown";
}

namespace wal_internal {

void EncodeStreamHeader(uint32_t k, uint32_t stream,
                        std::vector<uint8_t>* out) {
  PutU64(out, kStreamMagic);
  PutU32(out, kStreamVersion);
  PutU32(out, k);
  PutU32(out, stream);
}

bool DecodeStreamHeader(const uint8_t* data, size_t len, uint32_t* k,
                        uint32_t* stream) {
  if (len < kStreamHeaderBytes) return false;
  if (GetU64(data) != kStreamMagic) return false;
  if (GetU32(data + 8) != kStreamVersion) return false;
  *k = GetU32(data + 12);
  *stream = GetU32(data + 16);
  return *k > 0 && *k <= 64;
}

void EncodeFrame(TxnId txn, const TimestampVector& vec,
                 std::span<const ItemId> writes, std::vector<uint8_t>* out) {
  const size_t k = vec.size();
  const uint32_t payload_len =
      uint32_t(8 + 8 * k + 4 * writes.size());
  const size_t frame_start = out->size();
  PutU32(out, payload_len);
  PutU32(out, 0);  // CRC patched below.
  PutU32(out, txn);
  PutU32(out, uint32_t(writes.size()));
  for (size_t m = 0; m < k; ++m) {
    // Raw elements: undefined slots carry the kUndefinedElement sentinel,
    // from which the decoder rebuilds the defined-mask via Set().
    PutU64(out, uint64_t(vec.IsDefined(m) ? vec.Get(m) : kUndefinedElement));
  }
  for (ItemId item : writes) PutU32(out, item);
  const uint8_t* payload = out->data() + frame_start + kFrameHeaderBytes;
  const uint32_t crc = Crc32(payload, payload_len);
  for (int b = 0; b < 4; ++b) {
    (*out)[frame_start + 4 + size_t(b)] = uint8_t(crc >> (8 * b));
  }
}

size_t DecodeFrame(const uint8_t* data, size_t len, size_t k,
                   WalCommitRecord* out) {
  if (len < kFrameHeaderBytes) return 0;
  const uint32_t payload_len = GetU32(data);
  if (payload_len > kMaxPayloadBytes) return 0;
  if (len < kFrameHeaderBytes + payload_len) return 0;
  const uint8_t* payload = data + kFrameHeaderBytes;
  if (Crc32(payload, payload_len) != GetU32(data + 4)) return 0;
  if (payload_len < 8 + 8 * k) return 0;
  out->txn = GetU32(payload);
  const uint32_t nwrites = GetU32(payload + 4);
  if (payload_len != 8 + 8 * k + 4 * size_t(nwrites)) return 0;
  out->vec.Reset();
  for (size_t m = 0; m < k; ++m) {
    const auto v = TsElement(GetU64(payload + 8 + 8 * m));
    if (v != kUndefinedElement) out->vec.Set(m, v);
  }
  out->writes.assign(nwrites, 0);
  for (uint32_t w = 0; w < nwrites; ++w) {
    out->writes[w] = GetU32(payload + 8 + 8 * k + 4 * size_t(w));
  }
  return kFrameHeaderBytes + payload_len;
}

}  // namespace wal_internal

ParallelWal::ParallelWal(const WalOptions& options) : options_(options) {
  if (options_.num_streams == 0) options_.num_streams = 1;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) return;
  if (options_.metrics != nullptr) {
    m_appends_ = options_.metrics->GetCounter("wal.appends");
    m_fsyncs_ = options_.metrics->GetCounter("wal.fsyncs");
    m_bytes_ = options_.metrics->GetCounter("wal.bytes");
    m_group_size_ = options_.metrics->GetHistogram("wal.group_commit_size");
  }
  for (uint32_t i = 0; i < options_.num_streams; ++i) {
    Stream& s = streams_.emplace_back();
    s.path = StreamPath(options_.dir, i);
    s.fd = ::open(s.path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (s.fd < 0) return;
    std::vector<uint8_t> header;
    wal_internal::EncodeStreamHeader(uint32_t(options_.k), i, &header);
    if (!WriteFully(s.fd, header.data(), header.size())) return;
    // The header is flushed but not synced: a crash before the first sync
    // legitimately leaves an empty (truncated-to-zero) stream.
    s.flushed = header.size();
  }
  ok_ = true;
  if (options_.sync_policy == WalSyncPolicy::kGroupCommit &&
      options_.sync_interval_ms > 0) {
    flusher_ = std::thread([this] {
      std::unique_lock<std::mutex> lk(flusher_mu_);
      while (!flusher_stop_) {
        flusher_cv_.wait_for(
            lk, std::chrono::milliseconds(options_.sync_interval_ms));
        if (flusher_stop_) break;
        lk.unlock();
        SyncAll();
        lk.lock();
      }
    });
  }
}

ParallelWal::~ParallelWal() { Close(); }

void ParallelWal::FlushLocked(Stream& s) {
  if (s.buf.empty()) return;
  if (WriteFully(s.fd, s.buf.data(), s.buf.size())) {
    s.flushed += s.buf.size();
  }
  s.buf.clear();
}

void ParallelWal::SyncLocked(Stream& s) {
  if (s.pending_records == 0 && s.buf.empty()) return;
  FlushLocked(s);
  ::fdatasync(s.fd);
  s.synced = s.flushed;
  fsyncs_total_.fetch_add(1, std::memory_order_relaxed);
  if (m_fsyncs_ != nullptr) m_fsyncs_->Add(1);
  if (m_group_size_ != nullptr) m_group_size_->Record(s.pending_records);
  s.pending_records = 0;
}

void ParallelWal::TriggerCrashLocked(Stream& s,
                                     const std::vector<uint8_t>& frame) {
  switch (options_.crash->point) {
    case WalCrashPoint::kBeforeFsync:
      // The record (and any peers pending since the last sync) is buffered
      // but never fsynced: the crash image is the last synced prefix.
      s.buf.insert(s.buf.end(), frame.begin(), frame.end());
      break;
    case WalCrashPoint::kMidRecord: {
      // The OS flushed everything up to a point inside this record's
      // frame: the image ends with a torn partial record. Earlier pending
      // records survive (they precede the torn bytes in the same prefix).
      const uint64_t torn = std::clamp<uint64_t>(options_.crash->torn_bytes,
                                                 1, frame.size() - 1);
      s.buf.insert(s.buf.end(), frame.begin(), frame.begin() + long(torn));
      FlushLocked(s);
      s.surviving_override = s.flushed;
      break;
    }
    case WalCrashPoint::kBetweenStreams:
      // This stream's group commit completed; the process died before the
      // peer streams synced theirs, so the streams diverge.
      s.buf.insert(s.buf.end(), frame.begin(), frame.end());
      FlushLocked(s);
      ::fdatasync(s.fd);
      s.synced = s.flushed;
      s.surviving_override = s.flushed;
      break;
    case WalCrashPoint::kNone:
      break;
  }
}

void ParallelWal::CrashNow(WalCrashPoint point) {
  if (!ok_ || point == WalCrashPoint::kNone) return;
  bool expected = false;
  if (!crashed_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return;  // Already crashed; the first image wins.
  }
  // Unlike TriggerCrashLocked there is no in-flight frame: the crash comes
  // from outside the append path (e.g. between a version install and its
  // commit append). Stream 0 stands in as the trigger stream for the
  // point-specific image; the peers keep the default last-synced prefix.
  Stream& s = streams_[0];
  {
    std::lock_guard<std::mutex> lock(s.mu);
    switch (point) {
      case WalCrashPoint::kBeforeFsync:
        // Every unsynced byte on every stream is lost.
        break;
      case WalCrashPoint::kMidRecord: {
        // The stream's pending records reach the disk followed by a partial
        // frame header - the torn tail recovery must detect and truncate.
        static constexpr uint8_t kTornTail[] = {0x28, 0x00, 0x00,
                                                0x00, 0x5A, 0xA5};
        s.buf.insert(s.buf.end(), std::begin(kTornTail), std::end(kTornTail));
        FlushLocked(s);
        s.surviving_override = s.flushed;
        break;
      }
      case WalCrashPoint::kBetweenStreams:
        // This stream's group commit completed; the peers lose theirs.
        FlushLocked(s);
        ::fdatasync(s.fd);
        s.synced = s.flushed;
        s.surviving_override = s.flushed;
        break;
      case WalCrashPoint::kNone:
        break;
    }
  }
  if (options_.on_crash) options_.on_crash();
}

bool ParallelWal::AppendCommit(TxnId txn, const TimestampVector& vec,
                               std::span<const ItemId> writes,
                               WalAppendTicket* ticket) {
  if (!ok_ || closed_.load(std::memory_order_acquire) ||
      crashed_.load(std::memory_order_acquire)) {
    append_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  assert(vec.size() == options_.k);
  std::vector<uint8_t> frame;
  frame.reserve(wal_internal::kFrameHeaderBytes + 8 + 8 * options_.k +
                4 * writes.size());
  wal_internal::EncodeFrame(txn, vec, writes, &frame);

  const uint32_t idx =
      uint32_t(obs_internal::ThreadSlot() % streams_.size());
  Stream& s = streams_[idx];
  std::lock_guard<std::mutex> lock(s.mu);
  if (crashed_.load(std::memory_order_acquire)) {
    append_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t n = appends_total_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.crash != nullptr && options_.crash->armed() &&
      n >= options_.crash->at_append) {
    bool expected = false;
    if (crashed_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      TriggerCrashLocked(s, frame);
      if (options_.on_crash) options_.on_crash();
    }
    append_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  s.buf.insert(s.buf.end(), frame.begin(), frame.end());
  ++s.seq;
  ++s.pending_records;
  if (ticket != nullptr) {
    ticket->stream = idx;
    ticket->end_offset = s.flushed + s.buf.size();
    ticket->sync_wait_us = 0;
  }
  if (m_appends_ != nullptr) m_appends_->Add(1);
  if (m_bytes_ != nullptr) m_bytes_->Add(frame.size());
  // Clock reads only when the caller asked for the ticket (phase
  // attribution); the unticketed hot path stays clock-free.
  const auto sync_timed = [&] {
    if (ticket == nullptr) {
      SyncLocked(s);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    SyncLocked(s);
    ticket->sync_wait_us = uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };
  switch (options_.sync_policy) {
    case WalSyncPolicy::kEveryCommit:
      sync_timed();
      break;
    case WalSyncPolicy::kGroupCommit:
      if (s.pending_records >= options_.group_commit_ops) sync_timed();
      break;
    case WalSyncPolicy::kNone:
      // Keep the user-space buffer bounded; write() without sync.
      if (s.buf.size() >= (1u << 20)) FlushLocked(s);
      break;
  }
  return true;
}

void ParallelWal::SyncAll() {
  if (!ok_ || crashed_.load(std::memory_order_acquire)) return;
  for (Stream& s : streams_) {
    std::lock_guard<std::mutex> lock(s.mu);
    if (crashed_.load(std::memory_order_acquire)) return;
    SyncLocked(s);
  }
}

void ParallelWal::Close() {
  bool expected = false;
  if (!closed_.compare_exchange_strong(expected, true)) return;
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flusher_mu_);
      flusher_stop_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  if (!ok_) return;
  const bool crashed = crashed_.load(std::memory_order_acquire);
  for (Stream& s : streams_) {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.fd < 0) continue;
    if (crashed) {
      // Materialize the crash image: unsynced bytes are lost, torn
      // fragments and already-synced prefixes survive.
      const uint64_t surviving = s.surviving_override != ~0ull
                                     ? s.surviving_override
                                     : s.synced;
      s.buf.clear();
      if (::ftruncate(s.fd, off_t(surviving)) == 0) {
        ::fdatasync(s.fd);
      }
    } else {
      FlushLocked(s);
      ::fdatasync(s.fd);
      s.synced = s.flushed;
    }
    ::close(s.fd);
    s.fd = -1;
  }
}

uint64_t ParallelWal::SyncedBytes(uint32_t stream) const {
  const Stream& s = streams_.at(stream);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.synced;
}

WalStats ParallelWal::stats() const {
  WalStats out;
  out.appends = appends_total_.load(std::memory_order_relaxed);
  out.append_failures = append_failures_.load(std::memory_order_relaxed);
  out.fsyncs = fsyncs_total_.load(std::memory_order_relaxed);
  // Crash-triggering appends are counted in appends_total_ but never
  // acknowledged; report only acknowledged appends.
  uint64_t refused = 0;
  if (crashed_.load(std::memory_order_acquire)) refused = 1;
  out.appends -= std::min(out.appends, refused);
  for (const Stream& s : streams_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.bytes += s.flushed + s.buf.size();
  }
  return out;
}

WalRecovery ParallelWal::Recover(const std::string& dir, bool truncate_torn) {
  using wal_internal::DecodeFrame;
  using wal_internal::DecodeStreamHeader;
  using wal_internal::kStreamHeaderBytes;
  WalRecovery out;
  for (uint32_t i = 0;; ++i) {
    const std::string path = StreamPath(dir, i);
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) break;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      out.error = "cannot read " + path;
      return out;
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    WalStreamRecovery info;
    info.path = path;
    info.file_bytes = bytes.size();
    if (bytes.empty()) {
      // A stream that crashed before its first fsync: legitimately empty.
      out.streams.push_back(std::move(info));
      continue;
    }
    uint32_t k = 0;
    uint32_t stream_id = 0;
    if (!DecodeStreamHeader(bytes.data(), bytes.size(), &k, &stream_id)) {
      // Header never made it to disk intact; the whole file is a torn tail.
      info.torn = true;
      info.valid_bytes = 0;
      ++out.torn_streams;
      if (truncate_torn) fs::resize_file(path, 0, ec);
      out.streams.push_back(std::move(info));
      continue;
    }
    if (out.k == 0) {
      out.k = k;
    } else if (out.k != k) {
      out.error = path + ": k=" + std::to_string(k) +
                  " does not match earlier streams (k=" +
                  std::to_string(out.k) + ")";
      return out;
    }
    size_t off = kStreamHeaderBytes;
    uint64_t seq = 0;
    for (;;) {
      WalCommitRecord rec(k);
      const size_t consumed =
          DecodeFrame(bytes.data() + off, bytes.size() - off, k, &rec);
      if (consumed == 0) break;
      rec.stream = i;
      rec.seq = seq++;
      out.records.push_back(std::move(rec));
      off += consumed;
    }
    info.valid_bytes = off;
    info.records = seq;
    info.torn = off < bytes.size();
    if (info.torn) {
      ++out.torn_streams;
      if (truncate_torn) fs::resize_file(path, off, ec);
    }
    out.streams.push_back(std::move(info));
  }
  if (out.streams.empty()) {
    out.error = "no WAL streams found in " + dir;
    return out;
  }
  // Merge by vector order: raw lexicographic element comparison (the
  // undefined sentinel INT64_MIN sorts low — see WalRecovery::records for
  // why this refines the Definition-6 order on conflicting pairs).
  std::sort(out.records.begin(), out.records.end(),
            [](const WalCommitRecord& a, const WalCommitRecord& b) {
              const size_t k = a.vec.size();
              for (size_t m = 0; m < k; ++m) {
                const TsElement av =
                    a.vec.IsDefined(m) ? a.vec.Get(m) : kUndefinedElement;
                const TsElement bv =
                    b.vec.IsDefined(m) ? b.vec.Get(m) : kUndefinedElement;
                if (av != bv) return av < bv;
              }
              if (a.stream != b.stream) return a.stream < b.stream;
              return a.seq < b.seq;
            });
  for (size_t r = 0; r < out.records.size(); ++r) {
    for (ItemId item : out.records[r].writes) {
      out.item_writer[item] = r;
    }
  }
  out.ok = true;
  return out;
}

}  // namespace mdts
