#ifndef MDTS_WAL_WAL_H_
#define MDTS_WAL_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/timestamp_vector.h"
#include "core/types.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace mdts {

/// Taurus-style parallel write-ahead log (PAPERS.md: "Taurus: Lightweight
/// Parallel Logging for In-Memory Database Management Systems"): N
/// append-only log streams written in parallel, one per worker, with no
/// central sequencer. Taurus recovers the global commit order from a
/// vectorized LSN carried by every record; here that vector is the
/// transaction's MT(k) timestamp vector, which the protocol already
/// maintains - the multidimensional timestamps double as the recovery
/// ordering for free.
///
/// Named `wal` (not `log`) to avoid colliding with the paper's op-log
/// parser in src/core/log.h.
///
/// Durability contract: a commit record is DURABLE once an fdatasync
/// covering its bytes has completed (WalAppendTicket::end_offset <=
/// SyncedBytes(stream)). The sync policy decides when that happens:
/// kEveryCommit on every append, kGroupCommit once `group_commit_ops`
/// records are pending on the stream (or the optional interval flusher /
/// an explicit SyncAll() boundary fires first), kNone only at Close().
/// Recovery promises to rebuild every durable record; records beyond the
/// last fsync may survive (the OS often flushes more) but are not owed.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `len` bytes.
/// `seed` chains multi-buffer computations (pass a previous return value).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// When fdatasync runs relative to appends.
enum class WalSyncPolicy : uint8_t {
  kNone = 0,     ///< Never during the run (Close still syncs). Fastest,
                 ///< no durability until shutdown.
  kGroupCommit,  ///< Group commit: fsync once group_commit_ops records are
                 ///< pending on a stream, when the interval flusher fires,
                 ///< or on an explicit SyncAll() boundary.
  kEveryCommit,  ///< fsync after every record. Strongest, slowest.
};

/// Stable snake_case identifier ("none", "group_commit", "every_commit").
const char* WalSyncPolicyName(WalSyncPolicy policy);

struct WalOptions {
  /// Directory holding the stream files `wal-<i>.log`. Created if missing.
  /// Existing stream files are truncated: recover BEFORE constructing a
  /// fresh ParallelWal over the same directory, and re-append (checkpoint)
  /// the recovered records into the new log so a second crash still finds
  /// them.
  std::string dir;

  /// Number of parallel streams. Appending threads are spread across them
  /// by thread slot, so with >= num_streams worker threads each stream is
  /// written (mostly) by one worker - Taurus's per-worker layout.
  size_t num_streams = 4;

  /// Timestamp vector size; must match the engine's EngineOptions::k.
  size_t k = 3;

  WalSyncPolicy sync_policy = WalSyncPolicy::kGroupCommit;

  /// kGroupCommit: pending-record count that triggers a stream fsync.
  size_t group_commit_ops = 32;

  /// kGroupCommit: > 0 starts a background flusher that SyncAll()s every
  /// this many milliseconds, bounding the durability latency of a commit
  /// stuck in a group that never fills. 0 = no flusher.
  uint64_t sync_interval_ms = 0;

  /// Registry receiving `wal.appends`, `wal.fsyncs`, `wal.bytes` counters
  /// and the `wal.group_commit_size` histogram (records per fsync). Null
  /// disables mirroring. Must outlive the ParallelWal.
  MetricsRegistry* metrics = nullptr;

  /// Optional process-crash injection (src/fault): when armed, the
  /// `at_append`-th AppendCommit "crashes the process" - the WAL stops
  /// accepting records and Close() truncates every stream file to the
  /// bytes that would have survived a real crash at that point (see
  /// WalCrashPoint). Must outlive the ParallelWal.
  const WalCrashPlan* crash = nullptr;

  /// Invoked exactly once, at the moment an injected crash fires (either
  /// the armed plan's triggering append or an external CrashNow call) -
  /// the last chance to dump in-memory diagnostics (the flight recorder)
  /// before the harness's planned _Exit. Runs on the crashing thread,
  /// possibly while a stream lock is held: must not call back into the WAL.
  std::function<void()> on_crash;
};

/// One decoded commit record: the transaction, its MT(k) vector (the
/// Taurus LSN vector), and the items it wrote.
struct WalCommitRecord {
  TxnId txn = 0;
  uint32_t stream = 0;  ///< Stream the record was read from.
  uint64_t seq = 0;     ///< 0-based record index within its stream.
  TimestampVector vec;
  std::vector<ItemId> writes;

  explicit WalCommitRecord(size_t k) : vec(k) {}
};

/// Per-stream recovery outcome.
struct WalStreamRecovery {
  std::string path;
  uint64_t file_bytes = 0;   ///< Size found on disk.
  uint64_t valid_bytes = 0;  ///< Prefix that parsed cleanly.
  uint64_t records = 0;
  bool torn = false;  ///< valid_bytes < file_bytes: tail truncated.
};

/// Result of ParallelWal::Recover: every valid record from every stream,
/// merged into one global order, plus the committed item state they imply.
struct WalRecovery {
  bool ok = false;
  std::string error;  ///< Set when !ok.
  size_t k = 0;
  std::vector<WalStreamRecovery> streams;
  uint64_t torn_streams = 0;

  /// All valid records, merged by vector order: raw lexicographic
  /// comparison of the k elements (ties broken by stream then seq). The
  /// undefined sentinel is INT64_MIN, so an element a committed writer
  /// never got (because Algorithm 1 assigned it to the live vector only
  /// AFTER the commit record was written) sorts low - exactly the
  /// direction that keeps a stale committed writer below its successors,
  /// whose commit-time vectors already carry the ordering elements (the
  /// order between conflicting writers is fixed at the later writer's
  /// admission, which precedes its commit). Raw order therefore refines
  /// the Definition-6 order on every conflicting committed pair.
  std::vector<WalCommitRecord> records;

  /// Committed item state: item -> index (into `records`) of its last
  /// writer in the merged order.
  std::map<ItemId, size_t> item_writer;

  /// The record that owns `item`'s committed state, null if never written.
  const WalCommitRecord* WriterOf(ItemId item) const {
    auto it = item_writer.find(item);
    return it == item_writer.end() ? nullptr : &records[it->second];
  }
};

/// Work counters (mirrored into WalOptions::metrics when attached).
struct WalStats {
  uint64_t appends = 0;
  uint64_t fsyncs = 0;
  uint64_t bytes = 0;            ///< Frame bytes appended.
  uint64_t append_failures = 0;  ///< Appends refused (crashed / closed WAL).
};

/// Durability handle for one appended record: the record is durable once
/// SyncedBytes(stream) >= end_offset.
struct WalAppendTicket {
  uint32_t stream = 0;
  uint64_t end_offset = 0;  ///< File offset one past the record's frame.
  /// Microseconds the append spent inside the policy-triggered fdatasync
  /// covering this record (0 when the append returned without syncing).
  /// The engine's fsync-phase attribution source.
  uint64_t sync_wait_us = 0;
};

namespace wal_internal {

/// Stream file header: magic "MDTSWAL1", u32 version, u32 k, u32 stream.
inline constexpr size_t kStreamHeaderBytes = 20;
inline constexpr uint64_t kStreamMagic = 0x314C4157'5354444Dull;  // MDTSWAL1
inline constexpr uint32_t kStreamVersion = 1;
/// Frame: u32 payload length, u32 CRC-32(payload), payload. Payload:
/// u32 txn, u32 nwrites, k x i64 elements (raw; undefined slots hold the
/// kUndefinedElement sentinel), nwrites x u32 items. Little-endian.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Parse guard: a frame claiming a longer payload is treated as torn.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 24;

void EncodeStreamHeader(uint32_t k, uint32_t stream,
                        std::vector<uint8_t>* out);
bool DecodeStreamHeader(const uint8_t* data, size_t len, uint32_t* k,
                        uint32_t* stream);

/// Appends one framed record to `out`.
void EncodeFrame(TxnId txn, const TimestampVector& vec,
                 std::span<const ItemId> writes, std::vector<uint8_t>* out);

/// Decodes the frame at `data`; returns the bytes consumed, or 0 when the
/// buffer holds no complete valid frame (torn tail). `out` must be
/// constructed with the right k.
size_t DecodeFrame(const uint8_t* data, size_t len, size_t k,
                   WalCommitRecord* out);

}  // namespace wal_internal

/// Thread-safe parallel WAL writer plus its static recovery routine.
class ParallelWal {
 public:
  explicit ParallelWal(const WalOptions& options);
  ~ParallelWal();

  ParallelWal(const ParallelWal&) = delete;
  ParallelWal& operator=(const ParallelWal&) = delete;

  /// False when the directory / stream files could not be created; every
  /// AppendCommit then refuses.
  bool ok() const { return ok_; }

  /// Appends a commit record for `txn` to this thread's stream and applies
  /// the sync policy; returns true iff the record was accepted (false once
  /// the WAL is crashed or closed - the record is NOT durable then). When
  /// `ticket` is non-null it receives the record's durability handle.
  /// Thread-safe.
  bool AppendCommit(TxnId txn, const TimestampVector& vec,
                    std::span<const ItemId> writes,
                    WalAppendTicket* ticket = nullptr);

  /// Group-commit boundary: flushes and fsyncs every stream's pending
  /// records (no-op on streams with nothing pending, and after a crash).
  void SyncAll();

  /// Stops the flusher and closes the stream files. A clean close syncs
  /// everything first; a crashed close truncates each file to its crash
  /// image (see WalCrashPoint). Idempotent; the destructor calls it.
  void Close();

  /// True once the injected crash plan has fired.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Crashes the WAL NOW, from outside the append path: every further
  /// AppendCommit refuses and Close() truncates each stream to its crash
  /// image. Used by callers whose crash trigger is not an append - the
  /// engine's MvInstallCrashPlan fires this between a version install and
  /// the commit append that would have logged it. The point picks the
  /// image: kBeforeFsync loses every unsynced byte, kMidRecord leaves a
  /// torn partial-frame tail on one stream, kBetweenStreams completes one
  /// stream's group fsync while the peers lose theirs. Idempotent and
  /// thread-safe; a no-op for kNone or an already crashed/unusable WAL.
  void CrashNow(WalCrashPoint point);

  /// Bytes of `stream` covered by a completed fdatasync (frozen at the
  /// crash point once crashed). Records with end_offset <= this are owed
  /// by recovery.
  uint64_t SyncedBytes(uint32_t stream) const;

  WalStats stats() const;
  size_t num_streams() const { return streams_.size(); }
  const WalOptions& options() const { return options_; }

  /// Reads every `wal-<i>.log` stream under `dir`, truncating torn tails
  /// (on disk too, when `truncate_torn`), and merges the records by vector
  /// order. ok == false only for unusable input (no streams, k mismatch
  /// across streams); torn tails and empty streams are normal outcomes.
  static WalRecovery Recover(const std::string& dir,
                             bool truncate_torn = true);

 private:
  struct Stream {
    mutable std::mutex mu;
    int fd = -1;
    std::string path;
    std::vector<uint8_t> buf;      // Encoded, not yet write()n.
    uint64_t flushed = 0;          // Bytes written to the fd.
    uint64_t synced = 0;           // Bytes covered by fdatasync.
    uint64_t pending_records = 0;  // Records appended since the last sync.
    uint64_t seq = 0;              // Records ever appended.
    /// Crash image override (kMidRecord / kBetweenStreams trigger stream);
    /// ~0 means "use `synced`".
    uint64_t surviving_override = ~0ull;
  };

  /// write()s the buffered bytes; requires s.mu.
  void FlushLocked(Stream& s);
  /// Flush + fdatasync; advances `synced`, records the group size.
  void SyncLocked(Stream& s);
  /// Applies the armed crash plan at the triggering append; requires s.mu.
  /// `frame` is the record that was being appended.
  void TriggerCrashLocked(Stream& s, const std::vector<uint8_t>& frame);

  WalOptions options_;
  bool ok_ = false;
  std::atomic<bool> closed_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> appends_total_{0};
  std::atomic<uint64_t> append_failures_{0};
  std::atomic<uint64_t> fsyncs_total_{0};
  mutable std::deque<Stream> streams_;  // Deque: Stream is not movable.

  // Background interval flusher (kGroupCommit with sync_interval_ms > 0).
  std::thread flusher_;
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;

  Counter* m_appends_ = nullptr;
  Counter* m_fsyncs_ = nullptr;
  Counter* m_bytes_ = nullptr;
  Histogram* m_group_size_ = nullptr;
};

}  // namespace mdts

#endif  // MDTS_WAL_WAL_H_
