#ifndef MDTS_CLASSIFY_DEPENDENCY_GRAPH_H_
#define MDTS_CLASSIFY_DEPENDENCY_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/log.h"
#include "core/types.h"

namespace mdts {

/// The dependency digraph of a log (paper Definition 7 / Fig. 1, 3, 5, 12):
/// node per transaction, edge T_i -> T_j for each pair of conflicting
/// operations O_i before O_j. Used for DSR recognition (Theorem 1: a log is
/// DSR iff the dependency relation is a partial order, i.e. the digraph is
/// acyclic) and for rendering the paper's digraph figures.
class DependencyGraph {
 public:
  struct Edge {
    TxnId from = 0;
    TxnId to = 0;
    /// Positions of the two operations that created the edge; kNoPosition
    /// for synthetic edges (virtual-transaction or real-time edges).
    size_t pos_from = kNoPosition;
    size_t pos_to = kNoPosition;
  };
  static constexpr size_t kNoPosition = static_cast<size_t>(-1);

  DependencyGraph() = default;

  /// Builds the conflict-dependency digraph of the log: one edge per ordered
  /// pair of transactions with at least one conflicting operation pair
  /// (annotated with the earliest such pair). The virtual transaction T0 is
  /// not included.
  static DependencyGraph FromLog(const Log& log);

  /// Adds the real-time precedence edges used by the conflict-based strict
  /// serializability test: T_i -> T_j whenever T_i's last operation precedes
  /// T_j's first operation in the log.
  void AddRealtimeEdges(const Log& log);

  /// Adds an edge (deduplicated on (from, to)).
  void AddEdge(TxnId from, TxnId to, size_t pos_from = kNoPosition,
               size_t pos_to = kNoPosition);

  bool HasEdge(TxnId from, TxnId to) const;
  const std::vector<Edge>& edges() const { return edges_; }
  TxnId num_txns() const { return num_txns_; }

  /// True iff the digraph contains a directed cycle.
  bool HasCycle() const;

  /// Topological order of transactions 1..num_txns (smallest ids first among
  /// ties); empty if the digraph is cyclic.
  std::vector<TxnId> TopologicalOrder() const;

  /// Graphviz rendering (used by the figure benches).
  std::string ToDot(const std::string& name) const;

 private:
  std::vector<std::vector<bool>> adj_;  // adj_[a][b]: edge a -> b.
  std::vector<Edge> edges_;
  TxnId num_txns_ = 0;

  void EnsureSize(TxnId txn);
};

}  // namespace mdts

#endif  // MDTS_CLASSIFY_DEPENDENCY_GRAPH_H_
