#include "classify/hierarchy.h"

#include "classify/classes.h"
#include "core/recognizer.h"

namespace mdts {

Result<ClassMembership> ClassifyLog(const Log& log) {
  ClassMembership m;
  auto sr = IsFinalStateSerializable(log);
  if (!sr.ok()) return sr.status();
  auto ssr = IsSsr(log);
  if (!ssr.ok()) return ssr.status();
  m.sr = *sr;
  m.ssr = *ssr;
  m.dsr = IsDsr(log);
  m.two_pl = IsTwoPl(log);
  m.to1 = IsToK(log, 1);
  m.to2 = IsToK(log, 2);
  m.to3 = IsToK(log, 3);
  return m;
}

std::string MembershipSignature(const ClassMembership& m) {
  auto tag = [](bool member, const char* name) {
    return std::string(member ? "+" : "-") + name;
  };
  return tag(m.sr, "SR") + tag(m.dsr, "DSR") + tag(m.ssr, "SSR") +
         tag(m.two_pl, "2PL") + tag(m.to1, "TO1") + tag(m.to2, "TO2") +
         tag(m.to3, "TO3");
}

int Fig4Region(const ClassMembership& m) {
  // Containments that must hold (Definition 3, and the standard facts
  // 2PL subset DSR subset SR): any violation yields region 0, which the
  // enumeration bench treats as a reproduction failure.
  if ((m.two_pl || m.to1 || m.to3 || m.ssr) && !m.sr) {
    // SSR subset SR by definition; lock/timestamp classes produce
    // serializable logs.
    if (!m.sr && (m.two_pl || m.to1 || m.to3)) return 0;
    if (m.ssr && !m.sr) return 0;
  }
  if ((m.two_pl || m.to1 || m.to3) && !m.dsr) return 0;
  if (m.dsr && !m.sr) return 0;

  // Deterministic numbering of the consistent membership combinations for
  // the two-step model (TO(2) is not part of Fig. 4 and is ignored here).
  // Region 1 is the innermost intersection; higher numbers move outward,
  // ending with 12 = outside SR. The regions the paper pins down by its
  // composite-log arguments keep their paper numbers:
  //   2 = TO(3) n SSR n 2PL - TO(1),   6 = TO(3) n SSR n TO(1) - 2PL,
  //   7 = TO(3) n SSR - TO(1) - 2PL,   9 = DSR n SSR - TO(3) - 2PL - TO(1).
  struct Entry {
    bool dsr, ssr, two_pl, to1, to3;
    int region;
  };
  static constexpr Entry kTable[] = {
      // dsr  ssr  2pl  to1  to3
      {true, true, true, true, true, 1},
      {true, true, true, false, true, 2},
      {true, true, true, true, false, 3},
      {true, true, true, false, false, 4},
      {true, false, true, true, true, 5},
      {true, true, false, true, true, 6},
      {true, true, false, false, true, 7},
      {true, true, false, true, false, 8},
      {true, true, false, false, false, 9},
      {true, false, true, false, true, 10},
      {true, false, true, true, false, 11},
      {true, false, true, false, false, 12},
      {true, false, false, true, true, 13},
      {true, false, false, false, true, 14},
      {true, false, false, true, false, 15},
      {true, false, false, false, false, 16},
      {false, true, false, false, false, 17},   // SSR - DSR (inside SR).
      {false, false, false, false, false, 18},  // SR only / outside SR.
  };
  for (const Entry& e : kTable) {
    if (m.dsr == e.dsr && m.ssr == e.ssr && m.two_pl == e.two_pl &&
        m.to1 == e.to1 && m.to3 == e.to3) {
      if (!m.dsr && !m.ssr) return m.sr ? 18 : 19;  // SR-only vs non-SR.
      return e.region;
    }
  }
  return 0;
}

}  // namespace mdts
