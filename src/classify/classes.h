#ifndef MDTS_CLASSIFY_CLASSES_H_
#define MDTS_CLASSIFY_CLASSES_H_

#include <vector>

#include "common/result.h"
#include "core/log.h"
#include "core/types.h"

namespace mdts {

/// D-serializability (paper Definition 2 / Theorem 1): the log's conflict
/// dependency relation is a partial order, i.e. the dependency digraph is
/// acyclic. Polynomial.
bool IsDsr(const Log& log);

/// A serial order witnessing DSR membership (topological order of the
/// dependency digraph); empty if the log is not DSR.
std::vector<TxnId> DsrSerialOrder(const Log& log);

/// Definition 4's direct one-dimensional test: with s_i fixed to the
/// position of T_i's first operation, all four dependency conditions
/// (write-read, read-write, write-write, and the added read-read condition
/// iv) must order s values consistently. This is a *necessary-condition*
/// check; the class TO(1) recognized by MT(1) is slightly larger because of
/// Algorithm 1's line 9 (see IsToK in core/recognizer.h).
bool IsTo1ByDefinition(const Log& log);

/// Transactions brute-force equivalence tests enumerate n! serial orders;
/// they refuse logs with more transactions than this.
inline constexpr TxnId kMaxBruteForceTxns = 8;

/// View serializability: some serial order is view-equivalent to the log
/// (same reads-from relation and same final writers). Brute force;
/// FailedPrecondition beyond kMaxBruteForceTxns transactions.
Result<bool> IsViewSerializable(const Log& log);

/// Final-state serializability under Herbrand semantics: some serial order
/// produces the same final symbolic value for every item (each write is an
/// uninterpreted function of the values its transaction read earlier). This
/// is Papadimitriou's class SR. Brute force with the same guard.
Result<bool> IsFinalStateSerializable(const Log& log);

/// Strict serializability (SSR): some serial order is view-equivalent to
/// the log *and* extends the real-time order (T_i's last operation before
/// T_j's first implies T_i earlier). Brute force with the same guard.
Result<bool> IsSsr(const Log& log);

/// Conflict-based sufficient test for SSR usable at any size: dependency
/// digraph plus real-time edges is acyclic. Implies IsSsr.
bool IsSsrConflict(const Log& log);

/// Membership in the two-phase-locking class: the log could have been
/// produced, with this exact operation order, by a 2PL scheduler using
/// shared/exclusive locks where each transaction holds one continuous lock
/// window per item (no upgrades). Decided by difference-constraint
/// feasibility over lock windows and lock points; polynomial.
bool IsTwoPl(const Log& log);

}  // namespace mdts

#endif  // MDTS_CLASSIFY_CLASSES_H_
