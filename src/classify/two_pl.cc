#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "classify/classes.h"

namespace mdts {

namespace {

// Difference-constraint system "x_u - x_v <= w" solved by Bellman-Ford
// negative-cycle detection (feasible iff no negative cycle).
class DifferenceSystem {
 public:
  size_t NewVar() {
    ++num_vars_;
    return num_vars_ - 1;
  }

  // Adds constraint u - v <= w.
  void AddUpperBound(size_t u, size_t v, int64_t w) {
    edges_.push_back({v, u, w});
  }

  bool Feasible() const {
    // Initializing all distances to 0 is equivalent to adding a virtual
    // source with 0-weight edges to every variable, so negative cycles are
    // found regardless of reachability.
    std::vector<int64_t> dist(num_vars_, 0);
    for (size_t round = 0; round + 1 < num_vars_ + 1; ++round) {
      bool changed = false;
      for (const auto& e : edges_) {
        if (dist[e.from] + e.weight < dist[e.to]) {
          dist[e.to] = dist[e.from] + e.weight;
          changed = true;
        }
      }
      if (!changed) return true;
    }
    // One more pass: any further relaxation proves a negative cycle.
    for (const auto& e : edges_) {
      if (dist[e.from] + e.weight < dist[e.to]) return false;
    }
    return true;
  }

 private:
  struct Edge {
    size_t from;
    size_t to;
    int64_t weight;
  };
  size_t num_vars_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace

bool IsTwoPl(const Log& log) {
  // Model: in a 2PL execution producing exactly this operation order, each
  // transaction T_i holds one continuous lock window [s_ix, r_ix] on every
  // item x it accesses (strong enough for all its accesses; no upgrades),
  // with a lock point LP_i such that s_ix <= LP_i <= r_ix (two-phase rule).
  // Conflicting transactions' windows on the same item must be disjoint and
  // ordered as the log orders their conflicting operations. Feasibility of
  // these ordering constraints is a difference-constraint system.
  const TxnId n = log.num_txns();
  const auto& ops = log.ops();

  DifferenceSystem sys;
  const size_t z = sys.NewVar();  // Reference point: "time zero".
  std::vector<size_t> lock_point(n + 1, 0);
  for (TxnId t = 1; t <= n; ++t) lock_point[t] = sys.NewVar();

  struct Window {
    size_t acquire = 0;
    size_t release = 0;
    size_t first_pos = 0;
    size_t last_pos = 0;
  };
  std::map<std::pair<TxnId, ItemId>, Window> windows;

  for (size_t p = 0; p < ops.size(); ++p) {
    auto key = std::make_pair(ops[p].txn, ops[p].item);
    auto it = windows.find(key);
    if (it == windows.end()) {
      Window w;
      w.acquire = sys.NewVar();
      w.release = sys.NewVar();
      w.first_pos = w.last_pos = p;
      windows.emplace(key, w);
    } else {
      it->second.last_pos = p;
    }
  }

  // Operation p executes at time p * scale. The gap between adjacent
  // operations must be wide enough for every lock event that can legally
  // fall between them (at most one release and one acquire per window, plus
  // slack), so the scale exceeds the total variable count.
  const int64_t scale = static_cast<int64_t>(1 + n + 2 * windows.size()) + 2;

  for (const auto& [key, w] : windows) {
    const TxnId txn = key.first;
    // Acquire strictly before the first access, release strictly after the
    // last access.
    sys.AddUpperBound(w.acquire, z,
                      static_cast<int64_t>(w.first_pos) * scale - 1);
    sys.AddUpperBound(z, w.release,
                      -(static_cast<int64_t>(w.last_pos) * scale + 1));
    // Two-phase rule through the lock point.
    sys.AddUpperBound(w.acquire, lock_point[txn], 0);
    sys.AddUpperBound(lock_point[txn], w.release, 0);
  }

  // Window-disjointness constraints, one per ordered conflicting
  // (T_i, T_j, item) triple.
  std::set<std::tuple<TxnId, TxnId, ItemId>> seen;
  for (size_t b = 0; b < ops.size(); ++b) {
    for (size_t a = 0; a < b; ++a) {
      if (!Conflicts(ops[a], ops[b])) continue;
      const ItemId x = ops[a].item;
      const TxnId i = ops[a].txn;
      const TxnId j = ops[b].txn;
      if (!seen.insert({i, j, x}).second) continue;
      // T_i must release x before T_j acquires it.
      const Window& wi = windows.at({i, x});
      const Window& wj = windows.at({j, x});
      sys.AddUpperBound(wi.release, wj.acquire, -1);
    }
  }

  return sys.Feasible();
}

}  // namespace mdts
