#include "classify/classes.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>

#include "classify/dependency_graph.h"

namespace mdts {

bool IsDsr(const Log& log) {
  return !DependencyGraph::FromLog(log).HasCycle();
}

std::vector<TxnId> DsrSerialOrder(const Log& log) {
  return DependencyGraph::FromLog(log).TopologicalOrder();
}

bool IsTo1ByDefinition(const Log& log) {
  // s_i = position of T_i's first operation (the paper's pi(R_i) in the
  // two-step model, where the read is always the first operation).
  const TxnId n = log.num_txns();
  std::vector<size_t> s(n + 1, static_cast<size_t>(-1));
  const auto& ops = log.ops();
  for (size_t p = 0; p < ops.size(); ++p) {
    if (s[ops[p].txn] == static_cast<size_t>(-1)) s[ops[p].txn] = p;
  }
  // Conditions i-iii (conflicts) plus iv (read-read on the same item).
  for (size_t b = 0; b < ops.size(); ++b) {
    for (size_t a = 0; a < b; ++a) {
      if (ops[a].txn == ops[b].txn || ops[a].item != ops[b].item) continue;
      // Every same-item cross-transaction pair is constrained: conditions
      // i-iii when at least one is a write, condition iv when both read.
      if (s[ops[a].txn] >= s[ops[b].txn]) return false;
    }
  }
  return true;
}

namespace {

// Identity of an operation independent of its log position: the issuing
// transaction and the operation's rank within that transaction.
struct OpRef {
  TxnId txn = 0;
  size_t nth = 0;
  friend bool operator==(const OpRef& a, const OpRef& b) {
    return a.txn == b.txn && a.nth == b.nth;
  }
  friend bool operator<(const OpRef& a, const OpRef& b) {
    return a.txn != b.txn ? a.txn < b.txn : a.nth < b.nth;
  }
};

constexpr TxnId kInitialWriter = 0;  // "Value written by the virtual T0."

// The view profile of a log: for every read (in (txn, nth) identity), the
// writer it reads from; plus the final writer of every item.
struct ViewProfile {
  std::map<OpRef, OpRef> reads_from;   // read op -> write op (or initial).
  std::map<ItemId, OpRef> final_writer;

  friend bool operator==(const ViewProfile& a, const ViewProfile& b) {
    return a.reads_from == b.reads_from && a.final_writer == b.final_writer;
  }
};

ViewProfile ComputeViewProfile(const std::vector<Op>& ops) {
  ViewProfile profile;
  std::map<ItemId, OpRef> last_writer;
  std::map<TxnId, size_t> rank;
  for (const Op& op : ops) {
    const OpRef ref{op.txn, rank[op.txn]++};
    if (op.type == OpType::kRead) {
      auto it = last_writer.find(op.item);
      profile.reads_from[ref] =
          it == last_writer.end() ? OpRef{kInitialWriter, 0} : it->second;
    } else {
      last_writer[op.item] = ref;
    }
  }
  for (const auto& [item, writer] : last_writer) {
    profile.final_writer[item] = writer;
  }
  return profile;
}

// Herbrand (symbolic) evaluation for final-state equivalence: every write
// produces an uninterpreted term f_{txn,nth}(values read so far by txn);
// equality of final item terms across logs is exact final-state
// equivalence. The intern table must be SHARED across the evaluations being
// compared: term ids are only meaningful within one evaluator instance.
class HerbrandEvaluator {
 public:
  // Returns the final item -> term mapping of the operation sequence.
  std::map<ItemId, uint64_t> Eval(const std::vector<Op>& ops) {
    std::map<ItemId, uint64_t> value;     // Item -> current term.
    std::map<TxnId, std::vector<uint64_t>> reads;  // Txn -> read history.
    std::map<TxnId, size_t> rank;
    for (const Op& op : ops) {
      const size_t nth = rank[op.txn]++;
      if (op.type == OpType::kRead) {
        reads[op.txn].push_back(ItemTerm(op.item, value));
      } else {
        std::vector<uint64_t> key;
        key.push_back(op.txn);
        key.push_back(nth);
        const auto& history = reads[op.txn];
        key.insert(key.end(), history.begin(), history.end());
        value[op.item] = Intern(key);
      }
    }
    std::map<ItemId, uint64_t> final_terms;
    for (const auto& [item, term] : value) final_terms[item] = term;
    return final_terms;
  }

 private:
  uint64_t ItemTerm(ItemId item, const std::map<ItemId, uint64_t>& value) {
    auto it = value.find(item);
    if (it != value.end()) return it->second;
    // Initial value of the item: a nullary term tagged by the item id.
    return Intern({~static_cast<uint64_t>(item)});
  }

  uint64_t Intern(const std::vector<uint64_t>& key) {
    auto [it, inserted] = table_.emplace(key, next_id_);
    if (inserted) ++next_id_;
    return it->second;
  }

  std::map<std::vector<uint64_t>, uint64_t> table_;
  uint64_t next_id_ = 1;
};

// Rearranges the log's operations serially according to the transaction
// permutation, preserving each transaction's internal operation order.
std::vector<Op> SerialArrangement(const Log& log,
                                  const std::vector<TxnId>& perm) {
  std::vector<Op> out;
  out.reserve(log.size());
  for (TxnId t : perm) {
    for (const Op& op : log.ops()) {
      if (op.txn == t) out.push_back(op);
    }
  }
  return out;
}

// Real-time precedence: result[i][j] true iff T_i's last op precedes T_j's
// first op, so any strict serialization must put T_i before T_j.
std::vector<std::vector<bool>> RealtimePrecedence(const Log& log) {
  const TxnId n = log.num_txns();
  std::vector<size_t> first(n + 1, static_cast<size_t>(-1));
  std::vector<size_t> last(n + 1, 0);
  const auto& ops = log.ops();
  for (size_t p = 0; p < ops.size(); ++p) {
    if (first[ops[p].txn] == static_cast<size_t>(-1)) first[ops[p].txn] = p;
    last[ops[p].txn] = p;
  }
  std::vector<std::vector<bool>> precedes(n + 1,
                                          std::vector<bool>(n + 1, false));
  for (TxnId i = 1; i <= n; ++i) {
    if (first[i] == static_cast<size_t>(-1)) continue;
    for (TxnId j = 1; j <= n; ++j) {
      if (i != j && first[j] != static_cast<size_t>(-1) &&
          last[i] < first[j]) {
        precedes[i][j] = true;
      }
    }
  }
  return precedes;
}

enum class Equivalence { kView, kFinalState };

Result<bool> BruteForceSerializable(const Log& log, Equivalence equivalence,
                                    bool require_realtime) {
  const TxnId n = log.num_txns();
  if (n > kMaxBruteForceTxns) {
    return Status::FailedPrecondition(
        "brute-force serializability limited to " +
        std::to_string(kMaxBruteForceTxns) + " transactions, log has " +
        std::to_string(n));
  }
  const ViewProfile log_view = ComputeViewProfile(log.ops());
  HerbrandEvaluator herbrand;  // Shared intern table for all evaluations.
  const auto log_state = herbrand.Eval(log.ops());
  const auto precedes =
      require_realtime ? RealtimePrecedence(log)
                       : std::vector<std::vector<bool>>();

  std::vector<TxnId> perm(n);
  std::iota(perm.begin(), perm.end(), 1);
  do {
    if (require_realtime) {
      bool ok = true;
      for (size_t a = 0; a < perm.size() && ok; ++a) {
        for (size_t b = a + 1; b < perm.size() && ok; ++b) {
          if (precedes[perm[b]][perm[a]]) ok = false;
        }
      }
      if (!ok) continue;
    }
    const std::vector<Op> serial = SerialArrangement(log, perm);
    if (equivalence == Equivalence::kView) {
      if (ComputeViewProfile(serial) == log_view) return true;
    } else {
      if (herbrand.Eval(serial) == log_state) return true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

}  // namespace

Result<bool> IsViewSerializable(const Log& log) {
  return BruteForceSerializable(log, Equivalence::kView,
                                /*require_realtime=*/false);
}

Result<bool> IsFinalStateSerializable(const Log& log) {
  return BruteForceSerializable(log, Equivalence::kFinalState,
                                /*require_realtime=*/false);
}

Result<bool> IsSsr(const Log& log) {
  return BruteForceSerializable(log, Equivalence::kFinalState,
                                /*require_realtime=*/true);
}

bool IsSsrConflict(const Log& log) {
  DependencyGraph g = DependencyGraph::FromLog(log);
  g.AddRealtimeEdges(log);
  return !g.HasCycle();
}

}  // namespace mdts
