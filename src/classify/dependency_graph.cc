#include "classify/dependency_graph.h"

#include <algorithm>
#include <functional>

namespace mdts {

void DependencyGraph::EnsureSize(TxnId txn) {
  if (txn > num_txns_) num_txns_ = txn;
  if (adj_.size() <= num_txns_) {
    adj_.resize(num_txns_ + 1);
    for (auto& row : adj_) row.resize(num_txns_ + 1, false);
  }
}

void DependencyGraph::AddEdge(TxnId from, TxnId to, size_t pos_from,
                              size_t pos_to) {
  EnsureSize(std::max(from, to));
  if (adj_[from][to]) return;
  adj_[from][to] = true;
  edges_.push_back(Edge{from, to, pos_from, pos_to});
}

bool DependencyGraph::HasEdge(TxnId from, TxnId to) const {
  if (from >= adj_.size() || to >= adj_.size()) return false;
  return adj_[from][to];
}

DependencyGraph DependencyGraph::FromLog(const Log& log) {
  DependencyGraph g;
  g.EnsureSize(log.num_txns());
  const auto& ops = log.ops();
  for (size_t b = 0; b < ops.size(); ++b) {
    for (size_t a = 0; a < b; ++a) {
      if (Conflicts(ops[a], ops[b])) {
        g.AddEdge(ops[a].txn, ops[b].txn, a, b);
      }
    }
  }
  return g;
}

void DependencyGraph::AddRealtimeEdges(const Log& log) {
  const TxnId n = log.num_txns();
  EnsureSize(n);
  std::vector<size_t> first(n + 1, kNoPosition);
  std::vector<size_t> last(n + 1, kNoPosition);
  const auto& ops = log.ops();
  for (size_t p = 0; p < ops.size(); ++p) {
    if (first[ops[p].txn] == kNoPosition) first[ops[p].txn] = p;
    last[ops[p].txn] = p;
  }
  for (TxnId i = 1; i <= n; ++i) {
    if (last[i] == kNoPosition) continue;
    for (TxnId j = 1; j <= n; ++j) {
      if (i == j || first[j] == kNoPosition) continue;
      if (last[i] < first[j]) AddEdge(i, j, last[i], first[j]);
    }
  }
}

bool DependencyGraph::HasCycle() const {
  return TopologicalOrder().empty() && num_txns_ > 0;
}

std::vector<TxnId> DependencyGraph::TopologicalOrder() const {
  const TxnId n = num_txns_;
  std::vector<size_t> indegree(n + 1, 0);
  for (TxnId a = 1; a <= n; ++a) {
    for (TxnId b = 1; b <= n; ++b) {
      if (a != b && adj_[a][b]) ++indegree[b];
    }
  }
  std::vector<TxnId> order;
  order.reserve(n);
  std::vector<bool> placed(n + 1, false);
  for (TxnId round = 1; round <= n; ++round) {
    TxnId pick = 0;
    for (TxnId c = 1; c <= n && pick == 0; ++c) {
      if (!placed[c] && indegree[c] == 0) pick = c;
    }
    if (pick == 0) return {};  // Cycle.
    placed[pick] = true;
    order.push_back(pick);
    for (TxnId b = 1; b <= n; ++b) {
      if (b != pick && adj_[pick][b]) --indegree[b];
    }
  }
  return order;
}

std::string DependencyGraph::ToDot(const std::string& name) const {
  std::string out = "digraph " + name + " {\n";
  for (TxnId t = 1; t <= num_txns_; ++t) {
    out += "  T" + std::to_string(t) + ";\n";
  }
  for (const Edge& e : edges_) {
    out += "  T" + std::to_string(e.from) + " -> T" + std::to_string(e.to);
    if (e.pos_from != kNoPosition) {
      out += " [label=\"" + std::to_string(e.pos_from) + "<" +
             std::to_string(e.pos_to) + "\"]";
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace mdts
