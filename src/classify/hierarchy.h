#ifndef MDTS_CLASSIFY_HIERARCHY_H_
#define MDTS_CLASSIFY_HIERARCHY_H_

#include <string>

#include "common/result.h"
#include "core/log.h"

namespace mdts {

/// Membership of a log in every class of the paper's Fig. 4 hierarchy
/// (two-step transaction model, q = 2, so TO(3) = TO(k) for all k >= 3 by
/// Theorem 3). SR is final-state serializability (Papadimitriou's SR).
struct ClassMembership {
  bool sr = false;
  bool dsr = false;
  bool ssr = false;
  bool two_pl = false;
  bool to1 = false;
  bool to2 = false;
  bool to3 = false;

  friend bool operator==(const ClassMembership& a, const ClassMembership& b) {
    return a.sr == b.sr && a.dsr == b.dsr && a.ssr == b.ssr &&
           a.two_pl == b.two_pl && a.to1 == b.to1 && a.to2 == b.to2 &&
           a.to3 == b.to3;
  }
};

/// Classifies a log against every Fig. 4 class. Uses brute-force
/// serializability tests, so the log must have at most kMaxBruteForceTxns
/// transactions (FailedPrecondition otherwise).
Result<ClassMembership> ClassifyLog(const Log& log);

/// Canonical signature like "SR+DSR+SSR-2PL+TO1-TO3" ('+' member,
/// '-' non-member), used by the Fig. 4 enumeration bench to bucket logs
/// into hierarchy regions.
std::string MembershipSignature(const ClassMembership& m);

/// Maps a membership vector onto the paper's Fig. 4 region numbering
/// (1-12) for the two-step model. Returns 0 for combinations that violate
/// the hierarchy's containments (which the enumeration bench would flag as
/// a reproduction failure).
int Fig4Region(const ClassMembership& m);

}  // namespace mdts

#endif  // MDTS_CLASSIFY_HIERARCHY_H_
