#ifndef MDTS_ENGINE_SHARDED_ENGINE_H_
#define MDTS_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/mtk_scheduler.h"
#include "core/timestamp_vector.h"
#include "core/types.h"
#include "obs/abort_reason.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace mdts {

class ParallelWal;         // src/wal/wal.h
struct WalRecovery;        // src/wal/wal.h
struct MvInstallCrashPlan;  // src/fault/fault.h

/// Configuration of the sharded concurrent MT(k) engine. The protocol
/// options mirror MtkOptions (minus the recognizer-only and hot-item
/// variations): with num_shards = 1 the engine accepts exactly the logs
/// MtkScheduler accepts, assigning the same vectors.
struct EngineOptions {
  /// Timestamp vector size k >= 1.
  size_t k = 3;

  /// Number of shards the items, transaction states, and last-column
  /// counters are striped across. Clamped to >= 1.
  size_t num_shards = 8;

  /// Section III-D-4 starvation fix (see MtkOptions::starvation_fix).
  bool starvation_fix = false;

  /// Section III-D-6c Thomas write rule (see MtkOptions).
  bool thomas_write_rule = false;

  /// Relaxed read path (see MtkOptions::relaxed_read_path).
  bool relaxed_read_path = false;

  /// Cross out Algorithm 1 lines 9-10 (see MtkOptions).
  bool disable_old_read_path = false;

  /// Section III-D-5 hot-item right-end encoding (see
  /// MtkOptions::optimized_encoding): dependencies born on frequently
  /// accessed items are encoded near the right end of the vectors instead
  /// of at the leftmost free element, so a hot item does not force a
  /// premature total order. Same semantics as the scheduler's option (both
  /// run the shared core/encoding.h helper).
  bool optimized_encoding = false;

  /// An item is "hot" for optimized encoding once it has been accessed this
  /// many times (counted per item under its shard lock).
  size_t hot_item_threshold = 8;

  /// Multiversion MT(k) (Section III-D-6d, the src/mvcc MvMtkScheduler
  /// design run concurrently): every item keeps a chain of versions sorted
  /// by the writers' vector order - the newest version inline in the item
  /// state, older ones behind it - each carrying begin/end/read stamps from
  /// an engine-wide stamp clock. A read walks the chain newest to oldest
  /// and takes the first version whose writer can be ordered before it
  /// (reads essentially never abort - the multiversion payoff); a write
  /// installs a new version at the newest feasible slot, encoding the
  /// version-order and reader-before-later-writer MVSG edges through the
  /// vectors, or rejects with kVersionConflict. All chain state is mutated
  /// under the same sorted shard locksets and batched admission as the
  /// single-version mode; version storage is reclaimed by the live
  /// watermark (see CompactAll). thomas_write_rule, relaxed_read_path, and
  /// disable_old_read_path are single-version knobs and are ignored.
  bool multiversion = false;

  /// Multiversion only: engine-side crash injection (src/fault). The
  /// at_install-th version install crashes the attached WAL via
  /// ParallelWal::CrashNow, tearing the process image in the window
  /// between a version install and its commit append. Null disables; must
  /// outlive the engine. No effect without a wal.
  const MvInstallCrashPlan* install_crash = nullptr;

  /// If > 0, CompactAll() runs after every this many commits engine-wide,
  /// so memory stays bounded by live transactions instead of total history.
  /// The sweep is stop-the-world and O(items); size the period accordingly.
  uint64_t compact_every = 0;

  /// Multiversion only: how many of the newest committed versions each
  /// chain keeps through GC (minimum 1, the default - maximal reclaim).
  /// The read walk's never-abort property leans on older versions as
  /// fallbacks: a reader whose vector elements were pinned by its earlier
  /// operations can be un-orderable after the newest surviving writer,
  /// and with the chain pruned to a single version it then rejects -
  /// deterministically so when a retry replays the same program. A deeper
  /// tail preserves older (smaller-element) writers to fall back to; at
  /// 64 items / k = 3 / 30% reads, read rejects fall from ~2.8 per commit
  /// at 1 to zero at 16 (bench/mt_throughput part 4 runs with 16). Memory
  /// stays bounded at keep_tail versions per chain either way.
  uint32_t mv_gc_keep_tail = 1;

  /// Optimistic cross-shard lock acquisitions retried this many times
  /// before falling back to locking every shard.
  size_t max_lock_retries = 16;

  /// Registry the engine mirrors its hot counters into ("engine.accepted",
  /// "engine.rejected.<reason>", "engine.lock_contention", ...). Null
  /// disables mirroring entirely; the per-shard EngineStats keep counting
  /// either way. The registry must outlive the engine. bench/mt_throughput
  /// measures the attached-vs-null delta as obs_overhead_pct.
  ///
  /// Attached registries also receive the live starvation signal: every
  /// RestartTxn raises the gauge "engine.max_consecutive_aborts" to the
  /// restarting transaction's consecutive-abort count (its incarnation
  /// number), the windowed peak a Sampler's StarvationWatchdog consumes.
  MetricsRegistry* metrics = nullptr;

  /// Write-ahead log for durability: when attached, the engine tracks each
  /// transaction's accepted writes and CommitTxn appends a commit record
  /// (the MT(k) vector as the Taurus LSN vector plus the write set) BEFORE
  /// marking the transaction committed, so an acknowledged commit is never
  /// ahead of its log record. Read-only transactions are not logged (they
  /// leave no state for recovery to rebuild). The WAL's k must equal this
  /// k, and the WAL must outlive the engine. After a crash, recover with
  /// ParallelWal::Recover + RecoverFrom on a fresh engine.
  ParallelWal* wal = nullptr;

  /// Flight recorder receiving a record per commit (with the committed
  /// vector and write set) and per reject (with the classified reason and
  /// the blocking transaction), captured at the decision/commit points
  /// while the covering shard locks are still held - so a dump is a
  /// consistent tail of engine history. Ring selection is txn %
  /// FlightRecorder::rings(). Null disables (the default); must outlive
  /// the engine. bench/mt_throughput part 3 measures the attached-vs-null
  /// delta as flight_obs_overhead_pct (acceptance bar: < 3%).
  FlightRecorder* flight = nullptr;

  /// Phase attribution sampling: 1 in 2^phase_sample_shift batches (and,
  /// independently, commits) gets its lifecycle timed and recorded into
  /// the "engine.phase.*_us" histograms; the rest skip every clock read.
  /// 0 samples everything (tests); the default (6: 1 in 64, still
  /// thousands of samples per second at bench throughputs) keeps the
  /// steady-clock + histogram overhead inside the flight_obs_overhead_pct
  /// bar. Only meaningful with `metrics` attached - the histograms live
  /// in the registry.
  uint32_t phase_sample_shift = 6;

  /// Batched-admission livelock guardrail: after this many consecutive
  /// ProcessBatch calls (batch size >= 2, engine-wide) without a single
  /// intervening CommitTxn - the signature of the benched batch>=8
  /// collapse at 64 items, where every round aborts every peer and no
  /// transaction ever finishes - the engine falls back to serialized
  /// admission: one live transaction is elected champion and every other
  /// batched operation is throttled (rejected with kBatchThrottled, no
  /// starvation seeding) until the champion commits, which guarantees
  /// forward progress. Counted in EngineStats::batch_fallbacks and the
  /// "engine.batch_fallbacks" registry mirror. 0 disables the guardrail.
  /// Process (a batch of one) is never throttled.
  size_t batch_fallback_rounds = 64;

  /// Registry-mirror buffering: counter deltas accumulate in per-shard
  /// buffers (plain increments under shard locks the engine already holds)
  /// and reach the attached registry only once a buffer has absorbed about
  /// this many operations' worth of events - so mirroring costs a handful
  /// of registry touches per flush window instead of several per
  /// operation. stats() always flushes every buffer first, keeping the
  /// snapshot == stats() reconciliation exact at observation points; live
  /// consumers (Sampler windows) see deltas at most one window late under
  /// load. 0 flushes every batch (the pre-buffering behavior). The
  /// "engine.max_consecutive_aborts" gauge is never buffered - it is the
  /// starvation watchdog's liveness signal.
  size_t mirror_flush_ops = 256;
};

/// Work counters, aggregated over shards by ShardedMtkEngine::stats().
struct EngineStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t ignored_writes = 0;
  uint64_t set_calls = 0;
  uint64_t elements_assigned = 0;
  uint64_t element_comparisons = 0;
  uint64_t txns_released = 0;
  /// Operations decided while holding a single shard mutex.
  uint64_t single_shard_ops = 0;
  /// Operations that needed the sorted multi-shard lock path.
  uint64_t cross_shard_ops = 0;
  /// Optimistic rounds that had to be retried (lockset changed underfoot).
  uint64_t lock_retries = 0;
  /// Retries that exhausted max_lock_retries and locked every shard.
  uint64_t full_lock_fallbacks = 0;
  /// Shard-mutex acquisitions that found the mutex already held (try_lock
  /// failed) and had to block.
  uint64_t lock_contention = 0;
  /// CompactAll() invocations.
  uint64_t compactions = 0;
  /// ProcessBatch invocations (Process counts as a batch of one) and the
  /// operations they carried; batch_ops / batches is the mean batch size.
  uint64_t batches = 0;
  uint64_t batch_ops = 0;
  /// Dependencies encoded through the Section III-D-5 right-end layout.
  uint64_t hot_encodings = 0;
  /// ProcessBatch rounds decided under the livelock-guardrail fallback
  /// (see EngineOptions::batch_fallback_rounds).
  uint64_t batch_fallbacks = 0;
  /// Multiversion mode: versions installed (writes accepted into chains,
  /// including RecoverFrom rebuilds) and versions unlinked by garbage
  /// collection (dead-writer unlinks plus watermark truncations).
  uint64_t versions_installed = 0;
  uint64_t versions_gc = 0;
  /// Multiversion mode: versions currently linked across every chain
  /// (excluding the per-item virtual-T0 base) - the quantity the live
  /// watermark bounds; equals versions_installed - versions_gc.
  uint64_t live_versions = 0;
  /// Multiversion mode: reads served by a version other than the newest
  /// live one, and reads that exhausted the whole chain (degenerate vector
  /// states only - the acceptance bar for MV mode is zero).
  uint64_t old_version_reads = 0;
  uint64_t read_rejects = 0;
  /// Per-reason breakdown of `rejected`; reject_reasons.total() == rejected.
  AbortReasonCounts reject_reasons;
};

/// Thread-safe sharded MT(k) engine (Algorithm 1 run concurrently).
///
/// Layout: shard s owns the items with item % N == s (their RT/WT history
/// stacks), the transaction states with txn % N == s (timestamp vector plus
/// a lock-free liveness word), and a per-shard pair of last-column counters
/// whose values are made globally unique by the DMT(k) site encoding
/// value * N + s (Section V's "concatenate the site number as low order
/// bits"), here applied intra-process. Every mutation happens under the
/// owning shard's mutex.
///
/// Processing an operation T_i on item x needs x's shard, i's shard, and
/// the shards of the item's current top reader and writer. Those tops are
/// only known after looking, so the engine runs an optimistic loop: lock
/// {shard(x), shard(i)} sorted, peek the tops (liveness is readable without
/// the owner's lock), and if their shards are already covered - the common
/// case, and always true with one shard - decide in place. Otherwise
/// release, widen the lockset, relock in sorted order (the deadlock-free
/// ordered-locking discipline), and revalidate that the tops are unchanged;
/// after max_lock_retries unstable rounds it falls back to locking all
/// shards, which trivially validates. Transaction states live in
/// chunk-granular arrays published through an atomic directory, so the
/// lock-free liveness peeks never race with a growing container.
///
/// Aborts are lazy, exactly like MtkScheduler: a rejected transaction's
/// item accesses stay on the stacks until a later operation pops entries
/// whose (txn, incarnation) is no longer live. A peer can therefore still
/// order itself against a just-aborted top accessor it observed as live -
/// that encodes TS(ghost) < TS(i) through vectors that still carry the
/// ghost's constraints, which is conservative but sound: the vector order
/// is lexicographic, hence always a strict partial order (Lemma 1), and
/// every acceptance is still justified by the vector values at decision
/// time under the covering locks.
class ShardedMtkEngine {
 public:
  explicit ShardedMtkEngine(const EngineOptions& options);
  ~ShardedMtkEngine();

  ShardedMtkEngine(const ShardedMtkEngine&) = delete;
  ShardedMtkEngine& operator=(const ShardedMtkEngine&) = delete;

  /// Algorithm 1's Scheduler procedure for one operation; thread-safe.
  /// On kReject, `*reason` (when non-null) receives the classified cause.
  /// Implemented as a ProcessBatch of one.
  OpDecision Process(const Op& op, AbortReason* reason = nullptr);

  /// Batched admission: decides every operation in `ops`, writing
  /// decisions[q] for each (and, when `reasons` is non-null, reasons[q] -
  /// kNone for non-rejected operations). Returns the number of accepted
  /// operations. Thread-safe; `decisions` must hold ops.size() entries.
  ///
  /// The batch's shard lockset - the union of every operation's item and
  /// issuer shards - is acquired once per optimistic round in sorted order,
  /// and every operation whose top accessors are covered by it is decided
  /// under that one acquisition, amortizing LockShard calls, liveness
  /// resolution, and registry mirroring across the batch. Operations left
  /// uncovered (a top accessor lives on an unlocked shard) are retried on
  /// the next round under a lockset rebuilt around the tops just observed,
  /// falling back to locking every shard after max_lock_retries rounds.
  ///
  /// Within a round, operations are decided in array order; an operation
  /// deferred by coverage is decided in a later round, after array-later
  /// covered operations - observably equivalent to the caller interleaving
  /// its ops with other threads'. With num_shards == 1 every operation is
  /// covered in round one, so the array order is exactly the decision
  /// order and the batch is equivalent to ops.size() Process calls.
  size_t ProcessBatch(std::span<const Op> ops, OpDecision* decisions,
                      AbortReason* reasons = nullptr);

  /// Marks the transaction committed; triggers CompactAll() every
  /// compact_every commits engine-wide. With EngineOptions::wal attached,
  /// the transaction's commit record is appended (and made durable per the
  /// WAL's sync policy) before the commit point.
  void CommitTxn(TxnId txn);

  /// Rebuilds committed state from a WAL recovery on a freshly constructed
  /// engine: re-creates each recovered transaction as committed with its
  /// logged vector, reinstalls the per-item top writers in merged vector
  /// order, and resynchronizes the per-shard last-column counters past
  /// every recovered element (the DMT(k) Section V counter-resync rule,
  /// applied intra-process), so post-recovery admissions order strictly
  /// after recovered state. Returns the number of records applied. Throws
  /// std::invalid_argument when the recovery's k differs from the
  /// engine's.
  size_t RecoverFrom(const WalRecovery& recovery);

  /// Starts a fresh incarnation of an aborted transaction (Section III-D-4
  /// semantics identical to MtkScheduler::RestartTxn).
  void RestartTxn(TxnId txn);

  bool IsAborted(TxnId txn) const;
  bool IsCommitted(TxnId txn) const;

  /// Runtime protocol width: how many of the k physical vector elements new
  /// dependency encodings may use (the MT(k+) composite run on one physical
  /// store - Theorem 5's shared-prefix property is what makes mixing sound:
  /// a dependency encoded at width h is exactly an MT(h) encoding, and
  /// Compare walks the full physical vectors, where elements beyond h hold
  /// the constants every lower-width encoding also fixes, so decisions made
  /// at different widths order consistently). Clamped to [1, options().k].
  /// Thread-safe and cheap (one relaxed store); decisions concurrent with a
  /// switch use whichever width they load - both are sound. This is the
  /// admission controller's k actuator.
  void SetActiveK(size_t k);
  size_t active_k() const {
    return active_k_.load(std::memory_order_relaxed);
  }

  /// Explain-style rendering of the most recent rejection (engine-wide,
  /// by reject order): FormatReject plus, for kBatchThrottled, the
  /// guardrail context - the champion transaction the throttled peer was
  /// waiting out and the fallback round that decided it. Takes each shard
  /// lock in turn; "no rejection yet" before the first reject.
  std::string ExplainLastReject() const;

  /// Copy of the transaction's current vector, taken under its shard lock.
  TimestampVector TsSnapshot(TxnId txn) const;

  /// Stop-the-world storage reclamation: takes every shard lock, compacts
  /// the item histories, and releases the chunk storage of committed
  /// transactions no longer referenced by any item. Returns the number of
  /// transaction states released.
  size_t CompactAll();

  /// Multiversion audit (test support): takes every shard lock and checks
  /// each chain's version-order soundness invariant - every adjacent live
  /// pair of version writers must already be vector-ordered kLess (the
  /// edge DecideMvLocked encoded, or found determined, at install). Also
  /// verifies the stamp invariants (end_stamp == 0 exactly on the newest
  /// version). Returns false on the first violation. Single-version mode:
  /// trivially true.
  bool MvAuditChains() const;

  /// Sum of the per-shard counters.
  EngineStats stats() const;

  /// Transaction states currently backed by allocated chunks (the quantity
  /// CompactAll bounds; chunk-granular, so it exceeds the live count by at
  /// most kChunkSize per shard).
  size_t allocated_txn_states() const;

  size_t num_shards() const { return num_shards_; }
  const EngineOptions& options() const { return options_; }

  /// States per chunk; the unit of storage release.
  static constexpr uint32_t kChunkBits = 10;
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;
  /// Directory entries per shard: caps a shard's transaction slots at
  /// kDirSize * kChunkSize (Process throws beyond it).
  static constexpr uint32_t kDirSize = 1u << 16;

 private:
  /// Liveness word, packed so peers can test liveness without the owning
  /// shard's lock: (incarnation << 2) | (committed << 1) | aborted. A
  /// (txn, incarnation) pair that is ever observed dead stays dead:
  /// RestartTxn bumps the incarnation in the same store that clears the
  /// aborted bit.
  struct TxnState {
    TimestampVector ts;
    uint64_t life = 0;  // Accessed via std::atomic_ref.
    /// Accepted writes of the current incarnation, maintained when a WAL is
    /// attached (CommitTxn logs them; RestartTxn clears them) and always in
    /// multiversion mode (CommitTxn prunes the written chains).
    std::vector<ItemId> writes;
    /// Flight-only write tracking (no WAL, no multiversion - those modes
    /// keep the full `writes` list above): the first kMaxWrites written
    /// items, the lifetime count, and the touched-shard mask. Fixed-size
    /// on purpose: it is everything the commit record needs, with no
    /// per-transaction heap allocation on the hot path.
    ItemId fw[FlightRecorder::kMaxWrites] = {};
    uint32_t fw_total = 0;
    uint32_t fw_mask = 0;
    /// Multiversion mode: stamp-clock value at the incarnation's first
    /// decided operation; 0 = not yet assigned. The minimum over live
    /// incarnations is the GC watermark.
    uint64_t begin_stamp = 0;
    explicit TxnState(size_t k) : ts(k) {}
  };

  struct Chunk {
    std::vector<TxnState> states;  // Exactly kChunkSize; never resized.
  };

  struct Access {
    TxnId txn = kVirtualTxn;
    uint32_t incarnation = 0;
    friend bool operator==(const Access& a, const Access& b) {
      return a.txn == b.txn && a.incarnation == b.incarnation;
    }
  };

  /// One entry of a multiversion item's chain (the src/mvcc MvVersion
  /// design under shard locking). Stamps come from the engine-wide
  /// mv_stamp_ clock: begin_stamp when the version was installed,
  /// end_stamp when a successor superseded it (0 while newest),
  /// read_stamp at its latest read. A version whose end and read stamps
  /// are both below the live watermark is invisible to every present and
  /// future transaction and can be truncated (see MvPruneLocked).
  struct MvVersion {
    Access writer;  // kVirtualTxn = the initial (T0) base version.
    uint64_t begin_stamp = 0;
    uint64_t end_stamp = 0;
    uint64_t read_stamp = 0;
    std::vector<Access> readers;
  };

  struct ItemState {
    Access top_reader;  // Inline mirrors of the stack tops (see
    Access top_writer;  // MtkScheduler::ItemState).
    std::vector<Access> readers;
    std::vector<Access> writers;
    uint64_t access_count = 0;  // For hot-item detection (III-D-5).
    /// Multiversion chain: the newest version inline (hot in the common
    /// newest-read / newest-install case), older versions behind it in
    /// mv_older, oldest first. mv_init latches the lazy T0 base creation.
    bool mv_init = false;
    MvVersion mv_newest;
    std::vector<MvVersion> mv_older;
    /// Shard-coverage summary of the chain (num_shards <= 64 only): bit
    /// (txn % num_shards) is set for every writer and reader linked into
    /// the chain. A superset of the live population - dead accessors'
    /// bits linger until MvUnlinkDeadLocked recomputes the mask - which
    /// is sound for batch lockset coverage: a stale bit can only widen
    /// the lockset, never hide a live accessor's shard. Turns the per-op
    /// coverage check from a full chain walk into one mask test.
    uint64_t mv_cover = 0;
    /// mv_dead_epoch_ value at the chain's last dead-unlink; while no
    /// incarnation has died engine-wide since, the chain can hold no
    /// dead entry and the per-op unlink walk is skipped.
    uint64_t mv_unlink_epoch = 0;
  };

  /// Registry deltas accumulated across one batch, then merged into a
  /// per-shard pending buffer (under a shard lock the batch already holds)
  /// and flushed to the registry only once the buffer has absorbed about
  /// mirror_flush_ops events - so mirroring costs a handful of registry
  /// touches per flush window instead of several per operation. The
  /// per-shard EngineStats are still updated inline under the shard locks;
  /// stats() flushes every buffer, keeping reconciliation exact there.
  struct MirrorDelta {
    uint64_t events = 0;  // Operations merged in; drives the flush trigger.
    uint64_t accepted = 0;
    uint64_t ignored = 0;
    uint64_t hot_encodings = 0;
    uint64_t batches = 0;
    uint64_t batch_ops = 0;
    uint64_t retries = 0;
    uint64_t fallbacks = 0;
    uint64_t batch_fallbacks = 0;
    uint64_t contention = 0;
    uint64_t compactions = 0;
    uint64_t versions_installed = 0;
    uint64_t versions_gc = 0;
    uint64_t rejected[kNumAbortReasons] = {};

    void MergeFrom(const MirrorDelta& d) {
      events += d.events;
      accepted += d.accepted;
      ignored += d.ignored;
      hot_encodings += d.hot_encodings;
      batches += d.batches;
      batch_ops += d.batch_ops;
      retries += d.retries;
      fallbacks += d.fallbacks;
      batch_fallbacks += d.batch_fallbacks;
      contention += d.contention;
      compactions += d.compactions;
      versions_installed += d.versions_installed;
      versions_gc += d.versions_gc;
      for (size_t r = 0; r < kNumAbortReasons; ++r) rejected[r] += d.rejected[r];
    }
  };

  /// Most recent rejection decided on a shard, recorded under its mutex at
  /// the decision point (the locks the reject paths already hold) and read
  /// back by ExplainLastReject. `seq` comes from the engine-wide
  /// reject_seq_ ticket, so the newest record across shards is the one
  /// with the largest seq. For kBatchThrottled, `blocker` is the elected
  /// champion and `fallback_round` the value of the engine-wide fallback
  /// counter when the throttle fired (0 for every other reason).
  struct RejectRecord {
    uint64_t seq = 0;  ///< 0 = no rejection recorded yet.
    AbortReason reason = AbortReason::kNone;
    Op op;
    TxnId blocker = kVirtualTxn;
    uint64_t fallback_round = 0;
  };

  struct alignas(64) Shard {
    mutable std::mutex mu;
    uint32_t index = 0;
    /// Atomic chunk directory: slot / kChunkSize indexes it. Published with
    /// release stores under mu; liveness peeks load-acquire without mu.
    std::vector<std::atomic<Chunk*>> dir;
    std::atomic<uint32_t> base_slot{0};  // Slots below are released.
    uint32_t next_slot = 0;              // One past the highest created.
    std::vector<ItemState> items;        // Local index item / N.
    TsElement ucount = 1;  // Raw last-column counters; encoded value is
    TsElement lcount = 0;  // raw * N + index.
    EngineStats stats;
    /// Buffered registry deltas (EngineOptions::mirror_flush_ops); mutated
    /// under mu, flushed by FlushMirrorLocked once past the threshold.
    MirrorDelta pending;
    /// Newest rejection decided on this shard (see RejectRecord).
    RejectRecord last_reject;
    Shard() : dir(kDirSize) {}
  };

  struct LiveRef {
    TxnId txn = kVirtualTxn;
    uint32_t incarnation = 0;
    TxnState* state = nullptr;
  };


  static uint64_t LoadLife(const TxnState& s) {
    return std::atomic_ref<uint64_t>(const_cast<TxnState&>(s).life)
        .load(std::memory_order_acquire);
  }
  static void StoreLife(TxnState& s, uint64_t w) {
    std::atomic_ref<uint64_t>(s.life).store(w, std::memory_order_release);
  }
  static bool LifeAborted(uint64_t w) { return (w & 1) != 0; }
  static bool LifeCommitted(uint64_t w) { return (w & 2) != 0; }
  static uint32_t LifeIncarnation(uint64_t w) {
    return static_cast<uint32_t>(w >> 2);
  }

  Shard& ShardForTxn(TxnId txn) const { return shards_[txn % num_shards_]; }
  Shard& ShardForItem(ItemId item) const {
    return shards_[item % num_shards_];
  }

  /// Shard index of `x` without the runtime division when the shard count
  /// is a power of two (every bench/test configuration). The flight-record
  /// paths run this per abort record; an idiv there is measurable.
  size_t ShardIndex(uint64_t x) const {
    return shard_idx_mask_ != 0 ? (x & shard_idx_mask_) : (x % num_shards_);
  }

  /// Lock-free state lookup for liveness peeks; null only for ids never
  /// created (which a stack entry can never reference).
  TxnState* PeekState(TxnId txn) const;

  /// State lookup/creation; requires the owning shard's mutex.
  TxnState& StateLocked(Shard& sh, TxnId txn);

  ItemState& ItemLocked(Shard& sh, ItemId item);

  /// Top live entry of an access stack with its state resolved; pops dead
  /// entries. Requires the item's shard mutex (stack mutation); liveness is
  /// read through the lock-free words.
  LiveRef TopLiveOf(Access& top, std::vector<Access>& stack) const;

  /// Smallest value of this shard's counter class that is > above (and
  /// consistent with the counter); advances the counter past it.
  TsElement NextUpper(Shard& sh, TsElement above);
  /// Largest value of this shard's counter class that is < below.
  TsElement NextLower(Shard& sh, TsElement below);

  VectorCompareResult CompareStates(Shard& shx, const TxnState& a,
                                    const TxnState& b);

  /// Algorithm 1's Set(j, i) under the covering locks, running the shared
  /// core/encoding.h helper with shard shx's counters for last-column
  /// assignments. On false, `why` receives the classified cause (kLexOrder
  /// or kEncodingExhausted).
  bool SetStates(Shard& shx, TxnState& sj, TxnState& si, TxnId j, TxnId i,
                 bool hot_item, MirrorDelta& mir, AbortReason* why);

  /// The decision body; every referenced shard's mutex is held. On kReject,
  /// `*why` (when non-null) receives the classified cause. Registry deltas
  /// go to `mir`, flushed by ProcessBatch after the locks drop.
  OpDecision DecideLocked(const Op& op, Shard& shx, ItemState& item,
                          TxnState& si, const LiveRef& jr, const LiveRef& jw,
                          AbortReason* why, MirrorDelta& mir);

  /// Multiversion decision body (the MvMtkScheduler read walk and two-phase
  /// write placement run under shard locking): every shard referenced by
  /// the chain's live writers and readers is held, plus shard(item) and
  /// shard(txn). Installs/reads versions, encodes the MVSG edges through
  /// SetStates, and classifies rejects (kVersionConflict for infeasible
  /// write placements).
  OpDecision DecideMvLocked(const Op& op, Shard& shx, ItemState& item,
                            TxnState& si, AbortReason* why, MirrorDelta& mir);

  /// Lazily creates the chain's virtual-T0 base version.
  static void EnsureChainLocked(ItemState& item);

  /// Unlinks versions whose writer is dead and reader entries that are
  /// dead (permanent states, so safe under shard(item) alone); counts the
  /// unlinked non-T0 versions as versions_gc. Requires shard(item).mu.
  void MvUnlinkDeadLocked(Shard& shx, ItemState& item, MirrorDelta& mir);

  /// Watermark truncation: after unlinking dead state, drops the
  /// oldest-prefix of versions strictly older than the newest committed
  /// version whose end and read stamps are both below `watermark` (no live
  /// or future transaction can see them). Requires shard(item).mu.
  /// `force` (sweeps: CompactAll, RecoverFrom) bypasses the hysteresis
  /// gate that the per-commit incremental path uses to skip chains still
  /// within keep_tail + slack of their floor.
  void MvPruneLocked(Shard& shx, ItemState& item, uint64_t watermark,
                     MirrorDelta& mir, bool force = false);

  /// Merges `mir` into sh.pending under sh.mu; when the buffer crosses
  /// mirror_flush_ops (or the threshold is 0), moves it into *flush so the
  /// caller can ApplyMirror after dropping the lock. No-op registry-wise
  /// when no registry is attached.
  void MergePendingLocked(Shard& sh, const MirrorDelta& mir,
                          MirrorDelta* flush);

  /// Applies a flushed buffer to the registry mirrors; lock-free.
  void ApplyMirror(const MirrorDelta& d);

  /// Records one attributed phase slice: microseconds into the
  /// "engine.phase.<name>_us" histogram (exemplar-tagged with the
  /// transaction id) and, when tracing is compiled+enabled, a matching
  /// completed span carrying the same id - the p99-bucket-to-span link.
  void RecordPhase(TxnPhase phase, uint64_t ns, TxnId tag);

  /// True for the 1-in-2^phase_sample_shift events that get timed (always
  /// false without a registry: the histograms would have nowhere to go).
  bool SamplePhases(std::atomic<uint64_t>& seq) const {
    return m_phase_[0] != nullptr &&
           (seq.fetch_add(1, std::memory_order_relaxed) & phase_mask_) == 0;
  }

  /// Shard-coverage bit for the flight record's shard_mask (shards >= 32
  /// are not representable and fold to no bit).
  static uint32_t ShardBit(size_t shard) {
    return shard < 32 ? (1u << shard) : 0;
  }

  /// Overwrites shx.last_reject with a fresh-ticketed record; requires
  /// shx.mu (every reject path already holds the item shard's mutex).
  void NoteRejectLocked(Shard& shx, AbortReason reason, const Op& op,
                        TxnId blocker, uint64_t fallback_round = 0);

  /// Acquires sh.mu, counting the acquisition as contended (per-shard
  /// stats, registry mirror, trace instant) when try_lock fails first.
  void LockShard(Shard& sh);

  size_t CompactAllLocked();

  EngineOptions options_;
  size_t num_shards_;
  /// num_shards_ - 1 when num_shards_ is a power of two, else 0 (sentinel:
  /// fall back to the division). See ShardIndex().
  uint64_t shard_idx_mask_ = 0;
  mutable std::deque<Shard> shards_;  // Deque: Shard is not movable.
  TxnState t0_;                       // Immutable after construction.
  /// Engine-wide commit counter driving the compact_every trigger. Relaxed:
  /// an occasional early or late CompactAll is harmless.
  std::atomic<uint64_t> commits_since_compact_{0};
  /// Engine-wide batch counters (a batch has no single owning shard).
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_ops_{0};

  // Livelock guardrail (see EngineOptions::batch_fallback_rounds). All
  // relaxed: the guardrail is a heuristic trigger, not a correctness gate -
  // the throttle decisions themselves happen under the shard locks.
  /// Multi-op ProcessBatch calls since the last CommitTxn.
  std::atomic<uint64_t> batches_since_commit_{0};
  /// Champion transaction id; 0 = no fallback active.
  std::atomic<uint64_t> fallback_champion_{0};
  /// Consecutive fallback batches that carried no champion operation;
  /// clears a champion that stopped submitting (committed via another
  /// engine API, or its issuer gave up) so the guardrail cannot wedge.
  std::atomic<uint64_t> champion_missing_{0};
  /// Fallback batches decided (EngineStats::batch_fallbacks).
  std::atomic<uint64_t> batch_fallbacks_{0};

  /// Runtime MT(k+) width (see SetActiveK); initialized to options_.k.
  /// Relaxed everywhere: any value a decision loads is a sound width, and
  /// vector storage is always the physical k.
  std::atomic<uint32_t> active_k_{1};
  /// Ticket clock ordering RejectRecords across shards.
  std::atomic<uint64_t> reject_seq_{0};

  // Multiversion clocks and gauges. The stamp clock orders version
  // installs and reads for GC visibility only (serialization order is the
  // vectors'); relaxed increments suffice because every chain mutation
  // that uses a stamp happens under the item's shard lock.
  /// Engine-wide begin/end/read stamp clock; next value to hand out.
  std::atomic<uint64_t> mv_stamp_{1};
  /// Oldest live incarnation's begin stamp as of the last CompactAll;
  /// CommitTxn prunes written chains against it between sweeps.
  std::atomic<uint64_t> mv_watermark_{0};
  /// Versions currently linked (excluding T0 bases); the bounded-memory
  /// acceptance gauge.
  std::atomic<int64_t> live_versions_{0};
  /// Install counter driving EngineOptions::install_crash.
  std::atomic<uint64_t> mv_installs_{0};
  /// Bumped (release) right after any store that sets an incarnation's
  /// aborted bit. Items compare their mv_unlink_epoch against it to skip
  /// the per-op dead-unlink walk when nothing can have died. Starts at 1
  /// so a fresh item (epoch 0) always takes its first unlink, which also
  /// seeds mv_cover.
  std::atomic<uint64_t> mv_dead_epoch_{1};

  /// Registry mirrors, resolved once at construction; all null when
  /// options.metrics == nullptr, so the hot path pays one predictable
  /// branch per event in the detached configuration.
  Counter* m_accepted_ = nullptr;
  Counter* m_ignored_ = nullptr;
  Counter* m_rejected_[kNumAbortReasons] = {};
  Counter* m_contention_ = nullptr;
  Counter* m_retries_ = nullptr;
  Counter* m_fallbacks_ = nullptr;
  Counter* m_compactions_ = nullptr;
  Counter* m_batches_ = nullptr;
  Counter* m_batch_ops_ = nullptr;
  Counter* m_hot_encodings_ = nullptr;
  Counter* m_batch_fallbacks_ = nullptr;
  Counter* m_versions_installed_ = nullptr;
  Counter* m_versions_gc_ = nullptr;
  /// Unbuffered commit mirror ("engine.commits"): bumped at the commit
  /// point so windowed goodput - the admission controller's reward signal -
  /// is never a flush window stale, unlike the buffered counters above.
  Counter* m_commits_ = nullptr;
  Gauge* m_consec_aborts_ = nullptr;
  Gauge* m_live_versions_ = nullptr;

  /// Phase-attribution state: the per-phase histograms (null without a
  /// registry), the sampling mask (2^phase_sample_shift - 1), and the
  /// batch/commit sequence counters the sampling gate consumes.
  Histogram* m_phase_[kNumTxnPhases] = {};
  uint64_t phase_mask_ = 0;
  mutable std::atomic<uint64_t> batch_seq_{0};
  mutable std::atomic<uint64_t> commit_seq_{0};
};

}  // namespace mdts

#endif  // MDTS_ENGINE_SHARDED_ENGINE_H_
