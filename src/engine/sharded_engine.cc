#include "engine/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace mdts {

ShardedMtkEngine::ShardedMtkEngine(const EngineOptions& options)
    : options_(options),
      num_shards_(options.num_shards < 1 ? 1 : options.num_shards),
      t0_(options.k) {
  assert(options_.k >= 1);
  options_.num_shards = num_shards_;
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_.emplace_back();
    shards_.back().index = static_cast<uint32_t>(s);
  }
  if (MetricsRegistry* reg = options_.metrics) {
    m_accepted_ = reg->GetCounter("engine.accepted");
    m_ignored_ = reg->GetCounter("engine.ignored_writes");
    for (size_t r = 1; r < kNumAbortReasons; ++r) {
      m_rejected_[r] = reg->GetCounter(
          std::string("engine.rejected.") +
          AbortReasonName(static_cast<AbortReason>(r)));
    }
    m_contention_ = reg->GetCounter("engine.lock_contention");
    m_retries_ = reg->GetCounter("engine.lock_retries");
    m_fallbacks_ = reg->GetCounter("engine.full_lock_fallbacks");
    m_compactions_ = reg->GetCounter("engine.compactions");
    m_consec_aborts_ = reg->GetGauge("engine.max_consecutive_aborts");
  }
  // Shard 0's slot 0 is the virtual transaction, which lives outside the
  // chunked storage (and outside compaction); real ids there start at slot 1.
  shards_[0].base_slot.store(1, std::memory_order_relaxed);
  shards_[0].next_slot = 1;
  t0_.ts = TimestampVector::Virtual(options_.k);
  t0_.life = 2;  // Committed, incarnation 0; never written again.
}

ShardedMtkEngine::~ShardedMtkEngine() {
  for (Shard& sh : shards_) {
    for (auto& entry : sh.dir) {
      delete entry.load(std::memory_order_relaxed);
    }
  }
}

ShardedMtkEngine::TxnState* ShardedMtkEngine::PeekState(TxnId txn) const {
  if (txn == kVirtualTxn) return const_cast<TxnState*>(&t0_);
  Shard& sh = ShardForTxn(txn);
  const uint32_t slot = static_cast<uint32_t>(txn / num_shards_);
  Chunk* c = sh.dir[slot >> kChunkBits].load(std::memory_order_acquire);
  if (c == nullptr) return nullptr;
  return &c->states[slot & (kChunkSize - 1)];
}

ShardedMtkEngine::TxnState& ShardedMtkEngine::StateLocked(Shard& sh,
                                                          TxnId txn) {
  assert(txn != kVirtualTxn && txn % num_shards_ == sh.index);
  const uint32_t slot = static_cast<uint32_t>(txn / num_shards_);
  assert(slot >= sh.base_slot.load(std::memory_order_relaxed) &&
         "access to a compacted (released) txn");
  const uint32_t ci = slot >> kChunkBits;
  if (ci >= kDirSize) {
    throw std::runtime_error(
        "ShardedMtkEngine: per-shard transaction-slot capacity exceeded");
  }
  Chunk* c = sh.dir[ci].load(std::memory_order_relaxed);
  if (c == nullptr) {
    // Build the chunk fully before publication: lock-free liveness peeks
    // may load the pointer the instant the release store lands.
    auto* fresh = new Chunk;
    fresh->states.reserve(kChunkSize);
    for (uint32_t n = 0; n < kChunkSize; ++n) {
      fresh->states.emplace_back(options_.k);
    }
    sh.dir[ci].store(fresh, std::memory_order_release);
    c = fresh;
  }
  if (slot >= sh.next_slot) sh.next_slot = slot + 1;
  return c->states[slot & (kChunkSize - 1)];
}

ShardedMtkEngine::ItemState& ShardedMtkEngine::ItemLocked(Shard& sh,
                                                          ItemId item) {
  const size_t local = item / num_shards_;
  if (sh.items.size() <= local) sh.items.resize(local + 1);
  return sh.items[local];
}

ShardedMtkEngine::LiveRef ShardedMtkEngine::TopLiveOf(
    Access& top, std::vector<Access>& stack) const {
  if (top.txn == kVirtualTxn) {
    return {kVirtualTxn, 0, const_cast<TxnState*>(&t0_)};
  }
  {
    TxnState* s = PeekState(top.txn);
    const uint64_t w = LoadLife(*s);
    if (LifeIncarnation(w) == top.incarnation && !LifeAborted(w)) {
      return {top.txn, top.incarnation, s};
    }
  }
  // Dead top: drop it and scan for the most recent live entry. Dead is
  // permanent for a (txn, incarnation) pair - RestartTxn bumps the
  // incarnation in the same store that clears the aborted bit - so popping
  // on a lock-free liveness read is safe.
  stack.pop_back();
  while (!stack.empty()) {
    const Access& a = stack.back();
    TxnState* s = PeekState(a.txn);
    const uint64_t w = LoadLife(*s);
    if (LifeIncarnation(w) == a.incarnation && !LifeAborted(w)) {
      top = a;
      return {a.txn, a.incarnation, s};
    }
    stack.pop_back();
  }
  top = Access{};
  return {kVirtualTxn, 0, const_cast<TxnState*>(&t0_)};
}

TsElement ShardedMtkEngine::NextUpper(Shard& sh, TsElement above) {
  const TsElement n = static_cast<TsElement>(num_shards_);
  TsElement raw = sh.ucount;
  TsElement val = raw * n + static_cast<TsElement>(sh.index);
  // The counter alone guarantees val exceeds every value this shard
  // assigned; bump it past cross-shard values when the caller needs
  // val > above. With one shard the loop never runs, reproducing
  // MtkScheduler's plain ucount sequence.
  while (above != kUndefinedElement && val <= above) {
    ++raw;
    val += n;
  }
  sh.ucount = raw + 1;
  return val;
}

TsElement ShardedMtkEngine::NextLower(Shard& sh, TsElement below) {
  const TsElement n = static_cast<TsElement>(num_shards_);
  TsElement raw = sh.lcount;
  TsElement val = raw * n + static_cast<TsElement>(sh.index);
  while (val >= below) {
    --raw;
    val -= n;
  }
  sh.lcount = raw - 1;
  return val;
}

VectorCompareResult ShardedMtkEngine::CompareStates(Shard& shx,
                                                    const TxnState& a,
                                                    const TxnState& b) {
  const VectorCompareResult r = Compare(a.ts, b.ts);
  shx.stats.element_comparisons += r.index + 1;
  return r;
}

bool ShardedMtkEngine::SetStates(Shard& shx, TxnState& sj, TxnState& si,
                                 TxnId j, TxnId i, AbortReason* why) {
  if (j == i) return true;  // Line 15.
  ++shx.stats.set_calls;
  const size_t k = options_.k;
  const VectorCompareResult cr = CompareStates(shx, sj, si);
  const size_t m = cr.index;
  TimestampVector& tj = sj.ts;
  TimestampVector& ti = si.ts;
  switch (cr.order) {
    case VectorOrder::kLess:
      return true;  // Line 17: the dependency is already encoded.
    case VectorOrder::kGreater:
      *why = AbortReason::kLexOrder;
      return false;  // Line 18: the opposite order is fixed.
    case VectorOrder::kIdentical:
      *why = AbortReason::kEncodingExhausted;  // Defensive, as MtkScheduler.
      return false;
    case VectorOrder::kEqual:
      // Line 19: both elements undefined. j == T0 is unreachable here (T0
      // has element 0 defined and no live vector carries 0 there), but
      // refusing is cheaper than proving it in release builds, and TS(0)
      // must never be written: it is read lock-free by every shard.
      if (j == kVirtualTxn) {
        *why = AbortReason::kEncodingExhausted;
        return false;
      }
      if (m + 1 == k) {
        const TsElement a = NextUpper(shx, kUndefinedElement);
        const TsElement b = NextUpper(shx, a);
        tj.Set(m, a);
        ti.Set(m, b);
      } else {
        tj.Set(m, 1);
        ti.Set(m, 2);
      }
      shx.stats.elements_assigned += 2;
      return true;
    case VectorOrder::kUndetermined:
      // Line 20: exactly one of the two elements is undefined.
      if (!ti.IsDefined(m)) {
        ti.Set(m, m + 1 == k ? NextUpper(shx, tj.Get(m)) : tj.Get(m) + 1);
      } else {
        if (j == kVirtualTxn) {  // Unreachable; see above.
          *why = AbortReason::kEncodingExhausted;
          return false;
        }
        tj.Set(m, m + 1 == k ? NextLower(shx, ti.Get(m)) : ti.Get(m) - 1);
      }
      ++shx.stats.elements_assigned;
      return true;
  }
  *why = AbortReason::kEncodingExhausted;
  return false;
}

OpDecision ShardedMtkEngine::DecideLocked(const Op& op, Shard& shx,
                                          ItemState& item, TxnState& si,
                                          const LiveRef& jr,
                                          const LiveRef& jw,
                                          AbortReason* why) {
  EngineStats& st = shx.stats;
  const TxnId i = op.txn;

  auto refuse = [&](AbortReason reason) {
    ++st.rejected;
    st.reject_reasons.Add(reason);
    if (m_rejected_[static_cast<size_t>(reason)] != nullptr) {
      m_rejected_[static_cast<size_t>(reason)]->Add(1);
    }
    if (why != nullptr) *why = reason;
    return OpDecision::kReject;
  };
  auto accept = [&]() {
    ++st.accepted;
    if (m_accepted_ != nullptr) m_accepted_->Add(1);
    return OpDecision::kAccept;
  };

  const uint64_t wi = si.life;  // Owner shard held: no concurrent writer.
  if (LifeAborted(wi) || LifeCommitted(wi)) {
    return refuse(AbortReason::kStaleTxn);
  }
  const uint32_t inc_i = LifeIncarnation(wi);

  // Lines 5-6: j is whichever of RT(x), WT(x) has the larger timestamp,
  // with RT(x) winning ties and undetermined comparisons.
  const LiveRef& j =
      CompareStates(shx, *jr.state, *jw.state).order == VectorOrder::kLess
          ? jw
          : jr;

  // Cause recorded by the SetStates call that refused the dependency.
  AbortReason cause = AbortReason::kNone;

  auto reject = [&]() {
    StoreLife(si, wi | 1);
    if (options_.starvation_fix) {
      // Section III-D-4: flush TS(i), seed past the blocker.
      const TimestampVector& tb = j.state->ts;
      assert(tb.IsDefined(0));
      si.ts.Reset();
      si.ts.Set(0, tb.Get(0) + 1);
    }
    return refuse(cause);
  };

  if (op.type == OpType::kRead) {
    if (SetStates(shx, *j.state, si, j.txn, i, &cause)) {
      item.readers.push_back({i, inc_i});  // Line 7: RT(x) := i.
      item.top_reader = item.readers.back();
      return accept();
    }
    // Lines 9-10: an old read is still safe after the most recent writer.
    if (j.txn == jr.txn && !options_.disable_old_read_path) {
      const bool write_ordered =
          options_.relaxed_read_path
              ? SetStates(shx, *jw.state, si, jw.txn, i, &cause)
              : CompareStates(shx, *jw.state, si).order == VectorOrder::kLess;
      if (write_ordered) {
        return accept();  // RT(x) is not updated.
      }
    }
    return reject();  // Line 11.
  }

  // Write.
  if (SetStates(shx, *j.state, si, j.txn, i, &cause)) {
    item.writers.push_back({i, inc_i});  // Line 12: WT(x) := i.
    item.top_writer = item.writers.back();
    return accept();
  }
  if (options_.thomas_write_rule) {
    // Section III-D-6c: TS(RT(x)) < TS(i) < TS(WT(x)) makes the write
    // obsolete; skip it instead of aborting T_i.
    const bool after_reads =
        CompareStates(shx, *jr.state, si).order == VectorOrder::kLess;
    const bool before_writer =
        CompareStates(shx, si, *jw.state).order == VectorOrder::kLess;
    if (after_reads && before_writer) {
      ++st.ignored_writes;
      if (m_ignored_ != nullptr) m_ignored_->Add(1);
      return OpDecision::kIgnore;
    }
  }
  return reject();  // Line 14.
}

void ShardedMtkEngine::LockShard(Shard& sh) {
  if (sh.mu.try_lock()) return;
  sh.mu.lock();
  // We now hold sh.mu, so the per-shard counter needs no further sync.
  ++sh.stats.lock_contention;
  if (m_contention_ != nullptr) m_contention_->Add(1);
  MDTS_TRACE_INSTANT_ARG("engine.shard_lock_contention", "shard", sh.index);
}

OpDecision ShardedMtkEngine::Process(const Op& op, AbortReason* reason) {
  MDTS_TRACE_SPAN(op.type == OpType::kRead ? "engine.read" : "engine.write");
  const TxnId i = op.txn;
  Shard& shx = ShardForItem(op.item);
  if (i == kVirtualTxn) {
    // T0 is virtual; it issues no operations.
    std::lock_guard<std::mutex> g(shx.mu);
    ++shx.stats.rejected;
    shx.stats.reject_reasons.Add(AbortReason::kInvalidOp);
    constexpr size_t r = static_cast<size_t>(AbortReason::kInvalidOp);
    if (m_rejected_[r] != nullptr) m_rejected_[r]->Add(1);
    if (reason != nullptr) *reason = AbortReason::kInvalidOp;
    return OpDecision::kReject;
  }
  Shard& shi = ShardForTxn(i);

  // Sorted lockset, at most four distinct shards: item, issuer, top reader,
  // top writer. Insertion keeps it ordered for the deadlock-free ordered
  // acquisition below.
  uint32_t want[4];
  size_t nwant = 0;
  auto add_want = [&](uint32_t v) {
    for (size_t q = 0; q < nwant; ++q) {
      if (want[q] == v) return;
    }
    size_t q = nwant++;
    while (q > 0 && want[q - 1] > v) {
      want[q] = want[q - 1];
      --q;
    }
    want[q] = v;
  };
  add_want(shx.index);
  add_want(shi.index);

  uint64_t retries = 0;
  uint64_t fallbacks = 0;
  bool lock_all = false;
  for (size_t attempt = 0;; ++attempt) {
    if (lock_all) {
      for (Shard& sh : shards_) LockShard(sh);
    } else {
      for (size_t q = 0; q < nwant; ++q) LockShard(shards_[want[q]]);
    }

    TxnState& si = StateLocked(shi, i);
    ItemState& item = ItemLocked(shx, op.item);
    // Resolve the tops under shard(x); liveness reads are lock-free, so
    // this works even when the accessors' shards are not (yet) held.
    const LiveRef jr = TopLiveOf(item.top_reader, item.readers);
    const LiveRef jw = TopLiveOf(item.top_writer, item.writers);

    bool covered = lock_all;
    if (!covered) {
      auto held = [&](TxnId t) {
        if (t == kVirtualTxn) return true;  // T0 needs no lock.
        const uint32_t s = static_cast<uint32_t>(t % num_shards_);
        for (size_t q = 0; q < nwant; ++q) {
          if (want[q] == s) return true;
        }
        return false;
      };
      covered = held(jr.txn) && held(jw.txn);
    }

    if (covered) {
      // Everything DecideLocked touches - item stacks, the three vectors,
      // shard(x)'s counters - is under a held mutex. Liveness of jr/jw is
      // frozen too: clearing it needs their (held) shards.
      EngineStats& st = shx.stats;
      st.lock_retries += retries;
      st.full_lock_fallbacks += fallbacks;
      if (retries != 0 && m_retries_ != nullptr) m_retries_->Add(retries);
      if (fallbacks != 0 && m_fallbacks_ != nullptr) {
        m_fallbacks_->Add(fallbacks);
      }
      if (lock_all || nwant > 1) {
        ++st.cross_shard_ops;
      } else {
        ++st.single_shard_ops;
      }
      const OpDecision d = DecideLocked(op, shx, item, si, jr, jw, reason);
      if (lock_all) {
        for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
          it->mu.unlock();
        }
      } else {
        for (size_t q = nwant; q-- > 0;) shards_[want[q]].mu.unlock();
      }
      return d;
    }

    // The tops live on shards outside the lockset: unlock the set we
    // hold, then rebuild it from scratch around the tops just observed
    // (never more than four shards: item, issuer, reader, writer - stale
    // entries from earlier rounds are dropped, which keeps the array
    // bounded). Tops can keep shifting under contention, so after
    // max_lock_retries unstable rounds take every lock.
    const TxnId seen_jr = jr.txn;
    const TxnId seen_jw = jw.txn;
    for (size_t q = nwant; q-- > 0;) shards_[want[q]].mu.unlock();
    nwant = 0;
    add_want(shx.index);
    add_want(shi.index);
    if (seen_jr != kVirtualTxn) {
      add_want(static_cast<uint32_t>(seen_jr % num_shards_));
    }
    if (seen_jw != kVirtualTxn) {
      add_want(static_cast<uint32_t>(seen_jw % num_shards_));
    }
    ++retries;
    if (attempt >= options_.max_lock_retries) {
      lock_all = true;
      ++fallbacks;
    }
  }
}

void ShardedMtkEngine::CommitTxn(TxnId txn) {
  Shard& sh = ShardForTxn(txn);
  {
    std::lock_guard<std::mutex> g(sh.mu);
    TxnState& s = StateLocked(sh, txn);
    const uint64_t w = s.life;
    assert(!LifeAborted(w));
    StoreLife(s, w | 2);
  }
  if (options_.compact_every > 0 &&
      commits_since_compact_.fetch_add(1, std::memory_order_relaxed) + 1 >=
          options_.compact_every) {
    commits_since_compact_.store(0, std::memory_order_relaxed);
    CompactAll();
  }
}

void ShardedMtkEngine::RestartTxn(TxnId txn) {
  Shard& sh = ShardForTxn(txn);
  std::lock_guard<std::mutex> g(sh.mu);
  TxnState& s = StateLocked(sh, txn);
  const uint64_t w = s.life;
  assert(LifeAborted(w));
  (void)w;
  // One store bumps the incarnation and clears both flags, so the previous
  // incarnation's item accesses turn permanently dead.
  StoreLife(s, (static_cast<uint64_t>(LifeIncarnation(w)) + 1) << 2);
  // The new incarnation number is the transaction's consecutive-abort
  // count (a txn id commits at most once, so incarnations only ever come
  // from restarts); the gauge holds the window peak until a sampler's
  // watchdog consumes it.
  if (m_consec_aborts_ != nullptr) {
    m_consec_aborts_->SetMax(static_cast<int64_t>(LifeIncarnation(w)) + 1);
  }
  if (!options_.starvation_fix) {
    s.ts.Reset();  // Fresh, fully undefined vector.
  }
  // With the fix the seeded vector from the rejection is kept.
}

bool ShardedMtkEngine::IsAborted(TxnId txn) const {
  if (txn == kVirtualTxn) return false;
  Shard& sh = ShardForTxn(txn);
  const uint32_t slot = static_cast<uint32_t>(txn / num_shards_);
  if (slot < sh.base_slot.load(std::memory_order_acquire)) return false;
  const TxnState* s = PeekState(txn);
  return s != nullptr && LifeAborted(LoadLife(*s));
}

bool ShardedMtkEngine::IsCommitted(TxnId txn) const {
  if (txn == kVirtualTxn) return true;
  Shard& sh = ShardForTxn(txn);
  const uint32_t slot = static_cast<uint32_t>(txn / num_shards_);
  // Only committed states are released.
  if (slot < sh.base_slot.load(std::memory_order_acquire)) return true;
  const TxnState* s = PeekState(txn);
  return s != nullptr && LifeCommitted(LoadLife(*s));
}

TimestampVector ShardedMtkEngine::TsSnapshot(TxnId txn) const {
  if (txn == kVirtualTxn) return t0_.ts;
  Shard& sh = ShardForTxn(txn);
  std::lock_guard<std::mutex> g(sh.mu);
  return const_cast<ShardedMtkEngine*>(this)->StateLocked(sh, txn).ts;
}

size_t ShardedMtkEngine::CompactAll() {
  MDTS_TRACE_SPAN("engine.compact");
  for (Shard& sh : shards_) LockShard(sh);
  const size_t released = CompactAllLocked();
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
    it->mu.unlock();
  }
  return released;
}

size_t ShardedMtkEngine::CompactAllLocked() {
  // 1. Truncate every item history to its live top (Section III-D-6a/b).
  for (Shard& sh : shards_) {
    for (ItemState& item : sh.items) {
      const LiveRef r = TopLiveOf(item.top_reader, item.readers);
      const LiveRef w = TopLiveOf(item.top_writer, item.writers);
      item.readers.clear();
      item.writers.clear();
      if (r.txn != kVirtualTxn) {
        item.readers.push_back({r.txn, r.incarnation});
        item.top_reader = item.readers.back();
      }
      if (w.txn != kVirtualTxn) {
        item.writers.push_back({w.txn, w.incarnation});
        item.top_writer = item.writers.back();
      }
    }
  }

  // 2. Smallest slot still referenced by any item, per transaction shard.
  std::vector<uint32_t> min_ref(num_shards_);
  for (size_t t = 0; t < num_shards_; ++t) min_ref[t] = shards_[t].next_slot;
  for (Shard& sh : shards_) {
    for (const ItemState& item : sh.items) {
      for (const Access& a : item.readers) {
        const size_t t = a.txn % num_shards_;
        min_ref[t] = std::min(min_ref[t],
                              static_cast<uint32_t>(a.txn / num_shards_));
      }
      for (const Access& a : item.writers) {
        const size_t t = a.txn % num_shards_;
        min_ref[t] = std::min(min_ref[t],
                              static_cast<uint32_t>(a.txn / num_shards_));
      }
    }
  }

  // 3. Advance each shard's base over committed unreferenced states and
  // free chunks it has fully passed.
  size_t total = 0;
  for (Shard& sh : shards_) {
    const uint32_t old_base = sh.base_slot.load(std::memory_order_relaxed);
    uint32_t slot = old_base;
    const uint32_t stop = min_ref[sh.index];
    while (slot < stop) {
      Chunk* c = sh.dir[slot >> kChunkBits].load(std::memory_order_relaxed);
      if (c == nullptr) break;  // A never-created gap blocks, as the
                                // auto-created states do in MtkScheduler.
      if (!LifeCommitted(c->states[slot & (kChunkSize - 1)].life)) break;
      ++slot;
    }
    if (slot > old_base) {
      for (uint32_t ci = old_base >> kChunkBits;
           static_cast<uint64_t>(ci + 1) * kChunkSize <= slot; ++ci) {
        delete sh.dir[ci].load(std::memory_order_relaxed);
        sh.dir[ci].store(nullptr, std::memory_order_release);
      }
      sh.base_slot.store(slot, std::memory_order_release);
      sh.stats.txns_released += slot - old_base;
      total += slot - old_base;
    }
  }
  ++shards_[0].stats.compactions;
  if (m_compactions_ != nullptr) m_compactions_->Add(1);
  return total;
}

EngineStats ShardedMtkEngine::stats() const {
  EngineStats out;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    const EngineStats& s = sh.stats;
    out.accepted += s.accepted;
    out.rejected += s.rejected;
    out.ignored_writes += s.ignored_writes;
    out.set_calls += s.set_calls;
    out.elements_assigned += s.elements_assigned;
    out.element_comparisons += s.element_comparisons;
    out.txns_released += s.txns_released;
    out.single_shard_ops += s.single_shard_ops;
    out.cross_shard_ops += s.cross_shard_ops;
    out.lock_retries += s.lock_retries;
    out.full_lock_fallbacks += s.full_lock_fallbacks;
    out.lock_contention += s.lock_contention;
    out.compactions += s.compactions;
    out.reject_reasons += s.reject_reasons;
  }
  return out;
}

size_t ShardedMtkEngine::allocated_txn_states() const {
  size_t total = 0;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    for (const auto& entry : sh.dir) {
      if (entry.load(std::memory_order_relaxed) != nullptr) {
        total += kChunkSize;
      }
    }
  }
  return total;
}

}  // namespace mdts
